// Package repro's root benchmark file regenerates every table and figure
// of the paper's evaluation (see DESIGN.md's experiment index). Each
// benchmark prints its rows once (the artifact the paper reports) and
// then measures the wall cost of the underlying computation.
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dma"
	"repro/internal/driver"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/regalloc"
	"repro/internal/see"
)

var printOnce sync.Map

func printRows(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + text)
	}
}

// BenchmarkTable1 regenerates the paper's single data table: the four
// multimedia kernels clusterized on the N=M=K=8 DSPFabric.
func BenchmarkTable1(b *testing.B) {
	printRows(b, "table1", bench.FormatTable1(bench.Table1(context.Background())))
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.HCA(context.Background(), k.Build(), mc, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepBandwidth is experiment E2: MII degradation as the MUX
// capacities shrink (§5's textual claim).
func BenchmarkSweepBandwidth(b *testing.B) {
	printRows(b, "sweep", bench.FormatSweep(bench.SweepBandwidth(context.Background(), []int{2, 4, 8})))
	d := kernels.MPEG2Inter()
	_ = d
	for i := 0; i < b.N; i++ {
		if _, err := core.HCA(context.Background(), kernels.MPEG2Inter(), machine.DSPFabric64(4, 4, 4), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnifiedBound is experiment E3: HCA's MII vs the theoretical
// optimum on an equivalent-issue-width unified machine.
func BenchmarkUnifiedBound(b *testing.B) {
	printRows(b, "unified", bench.FormatUnified(bench.UnifiedBound(context.Background())))
	d := kernels.H264Deblock()
	for i := 0; i < b.N; i++ {
		_ = d.MII(kernels.PaperResources)
	}
}

// BenchmarkHCAvsFlat is experiment E4: the state-space cut of the
// hierarchical decomposition vs flat K64 assignment (§7).
func BenchmarkHCAvsFlat(b *testing.B) {
	printRows(b, "statespace", bench.FormatStateSpace(bench.StateSpace(context.Background(), []int{64, 128, 256})))
	mc := machine.DSPFabric64(8, 8, 8)
	b.Run("hca-idcthor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.HCA(context.Background(), kernels.IDCTHor(), mc, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat-idcthor", func(b *testing.B) {
		d := kernels.IDCTHor()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.FlatICA(context.Background(), d, mc, see.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRouteAllocator is experiment E5: escaping no-candidate
// impasses on the port-starved RCP ring (Figure 6).
func BenchmarkRouteAllocator(b *testing.B) {
	printRows(b, "routing", bench.FormatRouting(bench.Routing(context.Background(), []int{4, 3, 2})))
	mc := machine.RCP(8, 2, 2)
	for i := 0; i < b.N; i++ {
		if _, err := core.HCA(context.Background(), kernels.Fir2Dim(), mc, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperBalance is experiment E6: broadcast merging and copy
// balancing over parallel wires (Figure 9).
func BenchmarkMapperBalance(b *testing.B) {
	var rows []bench.MapperRow
	for _, v := range []int{3, 6, 12} {
		row, err := bench.MapperBalance(context.Background(), v, 4)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row)
	}
	printRows(b, "mapper", bench.FormatMapper(rows))
	for i := 0; i < b.N; i++ {
		if _, err := bench.MapperBalance(context.Background(), 6, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeamWidth is experiment E7: the node-filter width ablation
// (Figure 5's frontier pruning).
func BenchmarkBeamWidth(b *testing.B) {
	printRows(b, "beam", bench.FormatBeam(bench.BeamWidth(context.Background(), []int{1, 2, 4, 8, 16})))
	mc := machine.DSPFabric64(8, 8, 8)
	for i := 0; i < b.N; i++ {
		opt := core.Options{SEE: see.Config{BeamWidth: 16, CandWidth: 4}}
		if _, err := core.HCA(context.Background(), kernels.IDCTHor(), mc, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModuloSchedule is experiment E8: the achieved II on top of the
// MII lower bound (the paper's declared next step).
func BenchmarkModuloSchedule(b *testing.B) {
	rows, err := bench.ScheduleAll(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	printRows(b, "sched", bench.FormatSched(rows))
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), kernels.H264Deblock(), mc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate is experiment E9: end-to-end execution on the fabric
// simulator, checked against the scalar reference.
func BenchmarkSimulate(b *testing.B) {
	printRows(b, "sim", bench.FormatSim(bench.Simulate(context.Background(), 32)))
	for i := 0; i < b.N; i++ {
		rows := bench.Simulate(context.Background(), 8)
		for _, r := range rows {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkRematAblation is experiment E10: the effect of constant and
// induction-value rematerialization on clusterization quality.
func BenchmarkRematAblation(b *testing.B) {
	printRows(b, "remat", bench.FormatRemat(bench.RematAblation(context.Background())))
	mc := machine.DSPFabric64(8, 8, 8)
	for i := 0; i < b.N; i++ {
		opt := core.Options{DisableRematerialization: true}
		if _, err := core.HCA(context.Background(), kernels.Fir2Dim(), mc, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegisterPressure is experiment E11: the rotating-register
// demand of the scheduled kernels (the §4.2 cost factor the paper defers
// to future work).
func BenchmarkRegisterPressure(b *testing.B) {
	printRows(b, "regpressure", bench.FormatRegPressure(bench.RegisterPressure(context.Background())))
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), kernels.IDCTHor(), mc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		modsched.RegPressure(res.Final, s, mc.TotalCNs())
	}
}

// BenchmarkSchedulingAware is experiment E12: §7's scheduling-aware cost
// criteria, measured by the achieved II.
func BenchmarkSchedulingAware(b *testing.B) {
	printRows(b, "schedaware", bench.FormatSchedAware(bench.SchedulingAware(context.Background())))
	mc := machine.DSPFabric64(8, 8, 8)
	for i := 0; i < b.N; i++ {
		if _, err := core.HCA(context.Background(), kernels.H264Deblock(), mc, core.Options{SchedulingAware: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeterogeneous is experiment E13: §2.1's heterogeneous RCP with
// memory ops restricted to a cluster subset.
func BenchmarkHeterogeneous(b *testing.B) {
	printRows(b, "hetero", bench.FormatHetero(bench.Heterogeneous(context.Background(), []int{8, 4, 2})))
	mc := machine.RCPHetero(8, 2, 3, []int{0, 4})
	for i := 0; i < b.N; i++ {
		if _, err := core.HCA(context.Background(), kernels.Fir2Dim(), mc, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDMAProgramming is experiment E14: deriving programmable stream
// descriptors for every memory operation (§5's deferred DMA programming).
func BenchmarkDMAProgramming(b *testing.B) {
	printRows(b, "dma", bench.FormatDMA(bench.DMAProgramming(context.Background())))
	d := kernels.H264Deblock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := dma.Analyze(d)
		if !p.Programmable {
			b.Fatal("h264 not programmable")
		}
	}
}

// BenchmarkArchitectureScale is experiment E15: the decomposition scaling
// to deeper hierarchies (a 4-level, 256-CN fabric).
func BenchmarkArchitectureScale(b *testing.B) {
	printRows(b, "scale", bench.FormatScale(bench.ArchitectureScale(context.Background())))
	mc := machine.Hierarchical([]int{4, 4, 4, 4}, []int{8, 8, 8, 8})
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 256, Seed: 3, RecLatency: 3})
	_ = d
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.HCA(context.Background(), kernels.Synthetic(kernels.SynthConfig{Ops: 256, Seed: 3, RecLatency: 3}), mc, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegAlloc is experiment E16: rotating-register allocation of
// the scheduled kernels (the last §5 deferred phase).
func BenchmarkRegAlloc(b *testing.B) {
	printRows(b, "regalloc", bench.FormatRegAlloc(bench.RegAlloc(context.Background(), 64)))
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), kernels.H264Deblock(), mc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regalloc.Run(res.Final, s, mc, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneralization is experiment E18: the beyond-paper kernels
// (FFT stage, SAD) through the complete flow.
func BenchmarkGeneralization(b *testing.B) {
	printRows(b, "generalize", bench.FormatGeneralize(bench.Generalization(context.Background())))
	mc := machine.DSPFabric64(8, 8, 8)
	for i := 0; i < b.N; i++ {
		if _, err := core.HCA(context.Background(), kernels.SAD16(), mc, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeliningGain is experiment E19: the throughput advantage of
// kernel-only modulo scheduling over non-pipelined list scheduling.
func BenchmarkPipeliningGain(b *testing.B) {
	printRows(b, "pipelining", bench.FormatPipelining(bench.PipeliningGain(context.Background())))
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), kernels.IDCTHor(), mc, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := modsched.RunList(res.Final, res.FinalCN, mc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedback is experiment E20: the closed compile loop selecting
// heuristic variants by achieved II (§5's missing feedback, implemented).
func BenchmarkFeedback(b *testing.B) {
	printRows(b, "feedback", bench.FormatFeedback(bench.Feedback(context.Background())))
	mc := machine.DSPFabric64(8, 8, 8)
	for i := 0; i < b.N; i++ {
		if _, err := driver.HCAWithFeedback(context.Background(), kernels.Fir2Dim(), mc, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
