// Command hcad serves Hierarchical Cluster Assignment compiles over
// HTTP: a bounded worker pool, a content-addressed result cache and an
// in-process metrics registry (see internal/service) behind a JSON API,
// hardened by a middleware stack (panic recovery, request logging,
// per-client rate limiting, request timeouts) and optionally durable
// and fleet-sharded.
//
//	hcad -addr :8080 -workers 8 -cache 512
//
//	curl -s localhost:8080/v1/compile -d '{"kernel":"fir2dim","options":{"schedule":true}}'
//	curl -s localhost:8080/v1/compile/batch -d '{"entries":[{"kernel":"fir2dim"},{"kernel":"idcthor"}]}'
//	curl -s localhost:8080/v1/explore -d '{"kernel":"fir2dim","grid":{"k":[8,6,4,2]}}'
//	curl -s localhost:8080/v1/jobs/job-000002
//	curl -s localhost:8080/metrics
//
// With -data-dir, results and job state survive restarts: compiled
// reports land in a content-addressed store under <dir>/results (the
// LRU is warmed from it on boot) and job state transitions are
// journaled to <dir>/jobs.jsonl and replayed on boot.
//
// With -self and -peers, N hcad nodes consistent-hash the request
// fingerprint keyspace: each compile has one owner node fleet-wide, so
// a DSE sweep spread over the fleet computes each distinct
// configuration once. A dead owner degrades to local computation.
//
//	hcad -addr :8080 -data-dir /var/lib/hcad \
//	     -self 10.0.0.1:8080 -peers 10.0.0.1:8080,10.0.0.2:8080
//
// Every flag can also come from an HCAD_* environment variable (dashes
// become underscores: -job-ttl reads HCAD_JOB_TTL); the command line
// wins when both are set.
//
// SIGTERM/SIGINT drain gracefully: the listener stops accepting, every
// in-flight compile finishes and delivers its response, the job journal
// is synced, then the process exits.
//
// -pprof serves Go's runtime profiles (CPU, heap, goroutine, trace) on a
// separate listener with its own mux, so the diagnostics port can stay
// firewalled off while the API port is exposed — and so the profiling
// handlers are never registered on the API mux at all:
//
//	hcad -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://localhost:6060/debug/pprof/heap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/service/middleware"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "concurrent compile workers")
		queue    = flag.Int("queue", 64, "job queue depth (backpressure bound)")
		cacheSz  = flag.Int("cache", 256, "result cache capacity (entries)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-compile timeout")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprofAt  = flag.String("pprof", "", "serve /debug/pprof on this address (own mux; empty = off)")

		dataDir = flag.String("data-dir", "", "durable store directory (empty = memory only)")
		jobTTL  = flag.Duration("job-ttl", 0, "evict terminal jobs this long after finishing (0 = keep until -max-jobs prunes)")
		maxJobs = flag.Int("max-jobs", 1024, "terminal-job history bound (also the job journal's replay bound)")
		maxBody = flag.Int64("max-body", 1<<20, "max HTTP request body bytes")
		defEng  = flag.String("default-engine", "", "engine for requests that leave options.engine unset: see, exact, portfolio (empty = see)")
		node    = flag.String("node", "", "job-ID namespace (default: derived from -self in fleet mode)")

		rate        = flag.Float64("rate", 0, "per-client sustained requests/sec (0 = no rate limit)")
		burst       = flag.Int("burst", 16, "per-client burst size")
		quota       = flag.Int("quota", 0, "per-client requests per -quota-window (0 = no quota)")
		quotaWindow = flag.Duration("quota-window", time.Hour, "quota accounting window")
		reqTimeout  = flag.Duration("req-timeout", 0, "hard per-HTTP-request timeout (0 = off)")

		self  = flag.String("self", "", "this node's advertised host:port in the fleet peer list")
		peers = flag.String("peers", "", "comma-separated fleet peer list (host:port,...)")
	)
	flag.Parse()
	if err := applyEnvOverrides(flag.CommandLine, "HCAD_", os.LookupEnv); err != nil {
		log.Fatalf("hcad: environment: %v", err)
	}

	if *pprofAt != "" {
		// Dedicated mux: importing net/http/pprof self-registers on
		// http.DefaultServeMux, which we never serve — the handlers are
		// wired explicitly here and only here.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("hcad: pprof on %s", *pprofAt)
			if err := http.ListenAndServe(*pprofAt, mux); err != nil {
				log.Printf("hcad: pprof server: %v", err)
			}
		}()
	}

	var (
		results *store.ResultStore
		journal *store.JobStore
	)
	if *dataDir != "" {
		var err error
		results, err = store.Open(filepath.Join(*dataDir, "results"))
		if err != nil {
			log.Fatalf("hcad: result store: %v", err)
		}
		journal, err = store.OpenJobs(filepath.Join(*dataDir, "jobs.jsonl"), *maxJobs)
		if err != nil {
			log.Fatalf("hcad: job journal: %v", err)
		}
		log.Printf("hcad: durable store at %s (%d results, %d journaled jobs)",
			*dataDir, results.Len(), len(journal.Recovered()))
	}

	// In fleet mode job IDs must be namespaced by the tag peers derive
	// from our advertised address, or cross-node job routing breaks.
	nodeName := *node
	if nodeName == "" && *self != "" {
		nodeName = service.NodeTag(*self)
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSz,
		DefaultTimeout: *timeout,
		MaxJobs:        *maxJobs,
		JobTTL:         *jobTTL,
		MaxBodyBytes:   *maxBody,
		DefaultEngine:  *defEng,
		NodeName:       nodeName,
		Store:          results,
		Journal:        journal,
	})

	handler := http.Handler(svc.Handler())
	if *self != "" && *peers != "" {
		peerList := strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
		sh := service.NewShardedHandler(svc, handler, service.ShardOptions{
			Self:  *self,
			Peers: peerList,
		})
		log.Printf("hcad: fleet mode, self=%s tag=%s ring=%v", *self, service.NodeTag(*self), sh.Ring().Nodes())
		handler = sh
	}

	var limiter *middleware.Limiter
	if *rate > 0 || *quota > 0 {
		limiter = middleware.NewLimiter(*rate, *burst, *quota, *quotaWindow)
	}
	handler = middleware.Chain(handler,
		middleware.Recover(func(v any) { log.Printf("hcad: panic: %v", v) }),
		middleware.Logging(log.Printf),
		middleware.RateLimit(limiter, func(string) { svc.NoteRateLimited() }),
		middleware.Timeout(*reqTimeout),
	)

	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hcad: listening on %s (%d workers, cache %d)", *addr, *workers, *cacheSz)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("hcad: %v", err)
	case <-ctx.Done():
	}

	log.Printf("hcad: draining (up to %v)...", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("hcad: shutdown: %v", err)
	}
	svc.Close()
	m := svc.Metrics()
	fmt.Printf("hcad: served %d requests (%d cache hits, %d misses, %d failures)\n",
		m.Requests, m.CacheHits, m.CacheMisses, m.Failures)
}
