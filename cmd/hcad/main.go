// Command hcad serves Hierarchical Cluster Assignment compiles over
// HTTP: a bounded worker pool, a content-addressed result cache and an
// in-process metrics registry (see internal/service) behind a JSON API.
//
//	hcad -addr :8080 -workers 8 -cache 512
//
//	curl -s localhost:8080/v1/compile -d '{"kernel":"fir2dim","options":{"schedule":true}}'
//	curl -s localhost:8080/v1/compile -d '{"synth":{"ops":128,"seed":3},"async":true}'
//	curl -s localhost:8080/v1/jobs/job-000002
//	curl -s localhost:8080/metrics
//
// SIGTERM/SIGINT drain gracefully: the listener stops accepting, every
// in-flight compile finishes and delivers its response, then the
// process exits.
//
// -pprof serves Go's runtime profiles (CPU, heap, goroutine, trace) on a
// separate listener with its own mux, so the diagnostics port can stay
// firewalled off while the API port is exposed — and so the profiling
// handlers are never registered on the API mux at all:
//
//	hcad -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://localhost:6060/debug/pprof/heap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "concurrent compile workers")
		queue    = flag.Int("queue", 64, "job queue depth (backpressure bound)")
		cacheSz  = flag.Int("cache", 256, "result cache capacity (entries)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-compile timeout")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprofAt  = flag.String("pprof", "", "serve /debug/pprof on this address (own mux; empty = off)")
	)
	flag.Parse()

	if *pprofAt != "" {
		// Dedicated mux: importing net/http/pprof self-registers on
		// http.DefaultServeMux, which we never serve — the handlers are
		// wired explicitly here and only here.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("hcad: pprof on %s", *pprofAt)
			if err := http.ListenAndServe(*pprofAt, mux); err != nil {
				log.Printf("hcad: pprof server: %v", err)
			}
		}()
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSz,
		DefaultTimeout: *timeout,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hcad: listening on %s (%d workers, cache %d)", *addr, *workers, *cacheSz)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("hcad: %v", err)
	case <-ctx.Done():
	}

	log.Printf("hcad: draining (up to %v)...", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("hcad: shutdown: %v", err)
	}
	svc.Close()
	m := svc.Metrics()
	fmt.Printf("hcad: served %d requests (%d cache hits, %d misses, %d failures)\n",
		m.Requests, m.CacheHits, m.CacheMisses, m.Failures)
}
