package main

import (
	"flag"
	"testing"
	"time"
)

// Every hcad flag must be settable from its HCAD_* variable, with the
// command line winning when both are present.
func TestApplyEnvOverrides(t *testing.T) {
	cases := []struct {
		name    string
		args    []string          // command line
		env     map[string]string // environment
		wantErr bool
		check   func(t *testing.T, got map[string]any)
	}{
		{
			name: "env fills unset flags of every type",
			env: map[string]string{
				"HCAD_ADDR":    ":9999",
				"HCAD_WORKERS": "7",
				"HCAD_JOB_TTL": "90s",
				"HCAD_RATE":    "2.5",
			},
			check: func(t *testing.T, got map[string]any) {
				if got["addr"] != ":9999" {
					t.Errorf("addr = %v", got["addr"])
				}
				if got["workers"] != 7 {
					t.Errorf("workers = %v", got["workers"])
				}
				if got["job-ttl"] != 90*time.Second {
					t.Errorf("job-ttl = %v", got["job-ttl"])
				}
				if got["rate"] != 2.5 {
					t.Errorf("rate = %v", got["rate"])
				}
			},
		},
		{
			name: "command line beats environment",
			args: []string{"-addr", ":1111", "-workers", "2"},
			env:  map[string]string{"HCAD_ADDR": ":9999", "HCAD_WORKERS": "7"},
			check: func(t *testing.T, got map[string]any) {
				if got["addr"] != ":1111" {
					t.Errorf("addr = %v, want command-line value", got["addr"])
				}
				if got["workers"] != 2 {
					t.Errorf("workers = %v, want command-line value", got["workers"])
				}
			},
		},
		{
			name: "dashed names map to underscored variables",
			env:  map[string]string{"HCAD_DATA_DIR": "/var/lib/hcad", "HCAD_QUOTA_WINDOW": "1m"},
			check: func(t *testing.T, got map[string]any) {
				if got["data-dir"] != "/var/lib/hcad" {
					t.Errorf("data-dir = %v", got["data-dir"])
				}
				if got["quota-window"] != time.Minute {
					t.Errorf("quota-window = %v", got["quota-window"])
				}
			},
		},
		{
			name: "unrelated variables are ignored",
			env:  map[string]string{"HCAD_NO_SUCH_FLAG": "x", "ADDR": ":2222"},
			check: func(t *testing.T, got map[string]any) {
				if got["addr"] != ":8080" {
					t.Errorf("addr = %v, want default", got["addr"])
				}
			},
		},
		{
			name:    "malformed value is an error, not a silent default",
			env:     map[string]string{"HCAD_WORKERS": "many"},
			wantErr: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("hcad", flag.ContinueOnError)
			addr := fs.String("addr", ":8080", "")
			workers := fs.Int("workers", 4, "")
			jobTTL := fs.Duration("job-ttl", 0, "")
			rate := fs.Float64("rate", 0, "")
			dataDir := fs.String("data-dir", "", "")
			quotaWindow := fs.Duration("quota-window", time.Hour, "")
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}

			err := applyEnvOverrides(fs, "HCAD_", func(k string) (string, bool) {
				v, ok := tc.env[k]
				return v, ok
			})
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, map[string]any{
				"addr": *addr, "workers": *workers, "job-ttl": *jobTTL,
				"rate": *rate, "data-dir": *dataDir, "quota-window": *quotaWindow,
			})
		})
	}
}
