package main

import (
	"flag"
	"fmt"
	"strings"
)

// applyEnvOverrides fills unset flags from environment variables so a
// fleet can be configured through its process manager without
// templating command lines. Each flag maps to prefix + its name
// uppercased with dashes as underscores: -job-ttl reads HCAD_JOB_TTL,
// -data-dir reads HCAD_DATA_DIR. A flag given on the command line
// always wins over its variable. Call after fs.Parse.
func applyEnvOverrides(fs *flag.FlagSet, prefix string, lookup func(string) (string, bool)) error {
	onCmdline := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { onCmdline[f.Name] = true })

	var err error
	fs.VisitAll(func(f *flag.Flag) {
		if err != nil || onCmdline[f.Name] {
			return
		}
		env := prefix + strings.ToUpper(strings.ReplaceAll(f.Name, "-", "_"))
		val, ok := lookup(env)
		if !ok {
			return
		}
		if serr := fs.Set(f.Name, val); serr != nil {
			err = fmt.Errorf("%s=%q: %w", env, val, serr)
		}
	})
	return err
}
