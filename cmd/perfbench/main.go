// Command perfbench measures the hot paths the delta-based SEE rewrite
// and the fingerprint/memo work target, and writes the machine-readable
// performance scorecard (BENCH_10.json on the current trajectory; see
// README's Performance section for how to read it):
//
//   - the beam-search microbenchmark, delta engine vs the retained
//     clone-per-candidate reference engine (ns/op and allocs/op);
//   - the pg mutation-journal cycle (checkpoint → assign → rollback) and
//     the incremental EstimateMII read;
//   - end-to-end HCA wall time per Table-1 kernel, compared against the
//     pre-rewrite figures recorded below;
//   - the parallel frontier-expansion section: one end-to-end single
//     solve at GOMAXPROCS 1, 2 and 4 (the GOMAXPROCS=1 row doubles as
//     the serial ablation — par falls back to fully inline chunking)
//     against the packed-state baseline recorded in BENCH_5;
//   - end-to-end HCAWithFeedback per Table-1 kernel with frontier dedup
//     and the subproblem memo ON versus both OFF, plus the memo's
//     hit/miss traffic for the ON configuration;
//   - the service batch endpoint against a cold durable store (every
//     entry compiles) versus the same batch after a daemon restart on
//     the same data dir (every entry served from the warmed store);
//   - the engine-portfolio section: end-to-end HCA per Table-1 kernel
//     under each registered engine (beam, budgeted exact B&B, and the
//     portfolio that races them per subproblem), recording wall time,
//     solution quality (final MII, receives), the exact engine's
//     optimality certificates, and the portfolio's race overhead over
//     the faster single engine;
//   - the design-space exploration section: the 16-point h264deblocking
//     capacity sweep with the cross-configuration shared memo versus
//     the same sweep with per-point memos and versus S independent cold
//     single solves, plus the shared memo's hit ratio.
//
// Every report carries a provenance block (go version, GOOS/GOARCH,
// GOMAXPROCS, CPU count, git SHA) so scorecards from different
// containers are never silently compared — in -quick smoke mode too,
// and the block always records the environment's GOMAXPROCS, not
// whatever value the parallel-expansion ablation left behind.
//
// Usage:
//
//	go run ./cmd/perfbench -out BENCH_10.json
//	go run ./cmd/perfbench -quick -out -   # smoke mode: fir2dim only
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/driver"
	"repro/internal/dse"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/pg"
	"repro/internal/see"
	"repro/internal/service"
	"repro/internal/store"
)

// prePR holds the BenchmarkTable1 figures measured at the commit before
// the delta rewrite (clone-per-candidate engine, go test -bench
// Table1 -benchtime 3x on the same container class); the end-to-end
// speedup column is computed against these.
var prePR = map[string]Metric{
	"fir2dim":        {NsPerOp: 38944263, AllocsPerOp: 326061},
	"idcthor":        {NsPerOp: 70591828, AllocsPerOp: 510693},
	"mpeg2inter":     {NsPerOp: 48217206, AllocsPerOp: 380963},
	"h264deblocking": {NsPerOp: 765426458, AllocsPerOp: 5017624},
}

// bench5 holds the BenchmarkTable1 figures recorded in BENCH_5.json
// (packed-state rewrite not yet landed, serial expansion): the
// solve_parallel section's speedup column is computed against these.
var bench5 = map[string]Metric{
	"fir2dim":        {NsPerOp: 3044455, AllocsPerOp: 13368},
	"idcthor":        {NsPerOp: 5336796, AllocsPerOp: 26364},
	"mpeg2inter":     {NsPerOp: 3603955, AllocsPerOp: 16195},
	"h264deblocking": {NsPerOp: 135853718, AllocsPerOp: 386775},
}

// Metric is one benchmark's cost.
type Metric struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Comparison pairs the rewritten path with its baseline.
type Comparison struct {
	Current  Metric  `json:"current"`
	Baseline Metric  `json:"baseline"`
	Speedup  float64 `json:"speedup"`
	AllocCut float64 `json:"alloc_cut"`
}

// FeedbackComparison is one kernel's HCAWithFeedback cost with dedup and
// the subproblem memo on (current) versus both disabled (baseline),
// measured back to back in the same process, plus the memo traffic of a
// representative ON run against a fresh memo — the hits come from
// cross-variant and cross-pass sharing inside one feedback pipeline.
type FeedbackComparison struct {
	Comparison
	MemoHits     int64   `json:"memo_hits"`
	MemoMisses   int64   `json:"memo_misses"`
	MemoHitRatio float64 `json:"memo_hit_ratio"`
}

// Provenance records where a scorecard came from, so figures from
// different machines or toolchains are never silently compared.
type Provenance struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// GitSHA is the short commit the binary was built from (-git-sha
	// flag, else `git rev-parse --short HEAD`, else "unknown").
	GitSHA      string `json:"git_sha"`
	GeneratedAt string `json:"generated_at"`
}

// Report is the scorecard (BENCH_N.json) schema.
type Report struct {
	Note       string     `json:"note"`
	Provenance Provenance `json:"provenance"`
	// Solve compares the delta beam search against the in-binary
	// reference engine on the fir2dim level-0 subproblem.
	Solve Comparison `json:"solve_fir2dim_level0"`
	// Journal microcosts (current engine only; the baseline had no
	// journal — every candidate paid a full Clone instead).
	AssignRollback Metric `json:"assign_rollback"`
	EstimateMII    Metric `json:"estimate_mii"`
	// Table1 is end-to-end core.HCA per paper kernel vs the recorded
	// pre-rewrite figures.
	Table1 map[string]Comparison `json:"table1_end_to_end"`
	// SolveParallel is the parallel frontier-expansion section: the
	// end-to-end single solve at GOMAXPROCS 1/2/4 vs the BENCH_5 figure.
	SolveParallel SolveParallel `json:"solve_parallel"`
	// Feedback is end-to-end driver.HCAWithFeedback per paper kernel,
	// dedup+memo on vs off, measured back to back in this process.
	Feedback map[string]FeedbackComparison `json:"feedback_end_to_end"`
	// ServiceBatch is one POST /v1/compile/batch over HTTP against a
	// cold durable store vs the identical batch after a restart on the
	// same data dir.
	ServiceBatch ServiceBatch `json:"service_batch"`
	// EnginePortfolio compares the registered engines end to end per
	// Table-1 kernel: beam vs budgeted exact B&B vs the portfolio race.
	EnginePortfolio EnginePortfolio `json:"engine_portfolio"`
	// DSESweep is the design-space exploration section: one grid sweep
	// with the cross-configuration shared memo vs the same sweep with
	// per-point memos, and vs S independent cold single solves.
	DSESweep DSESweep `json:"dse_sweep"`
}

// EngineRun is one engine's end-to-end core.HCA cost and solution
// quality on one kernel. Proved/Subproblems count the exact-engine
// optimality certificates carried by the run's winning attempts; Gap is
// the relative optimality gap (score over proved lower bound), present
// only when every subproblem was proved. Wins is the per-engine
// subproblem win tally ("seed" = the min-cut partition seed beat every
// engine attempt).
type EngineRun struct {
	Ns          int64          `json:"ns"`
	FinalMII    int            `json:"final_mii"`
	Receives    int            `json:"receives"`
	Proved      int            `json:"proved_subproblems"`
	Subproblems int            `json:"subproblems"`
	Gap         *float64       `json:"optimality_gap,omitempty"`
	Wins        map[string]int `json:"engine_wins,omitempty"`
}

// EngineKernel is one kernel's three-way engine comparison.
// PortfolioOverBest is the portfolio's wall time over the faster single
// engine — the race-overhead figure (cancelling the losing leg should
// keep it near 1.0; the acceptance line is ≤1.2 on h264deblocking).
// Where the exact engine exhausts its node budget before proving a
// subproblem, proved < subproblems and no gap is recorded — the true
// beam-vs-optimal gap on full kernels is then open, which this section
// documents rather than hides (the gap-to-optimal *tests* prove it on
// dependency-closed kernel prefixes and a synthetic corpus instead).
type EngineKernel struct {
	See               EngineRun `json:"see"`
	Exact             EngineRun `json:"exact"`
	Portfolio         EngineRun `json:"portfolio"`
	PortfolioOverBest float64   `json:"portfolio_over_best_single"`
}

// PrefixGap is the proved beam-vs-optimal gap on one kernel's
// dependency-closed 12-instruction prefix over a 4-cluster pattern
// (the gap-to-optimal tests' instance family): the exact engine proves
// the optimum outright on every kernel at this size, so Gap is a true
// gap against a proved lower bound — the figure the full-kernel rows
// above cannot provide where their node budget runs out.
type PrefixGap struct {
	ExactScore float64 `json:"exact_score"`
	BeamScore  float64 `json:"beam_score"`
	Gap        float64 `json:"gap"`
}

// EnginePortfolio is the engine comparison section. ExactNodeBudget is
// the per-subproblem B&B node budget both the solo exact runs and the
// portfolio's exact legs were given (full kernels are far beyond what
// an unbudgeted exhaustive search could finish). KernelPrefixGaps
// documents the true, proved beam gap per kernel on the prefix family.
type EnginePortfolio struct {
	ExactNodeBudget  int64                   `json:"exact_node_budget"`
	Kernels          map[string]EngineKernel `json:"kernels"`
	KernelPrefixGaps map[string]PrefixGap    `json:"kernel_prefix_gaps"`
}

// benchEnginePortfolio times end-to-end core.HCA per kernel under each
// engine. Exact runs pay the full node budget on every unproved
// subproblem, so a b.N loop is unaffordable — each figure is the best
// of a few hand-timed solves (one for exact on the big kernels), which
// is noise-robust enough for the ratio the section exists to record.
func benchEnginePortfolio(quick bool) EnginePortfolio {
	const budget = 1 << 16
	mc := machine.DSPFabric64(8, 8, 8)
	ep := EnginePortfolio{
		ExactNodeBudget: budget,
		Kernels:         make(map[string]EngineKernel),
	}
	for _, k := range kernels.All() {
		if _, ok := prePR[k.Name]; !ok {
			continue
		}
		if quick && k.Name != "fir2dim" {
			continue
		}
		var row EngineKernel
		for _, eng := range []string{"see", "exact", "portfolio"} {
			fmt.Fprintf(os.Stderr, "perfbench: engine %s %s...\n", eng, k.Name)
			opt := core.Options{Engine: eng, ExactBudget: budget}
			runs := 3
			if eng == "exact" && !quick {
				runs = 1
			}
			best := int64(1<<63 - 1)
			var res *core.Result
			for i := 0; i < runs; i++ {
				start := time.Now()
				r, err := core.HCA(context.Background(), k.Build(), mc, opt)
				ns := time.Since(start).Nanoseconds()
				if err != nil {
					fmt.Fprintf(os.Stderr, "perfbench: engine %s %s: %v\n", eng, k.Name, err)
					os.Exit(1)
				}
				if ns < best {
					best = ns
					res = r
				}
			}
			run := EngineRun{
				Ns:          best,
				FinalMII:    res.MII.Final,
				Receives:    res.Recvs,
				Proved:      res.Optimality.Proved,
				Subproblems: res.Optimality.Subproblems,
				Wins:        res.EngineWins,
			}
			if gap, ok := res.Optimality.Gap(); ok {
				g := gap
				run.Gap = &g
			}
			switch eng {
			case "see":
				row.See = run
			case "exact":
				row.Exact = run
			case "portfolio":
				row.Portfolio = run
			}
		}
		bestSingle := row.See.Ns
		if row.Exact.Ns < bestSingle {
			bestSingle = row.Exact.Ns
		}
		if bestSingle > 0 {
			row.PortfolioOverBest = round2(float64(row.Portfolio.Ns) / float64(bestSingle))
		}
		ep.Kernels[k.Name] = row
	}
	ep.KernelPrefixGaps = benchPrefixGaps(quick)
	return ep
}

// benchPrefixGaps proves the optimum of each kernel's dependency-closed
// 12-instruction prefix on a 4-cluster all-to-all pattern and records
// the beam engine's gap against it (construction order is topological,
// so a prefix is dependency-closed).
func benchPrefixGaps(quick bool) map[string]PrefixGap {
	const prefix = 12
	out := make(map[string]PrefixGap)
	topo := pg.NewTopology("prefix-gap", 4, 4, 8, 0)
	topo.AllToAll()
	for _, k := range kernels.All() {
		if _, ok := prePR[k.Name]; !ok {
			continue
		}
		if quick && k.Name != "fir2dim" {
			continue
		}
		d := k.Build()
		f := pg.NewFlow(topo, d)
		f.MIIRecStatic = d.MIIRec()
		ws := make([]graph.NodeID, prefix)
		for i := range ws {
			ws[i] = graph.NodeID(i)
		}
		solve := func(name string) float64 {
			eng, err := core.EngineByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "perfbench: prefix gap %s: %v\n", k.Name, err)
				os.Exit(1)
			}
			res, err := eng.Solve(context.Background(), f, ws, see.Config{})
			if err != nil || (name == "exact" && !res.Proved) {
				fmt.Fprintf(os.Stderr, "perfbench: prefix gap %s %s: err=%v\n", k.Name, name, err)
				os.Exit(1)
			}
			sc := res.Score
			res.Flow.Release()
			return sc
		}
		ex, beam := solve("exact"), solve("see")
		out[k.Name] = PrefixGap{
			ExactScore: round2(ex),
			BeamScore:  round2(beam),
			Gap:        round2((beam - ex) / ex),
		}
	}
	return out
}

// DSESweep records the exploration sweep's cost against its two
// ablations: the identical sweep with a fresh memo per point (isolating
// what cross-configuration sharing buys — the PR's acceptance line is
// shared ≤ 0.6× per-point on the 16-point grid), and S independent cold
// single solves (what a naive script looping `hca` per configuration
// would pay, with no dedup and no sharing of any kind). Memo traffic is
// from one representative shared run against a fresh memo.
type DSESweep struct {
	Kernel             string  `json:"kernel"`
	Points             int     `json:"points"`
	Unique             int     `json:"unique"`
	SharedNs           int64   `json:"shared_memo_ns"`
	PerPointNs         int64   `json:"per_point_memo_ns"`
	SharedOverPerPoint float64 `json:"shared_over_per_point"`
	ColdSolveNs        int64   `json:"cold_single_solve_ns"`
	SweepOverSCold     float64 `json:"sweep_over_s_cold_solves"`
	MemoHits           int64   `json:"memo_hits"`
	MemoMisses         int64   `json:"memo_misses"`
	MemoHitRatio       float64 `json:"memo_hit_ratio"`
}

// benchDSESweep times the 16-point h264deblocking capacity sweep
// (n,m ∈ {8,6}, k ∈ {8,6,4,2}) — the solver-dominated Table-1 kernel,
// where cross-configuration sharing carries the wall time rather than
// the per-point fixed costs (flow construction, seeding, mapping) that
// dilute it on the small kernels. -quick shrinks the section to a
// 4-point fir2dim k-axis sweep, cheap enough for every CI push. Sweep
// seeds a fresh memo per call when none is injected, so every timed
// iteration pays the cold cost and earns only within-sweep sharing —
// exactly the figure the per-point ablation is compared against.
func benchDSESweep(quick bool) DSESweep {
	name := "h264deblocking"
	g := dse.Grid{N: []int{8, 6}, M: []int{8, 6}, K: []int{8, 6, 4, 2}}
	if quick {
		name = "fir2dim"
		g = dse.Grid{K: []int{8, 6, 4, 2}}
	}
	var d *ddg.DDG
	for _, k := range kernels.All() {
		if k.Name == name {
			d = k.Build()
		}
	}
	ctx := context.Background()

	fmt.Fprintln(os.Stderr, "perfbench: dse sweep (shared memo)...")
	shared := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dse.Sweep(ctx, d, g, dse.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	fmt.Fprintln(os.Stderr, "perfbench: dse sweep (per-point memos)...")
	perPoint := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dse.Sweep(ctx, d, g, dse.Options{PerPointMemo: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	fmt.Fprintln(os.Stderr, "perfbench: dse cold single solve...")
	mc := machine.DSPFabric64(8, 8, 8)
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.HCA(ctx, d, mc, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Memo traffic and point counts from one representative shared run.
	res, err := dse.Sweep(ctx, d, g, dse.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: dse sweep:", err)
		os.Exit(1)
	}
	ds := DSESweep{
		Kernel:       name,
		Points:       res.Stats.Points,
		Unique:       res.Stats.Unique,
		SharedNs:     shared.NsPerOp(),
		PerPointNs:   perPoint.NsPerOp(),
		ColdSolveNs:  cold.NsPerOp(),
		MemoHits:     res.Stats.Memo.Hits,
		MemoMisses:   res.Stats.Memo.Misses,
		MemoHitRatio: res.Stats.MemoHitRatio,
	}
	if ds.PerPointNs > 0 {
		ds.SharedOverPerPoint = round2(float64(ds.SharedNs) / float64(ds.PerPointNs))
	}
	if sCold := ds.ColdSolveNs * int64(ds.Points); sCold > 0 {
		ds.SweepOverSCold = round2(float64(ds.SharedNs) / float64(sCold))
	}
	return ds
}

// ServiceBatch records the batch endpoint's cold-vs-warm cost. Cold is
// a single timed batch against an empty store (every unique entry
// compiles); Warm re-times the identical batch after the service is
// closed and reopened on the same data dir, so every entry is served
// from the durable store the restart warmed.
type ServiceBatch struct {
	Entries int     `json:"entries"`
	Unique  int     `json:"unique"`
	ColdNs  int64   `json:"cold_ns"`
	Warm    Metric  `json:"warm"`
	Speedup float64 `json:"speedup"`
}

// SolveParallel records the chunked frontier expansion's scaling: one
// end-to-end core.HCA solve of the named kernel timed at GOMAXPROCS 1,
// 2 and 4, against the serial packed-state figure recorded in BENCH_5.
// The GOMAXPROCS=1 row is the serial ablation — par.ForEachChunkedCtx
// degenerates to a fully inline loop with no goroutines, so serial_ns
// vs parallel_ns isolates what the worker fan-out costs or buys on the
// benchmarking host (on a single-core container the two should be
// within noise of each other; the speedup over BENCH_5 then comes from
// the cache-flat packed state, not from parallelism).
type SolveParallel struct {
	Kernel     string            `json:"kernel"`
	BaselineNs int64             `json:"bench5_baseline_ns"`
	ByProcs    map[string]Metric `json:"by_gomaxprocs"`
	// SerialNs/ParallelNs name the ablation pair: by_gomaxprocs["1"]
	// (inline expansion) and by_gomaxprocs["4"] (chunked workers).
	SerialNs        int64   `json:"serial_ns"`
	ParallelNs      int64   `json:"parallel_ns"`
	SerialOverPar   float64 `json:"serial_over_parallel"`
	SpeedupVsBench5 float64 `json:"speedup_vs_bench5"`
	SpeedupAtMax    float64 `json:"speedup_vs_bench5_at_gomaxprocs_4"`
}

// benchSolveParallel times the end-to-end single solve at each
// GOMAXPROCS setting. The caller's GOMAXPROCS is restored on return so
// the provenance block (assembled before this runs) stays truthful for
// every other section.
func benchSolveParallel(quick bool) SolveParallel {
	name := "h264deblocking"
	if quick {
		name = "fir2dim"
	}
	var k kernels.Kernel
	for _, kk := range kernels.All() {
		if kk.Name == name {
			k = kk
		}
	}
	mc := machine.DSPFabric64(8, 8, 8)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	sp := SolveParallel{
		Kernel:     name,
		BaselineNs: bench5[name].NsPerOp,
		ByProcs:    make(map[string]Metric, 3),
	}
	for _, p := range []int{1, 2, 4} {
		fmt.Fprintf(os.Stderr, "perfbench: solve_parallel %s GOMAXPROCS=%d...\n", name, p)
		runtime.GOMAXPROCS(p)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.HCA(context.Background(), k.Build(), mc, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		sp.ByProcs[strconv.Itoa(p)] = metric(r)
	}
	sp.SerialNs = sp.ByProcs["1"].NsPerOp
	sp.ParallelNs = sp.ByProcs["4"].NsPerOp
	if sp.ParallelNs > 0 {
		sp.SerialOverPar = round2(float64(sp.SerialNs) / float64(sp.ParallelNs))
		sp.SpeedupAtMax = round2(float64(sp.BaselineNs) / float64(sp.ParallelNs))
	}
	best := sp.SerialNs
	if sp.ParallelNs > 0 && sp.ParallelNs < best {
		best = sp.ParallelNs
	}
	if best > 0 {
		sp.SpeedupVsBench5 = round2(float64(sp.BaselineNs) / float64(best))
	}
	return sp
}

func metric(r testing.BenchmarkResult) Metric {
	return Metric{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

func compare(current, baseline Metric) Comparison {
	c := Comparison{Current: current, Baseline: baseline}
	if current.NsPerOp > 0 {
		c.Speedup = round2(float64(baseline.NsPerOp) / float64(current.NsPerOp))
	}
	if current.AllocsPerOp > 0 {
		c.AllocCut = round2(float64(baseline.AllocsPerOp) / float64(current.AllocsPerOp))
	}
	return c
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

// provenance assembles the environment block. sha overrides discovery
// when non-empty (the Makefile passes it so the recorded commit never
// depends on the benchmark binary finding git on PATH).
func provenance(sha string) Provenance {
	if sha == "" {
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			sha = strings.TrimSpace(string(out))
		}
	}
	if sha == "" {
		sha = "unknown"
	}
	return Provenance{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GitSHA:      sha,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
}

// benchServiceBatch measures the batch endpoint over real HTTP: a
// durable-store-backed service in a temp dir, one batch of the Table-1
// kernels (each listed twice, exercising the dedup path), cold then —
// after a simulated daemon restart on the same dir — warm.
func benchServiceBatch(quick bool) ServiceBatch {
	names := []string{"fir2dim", "idcthor", "mpeg2inter", "h264deblocking"}
	if quick {
		names = names[:1]
	}
	var entries []map[string]any
	for _, n := range names {
		entries = append(entries, map[string]any{"kernel": n}, map[string]any{"kernel": n})
	}
	body, err := json.Marshal(map[string]any{"entries": entries})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: service batch:", err)
		os.Exit(1)
	}

	dir, err := os.MkdirTemp("", "perfbench-store-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench: service batch:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	open := func() *service.Service {
		rs, err := store.Open(filepath.Join(dir, "results"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: service batch:", err)
			os.Exit(1)
		}
		js, err := store.OpenJobs(filepath.Join(dir, "jobs.jsonl"), 1024)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: service batch:", err)
			os.Exit(1)
		}
		return service.New(service.Config{Workers: runtime.GOMAXPROCS(0), Store: rs, Journal: js})
	}
	post := func(ts *httptest.Server) service.BatchResponse {
		resp, err := ts.Client().Post(ts.URL+"/v1/compile/batch", "application/json", strings.NewReader(string(body)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: service batch:", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		var br service.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil || resp.StatusCode != 200 {
			fmt.Fprintf(os.Stderr, "perfbench: service batch: status %d (%v)\n", resp.StatusCode, err)
			os.Exit(1)
		}
		return br
	}

	// Cold: empty store, every unique entry compiles. One timed run —
	// compiles cost milliseconds to seconds, so a single sample is
	// representative and a b.N loop would only re-measure the warm path.
	svc := open()
	ts := httptest.NewServer(svc.Handler())
	start := time.Now()
	br := post(ts)
	coldNs := time.Since(start).Nanoseconds()
	ts.Close()
	svc.Close()

	// Warm: restart on the same dir; the store now holds every result.
	svc2 := open()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	defer svc2.Close()
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(ts2)
		}
	})

	sb := ServiceBatch{
		Entries: len(entries),
		Unique:  br.Unique,
		ColdNs:  coldNs,
		Warm:    metric(warm),
	}
	if w := warm.NsPerOp(); w > 0 {
		sb.Speedup = round2(float64(coldNs) / float64(w))
	}
	return sb
}

func main() {
	out := flag.String("out", "BENCH_10.json", "output file (- for stdout)")
	gitSHA := flag.String("git-sha", "", "git commit to record in the provenance block (default: ask git)")
	quick := flag.Bool("quick", false, "smoke mode: restrict the end-to-end sections to fir2dim")
	flag.Parse()

	// The provenance block is assembled before any section runs — in
	// -quick smoke mode too — so the recorded GOMAXPROCS is the
	// environment's, not a value the solve_parallel ablation set.
	rep := Report{
		Note: "delta-based SEE vs clone-per-candidate baseline; packed-state " +
			"parallel expansion at GOMAXPROCS 1/2/4 vs the BENCH_5 serial " +
			"figures; frontier dedup + subproblem memo vs both disabled; " +
			"pre-rewrite Table-1 figures recorded at the pre-delta commit; " +
			"engine portfolio: beam vs budgeted exact B&B vs the per-subproblem race; " +
			"dse sweep: shared cross-configuration memo vs per-point memos vs S cold solves",
		Provenance: provenance(*gitSHA),
	}

	// Beam-search microbenchmark: one level-0 subproblem, both engines.
	d := kernels.Fir2Dim()
	tp := pg.NewTopology("lvl0", 4, 16, 8, 0)
	tp.AllToAll()
	ws := make([]graph.NodeID, d.Len())
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	mkFlow := func() *pg.Flow {
		f := pg.NewFlow(tp, d)
		f.MIIRecStatic = d.MIIRec()
		return f
	}
	fmt.Fprintln(os.Stderr, "perfbench: see.Solve (delta engine)...")
	delta := testing.Benchmark(func(b *testing.B) {
		f := mkFlow()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := see.Solve(context.Background(), f, ws, see.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	fmt.Fprintln(os.Stderr, "perfbench: see.SolveReference (clone engine)...")
	ref := testing.Benchmark(func(b *testing.B) {
		f := mkFlow()
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := see.SolveReference(ctx, f, ws, see.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Solve = compare(metric(delta), metric(ref))

	// Journal cycle: checkpoint → assign (with routing) → rollback on a
	// half-assigned fir2dim flow, and the incremental objective read.
	fmt.Fprintln(os.Stderr, "perfbench: pg journal cycle...")
	{
		f := mkFlow()
		var next graph.NodeID
		var cc pg.ClusterID
		place := func(n graph.NodeID) (pg.ClusterID, bool) {
			for c := pg.ClusterID(0); c < 4; c++ {
				if f.Assign(n, c) == nil {
					return c, true
				}
			}
			return 0, false
		}
		for n := graph.NodeID(0); n < graph.NodeID(d.Len()/2); n++ {
			if _, ok := place(n); !ok {
				fmt.Fprintf(os.Stderr, "perfbench: setup: node %d unplaceable\n", n)
				os.Exit(1)
			}
		}
		next = graph.NodeID(d.Len() / 2)
		mark := f.Checkpoint()
		cc, _ = place(next)
		f.Rollback(mark)
		f.DropJournal()

		rep.AssignRollback = metric(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := f.Checkpoint()
				if err := f.Assign(next, cc); err != nil {
					b.Fatal(err)
				}
				f.Rollback(m)
			}
		}))
		rep.EstimateMII = metric(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for i := 0; i < b.N; i++ {
				s += f.EstimateMII()
			}
			_ = s
		}))
	}

	// End-to-end Table 1 vs the recorded pre-rewrite figures, and the
	// feedback pipeline dedup+memo ablation.
	rep.Table1 = make(map[string]Comparison)
	rep.Feedback = make(map[string]FeedbackComparison)
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		base, ok := prePR[k.Name]
		if !ok {
			continue // beyond-paper extras have no recorded baseline
		}
		if *quick && k.Name != "fir2dim" {
			continue
		}
		fmt.Fprintf(os.Stderr, "perfbench: HCA %s...\n", k.Name)
		cur := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.HCA(context.Background(), k.Build(), mc, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Table1[k.Name] = compare(metric(cur), base)

		// Feedback pipeline, dedup+memo on vs off. The ON configuration is
		// the default (RunVariants seeds a fresh memo per call, so every
		// timed iteration pays the cold cost and earns only within-run
		// sharing — no cross-iteration warmup flatters the number); the
		// OFF baseline disables both.
		fmt.Fprintf(os.Stderr, "perfbench: feedback %s (dedup+memo on)...\n", k.Name)
		on := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := driver.HCAWithFeedback(context.Background(), k.Build(), mc, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Fprintf(os.Stderr, "perfbench: feedback %s (dedup+memo off)...\n", k.Name)
		off := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			opt := core.Options{DisableMemo: true, SEE: see.Config{DisableDedup: true}}
			for i := 0; i < b.N; i++ {
				if _, err := driver.HCAWithFeedback(context.Background(), k.Build(), mc, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Memo traffic of one representative ON run against a fresh memo.
		memo := core.NewMemo(0)
		if _, err := driver.HCAWithFeedback(context.Background(), k.Build(), mc, core.Options{Memo: memo}); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: feedback %s: %v\n", k.Name, err)
			os.Exit(1)
		}
		ms := memo.Stats()
		fc := FeedbackComparison{
			Comparison: compare(metric(on), metric(off)),
			MemoHits:   ms.Hits,
			MemoMisses: ms.Misses,
		}
		if total := ms.Hits + ms.Misses; total > 0 {
			fc.MemoHitRatio = round2(float64(ms.Hits) / float64(total))
		}
		rep.Feedback[k.Name] = fc
	}

	// Parallel frontier expansion: the -quick smoke path covers this
	// section too (on fir2dim), so CI exercises the chunked expansion at
	// every GOMAXPROCS setting on each push.
	rep.SolveParallel = benchSolveParallel(*quick)

	fmt.Fprintln(os.Stderr, "perfbench: service batch cold vs warm store...")
	rep.ServiceBatch = benchServiceBatch(*quick)

	rep.EnginePortfolio = benchEnginePortfolio(*quick)

	rep.DSESweep = benchDSESweep(*quick)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perfbench: wrote %s\n", *out)
}
