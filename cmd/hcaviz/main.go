// Command hcaviz dumps Graphviz DOT renderings of the reproduction's data
// structures: the kernel DDGs (before and after receive insertion) and
// the per-level pattern graphs of an HCA run with their real
// communication patterns.
//
// Usage:
//
//	hcaviz -kernel idcthor -out /tmp/viz
//	dot -Tsvg /tmp/viz/idcthor-ddg.dot > idcthor.svg
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func main() {
	var (
		kernel = flag.String("kernel", "fir2dim", "kernel name")
		out    = flag.String("out", ".", "output directory")
		n      = flag.Int("n", 8, "N")
		m      = flag.Int("m", 8, "M")
		k      = flag.Int("k", 8, "K")
	)
	flag.Parse()

	kn, err := kernels.ByName(*kernel)
	if err != nil {
		fatal(err)
	}
	d := kn.Build()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	write := func(name string, emit func(io.Writer) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := emit(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	write(kn.Name+"-ddg.dot", d.WriteDOT)

	mc := machine.DSPFabric64(*n, *m, *k)
	res, err := core.HCA(context.Background(), d, mc, core.Options{})
	if err != nil {
		fatal(err)
	}
	write(kn.Name+"-final-ddg.dot", res.Final.WriteDOT)
	for _, ls := range res.Levels {
		ls := ls
		write(fmt.Sprintf("%s-pg-%s.dot", kn.Name, ls.ID()), ls.Flow.WriteDOT)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcaviz:", err)
	os.Exit(1)
}
