// Command hcabench reruns every experiment of the reproduction (Table 1
// plus the E2..E10 experiments indexed in DESIGN.md) and prints the rows
// the way the paper reports them. EXPERIMENTS.md is generated from this
// output.
//
// Usage:
//
//	hcabench              # all experiments
//	hcabench -exp table1  # one experiment
//	hcabench -exp sweep -bw 2,4,8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	ctx := context.Background()
	var (
		exp = flag.String("exp", "all", "experiment: table1, sweep, unified, statespace, routing, mapper, beam, sched, sim, remat, regpressure, schedaware, hetero, dma, scale, regalloc, explore, generalize, pipelining, feedback, all")
		bw  = flag.String("bw", "2,4,8", "comma-separated bandwidths for -exp sweep")
	)
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("table1") {
		fmt.Println(bench.FormatTable1(bench.Table1(ctx)))
		ran = true
	}
	if run("sweep") {
		fmt.Println(bench.FormatSweep(bench.SweepBandwidth(ctx, parseInts(*bw))))
		ran = true
	}
	if run("unified") {
		fmt.Println(bench.FormatUnified(bench.UnifiedBound(ctx)))
		ran = true
	}
	if run("statespace") {
		fmt.Println(bench.FormatStateSpace(bench.StateSpace(ctx, []int{64, 128, 256})))
		ran = true
	}
	if run("routing") {
		fmt.Println(bench.FormatRouting(bench.Routing(ctx, []int{4, 3, 2})))
		ran = true
	}
	if run("mapper") {
		var rows []bench.MapperRow
		for _, v := range []int{3, 6, 12} {
			row, err := bench.MapperBalance(ctx, v, 4)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, row)
		}
		fmt.Println(bench.FormatMapper(rows))
		ran = true
	}
	if run("beam") {
		fmt.Println(bench.FormatBeam(bench.BeamWidth(ctx, []int{1, 2, 4, 8, 16})))
		ran = true
	}
	if run("sched") {
		rows, err := bench.ScheduleAll(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatSched(rows))
		ran = true
	}
	if run("sim") {
		fmt.Println(bench.FormatSim(bench.Simulate(ctx, 32)))
		ran = true
	}
	if run("remat") {
		fmt.Println(bench.FormatRemat(bench.RematAblation(ctx)))
		ran = true
	}
	if run("regpressure") {
		fmt.Println(bench.FormatRegPressure(bench.RegisterPressure(ctx)))
		ran = true
	}
	if run("schedaware") {
		fmt.Println(bench.FormatSchedAware(bench.SchedulingAware(ctx)))
		ran = true
	}
	if run("hetero") {
		fmt.Println(bench.FormatHetero(bench.Heterogeneous(ctx, []int{8, 4, 2})))
		ran = true
	}
	if run("dma") {
		fmt.Println(bench.FormatDMA(bench.DMAProgramming(ctx)))
		ran = true
	}
	if run("scale") {
		fmt.Println(bench.FormatScale(bench.ArchitectureScale(ctx)))
		ran = true
	}
	if run("regalloc") {
		fmt.Println(bench.FormatRegAlloc(bench.RegAlloc(ctx, 64)))
		ran = true
	}
	if run("generalize") {
		fmt.Println(bench.FormatGeneralize(bench.Generalization(ctx)))
		ran = true
	}
	if run("pipelining") {
		fmt.Println(bench.FormatPipelining(bench.PipeliningGain(ctx)))
		ran = true
	}
	if run("feedback") {
		fmt.Println(bench.FormatFeedback(bench.Feedback(ctx)))
		ran = true
	}
	if run("explore") && *exp == "explore" { // too slow for -exp all
		rows, best := bench.ExploreNMK(ctx, []int{2, 4, 8})
		fmt.Println(bench.FormatExplore(rows, best))
		ran = true
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatal(err)
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcabench:", err)
	os.Exit(1)
}
