package main

import "testing"

func TestParseInts(t *testing.T) {
	got := parseInts("2, 4,8")
	if len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 8 {
		t.Errorf("parseInts = %v", got)
	}
}
