// Command hcactl is the client-side companion to hcad: it speaks the
// daemon's JSON API so scripts and operators do not hand-roll curl
// invocations against a fleet.
//
//	hcactl -addr localhost:8080 compile '{"kernel":"fir2dim"}'
//	hcactl compile -async -f request.json
//	hcactl batch -summary '{"entries":[{"kernel":"fir2dim"},{"kernel":"idcthor"}]}'
//	hcactl job get 1a2b3c4d-job-000017
//	hcactl job wait -timeout 2m 1a2b3c4d-job-000017
//	hcactl metrics
//	hcactl health
//
// -addr defaults to the HCACTL_ADDR environment variable, then
// localhost:8080. -key sets the X-Api-Key header the daemon's rate
// limiter budgets by. Request bodies come from a positional JSON
// argument, -f file, or stdin when neither is given.
//
// Exit status: 0 on success, 1 on a daemon-reported error (non-2xx or a
// failed compile), 2 on usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: hcactl [-addr host:port] [-key apikey] <command> [args]

commands:
  compile [-async] [-trace] [-f file] [json]   submit one compile
  batch   [-async] [-summary] [-f file] [json] submit a batch of compiles
  explore [-async] [-f file] [json]            sweep a kernel over a fabric grid
                                               (POST /v1/explore)
  job get <id>                                 fetch a job's status/result
  job wait [-interval d] [-timeout d] <id>     poll a job until terminal
  metrics                                      dump the daemon's counters
  health                                       liveness probe
`

// ctl carries the resolved connection options into each subcommand.
type ctl struct {
	base   string
	key    string
	client *http.Client
	stdout io.Writer
	stderr io.Writer
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hcactl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	defAddr := os.Getenv("HCACTL_ADDR")
	if defAddr == "" {
		defAddr = "localhost:8080"
	}
	addr := fs.String("addr", defAddr, "daemon address (default $HCACTL_ADDR, then localhost:8080)")
	key := fs.String("key", "", "X-Api-Key header value")
	fs.Usage = func() { fmt.Fprint(stderr, usage) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}

	c := &ctl{
		base:   "http://" + *addr,
		key:    *key,
		client: &http.Client{Timeout: 5 * time.Minute},
		stdout: stdout,
		stderr: stderr,
	}
	switch rest[0] {
	case "compile":
		return c.compile(rest[1:])
	case "batch":
		return c.batch(rest[1:])
	case "explore":
		return c.explore(rest[1:])
	case "job":
		return c.job(rest[1:])
	case "metrics":
		return c.get("/metrics")
	case "health":
		return c.get("/healthz")
	default:
		fmt.Fprintf(stderr, "hcactl: unknown command %q\n%s", rest[0], usage)
		return 2
	}
}

// body resolves a request body: positional JSON argument, -f file, or
// stdin.
func body(fs *flag.FlagSet, file string) ([]byte, error) {
	if fs.NArg() > 1 {
		return nil, errors.New("at most one positional JSON argument")
	}
	if fs.NArg() == 1 {
		if file != "" {
			return nil, errors.New("both -f and a positional JSON argument given")
		}
		return []byte(fs.Arg(0)), nil
	}
	if file != "" {
		return os.ReadFile(file)
	}
	return io.ReadAll(os.Stdin)
}

func (c *ctl) do(method, path string, reqBody []byte) (*http.Response, []byte, error) {
	var rdr io.Reader
	if reqBody != nil {
		rdr = strings.NewReader(string(reqBody))
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return nil, nil, err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.key != "" {
		req.Header.Set("X-Api-Key", c.key)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

// fail prints a daemon error envelope (or the raw body) to stderr.
func (c *ctl) fail(what string, resp *http.Response, b []byte) int {
	var eb service.ErrorBody
	if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
		if eb.Field != "" {
			fmt.Fprintf(c.stderr, "hcactl: %s: %s (status %d, field %q)\n", what, eb.Error, resp.StatusCode, eb.Field)
		} else {
			fmt.Fprintf(c.stderr, "hcactl: %s: %s (status %d)\n", what, eb.Error, resp.StatusCode)
		}
	} else {
		fmt.Fprintf(c.stderr, "hcactl: %s: status %d: %s\n", what, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return 1
}

func (c *ctl) get(path string) int {
	resp, b, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		return c.fail(path, resp, b)
	}
	c.stdout.Write(b)
	return 0
}

func (c *ctl) compile(args []string) int {
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	async := fs.Bool("async", false, "return a job ID immediately instead of waiting")
	traceIt := fs.Bool("trace", false, "record the compile and embed the telemetry summary")
	engine := fs.String("engine", "", "subproblem engine: see, exact, or portfolio (overrides the body's options.engine)")
	file := fs.String("f", "", "read the request body from this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	b, err := body(fs, *file)
	if err != nil {
		fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
		return 2
	}
	// Fold the flags into the request body so the one JSON document is
	// the full truth of what was submitted.
	var req map[string]any
	if err := json.Unmarshal(b, &req); err != nil {
		fmt.Fprintf(c.stderr, "hcactl: request is not JSON: %v\n", err)
		return 2
	}
	if *async {
		req["async"] = true
	}
	if *traceIt {
		req["trace"] = true
	}
	if *engine != "" {
		opts, _ := req["options"].(map[string]any)
		if opts == nil {
			opts = map[string]any{}
		}
		opts["engine"] = *engine
		req["options"] = opts
	}
	b, _ = json.Marshal(req)

	resp, rb, err := c.do(http.MethodPost, "/v1/compile", b)
	if err != nil {
		fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
		return 1
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		c.stdout.Write(rb)
		if len(rb) > 0 && rb[len(rb)-1] != '\n' {
			fmt.Fprintln(c.stdout)
		}
		return 0
	default:
		return c.fail("compile", resp, rb)
	}
}

func (c *ctl) batch(args []string) int {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	async := fs.Bool("async", false, "return per-entry job IDs immediately")
	summary := fs.Bool("summary", false, "print one line per entry instead of the raw JSON")
	file := fs.String("f", "", "read the batch body from this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	b, err := body(fs, *file)
	if err != nil {
		fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
		return 2
	}
	var req map[string]any
	if err := json.Unmarshal(b, &req); err != nil {
		fmt.Fprintf(c.stderr, "hcactl: batch is not JSON: %v\n", err)
		return 2
	}
	if *async {
		req["async"] = true
	}
	b, _ = json.Marshal(req)

	resp, rb, err := c.do(http.MethodPost, "/v1/compile/batch", b)
	if err != nil {
		fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		return c.fail("batch", resp, rb)
	}
	if !*summary {
		c.stdout.Write(rb)
		return 0
	}

	var br service.BatchResponse
	if err := json.Unmarshal(rb, &br); err != nil {
		fmt.Fprintf(c.stderr, "hcactl: bad batch response: %v\n", err)
		return 1
	}
	exit := 0
	for _, e := range br.Entries {
		switch {
		case e.Error != "":
			fmt.Fprintf(c.stdout, "[%d] ERROR %s\n", e.Index, e.Error)
			exit = 1
		case len(e.Result) > 0:
			var rep report.Report
			if err := json.Unmarshal(e.Result, &rep); err != nil {
				fmt.Fprintf(c.stdout, "[%d] %s (unparseable result: %v)\n", e.Index, e.State, err)
				exit = 1
				continue
			}
			mark := ""
			if e.Deduped {
				mark = " (dedup)"
			} else if e.CacheHit {
				mark = " (cache)"
			}
			fmt.Fprintf(c.stdout, "[%d] %s%s\n", e.Index, rep.OneLine(), mark)
		default:
			fmt.Fprintf(c.stdout, "[%d] %s %s\n", e.Index, e.JobID, e.State)
		}
	}
	fmt.Fprintf(c.stdout, "%d entries, %d unique, %d deduped\n", len(br.Entries), br.Unique, br.Deduped)
	return exit
}

// explore submits a design-space sweep (POST /v1/explore): one kernel
// against a fabric parameter grid, returning every point and the
// MII-vs-cost Pareto front.
//
//	hcactl explore '{"kernel":"fir2dim","grid":{"k":[8,6,4,2]}}'
//	hcactl explore -async -f sweep.json
func (c *ctl) explore(args []string) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	async := fs.Bool("async", false, "return a job ID immediately instead of waiting")
	file := fs.String("f", "", "read the request body from this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	b, err := body(fs, *file)
	if err != nil {
		fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
		return 2
	}
	var req map[string]any
	if err := json.Unmarshal(b, &req); err != nil {
		fmt.Fprintf(c.stderr, "hcactl: request is not JSON: %v\n", err)
		return 2
	}
	if *async {
		req["async"] = true
	}
	b, _ = json.Marshal(req)

	resp, rb, err := c.do(http.MethodPost, "/v1/explore", b)
	if err != nil {
		fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
		return 1
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		c.stdout.Write(rb)
		if len(rb) > 0 && rb[len(rb)-1] != '\n' {
			fmt.Fprintln(c.stdout)
		}
		return 0
	default:
		return c.fail("explore", resp, rb)
	}
}

func (c *ctl) job(args []string) int {
	if len(args) == 0 {
		fmt.Fprint(c.stderr, usage)
		return 2
	}
	switch args[0] {
	case "get":
		if len(args) != 2 {
			fmt.Fprintln(c.stderr, "usage: hcactl job get <id>")
			return 2
		}
		return c.get("/v1/jobs/" + args[1])
	case "wait":
		return c.jobWait(args[1:])
	default:
		fmt.Fprintf(c.stderr, "hcactl: unknown job subcommand %q\n%s", args[0], usage)
		return 2
	}
}

func (c *ctl) jobWait(args []string) int {
	fs := flag.NewFlagSet("job wait", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	interval := fs.Duration("interval", 250*time.Millisecond, "poll interval")
	timeout := fs.Duration("timeout", 5*time.Minute, "give up after this long")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(c.stderr, "usage: hcactl job wait [-interval d] [-timeout d] <id>")
		return 2
	}
	id := fs.Arg(0)

	deadline := time.Now().Add(*timeout)
	for {
		resp, b, err := c.do(http.MethodGet, "/v1/jobs/"+id, nil)
		if err != nil {
			fmt.Fprintf(c.stderr, "hcactl: %v\n", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			return c.fail("job "+id, resp, b)
		}
		var st struct {
			State service.State `json:"state"`
			Error string        `json:"error"`
		}
		if err := json.Unmarshal(b, &st); err != nil {
			fmt.Fprintf(c.stderr, "hcactl: bad job body: %v\n", err)
			return 1
		}
		if st.State.Terminal() {
			c.stdout.Write(b)
			if st.State != service.StateDone {
				return 1
			}
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(c.stderr, "hcactl: job %s still %s after %v\n", id, st.State, *timeout)
			return 1
		}
		time.Sleep(*interval)
	}
}
