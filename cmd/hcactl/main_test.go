package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// startDaemon serves a real service the CLI can talk to, returning the
// host:port the -addr flag wants.
func startDaemon(t *testing.T) string {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://")
}

func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCompileAndHealth(t *testing.T) {
	addr := startDaemon(t)

	code, out, errb := runCtl(t, "-addr", addr, "health")
	if code != 0 {
		t.Fatalf("health exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("health output %q", out)
	}

	code, out, errb = runCtl(t, "-addr", addr, "compile", `{"kernel":"fir2dim"}`)
	if code != 0 {
		t.Fatalf("compile exit %d: %s", code, errb)
	}
	var rep struct {
		Kernel string `json:"kernel"`
		Legal  bool   `json:"legal"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil || rep.Kernel != "fir2dim" || !rep.Legal {
		t.Fatalf("compile output (%v): %s", err, out)
	}

	code, out, _ = runCtl(t, "-addr", addr, "metrics")
	if code != 0 || !strings.Contains(out, `"requests"`) {
		t.Fatalf("metrics exit %d: %s", code, out)
	}
}

// The compile -engine flag folds into the request body's options and
// round-trips into the report; unknown engines surface the daemon's
// typed 400 as a non-zero exit.
func TestCompileEngineFlag(t *testing.T) {
	addr := startDaemon(t)

	code, out, errb := runCtl(t, "-addr", addr, "compile", "-engine", "portfolio", `{"kernel":"fir2dim"}`)
	if code != 0 {
		t.Fatalf("compile -engine portfolio exit %d: %s", code, errb)
	}
	var rep struct {
		Engine string `json:"engine"`
		Legal  bool   `json:"legal"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil || !rep.Legal {
		t.Fatalf("compile output (%v): %s", err, out)
	}
	if rep.Engine != "portfolio" {
		t.Fatalf("report engine %q, want portfolio", rep.Engine)
	}

	code, _, errb = runCtl(t, "-addr", addr, "compile", "-engine", "annealing", `{"kernel":"fir2dim"}`)
	if code == 0 {
		t.Fatal("unknown engine accepted")
	}
	if !strings.Contains(errb, "engine") {
		t.Fatalf("error does not mention the engine field: %s", errb)
	}
}

func TestAsyncCompileAndJobWait(t *testing.T) {
	addr := startDaemon(t)

	code, out, errb := runCtl(t, "-addr", addr, "compile", "-async", `{"synth":{"ops":64,"seed":5,"rec_latency":3}}`)
	if code != 0 {
		t.Fatalf("async compile exit %d: %s", code, errb)
	}
	var st service.Status
	if err := json.Unmarshal([]byte(out), &st); err != nil || st.ID == "" {
		t.Fatalf("async status (%v): %s", err, out)
	}

	code, out, errb = runCtl(t, "-addr", addr, "job", "wait", "-timeout", "60s", st.ID)
	if code != 0 {
		t.Fatalf("job wait exit %d: %s", code, errb)
	}
	if !strings.Contains(out, `"done"`) {
		t.Fatalf("job wait output %q", out)
	}

	code, out, _ = runCtl(t, "-addr", addr, "job", "get", st.ID)
	if code != 0 || !strings.Contains(out, `"result"`) {
		t.Fatalf("job get exit %d: %s", code, out)
	}
}

func TestBatchSummary(t *testing.T) {
	addr := startDaemon(t)

	body := `{"entries":[{"kernel":"fir2dim"},{"kernel":"idcthor"},{"kernel":"fir2dim"}]}`
	code, out, errb := runCtl(t, "-addr", addr, "batch", "-summary", body)
	if code != 0 {
		t.Fatalf("batch exit %d: %s", code, errb)
	}
	for _, want := range []string{"[0] fir2dim", "[1] idcthor", "[2] fir2dim", "(dedup)", "3 entries, 2 unique, 1 deduped"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestDaemonErrorsSurfaceNonZero(t *testing.T) {
	addr := startDaemon(t)

	code, _, errb := runCtl(t, "-addr", addr, "compile", `{"kernel":"nope"}`)
	if code != 1 {
		t.Fatalf("bad kernel exit %d", code)
	}
	if !strings.Contains(errb, "status 400") {
		t.Fatalf("stderr %q", errb)
	}

	code, _, errb = runCtl(t, "-addr", addr, "job", "get", "job-999999")
	if code != 1 || !strings.Contains(errb, "status 404") {
		t.Fatalf("unknown job exit %d: %s", code, errb)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCtl(t); code != 2 {
		t.Errorf("no args exit %d, want 2", code)
	}
	if code, _, _ := runCtl(t, "frobnicate"); code != 2 {
		t.Errorf("unknown command exit %d, want 2", code)
	}
	if code, _, _ := runCtl(t, "compile", "-f", "x.json", `{"kernel":"fir2dim"}`); code != 2 {
		t.Errorf("conflicting body sources exit %d, want 2", code)
	}
}
