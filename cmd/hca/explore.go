package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ddg"
	"repro/internal/dse"
)

// runExplore handles -explore: parse the axis spec, sweep the kernel
// over the grid with one shared subproblem memo, and print the
// per-point results plus the MII-vs-cost Pareto front.
func runExplore(d *ddg.DDG, spec, engine string, beam, cand int, exactBudget int64, jsonOut, verbose bool) error {
	g, err := dse.ParseGrid(spec)
	if err != nil {
		return err
	}
	// The -engine flag is the default engine axis; an explicit
	// "engines=..." clause in the spec wins.
	if len(g.Engines) == 0 && engine != "" {
		g.Engines = []string{engine}
	}
	res, err := dse.Sweep(context.Background(), d, g, dse.Options{
		Beam: beam, Cand: cand, ExactBudget: exactBudget,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", b)
		return nil
	}

	st := res.Stats
	fmt.Printf("design-space sweep: %s, %d points (%d unique, %d deduped)\n",
		res.Kernel, st.Points, st.Unique, st.Deduped)
	fmt.Printf("memo: %d hits / %d misses (ratio %.2f), wall %.1f ms\n",
		st.Memo.Hits, st.Memo.Misses, st.MemoHitRatio, float64(st.WallNs)/1e6)
	onFront := make(map[int]bool, len(res.Front))
	for _, f := range res.Front {
		onFront[f.Index] = true
	}
	fmt.Printf("\n%-4s %-32s %-10s %5s %9s  %s\n", "idx", "machine", "engine", "mii", "cost", "")
	for _, p := range res.Points {
		mark := ""
		if onFront[p.Index] {
			mark = "pareto"
		}
		if p.Error != "" {
			fmt.Printf("%-4d %-32s %-10s %5s %9s  error: %s\n", p.Index, p.Machine, p.Engine, "-", "-", p.Error)
			continue
		}
		dedup := ""
		if p.Canonical != p.Index {
			dedup = fmt.Sprintf(" (= point %d)", p.Canonical)
		}
		fmt.Printf("%-4d %-32s %-10s %5d %9d  %s%s\n",
			p.Index, p.Machine, p.Engine, p.MIIFinal, p.Cost.Total, mark, dedup)
		if verbose {
			fmt.Printf("     fp %s  rec/res %d/%d  all-levels %d  recvs %d  winner %s\n",
				p.Fingerprint, p.MIIRec, p.MIIRes, p.MIIAllLevels, p.Receives, p.Winner)
		}
	}
	if len(res.Front) == 0 {
		fmt.Println("\npareto front: empty (no legal point)")
		return nil
	}
	fmt.Println("\npareto front (cost ascending):")
	for _, f := range res.Front {
		fmt.Printf("  mii %-4d cost %-9d %s\n", f.MII, f.Cost, f.Machine)
	}
	if st.Failed > 0 {
		fmt.Fprintf(os.Stderr, "hca: %d of %d points failed\n", st.Failed, st.Points)
	}
	return nil
}
