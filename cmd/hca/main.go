// Command hca clusterizes one of the paper's multimedia kernels (or a
// synthetic workload) onto a DSPFabric or RCP machine with Hierarchical
// Cluster Assignment and prints the full report: Table-1 figures, the
// per-level solutions, and optionally the achieved modulo-schedule II.
//
// Usage:
//
//	hca -kernel idcthor -n 8 -m 8 -k 8 -schedule
//	hca -kernel fir2dim -rcp -clusters 8 -ports 2
//	hca -synth 128 -seed 3 -reclat 4
//
// Profiling: -cpuprofile and -memprofile write pprof files covering the
// whole compile (load → HCA → scheduling → emission), for
// `go tool pprof`:
//
//	hca -kernel h264deblocking -cpuprofile cpu.out -memprofile mem.out
//
// Telemetry: -trace out.json records the compile and writes a Chrome
// trace-event file (open in Perfetto or chrome://tracing; one span per
// subproblem, per-variant spans under -feedback); -trace-summary prints
// the per-phase time table and search counters instead:
//
//	hca -kernel fir2dim -feedback -trace out.json -trace-summary
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/dma"
	"repro/internal/driver"
	"repro/internal/emit"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/regalloc"
	"repro/internal/report"
	"repro/internal/see"
	"repro/internal/trace"
)

func main() {
	var (
		kernel   = flag.String("kernel", "fir2dim", "kernel name: fir2dim, idcthor, mpeg2inter, h264deblocking")
		synth    = flag.Int("synth", 0, "use a synthetic DDG with this many ops instead of -kernel")
		srcFile  = flag.String("src", "", "compile a kernel-description file (see internal/lang) instead of -kernel")
		seed     = flag.Int64("seed", 1, "synthetic workload seed")
		recLat   = flag.Int("reclat", 3, "synthetic recurrence latency (0 = none)")
		n        = flag.Int("n", 8, "DSPFabric level-0 switch capacity N")
		m        = flag.Int("m", 8, "DSPFabric level-1 MUX capacity M")
		k        = flag.Int("k", 8, "DSPFabric leaf crossbar external inputs K")
		rcp      = flag.Bool("rcp", false, "target the flat RCP ring instead of DSPFabric")
		clusters = flag.Int("clusters", 8, "RCP cluster count")
		nbrs     = flag.Int("neighbors", 2, "RCP ring neighborhood")
		ports    = flag.Int("ports", 2, "RCP input ports per cluster")
		beam     = flag.Int("beam", 8, "SEE beam width (node filter)")
		cand     = flag.Int("cand", 4, "SEE candidate filter width")
		engine   = flag.String("engine", "see", "subproblem engine: see, exact, or portfolio (beam raced vs exact)")
		exactBud = flag.Int64("exact-budget", 0, "exact engine node-expansion budget per subproblem (0 = default)")
		explore  = flag.String("explore", "", `sweep the kernel over a fabric parameter grid instead of one machine, e.g. "n=8,6;m=8,6;k=8,6,4,2" or "type=rcp;neighbors=2,4" (see internal/dse.ParseGrid); prints the per-point results and the MII-vs-cost Pareto front`)
		schedule = flag.Bool("schedule", false, "also run iterative modulo scheduling")
		feedback = flag.Bool("feedback", false, "run the §5 feedback loop: race heuristic variants by achieved II (implies -schedule)")
		emitAsm  = flag.Bool("emit", false, "emit the loadable program listing (implies -schedule)")
		dmaProg  = flag.Bool("dma", false, "print the DMA stream programming")
		pmap     = flag.Bool("map", false, "print the CN placement map")
		verbose  = flag.Bool("v", false, "print per-level solutions")
		jsonOut  = flag.Bool("json", false, "print the machine-readable result (same struct the hcad daemon returns)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "record the compile and write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
		traceSum = flag.Bool("trace-summary", false, "record the compile and print the per-phase telemetry table")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		addProfileTeardown(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProf != "" {
		path := *memProf
		addProfileTeardown(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hca: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hca: memprofile:", err)
			}
		})
	}
	defer stopProfiles()

	var d *ddg.DDG
	if *srcFile != "" {
		text, err := os.ReadFile(*srcFile)
		if err != nil {
			fatal(err)
		}
		d, err = lang.Compile(string(text))
		if err != nil {
			fatal(err)
		}
	} else if *synth > 0 {
		d = kernels.Synthetic(kernels.SynthConfig{Ops: *synth, Seed: *seed, RecLatency: *recLat})
	} else {
		kn, err := kernels.ByName(*kernel)
		if err != nil {
			fatal(err)
		}
		d = kn.Build()
	}

	if *explore != "" {
		if err := runExplore(d, *explore, *engine, *beam, *cand, *exactBud, *jsonOut, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	var mc *machine.Config
	if *rcp {
		mc = machine.RCP(*clusters, *nbrs, *ports)
	} else {
		mc = machine.DSPFabric64(*n, *m, *k)
	}

	// Telemetry is on whenever either trace output is requested; the
	// recorder rides the context through the whole pipeline.
	var rec *trace.Recorder
	ctx := context.Background()
	if *traceOut != "" || *traceSum {
		rec = trace.New()
		ctx = trace.With(ctx, rec)
	}

	opt := core.Options{
		SEE:         see.Config{BeamWidth: *beam, CandWidth: *cand},
		Engine:      *engine,
		ExactBudget: *exactBud,
	}
	var res *core.Result
	var sch *modsched.Schedule
	variant := ""
	if *feedback {
		fb, err := driver.HCAWithFeedback(ctx, d, mc, opt)
		if err != nil {
			fatal(err)
		}
		res, sch, variant = fb.Result, fb.Schedule, fb.Variant
	} else {
		var err error
		res, err = core.HCA(ctx, d, mc, opt)
		if err != nil {
			fatal(err)
		}
		if *schedule || *emitAsm {
			sch, err = modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
			if err != nil {
				fatal(err)
			}
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	rep := report.Build(res, sch, variant, rec)
	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", b)
		return
	}
	if err := rep.WriteText(os.Stdout, *verbose); err != nil {
		fatal(err)
	}
	if *traceSum {
		fmt.Println()
		if err := rec.Summary().WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *pmap {
		fmt.Println("\nplacement map (instructions per CN; sets | subgroups):")
		perCN := make([]int, mc.TotalCNs())
		for _, cn := range res.CN {
			perCN[cn]++
		}
		if mc.NumLevels() == 3 {
			for set := 0; set < 4; set++ {
				fmt.Printf("  set %d:", set)
				for sub := 0; sub < 4; sub++ {
					fmt.Printf("  [")
					for c := 0; c < 4; c++ {
						fmt.Printf(" %2d", perCN[set*16+sub*4+c])
					}
					fmt.Printf(" ]")
				}
				fmt.Println()
			}
		} else {
			for cn, k := range perCN {
				if k > 0 {
					fmt.Printf("  cn%-3d %d\n", cn, k)
				}
			}
		}
	}

	if *dmaProg {
		p := dma.Analyze(d)
		var sb strings.Builder
		p.WriteText(&sb)
		fmt.Println()
		fmt.Print(sb.String())
	}

	if *emitAsm {
		alloc, err := regalloc.Run(res.Final, sch, mc, 64)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("register allocation: max %d/%d rotating slots per CN, spills %d\n",
			alloc.MaxRegs, alloc.Capacity, len(alloc.Spilled))
		prog, err := emit.Build(res, sch, alloc)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := prog.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// profileTeardowns flushes any -cpuprofile/-memprofile output. It is
// package state (not just defers) because fatal exits with os.Exit,
// which skips defers — error paths still deserve a usable profile.
var profileTeardowns []func()

func addProfileTeardown(fn func()) { profileTeardowns = append(profileTeardowns, fn) }

// stopProfiles runs each teardown exactly once (it is reached both by
// main's defer and by fatal).
func stopProfiles() {
	for _, fn := range profileTeardowns {
		fn()
	}
	profileTeardowns = nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hca:", err)
	stopProfiles()
	os.Exit(1)
}
