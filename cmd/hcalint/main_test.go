package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestEncodeJSONSchema pins the -json wire format consumed by CI: an
// array of {file, line, col, analyzer, message} objects with paths
// relative to the module root.
func TestEncodeJSONSchema(t *testing.T) {
	found := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/pg/flow.go", Line: 42, Column: 7},
			Analyzer: "flowlife",
			Message:  "flow f may be used after Release",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 1, Column: 1},
			Analyzer: "sharecap",
			Message:  "closure writes captured variable n",
		},
	}
	var buf bytes.Buffer
	if err := encodeJSON(&buf, "/mod", found); err != nil {
		t.Fatalf("encodeJSON: %v", err)
	}

	// The output must be valid JSON with exactly the five lower-case
	// keys per object — CI scripts key on them.
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("output is not a JSON array of objects: %v\n%s", err, buf.String())
	}
	if len(raw) != 2 {
		t.Fatalf("got %d objects, want 2", len(raw))
	}
	for i, obj := range raw {
		for _, key := range []string{"file", "line", "col", "analyzer", "message"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("object %d missing key %q", i, key)
			}
		}
		if len(obj) != 5 {
			t.Errorf("object %d has %d keys, want 5: %v", i, len(obj), obj)
		}
	}

	var diags []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	if diags[0].File != "internal/pg/flow.go" {
		t.Errorf("in-module path not relativized: %q", diags[0].File)
	}
	if diags[0].Line != 42 || diags[0].Col != 7 {
		t.Errorf("position mangled: line=%d col=%d", diags[0].Line, diags[0].Col)
	}
	if diags[0].Analyzer != "flowlife" || !strings.Contains(diags[0].Message, "Release") {
		t.Errorf("analyzer/message mangled: %+v", diags[0])
	}
	// Paths outside the module root pass through untouched rather than
	// growing ../ prefixes.
	if diags[1].File != "/elsewhere/outside.go" {
		t.Errorf("out-of-module path rewritten: %q", diags[1].File)
	}
}

// TestEncodeJSONEmpty: a clean run emits an empty array, never null —
// `jq -e 'type=="array"'` in CI depends on it.
func TestEncodeJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := encodeJSON(&buf, "/mod", nil); err != nil {
		t.Fatalf("encodeJSON: %v", err)
	}
	got := strings.TrimSpace(buf.String())
	if got != "[]" {
		t.Errorf("clean run emitted %q, want []", got)
	}
	var raw []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("empty output does not round-trip: %v", err)
	}
}

// TestSelectAnalyzers covers the -only flag parsing against the
// registry-backed suite.
func TestSelectAnalyzers(t *testing.T) {
	everything, err := selectAnalyzers("")
	if err != nil {
		t.Fatalf("default selection: %v", err)
	}
	if len(everything) != len(all) {
		t.Errorf("default selection dropped analyzers: %d != %d", len(everything), len(all))
	}

	subset, err := selectAnalyzers("flowlife, memodisc")
	if err != nil {
		t.Fatalf("subset selection: %v", err)
	}
	if len(subset) != 2 || subset[0].Name != "flowlife" || subset[1].Name != "memodisc" {
		names := make([]string, len(subset))
		for i, a := range subset {
			names[i] = a.Name
		}
		t.Errorf("subset selection got %v, want [flowlife memodisc]", names)
	}

	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Error("unknown analyzer name did not error")
	}
}
