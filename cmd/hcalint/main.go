// Command hcalint is the repo's multichecker: it runs the custom
// analyzers under internal/analysis over the module and exits nonzero
// on any finding. It is wired into `make lint` (and thus `make check`)
// so the hot-path, journal, trace, flow-lifecycle, share-capture and
// memo-discipline invariants fail CI rather than a profiler.
//
// Usage:
//
//	hcalint [-only a,b] [-json] [package patterns]
//
// The only supported pattern today is ./... (the whole module), which
// is also the default. -only restricts the run to a comma-separated
// subset of analyzers, useful when iterating on a fix:
//
//	go run ./cmd/hcalint -only hotpathalloc ./...
//
// -json emits the findings as a JSON array of
// {file, line, col, analyzer, message} objects on stdout (an empty
// array when clean) for machine consumers; the human format
// "file:line:col: message (analyzer)" is matched by the GitHub Actions
// problem matcher in .github/hcalint-problem-matcher.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/registry"
)

// all registers every analyzer in the suite.
var all = registry.Analyzers()

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcalint:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcalint:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root)
	if loader.ModulePath == "" {
		fmt.Fprintf(os.Stderr, "hcalint: no module path in %s/go.mod\n", root)
		os.Exit(2)
	}

	paths, err := expandPatterns(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcalint:", err)
		os.Exit(2)
	}

	var found []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hcalint:", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, analyzers, loader)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hcalint:", err)
			os.Exit(2)
		}
		found = append(found, diags...)
	}

	if *asJSON {
		if err := encodeJSON(os.Stdout, root, found); err != nil {
			fmt.Fprintln(os.Stderr, "hcalint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range found {
			fmt.Println(relativize(root, d).String())
		}
	}
	if len(found) > 0 {
		fmt.Fprintf(os.Stderr, "hcalint: %d finding(s)\n", len(found))
		os.Exit(1)
	}
}

// encodeJSON writes the -json wire form: always a JSON array (empty
// when clean, never null), findings ordered as reported, file paths
// relative to the module root.
func encodeJSON(w io.Writer, root string, found []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(found))
	for _, d := range found {
		d = relativize(root, d)
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expandPatterns turns the argument list into import paths. "./..."
// (or no arguments) expands to every package in the module; explicit
// relative directories and import paths pass through.
func expandPatterns(loader *analysis.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	var out []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			paths, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			out = append(out, paths...)
		case strings.HasPrefix(arg, "./"):
			out = append(out, loader.ModulePath+"/"+filepath.ToSlash(strings.TrimPrefix(arg, "./")))
		default:
			out = append(out, arg)
		}
	}
	return out, nil
}

// relativize rewrites the diagnostic's file path relative to the module
// root, which keeps CI output clickable and stable across machines.
func relativize(root string, d analysis.Diagnostic) analysis.Diagnostic {
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d
}
