// Command hcalint is the repo's multichecker: it runs the custom
// analyzers under internal/analysis over the module and exits nonzero
// on any finding. It is wired into `make lint` (and thus `make check`)
// so the hot-path, journal, trace and API invariants fail CI rather
// than a profiler.
//
// Usage:
//
//	hcalint [-only a,b] [package patterns]
//
// The only supported pattern today is ./... (the whole module), which
// is also the default. -only restricts the run to a comma-separated
// subset of analyzers, useful when iterating on a fix:
//
//	go run ./cmd/hcalint -only hotpathalloc ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/errtyped"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/journalbalance"
	"repro/internal/analysis/spanend"
)

// all registers every analyzer in the suite.
var all = []*analysis.Analyzer{
	ctxfirst.Analyzer,
	errtyped.Analyzer,
	hotpathalloc.Analyzer,
	journalbalance.Analyzer,
	spanend.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcalint:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcalint:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root)
	if loader.ModulePath == "" {
		fmt.Fprintf(os.Stderr, "hcalint: no module path in %s/go.mod\n", root)
		os.Exit(2)
	}

	paths, err := expandPatterns(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcalint:", err)
		os.Exit(2)
	}

	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hcalint:", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, analyzers, loader)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hcalint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(rel(root, d))
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "hcalint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expandPatterns turns the argument list into import paths. "./..."
// (or no arguments) expands to every package in the module; explicit
// relative directories and import paths pass through.
func expandPatterns(loader *analysis.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	var out []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			paths, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			out = append(out, paths...)
		case strings.HasPrefix(arg, "./"):
			out = append(out, loader.ModulePath+"/"+filepath.ToSlash(strings.TrimPrefix(arg, "./")))
		default:
			out = append(out, arg)
		}
	}
	return out, nil
}

// rel prints the diagnostic with its file path relative to the module
// root, which keeps CI output clickable and stable across machines.
func rel(root string, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}
