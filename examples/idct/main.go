// The full compilation and execution pipeline on the IDCT row kernel:
// build the DDG, clusterize it hierarchically, modulo-schedule the result
// (with its receive primitives), execute the kernel-only schedule on the
// cycle-driven fabric simulator, and verify the transformed image against
// the sequential reference semantics.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/sim"
)

func main() {
	d := kernels.IDCTHor()
	mc := machine.DSPFabric64(8, 8, 8)

	// 1. Hierarchical cluster assignment.
	res, err := core.HCA(context.Background(), d, mc, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HCA: legal=%v, Final MII=%d, %d receives inserted\n",
		res.Legal, res.MII.Final, res.Recvs)

	// 2. Iterative modulo scheduling of the post-processed DDG.
	sched, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modulo schedule: II=%d, %d stages (kernel-only, fully predicated)\n",
		sched.II, sched.Stages)

	// 3. Simulate 8x8 block rows: each iteration transforms one row of
	// eight coefficients in place.
	const rows = 32
	rng := rand.New(rand.NewSource(2026))
	mem := ddg.MapMemory{}
	for i := int64(0); i < rows*8; i++ {
		mem[i] = int64(rng.Intn(2048) - 1024)
	}
	stats, err := sim.Check(res.Final, sched, mc, mem, rows, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: %d cycles for %d rows (%.2f cycles/row asymptotic II %d)\n",
		stats.Cycles, rows, float64(stats.Cycles)/rows, sched.II)
	fmt.Printf("  %d dynamic ops, %d operand migrations, peak buffer %d, peak DMA %d/%d\n",
		stats.Executed, stats.Receives, stats.MaxBufferOcc, stats.PeakDMA, mc.DMAPorts)
	fmt.Println("  output verified against the sequential reference ✓")
}
