// Bandwidth design-space exploration (the experiment behind §5's claim
// that "lower bandwidths cause a rapid degradation of the clusterization
// quality"): sweep the interconnect capacities N = M = K and watch the
// achievable initiation interval degrade — or the clusterization become
// outright infeasible.
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func main() {
	fmt.Printf("%-16s", "bandwidth")
	for _, k := range kernels.All() {
		fmt.Printf(" %16s", k.Name)
	}
	fmt.Println()
	for _, bw := range []int{8, 6, 4, 2} {
		mc := machine.DSPFabric64(bw, bw, bw)
		fmt.Printf("N=M=K=%-10d", bw)
		for _, k := range kernels.All() {
			res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
			if err != nil {
				fmt.Printf(" %16s", "infeasible")
				continue
			}
			fmt.Printf(" %10d (+%2d)", res.MII.Final, res.MII.AllLevels-res.MII.Final)
		}
		fmt.Println()
	}
	fmt.Println("\ncells: paper-definition Final MII (+extra pressure at deeper levels)")
}
