// Quickstart: clusterize one multimedia kernel onto the 64-CN DSPFabric
// with Hierarchical Cluster Assignment and print the Table-1 figures.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func main() {
	// The paper's four kernels are prebuilt; fir2dim is the 2-D FIR
	// filter from DSPstone (57 instructions).
	kernel, err := kernels.ByName("fir2dim")
	if err != nil {
		log.Fatal(err)
	}
	d := kernel.Build()

	// The paper's best machine configuration: N = M = K = 8.
	mc := machine.DSPFabric64(8, 8, 8)

	res, err := core.HCA(context.Background(), d, mc, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s\n", d.Name, mc)
	fmt.Printf("  N_Instr   %d\n", d.Len())
	fmt.Printf("  MIIRec    %d\n", res.MII.Rec)
	fmt.Printf("  MIIRes    %d\n", res.MII.Res)
	fmt.Printf("  legal     %v\n", res.Legal)
	fmt.Printf("  Final MII %d (paper reports %d)\n", res.MII.Final, kernel.PaperFinalMII)

	// Where did each instruction land? res.CN maps DDG nodes to
	// computation nodes 0..63.
	used := map[int]bool{}
	for _, cn := range res.CN {
		used[cn] = true
	}
	fmt.Printf("  spread    %d instructions over %d of %d CNs, %d receive primitives\n",
		d.Len(), len(used), mc.TotalCNs(), res.Recvs)
}
