// The complete compiler toolchain, end to end, on the motion-estimation
// SAD kernel: DDG construction → hierarchical cluster assignment →
// iterative modulo scheduling → rotating-register allocation → DMA stream
// programming → loadable program emission → cycle-accurate simulation
// verified against the reference semantics. This is everything the paper
// built or planned (§5), in one run.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/dma"
	"repro/internal/emit"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/regalloc"
	"repro/internal/sim"
)

func main() {
	d := kernels.SAD16()
	mc := machine.DSPFabric64(8, 8, 8)

	// 1. Hierarchical cluster assignment (the paper's contribution).
	res, err := core.HCA(context.Background(), d, mc, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[1] HCA          legal=%v FinalMII=%d receives=%d subproblems=%d\n",
		res.Legal, res.MII.Final, res.Recvs, len(res.Levels))

	// 2. Iterative modulo scheduling (§5 future work).
	sched, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[2] modsched     II=%d stages=%d\n", sched.II, sched.Stages)

	// 3. Rotating-register allocation (§5 future work).
	alloc, err := regalloc.Run(res.Final, sched, mc, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[3] regalloc     max %d/%d slots per CN, spills=%d\n",
		alloc.MaxRegs, alloc.Capacity, len(alloc.Spilled))

	// 4. DMA stream programming (§5 future work).
	prog := dma.Analyze(d)
	fmt.Printf("[4] dma          %d streams, programmable=%v\n",
		len(prog.Descriptors), prog.Programmable)

	// 5. Program emission: reconfiguration preamble + kernel listing.
	image, err := emit.Build(res, sched, alloc)
	if err != nil {
		log.Fatal(err)
	}
	st := image.ProgramStats()
	fmt.Printf("[5] emit         %d wire directives, %d kernel slots, %d instructions\n",
		st.ConfigDirectives, st.KernelSlots, st.Instructions)

	// 6. Simulate and verify against the sequential reference.
	rng := rand.New(rand.NewSource(42))
	mem := ddg.MapMemory{}
	const rows = 24
	for i := int64(0); i < 16*rows; i++ {
		mem[kernels.SadCur+i] = int64(rng.Intn(256))
		mem[kernels.SadRef+i] = int64(rng.Intn(256))
	}
	stats, err := sim.Check(res.Final, sched, mc, mem, rows, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[6] sim          %d cycles for %d rows, verified against reference ✓\n",
		stats.Cycles, rows)

	if len(os.Args) > 1 && os.Args[1] == "-listing" {
		var sb strings.Builder
		prog.WriteText(&sb)
		fmt.Println()
		fmt.Print(sb.String())
		fmt.Println()
		if err := image.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
