// Bring your own kernel: build a loop-body DDG with the ddg builder API —
// here a saturating 5-tap 1-D convolution with a wrap-around input
// pointer — validate it, check its MII bounds, run it through HCA on both
// target families (hierarchical DSPFabric and flat RCP ring), and execute
// it with the interpreter to prove the dataflow computes what you meant.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
)

func buildConv5() *ddg.DDG {
	d := ddg.New("conv5")

	// Wrap-around input pointer: base' = (base+1 < 256) ? base+1 : 0 — a
	// latency-3 recurrence that pins MIIRec at 3, like fir2dim's walker.
	zero := d.AddConst(0, "zero")
	lim := d.AddConst(256, "lim")
	nb := d.AddOpImm(ddg.OpAdd, "nb", 1)
	w := d.AddOp(ddg.OpCmpLT, "w")
	base := d.AddOp(ddg.OpSelect, "base")
	d.AddDep(base, nb, 0, 1)
	d.AddDep(nb, w, 0, 0)
	d.AddDep(lim, w, 1, 0)
	d.AddDep(w, base, 0, 0)
	d.AddDep(nb, base, 1, 0)
	d.AddDep(zero, base, 2, 0)

	// Five taps with register-held coefficients.
	coeffs := []int64{1, 4, 6, 4, 1}
	var prods []graph.NodeID
	for i, cv := range coeffs {
		addr := base
		if i > 0 {
			a := d.AddOpImm(ddg.OpAdd, "a", int64(i))
			d.AddDep(base, a, 0, 0)
			addr = a
		}
		ld := d.AddOp(ddg.OpLoad, "x")
		d.AddDep(addr, ld, 0, 0)
		c := d.AddConst(cv, "c")
		m := d.AddOp(ddg.OpMul, "p")
		d.AddDep(ld, m, 0, 0)
		d.AddDep(c, m, 1, 0)
		prods = append(prods, m)
	}

	// Reduce, round, shift, saturate to uint8, store.
	sum := prods[0]
	for _, p := range prods[1:] {
		s := d.AddOp(ddg.OpAdd, "s")
		d.AddDep(sum, s, 0, 0)
		d.AddDep(p, s, 1, 0)
		sum = s
	}
	r := d.AddOpImm(ddg.OpAdd, "round", 8)
	d.AddDep(sum, r, 0, 0)
	sh := d.AddOpImm(ddg.OpShr, "shift", 4)
	d.AddDep(r, sh, 0, 0)
	sat := d.AddOpImm(ddg.OpClip, "sat", 255)
	d.AddDep(sh, sat, 0, 0)
	d.AddDep(zero, sat, 1, 0)
	outp := d.AddIV(1<<16, 1, "outp")
	st := d.AddOp(ddg.OpStore, "st")
	d.AddDep(outp, st, 0, 0)
	d.AddDep(sat, st, 1, 0)
	return d
}

func main() {
	d := buildConv5()
	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}
	s := d.Stats()
	fmt.Printf("conv5: %d instructions, %d memory ops, MIIRec=%d\n", s.Instr, s.MemOps, d.MIIRec())

	// Prove the dataflow is the algorithm you meant.
	mem := ddg.MapMemory{}
	for i := int64(0); i < 64; i++ {
		mem[i] = i
	}
	if _, err := d.Interpret(mem, 10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpret: out[0..4] = %d %d %d %d %d\n",
		mem[1<<16], mem[1<<16+1], mem[1<<16+2], mem[1<<16+3], mem[1<<16+4])

	for _, mc := range []*machine.Config{
		machine.DSPFabric64(8, 8, 8),
		machine.RCP(8, 2, 2),
	} {
		res, err := core.HCA(context.Background(), d, mc, core.Options{})
		if err != nil {
			log.Fatalf("%s: %v", mc.Name, err)
		}
		fmt.Printf("%-28s legal=%v Final MII=%d AllLevels=%d receives=%d\n",
			mc.Name, res.Legal, res.MII.Final, res.MII.AllLevels, res.Recvs)
	}
}
