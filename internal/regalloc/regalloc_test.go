package regalloc

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
)

func TestBlockSizes(t *testing.T) {
	// A value alive across k stages needs k+1 slots.
	d := ddg.New("b")
	a := d.AddConst(1, "a")
	u := d.AddOp(ddg.OpAbs, "u")
	d.AddDep(a, u, 0, 0)
	mc := machine.DSPFabric64(8, 8, 8)
	s := &modsched.Schedule{II: 2, Stages: 4, Time: []int{0, 7}, CN: []int{0, 1}}
	if err := modsched.Verify(d, s, mc); err != nil {
		t.Fatal(err)
	}
	r, err := Run(d, s, mc, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range r.Allocs {
		if al.Value == a {
			// lifetime 7, II 2 → 7/2+1 = 4 slots
			if al.Slots != 4 {
				t.Errorf("a slots = %d, want 4", al.Slots)
			}
		}
	}
	if err := Verify(d, s, r); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateAllKernels(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := Run(res.Final, s, mc, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !alloc.Fits() {
			t.Errorf("%s: %d values spilled with a 64-entry file", k.Name, len(alloc.Spilled))
		}
		if err := Verify(res.Final, s, alloc); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		// Adjacent allocation equals the RegPressure accounting exactly.
		press := modsched.RegPressure(res.Final, s, mc.TotalCNs())
		for cn, used := range alloc.RegsUsed {
			if used != press[cn] {
				t.Errorf("%s: CN %d uses %d regs, pressure says %d", k.Name, cn, used, press[cn])
			}
		}
		t.Logf("%s: II=%d max %d regs/CN (capacity %d)", k.Name, s.II, alloc.MaxRegs, alloc.Capacity)
	}
}

func TestSpillWhenTiny(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), kernels.H264Deblock(), mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A register file barely larger than the reserved buffers must spill.
	alloc, err := Run(res.Final, s, mc, 2*mc.DMAFIFODepth+2)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Fits() {
		t.Error("expected spills with a 2-register budget")
	}
	if err := Verify(res.Final, s, alloc); err != nil {
		t.Fatal(err)
	}
	// Spills prefer the longest lifetimes.
	if len(alloc.Spilled) == 0 {
		t.Fatal("no spills recorded")
	}
}

func TestCapacity(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8) // FIFO depth 8 → 2*8 reserved
	if got := Capacity(mc, 64); got != 48 {
		t.Errorf("Capacity = %d, want 48", got)
	}
	if got := Capacity(mc, 10); got != 1 {
		t.Errorf("tiny Capacity = %d, want 1 (floor)", got)
	}
}

func TestAdjacentBlocksDisjoint(t *testing.T) {
	// Four single-stage values on one CN: four disjoint 1-slot blocks.
	d := ddg.New("adj")
	a := d.AddConst(1, "a")
	ua := d.AddOp(ddg.OpAbs, "ua")
	d.AddDep(a, ua, 0, 0)
	b := d.AddConst(2, "b")
	ub := d.AddOp(ddg.OpAbs, "ub")
	d.AddDep(b, ub, 0, 0)
	mc := machine.DSPFabric64(8, 8, 8)
	s := &modsched.Schedule{II: 4, Stages: 1, Time: []int{0, 1, 2, 3}, CN: []int{0, 0, 0, 0}}
	if err := modsched.Verify(d, s, mc); err != nil {
		t.Fatal(err)
	}
	alloc, err := Run(d, s, mc, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d, s, alloc); err != nil {
		t.Fatal(err)
	}
	if alloc.RegsUsed[0] != 4 {
		t.Errorf("RegsUsed = %d, want 4 (one slot each)", alloc.RegsUsed[0])
	}
}

func TestRunMismatch(t *testing.T) {
	d := ddg.New("x")
	d.AddConst(1, "c")
	s := &modsched.Schedule{II: 1, Time: nil, CN: nil}
	if _, err := Run(d, s, machine.DSPFabric64(8, 8, 8), 64); err == nil {
		t.Fatal("accepted mismatched schedule")
	}
}
