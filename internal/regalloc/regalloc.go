// Package regalloc implements rotating-register allocation for
// modulo-scheduled kernels — with modulo scheduling (modsched) and DMA
// programming (dma), the third and last phase the paper defers to future
// work (§5: "we will implement the modulo scheduling phase, the register
// allocation and the DMA programming").
//
// Under kernel-only modulo scheduling a value born at cycle t with last
// use at cycle t+L has ceil(L/II)+1 instances alive simultaneously across
// the overlapped iterations; the DSPFabric CNs provide rotating register
// files (§2.2) so one register *name* addresses all instances, occupying
// that many physical slots of the rotating file. The allocator uses
// Rau's *adjacent allocation* scheme: every value receives its own name
// and a contiguous block of slots (sharing names across values would
// require modulo-variable-expansion renaming, which the DSPFabric's
// rotation hardware makes unnecessary), and the per-CN demand is checked
// against the register file capacity after reserving the two
// input-buffer regions.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/modsched"
)

// Alloc is the register assignment of one value.
type Alloc struct {
	Value graph.NodeID
	CN    int
	Reg   int // first slot of the value's block in the CN's rotating file
	Slots int // block size: ceil(lifetime/II)+1 concurrent instances
	Def   int // definition cycle within the iteration schedule
	Life  int // lifetime in cycles (0 = dies in the defining cycle)
}

// Result is a complete allocation.
type Result struct {
	II     int
	Allocs []Alloc
	// RegsUsed[cn] is the number of rotating slots CN cn consumes.
	RegsUsed []int
	// MaxRegs is the largest per-CN demand.
	MaxRegs int
	// Capacity is the per-CN slot budget used for the spill check
	// (register file minus the two input-buffer regions).
	Capacity int
	// Spilled lists values that did not fit (empty when the allocation
	// succeeds). Values spill largest-lifetime-last, so short-lived
	// values keep their registers.
	Spilled []graph.NodeID
}

// Fits reports whether every value received a register block.
func (r *Result) Fits() bool { return len(r.Spilled) == 0 }

// Capacity returns the general-register budget of one CN: the register
// file minus the two input-buffer regions (§2.2).
func Capacity(mc *machine.Config, regFileSize int) int {
	c := regFileSize - 2*mc.DMAFIFODepth
	if c < 1 {
		c = 1
	}
	return c
}

// Run allocates rotating-register blocks for the scheduled kernel d. The
// register file holds regFileSize entries per CN, of which two
// FIFO-depth-sized regions are reserved as input buffers (§2.2).
func Run(d *ddg.DDG, s *modsched.Schedule, mc *machine.Config, regFileSize int) (*Result, error) {
	if len(s.Time) != d.Len() {
		return nil, fmt.Errorf("regalloc: schedule covers %d of %d nodes", len(s.Time), d.Len())
	}
	if s.II < 1 {
		return nil, fmt.Errorf("regalloc: II %d < 1", s.II)
	}
	lastUse := make([]int, d.Len())
	for i := range lastUse {
		lastUse[i] = s.Time[i]
	}
	d.G.Edges(func(e graph.Edge) {
		if use := s.Time[e.To] + s.II*e.Distance; use > lastUse[e.From] {
			lastUse[e.From] = use
		}
	})

	res := &Result{
		II:       s.II,
		RegsUsed: make([]int, mc.TotalCNs()),
		Capacity: Capacity(mc, regFileSize),
	}
	byCN := map[int][]graph.NodeID{}
	for i := range d.Nodes {
		byCN[s.CN[i]] = append(byCN[s.CN[i]], graph.NodeID(i))
	}
	cns := make([]int, 0, len(byCN))
	for cn := range byCN {
		cns = append(cns, cn)
	}
	sort.Ints(cns)

	for _, cn := range cns {
		vals := byCN[cn]
		// Short lifetimes first: under a tiny file the cheap values fit
		// and the expensive ones spill deterministically.
		sort.Slice(vals, func(i, j int) bool {
			li := lastUse[vals[i]] - s.Time[vals[i]]
			lj := lastUse[vals[j]] - s.Time[vals[j]]
			if li != lj {
				return li < lj
			}
			return vals[i] < vals[j]
		})
		next := 0
		for _, v := range vals {
			life := lastUse[v] - s.Time[v]
			slots := life/s.II + 1
			if next+slots > res.Capacity {
				res.Spilled = append(res.Spilled, v)
				continue
			}
			res.Allocs = append(res.Allocs, Alloc{
				Value: v, CN: cn, Reg: next, Slots: slots, Def: s.Time[v], Life: life,
			})
			next += slots
		}
		res.RegsUsed[cn] = next
		if next > res.MaxRegs {
			res.MaxRegs = next
		}
	}
	return res, nil
}

// Verify re-checks an allocation: every value allocated exactly once (or
// spilled), block sizes match lifetimes, and blocks on the same CN never
// overlap.
func Verify(d *ddg.DDG, s *modsched.Schedule, r *Result) error {
	seen := map[graph.NodeID]bool{}
	for _, a := range r.Allocs {
		if seen[a.Value] {
			return fmt.Errorf("regalloc: value %d allocated twice", a.Value)
		}
		seen[a.Value] = true
		if want := a.Life/r.II + 1; a.Slots != want {
			return fmt.Errorf("regalloc: value %d has %d slots, lifetime needs %d", a.Value, a.Slots, want)
		}
		if a.Reg < 0 || a.Reg+a.Slots > r.Capacity {
			return fmt.Errorf("regalloc: value %d block [%d,%d) outside capacity %d", a.Value, a.Reg, a.Reg+a.Slots, r.Capacity)
		}
	}
	for _, v := range r.Spilled {
		if seen[v] {
			return fmt.Errorf("regalloc: value %d both allocated and spilled", v)
		}
		seen[v] = true
	}
	if len(seen) != d.Len() {
		return fmt.Errorf("regalloc: %d of %d values accounted for", len(seen), d.Len())
	}
	byCN := map[int][]Alloc{}
	for _, a := range r.Allocs {
		byCN[a.CN] = append(byCN[a.CN], a)
	}
	for cn, as := range byCN {
		sort.Slice(as, func(i, j int) bool { return as[i].Reg < as[j].Reg })
		for i := 1; i < len(as); i++ {
			if as[i-1].Reg+as[i-1].Slots > as[i].Reg {
				return fmt.Errorf("regalloc: CN %d: blocks of values %d and %d overlap", cn, as[i-1].Value, as[i].Value)
			}
		}
	}
	return nil
}
