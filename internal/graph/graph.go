// Package graph provides the directed-multigraph substrate used by every
// other package in this repository: the Data Dependency Graph (DDG), the
// Pattern Graph (PG) and the wire-level machine model are all built on it.
//
// No canonical graph library exists in the Go standard library, so the
// package implements from scratch the handful of classic algorithms the
// paper's compilation flow needs: Tarjan strongly-connected components,
// topological sorting, longest paths on DAGs, Bellman-Ford positive-cycle
// detection (the oracle behind the MIIRec binary search) and reachability.
//
// Nodes are dense integer IDs handed out by the graph; callers attach their
// own payloads by indexing parallel slices with the node ID. Edges carry two
// integer weights (Weight, Distance) because every client of this package —
// dependence latencies with loop-carried distances, copy counts on pattern
// arcs — needs exactly that pair.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node inside one Directed graph. IDs are dense,
// starting at 0, and are never reused even after RemoveEdge calls.
type NodeID int

// EdgeID identifies an edge inside one Directed graph.
type EdgeID int

// Edge is a directed connection between two nodes with two integer
// annotations. Weight is the "gain" of the edge (dependence latency, copy
// count, ...) and Distance its "cost" (loop-carried iteration distance,
// hop count, ...). Both default to zero.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Weight   int
	Distance int
	// Removed edges stay in the edge table so EdgeIDs remain stable; they
	// are skipped by all traversals.
	removed bool
}

// Directed is a mutable directed multigraph. The zero value is an empty
// graph ready to use.
type Directed struct {
	edges []Edge
	out   [][]EdgeID // per-node outgoing edge IDs
	in    [][]EdgeID // per-node incoming edge IDs
}

// New returns an empty directed graph with capacity hints for n nodes and
// m edges.
func New(n, m int) *Directed {
	g := &Directed{
		edges: make([]Edge, 0, m),
		out:   make([][]EdgeID, 0, n),
		in:    make([][]EdgeID, 0, n),
	}
	return g
}

// Clone returns a deep copy of g.
func (g *Directed) Clone() *Directed {
	c := &Directed{
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// AddNode creates a new node and returns its ID.
func (g *Directed) AddNode() NodeID {
	id := NodeID(len(g.out))
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddNodes creates n new nodes and returns the ID of the first one.
func (g *Directed) AddNodes(n int) NodeID {
	first := NodeID(len(g.out))
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return first
}

// NumNodes returns the number of nodes ever created.
func (g *Directed) NumNodes() int { return len(g.out) }

// NumEdges returns the number of live (non-removed) edges.
func (g *Directed) NumEdges() int {
	n := 0
	for i := range g.edges {
		if !g.edges[i].removed {
			n++
		}
	}
	return n
}

// AddEdge inserts a directed edge from u to v with the given weight and
// distance and returns its ID. Parallel edges and self-loops are allowed
// (a self-loop with Distance > 0 is a legitimate loop-carried dependence).
func (g *Directed) AddEdge(u, v NodeID, weight, distance int) EdgeID {
	g.mustHave(u)
	g.mustHave(v)
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: u, To: v, Weight: weight, Distance: distance})
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	return id
}

// RemoveEdge marks the edge as removed. The EdgeID stays valid but the edge
// no longer participates in any traversal. Removing twice is a no-op.
func (g *Directed) RemoveEdge(id EdgeID) {
	if int(id) < 0 || int(id) >= len(g.edges) {
		panic(fmt.Sprintf("graph: RemoveEdge: bad edge id %d", id))
	}
	g.edges[id].removed = true
}

// Edge returns the edge with the given ID. The returned copy reflects the
// stored weights; mutate via SetWeight / SetDistance.
func (g *Directed) Edge(id EdgeID) Edge {
	if int(id) < 0 || int(id) >= len(g.edges) {
		panic(fmt.Sprintf("graph: Edge: bad edge id %d", id))
	}
	return g.edges[id]
}

// EdgeRemoved reports whether the edge has been removed.
func (g *Directed) EdgeRemoved(id EdgeID) bool { return g.edges[id].removed }

// SetWeight updates the weight annotation of an edge.
func (g *Directed) SetWeight(id EdgeID, w int) { g.edges[id].Weight = w }

// SetDistance updates the distance annotation of an edge.
func (g *Directed) SetDistance(id EdgeID, d int) { g.edges[id].Distance = d }

// Out calls fn for every live outgoing edge of u.
func (g *Directed) Out(u NodeID, fn func(Edge)) {
	g.mustHave(u)
	for _, id := range g.out[u] {
		if e := g.edges[id]; !e.removed {
			fn(e)
		}
	}
}

// In calls fn for every live incoming edge of v.
func (g *Directed) In(v NodeID, fn func(Edge)) {
	g.mustHave(v)
	for _, id := range g.in[v] {
		if e := g.edges[id]; !e.removed {
			fn(e)
		}
	}
}

// OutDegree returns the number of live outgoing edges of u.
func (g *Directed) OutDegree(u NodeID) int {
	n := 0
	g.Out(u, func(Edge) { n++ })
	return n
}

// InDegree returns the number of live incoming edges of v.
func (g *Directed) InDegree(v NodeID) int {
	n := 0
	g.In(v, func(Edge) { n++ })
	return n
}

// Successors returns the distinct successor nodes of u in ascending order.
func (g *Directed) Successors(u NodeID) []NodeID {
	seen := map[NodeID]bool{}
	g.Out(u, func(e Edge) { seen[e.To] = true })
	return sortedKeys(seen)
}

// Predecessors returns the distinct predecessor nodes of v in ascending order.
func (g *Directed) Predecessors(v NodeID) []NodeID {
	seen := map[NodeID]bool{}
	g.In(v, func(e Edge) { seen[e.From] = true })
	return sortedKeys(seen)
}

// HasEdge reports whether at least one live edge u→v exists.
func (g *Directed) HasEdge(u, v NodeID) bool {
	found := false
	g.Out(u, func(e Edge) {
		if e.To == v {
			found = true
		}
	})
	return found
}

// Edges calls fn for every live edge, in insertion order.
func (g *Directed) Edges(fn func(Edge)) {
	for i := range g.edges {
		if e := g.edges[i]; !e.removed {
			fn(e)
		}
	}
}

func (g *Directed) mustHave(u NodeID) {
	if int(u) < 0 || int(u) >= len(g.out) {
		panic(fmt.Sprintf("graph: bad node id %d (graph has %d nodes)", u, len(g.out)))
	}
}

func sortedKeys(m map[NodeID]bool) []NodeID {
	ks := make([]NodeID, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
