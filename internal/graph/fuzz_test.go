package graph

import (
	"testing"
)

// FuzzMaxCycleRatio checks the binary-search/oracle self-consistency on
// arbitrary small graphs decoded from the fuzz input: when a binding
// recurrence exists, its MII must be the minimal feasible value.
func FuzzMaxCycleRatio(f *testing.F) {
	f.Add([]byte{4, 0, 1, 2, 1, 1, 2, 3, 0, 2, 0, 1, 1})
	f.Add([]byte{2, 0, 1, 5, 0, 1, 0, 0, 1})
	f.Add([]byte{3, 0, 1, 1, 0, 1, 2, 1, 0, 2, 0, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := int(data[0])%8 + 2
		g := New(n, len(data)/4)
		g.AddNodes(n)
		// Decode edges as 4-byte tuples (from, to, weight, distance).
		// Distance-0 edges only go forward to keep the DAG invariant.
		for i := 1; i+3 < len(data); i += 4 {
			u := int(data[i]) % n
			v := int(data[i+1]) % n
			w := int(data[i+2]) % 8
			d := int(data[i+3]) % 3
			if d == 0 {
				if u >= v {
					continue
				}
			}
			g.AddEdge(NodeID(u), NodeID(v), w, d)
		}
		mii, ok := g.MaxCycleRatio()
		if !ok {
			if g.HasPositiveCycle(0) {
				t.Fatal("reported no binding cycle but II=0 has a positive cycle")
			}
			return
		}
		if mii < 1 {
			t.Fatalf("binding MII %d < 1", mii)
		}
		if g.HasPositiveCycle(mii) {
			t.Fatalf("MII %d still has a positive cycle", mii)
		}
		if !g.HasPositiveCycle(mii - 1) {
			t.Fatalf("MII %d is not minimal", mii)
		}
	})
}

// FuzzSCCPartition: SCCs always partition the node set.
func FuzzSCCPartition(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 0, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := int(data[0])%12 + 1
		g := New(n, len(data)/2)
		g.AddNodes(n)
		for i := 1; i+1 < len(data); i += 2 {
			g.AddEdge(NodeID(int(data[i])%n), NodeID(int(data[i+1])%n), 0, 0)
		}
		seen := make([]int, n)
		for _, comp := range g.SCCs() {
			for _, v := range comp {
				seen[v]++
			}
		}
		for v, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("node %d in %d components", v, cnt)
			}
		}
	})
}
