package graph

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeEdgeBasics(t *testing.T) {
	g := New(4, 4)
	a := g.AddNode()
	b := g.AddNode()
	c := g.AddNode()
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	e1 := g.AddEdge(a, b, 1, 0)
	e2 := g.AddEdge(b, c, 2, 1)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if got := g.Edge(e1); got.From != a || got.To != b || got.Weight != 1 || got.Distance != 0 {
		t.Errorf("Edge(e1) = %+v", got)
	}
	if got := g.Edge(e2); got.Weight != 2 || got.Distance != 1 {
		t.Errorf("Edge(e2) = %+v", got)
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Error("HasEdge wrong")
	}
}

func TestAddNodes(t *testing.T) {
	g := New(0, 0)
	first := g.AddNodes(5)
	if first != 0 || g.NumNodes() != 5 {
		t.Fatalf("AddNodes: first=%d n=%d", first, g.NumNodes())
	}
	second := g.AddNodes(3)
	if second != 5 || g.NumNodes() != 8 {
		t.Fatalf("AddNodes: second=%d n=%d", second, g.NumNodes())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(2, 2)
	a, b := g.AddNode(), g.AddNode()
	e := g.AddEdge(a, b, 1, 0)
	g.RemoveEdge(e)
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges after remove = %d", g.NumEdges())
	}
	if g.HasEdge(a, b) {
		t.Error("HasEdge true after remove")
	}
	if !g.EdgeRemoved(e) {
		t.Error("EdgeRemoved false")
	}
	// Removing twice is a no-op.
	g.RemoveEdge(e)
	if g.NumEdges() != 0 {
		t.Error("double remove changed count")
	}
}

func TestParallelEdgesAndSelfLoops(t *testing.T) {
	g := New(2, 3)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 1, 0)
	g.AddEdge(a, b, 2, 0)
	g.AddEdge(a, a, 3, 1) // loop-carried self-dependence
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if d := g.OutDegree(a); d != 3 {
		t.Errorf("OutDegree(a) = %d, want 3", d)
	}
	succ := g.Successors(a)
	if len(succ) != 2 || succ[0] != a || succ[1] != b {
		t.Errorf("Successors(a) = %v", succ)
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New(3, 3)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, c, 0, 0)
	g.AddEdge(b, c, 0, 0)
	if g.InDegree(c) != 2 {
		t.Errorf("InDegree(c) = %d", g.InDegree(c))
	}
	pred := g.Predecessors(c)
	if len(pred) != 2 || pred[0] != a || pred[1] != b {
		t.Errorf("Predecessors(c) = %v", pred)
	}
}

func TestClone(t *testing.T) {
	g := New(2, 1)
	a, b := g.AddNode(), g.AddNode()
	e := g.AddEdge(a, b, 1, 0)
	c := g.Clone()
	c.RemoveEdge(e)
	c.AddNode()
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Error("Clone is not independent of original")
	}
	if c.NumEdges() != 0 || c.NumNodes() != 3 {
		t.Error("Clone mutation lost")
	}
}

func TestSetWeightDistance(t *testing.T) {
	g := New(2, 1)
	a, b := g.AddNode(), g.AddNode()
	e := g.AddEdge(a, b, 1, 0)
	g.SetWeight(e, 7)
	g.SetDistance(e, 2)
	if got := g.Edge(e); got.Weight != 7 || got.Distance != 2 {
		t.Errorf("after set: %+v", got)
	}
}

func TestTopoSortLinear(t *testing.T) {
	g := New(4, 3)
	n := make([]NodeID, 4)
	for i := range n {
		n[i] = g.AddNode()
	}
	g.AddEdge(n[2], n[1], 1, 0)
	g.AddEdge(n[1], n[0], 1, 0)
	g.AddEdge(n[0], n[3], 1, 0)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	g.Edges(func(e Edge) {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("topo violation: %d before %d", e.From, e.To)
		}
	})
}

func TestTopoSortIgnoresLoopCarried(t *testing.T) {
	g := New(2, 2)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 1, 0)
	g.AddEdge(b, a, 1, 1) // loop-carried back edge: must not create a cycle for topo
	if _, err := g.TopoSort(); err != nil {
		t.Fatalf("TopoSort failed on loop-carried back edge: %v", err)
	}
	if !g.IsDAG() {
		t.Error("IsDAG false despite only loop-carried cycle")
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New(2, 2)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 1, 0)
	g.AddEdge(b, a, 1, 0)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("TopoSort accepted a distance-0 cycle")
	}
	if g.IsDAG() {
		t.Error("IsDAG true on cyclic graph")
	}
}

func TestLongestPaths(t *testing.T) {
	// diamond: a -> b(w2), a -> c(w1), b -> d(w1), c -> d(w5)
	g := New(4, 4)
	a, b, c, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 2, 0)
	g.AddEdge(a, c, 1, 0)
	g.AddEdge(b, d, 1, 0)
	g.AddEdge(c, d, 5, 0)
	depth, err := g.LongestPathFrom()
	if err != nil {
		t.Fatal(err)
	}
	if depth[a] != 0 || depth[b] != 2 || depth[c] != 1 || depth[d] != 6 {
		t.Errorf("depth = %v", depth)
	}
	height, err := g.LongestPathTo()
	if err != nil {
		t.Fatal(err)
	}
	if height[d] != 0 || height[b] != 1 || height[c] != 5 || height[a] != 6 {
		t.Errorf("height = %v", height)
	}
	cp, err := g.CriticalPathLength()
	if err != nil || cp != 6 {
		t.Errorf("cp = %d err=%v", cp, err)
	}
}

func TestSlack(t *testing.T) {
	g := New(4, 4)
	a, b, c, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 2, 0)
	g.AddEdge(a, c, 1, 0)
	g.AddEdge(b, d, 1, 0)
	g.AddEdge(c, d, 5, 0)
	slack, err := g.Slack()
	if err != nil {
		t.Fatal(err)
	}
	// critical path a->c->d (len 6); b has slack 6-2-1=3
	if slack[a] != 0 || slack[c] != 0 || slack[d] != 0 {
		t.Errorf("critical nodes have nonzero slack: %v", slack)
	}
	if slack[b] != 3 {
		t.Errorf("slack[b] = %d, want 3", slack[b])
	}
}

func TestSCCsSimple(t *testing.T) {
	g := New(5, 6)
	n := make([]NodeID, 5)
	for i := range n {
		n[i] = g.AddNode()
	}
	// cycle {0,1,2}, then 3 -> 4
	g.AddEdge(n[0], n[1], 0, 0)
	g.AddEdge(n[1], n[2], 0, 0)
	g.AddEdge(n[2], n[0], 0, 0)
	g.AddEdge(n[2], n[3], 0, 0)
	g.AddEdge(n[3], n[4], 0, 0)
	sccs := g.SCCs()
	if len(sccs) != 3 {
		t.Fatalf("got %d SCCs, want 3: %v", len(sccs), sccs)
	}
	var big []NodeID
	for _, c := range sccs {
		if len(c) == 3 {
			big = c
		}
	}
	want := []NodeID{0, 1, 2}
	if len(big) != 3 || big[0] != want[0] || big[1] != want[1] || big[2] != want[2] {
		t.Errorf("big SCC = %v, want %v", big, want)
	}
}

func TestSCCsDeepChainNoOverflow(t *testing.T) {
	// A 200k-node chain would overflow a recursive Tarjan; the iterative
	// implementation must handle it.
	const n = 200000
	g := New(n, n)
	first := g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(first+NodeID(i), first+NodeID(i+1), 0, 0)
	}
	sccs := g.SCCs()
	if len(sccs) != n {
		t.Fatalf("got %d SCCs, want %d", len(sccs), n)
	}
}

func TestSCCPartitionProperty(t *testing.T) {
	// Property: SCCs partition the node set.
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n, 3*n)
		g.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 0, 0)
		}
		seen := map[NodeID]int{}
		for _, c := range g.SCCs() {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSCCMutualReachabilityProperty(t *testing.T) {
	// Property: two nodes share an SCC iff mutually reachable.
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n, 2*n)
		g.AddNodes(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 0, 0)
		}
		comp := make([]int, n)
		for ci, c := range g.SCCs() {
			for _, v := range c {
				comp[v] = ci
			}
		}
		reach := make([][]bool, n)
		for i := 0; i < n; i++ {
			reach[i] = g.Reachable(NodeID(i))
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] && reach[v][u]
				if mutual != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHasPositiveCycle(t *testing.T) {
	g := New(2, 2)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 3, 0) // latency 3
	g.AddEdge(b, a, 0, 1) // loop-carried, distance 1
	// cycle latency 3, distance 1 → positive for II<3, non-positive for II>=3
	if !g.HasPositiveCycle(2) {
		t.Error("II=2 should have positive cycle")
	}
	if g.HasPositiveCycle(3) {
		t.Error("II=3 should be feasible")
	}
}

func TestMaxCycleRatioBasic(t *testing.T) {
	g := New(3, 3)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 2, 0)
	g.AddEdge(b, c, 2, 0)
	g.AddEdge(c, a, 1, 2) // cycle weight 5, distance 2 → ceil(5/2)=3
	mii, ok := g.MaxCycleRatio()
	if !ok || mii != 3 {
		t.Errorf("MaxCycleRatio = %d,%v want 3,true", mii, ok)
	}
}

func TestMaxCycleRatioAcyclic(t *testing.T) {
	g := New(2, 1)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 5, 0)
	if mii, ok := g.MaxCycleRatio(); ok || mii != 0 {
		t.Errorf("acyclic MaxCycleRatio = %d,%v", mii, ok)
	}
}

func TestMaxCycleRatioMultipleCycles(t *testing.T) {
	g := New(4, 5)
	a, b, c, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	// cycle1: a->b->a weight 4 distance 2 → 2
	g.AddEdge(a, b, 2, 0)
	g.AddEdge(b, a, 2, 2)
	// cycle2: c->d->c weight 7 distance 1 → 7 (binding)
	g.AddEdge(c, d, 5, 0)
	g.AddEdge(d, c, 2, 1)
	mii, ok := g.MaxCycleRatio()
	if !ok || mii != 7 {
		t.Errorf("MaxCycleRatio = %d,%v want 7,true", mii, ok)
	}
}

func TestMaxCycleRatioSelfLoop(t *testing.T) {
	g := New(1, 1)
	a := g.AddNode()
	g.AddEdge(a, a, 4, 1)
	mii, ok := g.MaxCycleRatio()
	if !ok || mii != 4 {
		t.Errorf("self-loop MaxCycleRatio = %d,%v want 4,true", mii, ok)
	}
}

func TestMaxCycleRatioMatchesBruteForce(t *testing.T) {
	// Property: binary-search answer == brute-force over enumerated simple
	// cycles for tiny random graphs.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		g := New(n, 2*n)
		g.AddNodes(n)
		for i := 0; i < 2*n; i++ {
			w := rng.Intn(5)
			d := rng.Intn(3)
			if d == 0 && w > 0 {
				// ensure any distance-0 edges stay acyclic: forward only
				u := rng.Intn(n - 1)
				v := u + 1 + rng.Intn(n-u-1)
				g.AddEdge(NodeID(u), NodeID(v), w, 0)
			} else if d > 0 {
				g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), w, d)
			}
		}
		want := bruteForceMII(g)
		got, ok := g.MaxCycleRatio()
		if want == 0 {
			if ok && got != 0 {
				t.Fatalf("trial %d: want no binding cycle, got %d", trial, got)
			}
			continue
		}
		if !ok || got != want {
			t.Fatalf("trial %d: MaxCycleRatio=%d,%v want %d", trial, got, ok, want)
		}
	}
}

// bruteForceMII enumerates all simple cycles via DFS and returns
// max ceil(weight/distance) over cycles with positive weight.
func bruteForceMII(g *Directed) int {
	n := g.NumNodes()
	best := 0
	var dfs func(start, cur NodeID, w, d int, visited map[NodeID]bool)
	dfs = func(start, cur NodeID, w, d int, visited map[NodeID]bool) {
		g.Out(cur, func(e Edge) {
			if e.To == start {
				tw, td := w+e.Weight, d+e.Distance
				if tw > 0 && td > 0 {
					mii := (tw + td - 1) / td
					if mii > best {
						best = mii
					}
				}
				return
			}
			if !visited[e.To] && e.To > start { // canonical: cycles rooted at min node
				visited[e.To] = true
				dfs(start, e.To, w+e.Weight, d+e.Distance, visited)
				delete(visited, e.To)
			}
		})
	}
	for s := 0; s < n; s++ {
		dfs(NodeID(s), NodeID(s), 0, 0, map[NodeID]bool{NodeID(s): true})
	}
	return best
}

func TestReachable(t *testing.T) {
	g := New(4, 3)
	a, b, c, d := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 0, 0)
	g.AddEdge(b, c, 0, 0)
	_ = d
	r := g.Reachable(a)
	if !r[a] || !r[b] || !r[c] || r[d] {
		t.Errorf("Reachable = %v", r)
	}
}

func TestShortestPath(t *testing.T) {
	g := New(5, 6)
	n := make([]NodeID, 5)
	for i := range n {
		n[i] = g.AddNode()
	}
	g.AddEdge(n[0], n[1], 0, 0)
	g.AddEdge(n[1], n[4], 0, 0)
	g.AddEdge(n[0], n[2], 0, 0)
	g.AddEdge(n[2], n[3], 0, 0)
	g.AddEdge(n[3], n[4], 0, 0)
	p := g.ShortestPath(n[0], n[4], nil)
	if len(p) != 3 || p[0] != n[0] || p[1] != n[1] || p[2] != n[4] {
		t.Errorf("ShortestPath = %v", p)
	}
	if q := g.ShortestPath(n[4], n[0], nil); q != nil {
		t.Errorf("reverse path should be nil, got %v", q)
	}
}

func TestShortestPathWithFilter(t *testing.T) {
	g := New(3, 3)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	direct := g.AddEdge(a, c, 0, 0)
	g.AddEdge(a, b, 0, 0)
	g.AddEdge(b, c, 0, 0)
	p := g.ShortestPath(a, c, func(e Edge) bool { return e.ID != direct })
	if len(p) != 3 {
		t.Errorf("filtered path = %v, want length 3", p)
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := New(1, 0)
	a := g.AddNode()
	p := g.ShortestPath(a, a, nil)
	if len(p) != 1 || p[0] != a {
		t.Errorf("self path = %v", p)
	}
}

func TestMinCycleMean(t *testing.T) {
	g := New(2, 2)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 2, 0)
	g.AddEdge(b, a, 4, 0)
	if m := g.MinCycleMean(); math.Abs(m-3.0) > 1e-9 {
		t.Errorf("MinCycleMean = %v, want 3", m)
	}
	h := New(2, 1)
	x, y := h.AddNode(), h.AddNode()
	h.AddEdge(x, y, 1, 0)
	if m := h.MinCycleMean(); !math.IsInf(m, 1) {
		t.Errorf("acyclic MinCycleMean = %v, want +Inf", m)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(2, 1)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 3, 1)
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{
		Name:      "test graph!",
		NodeLabel: func(n NodeID) string { return "node" },
		EdgeLabel: func(e Edge) string { return "lat=3" },
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph test_graph_", "n0 -> n1", `label="lat=3"`, `label="node"`} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	build := func() *Directed {
		g := New(6, 5)
		g.AddNodes(6)
		g.AddEdge(0, 3, 0, 0)
		g.AddEdge(1, 3, 0, 0)
		g.AddEdge(2, 4, 0, 0)
		g.AddEdge(3, 5, 0, 0)
		g.AddEdge(4, 5, 0, 0)
		return g
	}
	a, _ := build().TopoSort()
	b, _ := build().TopoSort()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic topo sort: %v vs %v", a, b)
		}
	}
}

func TestEdgesIterationOrder(t *testing.T) {
	g := New(2, 3)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 1, 0)
	e2 := g.AddEdge(a, b, 2, 0)
	g.AddEdge(b, a, 3, 1)
	g.RemoveEdge(e2)
	var ws []int
	g.Edges(func(e Edge) { ws = append(ws, e.Weight) })
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 3 {
		t.Errorf("Edges order = %v", ws)
	}
}

func TestPanicsOnBadIDs(t *testing.T) {
	g := New(1, 0)
	g.AddNode()
	for name, fn := range map[string]func(){
		"AddEdge-bad-from": func() { g.AddEdge(5, 0, 0, 0) },
		"AddEdge-bad-to":   func() { g.AddEdge(0, 5, 0, 0) },
		"Edge-bad-id":      func() { g.Edge(9) },
		"Remove-bad-id":    func() { g.RemoveEdge(9) },
		"Out-bad-node":     func() { g.Out(7, func(Edge) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLongestPathRandomAgainstSlack(t *testing.T) {
	// Property: depth+height <= critical path for every node; equality on at
	// least one node.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(40)
		g := New(n, 3*n)
		g.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(NodeID(u), NodeID(v), rng.Intn(4), 0)
		}
		depth, err := g.LongestPathFrom()
		if err != nil {
			t.Fatal(err)
		}
		height, err := g.LongestPathTo()
		if err != nil {
			t.Fatal(err)
		}
		cp, _ := g.CriticalPathLength()
		onCP := false
		for i := range depth {
			if depth[i]+height[i] > cp {
				t.Fatalf("depth+height %d > cp %d at node %d", depth[i]+height[i], cp, i)
			}
			if depth[i]+height[i] == cp {
				onCP = true
			}
		}
		if !onCP {
			t.Fatal("no node achieves critical path")
		}
	}
}

func TestSuccessorsSorted(t *testing.T) {
	g := New(4, 3)
	a := g.AddNode()
	d := g.AddNode()
	c := g.AddNode()
	b := g.AddNode()
	g.AddEdge(a, b, 0, 0)
	g.AddEdge(a, c, 0, 0)
	g.AddEdge(a, d, 0, 0)
	s := g.Successors(a)
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Errorf("Successors not sorted: %v", s)
	}
}

func TestWriteDOTWithRanks(t *testing.T) {
	g := New(4, 2)
	g.AddNodes(4)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(1, 3, 1, 0)
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{
		Rank: func(n NodeID) (int, bool) { return int(n) % 2, true },
		NodeAttr: func(n NodeID) string {
			if n == 0 {
				return "shape=box"
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "rank=same") {
		t.Error("missing rank groups")
	}
	if !strings.Contains(s, "shape=box") {
		t.Error("missing node attr")
	}
}

func TestSlackOnCyclicFails(t *testing.T) {
	g := New(2, 2)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 1, 0)
	g.AddEdge(b, a, 1, 0)
	if _, err := g.Slack(); err == nil {
		t.Fatal("Slack accepted a cyclic graph")
	}
	if _, err := g.LongestPathTo(); err == nil {
		t.Fatal("LongestPathTo accepted a cyclic graph")
	}
}
