package graph

import (
	"fmt"
	"math"
	"sort"
)

// TopoSort returns the nodes of g in a topological order, considering only
// edges with Distance == 0 (intra-iteration dependences). Loop-carried
// edges (Distance > 0) are ignored, which is exactly the DAG view a modulo
// scheduler and the SEE priority list need. It returns an error if the
// distance-0 subgraph contains a cycle.
func (g *Directed) TopoSort() ([]NodeID, error) {
	n := g.NumNodes()
	indeg := make([]int, n)
	g.Edges(func(e Edge) {
		if e.Distance == 0 {
			indeg[e.To]++
		}
	})
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		g.Out(u, func(e Edge) {
			if e.Distance != 0 {
				return
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		})
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: distance-0 subgraph is cyclic (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// IsDAG reports whether the distance-0 subgraph is acyclic.
func (g *Directed) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// LongestPathFrom computes, over the distance-0 subgraph, the longest
// weighted path distance from any source (in-degree-0 node) to every node,
// where path length is the sum of edge weights. It is the classic "depth"
// (earliest start time) used for scheduling priorities.
func (g *Directed) LongestPathFrom() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.NumNodes())
	for _, u := range order {
		g.Out(u, func(e Edge) {
			if e.Distance != 0 {
				return
			}
			if d := depth[u] + e.Weight; d > depth[e.To] {
				depth[e.To] = d
			}
		})
	}
	return depth, nil
}

// LongestPathTo computes, over the distance-0 subgraph, the longest weighted
// path from every node to any sink (out-degree-0 node). This is the "height"
// (criticality) of each node: nodes on the critical path maximize
// depth+height.
func (g *Directed) LongestPathTo() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	height := make([]int, g.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		g.Out(u, func(e Edge) {
			if e.Distance != 0 {
				return
			}
			if h := height[e.To] + e.Weight; h > height[u] {
				height[u] = h
			}
		})
	}
	return height, nil
}

// CriticalPathLength returns the weight of the longest distance-0 path in g.
func (g *Directed) CriticalPathLength() (int, error) {
	depth, err := g.LongestPathFrom()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, d := range depth {
		if d > max {
			max = d
		}
	}
	return max, nil
}

// SCCs returns the strongly connected components of g (all edges, including
// loop-carried ones) using Tarjan's algorithm, implemented iteratively so
// that very deep graphs cannot overflow the goroutine stack. Components are
// returned in reverse topological order (Tarjan's natural output order);
// each component's node list is sorted ascending.
func (g *Directed) SCCs() [][]NodeID {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []NodeID
		sccs    [][]NodeID
		counter int
	)

	type frame struct {
		v    NodeID
		eidx int // next outgoing edge index to examine
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: NodeID(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, NodeID(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.eidx < len(g.out[f.v]) {
				eid := g.out[f.v][f.eidx]
				f.eidx++
				e := g.edges[eid]
				if e.removed {
					continue
				}
				w := e.To
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// HasPositiveCycle reports whether g contains a cycle whose total
// cost is strictly positive, where the cost of edge e is
// e.Weight - ii*e.Distance. This is the oracle used by the MIIRec binary
// search: II is feasible iff no such positive cycle exists (Rau '94).
//
// The check runs a Bellman-Ford longest-path relaxation from a virtual
// super-source; if any node can still be relaxed after NumNodes rounds, a
// positive cycle is reachable.
func (g *Directed) HasPositiveCycle(ii int) bool {
	n := g.NumNodes()
	if n == 0 {
		return false
	}
	// dist starts at 0 everywhere == virtual source connected to all nodes.
	dist := make([]int64, n)
	for round := 0; round < n; round++ {
		changed := false
		for i := range g.edges {
			e := g.edges[i]
			if e.removed {
				continue
			}
			cost := int64(e.Weight) - int64(ii)*int64(e.Distance)
			if d := dist[e.From] + cost; d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// MaxCycleRatio returns the maximum over all cycles C of
// ceil(sum Weight(C) / sum Distance(C)), i.e. the recurrence-constrained
// minimum initiation interval of the graph, and true if at least one cycle
// with positive total distance exists. Cycles with zero total distance and
// positive weight are illegal dependence structures and cause a panic (the
// DDG validator rejects them before this point).
//
// The value is found by binary search over integer II with the Bellman-Ford
// positive-cycle oracle: the predicate "no positive cycle at II" is monotone
// in II.
func (g *Directed) MaxCycleRatio() (int, bool) {
	// Upper bound: sum of all positive weights is always feasible, since
	// any cycle has distance >= 1 (zero-distance cycles are rejected) and
	// weight <= total.
	hi := 0
	hasEdge := false
	g.Edges(func(e Edge) {
		hasEdge = true
		if e.Weight > 0 {
			hi += e.Weight
		}
	})
	if !hasEdge {
		return 0, false
	}
	if g.HasPositiveCycle(hi) {
		panic("graph: MaxCycleRatio: positive cycle with zero distance (malformed dependence graph)")
	}
	// If even II=0 admits no positive cycle there is no constraining cycle.
	if !g.HasPositiveCycle(0) {
		// There may still be cycles (with non-positive weight); report the
		// ratio as 0 with ok=false meaning "no binding recurrence".
		return 0, false
	}
	lo := 0 // infeasible
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if g.HasPositiveCycle(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, true
}

// Reachable returns the set of nodes reachable from src (including src)
// following live edges, as a boolean slice indexed by NodeID.
func (g *Directed) Reachable(src NodeID) []bool {
	g.mustHave(src)
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.Out(u, func(e Edge) {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		})
	}
	return seen
}

// ShortestPath returns a minimum-hop path from src to dst over live edges,
// or nil if dst is unreachable. The returned slice includes both endpoints.
// When several shortest paths exist, ties are broken toward lower node IDs
// so results are deterministic. The optional usable filter restricts which
// edges may be traversed.
func (g *Directed) ShortestPath(src, dst NodeID, usable func(Edge) bool) []NodeID {
	g.mustHave(src)
	g.mustHave(dst)
	prev := make([]NodeID, g.NumNodes())
	seen := make([]bool, g.NumNodes())
	for i := range prev {
		prev[i] = -1
	}
	queue := []NodeID{src}
	seen[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		// Gather successors deterministically.
		var nexts []NodeID
		g.Out(u, func(e Edge) {
			if usable != nil && !usable(e) {
				return
			}
			if !seen[e.To] {
				seen[e.To] = true
				prev[e.To] = u
				nexts = append(nexts, e.To)
			}
		})
		sort.Slice(nexts, func(i, j int) bool { return nexts[i] < nexts[j] })
		queue = append(queue, nexts...)
	}
	if !seen[dst] {
		return nil
	}
	var path []NodeID
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != src {
		return nil
	}
	return path
}

// Slack computes, for every node, the scheduling mobility
// (ALAP - ASAP) over the distance-0 subgraph given the critical path
// length. Mobility 0 means the node is on a critical path.
func (g *Directed) Slack() ([]int, error) {
	depth, err := g.LongestPathFrom()
	if err != nil {
		return nil, err
	}
	height, err := g.LongestPathTo()
	if err != nil {
		return nil, err
	}
	cp := 0
	for i := range depth {
		if s := depth[i] + height[i]; s > cp {
			cp = s
		}
	}
	slack := make([]int, len(depth))
	for i := range slack {
		slack[i] = cp - depth[i] - height[i]
	}
	return slack, nil
}

// MinCycleMean returns the minimum mean-weight cycle value over live edges
// (Karp's algorithm), or +Inf if the graph is acyclic. It is exposed for the
// synthetic workload generator, which uses it to validate the recurrence
// structure it creates.
func (g *Directed) MinCycleMean() float64 {
	n := g.NumNodes()
	if n == 0 {
		return math.Inf(1)
	}
	const inf = math.MaxInt64 / 4
	// dp[k][v] = min weight of a k-edge walk from any node to v.
	prev := make([]int64, n)
	cur := make([]int64, n)
	best := make([][]int64, n+1)
	for i := range prev {
		prev[i] = 0
	}
	best[0] = append([]int64(nil), prev...)
	for k := 1; k <= n; k++ {
		for i := range cur {
			cur[i] = inf
		}
		for i := range g.edges {
			e := g.edges[i]
			if e.removed {
				continue
			}
			if prev[e.From] >= inf {
				continue
			}
			if w := prev[e.From] + int64(e.Weight); w < cur[e.To] {
				cur[e.To] = w
			}
		}
		best[k] = append([]int64(nil), cur...)
		prev, cur = cur, prev
	}
	res := math.Inf(1)
	for v := 0; v < n; v++ {
		if best[n][v] >= inf {
			continue
		}
		worst := math.Inf(-1)
		for k := 0; k < n; k++ {
			if best[k][v] >= inf {
				continue
			}
			m := float64(best[n][v]-best[k][v]) / float64(n-k)
			if m > worst {
				worst = m
			}
		}
		if worst < res {
			res = worst
		}
	}
	return res
}
