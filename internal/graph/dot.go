package graph

import (
	"fmt"
	"io"
	"strings"
)

// DOTOptions controls DOT serialization.
type DOTOptions struct {
	Name      string                   // graph name; defaults to "G"
	NodeLabel func(NodeID) string      // optional node labeler
	NodeAttr  func(NodeID) string      // optional extra node attributes, e.g. `shape=box`
	EdgeLabel func(Edge) string        // optional edge labeler
	EdgeAttr  func(Edge) string        // optional extra edge attributes
	Rank      func(NodeID) (int, bool) // optional rank grouping (same rank → same row)
}

// WriteDOT serializes g in Graphviz DOT format.
func (g *Directed) WriteDOT(w io.Writer, opt DOTOptions) error {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n", dotID(name)); err != nil {
		return err
	}
	for i := 0; i < g.NumNodes(); i++ {
		id := NodeID(i)
		label := fmt.Sprintf("n%d", i)
		if opt.NodeLabel != nil {
			label = opt.NodeLabel(id)
		}
		attr := ""
		if opt.NodeAttr != nil {
			if a := opt.NodeAttr(id); a != "" {
				attr = ", " + a
			}
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q%s];\n", i, label, attr); err != nil {
			return err
		}
	}
	if opt.Rank != nil {
		byRank := map[int][]NodeID{}
		for i := 0; i < g.NumNodes(); i++ {
			if r, ok := opt.Rank(NodeID(i)); ok {
				byRank[r] = append(byRank[r], NodeID(i))
			}
		}
		for r, nodes := range byRank {
			var sb strings.Builder
			for _, n := range nodes {
				fmt.Fprintf(&sb, "n%d; ", n)
			}
			if _, err := fmt.Fprintf(w, "  { rank=same; /* %d */ %s}\n", r, sb.String()); err != nil {
				return err
			}
		}
	}
	var werr error
	g.Edges(func(e Edge) {
		if werr != nil {
			return
		}
		label := ""
		if opt.EdgeLabel != nil {
			label = opt.EdgeLabel(e)
		}
		attrs := []string{}
		if label != "" {
			attrs = append(attrs, fmt.Sprintf("label=%q", label))
		}
		if opt.EdgeAttr != nil {
			if a := opt.EdgeAttr(e); a != "" {
				attrs = append(attrs, a)
			}
		}
		line := fmt.Sprintf("  n%d -> n%d", e.From, e.To)
		if len(attrs) > 0 {
			line += " [" + strings.Join(attrs, ", ") + "]"
		}
		_, werr = fmt.Fprintf(w, "%s;\n", line)
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func dotID(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "G"
	}
	return sb.String()
}
