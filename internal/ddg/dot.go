package ddg

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// WriteDOT dumps the DDG in Graphviz DOT format; loop-carried dependences
// are drawn dashed and labeled with their distance.
func (d *DDG) WriteDOT(w io.Writer) error {
	return d.G.WriteDOT(w, graph.DOTOptions{
		Name: d.Name,
		NodeLabel: func(n graph.NodeID) string {
			node := &d.Nodes[n]
			if node.Name != "" {
				return fmt.Sprintf("%s\n%s", node.Name, node.Op)
			}
			return fmt.Sprintf("%d:%s", n, node.Op)
		},
		NodeAttr: func(n graph.NodeID) string {
			if d.Nodes[n].Op.IsMem() {
				return "shape=box"
			}
			return ""
		},
		EdgeLabel: func(e graph.Edge) string {
			if e.Distance > 0 {
				return fmt.Sprintf("d=%d", e.Distance)
			}
			return ""
		},
		EdgeAttr: func(e graph.Edge) string {
			if e.Distance > 0 {
				return "style=dashed"
			}
			return ""
		},
	})
}
