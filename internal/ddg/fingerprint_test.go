package ddg_test

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/kernels"
)

// Fingerprints must be deterministic across independent rebuilds of the
// same kernel: the service's result cache keys on them, so any run-to-run
// instability would silently disable caching (or worse, alias entries).
func TestFingerprintDeterminism(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			want := k.Build().Fingerprint()
			if len(want) != 64 {
				t.Fatalf("fingerprint %q: want 64 hex digits", want)
			}
			for i := 0; i < 100; i++ {
				if got := k.Build().Fingerprint(); got != want {
					t.Fatalf("rebuild %d: fingerprint %s != %s", i, got, want)
				}
			}
		})
	}
}

func TestFingerprintDistinctAcrossKernels(t *testing.T) {
	seen := map[string]string{}
	for _, k := range kernels.All() {
		fp := k.Build().Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("kernels %s and %s share fingerprint %s", prev, k.Name, fp)
		}
		seen[fp] = k.Name
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	build := func(name, label string) *ddg.DDG {
		d := ddg.New(name)
		a := d.AddConst(3, label)
		b := d.AddIV(0, 1, label+"_iv")
		s := d.AddOp(ddg.OpAdd, label+"_sum")
		d.AddDep(a, s, 0, 0)
		d.AddDep(b, s, 1, 0)
		return d
	}
	if build("x", "p").Fingerprint() != build("y", "q").Fingerprint() {
		t.Error("fingerprint depends on presentation-only names")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := func() *ddg.DDG {
		d := ddg.New("s")
		a := d.AddConst(3, "a")
		b := d.AddConst(4, "b")
		s := d.AddOp(ddg.OpAdd, "s")
		d.AddDep(a, s, 0, 0)
		d.AddDep(b, s, 1, 0)
		return d
	}
	ref := base().Fingerprint()

	imm := base()
	imm.Nodes[0].Imm = 5
	if imm.Fingerprint() == ref {
		t.Error("changing an immediate did not change the fingerprint")
	}

	ports := base()
	ports.Nodes[2].Op = ddg.OpSub
	if ports.Fingerprint() == ref {
		t.Error("changing an opcode did not change the fingerprint")
	}

	dist := ddg.New("s")
	a := dist.AddConst(3, "a")
	b := dist.AddConst(4, "b")
	s := dist.AddOp(ddg.OpAdd, "s")
	dist.AddDep(a, s, 0, 0)
	dist.AddDep(b, s, 1, 1) // loop-carried
	if dist.Fingerprint() == ref {
		t.Error("changing a dependence distance did not change the fingerprint")
	}

	if c := base().Clone(); c.Fingerprint() != ref {
		t.Error("clone fingerprint differs from original")
	}
}
