package ddg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildMAC returns a multiply-accumulate loop body:
//
//	addr = iv(0, 1); x = load(addr); p = x * c; acc += p  (acc loop-carried)
func buildMAC() *DDG {
	d := New("mac")
	addr := d.AddIV(0, 1, "addr")
	x := d.AddOp(OpLoad, "x")
	c := d.AddConst(3, "c")
	p := d.AddOp(OpMul, "p")
	acc := d.AddOp(OpAdd, "acc")
	d.AddDep(addr, x, 0, 0)
	d.AddDep(x, p, 0, 0)
	d.AddDep(c, p, 1, 0)
	d.AddDep(p, acc, 0, 0)
	d.AddDep(acc, acc, 1, 1) // acc(t) = p(t) + acc(t-1)
	return d
}

func TestOpArityAndString(t *testing.T) {
	cases := []struct {
		op    Op
		arity int
		name  string
	}{
		{OpConst, 0, "const"}, {OpIV, 0, "iv"}, {OpAdd, 2, "add"},
		{OpAbs, 1, "abs"}, {OpSelect, 3, "select"}, {OpClip, 3, "clip"},
		{OpLoad, 1, "load"}, {OpStore, 2, "store"}, {OpRecv, 1, "recv"},
	}
	for _, c := range cases {
		if c.op.Arity() != c.arity {
			t.Errorf("%v.Arity() = %d, want %d", c.op, c.op.Arity(), c.arity)
		}
		if c.op.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.op, c.op.String(), c.name)
		}
	}
	if OpInvalid.Arity() != -1 {
		t.Error("OpInvalid should have arity -1")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestAddOpAndDeps(t *testing.T) {
	d := buildMAC()
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := d.Stats()
	if s.Instr != 5 || s.MemOps != 1 || s.Muls != 1 || s.Consts != 2 || s.Recurr != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestValidateMissingOperand(t *testing.T) {
	d := New("bad")
	d.AddOp(OpAdd, "a") // no inputs connected
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "port 0") {
		t.Errorf("Validate = %v, want missing-port error", err)
	}
}

func TestValidateDuplicatePort(t *testing.T) {
	d := New("bad")
	c := d.AddConst(1, "c")
	a := d.AddOp(OpAbs, "a")
	d.AddDep(c, a, 0, 0)
	d.AddDep(c, a, 0, 0)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "2 edges") {
		t.Errorf("Validate = %v, want duplicate-port error", err)
	}
}

func TestValidatePortOutOfRange(t *testing.T) {
	d := New("bad")
	c := d.AddConst(1, "c")
	a := d.AddOp(OpAbs, "a")
	d.AddDep(c, a, 3, 0)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Validate = %v", err)
	}
}

func TestValidateCyclicIntraIteration(t *testing.T) {
	d := New("bad")
	a := d.AddOp(OpMov, "a")
	b := d.AddOp(OpMov, "b")
	d.AddDep(a, b, 0, 0)
	d.AddDep(b, a, 0, 0)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("Validate = %v", err)
	}
}

func TestValidateOK(t *testing.T) {
	if err := buildMAC().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMIIRecNoRecurrence(t *testing.T) {
	d := New("dag")
	a := d.AddConst(1, "a")
	b := d.AddOp(OpAbs, "b")
	d.AddDep(a, b, 0, 0)
	if got := d.MIIRec(); got != 1 {
		t.Errorf("MIIRec = %d, want 1", got)
	}
}

func TestMIIRecAccumulator(t *testing.T) {
	// acc self-loop, latency 1, distance 1 → MIIRec 1
	d := buildMAC()
	if got := d.MIIRec(); got != 1 {
		t.Errorf("MIIRec = %d, want 1", got)
	}
}

func TestMIIRecLongCycle(t *testing.T) {
	// x -> y -> x with latencies 2+1 over distance 1 → MIIRec 3
	d := New("rec")
	x := d.AddOpLatency(OpMul, "x", 2)
	y := d.AddOp(OpAdd, "y")
	c := d.AddConst(0, "c")
	d.AddDep(x, y, 0, 0)
	d.AddDep(c, y, 1, 0)
	d.AddDep(y, x, 0, 1)
	d.AddDep(c, x, 1, 0)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.MIIRec(); got != 3 {
		t.Errorf("MIIRec = %d, want 3", got)
	}
}

func TestMIIRes(t *testing.T) {
	d := buildMAC() // 5 instrs, 1 mem op
	cases := []struct {
		r    Resources
		want int
	}{
		{Resources{IssueSlots: 64, DMAPorts: 8}, 1},
		{Resources{IssueSlots: 2, DMAPorts: 8}, 3},  // ceil(5/2)
		{Resources{IssueSlots: 64, DMAPorts: 0}, 1}, // DMA unconstrained
		{Resources{IssueSlots: 1, DMAPorts: 1}, 5},
	}
	for _, c := range cases {
		if got := d.MIIRes(c.r); got != c.want {
			t.Errorf("MIIRes(%+v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestMIIResDMABinding(t *testing.T) {
	d := New("mem")
	prev := d.AddIV(0, 16, "base")
	for i := 0; i < 16; i++ {
		ld := d.AddOp(OpLoad, "ld")
		d.AddDep(prev, ld, 0, 0)
	}
	// 17 instrs, 16 mem ops; 64 slots → issue bound 1, DMA bound ceil(16/8)=2
	if got := d.MIIRes(Resources{IssueSlots: 64, DMAPorts: 8}); got != 2 {
		t.Errorf("MIIRes = %d, want 2", got)
	}
}

func TestMIICombined(t *testing.T) {
	d := buildMAC()
	r := Resources{IssueSlots: 1, DMAPorts: 8}
	if got, want := d.MII(r), 5; got != want { // res bound 5 > rec bound 1
		t.Errorf("MII = %d, want %d", got, want)
	}
}

func TestMIIResPanicsOnZeroIssue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	buildMAC().MIIRes(Resources{})
}

func TestInterpretMAC(t *testing.T) {
	d := buildMAC()
	mem := MapMemory{}
	for i := int64(0); i < 10; i++ {
		mem[i] = i + 1 // x values 1..10
	}
	final, err := d.Interpret(mem, 10)
	if err != nil {
		t.Fatal(err)
	}
	// acc after 10 iterations = 3 * sum(1..10) = 165
	accID := 4
	if final[accID] != 165 {
		t.Errorf("acc = %d, want 165", final[accID])
	}
}

func TestInterpretInitValue(t *testing.T) {
	d := New("init")
	c := d.AddConst(0, "zero")
	acc := d.AddOp(OpAdd, "acc")
	d.AddDep(c, acc, 0, 0)
	d.AddDep(acc, acc, 1, 1)
	d.SetInit(acc, 100)
	final, err := d.Interpret(MapMemory{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if final[acc] != 100 { // 0 + init(100)
		t.Errorf("acc = %d, want 100", final[acc])
	}
}

func TestInterpretStore(t *testing.T) {
	d := New("store")
	addr := d.AddIV(100, 1, "addr")
	val := d.AddIV(0, 2, "val")
	st := d.AddOp(OpStore, "st")
	d.AddDep(addr, st, 0, 0)
	d.AddDep(val, st, 1, 0)
	mem := MapMemory{}
	if _, err := d.Interpret(mem, 4); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if mem[100+i] != 2*i {
			t.Errorf("mem[%d] = %d, want %d", 100+i, mem[100+i], 2*i)
		}
	}
}

func TestInterpretDistanceTwo(t *testing.T) {
	// y(t) = x(t-2), x = iv(0,1) → after 5 iters y = 2 (value of x at t=2... t=4 reads x(2)=2)
	d := New("d2")
	x := d.AddIV(0, 1, "x")
	y := d.AddOp(OpMov, "y")
	d.AddDep(x, y, 0, 2)
	d.SetInit(x, -7)
	final, err := d.Interpret(MapMemory{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if final[y] != 2 {
		t.Errorf("y = %d, want 2", final[y])
	}
	// With only 2 iterations, y at t=1 reads x(-1) = Init(-7).
	final, err = d.Interpret(MapMemory{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if final[y] != -7 {
		t.Errorf("y = %d, want -7 (init)", final[y])
	}
}

func TestEvalAllOps(t *testing.T) {
	mem := MapMemory{42: 7}
	cases := []struct {
		op   Op
		in   []int64
		want int64
	}{
		{OpAdd, []int64{3, 4}, 7},
		{OpSub, []int64{3, 4}, -1},
		{OpMul, []int64{3, 4}, 12},
		{OpShl, []int64{1, 4}, 16},
		{OpShr, []int64{-16, 2}, -4},
		{OpAnd, []int64{6, 3}, 2},
		{OpOr, []int64{6, 3}, 7},
		{OpXor, []int64{6, 3}, 5},
		{OpMin, []int64{6, 3}, 3},
		{OpMax, []int64{6, 3}, 6},
		{OpAbs, []int64{-5}, 5},
		{OpAbs, []int64{5}, 5},
		{OpNeg, []int64{5}, -5},
		{OpNot, []int64{0}, -1},
		{OpMov, []int64{9}, 9},
		{OpRecv, []int64{9}, 9},
		{OpCmpLT, []int64{1, 2}, 1},
		{OpCmpLT, []int64{2, 1}, 0},
		{OpCmpGT, []int64{2, 1}, 1},
		{OpCmpEQ, []int64{2, 2}, 1},
		{OpSelect, []int64{1, 10, 20}, 10},
		{OpSelect, []int64{0, 10, 20}, 20},
		{OpClip, []int64{5, 0, 3}, 3},
		{OpClip, []int64{-5, 0, 3}, 0},
		{OpClip, []int64{2, 0, 3}, 2},
		{OpLoad, []int64{42}, 7},
	}
	for _, c := range cases {
		n := &Node{Op: c.op}
		if got := Eval(n, c.in, mem, 0); got != c.want {
			t.Errorf("Eval(%v, %v) = %d, want %d", c.op, c.in, got, c.want)
		}
	}
	// Const and IV.
	if got := Eval(&Node{Op: OpConst, Imm: 5}, nil, mem, 3); got != 5 {
		t.Errorf("const = %d", got)
	}
	if got := Eval(&Node{Op: OpIV, Imm: 5, Step: 2}, nil, mem, 3); got != 11 {
		t.Errorf("iv = %d", got)
	}
	// Store side effect.
	Eval(&Node{Op: OpStore}, []int64{9, 33}, mem, 0)
	if mem[9] != 33 {
		t.Error("store did not write")
	}
}

func TestClone(t *testing.T) {
	d := buildMAC()
	c := d.Clone()
	c.AddOp(OpMov, "extra")
	c.Nodes[0].Name = "changed"
	if d.Len() != 5 || d.Nodes[0].Name == "changed" {
		t.Error("Clone not independent")
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := buildMAC().WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph mac", "mul", "style=dashed", "d=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestInterpretMatchesScalarProperty(t *testing.T) {
	// Property: for random accumulator chains, Interpret equals a direct
	// scalar computation.
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		iters := 1 + rng.Intn(12)
		coef := int64(1 + rng.Intn(9))
		d := New("prop")
		x := d.AddIV(int64(rng.Intn(5)), int64(1+rng.Intn(3)), "x")
		c := d.AddConst(coef, "c")
		p := d.AddOp(OpMul, "p")
		acc := d.AddOp(OpAdd, "acc")
		d.AddDep(x, p, 0, 0)
		d.AddDep(c, p, 1, 0)
		d.AddDep(p, acc, 0, 0)
		d.AddDep(acc, acc, 1, 1)
		if err := d.Validate(); err != nil {
			return false
		}
		final, err := d.Interpret(MapMemory{}, iters)
		if err != nil {
			return false
		}
		want := int64(0)
		for it := int64(0); it < int64(iters); it++ {
			want += coef * (d.Nodes[x].Imm + d.Nodes[x].Step*it)
		}
		return final[acc] == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMIIMonotoneInResourcesProperty(t *testing.T) {
	d := buildMAC()
	f := func(slots, ports uint8) bool {
		s := int(slots%16) + 1
		p := int(ports % 16)
		a := d.MIIRes(Resources{IssueSlots: s, DMAPorts: p})
		b := d.MIIRes(Resources{IssueSlots: s + 1, DMAPorts: p})
		return b <= a // more issue slots never hurt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestImmediateOperands(t *testing.T) {
	d := New("imm")
	x := d.AddIV(10, 1, "x")
	a := d.AddOpImm(OpAdd, "a", 5) // a = x + 5
	s := d.AddOpImm(OpShr, "s", 1) // s = a >> 1
	cl := d.AddOpImm(OpClip, "cl", 9)
	lo := d.AddConst(0, "lo")
	d.AddDep(x, a, 0, 0)
	d.AddDep(a, s, 0, 0)
	d.AddDep(s, cl, 0, 0)
	d.AddDep(lo, cl, 1, 0)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	final, err := d.Interpret(MapMemory{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// iter 2: x=12, a=17, s=8, cl=clip(8,0,9)=8
	if final[cl] != 8 {
		t.Errorf("cl = %d, want 8", final[cl])
	}
	if n := d.Node(a); n.EffArity() != 1 {
		t.Errorf("EffArity = %d, want 1", n.EffArity())
	}
}

func TestValidateImmOnZeroArity(t *testing.T) {
	d := New("bad")
	id := d.AddConst(1, "c")
	d.Nodes[id].HasImm2 = true
	if err := d.Validate(); err == nil {
		t.Error("expected error for imm on zero-arity op")
	}
}

func TestValidateImmArityReduced(t *testing.T) {
	// addi with BOTH ports wired must fail (port 1 out of range).
	d := New("bad")
	c := d.AddConst(1, "c")
	a := d.AddOpImm(OpAdd, "a", 5)
	d.AddDep(c, a, 0, 0)
	d.AddDep(c, a, 1, 0)
	if err := d.Validate(); err == nil {
		t.Error("expected out-of-range port error")
	}
}
