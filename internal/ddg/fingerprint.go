package ddg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/graph"
)

// Fingerprint returns a canonical content hash of the DDG: 64 hex digits
// of the SHA-256 of a canonical binary encoding of the graph structure.
//
// The encoding covers everything the compilation flow consumes — per-node
// opcode, latency, immediates, induction parameters and initial values,
// plus every dependence edge with its operand port, weight and
// loop-carried distance — and deliberately excludes presentation-only
// data (the DDG name and the node labels). Edges are sorted into a
// canonical order before hashing, so the result is independent of
// insertion order and of any map-iteration order upstream: two DDGs that
// compile identically fingerprint identically.
//
// The compilation service (internal/service) uses the fingerprint as the
// DDG component of its content-addressed cache key; it is also reported
// in every compile result so clients can correlate CLI and daemon runs.
func (d *DDG) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(len(d.Nodes)))
	for i := range d.Nodes {
		n := &d.Nodes[i]
		put(int64(n.Op))
		put(int64(n.Latency))
		put(n.Imm)
		put(n.Step)
		put(n.Init)
		if n.HasImm2 {
			put(1)
			put(n.Imm2)
		} else {
			put(0)
			put(0)
		}
	}
	type edgeRec struct {
		from, to, port, weight, dist int
	}
	var edges []edgeRec
	d.G.Edges(func(e graph.Edge) {
		edges = append(edges, edgeRec{int(e.From), int(e.To), d.Port(e.ID), e.Weight, e.Distance})
	})
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		if a.port != b.port {
			return a.port < b.port
		}
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		return a.weight < b.weight
	})
	put(int64(len(edges)))
	for _, e := range edges {
		put(int64(e.from))
		put(int64(e.to))
		put(int64(e.port))
		put(int64(e.weight))
		put(int64(e.dist))
	}
	return hex.EncodeToString(h.Sum(nil))
}
