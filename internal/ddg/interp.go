package ddg

import (
	"fmt"

	"repro/internal/graph"
)

// Memory is the storage a DDG interpreter or fabric simulator reads and
// writes through Load/Store operations. Addresses are byte-free word
// indices: the kernels address int32-sized elements with unit stride.
type Memory interface {
	Load(addr int64) int64
	Store(addr, val int64)
}

// MapMemory is a sparse Memory backed by a map; absent addresses read 0.
type MapMemory map[int64]int64

// Load returns the word at addr (0 if never written).
func (m MapMemory) Load(addr int64) int64 { return m[addr] }

// Store writes val at addr.
func (m MapMemory) Store(addr, val int64) { m[addr] = val }

// Eval computes one op over its ordered operands. It is shared by the
// sequential interpreter below and by the fabric simulator, so the two
// cannot diverge on semantics. The mem argument is only consulted for
// OpLoad/OpStore; iter only for OpIV.
func Eval(n *Node, in []int64, mem Memory, iter int64) int64 {
	switch n.Op {
	case OpConst:
		return n.Imm
	case OpIV:
		return n.Imm + n.Step*iter
	case OpAdd:
		return in[0] + in[1]
	case OpSub:
		return in[0] - in[1]
	case OpMul:
		return in[0] * in[1]
	case OpShl:
		return in[0] << uint(in[1]&63)
	case OpShr:
		return in[0] >> uint(in[1]&63)
	case OpAnd:
		return in[0] & in[1]
	case OpOr:
		return in[0] | in[1]
	case OpXor:
		return in[0] ^ in[1]
	case OpMin:
		if in[0] < in[1] {
			return in[0]
		}
		return in[1]
	case OpMax:
		if in[0] > in[1] {
			return in[0]
		}
		return in[1]
	case OpAbs:
		if in[0] < 0 {
			return -in[0]
		}
		return in[0]
	case OpNeg:
		return -in[0]
	case OpNot:
		return ^in[0]
	case OpMov, OpRecv:
		return in[0]
	case OpCmpLT:
		return b2i(in[0] < in[1])
	case OpCmpGT:
		return b2i(in[0] > in[1])
	case OpCmpEQ:
		return b2i(in[0] == in[1])
	case OpSelect:
		if in[0] != 0 {
			return in[1]
		}
		return in[2]
	case OpClip:
		v := in[0]
		if v < in[1] {
			v = in[1]
		}
		if v > in[2] {
			v = in[2]
		}
		return v
	case OpLoad:
		return mem.Load(in[0])
	case OpStore:
		mem.Store(in[0], in[1])
		return in[1]
	default:
		panic(fmt.Sprintf("ddg: Eval: unhandled op %v", n.Op))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Interpret executes the loop body for iterations iterations against mem,
// respecting loop-carried distances: an operand with distance k reads the
// producer's value from k iterations earlier, or the producer's Init value
// for iterations before the first. It returns the value history of the
// final iteration, indexed by node ID. Interpret is the semantic reference
// the fabric simulator is checked against.
func (d *DDG) Interpret(mem Memory, iterations int) ([]int64, error) {
	order, err := d.G.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("ddg %q: %v", d.Name, err)
	}
	maxDist := 0
	d.G.Edges(func(e graph.Edge) {
		if e.Distance > maxDist {
			maxDist = e.Distance
		}
	})
	depth := maxDist + 1
	n := d.Len()
	// history[k*n + node] holds the node's value at iteration (iter-k) mod depth.
	history := make([]int64, depth*n)
	cur := make([]int64, n)
	for it := 0; it < iterations; it++ {
		for _, id := range order {
			node := &d.Nodes[id]
			ar := node.Op.Arity()
			var in [3]int64
			if node.HasImm2 {
				in[ar-1] = node.Imm2
			}
			d.G.In(id, func(e graph.Edge) {
				p := d.Port(e.ID)
				if e.Distance == 0 {
					in[p] = cur[e.From]
					return
				}
				src := it - e.Distance
				if src < 0 {
					in[p] = d.Nodes[e.From].Init
					return
				}
				in[p] = history[(src%depth)*n+int(e.From)]
			})
			cur[id] = Eval(node, in[:ar], mem, int64(it))
		}
		slot := (it % depth) * n
		copy(history[slot:slot+n], cur)
	}
	return append([]int64(nil), cur...), nil
}
