package ddg

import (
	"testing"

	"repro/internal/graph"
)

// FuzzBuildAndInterpret decodes arbitrary bytes into a small loop body and
// checks the invariant chain: anything Validate accepts must Interpret
// without panicking, and Stats/MII computations must stay sane.
func FuzzBuildAndInterpret(f *testing.F) {
	f.Add([]byte{3, 1, 0, 0, 2, 1, 1, 0})
	f.Add([]byte{5, 2, 0, 1, 3, 0, 2, 2, 4, 1, 3, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		d := New("fuzz")
		// First byte: number of leading consts (at least 1).
		nc := int(data[0])%4 + 1
		for i := 0; i < nc; i++ {
			d.AddConst(int64(i), "c")
		}
		// Remaining bytes in triples: (op selector, operand a, operand b).
		ops := []Op{OpAdd, OpSub, OpMul, OpMin, OpMax, OpAnd, OpXor, OpShr}
		for i := 1; i+2 < len(data); i += 3 {
			cur := d.Len()
			op := ops[int(data[i])%len(ops)]
			n := d.AddOp(op, "o")
			a := int(data[i+1]) % cur
			b := int(data[i+2]) % cur
			d.AddDep(graph.NodeID(a), n, 0, 0)
			d.AddDep(graph.NodeID(b), n, 1, 0)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("constructed DDG invalid: %v", err)
		}
		if _, err := d.Interpret(MapMemory{}, 4); err != nil {
			t.Fatalf("Interpret: %v", err)
		}
		if mii := d.MIIRec(); mii != 1 {
			t.Fatalf("acyclic fuzz graph has MIIRec %d", mii)
		}
		s := d.Stats()
		if s.Instr != d.Len() {
			t.Fatalf("Stats.Instr %d != Len %d", s.Instr, d.Len())
		}
	})
}
