// Package ddg models the Data Dependency Graph that the HCA compilation
// flow consumes: the loop body of a multimedia kernel, expressed as
// operations connected by true data dependences annotated with latencies
// and loop-carried iteration distances.
//
// Beyond the plain graph structure the package provides the two halves of
// the paper's cost model (§4.2):
//
//   - MIIRec, the recurrence-constrained minimum initiation interval
//     (maximum over dependence cycles of ceil(latency/distance), Rau '94),
//     computed by binary search with a Bellman-Ford positive-cycle oracle;
//   - MIIRes, the resource-constrained minimum initiation interval; on the
//     64-CN DSPFabric the binding class is the 8-port DMA shared by all
//     memory operations.
//
// A small sequential interpreter executes the DDG for n loop iterations
// against a Memory; the simulator's end-to-end checks and the kernel
// builders' scalar-reference tests both rely on it.
package ddg

import (
	"fmt"

	"repro/internal/graph"
)

// Op enumerates the operations a computation node of the target fabric can
// execute. The set covers what the four paper kernels need (multiply-
// accumulate FIR arithmetic, IDCT butterflies, interpolation averaging,
// deblocking clips/selects) plus the COPY/RECV primitives inserted by the
// post-processing pass.
type Op int

const (
	OpInvalid Op = iota
	OpConst      // immediate value (Imm)
	OpIV         // induction value: Imm + Step*iteration
	OpAdd
	OpSub
	OpMul
	OpShl
	OpShr // arithmetic shift right
	OpAnd
	OpOr
	OpXor
	OpMin
	OpMax
	OpAbs
	OpNeg
	OpNot
	OpMov
	OpCmpLT // (a < b) ? 1 : 0
	OpCmpGT
	OpCmpEQ
	OpSelect // inputs (cond, a, b): cond != 0 ? a : b
	OpClip   // inputs (x, lo, hi): min(max(x, lo), hi)
	OpLoad   // input (addr); issues a DMA request
	OpStore  // inputs (addr, val); issues a DMA request
	OpRecv   // inter-cluster receive; input (value); inserted post-HCA
	numOps
)

var opNames = [...]string{
	OpInvalid: "invalid", OpConst: "const", OpIV: "iv",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpShl: "shl", OpShr: "shr",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpMin: "min", OpMax: "max",
	OpAbs: "abs", OpNeg: "neg", OpNot: "not", OpMov: "mov",
	OpCmpLT: "cmplt", OpCmpGT: "cmpgt", OpCmpEQ: "cmpeq",
	OpSelect: "select", OpClip: "clip", OpLoad: "load", OpStore: "store",
	OpRecv: "recv",
}

func (o Op) String() string {
	if o <= OpInvalid || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Arity returns the number of input operands the op consumes.
func (o Op) Arity() int {
	switch o {
	case OpConst, OpIV:
		return 0
	case OpAbs, OpNeg, OpNot, OpMov, OpLoad, OpRecv:
		return 1
	case OpAdd, OpSub, OpMul, OpShl, OpShr, OpAnd, OpOr, OpXor,
		OpMin, OpMax, OpCmpLT, OpCmpGT, OpCmpEQ, OpStore:
		return 2
	case OpSelect, OpClip:
		return 3
	default:
		return -1
	}
}

// IsMem reports whether the op issues a DMA memory request.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// DefaultLatency returns the issue-to-use latency of the op on a DSPFabric
// computation node: single-cycle ALU, two-cycle pipelined multiplier,
// two-cycle DMA round trip for loads (the FIFOs mask the rest), immediate
// materialization in one cycle.
func (o Op) DefaultLatency() int {
	switch o {
	case OpMul:
		return 2
	case OpLoad:
		return 2
	case OpConst, OpIV:
		return 1
	default:
		return 1
	}
}

// Node is one instruction of the loop body.
type Node struct {
	ID      graph.NodeID
	Op      Op
	Name    string // optional human label for reports and DOT dumps
	Latency int    // result latency in cycles
	Imm     int64  // OpConst value / OpIV base
	Step    int64  // OpIV per-iteration increment
	Init    int64  // value observed by consumers reading iterations < 0
	// HasImm2 marks an instruction whose last operand is an immediate
	// encoded in the instruction word (addi/shli/cmplti/... forms), so it
	// is not fed by a dependence edge. Imm2 holds the value.
	HasImm2 bool
	Imm2    int64
}

// EffArity returns the number of operand ports fed by dependence edges:
// the op arity minus one when the last operand is an encoded immediate.
func (n *Node) EffArity() int {
	ar := n.Op.Arity()
	if n.HasImm2 && ar > 0 {
		return ar - 1
	}
	return ar
}

// DDG is a loop-body data dependency graph. Create one with New and
// populate it with AddOp/AddDep; most callers get theirs from
// internal/kernels.
type DDG struct {
	Name  string
	G     *graph.Directed
	Nodes []Node
	// port[e] is the operand position (0-based) edge e feeds at its
	// consumer. Indexed by graph.EdgeID (dense).
	port []int
}

// New returns an empty DDG with the given name.
func New(name string) *DDG {
	return &DDG{Name: name, G: graph.New(0, 0)}
}

// AddOp appends an instruction with the op's default latency and returns
// its node ID.
func (d *DDG) AddOp(op Op, name string) graph.NodeID {
	return d.AddOpLatency(op, name, op.DefaultLatency())
}

// AddOpLatency appends an instruction with an explicit latency.
func (d *DDG) AddOpLatency(op Op, name string, latency int) graph.NodeID {
	id := d.G.AddNode()
	d.Nodes = append(d.Nodes, Node{ID: id, Op: op, Name: name, Latency: latency})
	return id
}

// AddConst appends an immediate-producing instruction.
func (d *DDG) AddConst(v int64, name string) graph.NodeID {
	id := d.AddOp(OpConst, name)
	d.Nodes[id].Imm = v
	return id
}

// AddIV appends an induction value base + step*iteration.
func (d *DDG) AddIV(base, step int64, name string) graph.NodeID {
	id := d.AddOp(OpIV, name)
	d.Nodes[id].Imm = base
	d.Nodes[id].Step = step
	return id
}

// AddOpImm appends an instruction whose last operand is the immediate imm
// (e.g. AddOpImm(OpAdd, "p1", 1) is an addi). The remaining operands are
// connected with AddDep as usual.
func (d *DDG) AddOpImm(op Op, name string, imm int64) graph.NodeID {
	id := d.AddOp(op, name)
	d.Nodes[id].HasImm2 = true
	d.Nodes[id].Imm2 = imm
	return id
}

// SetInit sets the value consumers observe when a loop-carried dependence
// reads an iteration before the first one (e.g. an accumulator's initial
// value).
func (d *DDG) SetInit(n graph.NodeID, v int64) { d.Nodes[n].Init = v }

// AddDep adds a true data dependence from producer u to operand port of
// consumer v with loop-carried distance dist. The edge weight is the
// producer's latency, which is what both MIIRec and the schedulers consume.
func (d *DDG) AddDep(u, v graph.NodeID, port, dist int) graph.EdgeID {
	e := d.G.AddEdge(u, v, d.Nodes[u].Latency, dist)
	for len(d.port) <= int(e) {
		d.port = append(d.port, 0)
	}
	d.port[e] = port
	return e
}

// Port returns the operand position edge e feeds.
func (d *DDG) Port(e graph.EdgeID) int {
	if int(e) < len(d.port) {
		return d.port[e]
	}
	return 0
}

// Node returns the instruction record for id.
func (d *DDG) Node(id graph.NodeID) *Node { return &d.Nodes[id] }

// Len returns the number of instructions.
func (d *DDG) Len() int { return len(d.Nodes) }

// Stats summarizes a DDG for reports and for the resource MII.
type Stats struct {
	Instr   int // total instructions
	MemOps  int // loads + stores
	Muls    int
	Consts  int
	Recurr  int // loop-carried edges
	Edges   int // total dependences
	CritLen int // critical path length over intra-iteration edges
}

// Stats computes summary statistics. It panics if the intra-iteration
// subgraph is cyclic; run Validate first for a friendly error.
func (d *DDG) Stats() Stats {
	s := Stats{Instr: len(d.Nodes)}
	for i := range d.Nodes {
		switch d.Nodes[i].Op {
		case OpLoad, OpStore:
			s.MemOps++
		case OpMul:
			s.Muls++
		case OpConst, OpIV:
			s.Consts++
		}
	}
	d.G.Edges(func(e graph.Edge) {
		s.Edges++
		if e.Distance > 0 {
			s.Recurr++
		}
	})
	cp, err := d.G.CriticalPathLength()
	if err != nil {
		panic(fmt.Sprintf("ddg %q: %v", d.Name, err))
	}
	s.CritLen = cp
	return s
}

// Clone returns a deep copy of the DDG.
func (d *DDG) Clone() *DDG {
	return &DDG{
		Name:  d.Name,
		G:     d.G.Clone(),
		Nodes: append([]Node(nil), d.Nodes...),
		port:  append([]int(nil), d.port...),
	}
}
