package ddg

import (
	"fmt"

	"repro/internal/graph"
)

// Validate checks the structural invariants every pass downstream relies
// on:
//
//   - every op is known and its in-edges cover exactly operand ports
//     0..arity-1, each once (counting only distance-0 and loop-carried
//     edges alike: a port is fed by exactly one dependence);
//   - latencies are non-negative, and edge weights equal the producer's
//     latency;
//   - the intra-iteration (distance-0) subgraph is acyclic;
//   - no dependence cycle has zero total distance.
//
// It returns the first violation found, or nil.
func (d *DDG) Validate() error {
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Op.Arity() < 0 {
			return fmt.Errorf("ddg %q: node %d (%s): unknown op", d.Name, n.ID, n.Name)
		}
		if n.HasImm2 && n.Op.Arity() == 0 {
			return fmt.Errorf("ddg %q: node %d (%s %s): immediate form on zero-arity op", d.Name, n.ID, n.Op, n.Name)
		}
		ar := n.EffArity()
		if n.Latency < 0 {
			return fmt.Errorf("ddg %q: node %d (%s): negative latency %d", d.Name, n.ID, n.Name, n.Latency)
		}
		seen := make([]int, ar)
		bad := false
		d.G.In(n.ID, func(e graph.Edge) {
			p := d.Port(e.ID)
			if p < 0 || p >= ar {
				bad = true
				return
			}
			seen[p]++
		})
		if bad {
			return fmt.Errorf("ddg %q: node %d (%s %s): operand port out of range [0,%d)", d.Name, n.ID, n.Op, n.Name, ar)
		}
		for p, cnt := range seen {
			if cnt != 1 {
				return fmt.Errorf("ddg %q: node %d (%s %s): operand port %d fed by %d edges, want 1", d.Name, n.ID, n.Op, n.Name, p, cnt)
			}
		}
	}
	var err error
	d.G.Edges(func(e graph.Edge) {
		if err != nil {
			return
		}
		if e.Distance < 0 {
			err = fmt.Errorf("ddg %q: edge %d→%d: negative distance %d", d.Name, e.From, e.To, e.Distance)
			return
		}
		if e.Weight != d.Nodes[e.From].Latency {
			err = fmt.Errorf("ddg %q: edge %d→%d: weight %d != producer latency %d", d.Name, e.From, e.To, e.Weight, d.Nodes[e.From].Latency)
		}
	})
	if err != nil {
		return err
	}
	if _, terr := d.G.TopoSort(); terr != nil {
		return fmt.Errorf("ddg %q: intra-iteration dependences are cyclic: %v", d.Name, terr)
	}
	// Zero-total-distance cycles are impossible once the distance-0
	// subgraph is acyclic and all distances are >= 0: any cycle must use at
	// least one positive-distance edge.
	return nil
}
