package ddg

// Resources describes the machine-wide execution resources that bound the
// initiation interval of a modulo-scheduled loop (§4.2). IssueSlots is the
// total number of single-issue computation nodes visible to the problem
// (64 for the full DSPFabric, 1 for a leaf cluster); DMAPorts is the number
// of memory requests the programmable DMA can serve simultaneously (8 on
// DSPFabric, §2.2).
type Resources struct {
	IssueSlots int
	DMAPorts   int
}

// MIIRec returns the recurrence-constrained minimum initiation interval:
// the maximum over all dependence cycles of ceil(latency/distance), and at
// least 1. A DDG with no loop-carried cycle has MIIRec 1.
func (d *DDG) MIIRec() int {
	mii, ok := d.G.MaxCycleRatio()
	if !ok || mii < 1 {
		return 1
	}
	return mii
}

// MIIRes returns the resource-constrained minimum initiation interval for
// the given resources: every instruction needs one issue slot per
// iteration, and every memory operation additionally needs one DMA request
// port. The result is at least 1.
func (d *DDG) MIIRes(r Resources) int {
	if r.IssueSlots <= 0 {
		panic("ddg: MIIRes: IssueSlots must be positive")
	}
	s := d.Stats()
	mii := ceilDiv(s.Instr, r.IssueSlots)
	if r.DMAPorts > 0 {
		if m := ceilDiv(s.MemOps, r.DMAPorts); m > mii {
			mii = m
		}
	}
	if mii < 1 {
		mii = 1
	}
	return mii
}

// MII returns max(MIIRec, MIIRes): the theoretical optimum initiation
// interval on an equivalent-issue-width unified machine, the lower bound
// Table 1 compares the clusterized result against.
func (d *DDG) MII(r Resources) int {
	rec, res := d.MIIRec(), d.MIIRes(r)
	if rec > res {
		return rec
	}
	return res
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
