package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Only the duration phases "B"/"E",
// counters "C" and metadata "M" are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds since trace start
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the recorded spans and counters as Chrome
// trace-event JSON. Spans become balanced B/E pairs; each span is placed
// on a thread lane (tid) such that the events on every lane nest
// properly — a child shares its parent's lane when possible, concurrent
// siblings spread onto fresh lanes. Counters are emitted as one "C"
// sample each at the end of the trace.
func (r *Recorder) ChromeTrace() ([]byte, error) {
	spans := r.snapshot()
	lanes := assignLanes(spans)

	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "hca compile"},
	})

	// Per lane, emit a properly nested B/E sequence with an explicit
	// stack; ties (a span starting exactly when another ends) close the
	// earlier span first.
	byLane := map[int][]*Span{}
	laneOrder := []int{}
	for i, s := range spans {
		l := lanes[i]
		if _, ok := byLane[l]; !ok {
			laneOrder = append(laneOrder, l)
		}
		byLane[l] = append(byLane[l], s)
	}
	sort.Ints(laneOrder)
	for _, l := range laneOrder {
		var stack []*Span
		for _, s := range byLane[l] {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				events = append(events, endEvent(top, l))
			}
			events = append(events, beginEvent(s, l, spans))
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			events = append(events, endEvent(top, l))
		}
	}

	// Counter samples, one per name in sorted order, stamped at the end.
	maxEnd := int64(0)
	for _, s := range spans {
		if us := s.end.Microseconds(); us > maxEnd {
			maxEnd = us
		}
	}
	counters := r.Counters()
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		events = append(events, chromeEvent{
			Name: n, Ph: "C", TS: maxEnd, PID: 1, TID: 0,
			Args: map[string]any{"value": counters[n]},
		})
	}

	return json.MarshalIndent(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
}

// WriteChromeTrace writes ChromeTrace's output to w.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	b, err := r.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func beginEvent(s *Span, lane int, all []*Span) chromeEvent {
	args := map[string]any{}
	for _, a := range s.attrs {
		if a.IsStr {
			args[a.Key] = a.Str
		} else {
			args[a.Key] = a.Int
		}
	}
	if s.parent >= 0 {
		for _, p := range all {
			if p.id == s.parent {
				args["parent"] = p.name
				break
			}
		}
	}
	if len(args) == 0 {
		args = nil
	}
	return chromeEvent{Name: s.name, Ph: "B", TS: s.start.Microseconds(), PID: 1, TID: lane, Args: args}
}

func endEvent(s *Span, lane int) chromeEvent {
	return chromeEvent{Name: s.name, Ph: "E", TS: s.end.Microseconds(), PID: 1, TID: lane}
}

// assignLanes maps each span (in snapshot order) to a tid such that the
// spans of one lane either nest or are disjoint in time. A span prefers
// its parent's lane; when a concurrent sibling already occupies it, the
// first compatible (or a fresh) lane is used.
func assignLanes(spans []*Span) []int {
	laneOf := make(map[int]int, len(spans)) // span id -> lane
	var laneSpans [][]*Span
	fits := func(lane int, s *Span) bool {
		for _, p := range laneSpans[lane] {
			disjoint := p.end <= s.start || s.end <= p.start
			encloses := p.start <= s.start && s.end <= p.end
			if !disjoint && !encloses {
				return false
			}
		}
		return true
	}
	out := make([]int, len(spans))
	for i, s := range spans {
		lane := -1
		if pl, ok := laneOf[s.parent]; ok && fits(pl, s) {
			lane = pl
		} else {
			for l := range laneSpans {
				if fits(l, s) {
					lane = l
					break
				}
			}
		}
		if lane == -1 {
			laneSpans = append(laneSpans, nil)
			lane = len(laneSpans) - 1
		}
		laneSpans[lane] = append(laneSpans[lane], s)
		laneOf[s.id] = lane
		out[i] = lane
	}
	return out
}

// ValidateChrome parses a ChromeTrace export and checks it is
// well-formed: valid JSON, microsecond timestamps non-decreasing per
// lane sequence, and every "B" matched by an "E" of the same name with
// proper nesting per tid. Tests and debugging tools use it; it returns
// the number of B/E span pairs.
func ValidateChrome(b []byte) (int, error) {
	var f chromeFile
	if err := json.Unmarshal(b, &f); err != nil {
		return 0, fmt.Errorf("trace: invalid JSON: %v", err)
	}
	stacks := map[int][]string{}
	pairs := 0
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "B":
			stacks[e.TID] = append(stacks[e.TID], e.Name)
		case "E":
			st := stacks[e.TID]
			if len(st) == 0 {
				return 0, fmt.Errorf("trace: E %q on tid %d with empty stack", e.Name, e.TID)
			}
			if top := st[len(st)-1]; top != e.Name {
				return 0, fmt.Errorf("trace: E %q on tid %d does not match open span %q", e.Name, e.TID, top)
			}
			stacks[e.TID] = st[:len(st)-1]
			pairs++
		case "C", "M":
		default:
			return 0, fmt.Errorf("trace: unexpected phase %q", e.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			return 0, fmt.Errorf("trace: tid %d left %d spans open (%v)", tid, len(st), st)
		}
	}
	return pairs, nil
}
