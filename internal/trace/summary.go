package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// PhaseStat aggregates every span sharing one summary group: the span's
// "phase" string attribute when set (the HCA driver groups subproblem
// spans per hierarchy level this way), otherwise the span name.
type PhaseStat struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalUs int64  `json:"total_us"`
	MaxUs   int64  `json:"max_us"`
}

// Summary is the compact, report-embeddable digest of a recording: the
// per-phase time table plus the final counter values.
type Summary struct {
	Spans    int              `json:"spans"`
	WallUs   int64            `json:"wall_us"`
	Phases   []PhaseStat      `json:"phases"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Summary aggregates the recording. Phases are sorted by name for
// deterministic encoding; WriteText re-sorts by total time for reading.
func (r *Recorder) Summary() *Summary {
	spans := r.snapshot()
	byName := map[string]*PhaseStat{}
	wall := time.Duration(0)
	for _, s := range spans {
		key := s.name
		for _, a := range s.attrs {
			if a.Key == "phase" && a.IsStr {
				key = a.Str
				break
			}
		}
		st := byName[key]
		if st == nil {
			st = &PhaseStat{Name: key}
			byName[key] = st
		}
		st.Count++
		dur := (s.end - s.start).Microseconds()
		st.TotalUs += dur
		if dur > st.MaxUs {
			st.MaxUs = dur
		}
		if s.end > wall {
			wall = s.end
		}
	}
	sum := &Summary{Spans: len(spans), WallUs: wall.Microseconds(), Counters: r.Counters()}
	if len(sum.Counters) == 0 {
		sum.Counters = nil
	}
	for _, st := range byName {
		sum.Phases = append(sum.Phases, *st)
	}
	sort.Slice(sum.Phases, func(i, j int) bool { return sum.Phases[i].Name < sum.Phases[j].Name })
	return sum
}

// WriteText renders the summary as the plain-text table cmd/hca
// -trace-summary prints: phases by descending total time, then the
// counters in name order.
func (s *Summary) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace summary: %d spans, %.3f ms wall\n", s.Spans, float64(s.WallUs)/1000); err != nil {
		return err
	}
	phases := append([]PhaseStat(nil), s.Phases...)
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].TotalUs > phases[j].TotalUs })
	if len(phases) > 0 {
		if _, err := fmt.Fprintf(w, "  %-28s %6s %12s %12s\n", "phase", "count", "total ms", "max ms"); err != nil {
			return err
		}
		for _, p := range phases {
			if _, err := fmt.Fprintf(w, "  %-28s %6d %12.3f %12.3f\n",
				p.Name, p.Count, float64(p.TotalUs)/1000, float64(p.MaxUs)/1000); err != nil {
				return err
			}
		}
	}
	if len(s.Counters) > 0 {
		names := make([]string, 0, len(s.Counters))
		for n := range s.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		if _, err := fmt.Fprintf(w, "  counters:\n"); err != nil {
			return err
		}
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "    %-30s %d\n", n, s.Counters[n]); err != nil {
				return err
			}
		}
	}
	return nil
}
