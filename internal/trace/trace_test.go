package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

// stepClock returns a deterministic clock advancing 1ms per reading.
func stepClock() func() time.Duration {
	var t time.Duration
	return func() time.Duration {
		t += time.Millisecond
		return t
	}
}

func TestSpanHierarchyAndSummary(t *testing.T) {
	r := NewWithClock(stepClock())
	ctx := With(context.Background(), r)

	ctx, root := Start(ctx, "compile")
	cctx, child := Start(ctx, "subproblem 0")
	child.SetStr("phase", "subproblem L0")
	child.SetInt("instructions", 57)
	Count(cctx, "see.states_explored", 40)
	Count(cctx, "see.states_explored", 2)
	child.End()
	_, child2 := Start(ctx, "subproblem 0,1")
	child2.SetStr("phase", "subproblem L1")
	child2.End()
	root.End()

	sum := r.Summary()
	if sum.Spans != 3 {
		t.Fatalf("Spans = %d, want 3", sum.Spans)
	}
	byName := map[string]PhaseStat{}
	for _, p := range sum.Phases {
		byName[p.Name] = p
	}
	// The "phase" attribute overrides the span name as the grouping key.
	if _, ok := byName["subproblem 0"]; ok {
		t.Error("span grouped by name despite a phase attribute")
	}
	if p := byName["subproblem L0"]; p.Count != 1 {
		t.Errorf("subproblem L0 count = %d, want 1", p.Count)
	}
	if p := byName["compile"]; p.Count != 1 {
		t.Errorf("compile count = %d, want 1", p.Count)
	}
	if got := sum.Counters["see.states_explored"]; got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var sb strings.Builder
	if err := sum.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace summary:", "subproblem L0", "see.states_explored", "42"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary text missing %q:\n%s", want, sb.String())
		}
	}
}

func TestChromeTraceBalancedAndValid(t *testing.T) {
	r := NewWithClock(stepClock())
	root := With(context.Background(), r)

	ctx, sp := Start(root, "compile")
	// Two "concurrent" siblings: the second starts before the first ends
	// (span b is never ended — snapshot must clamp it).
	actx, a := Start(ctx, "worker-a")
	a.SetInt("items", 3)
	_, b := Start(ctx, "worker-b")
	_, leaf := Start(actx, "leaf")
	leaf.End()
	a.End()
	_ = b // deliberately left open
	sp.End()
	r.Add("widgets", 7)

	out, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ValidateChrome(out)
	if err != nil {
		t.Fatalf("invalid chrome trace: %v\n%s", err, out)
	}
	if pairs != 4 {
		t.Errorf("B/E pairs = %d, want 4", pairs)
	}
	s := string(out)
	for _, want := range []string{`"displayTimeUnit": "ms"`, `"worker-b"`, `"widgets"`, `"ph": "C"`, `"parent": "compile"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome output missing %q", want)
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewWithClock(stepClock())
		ctx := With(context.Background(), r)
		ctx, root := Start(ctx, "root")
		for _, name := range []string{"x", "y"} {
			_, s := Start(ctx, name)
			s.SetInt("k", 1)
			s.End()
		}
		root.End()
		r.Add("c", 2)
		out, err := r.ChromeTrace()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := build(), build(); string(a) != string(b) {
		t.Error("identical recordings produced different chrome output")
	}
}

func TestValidateChromeRejectsImbalance(t *testing.T) {
	bad := []byte(`{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`)
	if _, err := ValidateChrome(bad); err == nil {
		t.Error("unclosed B accepted")
	}
	crossed := []byte(`{"traceEvents":[
		{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
		{"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
		{"name":"a","ph":"E","ts":2,"pid":1,"tid":0},
		{"name":"b","ph":"E","ts":3,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`)
	if _, err := ValidateChrome(crossed); err == nil {
		t.Error("crossed B/E nesting accepted")
	}
}

func TestDisabledPathIsInert(t *testing.T) {
	ctx := context.Background()
	if got := With(ctx, nil); got != ctx {
		t.Error("With(ctx, nil) did not return ctx unchanged")
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext on a bare context is non-nil")
	}
	ctx2, sp := Start(ctx, "ignored")
	if ctx2 != ctx {
		t.Error("disabled Start derived a new context")
	}
	if sp != nil {
		t.Fatal("disabled Start returned a live span")
	}
	// All nil-receiver methods must be safe no-ops.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.SetBool("k", true)
	sp.End()
	Count(ctx, "c", 1)
	var r *Recorder
	r.Add("c", 1)
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "span")
		sp.SetInt("i", 42)
		sp.SetStr("s", "v")
		sp.SetBool("b", true)
		sp.End()
		Count(c2, "counter", 1)
	}); n != 0 {
		t.Errorf("disabled path allocates %.1f allocs/op, want 0", n)
	}
}

func TestUnendedSpansClampToTraceEnd(t *testing.T) {
	r := NewWithClock(stepClock())
	ctx := With(context.Background(), r)
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	b.End() // a stays open
	spans := r.snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	if !a.ended || a.end < b.end {
		t.Errorf("open span not clamped: ended=%v end=%v (b end %v)", a.ended, a.end, b.end)
	}
}

func BenchmarkStartEndDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "span")
		sp.SetInt("i", int64(i))
		sp.End()
	}
}

func BenchmarkCountDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(ctx, "counter", 1)
	}
}

func BenchmarkStartEndEnabled(b *testing.B) {
	r := New()
	ctx := With(context.Background(), r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "span")
		sp.End()
	}
	if len(r.spans) == 0 {
		b.Fatal("no spans recorded")
	}
}
