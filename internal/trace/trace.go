// Package trace is the compile-telemetry subsystem: a hierarchical
// span/event recorder carried through the pipeline via context.Context,
// plus monotonic counters, a Chrome trace-event exporter (chrome.go,
// loadable in Perfetto or chrome://tracing) and a plain-text per-phase
// summary (summary.go).
//
// The design goal is near-zero overhead when no recorder is installed:
// every entry point is guarded by a single nil check, and the disabled
// path performs no allocations (verified by TestDisabledPathZeroAllocs
// and the Benchmark*Disabled benchmarks). Instrumented code therefore
// calls Start/End and the typed attribute setters unconditionally:
//
//	ctx, sp := trace.Start(ctx, "subproblem 0,2")
//	sp.SetInt("instructions", len(ws))
//	defer sp.End()
//
// A nil *Span is valid and inert, so call sites never branch on whether
// telemetry is on. Spans started from concurrent goroutines (parallel
// subproblems, variant races) are safe: registration and counters are
// mutex-protected, while a span's own attributes belong to the single
// goroutine that started it until End.
package trace

import (
	"context"
	"sync"
	"time"
)

// Attr is one typed key/value attribute of a span. Values are either a
// string or an int64 — typed fields instead of interface{} so that
// setting attributes on a nil (disabled) span cannot box and allocate
// at the call site.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Span is one timed region of the compile. The zero of *Span (nil) is a
// valid disabled span: every method is a no-op on it.
type Span struct {
	r          *Recorder
	id, parent int
	name       string
	start, end time.Duration
	attrs      []Attr
	ended      bool
}

// Recorder collects spans and counters for one compile (or one service
// request). Create with New, install into a context with With, and read
// back with WriteChromeTrace / Summary once the pipeline has finished.
type Recorder struct {
	epoch time.Time
	clock func() time.Duration // monotonic time since epoch

	mu       sync.Mutex
	spans    []*Span
	counters map[string]int64
	nextID   int
}

// New returns a recorder using the wall clock (monotonic since New).
func New() *Recorder {
	r := &Recorder{epoch: time.Now(), counters: map[string]int64{}}
	r.clock = func() time.Duration { return time.Since(r.epoch) }
	return r
}

// NewWithClock returns a recorder on a caller-supplied clock; the golden
// tests install a deterministic step counter so exported timestamps are
// reproducible.
func NewWithClock(clock func() time.Duration) *Recorder {
	return &Recorder{epoch: time.Now(), clock: clock, counters: map[string]int64{}}
}

// ctxData is the context payload: the recorder plus the span enclosing
// the current call (the parent of the next Start).
type ctxData struct {
	r    *Recorder
	span *Span
}

type ctxKey struct{}

// With installs r into ctx; the pipeline threads the returned context
// everywhere. With(ctx, nil) returns ctx unchanged, so callers can pass
// an optional recorder straight through.
func With(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &ctxData{r: r})
}

// FromContext returns the installed recorder, or nil when telemetry is
// off. Hot loops fetch it once instead of per iteration.
func FromContext(ctx context.Context) *Recorder {
	if d, ok := ctx.Value(ctxKey{}).(*ctxData); ok {
		return d.r
	}
	return nil
}

// Start opens a span named name under the context's current span and
// returns a derived context carrying the new span as parent. With no
// recorder installed it returns (ctx, nil) without allocating.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	d, ok := ctx.Value(ctxKey{}).(*ctxData)
	if !ok {
		return ctx, nil
	}
	s := d.r.startSpan(name, d.span)
	return context.WithValue(ctx, ctxKey{}, &ctxData{r: d.r, span: s}), s
}

func (r *Recorder) startSpan(name string, parent *Span) *Span {
	now := r.clock()
	r.mu.Lock()
	s := &Span{r: r, id: r.nextID, parent: -1, name: name, start: now}
	if parent != nil {
		s.parent = parent.id
	}
	r.nextID++
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// End closes the span. Ending a nil or already-ended span is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.end = s.r.clock()
	s.ended = true
}

// SetInt records an integer attribute. No-op on a nil span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
}

// SetStr records a string attribute. No-op on a nil span.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
}

// SetBool records a boolean attribute (as 0/1). No-op on a nil span.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	n := int64(0)
	if v {
		n = 1
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: n})
}

// Add bumps the named monotonic counter. No-op on a nil recorder, so
// instrumented code can hold a possibly-nil *Recorder and call Add
// unconditionally.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Count bumps the named counter on the context's recorder, if any.
func Count(ctx context.Context, name string, delta int64) {
	if d, ok := ctx.Value(ctxKey{}).(*ctxData); ok {
		d.r.Add(name, delta)
	}
}

// Counters returns a copy of the counter map.
func (r *Recorder) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// snapshot returns the spans sorted deterministically (start, then
// registration order), with any unended span clamped to the latest end
// so exports are always balanced. Callers must have finished the traced
// work: a span's attributes are owned by its goroutine until End.
func (r *Recorder) snapshot() []*Span {
	r.mu.Lock()
	spans := make([]*Span, len(r.spans))
	copy(spans, r.spans)
	r.mu.Unlock()

	maxEnd := time.Duration(0)
	for _, s := range spans {
		if s.ended && s.end > maxEnd {
			maxEnd = s.end
		}
		if s.start > maxEnd {
			maxEnd = s.start
		}
	}
	for _, s := range spans {
		if !s.ended {
			s.end = maxEnd
			s.ended = true
		}
	}
	sortSpans(spans)
	return spans
}

func sortSpans(spans []*Span) {
	// Insertion-style stable sort by (start, id); traces are small.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0; j-- {
			a, b := spans[j-1], spans[j]
			if a.start < b.start || (a.start == b.start && a.id < b.id) {
				break
			}
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
}
