package trace_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// tickClock is a goroutine-safe deterministic clock: every reading
// advances one microsecond. Spans are started from parallel workers, so
// the plain closure-over-int clock would race.
func tickClock() func() time.Duration {
	var n atomic.Int64
	return func() time.Duration { return time.Duration(n.Add(1)) * time.Microsecond }
}

// normEvent is a chrome event with everything timing- and
// lane-dependent stripped: parallel interleavings perturb timestamps and
// lane packing run to run, while names, phases and attribute values are
// fully determined by the (deterministic) pipeline.
type normEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Args map[string]any `json:"args,omitempty"`
}

// normalize parses a ChromeTrace export and returns its events in a
// canonical order: B events only (every B is balanced by an E of the
// same name — ValidateChrome enforces that separately), plus counters
// and metadata, sorted by (ph, name, args).
func normalize(t *testing.T, raw []byte) []byte {
	t.Helper()
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("unmarshal chrome trace: %v", err)
	}
	var evs []normEvent
	for _, e := range f.TraceEvents {
		if e.Ph == "E" {
			continue
		}
		evs = append(evs, normEvent{Name: e.Name, Ph: e.Ph, Args: e.Args})
	}
	key := func(e normEvent) string {
		args, _ := json.Marshal(e.Args) // map keys marshal sorted
		return e.Ph + "\x00" + e.Name + "\x00" + string(args)
	}
	sort.SliceStable(evs, func(i, j int) bool { return key(evs[i]) < key(evs[j]) })
	out, err := json.MarshalIndent(evs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// runTracedFeedback runs the full §5 feedback pipeline on fir2dim with a
// deterministic clock and returns the recorder plus the winning result.
//
// The subproblem memo is disabled: with it on, *which* racing variant
// becomes a key's leader (and therefore carries the beam-search and
// mapper spans instead of a memo.hit) depends on scheduling, so even the
// normalized span multiset is not reproducible. TestMemoSpansInTrace
// covers the memo's trace surface on a deterministic sequential run.
func runTracedFeedback(t *testing.T) (*trace.Recorder, *driver.ScheduledResult) {
	t.Helper()
	rec := trace.NewWithClock(tickClock())
	ctx := trace.With(context.Background(), rec)
	fb, err := driver.HCAWithFeedback(ctx, kernels.Fir2Dim(), machine.DSPFabric64(8, 8, 8),
		core.Options{DisableSeeding: true, DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	return rec, fb
}

// TestMemoSpansInTrace pins the memo's telemetry contract on a run whose
// hit pattern is deterministic: a plain two-pass HCA solve, where the
// seeded pass replays the pure pass's ladder attempts from the per-run
// memo. Every hit and miss must surface as a span and roll up into the
// memo.hits / memo.misses counters.
func TestMemoSpansInTrace(t *testing.T) {
	rec := trace.NewWithClock(tickClock())
	ctx := trace.With(context.Background(), rec)
	if _, err := core.HCA(ctx, kernels.Fir2Dim(), machine.DSPFabric64(8, 8, 8), core.Options{}); err != nil {
		t.Fatal(err)
	}
	raw, err := rec.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateChrome(raw); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	s := string(raw)
	if !strings.Contains(s, `"memo.hit"`) {
		t.Error("trace missing memo.hit spans (seeded pass should replay the pure pass)")
	}
	if !strings.Contains(s, `"memo.miss"`) {
		t.Error("trace missing memo.miss spans")
	}
	c := rec.Counters()
	if c["memo.hits"] == 0 || c["memo.misses"] == 0 {
		t.Errorf("memo counters not rolled up: hits=%d misses=%d", c["memo.hits"], c["memo.misses"])
	}
	if c["memo.hits"]+c["memo.misses"] < c["hca.subproblems"] {
		t.Errorf("memo traffic %d below subproblem count %d: attempts unaccounted",
			c["memo.hits"]+c["memo.misses"], c["hca.subproblems"])
	}
}

func TestChromeTraceGoldenFir2Dim(t *testing.T) {
	rec, fb := runTracedFeedback(t)
	raw, err := rec.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}

	// The raw export must be well-formed before any normalization: valid
	// trace-event JSON, balanced B/E, proper per-lane nesting.
	pairs, err := trace.ValidateChrome(raw)
	if err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	if pairs == 0 {
		t.Fatal("trace has no spans")
	}

	got := normalize(t, raw)
	golden := filepath.Join("testdata", "fir2dim_feedback_trace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("normalized trace diverged from %s (run with -update to regenerate)\ngot %d bytes, want %d",
			golden, len(got), len(want))
	}

	// Structural guarantees the golden alone cannot express.
	s := string(got)
	for _, variant := range []string{`"variant default"`, `"variant sched-aware"`, `"variant port-frugal"`} {
		if !strings.Contains(s, variant) {
			t.Errorf("trace missing span %s", variant)
		}
	}
	if !strings.Contains(s, `"feedback.select"`) || !strings.Contains(s, `"winner"`) {
		t.Error("trace missing the feedback.select winner span")
	}
	if fb.Variant == "" {
		t.Error("feedback returned no winning variant name")
	}
}

func TestChromeTraceDeterministicAcrossRuns(t *testing.T) {
	one := func() []byte {
		rec, _ := runTracedFeedback(t)
		raw, err := rec.ChromeTrace()
		if err != nil {
			t.Fatal(err)
		}
		return normalize(t, raw)
	}
	if a, b := one(), one(); string(a) != string(b) {
		t.Error("two identical pipeline runs produced different normalized traces")
	}
}

func TestOneSpanPerSubproblem(t *testing.T) {
	rec := trace.NewWithClock(tickClock())
	ctx := trace.With(context.Background(), rec)
	res, err := core.HCA(ctx, kernels.Fir2Dim(), machine.DSPFabric64(8, 8, 8),
		core.Options{DisableSeeding: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rec.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateChrome(raw); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, e := range f.TraceEvents {
		if e.Ph == "B" && strings.HasPrefix(e.Name, "subproblem ") {
			spans++
		}
	}
	if spans != len(res.Levels) {
		t.Errorf("%d subproblem spans for %d solved levels, want exactly one each", spans, len(res.Levels))
	}
	if c := rec.Counters()["hca.subproblems"]; c != int64(len(res.Levels)) {
		t.Errorf("hca.subproblems counter = %d, want %d", c, len(res.Levels))
	}
	if sum := rec.Summary(); sum.Spans == 0 || sum.WallUs == 0 {
		t.Errorf("summary empty: %+v", sum)
	}
	_ = fmt.Sprintf("%v", res.Legal)
}
