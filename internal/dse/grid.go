// Package dse implements design-space exploration: one kernel compiled
// against a parameter grid of candidate fabrics, in parallel, with one
// subproblem memo shared across the whole sweep.
//
// The throughput argument is the one HeLEx-style layout exploration and
// symbolic loop compilation both make: neighboring configurations share
// most of their subproblem work. Our memo keys (core.AttemptKey) are
// content-addressed by the subproblem's topology fingerprint, not by
// the machine's name, so two grid points whose level-0 capacities agree
// replay each other's level-0 attempts verbatim — the most expensive
// subproblem of each solve. Two reuse layers stack:
//
//  1. Point dedup: grid points whose fabrics are structurally identical
//     (same per-level topology structure — e.g. an RCP ring whose
//     neighborhood already spans every cluster, at any wider
//     RingNeighbors) collapse onto one solve before any work starts.
//  2. Cross-point memo sharing: distinct fabrics still share every
//     subproblem whose content address coincides.
//
// Results are deterministic at any worker count: every point's solve is
// independently deterministic, memo hits replay bit-identical cached
// attempts, and the output orders points by their canonical grid index
// regardless of solve order.
package dse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pg"
	"repro/internal/see"
)

// Grid is a parameter sweep over machine.Config: one axis per
// parameter, expanded as a cross product. Empty axes default to the
// machine family's canonical value, so the zero Grid is the single
// paper-default point of its family.
type Grid struct {
	// Type selects the machine family: "dspfabric" (default), "rcp" or
	// "linear". Ring/RingNeighbors variation is expressed as an "rcp"
	// grid with a Neighbors axis; "linear" is the open-ended variant.
	Type string `json:"type,omitempty"`

	// DSPFabric MUX-capacity axes (defaults [8]/[8]/[8]).
	N []int `json:"n,omitempty"`
	M []int `json:"m,omitempty"`
	K []int `json:"k,omitempty"`
	// CN port axes of the hierarchical family (defaults [2]/[1]).
	InPorts  []int `json:"in_ports,omitempty"`
	OutPorts []int `json:"out_ports,omitempty"`

	// Flat-machine axes, rcp/linear only (defaults [8]/[2]/[2]).
	// Clusters is the CN count, Neighbors the ring/array neighborhood,
	// Ports the per-cluster input-port budget.
	Clusters  []int `json:"clusters,omitempty"`
	Neighbors []int `json:"neighbors,omitempty"`
	Ports     []int `json:"ports,omitempty"`

	// MemCNs lists heterogeneous memory-CN mixes; an empty mix means
	// every CN is memory-capable (the homogeneous default).
	MemCNs [][]int `json:"mem_cns,omitempty"`

	// Engines is the per-point engine axis over the core.Engine
	// registry ("see"/"exact"/"portfolio"; default ["see"]).
	Engines []string `json:"engines,omitempty"`
}

// Point is one expanded grid configuration.
type Point struct {
	// Index is the point's canonical position in the expansion order —
	// the order every sweep output is reported in.
	Index   int
	Engine  string
	Machine *machine.Config
	// coords locates the point in axis-index space for the warm-order
	// scheduler's nearest-neighbor traversal; coords[0] is the engine
	// axis.
	coords []int
}

// axisOr returns the axis values, or the family default when empty.
func axisOr(vs []int, def int) []int {
	if len(vs) == 0 {
		return []int{def}
	}
	return vs
}

// NumPoints returns how many points the grid expands to, validating it
// along the way; bad grids return the same typed *see.OptionError that
// Expand would.
func (g Grid) NumPoints() (int, error) {
	pts, err := g.Expand()
	return len(pts), err
}

// Expand validates the grid and expands it into its cross product of
// points in canonical order: engines outermost, then the family's axes
// in declared order, memory mixes innermost. Invalid values surface as
// typed *see.OptionError (→ HTTP 400 at the service boundary).
func (g Grid) Expand() ([]Point, error) {
	if g.Type == "" {
		g.Type = "dspfabric"
	}
	engines := g.Engines
	if len(engines) == 0 {
		engines = []string{"see"}
	}
	for i, e := range engines {
		if e == "" {
			engines[i] = "see"
			continue
		}
		if _, err := core.EngineByName(e); err != nil {
			return nil, err
		}
	}
	mems := g.MemCNs
	if len(mems) == 0 {
		mems = [][]int{nil}
	}

	var pts []Point
	add := func(mc *machine.Config, eng string, mem []int, coords []int) error {
		if len(mem) > 0 {
			mc.MemCNs = append([]int(nil), mem...)
			mc.Name += "-mem" + joinInts(mem, ".")
		}
		if mc.Levels[0].Groups > 64 || mc.TotalCNs() > 64 {
			return &see.OptionError{Field: "grid.clusters", Value: mc.TotalCNs(),
				Reason: "exceeds the 64-cluster pattern-graph limit"}
		}
		if err := mc.Validate(); err != nil {
			return &see.OptionError{Field: "grid", Str: mc.Name, Reason: err.Error()}
		}
		pts = append(pts, Point{Index: len(pts), Engine: eng, Machine: mc, coords: coords})
		return nil
	}

	switch g.Type {
	case "dspfabric":
		if len(g.Clusters) > 0 || len(g.Neighbors) > 0 || len(g.Ports) > 0 {
			return nil, &see.OptionError{Field: "grid.clusters", Value: len(g.Clusters) + len(g.Neighbors) + len(g.Ports),
				Reason: "clusters/neighbors/ports axes are only meaningful for rcp or linear grids"}
		}
		ns, ms, ks := axisOr(g.N, 8), axisOr(g.M, 8), axisOr(g.K, 8)
		ins, outs := axisOr(g.InPorts, 2), axisOr(g.OutPorts, 1)
		for ei, eng := range engines {
			for ni, n := range ns {
				for mi, m := range ms {
					for ki, k := range ks {
						for ii, in := range ins {
							for oi, out := range outs {
								for xi, mem := range mems {
									mc := machine.DSPFabric64(n, m, k)
									if in != 2 || out != 1 {
										mc.CNInPorts, mc.CNOutPorts = in, out
										mc.Name += fmt.Sprintf("-p%d.%d", in, out)
									}
									if err := add(mc, eng, mem, []int{ei, ni, mi, ki, ii, oi, xi}); err != nil {
										return nil, err
									}
								}
							}
						}
					}
				}
			}
		}
	case "rcp", "linear":
		if len(g.N) > 0 || len(g.M) > 0 || len(g.K) > 0 || len(g.InPorts) > 0 || len(g.OutPorts) > 0 {
			return nil, &see.OptionError{Field: "grid.n", Value: len(g.N) + len(g.M) + len(g.K) + len(g.InPorts) + len(g.OutPorts),
				Reason: "n/m/k/in_ports/out_ports axes are only meaningful for dspfabric grids"}
		}
		cls, nbs, ps := axisOr(g.Clusters, 8), axisOr(g.Neighbors, 2), axisOr(g.Ports, 2)
		for ei, eng := range engines {
			for ci, cl := range cls {
				for bi, nb := range nbs {
					for pi, p := range ps {
						for xi, mem := range mems {
							var mc *machine.Config
							if g.Type == "rcp" {
								mc = machine.RCP(cl, nb, p)
							} else {
								mc = machine.LinearArray(cl, nb, p)
							}
							if err := add(mc, eng, mem, []int{ei, ci, bi, pi, xi}); err != nil {
								return nil, err
							}
						}
					}
				}
			}
		}
	default:
		return nil, &see.OptionError{Field: "grid.type", Str: g.Type, Reason: "want dspfabric, rcp or linear"}
	}
	return pts, nil
}

func joinInts(vs []int, sep string) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, sep)
}

// fabricFingerprint derives the structural identity a solve actually
// depends on: the level-0 pattern topology (whose fingerprint captures
// ring/linear neighborhoods as a potential matrix, so saturated
// neighborhoods collapse onto all-to-all), every level's shape, the CN
// port and DMA budgets, the machine-family flags and the memory-CN set.
// RingNeighbors is deliberately not absorbed raw — the potential matrix
// already encodes exactly as much of it as the solve can see.
func fabricFingerprint(mc *machine.Config) pg.Fingerprint {
	h := core.RootTopology(mc).Fingerprint()
	h = h.Absorb(0x64736566) // domain separator "dsef"
	h = h.Absorb(uint64(len(mc.Levels)))
	for _, l := range mc.Levels {
		h = h.Absorb(uint64(l.Groups))
		h = h.Absorb(uint64(l.InWires)<<32 | uint64(uint32(l.OutWires)))
	}
	h = h.Absorb(uint64(mc.CNInPorts)<<32 | uint64(uint32(mc.CNOutPorts)))
	h = h.Absorb(uint64(mc.DMAPorts))
	h = h.Absorb(uint64(mc.DMAFIFODepth)<<32 | uint64(uint32(mc.DMALatency)))
	flags := uint64(0)
	if mc.Ring {
		flags |= 1
	}
	if mc.Linear {
		flags |= 2
	}
	h = h.Absorb(flags)
	if mc.MemCNs == nil {
		h = h.Absorb(0)
	} else {
		mem := append([]int(nil), mc.MemCNs...)
		sort.Ints(mem)
		h = h.Absorb(1 + uint64(len(mem)))
		for _, m := range mem {
			h = h.Absorb(uint64(m))
		}
	}
	return h
}

// sameFabric is the fail-safe full compare behind a fabricFingerprint
// match, mirroring the memo's discipline: a 128-bit collision degrades
// into two independent solves, never into a wrongly shared result.
func sameFabric(a, b *machine.Config) bool {
	if len(a.Levels) != len(b.Levels) ||
		a.CNInPorts != b.CNInPorts || a.CNOutPorts != b.CNOutPorts ||
		a.DMAPorts != b.DMAPorts || a.DMAFIFODepth != b.DMAFIFODepth ||
		a.DMALatency != b.DMALatency || a.Ring != b.Ring || a.Linear != b.Linear {
		return false
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			return false
		}
	}
	if (a.MemCNs == nil) != (b.MemCNs == nil) || len(a.MemCNs) != len(b.MemCNs) {
		return false
	}
	am := append([]int(nil), a.MemCNs...)
	bm := append([]int(nil), b.MemCNs...)
	sort.Ints(am)
	sort.Ints(bm)
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return core.RootTopology(a).Equal(core.RootTopology(b))
}
