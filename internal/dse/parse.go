package dse

import (
	"strconv"
	"strings"

	"repro/internal/see"
)

// ParseGrid parses the CLI axis-spec grammar shared by `hca -explore`
// and scripts:
//
//	spec   := clause (";" clause)*
//	clause := key "=" values
//	key    := type | engines | n | m | k | inports | outports
//	        | clusters | neighbors | ports | mem
//
// Integer axes take comma-separated values ("k=8,6,4,2"); engines takes
// comma-separated engine names; mem takes "|"-separated memory-CN
// mixes whose members are "."-separated CN indices, with "all" meaning
// the homogeneous every-CN-memory-capable default:
//
//	"n=8,6;m=8,6;k=8,6,4,2"
//	"type=rcp;clusters=8;neighbors=2,4;mem=all|0.4"
//
// The result is a Grid ready for Expand; value errors come back as the
// same typed *see.OptionError the HTTP surface reports.
func ParseGrid(spec string) (Grid, error) {
	var g Grid
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return g, &see.OptionError{Field: "grid", Str: clause, Reason: "want key=v1,v2,..."}
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "type":
			g.Type = val
		case "engines", "engine":
			for _, e := range strings.Split(val, ",") {
				g.Engines = append(g.Engines, strings.TrimSpace(e))
			}
		case "mem":
			for _, mix := range strings.Split(val, "|") {
				mix = strings.TrimSpace(mix)
				if mix == "all" || mix == "" {
					g.MemCNs = append(g.MemCNs, nil)
					continue
				}
				cns, err := parseInts(key, mix, ".")
				if err != nil {
					return g, err
				}
				g.MemCNs = append(g.MemCNs, cns)
			}
		default:
			dst, ok := intAxis(&g, key)
			if !ok {
				return g, &see.OptionError{Field: "grid." + key, Str: key, Reason: "unknown axis"}
			}
			vs, err := parseInts(key, val, ",")
			if err != nil {
				return g, err
			}
			*dst = append(*dst, vs...)
		}
	}
	return g, nil
}

// intAxis maps a spec key onto its Grid axis.
func intAxis(g *Grid, key string) (*[]int, bool) {
	switch key {
	case "n":
		return &g.N, true
	case "m":
		return &g.M, true
	case "k":
		return &g.K, true
	case "inports", "in_ports":
		return &g.InPorts, true
	case "outports", "out_ports":
		return &g.OutPorts, true
	case "clusters":
		return &g.Clusters, true
	case "neighbors":
		return &g.Neighbors, true
	case "ports":
		return &g.Ports, true
	}
	return nil, false
}

func parseInts(key, val, sep string) ([]int, error) {
	var vs []int
	for _, s := range strings.Split(val, sep) {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, &see.OptionError{Field: "grid." + key, Str: s, Reason: "not an integer"}
		}
		vs = append(vs, v)
	}
	if len(vs) == 0 {
		return nil, &see.OptionError{Field: "grid." + key, Str: val, Reason: "empty value list"}
	}
	return vs, nil
}
