package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/see"
)

// Options tunes a sweep.
type Options struct {
	// Beam and Cand are the SEE search widths applied to every point
	// (0 = the engine defaults).
	Beam, Cand int
	// ExactBudget caps the exact engine's node expansions per attempt
	// for points whose engine axis selects "exact" or "portfolio".
	ExactBudget int64
	// Memo is the subproblem memo shared across every point of the
	// sweep; nil creates a fresh unbounded one. The compilation service
	// injects its process-wide instance, so sweeps additionally share
	// with — and warm — ordinary compile traffic.
	Memo core.SubproblemMemo
	// PerPointMemo gives every point its own fresh memo instead
	// (ablation: isolates the cross-point sharing the sweep exists
	// for; each point still memoizes within its own solve, exactly as
	// a standalone core.HCA run would).
	PerPointMemo bool
	// MaxPoints rejects grids expanding beyond it with a typed error
	// (0 = unbounded; the service sets its endpoint bound here).
	MaxPoints int
}

// PointResult is one grid point's outcome. Deduplicated points carry
// the full result of their canonical sibling's solve.
type PointResult struct {
	Index   int    `json:"index"`
	Machine string `json:"machine"`
	Engine  string `json:"engine"`
	// Fingerprint is the structural fabric identity (hex) dedup keys on.
	Fingerprint string `json:"fingerprint"`
	// Canonical is the index of the point that actually solved this
	// fabric; Canonical == Index for points that solved themselves.
	Canonical int `json:"canonical"`
	// Cost is the fabric-cost breakdown (machine.Config.Cost).
	Cost CostJSON `json:"cost"`
	// MII figures of the solve (core.MII); MIIFinal is the paper's
	// Table-1 column and the Pareto objective.
	MIIRec       int `json:"mii_rec,omitempty"`
	MIIRes       int `json:"mii_res,omitempty"`
	MIIFinal     int `json:"mii_final,omitempty"`
	MIIAllLevels int `json:"mii_all_levels,omitempty"`
	// Receives counts inserted receive primitives.
	Receives int `json:"receives,omitempty"`
	// Legal reports the coherency checker passed.
	Legal bool `json:"legal,omitempty"`
	// Winner names the engine (or "seed") that won the most subproblems.
	Winner string `json:"winner,omitempty"`
	// Error carries a per-point solve failure; the rest of the sweep is
	// unaffected and the point is excluded from the front.
	Error string `json:"error,omitempty"`
}

// CostJSON mirrors machine.Cost with stable JSON field order.
type CostJSON struct {
	Crosspoints int64 `json:"crosspoints"`
	CNs         int64 `json:"cns"`
	Mem         int64 `json:"mem"`
	DMA         int64 `json:"dma"`
	Total       int64 `json:"total"`
}

// FrontPoint is one Pareto-optimal configuration: no other successful
// point achieves both a lower-or-equal cost and a lower-or-equal MII
// with one strict. Sorted by ascending cost (so strictly descending
// MII), ties broken by canonical point index.
type FrontPoint struct {
	Index   int    `json:"index"`
	Machine string `json:"machine"`
	Engine  string `json:"engine"`
	MII     int    `json:"mii"`
	Cost    int64  `json:"cost"`
}

// Stats is the sweep's run accounting. Unlike Points and Front it is
// NOT part of the deterministic output contract: wall time varies by
// host, and the memo deltas vary when the memo is shared with
// concurrent outside traffic (the service's process-wide instance).
type Stats struct {
	Points  int `json:"points"`
	Unique  int `json:"unique"`
	Deduped int `json:"deduped"`
	Failed  int `json:"failed"`
	// Memo is the shared memo's traffic delta over the sweep (hits,
	// misses and per-engine breakdown; entries/evictions absolute).
	Memo core.MemoStats `json:"memo"`
	// MemoHitRatio is Memo.Hits / (Memo.Hits + Memo.Misses).
	MemoHitRatio float64 `json:"memo_hit_ratio"`
	WallNs       int64   `json:"wall_ns"`
}

// Result is a complete sweep: every point in canonical grid order, the
// Pareto front, and the run stats.
type Result struct {
	Kernel string        `json:"kernel"`
	Points []PointResult `json:"points"`
	Front  []FrontPoint  `json:"front"`
	Stats  Stats         `json:"stats"`
}

// CanonicalJSON renders the deterministic part of the sweep output —
// the point set and the Pareto front. Byte-identical across runs and
// worker counts for the same kernel, grid and options.
func (r *Result) CanonicalJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	err := enc.Encode(struct {
		Kernel string        `json:"kernel"`
		Points []PointResult `json:"points"`
		Front  []FrontPoint  `json:"front"`
	}{r.Kernel, r.Points, r.Front})
	return buf.Bytes(), err
}

// Sweep compiles d against every point of g and returns the per-point
// results with their Pareto front over (final MII, fabric cost).
//
// Fingerprint-identical fabrics are collapsed before solving; the
// surviving points are visited in warm order (nearest-neighbor grid
// traversal, maximizing memo locality between temporally adjacent
// solves) and solved in parallel via par.ForEachCtx against one shared
// subproblem memo. Cancellation aborts the sweep with ctx's error.
//
// Determinism: the output depends only on (d, g, opt-minus-Memo). Solve
// order and worker count cannot change it — each point's solve is
// deterministic in isolation, a memo hit replays a bit-identical cached
// attempt (so sharing changes cost, never content), and the output is
// ordered by canonical point index, not completion order.
func Sweep(ctx context.Context, d *ddg.DDG, g Grid, opt Options) (*Result, error) {
	pts, err := g.Expand()
	if err != nil {
		return nil, err
	}
	if opt.MaxPoints > 0 && len(pts) > opt.MaxPoints {
		return nil, &see.OptionError{Field: "grid", Value: len(pts),
			Reason: "grid expands beyond the point bound"}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}

	// Collapse fingerprint-identical fabrics (same engine) onto the
	// first point that carries them, with the fail-safe full compare
	// behind every fingerprint match.
	type fabKey struct {
		engine string
		fp     [2]uint64
	}
	fps := make([]string, len(pts))
	canonical := make([]int, len(pts))
	first := make(map[fabKey]int, len(pts))
	var solveIdx []int // canonical points, in canonical order
	for i := range pts {
		fp := fabricFingerprint(pts[i].Machine)
		fps[i] = fpHex(fp.Hi, fp.Lo)
		k := fabKey{engine: pts[i].Engine, fp: [2]uint64{fp.Hi, fp.Lo}}
		if j, ok := first[k]; ok && sameFabric(pts[j].Machine, pts[i].Machine) {
			canonical[i] = j
			continue
		}
		first[k] = i
		canonical[i] = i
		solveIdx = append(solveIdx, i)
	}

	order := warmOrder(pts, solveIdx)

	memo := opt.Memo
	if memo == nil && !opt.PerPointMemo {
		memo = core.NewMemo(0)
	}
	var before core.MemoStats
	if memo != nil {
		before = memo.Stats()
	}

	// Per-order-slot result slices: each worker writes only its own
	// index, keeping the fan-out deterministic and race-free.
	solved := make([]*core.Result, len(order))
	serrs := make([]error, len(order))
	startT := time.Now()
	ferr := par.ForEachCtx(ctx, len(order), func(oi int) {
		p := &pts[order[oi]]
		m := memo
		if opt.PerPointMemo {
			m = core.NewMemo(0)
		}
		res, err := core.HCA(ctx, d, p.Machine, core.Options{
			SEE:         see.Config{BeamWidth: opt.Beam, CandWidth: opt.Cand},
			Engine:      p.Engine,
			ExactBudget: opt.ExactBudget,
			Memo:        m,
		})
		solved[oi], serrs[oi] = res, err
	})
	if ferr != nil {
		return nil, ferr
	}
	wall := time.Since(startT)

	// Scatter back to canonical point indices.
	byPoint := make([]*core.Result, len(pts))
	errByPoint := make([]error, len(pts))
	for oi, pi := range order {
		byPoint[pi], errByPoint[pi] = solved[oi], serrs[oi]
	}

	out := &Result{Kernel: d.Name}
	out.Stats = Stats{Points: len(pts), Unique: len(solveIdx), Deduped: len(pts) - len(solveIdx), WallNs: int64(wall)}
	if memo != nil {
		after := memo.Stats()
		out.Stats.Memo = memoDelta(before, after)
		if t := out.Stats.Memo.Hits + out.Stats.Memo.Misses; t > 0 {
			out.Stats.MemoHitRatio = float64(out.Stats.Memo.Hits) / float64(t)
		}
	}
	for i := range pts {
		ci := canonical[i]
		pr := PointResult{
			Index:       i,
			Machine:     pts[i].Machine.Name,
			Engine:      pts[i].Engine,
			Fingerprint: fps[i],
			Canonical:   ci,
			Cost:        costJSON(pts[i].Machine.Cost()),
		}
		if err := errByPoint[ci]; err != nil {
			pr.Error = err.Error()
			out.Stats.Failed++
		} else if res := byPoint[ci]; res != nil {
			pr.MIIRec, pr.MIIRes = res.MII.Rec, res.MII.Res
			pr.MIIFinal, pr.MIIAllLevels = res.MII.Final, res.MII.AllLevels
			pr.Receives = res.Recvs
			pr.Legal = res.Legal
			pr.Winner = topWinner(res.EngineWins)
		}
		out.Points = append(out.Points, pr)
	}
	out.Front = paretoFront(out.Points)
	return out, nil
}

func costJSON(c machine.Cost) CostJSON {
	return CostJSON{Crosspoints: c.Crosspoints, CNs: c.CNs, Mem: c.Mem, DMA: c.DMA, Total: c.Total}
}

// topWinner returns the engine with the most subproblem wins, ties
// broken alphabetically for determinism.
func topWinner(wins map[string]int) string {
	best, n := "", -1
	for eng, c := range wins {
		if c > n || (c == n && eng < best) {
			best, n = eng, c
		}
	}
	return best
}

// memoDelta subtracts the pre-sweep traffic counters; entry/eviction
// occupancy stays absolute (it describes the memo, not the sweep).
func memoDelta(before, after core.MemoStats) core.MemoStats {
	d := core.MemoStats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Entries:   after.Entries,
		Evictions: after.Evictions,
	}
	for eng, a := range after.ByEngine {
		b := before.ByEngine[eng]
		e := core.EngineMemoStats{Hits: a.Hits - b.Hits, Misses: a.Misses - b.Misses}
		if e.Hits == 0 && e.Misses == 0 {
			continue
		}
		if d.ByEngine == nil {
			d.ByEngine = make(map[string]core.EngineMemoStats, len(after.ByEngine))
		}
		d.ByEngine[eng] = e
	}
	return d
}

// paretoFront computes the non-dominated set over (MIIFinal, Cost.Total)
// of the successful, legal, canonical points: sort by (cost, mii,
// index), then sweep keeping every point that strictly improves MII.
func paretoFront(points []PointResult) []FrontPoint {
	var cand []*PointResult
	for i := range points {
		p := &points[i]
		if p.Error == "" && p.Legal && p.Canonical == p.Index {
			cand = append(cand, p)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		a, b := cand[i], cand[j]
		if a.Cost.Total != b.Cost.Total {
			return a.Cost.Total < b.Cost.Total
		}
		if a.MIIFinal != b.MIIFinal {
			return a.MIIFinal < b.MIIFinal
		}
		return a.Index < b.Index
	})
	var front []FrontPoint
	best := int(^uint(0) >> 1) // MaxInt
	for _, p := range cand {
		if p.MIIFinal < best {
			front = append(front, FrontPoint{
				Index: p.Index, Machine: p.Machine, Engine: p.Engine,
				MII: p.MIIFinal, Cost: p.Cost.Total,
			})
			best = p.MIIFinal
		}
	}
	return front
}

// warmOrder schedules the canonical points for solving: a greedy
// nearest-neighbor traversal of the grid in axis-index space, starting
// from the first canonical point. Neighboring configurations share the
// most subproblem content, so visiting them adjacently maximizes the
// chance that a point's attempts are already resolved (or in flight,
// joining as single-flight followers) when it runs. The engine axis is
// weighted heavily: points under different engines share no memo
// entries at all (engine-discriminated keys), so they group last.
//
// The traversal is a pure function of the grid — deterministic
// tie-breaks (lowest index), no randomness — which is one half of the
// sweep's determinism guarantee; the other half is that memo hits
// replay bit-identical attempts, so schedule and worker count can only
// change *when* work happens, never its result.
func warmOrder(pts []Point, solveIdx []int) []int {
	n := len(solveIdx)
	if n <= 2 {
		return append([]int(nil), solveIdx...)
	}
	dist := func(a, b int) int {
		ca, cb := pts[a].coords, pts[b].coords
		d := 0
		for i := range ca {
			dd := ca[i] - cb[i]
			if dd < 0 {
				dd = -dd
			}
			w := 1
			if i == 0 {
				w = 1 << 20 // engine axis: effectively group by engine
			}
			d += w * dd
		}
		return d
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	cur := 0
	order = append(order, solveIdx[0])
	used[0] = true
	for len(order) < n {
		bestJ, bestD := -1, int(^uint(0)>>1)
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			if d := dist(solveIdx[cur], solveIdx[j]); d < bestD {
				bestJ, bestD = j, d
			}
		}
		used[bestJ] = true
		order = append(order, solveIdx[bestJ])
		cur = bestJ
	}
	return order
}

func fpHex(hi, lo uint64) string {
	const hexd = "0123456789abcdef"
	var b [32]byte
	for i := 0; i < 16; i++ {
		b[15-i] = hexd[(hi>>(4*i))&0xf]
		b[31-i] = hexd[(lo>>(4*i))&0xf]
	}
	return string(b[:])
}
