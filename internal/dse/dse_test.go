package dse

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/par"
	"repro/internal/see"
)

func TestExpandDefaultsAndOrder(t *testing.T) {
	pts, err := Grid{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("zero grid expanded to %d points", len(pts))
	}
	if pts[0].Machine.Name != "dspfabric64-n8-m8-k8" || pts[0].Engine != "see" {
		t.Fatalf("zero grid point = %s/%s", pts[0].Machine.Name, pts[0].Engine)
	}

	g := Grid{N: []int{8, 6}, K: []int{8, 4}, Engines: []string{"see", "exact"}}
	pts, err = g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("expanded to %d points, want 8", len(pts))
	}
	// Engines outermost, then n, then k.
	want := []string{
		"see:dspfabric64-n8-m8-k8", "see:dspfabric64-n8-m8-k4",
		"see:dspfabric64-n6-m8-k8", "see:dspfabric64-n6-m8-k4",
		"exact:dspfabric64-n8-m8-k8", "exact:dspfabric64-n8-m8-k4",
		"exact:dspfabric64-n6-m8-k8", "exact:dspfabric64-n6-m8-k4",
	}
	for i, p := range pts {
		if got := p.Engine + ":" + p.Machine.Name; got != want[i] {
			t.Errorf("point %d = %s, want %s", i, got, want[i])
		}
		if p.Index != i {
			t.Errorf("point %d carries Index %d", i, p.Index)
		}
	}
}

func TestExpandTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		g     Grid
		field string
	}{
		{"bad type", Grid{Type: "torus"}, "grid.type"},
		{"bad engine", Grid{Engines: []string{"quantum"}}, "engine"},
		{"flat axes on dspfabric", Grid{Clusters: []int{8}}, "grid.clusters"},
		{"dsp axes on rcp", Grid{Type: "rcp", N: []int{8}}, "grid.n"},
		{"too many clusters", Grid{Type: "rcp", Clusters: []int{128}}, "grid.clusters"},
		{"invalid machine", Grid{N: []int{-3}}, "grid"},
	}
	for _, tc := range cases {
		_, err := tc.g.Expand()
		var oe *see.OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: err = %v, want *see.OptionError", tc.name, err)
			continue
		}
		if oe.Field != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, oe.Field, tc.field)
		}
	}
}

func TestSweepMaxPointsBound(t *testing.T) {
	d := kernels.Fir2Dim()
	g := Grid{K: []int{8, 6, 4, 2}}
	_, err := Sweep(context.Background(), d, g, Options{MaxPoints: 3})
	var oe *see.OptionError
	if !errors.As(err, &oe) || oe.Field != "grid" {
		t.Fatalf("err = %v, want typed grid bound error", err)
	}
	if _, err := Sweep(context.Background(), d, g, Options{MaxPoints: 4}); err != nil {
		t.Fatalf("sweep at the bound failed: %v", err)
	}
}

// TestSweepDedupCollapsesSaturatedRings: rcp neighborhoods at or past
// clusters/2 are structurally one fabric and must solve once, with the
// duplicates pointing at their canonical sibling and carrying its full
// result.
func TestSweepDedupCollapsesSaturatedRings(t *testing.T) {
	d := kernels.Fir2Dim()
	g := Grid{Type: "rcp", Neighbors: []int{2, 4, 7}}
	res, err := Sweep(context.Background(), d, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points != 3 || res.Stats.Unique != 2 || res.Stats.Deduped != 1 {
		t.Fatalf("stats = %+v, want 3 points / 2 unique / 1 deduped", res.Stats)
	}
	nb4, nb7 := res.Points[1], res.Points[2]
	if nb7.Canonical != nb4.Index {
		t.Fatalf("nb=7 canonical = %d, want %d (nb=4)", nb7.Canonical, nb4.Index)
	}
	if nb7.Fingerprint != nb4.Fingerprint {
		t.Fatal("deduped point's fingerprint differs from its canonical")
	}
	if nb7.MIIFinal != nb4.MIIFinal || nb7.Legal != nb4.Legal {
		t.Fatal("deduped point did not inherit the canonical result")
	}
	if res.Points[0].Canonical != 0 {
		t.Fatalf("nb=2 wrongly deduped onto %d", res.Points[0].Canonical)
	}
	// Same shapes under different engines must NOT collapse.
	g2 := Grid{Type: "rcp", Neighbors: []int{4, 7}, Engines: []string{"see", "exact"}}
	pts, err := g2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Sweep(context.Background(), d, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 || res2.Stats.Unique != 2 {
		t.Fatalf("engine-split dedup: %d points / %d unique, want 4/2", len(pts), res2.Stats.Unique)
	}
	for _, p := range res2.Points {
		canon := res2.Points[p.Canonical]
		if canon.Engine != p.Engine {
			t.Fatalf("point %d (%s) deduped onto %d (%s): engines must match",
				p.Index, p.Engine, canon.Index, canon.Engine)
		}
	}
}

// TestSweepDeterministicAcrossWidths is the byte-determinism acceptance
// check: the canonical output must be identical at any worker count and
// across repeated runs (memo state notwithstanding).
func TestSweepDeterministicAcrossWidths(t *testing.T) {
	d := kernels.Fir2Dim()
	g := Grid{N: []int{8, 6}, K: []int{8, 6, 4, 2}, MemCNs: [][]int{nil, {0, 1, 2, 3}}}
	var first []byte
	for _, w := range []int{1, 4, 16} {
		restore := par.ForceWidthForTest(w)
		for rep := 0; rep < 2; rep++ {
			res, err := Sweep(context.Background(), d, g, Options{})
			if err != nil {
				restore()
				t.Fatalf("width %d: %v", w, err)
			}
			b, err := res.CanonicalJSON()
			if err != nil {
				restore()
				t.Fatal(err)
			}
			if first == nil {
				first = b
			} else if !bytes.Equal(first, b) {
				restore()
				t.Fatalf("width %d rep %d: canonical output diverged", w, rep)
			}
		}
		restore()
	}
}

// TestSweepSharedMemoMatchesPerPoint: sharing the memo across points is
// a pure performance play — the canonical output must be bit-identical
// to the per-point-memo ablation.
func TestSweepSharedMemoMatchesPerPoint(t *testing.T) {
	d := kernels.Fir2Dim()
	g := Grid{N: []int{8, 6}, M: []int{8, 6}, K: []int{8, 4}}
	shared, err := Sweep(context.Background(), d, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	isolated, err := Sweep(context.Background(), d, g, Options{PerPointMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := shared.CanonicalJSON()
	ib, _ := isolated.CanonicalJSON()
	if !bytes.Equal(sb, ib) {
		t.Fatal("shared-memo sweep diverged from per-point-memo sweep")
	}
	if shared.Stats.Memo.Hits == 0 {
		t.Fatal("shared memo recorded no cross-point hits")
	}
}

// TestSweepParetoFront pins the skyline definition on a sweep with real
// cost spread: ascending cost, strictly descending MII, only canonical
// legal points, no dominated member.
func TestSweepParetoFront(t *testing.T) {
	d := kernels.Fir2Dim()
	g := Grid{Type: "rcp", Clusters: []int{4, 8}, Neighbors: []int{1, 2}}
	res, err := Sweep(context.Background(), d, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front on an all-legal sweep")
	}
	for i, f := range res.Front {
		p := res.Points[f.Index]
		if p.Canonical != p.Index || !p.Legal || p.Error != "" {
			t.Errorf("front member %d is not a canonical legal point", f.Index)
		}
		if p.MIIFinal != f.MII || p.Cost.Total != f.Cost {
			t.Errorf("front member %d disagrees with its point", f.Index)
		}
		if i > 0 {
			prev := res.Front[i-1]
			if f.Cost <= prev.Cost || f.MII >= prev.MII {
				t.Errorf("front not strictly improving: %+v after %+v", f, prev)
			}
		}
	}
	// No successful canonical point may dominate a front member.
	for _, p := range res.Points {
		if p.Canonical != p.Index || !p.Legal || p.Error != "" {
			continue
		}
		for _, f := range res.Front {
			if p.Cost.Total <= f.Cost && p.MIIFinal <= f.MII &&
				(p.Cost.Total < f.Cost || p.MIIFinal < f.MII) {
				t.Errorf("point %d (mii %d, cost %d) dominates front member %d (mii %d, cost %d)",
					p.Index, p.MIIFinal, p.Cost.Total, f.Index, f.MII, f.Cost)
			}
		}
	}
}

// TestWarmOrderDeterministicAndComplete: the scheduler must visit every
// canonical point exactly once, identically on every call, grouping the
// engine axis (no interleaving back and forth between engines).
func TestWarmOrderDeterministicAndComplete(t *testing.T) {
	g := Grid{N: []int{8, 6}, K: []int{8, 6, 4}, Engines: []string{"see", "exact"}}
	pts, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, len(pts))
	for i := range pts {
		idx[i] = i
	}
	first := warmOrder(pts, idx)
	if len(first) != len(pts) {
		t.Fatalf("order has %d entries, want %d", len(first), len(pts))
	}
	seen := make(map[int]bool, len(first))
	for _, i := range first {
		if seen[i] {
			t.Fatalf("point %d visited twice", i)
		}
		seen[i] = true
	}
	for rep := 0; rep < 3; rep++ {
		again := warmOrder(pts, idx)
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("warm order not deterministic at position %d", i)
			}
		}
	}
	// Engine grouping: once the engine changes, it never changes back.
	switches := 0
	for i := 1; i < len(first); i++ {
		if pts[first[i]].Engine != pts[first[i-1]].Engine {
			switches++
		}
	}
	if switches != 1 {
		t.Fatalf("engine axis interleaved: %d switches, want 1", switches)
	}
}

// TestSweepConcurrentDeterministic runs two sweeps against one shared
// memo concurrently — the `make race` coverage for the sweep path — and
// checks both still produce the canonical output.
func TestSweepConcurrentDeterministic(t *testing.T) {
	d := kernels.Fir2Dim()
	g := Grid{N: []int{8, 6}, K: []int{8, 4}}
	memo := core.NewMemo(0)
	want, err := Sweep(context.Background(), d, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := want.CanonicalJSON()

	results := make([][]byte, 4)
	errs := make([]error, 4)
	par.ForEach(len(results), func(i int) {
		res, err := Sweep(context.Background(), d, g, Options{Memo: memo})
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = res.CanonicalJSON()
	})
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("concurrent sweep %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], wb) {
			t.Fatalf("concurrent sweep %d diverged", i)
		}
	}
}

// TestSweepCancellation: a pre-cancelled context must abort with its
// error before any solving.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, kernels.Fir2Dim(), Grid{}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("n=8,6; m=8 ;k=8,6,4,2;engines=see,exact;mem=all|0.4")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.N) != 2 || len(g.M) != 1 || len(g.K) != 4 || len(g.Engines) != 2 {
		t.Fatalf("parsed %+v", g)
	}
	if len(g.MemCNs) != 2 || g.MemCNs[0] != nil || len(g.MemCNs[1]) != 2 {
		t.Fatalf("mem mixes = %v", g.MemCNs)
	}
	if g2, err := ParseGrid("type=rcp;clusters=8;neighbors=2,4"); err != nil || g2.Type != "rcp" || len(g2.Neighbors) != 2 {
		t.Fatalf("rcp spec: %+v, %v", g2, err)
	}
	for _, bad := range []string{"n", "n=x", "warp=9", "n="} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) accepted", bad)
		} else {
			var oe *see.OptionError
			if !errors.As(err, &oe) {
				t.Errorf("ParseGrid(%q): err %v not typed", bad, err)
			}
		}
	}
	if _, err := ParseGrid(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}
