package see

import (
	"context"
	"testing"

	"repro/internal/kernels"
	"repro/internal/pg"
)

// BenchmarkSolve measures the delta-engine beam search on one level-0
// subproblem (fir2dim on 4×16 clusters). Compare allocs/op against
// BenchmarkSolveReference: the incremental assign/undo path is the whole
// point of the rewrite, so the ratio is tracked in BENCH_2.json.
func BenchmarkSolve(b *testing.B) {
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	f.MIIRecStatic = d.MIIRec()
	ws := wsAll(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), f, ws, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveReference is the clone-per-candidate oracle on the same
// problem: the in-binary baseline BenchmarkSolve is judged against.
func BenchmarkSolveReference(b *testing.B) {
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	f.MIIRecStatic = d.MIIRec()
	ws := wsAll(d)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveReference(ctx, f, ws, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
