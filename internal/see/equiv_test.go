package see

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/pg"
)

// flowFingerprint serializes everything the search result is judged by:
// per-node cluster assignments, every real arc with its ordered copy
// list, and the objective inputs. Two flows with equal fingerprints are
// interchangeable downstream (modsched, emit, reporting).
func flowFingerprint(f *pg.Flow) string {
	var b strings.Builder
	for n := 0; n < f.D.Len(); n++ {
		fmt.Fprintf(&b, "n%d@%d;", n, f.Assignment(graph.NodeID(n)))
	}
	f.RealArcs(func(from, to pg.ClusterID, vals []pg.ValueID) {
		fmt.Fprintf(&b, "arc%d>%d=%v;", from, to, vals)
	})
	fmt.Fprintf(&b, "mii=%d;copies=%d", f.EstimateMII(), f.TotalCopies())
	return b.String()
}

// assertEquivalent runs the equivalence oracle in both contract modes.
//
// Strict: with frontier dedup off, the delta engine must reproduce the
// clone-per-candidate reference byte-identically — same error (or none),
// same winning assignment, same score, same Stats.
//
// Relaxed: with dedup on (the default), the engine drops permutation
// twins, which can only widen effective beam coverage — the result must
// still be a valid complete assignment whose objective cost is ≤ the
// reference cost.
func assertEquivalent(t *testing.T, label string, start *pg.Flow, ws []graph.NodeID, cfg Config) {
	t.Helper()
	ctx := context.Background()
	strict := cfg
	strict.DisableDedup = true
	got, gotErr := Solve(ctx, start, ws, strict)
	want, wantErr := SolveReference(ctx, start, ws, strict)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: delta err %v, reference err %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error text diverged:\n delta: %v\n  ref: %v", label, gotErr, wantErr)
		}
	} else {
		if got.Score != want.Score {
			t.Errorf("%s: score %v != reference %v", label, got.Score, want.Score)
		}
		if got.Stats != want.Stats {
			t.Errorf("%s: stats %+v != reference %+v", label, got.Stats, want.Stats)
		}
		gf, wf := flowFingerprint(got.Flow), flowFingerprint(want.Flow)
		if gf != wf {
			t.Errorf("%s: flows diverged:\n delta: %s\n  ref: %s", label, gf, wf)
		}
		if err := got.Flow.Verify(); err != nil {
			t.Errorf("%s: delta result fails Verify: %v", label, err)
		}
	}

	relaxed := cfg
	relaxed.DisableDedup = false
	rgot, rErr := Solve(ctx, start, ws, relaxed)
	if wantErr != nil {
		if rErr == nil {
			t.Errorf("%s: dedup solve succeeded where the reference failed", label)
		}
		return
	}
	if rErr != nil {
		t.Fatalf("%s: dedup solve failed: %v", label, rErr)
	}
	if rgot.Score > want.Score {
		t.Errorf("%s: dedup score %v > reference %v", label, rgot.Score, want.Score)
	}
	if err := rgot.Flow.Verify(); err != nil {
		t.Errorf("%s: dedup result fails Verify: %v", label, err)
	}
}

func TestDeltaMatchesReferenceOnPaperKernels(t *testing.T) {
	for _, k := range kernels.All() {
		d := k.Build()
		f := pg.NewFlow(level0Topology(8), d)
		f.MIIRecStatic = d.MIIRec()
		assertEquivalent(t, k.Name, f, wsAll(d), Config{})
	}
}

func TestDeltaMatchesReferenceAcrossConfigs(t *testing.T) {
	d := kernels.Fir2Dim()
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"defaults", Config{}},
		{"narrow-beam", Config{BeamWidth: 1, CandWidth: 1}},
		{"wide-beam", Config{BeamWidth: 16, CandWidth: 8}},
		{"router-only", Config{RouterOnly: true}},
		{"no-router", Config{DisableRouter: true}},
	}
	for _, c := range cfgs {
		f := pg.NewFlow(level0Topology(8), d)
		f.MIIRecStatic = d.MIIRec()
		assertEquivalent(t, "fir2dim/"+c.name, f, wsAll(d), c.cfg)
	}
}

func TestDeltaMatchesReferenceOnStarvedPorts(t *testing.T) {
	// maxIn 1-2 forces frequent no-candidate impasses, so the routed
	// (maxHops 0) phase and its stats accounting get real coverage.
	for _, maxIn := range []int{1, 2} {
		for _, k := range kernels.All() {
			d := k.Build()
			f := pg.NewFlow(level0Topology(maxIn), d)
			f.MIIRecStatic = d.MIIRec()
			assertEquivalent(t, fmt.Sprintf("%s/maxIn%d", k.Name, maxIn), f, wsAll(d), Config{})
		}
	}
}

func TestDeltaMatchesReferenceOnSyntheticDDGs(t *testing.T) {
	// The randomized half of the equivalence oracle: 50+ generated loop
	// bodies across several topology shapes, some with a recurrence.
	shapes := []struct {
		clusters, slots, maxIn int
	}{
		{4, 16, 8},
		{4, 8, 3},
		{2, 24, 2},
		{6, 8, 4},
	}
	for seed := int64(0); seed < 52; seed++ {
		cfg := kernels.SynthConfig{
			Ops:  16 + int(seed%5)*12,
			Seed: seed,
		}
		if seed%3 == 0 {
			cfg.RecLatency = 3 + int(seed%4)
		}
		d := kernels.Synthetic(cfg)
		sh := shapes[seed%int64(len(shapes))]
		tp := pg.NewTopology(fmt.Sprintf("synth-t%d", seed), sh.clusters, sh.slots, sh.maxIn, 0)
		tp.AllToAll()
		f := pg.NewFlow(tp, d)
		f.MIIRecStatic = d.MIIRec()
		assertEquivalent(t, fmt.Sprintf("seed%d", seed), f, wsAll(d), Config{})
	}
}

func TestDeltaMatchesReferenceWithCriticalityCache(t *testing.T) {
	// The cached Slack/Depth arrays must not change results relative to
	// per-call recomputation (Crit == nil).
	d := kernels.IDCTHor()
	crit, err := AnalyzeDDG(d)
	if err != nil {
		t.Fatal(err)
	}
	f := pg.NewFlow(level0Topology(8), d)
	f.MIIRecStatic = d.MIIRec()
	ws := wsAll(d)
	cached, err := Solve(context.Background(), f, ws, Config{Crit: crit})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Solve(context.Background(), f, ws, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := flowFingerprint(cached.Flow), flowFingerprint(fresh.Flow); a != b {
		t.Errorf("criticality cache changed the result:\ncached: %s\n fresh: %s", a, b)
	}
	if cached.Score != fresh.Score || cached.Stats != fresh.Stats {
		t.Errorf("criticality cache changed score/stats: %+v vs %+v", cached, fresh)
	}
}

func TestSolveLeavesStartUntouched(t *testing.T) {
	// The in-place evaluation path works directly on frontier flows; the
	// caller's start flow must still come back unmodified and with its
	// journal off.
	d := ddg.New("chain")
	prev := d.AddConst(1, "c")
	for i := 0; i < 6; i++ {
		m := d.AddOp(ddg.OpAbs, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	f := pg.NewFlow(level0Topology(8), d)
	if _, err := Solve(context.Background(), f, wsAll(d), Config{}); err != nil {
		t.Fatal(err)
	}
	if f.NumAssigned() != 0 {
		t.Errorf("start flow mutated: %d nodes assigned", f.NumAssigned())
	}
	if f.Journaling() {
		t.Error("start flow left journaling")
	}
}
