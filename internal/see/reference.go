package see

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pg"
)

// SolveReference is the pre-delta beam search, kept verbatim as the
// equivalence oracle for the incremental engine: it clones a full Flow
// for every (frontier state × candidate cluster) pair and rescores each
// candidate from scratch. Solve must return byte-identical
// assignments, scores and Stats (the property the see equivalence tests
// and the randomized-DDG suite enforce); the delta engine earns its keep
// purely on speed. Do not use it outside tests and benchmarks.
func SolveReference(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	order, err := PriorityListCached(cfg.Crit, start, ws)
	if err != nil {
		return nil, err
	}
	stats := Stats{}
	frontier := []scored{{flow: start.Clone(), score: 0}}
	for _, n := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next []scored
		for _, st := range frontier {
			cands := expandReference(st.flow, n, cfg, &stats)
			next = append(next, cands...)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("see: no candidates for instruction %d (%s %s) on %q",
				n, start.D.Node(n).Op, start.D.Node(n).Name, start.T.Name)
		}
		// Node filter: prune the frontier (Figure 5).
		sortScored(next)
		if len(next) > cfg.BeamWidth {
			next = next[:cfg.BeamWidth]
		}
		frontier = next
		stats.NodesAssigned++
	}
	best := frontier[0]
	return &Result{Flow: best.flow, Score: best.score, Stats: stats}, nil
}

// expandReference generates the filtered candidate assignments of node n
// from flow f the clone-per-candidate way: first with direct patterns
// only, then (no-candidates action) with the route allocator enabled.
func expandReference(f *pg.Flow, n graph.NodeID, cfg Config, stats *Stats) []scored {
	try := func(maxHops int) []scored {
		// Candidate evaluations are independent: clone, assign and score
		// in parallel, each worker writing only its own slot.
		k := f.T.NumRegular()
		slots := make([]*scored, k)
		par.ForEach(k, func(c int) {
			base := f.Clone()
			base.SetMaxHops(maxHops)
			if err := base.Assign(n, pg.ClusterID(c)); err != nil {
				return
			}
			base.SetMaxHops(0)
			slots[c] = &scored{flow: base, score: score(base, cfg.Criteria)}
		})
		stats.CandidatesTried += k
		var cands []scored
		for _, s := range slots {
			if s != nil {
				stats.StatesExplored++
				cands = append(cands, *s)
			}
		}
		// Candidate filter.
		sortScored(cands)
		if len(cands) > cfg.CandWidth {
			cands = cands[:cfg.CandWidth]
		}
		return cands
	}

	if !cfg.RouterOnly {
		if cands := try(1); len(cands) > 0 {
			return cands
		}
		if cfg.DisableRouter {
			return nil
		}
		stats.RouterInvocations++
	}
	return try(0)
}
