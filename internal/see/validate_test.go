package see

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/pg"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // "" means valid
	}{
		{"zero-is-default", Config{}, ""},
		{"explicit", Config{BeamWidth: 8, CandWidth: 4}, ""},
		{"negative-beam", Config{BeamWidth: -1}, "BeamWidth"},
		{"negative-cand", Config{CandWidth: -4}, "CandWidth"},
		{"nil-eval", Config{Criteria: []Criterion{{Name: "broken"}}}, "Criteria"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v is not an *OptionError", c.name, err)
			continue
		}
		if oe.Field != c.field {
			t.Errorf("%s: Field = %q, want %q", c.name, oe.Field, c.field)
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("%s: message %q does not name the field", c.name, err)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	got := Config{}.WithDefaults()
	if got.BeamWidth != 8 || got.CandWidth != 4 || got.Criteria == nil {
		t.Errorf("zero config defaulted to %+v", got)
	}
	kept := Config{BeamWidth: 16, CandWidth: 2}.WithDefaults()
	if kept.BeamWidth != 16 || kept.CandWidth != 2 {
		t.Errorf("explicit widths rewritten: %+v", kept)
	}
}

// Both engines must reject an invalid config identically, before doing
// any work — the validation split is part of the equivalence contract.
func TestSolveRejectsInvalidConfig(t *testing.T) {
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	bad := Config{BeamWidth: -2}
	_, errDelta := Solve(context.Background(), f, wsAll(d), bad)
	_, errRef := SolveReference(context.Background(), f, wsAll(d), bad)
	if errDelta == nil || errRef == nil {
		t.Fatalf("invalid config accepted: delta %v, reference %v", errDelta, errRef)
	}
	if errDelta.Error() != errRef.Error() {
		t.Errorf("engines disagree on the validation error:\n delta: %v\n  ref: %v", errDelta, errRef)
	}
	var oe *OptionError
	if !errors.As(errDelta, &oe) {
		t.Errorf("Solve error %v is not typed", errDelta)
	}
}

// ScoreFlow (the exported fused scoring path sibling engines use) must
// agree exactly with the score Solve reports for its own solution.
func TestScoreFlowMatchesSolveScore(t *testing.T) {
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	f.MIIRecStatic = d.MIIRec()
	cfg := Config{}.WithDefaults()
	sol, err := Solve(context.Background(), f, wsAll(d), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ScoreFlow(sol.Flow, cfg.Criteria); got != sol.Score {
		t.Errorf("ScoreFlow = %v, Solve reported %v", got, sol.Score)
	}
	sol.Flow.Release()
}
