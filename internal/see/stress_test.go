package see

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/kernels"
	"repro/internal/par"
	"repro/internal/pg"
)

// TestDedupFiresOnSymmetricTopology pins that frontier dedup actually
// triggers where it is designed to: on a homogeneous all-to-all level,
// the first beam expansions produce permutation twins, and the pruned
// count must show up in Stats.
func TestDedupFiresOnSymmetricTopology(t *testing.T) {
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	f.MIIRecStatic = d.MIIRec()
	res, err := Solve(context.Background(), f, wsAll(d), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DuplicatesPruned == 0 {
		t.Fatal("expected duplicate pruning on an all-to-all homogeneous topology")
	}
	off, err := Solve(context.Background(), f, wsAll(d), Config{DisableDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.DuplicatesPruned != 0 {
		t.Fatalf("DisableDedup still pruned %d duplicates", off.Stats.DuplicatesPruned)
	}
	if res.Score > off.Score {
		t.Fatalf("dedup score %v worse than dedup-off score %v", res.Score, off.Score)
	}
}

// TestChunkedScratchStress forces the narrow-frontier evaluation path:
// with BeamWidth 1 the frontier is narrower than par.Width() on any
// multi-core machine, so evalStates splits each state's cluster range
// across chunks that concurrently seed pooled scratch flows via
// CopyFrom. Run under -race (the Makefile race target names this test
// explicitly) it stress-tests that the pooled CopyFrom path and the
// fingerprint maintenance inside it are data-race free.
// TestParallelExpansionStress drives the chunked frontier expansion with
// real worker goroutines regardless of the host's core count: the par
// width is pinned to 4 (GOMAXPROCS is raised too, so the goroutines can
// actually run in parallel where cores exist) and par fans the (state ×
// cluster) eval grid and the survivor materialization out across workers
// that concurrently assign → score → rollback on in-place frontier flows
// and pooled scratch flows. Run
// under -race (the Makefile race target names this test explicitly) it
// stress-tests the pooled CopyFrom/rollback cycle and the packed-state
// journal for data races, and pins three properties per round: the
// result verifies, the result is deterministic across rounds, and the
// strict mode stays byte-identical to the serial SolveReference oracle
// while the expansion is parallel.
func TestParallelExpansionStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	defer par.ForceWidthForTest(4)()
	d := kernels.Fir2Dim()
	ws := wsAll(d)
	var first, firstStrict string
	for round := 0; round < 6; round++ {
		f := pg.NewFlow(level0Topology(8), d)
		f.MIIRecStatic = d.MIIRec()
		// Wide beam: most rows of the eval grid are whole chunks,
		// evaluated in place on the frontier flows across workers.
		res, err := Solve(context.Background(), f, ws, Config{BeamWidth: 16, CandWidth: 4})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := res.Flow.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fp := flowFingerprint(res.Flow)
		if round == 0 {
			first = fp
		} else if fp != first {
			t.Fatalf("round %d: nondeterministic result under parallel expansion", round)
		}
		// Strict mode under the same fan-out: byte-identical to the
		// clone-per-candidate serial oracle.
		strict, err := Solve(context.Background(), f, ws, Config{DisableDedup: true})
		if err != nil {
			t.Fatalf("round %d strict: %v", round, err)
		}
		sfp := flowFingerprint(strict.Flow)
		if round == 0 {
			firstStrict = sfp
			ref, err := SolveReference(context.Background(), f, ws, Config{DisableDedup: true})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if strict.Score != ref.Score || strict.Stats != ref.Stats || sfp != flowFingerprint(ref.Flow) {
				t.Fatalf("strict mode diverged from SolveReference under parallel expansion:\nscore %v vs %v\nstats %+v vs %+v",
					strict.Score, ref.Score, strict.Stats, ref.Stats)
			}
		} else if sfp != firstStrict {
			t.Fatalf("round %d: nondeterministic strict result under parallel expansion", round)
		}
	}
}

func TestChunkedScratchStress(t *testing.T) {
	defer par.ForceWidthForTest(4)()
	d := kernels.Fir2Dim()
	var first string
	for round := 0; round < 8; round++ {
		f := pg.NewFlow(level0Topology(8), d)
		f.MIIRecStatic = d.MIIRec()
		res, err := Solve(context.Background(), f, wsAll(d), Config{BeamWidth: 1, CandWidth: 1})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := res.Flow.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fp := flowFingerprint(res.Flow)
		if round == 0 {
			first = fp
		} else if fp != first {
			t.Fatalf("round %d: nondeterministic result under chunked evaluation", round)
		}
	}
}
