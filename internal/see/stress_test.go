package see

import (
	"context"
	"testing"

	"repro/internal/kernels"
	"repro/internal/pg"
)

// TestDedupFiresOnSymmetricTopology pins that frontier dedup actually
// triggers where it is designed to: on a homogeneous all-to-all level,
// the first beam expansions produce permutation twins, and the pruned
// count must show up in Stats.
func TestDedupFiresOnSymmetricTopology(t *testing.T) {
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	f.MIIRecStatic = d.MIIRec()
	res, err := Solve(context.Background(), f, wsAll(d), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DuplicatesPruned == 0 {
		t.Fatal("expected duplicate pruning on an all-to-all homogeneous topology")
	}
	off, err := Solve(context.Background(), f, wsAll(d), Config{DisableDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.DuplicatesPruned != 0 {
		t.Fatalf("DisableDedup still pruned %d duplicates", off.Stats.DuplicatesPruned)
	}
	if res.Score > off.Score {
		t.Fatalf("dedup score %v worse than dedup-off score %v", res.Score, off.Score)
	}
}

// TestChunkedScratchStress forces the narrow-frontier evaluation path:
// with BeamWidth 1 the frontier is narrower than par.Width() on any
// multi-core machine, so evalStates splits each state's cluster range
// across chunks that concurrently seed pooled scratch flows via
// CopyFrom. Run under -race (the Makefile race target names this test
// explicitly) it stress-tests that the pooled CopyFrom path and the
// fingerprint maintenance inside it are data-race free.
func TestChunkedScratchStress(t *testing.T) {
	d := kernels.Fir2Dim()
	var first string
	for round := 0; round < 8; round++ {
		f := pg.NewFlow(level0Topology(8), d)
		f.MIIRecStatic = d.MIIRec()
		res, err := Solve(context.Background(), f, wsAll(d), Config{BeamWidth: 1, CandWidth: 1})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := res.Flow.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fp := flowFingerprint(res.Flow)
		if round == 0 {
			first = fp
		} else if fp != first {
			t.Fatalf("round %d: nondeterministic result under chunked evaluation", round)
		}
	}
}
