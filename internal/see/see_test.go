package see

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/pg"
)

func wsAll(d *ddg.DDG) []graph.NodeID {
	ws := make([]graph.NodeID, d.Len())
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	return ws
}

func level0Topology(maxIn int) *pg.Topology {
	t := pg.NewTopology("lvl0", 4, 16, maxIn, 0)
	t.AllToAll()
	return t
}

func TestSolveTinyChain(t *testing.T) {
	d := ddg.New("chain")
	prev := d.AddConst(1, "c")
	for i := 0; i < 5; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	f := pg.NewFlow(level0Topology(8), d)
	res, err := Solve(context.Background(), f, wsAll(d), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A pure chain has no parallelism: best solution is one cluster, zero copies.
	if res.Flow.TotalCopies() != 0 {
		t.Errorf("chain produced %d copies", res.Flow.TotalCopies())
	}
	if err := res.Flow.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesAssigned != 6 {
		t.Errorf("NodesAssigned = %d", res.Stats.NodesAssigned)
	}
}

func TestSolveSpreadsParallelWork(t *testing.T) {
	// 32 independent chains on 4 single-issue clusters: load must balance
	// (8 instructions per cluster) for the MII term to be minimal.
	d := ddg.New("par")
	for i := 0; i < 32; i++ {
		d.AddConst(int64(i), "c")
	}
	tp := pg.NewTopology("t", 4, 1, 8, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	res, err := Solve(context.Background(), f, wsAll(d), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for c := pg.ClusterID(0); c < 4; c++ {
		if got := res.Flow.Load(c); got != 8 {
			t.Errorf("Load(%d) = %d, want 8", c, got)
		}
	}
	if got := res.Flow.EstimateMII(); got != 8 {
		t.Errorf("EstimateMII = %d, want 8", got)
	}
}

func TestSolveAllKernelsLevel0(t *testing.T) {
	// Every paper kernel must clusterize legally on the level-0 view of
	// DSPFabric (4 clusters of 16 CNs, 8 wires).
	for _, k := range kernels.All() {
		d := k.Build()
		f := pg.NewFlow(level0Topology(8), d)
		f.MIIRecStatic = d.MIIRec()
		res, err := Solve(context.Background(), f, wsAll(d), Config{})
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if res.Flow.NumAssigned() != d.Len() {
			t.Errorf("%s: assigned %d of %d", k.Name, res.Flow.NumAssigned(), d.Len())
		}
		if err := res.Flow.Verify(); err != nil {
			t.Errorf("%s: Verify: %v", k.Name, err)
		}
	}
}

func TestPriorityListProducersFirst(t *testing.T) {
	d := ddg.New("p")
	a := d.AddConst(1, "a")
	b := d.AddOp(ddg.OpAbs, "b")
	c := d.AddOp(ddg.OpAbs, "c")
	d.AddDep(a, b, 0, 0)
	d.AddDep(b, c, 0, 0)
	f := pg.NewFlow(level0Topology(8), d)
	order, err := PriorityList(f, wsAll(d))
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != a || order[1] != b || order[2] != c {
		t.Errorf("order = %v", order)
	}
}

func TestPriorityListCriticalFirstAtSameDepth(t *testing.T) {
	// Two roots at depth 0; the one on the longer path has less slack and
	// must come first.
	d := ddg.New("p")
	slow := d.AddConst(1, "slow")
	fast := d.AddConst(2, "fast")
	x := d.AddOp(ddg.OpAbs, "x")
	y := d.AddOp(ddg.OpAbs, "y")
	d.AddDep(slow, x, 0, 0)
	d.AddDep(x, y, 0, 0)
	sink := d.AddOp(ddg.OpAdd, "s")
	d.AddDep(y, sink, 0, 0)
	d.AddDep(fast, sink, 1, 0)
	f := pg.NewFlow(level0Topology(8), d)
	order, err := PriorityList(f, wsAll(d))
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != slow {
		t.Errorf("critical root not first: %v", order)
	}
}

func TestNoCandidatesAnywhere(t *testing.T) {
	// Disconnected topology: a cross-cluster dependence with all clusters
	// already... simplest: 2 clusters, no arcs, a chain that must split
	// because cluster capacity is irrelevant — force split via criteria?
	// Instead: one regular cluster unreachable from input node carrying
	// the only operand. Build: no potential arcs, operand on input node.
	// Two isolated clusters (no inter-cluster arcs), one input node that
	// can broadcast anywhere. v2 needs both ext (input node) and u; once u
	// is pinned on cluster 0, only cluster 0 can host v2.
	d := ddg.New("x")
	ext := d.AddConst(1, "ext")
	u := d.AddOp(ddg.OpAbs, "u")
	d.AddDep(ext, u, 0, 0)
	v2 := d.AddOp(ddg.OpAdd, "v2")
	d.AddDep(ext, v2, 0, 0)
	d.AddDep(u, v2, 1, 0)
	tp := pg.NewTopology("iso", 2, 4, 2, 0) // no inter-cluster arcs
	tp.AddInputNode([]pg.ValueID{ext})
	f := pg.NewFlow(tp, d)
	if err := f.Assign(u, 0); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), f, []graph.NodeID{v2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow.Assignment(v2) != 0 {
		t.Errorf("v2 on %d, want 0", res.Flow.Assignment(v2))
	}
}

func TestRouterEscapesImpasse(t *testing.T) {
	// Figure 6 scenario on a one-directional ring 0→1→2→3→0 with MaxIn 1:
	// u = v0 + v2 with v0 on cluster 0 and v2 on cluster 2. Whatever
	// cluster hosts u can receive at most one operand over a direct
	// pattern, so the first (direct-only) phase finds no candidate and the
	// route allocator must forward one operand around the ring.
	d := ddg.New("ring")
	v0 := d.AddConst(1, "v0")
	v2 := d.AddConst(2, "v2")
	u := d.AddOp(ddg.OpAdd, "u")
	d.AddDep(v0, u, 0, 0)
	d.AddDep(v2, u, 1, 0)
	tp := pg.NewTopology("ring", 4, 1, 1, 0)
	for i := 0; i < 4; i++ {
		tp.SetPotential(pg.ClusterID(i), pg.ClusterID((i+1)%4), true)
	}
	f := pg.NewFlow(tp, d)
	if err := f.Assign(v0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(v2, 2); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), f, []graph.NodeID{u}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RouterInvocations == 0 {
		t.Error("router was not invoked")
	}
	// The best placements collocate u with one operand, so the other must
	// travel two hops around the ring: exactly two copy pairs, and some
	// intermediate cluster pays a forwarding re-send.
	if res.Flow.TotalCopies() != 2 {
		t.Errorf("TotalCopies = %d, want 2", res.Flow.TotalCopies())
	}
	fwd := 0
	for c := pg.ClusterID(0); c < 4; c++ {
		fwd += res.Flow.Load(c)
	}
	// Loads: 3 instructions + 2 receives + 1 forwarding send = 6.
	if fwd != 6 {
		t.Errorf("total load = %d, want 6 (includes forward re-send)", fwd)
	}
	if err := res.Flow.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDisableRouterFails(t *testing.T) {
	// Same ring, but u has TWO operands on clusters 0 and 1, MaxIn=1:
	// no cluster can receive both directly.
	d := ddg.New("ring")
	v0 := d.AddConst(1, "v0")
	v1 := d.AddConst(2, "v1")
	u := d.AddOp(ddg.OpAdd, "u")
	d.AddDep(v0, u, 0, 0)
	d.AddDep(v1, u, 1, 0)
	tp := pg.NewTopology("ring", 4, 1, 1, 0)
	for i := 0; i < 4; i++ {
		tp.SetPotential(pg.ClusterID(i), pg.ClusterID((i+1)%4), true)
	}
	f := pg.NewFlow(tp, d)
	if err := f.Assign(v0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(v1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(context.Background(), f, []graph.NodeID{u}, Config{DisableRouter: true}); err == nil {
		t.Fatal("expected failure with router disabled")
	}
	res, err := Solve(context.Background(), f, []graph.NodeID{u}, Config{})
	if err != nil {
		t.Fatalf("router could not escape: %v", err)
	}
	if err := res.Flow.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBeamWidthOneStillLegal(t *testing.T) {
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	res, err := Solve(context.Background(), f, wsAll(d), Config{BeamWidth: 1, CandWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestWiderBeamNeverWorse(t *testing.T) {
	d := kernels.MPEG2Inter()
	f := pg.NewFlow(level0Topology(8), d)
	f.MIIRecStatic = d.MIIRec()
	narrow, err := Solve(context.Background(), f, wsAll(d), Config{BeamWidth: 1, CandWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Solve(context.Background(), f, wsAll(d), Config{BeamWidth: 16, CandWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Flow.EstimateMII() > narrow.Flow.EstimateMII() {
		t.Errorf("wider beam worse: %d > %d", wide.Flow.EstimateMII(), narrow.Flow.EstimateMII())
	}
}

func TestSolveDeterministic(t *testing.T) {
	d := kernels.IDCTHor()
	run := func() []pg.ClusterID {
		f := pg.NewFlow(level0Topology(8), d)
		res, err := Solve(context.Background(), f, wsAll(d), Config{})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]pg.ClusterID, d.Len())
		for i := range out {
			out[i] = res.Flow.Assignment(graph.NodeID(i))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic assignment at node %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	s.Add(Stats{StatesExplored: 2, CandidatesTried: 5, RouterInvocations: 1, NodesAssigned: 3})
	s.Add(Stats{StatesExplored: 1, CandidatesTried: 2, NodesAssigned: 1})
	if s.StatesExplored != 3 || s.CandidatesTried != 7 || s.RouterInvocations != 1 || s.NodesAssigned != 4 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestCustomCriteria(t *testing.T) {
	// A criterion that hates cluster 0 must push work to other clusters.
	d := ddg.New("c")
	for i := 0; i < 4; i++ {
		d.AddConst(int64(i), "k")
	}
	tp := pg.NewTopology("t", 2, 8, 4, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	avoid0 := []Criterion{{Name: "avoid0", Weight: 1, Eval: func(fl *pg.Flow) float64 {
		return float64(fl.Load(0))
	}}}
	res, err := Solve(context.Background(), f, wsAll(d), Config{Criteria: avoid0})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Flow.Load(0); got != 0 {
		t.Errorf("Load(0) = %d, want 0", got)
	}
}

func TestRouterOnlyMode(t *testing.T) {
	// RouterOnly must produce a legal solution without the direct-first
	// phase (stats show zero router "invocations" because routing is the
	// only mode).
	d := kernels.Fir2Dim()
	f := pg.NewFlow(level0Topology(8), d)
	res, err := Solve(context.Background(), f, wsAll(d), Config{RouterOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.RouterInvocations != 0 {
		t.Errorf("RouterInvocations = %d in RouterOnly mode", res.Stats.RouterInvocations)
	}
}

func TestPriorityListRejectsCyclicDDG(t *testing.T) {
	d := ddg.New("cyc")
	a := d.AddOp(ddg.OpMov, "a")
	b := d.AddOp(ddg.OpMov, "b")
	d.AddDep(a, b, 0, 0)
	d.AddDep(b, a, 0, 0)
	f := pg.NewFlow(level0Topology(8), d)
	if _, err := PriorityList(f, wsAll(d)); err == nil {
		t.Fatal("cyclic DDG accepted")
	}
}

func TestDefaultCriteriaShape(t *testing.T) {
	crit := DefaultCriteria()
	if len(crit) != 4 {
		t.Fatalf("criteria = %d", len(crit))
	}
	names := map[string]bool{}
	for _, c := range crit {
		names[c.Name] = true
		if c.Weight <= 0 {
			t.Errorf("%s: weight %v", c.Name, c.Weight)
		}
	}
	for _, want := range []string{"mii", "copies", "balance", "ports"} {
		if !names[want] {
			t.Errorf("missing criterion %q", want)
		}
	}
}
