// Package see implements the Space Exploration Engine of §3: a
// local-scope beam search that assigns the instructions of a working set
// onto the clusters of one Pattern Graph level.
//
// The engine mirrors the software interfaces of Figure 4:
//
//   - the *priority list* orders the unassigned DDG nodes (most critical
//     first: smallest slack, then earliest depth);
//   - *isAssignable* is the feasibility check: a candidate cluster must be
//     regular and every placed operand must be routable to it within the
//     reconfiguration constraints — in the first attempt only *direct*
//     communication patterns are allowed;
//   - the *objective function* scores each candidate flow with a weighted
//     sum of cost criteria (projected MII, copy count, load balance, port
//     consumption);
//   - the *candidate filter* keeps the best CandWidth candidates per node;
//   - the *node filter* prunes the exploration frontier to BeamWidth
//     partial solutions (Figure 5);
//   - the *no-candidates action* invokes the route allocator: assignment
//     is retried with multi-hop routing through intermediate clusters
//     (Figure 6b).
//
// Since the delta rewrite the engine is incremental: every candidate
// cluster of a beam state is evaluated against one pooled scratch flow
// via Checkpoint → Assign → score → Rollback (the pg mutation journal),
// and only the ≤ CandWidth survivors that enter the frontier are ever
// cloned. The pre-rewrite clone-per-candidate engine is retained in
// reference.go as SolveReference, the equivalence oracle: both engines
// return byte-identical assignments, scores and Stats.
package see

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pg"
	"repro/internal/trace"
)

// Criterion is one term of the objective function. Lower is better.
type Criterion struct {
	Name   string
	Weight float64
	// Eval scores the flow that results from a candidate assignment.
	Eval func(f *pg.Flow) float64
}

// DefaultCriteria returns the cost model used throughout the paper
// reproduction: the projected initiation interval dominates (§4.2 makes
// the loop II the main cost factor), with copy count, load imbalance and
// input-port consumption as tie-breakers.
func DefaultCriteria() []Criterion {
	return []Criterion{
		{Name: "mii", Weight: 1000, Eval: func(f *pg.Flow) float64 {
			return float64(f.EstimateMII())
		}},
		{Name: "copies", Weight: 10, Eval: func(f *pg.Flow) float64 {
			return float64(f.TotalCopies())
		}},
		{Name: "balance", Weight: 1, Eval: func(f *pg.Flow) float64 {
			max := 0
			for c := 0; c < f.T.NumRegular(); c++ {
				if l := f.Load(pg.ClusterID(c)); l > max {
					max = l
				}
			}
			return float64(max)
		}},
		{Name: "ports", Weight: 0.1, Eval: func(f *pg.Flow) float64 {
			used := 0
			for c := 0; c < f.T.NumRegular(); c++ {
				used += f.InNeighbors(pg.ClusterID(c))
			}
			return float64(used)
		}},
	}
}

// Config tunes the engine.
type Config struct {
	BeamWidth int // node filter width (default 8)
	CandWidth int // candidate filter width (default 4)
	// Criteria is the objective function; DefaultCriteria() if nil.
	Criteria []Criterion
	// DisableRouter turns off the no-candidates action: any node with no
	// direct-pattern candidate fails the whole search (ablation E5).
	DisableRouter bool
	// RouterOnly skips the direct-pattern first phase and always allows
	// multi-hop routing (ablation: measures the cost of not preferring
	// direct patterns).
	RouterOnly bool
	// DisableDedup turns off frontier deduplication (on by default):
	// candidates whose pg.Flow fingerprint — canonical up to cluster
	// symmetry — already entered the expansion are merged into their
	// first occurrence, in deterministic frontier order, and carry a
	// multiplicity instead of a beam slot of their own. Each equivalence
	// class is evaluated and materialized once, but keeps consuming its
	// twins' candidate- and node-filter slots, so the set of classes
	// surviving each beam step matches the reference engine's — dedup
	// removes redundant work, not coverage, and the final objective cost
	// stays ≤ the reference cost (the relaxed equivalence contract).
	// Disable it to reproduce the reference engine byte-identically (the
	// strict mode).
	DisableDedup bool
	// Crit optionally supplies the precomputed criticality arrays
	// PriorityList consumes. The HCA driver computes them once per DDG
	// (AnalyzeDDG) and shares them across every subproblem of the
	// recursive descent; when nil they are recomputed per Solve.
	Crit *Critical
}

// OptionError is the typed validation failure Validate returns for a
// nonsense configuration value. The compilation daemon maps it (and
// core's wrapper around it) to HTTP 400. Numeric fields report the
// offending value in Value; string-valued fields (a machine type, a
// kernel name) carry it in Str instead.
type OptionError struct {
	Field  string
	Value  int
	Str    string
	Reason string
}

func (e *OptionError) Error() string {
	if e.Str != "" {
		return fmt.Sprintf("see: invalid %s %q: %s", e.Field, e.Str, e.Reason)
	}
	return fmt.Sprintf("see: invalid %s %d: %s", e.Field, e.Value, e.Reason)
}

// Validate rejects nonsense configuration values with typed errors.
// Zero widths are legal — they mean "use the default" and are filled in
// by WithDefaults — but negative widths (and a criterion without an
// evaluator) are errors. This pair is the one defaulting/validation
// point for the whole pipeline: core.Options, the driver variants and
// the compilation service all funnel through it instead of silently
// rewriting values.
func (c Config) Validate() error {
	if c.BeamWidth < 0 {
		return &OptionError{Field: "BeamWidth", Value: c.BeamWidth, Reason: "must be positive (0 selects the default)"}
	}
	if c.CandWidth < 0 {
		return &OptionError{Field: "CandWidth", Value: c.CandWidth, Reason: "must be positive (0 selects the default)"}
	}
	for i, crit := range c.Criteria {
		if crit.Eval == nil {
			return &OptionError{Field: "Criteria", Value: i, Reason: fmt.Sprintf("criterion %q has no Eval function", crit.Name)}
		}
	}
	return nil
}

// WithDefaults returns c with every zero field replaced by its default
// (BeamWidth 8, CandWidth 4, DefaultCriteria). Solve applies it after
// Validate; external callers use it to canonicalize configurations
// (e.g. for cache keys).
func (c Config) WithDefaults() Config {
	if c.BeamWidth <= 0 {
		c.BeamWidth = 8
	}
	if c.CandWidth <= 0 {
		c.CandWidth = 4
	}
	if c.Criteria == nil {
		c.Criteria = DefaultCriteria()
	}
	return c
}

func (c Config) withDefaults() Config { return c.WithDefaults() }

// Stats reports the work the engine performed; experiment E4 compares
// these between hierarchical and flat assignment.
type Stats struct {
	StatesExplored    int // partial solutions materialized (TryAssign successes)
	CandidatesTried   int // TryAssign attempts
	RouterInvocations int // no-candidate impasses escaped by the route allocator
	NodesAssigned     int
	DuplicatesPruned  int // candidates dropped by frontier dedup (0 when disabled)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.StatesExplored += other.StatesExplored
	s.CandidatesTried += other.CandidatesTried
	s.RouterInvocations += other.RouterInvocations
	s.NodesAssigned += other.NodesAssigned
	s.DuplicatesPruned += other.DuplicatesPruned
}

// Result carries the best complete assignment found.
type Result struct {
	Flow  *pg.Flow
	Score float64
	Stats Stats
}

type scored struct {
	flow  *pg.Flow
	score float64
	// mult is the state's reference multiplicity under frontier dedup:
	// how many permutation twins of this state the reference engine's
	// frontier would carry. Collapsed twins are evaluated once but keep
	// consuming their twins' candidate and beam slots, so dedup changes
	// which work is done, never which equivalence classes survive.
	mult int
}

// Solve assigns every node of ws (in priority order) onto the clusters of
// start's topology and returns the best complete flow. start is not
// modified. It fails if some instruction has no feasible cluster even
// with the route allocator (or without it, when DisableRouter is set).
//
// Solve is the canonical context-first entry point: the beam search
// checks ctx between node assignments (the outermost loop of Figure 5),
// so a cancelled or expired context aborts the exploration within one
// frontier expansion and returns ctx.Err(). When a trace.Recorder is
// installed in ctx, one span covers the whole search and carries the
// beam counters (states expanded/pruned per filter, rollbacks, journal
// depth, pool recycles); with no recorder the added cost is a nil check.
func Solve(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, sp := trace.Start(ctx, "see.solve")
	defer sp.End()
	order, err := PriorityListCached(cfg.Crit, start, ws)
	if err != nil {
		return nil, err
	}
	eng := newEngine(start, cfg)
	stats := Stats{}
	frontier := []scored{{flow: start.Clone(), score: 0, mult: 1}}
	for _, n := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// expandFrontier applies both the candidate filter and the node
		// filter (Figure 5) before materializing, so next is already the
		// pruned, score-sorted new frontier.
		next, err := eng.expandFrontier(ctx, frontier, n, &stats)
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("see: no candidates for instruction %d (%s %s) on %q",
				n, start.D.Node(n).Op, start.D.Node(n).Name, start.T.Name)
		}
		frontier = next
		stats.NodesAssigned++
	}
	best := frontier[0]
	if rec := trace.FromContext(ctx); rec != nil {
		eng.flushTelemetry(rec, sp, start, frontier, stats)
	}
	return &Result{Flow: best.flow, Score: best.score, Stats: stats}, nil
}

// SolveContext is a deprecated alias for Solve.
//
// Deprecated: Solve is context-first since the telemetry redesign; call
// Solve directly.
func SolveContext(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg Config) (*Result, error) {
	return Solve(ctx, start, ws, cfg)
}

// engine is the delta evaluator: a pool of reusable flows plus the
// solve configuration. Flows are seeded from a frontier state with
// CopyFrom (no allocation after warm-up) and evaluate every candidate
// cluster through the mutation journal's assign → score → rollback
// cycle. The same pool recycles retired frontier states, so after a few
// nodes the whole search runs on a fixed set of Flow objects whose map
// slices and BFS scratch stay warm. The per-node working buffers live
// on the engine for the same reason.
type engine struct {
	cfg  Config
	k    int // regular clusters (candidate set size)
	pool sync.Pool

	// Per-expandFrontier scratch, reused across nodes (Solve is
	// single-threaded at this level; only evalStates fans out).
	states    []*pg.Flow
	rstates   []*pg.Flow
	direct    []candEval
	routed    []candEval
	routedIdx []int
	survivors []survivor
	idx       []int
	errs      []error
	// seen maps the fingerprints admitted during the current frontier
	// expansion to their survivor index, so later duplicates merge their
	// multiplicity into the first occurrence (cleared per node); nil
	// when dedup is disabled.
	seen map[pg.Fingerprint]int

	// Telemetry tallies, maintained only at the serial points of the
	// search (never inside the parallel evaluation fan-out) so they cost
	// a handful of integer adds per beam step and nothing per candidate.
	// Flushed onto the solve span when a trace recorder is installed.
	tel struct {
		rollbacks  int64 // journal rollbacks (one per speculative candidate)
		recycles   int64 // pooled-flow Gets (scratch seeds + materializations)
		prunedCand int64 // feasible candidates cut by the candidate filter
		prunedBeam int64 // survivors cut by the node filter (Figure 5)
		dupPruned  int64 // candidates dropped by frontier dedup
		journalHW  int64 // deepest journal depth observed on retired flows
	}
}

func newEngine(start *pg.Flow, cfg Config) *engine {
	e := &engine{cfg: cfg, k: start.T.NumRegular()}
	t, d := start.T, start.D
	e.pool.New = func() any { return pg.NewFlow(t, d) }
	return e
}

// survivor describes a virtual candidate that passed both filters: the
// frontier state it extends, the cluster it assigns, and the routing
// bound the winning evaluation used.
type survivor struct {
	state int
	c     pg.ClusterID
	score float64
	hops  int
	mult  int            // reference multiplicity (see scored.mult); 1 without dedup
	fp    pg.Fingerprint // resulting state's fingerprint (sort tie-break, dedup key)
}

// candEval is the outcome of speculatively assigning the node onto one
// (state, cluster) pair: feasibility, objective score, and the resulting
// state's fingerprint (read before rollback — an O(1) field read — so
// frontier dedup can compare candidates without re-assigning). The flow
// itself is rolled back; survivors are re-materialized later.
type candEval struct {
	ok    bool
	score float64
	fp    pg.Fingerprint
}

// evalStates scores the node on every regular cluster of every given
// state under the maxHops routing bound, writing evals[si*k+c]. The
// (state × cluster) grid is fanned out through par.ForEachCtx in chunks:
// once ctx is cancelled, unscheduled items are skipped and the non-nil
// error tells the caller the eval grid is incomplete and must be
// discarded — cancellation latency is one work item, not the frontier
// width.
//
// In the common case (frontier at least as wide as the machine) each
// state is one work item and its clusters are evaluated in place on the
// frontier flow itself through the mutation journal — assign, score,
// rollback — touching no scratch copy at all. Only when the frontier is
// narrower than the core count is a state's cluster range split across
// several work items; those items seed pooled scratch flows with
// CopyFrom (an allocation-free overwrite) because concurrent chunks may
// not mutate the shared frontier flow.
//
//hca:hotpath
func (e *engine) evalStates(ctx context.Context, states []*pg.Flow, n graph.NodeID, maxHops int, evals []candEval) error {
	k := e.k
	numChunks := 1
	if w := par.Width(); len(states) < w && k > 1 {
		numChunks = (w + len(states) - 1) / len(states)
		if numChunks > k {
			numChunks = k
		}
	}
	// Every (state, cluster) pair is assigned and rolled back exactly
	// once; tallied here, serially, instead of inside the fan-out.
	e.tel.rollbacks += int64(len(states) * k)
	if numChunks == 1 {
		return par.ForEachCtx(ctx, len(states), func(si int) {
			st := states[si]
			st.SetMaxHops(maxHops)
			e.evalRange(st, n, si, 0, k, evals)
			st.DropJournal()
			st.SetMaxHops(0)
		})
	}
	for chunk := 0; chunk < numChunks; chunk++ {
		if lo, hi := chunk*k/numChunks, (chunk+1)*k/numChunks; lo != hi {
			e.tel.recycles += int64(len(states))
		}
	}
	return par.ForEachCtx(ctx, len(states)*numChunks, func(item int) {
		si, chunk := item/numChunks, item%numChunks
		lo, hi := chunk*k/numChunks, (chunk+1)*k/numChunks
		if lo == hi {
			return
		}
		scratch := e.pool.Get().(*pg.Flow)
		scratch.CopyFrom(states[si])
		scratch.SetMaxHops(maxHops)
		e.evalRange(scratch, n, si, lo, hi, evals)
		e.pool.Put(scratch)
	})
}

// evalRange evaluates clusters [lo,hi) of one state on the given flow
// via checkpoint → assign → score → rollback, writing evals[si*k+c].
//
//hca:hotpath
func (e *engine) evalRange(f *pg.Flow, n graph.NodeID, si, lo, hi int, evals []candEval) {
	mark := f.Checkpoint()
	for c := lo; c < hi; c++ {
		err := f.Assign(n, pg.ClusterID(c))
		if err == nil {
			evals[si*e.k+c] = candEval{ok: true, score: score(f, e.cfg.Criteria), fp: f.Fingerprint()}
		}
		// A failed Assign may have committed partial routes; rollback
		// restores the seeded state either way.
		f.Rollback(mark)
	}
}

// expandFrontier advances the beam by one priority-list node: it
// evaluates the (state × cluster) grid — direct patterns first, then the
// route allocator for states at a no-candidate impasse — applies the
// per-state candidate filter, and materializes only the surviving
// candidates into real frontier flows, recycling the retired frontier
// through the pool.
func (e *engine) expandFrontier(ctx context.Context, frontier []scored, n graph.NodeID, stats *Stats) ([]scored, error) {
	k, cfg := e.k, e.cfg
	states := e.states[:0]
	for i := range frontier {
		states = append(states, frontier[i].flow)
	}
	e.states = states
	if !cfg.DisableDedup {
		if e.seen == nil {
			e.seen = make(map[pg.Fingerprint]int, cfg.BeamWidth*cfg.CandWidth)
		} else {
			clear(e.seen)
		}
	}

	// Phase 1: direct communication patterns only (maxHops 1).
	var direct []candEval
	routedIdx := e.routedIdx[:0] // frontier indices entering the router phase
	if cfg.RouterOnly {
		for si := range states {
			routedIdx = append(routedIdx, si)
		}
	} else {
		direct = e.evalBuf(&e.direct, len(states)*k)
		if err := e.evalStates(ctx, states, n, 1, direct); err != nil {
			return nil, err
		}
		if !cfg.DisableRouter {
			for si := range states {
				found := false
				for c := 0; c < k; c++ {
					if direct[si*k+c].ok {
						found = true
						break
					}
				}
				if !found {
					routedIdx = append(routedIdx, si)
				}
			}
		}
	}
	e.routedIdx = routedIdx

	// Phase 2 (no-candidates action): unlimited multi-hop routing.
	var routed []candEval
	if len(routedIdx) > 0 {
		rstates := e.rstates[:0]
		for _, si := range routedIdx {
			rstates = append(rstates, states[si])
		}
		e.rstates = rstates
		routed = e.evalBuf(&e.routed, len(rstates)*k)
		if err := e.evalStates(ctx, rstates, n, 0, routed); err != nil {
			return nil, err
		}
	}

	// Per-state accounting and candidate filter, in frontier order.
	survivors := e.survivors[:0]
	idx := e.idx[:0]
	ri := 0 // position in routedIdx (visited in ascending state order)
	for si := range states {
		var evals []candEval
		hops := 1
		useRouter := cfg.RouterOnly
		if !cfg.RouterOnly {
			stats.CandidatesTried += k
			row := direct[si*k : (si+1)*k]
			cnt := 0
			for c := 0; c < k; c++ {
				if row[c].ok {
					cnt++
				}
			}
			stats.StatesExplored += cnt
			if cnt > 0 {
				evals = row
			} else if cfg.DisableRouter {
				continue
			} else {
				stats.RouterInvocations++
				useRouter = true
			}
		}
		if useRouter {
			row := routed[ri*k : (ri+1)*k]
			ri++
			hops = 0
			stats.CandidatesTried += k
			cnt := 0
			for c := 0; c < k; c++ {
				if row[c].ok {
					cnt++
				}
			}
			stats.StatesExplored += cnt
			if cnt == 0 {
				continue
			}
			evals = row
		}
		// Candidate filter: best CandWidth clusters, stable over the
		// ascending cluster order.
		idx = idx[:0]
		for c := 0; c < k; c++ {
			if evals[c].ok {
				idx = append(idx, c)
			}
		}
		sortIdxByScore(idx, evals)
		if cfg.DisableDedup {
			if len(idx) > cfg.CandWidth {
				e.tel.prunedCand += int64(len(idx) - cfg.CandWidth)
				idx = idx[:cfg.CandWidth]
			}
			for _, c := range idx {
				survivors = append(survivors, survivor{state: si, c: pg.ClusterID(c), score: evals[c].score, hops: hops, mult: 1, fp: evals[c].fp})
			}
			continue
		}
		// Frontier dedup, interleaved with the width cut in the same
		// deterministic order (states ascending, scores ascending): a
		// candidate whose fingerprint was already admitted this
		// expansion merges its multiplicity into the first occurrence
		// instead of producing a survivor of its own — its twin has an
		// identical score, so nothing is lost. A duplicate still
		// consumes this state's candidate slot (the reference engine
		// would admit it), so the width cut falls exactly where the
		// reference's would. Only *admitted* fingerprints enter seen: a
		// candidate cut by the width limit must not absorb twins
		// elsewhere in the frontier.
		m := frontier[si].mult
		admitted := 0
		for _, c := range idx {
			if admitted == cfg.CandWidth {
				e.tel.prunedCand++
				continue
			}
			admitted++
			if j, dup := e.seen[evals[c].fp]; dup {
				survivors[j].mult += m
				e.tel.dupPruned++
				stats.DuplicatesPruned++
				continue
			}
			e.seen[evals[c].fp] = len(survivors)
			survivors = append(survivors, survivor{state: si, c: pg.ClusterID(c), score: evals[c].score, hops: hops, mult: m, fp: evals[c].fp})
		}
	}
	e.idx = idx

	// Node filter (Figure 5), applied before materialization: the
	// survivor descriptors carry their scores, so the frontier can be
	// pruned to BeamWidth while candidates are still virtual and only
	// the states that actually enter the next frontier pay a
	// materialization. The stable sort over the per-state concatenation
	// reproduces the reference engine's ordering exactly.
	sortSurvivors(survivors)
	if cfg.DisableDedup {
		if len(survivors) > cfg.BeamWidth {
			e.tel.prunedBeam += int64(len(survivors) - cfg.BeamWidth)
			survivors = survivors[:cfg.BeamWidth]
		}
	} else {
		// Multiplicity-weighted node filter: each survivor stands for
		// mult reference twins, so the BeamWidth budget is spent in the
		// same score order the reference engine would spend it —
		// possibly truncating the last class's multiplicity mid-run.
		// The frontier that results carries the reference beam's exact
		// class coverage in (usually far) fewer materialized states.
		w := 0
		cut := len(survivors)
		for i := range survivors {
			if w == cfg.BeamWidth {
				cut = i
				break
			}
			if rest := cfg.BeamWidth - w; survivors[i].mult > rest {
				e.tel.prunedBeam += int64(survivors[i].mult - rest)
				survivors[i].mult = rest
			}
			w += survivors[i].mult
		}
		for _, s := range survivors[cut:] {
			e.tel.prunedBeam += int64(s.mult)
		}
		survivors = survivors[:cut]
	}
	e.survivors = survivors
	e.tel.recycles += int64(len(survivors))

	// Materialize only the survivors: seed a pooled flow from the parent
	// state and re-apply the winning assignment, in parallel
	// (deterministic — every worker owns its slot).
	out := make([]scored, len(survivors))
	errs := e.errs[:0]
	for range survivors {
		errs = append(errs, nil)
	}
	e.errs = errs
	mErr := par.ForEachCtx(ctx, len(survivors), func(i int) {
		s := survivors[i]
		g := e.pool.Get().(*pg.Flow)
		g.CopyFrom(states[s.state])
		g.SetMaxHops(s.hops)
		if err := g.Assign(n, s.c); err != nil {
			// Cannot happen: the scratch evaluation of this exact (state,
			// cluster) pair succeeded and Assign is deterministic.
			errs[i] = fmt.Errorf("see: materialize instruction %d on cluster %d: %w", n, s.c, err)
			e.pool.Put(g)
			return
		}
		g.SetMaxHops(0)
		out[i] = scored{flow: g, score: s.score, mult: s.mult}
	})
	if mErr != nil {
		return nil, mErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The old frontier is fully superseded; its flows become tomorrow's
	// scratch and materialization targets.
	for _, st := range states {
		if hw := int64(st.JournalHighWater()); hw > e.tel.journalHW {
			e.tel.journalHW = hw
		}
		e.pool.Put(st)
	}
	return out, nil
}

// flushTelemetry writes the solve's counters onto its span and the
// recorder's monotonic counters. Called once per Solve, only when a
// recorder is installed.
func (e *engine) flushTelemetry(rec *trace.Recorder, sp *trace.Span, start *pg.Flow, frontier []scored, stats Stats) {
	for _, fr := range frontier {
		if hw := int64(fr.flow.JournalHighWater()); hw > e.tel.journalHW {
			e.tel.journalHW = hw
		}
	}
	sp.SetStr("topology", start.T.Name)
	sp.SetInt("nodes", int64(stats.NodesAssigned))
	sp.SetInt("beam_width", int64(e.cfg.BeamWidth))
	sp.SetInt("cand_width", int64(e.cfg.CandWidth))
	sp.SetInt("states_explored", int64(stats.StatesExplored))
	sp.SetInt("candidates_tried", int64(stats.CandidatesTried))
	sp.SetInt("router_invocations", int64(stats.RouterInvocations))
	sp.SetInt("rollbacks", e.tel.rollbacks)
	sp.SetInt("pool_recycles", e.tel.recycles)
	sp.SetInt("pruned_candidate_filter", e.tel.prunedCand)
	sp.SetInt("pruned_node_filter", e.tel.prunedBeam)
	sp.SetInt("duplicates_pruned", e.tel.dupPruned)
	sp.SetInt("journal_high_water", e.tel.journalHW)
	rec.Add("see.solves", 1)
	rec.Add("see.beam_iterations", int64(stats.NodesAssigned))
	rec.Add("see.states_explored", int64(stats.StatesExplored))
	rec.Add("see.candidates_tried", int64(stats.CandidatesTried))
	rec.Add("see.router_invocations", int64(stats.RouterInvocations))
	rec.Add("see.rollbacks", e.tel.rollbacks)
	rec.Add("see.pool_recycles", e.tel.recycles)
	rec.Add("see.pruned_candidate_filter", e.tel.prunedCand)
	rec.Add("see.pruned_node_filter", e.tel.prunedBeam)
	rec.Add("see.duplicates_pruned", e.tel.dupPruned)
}

// evalBuf resizes *buf to n cleared entries without reallocating once
// capacity is warm (evalRange only writes successful slots, so stale
// entries must be zeroed).
//
//hca:hotpath
func (e *engine) evalBuf(buf *[]candEval, n int) []candEval {
	b := *buf
	if cap(b) < n {
		b = make([]candEval, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = candEval{}
		}
	}
	*buf = b
	return b
}

// fpLess is the canonical fingerprint order used to break score ties in
// every filter of both engines. Keying ties on the (symmetry-canonical)
// fingerprint makes tie resolution permutation-invariant: twin states
// order their candidates class-by-class identically, which is what lets
// frontier dedup collapse twins into multiplicities without changing
// which equivalence classes survive a cut.
//
//hca:hotpath
func fpLess(a, b pg.Fingerprint) bool {
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.Lo < b.Lo
}

//hca:hotpath
func lessEval(a, b candEval) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return fpLess(a.fp, b.fp)
}

// sortIdxByScore stably sorts candidate cluster indices by their
// evaluation score (ascending, fingerprint tie-break). Insertion sort:
// the list is at most k entries, and reflect-based sort.SliceStable
// allocates on every call — in the innermost per-node loop.
//
//hca:hotpath
func sortIdxByScore(idx []int, evals []candEval) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && lessEval(evals[idx[j]], evals[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

//hca:hotpath
func lessSurvivor(a, b survivor) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return fpLess(a.fp, b.fp)
}

// sortSurvivors stably sorts survivors by score (ascending, fingerprint
// tie-break), same rationale as sortIdxByScore (at most frontier ×
// CandWidth entries).
//
//hca:hotpath
func sortSurvivors(s []survivor) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && lessSurvivor(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

//hca:hotpath
func score(f *pg.Flow, criteria []Criterion) float64 {
	s := 0.0
	for _, c := range criteria {
		s += c.Weight * c.Eval(f)
	}
	return s
}

func sortScored(s []scored) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score < s[j].score
		}
		return fpLess(s[i].flow.Fingerprint(), s[j].flow.Fingerprint())
	})
}

// Critical caches the DDG-wide criticality analysis PriorityList
// consumes: per-node slack and longest-path depth. The arrays depend
// only on the DDG, not on the subproblem, so one analysis serves every
// level of the recursive descent.
type Critical struct {
	Slack []int
	Depth []int
}

// AnalyzeDDG computes the criticality arrays of d once. HCA calls it at
// the root and threads the result through every subproblem via
// Config.Crit instead of recomputing both graph traversals per solve.
func AnalyzeDDG(d *ddg.DDG) (*Critical, error) {
	slack, err := d.G.Slack()
	if err != nil {
		return nil, fmt.Errorf("see: %w", err)
	}
	depth, err := d.G.LongestPathFrom()
	if err != nil {
		return nil, fmt.Errorf("see: %w", err)
	}
	return &Critical{Slack: slack, Depth: depth}, nil
}

// PriorityList orders the working set for assignment: by dataflow depth so
// producers precede consumers (keeping the exploration frontier local),
// breaking ties by criticality (smallest slack over the intra-iteration
// subgraph first), then by node ID for determinism.
func PriorityList(f *pg.Flow, ws []graph.NodeID) ([]graph.NodeID, error) {
	return PriorityListCached(nil, f, ws)
}

// PriorityListCached is PriorityList with the criticality analysis
// supplied by the caller; crit == nil recomputes it from f.D.
func PriorityListCached(crit *Critical, f *pg.Flow, ws []graph.NodeID) ([]graph.NodeID, error) {
	if crit == nil {
		var err error
		crit, err = AnalyzeDDG(f.D)
		if err != nil {
			return nil, err
		}
	}
	slack, depth := crit.Slack, crit.Depth
	order := append([]graph.NodeID(nil), ws...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if depth[a] != depth[b] {
			return depth[a] < depth[b]
		}
		if slack[a] != slack[b] {
			return slack[a] < slack[b]
		}
		return a < b
	})
	return order, nil
}
