// Package see implements the Space Exploration Engine of §3: a
// local-scope beam search that assigns the instructions of a working set
// onto the clusters of one Pattern Graph level.
//
// The engine mirrors the software interfaces of Figure 4:
//
//   - the *priority list* orders the unassigned DDG nodes (most critical
//     first: smallest slack, then earliest depth);
//   - *isAssignable* is the feasibility check: a candidate cluster must be
//     regular and every placed operand must be routable to it within the
//     reconfiguration constraints — in the first attempt only *direct*
//     communication patterns are allowed;
//   - the *objective function* scores each candidate flow with a weighted
//     sum of cost criteria (projected MII, copy count, load balance, port
//     consumption);
//   - the *candidate filter* keeps the best CandWidth candidates per node;
//   - the *node filter* prunes the exploration frontier to BeamWidth
//     partial solutions (Figure 5);
//   - the *no-candidates action* invokes the route allocator: assignment
//     is retried with multi-hop routing through intermediate clusters
//     (Figure 6b).
//
// Since the delta rewrite the engine is incremental: every candidate
// cluster of a beam state is evaluated against one pooled scratch flow
// via Checkpoint → Assign → score → Rollback (the pg mutation journal),
// and only the ≤ CandWidth survivors that enter the frontier are ever
// cloned. The pre-rewrite clone-per-candidate engine is retained in
// reference.go as SolveReference, the equivalence oracle: both engines
// return byte-identical assignments, scores and Stats.
package see

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pg"
	"repro/internal/trace"
)

// CritKind identifies a built-in objective term that the engine computes
// through the fused pg.Flow.ObjectiveTerms pass instead of a per-term
// Eval closure. CritCustom (the zero value) means Eval is called.
type CritKind uint8

const (
	// CritCustom calls the criterion's Eval closure.
	CritCustom CritKind = iota
	// CritMII is the projected initiation interval (Flow.EstimateMII).
	CritMII
	// CritCopies is the total copy count (Flow.TotalCopies).
	CritCopies
	// CritBalance is the maximum regular-cluster load.
	CritBalance
	// CritPorts is the summed real in-neighbor count over regular
	// clusters (input MUX consumption).
	CritPorts
)

// Criterion is one term of the objective function. Lower is better.
type Criterion struct {
	Name   string
	Weight float64
	// Kind selects a built-in term served by one fused ObjectiveTerms
	// sweep per candidate. The engine scores every (state × cluster)
	// candidate of the beam, so a Kind-tagged cost model pays one pass
	// over the packed counter blocks instead of one closure (and its
	// own pass) per term. CritCustom falls back to Eval.
	Kind CritKind
	// Eval scores the flow that results from a candidate assignment.
	// Required for CritCustom; ignored (and may be nil) for built-in
	// kinds.
	Eval func(f *pg.Flow) float64
}

// DefaultCriteria returns the cost model used throughout the paper
// reproduction: the projected initiation interval dominates (§4.2 makes
// the loop II the main cost factor), with copy count, load imbalance and
// input-port consumption as tie-breakers. Every term is Kind-tagged, so
// the engine scores candidates with a single fused pass.
func DefaultCriteria() []Criterion {
	return []Criterion{
		{Name: "mii", Weight: 1000, Kind: CritMII},
		{Name: "copies", Weight: 10, Kind: CritCopies},
		{Name: "balance", Weight: 1, Kind: CritBalance},
		{Name: "ports", Weight: 0.1, Kind: CritPorts},
	}
}

// Config tunes the engine.
type Config struct {
	BeamWidth int // node filter width (default 8)
	CandWidth int // candidate filter width (default 4)
	// Criteria is the objective function; DefaultCriteria() if nil.
	Criteria []Criterion
	// DisableRouter turns off the no-candidates action: any node with no
	// direct-pattern candidate fails the whole search (ablation E5).
	DisableRouter bool
	// RouterOnly skips the direct-pattern first phase and always allows
	// multi-hop routing (ablation: measures the cost of not preferring
	// direct patterns).
	RouterOnly bool
	// DisableDedup turns off frontier deduplication (on by default):
	// candidates whose pg.Flow fingerprint — canonical up to cluster
	// symmetry — already entered the expansion are merged into their
	// first occurrence, in deterministic frontier order, and carry a
	// multiplicity instead of a beam slot of their own. Each equivalence
	// class is evaluated and materialized once, but keeps consuming its
	// twins' candidate- and node-filter slots, so the set of classes
	// surviving each beam step matches the reference engine's — dedup
	// removes redundant work, not coverage, and the final objective cost
	// stays ≤ the reference cost (the relaxed equivalence contract).
	// Disable it to reproduce the reference engine byte-identically (the
	// strict mode).
	DisableDedup bool
	// Crit optionally supplies the precomputed criticality arrays
	// PriorityList consumes. The HCA driver computes them once per DDG
	// (AnalyzeDDG) and shares them across every subproblem of the
	// recursive descent; when nil they are recomputed per Solve.
	Crit *Critical
}

// OptionError is the typed validation failure Validate returns for a
// nonsense configuration value. The compilation daemon maps it (and
// core's wrapper around it) to HTTP 400. Numeric fields report the
// offending value in Value; string-valued fields (a machine type, a
// kernel name) carry it in Str instead.
type OptionError struct {
	Field  string
	Value  int
	Str    string
	Reason string
}

func (e *OptionError) Error() string {
	if e.Str != "" {
		return fmt.Sprintf("see: invalid %s %q: %s", e.Field, e.Str, e.Reason)
	}
	return fmt.Sprintf("see: invalid %s %d: %s", e.Field, e.Value, e.Reason)
}

// Validate rejects nonsense configuration values with typed errors.
// Zero widths are legal — they mean "use the default" and are filled in
// by WithDefaults — but negative widths (and a criterion without an
// evaluator) are errors. This pair is the one defaulting/validation
// point for the whole pipeline: core.Options, the driver variants and
// the compilation service all funnel through it instead of silently
// rewriting values.
func (c Config) Validate() error {
	if c.BeamWidth < 0 {
		return &OptionError{Field: "BeamWidth", Value: c.BeamWidth, Reason: "must be positive (0 selects the default)"}
	}
	if c.CandWidth < 0 {
		return &OptionError{Field: "CandWidth", Value: c.CandWidth, Reason: "must be positive (0 selects the default)"}
	}
	for i, crit := range c.Criteria {
		if crit.Kind > CritPorts {
			return &OptionError{Field: "Criteria", Value: i, Reason: fmt.Sprintf("criterion %q has unknown kind %d", crit.Name, crit.Kind)}
		}
		if crit.Kind == CritCustom && crit.Eval == nil {
			return &OptionError{Field: "Criteria", Value: i, Reason: fmt.Sprintf("criterion %q has no Eval function", crit.Name)}
		}
	}
	return nil
}

// WithDefaults returns c with every zero field replaced by its default
// (BeamWidth 8, CandWidth 4, DefaultCriteria). Solve applies it after
// Validate; external callers use it to canonicalize configurations
// (e.g. for cache keys).
func (c Config) WithDefaults() Config {
	if c.BeamWidth <= 0 {
		c.BeamWidth = 8
	}
	if c.CandWidth <= 0 {
		c.CandWidth = 4
	}
	if c.Criteria == nil {
		c.Criteria = DefaultCriteria()
	}
	return c
}

func (c Config) withDefaults() Config { return c.WithDefaults() }

// Stats reports the work the engine performed; experiment E4 compares
// these between hierarchical and flat assignment.
type Stats struct {
	StatesExplored    int // partial solutions materialized (TryAssign successes)
	CandidatesTried   int // TryAssign attempts
	RouterInvocations int // no-candidate impasses escaped by the route allocator
	NodesAssigned     int
	DuplicatesPruned  int // candidates dropped by frontier dedup (0 when disabled)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.StatesExplored += other.StatesExplored
	s.CandidatesTried += other.CandidatesTried
	s.RouterInvocations += other.RouterInvocations
	s.NodesAssigned += other.NodesAssigned
	s.DuplicatesPruned += other.DuplicatesPruned
}

// Result carries the best complete assignment found.
type Result struct {
	Flow  *pg.Flow
	Score float64
	Stats Stats
}

type scored struct {
	flow  *pg.Flow
	score float64
	// mult is the state's reference multiplicity under frontier dedup:
	// how many permutation twins of this state the reference engine's
	// frontier would carry. Collapsed twins are evaluated once but keep
	// consuming their twins' candidate and beam slots, so dedup changes
	// which work is done, never which equivalence classes survive.
	mult int
}

// Solve assigns every node of ws (in priority order) onto the clusters of
// start's topology and returns the best complete flow. start is not
// modified. It fails if some instruction has no feasible cluster even
// with the route allocator (or without it, when DisableRouter is set).
//
// Solve is the canonical context-first entry point: the beam search
// checks ctx between node assignments (the outermost loop of Figure 5),
// so a cancelled or expired context aborts the exploration within one
// frontier expansion and returns ctx.Err(). When a trace.Recorder is
// installed in ctx, one span covers the whole search and carries the
// beam counters (states expanded/pruned per filter, rollbacks, journal
// depth, pool recycles); with no recorder the added cost is a nil check.
func Solve(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, sp := trace.Start(ctx, "see.solve")
	defer sp.End()
	order, err := PriorityListCached(cfg.Crit, start, ws)
	if err != nil {
		return nil, err
	}
	eng := newEngine(start, cfg)
	defer eng.retire()
	stats := Stats{}
	frontier := []scored{{flow: start.Clone(), score: 0, mult: 1}}
	for _, n := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// expandFrontier applies both the candidate filter and the node
		// filter (Figure 5) before materializing, so next is already the
		// pruned, score-sorted new frontier.
		next, err := eng.expandFrontier(ctx, frontier, n, &stats)
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("see: no candidates for instruction %d (%s %s) on %q",
				n, start.D.Node(n).Op, start.D.Node(n).Name, start.T.Name)
		}
		frontier = next
		stats.NodesAssigned++
	}
	best := frontier[0]
	if rec := trace.FromContext(ctx); rec != nil {
		eng.flushTelemetry(rec, sp, start, frontier, stats)
	}
	// The losing frontier flows retire with the solve; only the result
	// escapes (and keeps its arrays out of the slabs).
	for _, s := range frontier[1:] {
		s.flow.Release()
	}
	return &Result{Flow: best.flow, Score: best.score, Stats: stats}, nil
}

// engine is the delta evaluator: a pool of reusable flows plus the
// solve configuration. Flows are seeded from a frontier state with
// CopyFrom (no allocation after warm-up) and evaluate every candidate
// cluster through the mutation journal's assign → score → rollback
// cycle. The same pool recycles retired frontier states, so after a few
// nodes the whole search runs on a fixed set of Flow objects whose map
// slices and BFS scratch stay warm. The per-node working buffers live
// on the engine for the same reason.
type engine struct {
	cfg  Config
	k    int // regular clusters (candidate set size)
	pool flowPool

	// Per-expandFrontier scratch, reused across nodes (Solve is
	// single-threaded at this level; only evalStates fans out).
	states    []*pg.Flow
	rstates   []*pg.Flow
	direct    []candEval
	routed    []candEval
	routedIdx []int
	survivors []survivor
	idx       []int
	errs      []error
	// spare is the retired frontier's backing array, adopted after each
	// expansion so the next materialization can reuse it (ping-pong with
	// the live frontier slice instead of a per-node allocation).
	spare []scored
	// survTmp is sortSurvivors' merge scratch for wide beams.
	survTmp []survivor
	// seen maps the fingerprints admitted during the current frontier
	// expansion to their survivor index, so later duplicates merge their
	// multiplicity into the first occurrence (cleared per node); nil
	// when dedup is disabled.
	seen map[pg.Fingerprint]int

	// Telemetry tallies, maintained only at the serial points of the
	// search (never inside the parallel evaluation fan-out) so they cost
	// a handful of integer adds per beam step and nothing per candidate.
	// Flushed onto the solve span when a trace recorder is installed.
	tel telemetry
}

// telemetry is the engine's per-solve counter block, zeroed when a
// recycled engine retires.
type telemetry struct {
	rollbacks    int64 // journal rollbacks (one per speculative candidate)
	recycles     int64 // pooled-flow Gets (scratch seeds + materializations)
	prunedCand   int64 // feasible candidates cut by the candidate filter
	prunedBeam   int64 // survivors cut by the node filter (Figure 5)
	dupPruned    int64 // candidates dropped by frontier dedup
	journalHW    int64 // deepest journal depth observed on retired flows
	evalChunks   int64 // chunks the eval grids were partitioned into
	scratchSeeds int64 // partial rows seeded onto scratch flows (chunk-boundary splits)
}

// enginePool recycles retired engines between solves: the hierarchy
// runs hundreds of subproblem solves per compilation, and an engine's
// scratch (per-node buffers, survivor arrays, the dedup map) would
// otherwise be re-grown from zero by every one of them. Flows never
// travel with a pooled engine — retire drains them first.
var enginePool = sync.Pool{New: func() any { return new(engine) }}

func newEngine(start *pg.Flow, cfg Config) *engine {
	e := enginePool.Get().(*engine)
	e.cfg, e.k = cfg, start.T.NumRegular()
	// Pool misses clone the caller's start flow rather than calling
	// NewFlow: Clone is a handful of memmoves and shares the immutable
	// operand CSR, where NewFlow re-walks the DDG's edge lists. Every
	// pooled flow is CopyFrom-overwritten before use, so the base's
	// state is irrelevant — only its shape and shared tables matter. The
	// engine does not own base: drain never releases it.
	e.pool.base = start
	return e
}

// retire releases every flow the engine still owns back to the pg
// slabs, drops the dangling flow pointers from the scratch buffers
// (keeping their capacity), zeroes the telemetry and returns the engine
// to the package pool for the next solve.
func (e *engine) retire() {
	e.pool.drain()
	clear(e.states[:cap(e.states)])
	clear(e.rstates[:cap(e.rstates)])
	clear(e.spare[:cap(e.spare)])
	clear(e.errs[:cap(e.errs)])
	e.tel = telemetry{}
	enginePool.Put(e)
}

// flowPool is the engine's explicit flow free list. A sync.Pool is the
// wrong tool here: the GC empties it on every cycle, so a solve under
// memory pressure keeps re-cloning the flows it just retired — and the
// clones are themselves garbage that brings the next cycle closer. The
// engine is single-solve scoped, its peak working set is small (beam
// width plus the worker fan-out), and every Get has a matching Put, so
// an explicit LIFO list keeps the set stable for the whole solve. The
// mutex is uncontended in serial solves and amortized over whole chunks
// in parallel ones.
type flowPool struct {
	mu   sync.Mutex
	free []*pg.Flow
	base *pg.Flow
}

// Get returns a recycled flow, or a clone of the pristine base when the
// list is empty. Callers must CopyFrom before reading any state.
func (p *flowPool) Get() *pg.Flow {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return f
	}
	p.mu.Unlock()
	return p.base.Clone()
}

// Put returns a flow to the free list for the next Get to reuse.
func (p *flowPool) Put(f *pg.Flow) {
	p.mu.Lock()
	p.free = append(p.free, f)
	p.mu.Unlock()
}

// drain releases the backing arrays of every pooled flow to the pg
// slabs, so the next solve's pool warms up without growing the heap.
// Called once when the solve retires its engine; flows that escaped
// the pool (the result) and the borrowed base are not touched.
func (p *flowPool) drain() {
	p.mu.Lock()
	free := p.free
	p.free, p.base = nil, nil
	p.mu.Unlock()
	for _, f := range free {
		f.Release()
	}
}

// survivor describes a virtual candidate that passed both filters: the
// frontier state it extends, the cluster it assigns, and the routing
// bound the winning evaluation used.
type survivor struct {
	state int
	c     pg.ClusterID
	score float64
	hops  int
	mult  int            // reference multiplicity (see scored.mult); 1 without dedup
	fp    pg.Fingerprint // resulting state's fingerprint (sort tie-break, dedup key)
}

// candEval is the outcome of speculatively assigning the node onto one
// (state, cluster) pair: feasibility, objective score, and the resulting
// state's fingerprint (read before rollback — an O(1) field read — so
// frontier dedup can compare candidates without re-assigning). The flow
// itself is rolled back; survivors are re-materialized later.
type candEval struct {
	ok    bool
	score float64
	fp    pg.Fingerprint
}

// evalMinChunk is the minimum number of (state, cluster) grid cells one
// worker chunk must cover. Each cell is an assign → score → rollback
// cycle (microseconds); a floor this size keeps the spawn overhead of a
// chunk well under the work it carries on small frontiers.
const evalMinChunk = 8

// evalStates scores the node on every regular cluster of every given
// state under the maxHops routing bound, writing evals[si*k+c]. The
// flattened (state × cluster) grid — cell si*k+c — is partitioned into
// contiguous chunks through par.ForEachChunkedCtx: once ctx is
// cancelled, unscheduled chunks are skipped and the non-nil error tells
// the caller the eval grid is incomplete and must be discarded —
// cancellation latency is one chunk, not the frontier width.
//
// A chunk walks its cell range row by row. A row (one frontier state)
// that lies entirely inside the chunk is evaluated in place on the
// frontier flow itself through the mutation journal — assign, score,
// rollback — touching no scratch copy at all; chunks partition the grid,
// so no other worker sees that flow. Only a row split by a chunk
// boundary (frontier narrower than the machine) seeds a pooled scratch
// flow with CopyFrom (an allocation-free overwrite) for its partial
// segment, because concurrent chunks may not mutate the shared frontier
// flow. Every cell is written by exactly one worker and its value
// depends only on the (state, cluster) pair, so the grid — and hence the
// whole search — is deterministic for any chunking.
//
//hca:hotpath
func (e *engine) evalStates(ctx context.Context, states []*pg.Flow, n graph.NodeID, maxHops int, evals []candEval) error {
	k := e.k
	total := len(states) * k
	// Every (state, cluster) pair is assigned and rolled back exactly
	// once; tallied here, serially, instead of inside the fan-out. The
	// scratch-seed count replays the chunk partition (NumChunks and
	// ChunkBounds are pure) so the parallel workers never touch the
	// telemetry.
	e.tel.rollbacks += int64(total)
	chunks := par.NumChunks(total, evalMinChunk)
	e.tel.evalChunks += int64(chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := par.ChunkBounds(total, chunks, i)
		for lo < hi {
			rowEnd := (lo/k + 1) * k
			segEnd := min(rowEnd, hi)
			if lo%k != 0 || segEnd != rowEnd {
				e.tel.scratchSeeds++
				e.tel.recycles++
			}
			lo = segEnd
		}
	}
	return par.ForEachChunkedCtx(ctx, total, evalMinChunk, func(lo, hi int) {
		for lo < hi {
			si := lo / k
			cLo := lo % k
			rowEnd := (si + 1) * k
			segEnd := min(rowEnd, hi)
			if cLo == 0 && segEnd == rowEnd {
				st := states[si]
				st.SetMaxHops(maxHops)
				e.evalRange(st, n, si, 0, k, evals)
				st.DropJournal()
				st.SetMaxHops(0)
			} else {
				scratch := e.pool.Get()
				scratch.CopyFrom(states[si])
				scratch.SetMaxHops(maxHops)
				e.evalRange(scratch, n, si, cLo, segEnd-si*k, evals)
				e.pool.Put(scratch)
			}
			lo = segEnd
		}
	})
}

// evalRange evaluates clusters [lo,hi) of one state on the given flow
// via checkpoint → assign → score → rollback, writing evals[si*k+c].
//
//hca:hotpath
func (e *engine) evalRange(f *pg.Flow, n graph.NodeID, si, lo, hi int, evals []candEval) {
	mark := f.Checkpoint()
	for c := lo; c < hi; c++ {
		err := f.Assign(n, pg.ClusterID(c))
		if err == nil {
			evals[si*e.k+c] = candEval{ok: true, score: score(f, e.cfg.Criteria), fp: f.Fingerprint()}
		}
		// A failed Assign may have committed partial routes; rollback
		// restores the seeded state either way.
		f.Rollback(mark)
	}
}

// expandFrontier advances the beam by one priority-list node: it
// evaluates the (state × cluster) grid — direct patterns first, then the
// route allocator for states at a no-candidate impasse — applies the
// per-state candidate filter, and materializes only the surviving
// candidates into real frontier flows, recycling the retired frontier
// through the pool.
func (e *engine) expandFrontier(ctx context.Context, frontier []scored, n graph.NodeID, stats *Stats) ([]scored, error) {
	k, cfg := e.k, e.cfg
	states := e.states[:0]
	for i := range frontier {
		states = append(states, frontier[i].flow)
	}
	e.states = states
	if !cfg.DisableDedup {
		if e.seen == nil {
			e.seen = make(map[pg.Fingerprint]int, cfg.BeamWidth*cfg.CandWidth)
		} else {
			clear(e.seen)
		}
	}

	// Phase 1: direct communication patterns only (maxHops 1).
	var direct []candEval
	routedIdx := e.routedIdx[:0] // frontier indices entering the router phase
	if cfg.RouterOnly {
		for si := range states {
			routedIdx = append(routedIdx, si)
		}
	} else {
		direct = e.evalBuf(&e.direct, len(states)*k)
		if err := e.evalStates(ctx, states, n, 1, direct); err != nil {
			return nil, err
		}
		if !cfg.DisableRouter {
			for si := range states {
				found := false
				for c := 0; c < k; c++ {
					if direct[si*k+c].ok {
						found = true
						break
					}
				}
				if !found {
					routedIdx = append(routedIdx, si)
				}
			}
		}
	}
	e.routedIdx = routedIdx

	// Phase 2 (no-candidates action): unlimited multi-hop routing.
	var routed []candEval
	if len(routedIdx) > 0 {
		rstates := e.rstates[:0]
		for _, si := range routedIdx {
			rstates = append(rstates, states[si])
		}
		e.rstates = rstates
		routed = e.evalBuf(&e.routed, len(rstates)*k)
		if err := e.evalStates(ctx, rstates, n, 0, routed); err != nil {
			return nil, err
		}
	}

	// Per-state accounting and candidate filter, in frontier order.
	survivors := e.survivors[:0]
	idx := e.idx[:0]
	ri := 0 // position in routedIdx (visited in ascending state order)
	for si := range states {
		var evals []candEval
		hops := 1
		useRouter := cfg.RouterOnly
		if !cfg.RouterOnly {
			stats.CandidatesTried += k
			row := direct[si*k : (si+1)*k]
			cnt := 0
			for c := 0; c < k; c++ {
				if row[c].ok {
					cnt++
				}
			}
			stats.StatesExplored += cnt
			if cnt > 0 {
				evals = row
			} else if cfg.DisableRouter {
				continue
			} else {
				stats.RouterInvocations++
				useRouter = true
			}
		}
		if useRouter {
			row := routed[ri*k : (ri+1)*k]
			ri++
			hops = 0
			stats.CandidatesTried += k
			cnt := 0
			for c := 0; c < k; c++ {
				if row[c].ok {
					cnt++
				}
			}
			stats.StatesExplored += cnt
			if cnt == 0 {
				continue
			}
			evals = row
		}
		// Candidate filter: best CandWidth clusters, stable over the
		// ascending cluster order.
		idx = idx[:0]
		for c := 0; c < k; c++ {
			if evals[c].ok {
				idx = append(idx, c)
			}
		}
		sortIdxByScore(idx, evals)
		if cfg.DisableDedup {
			if len(idx) > cfg.CandWidth {
				e.tel.prunedCand += int64(len(idx) - cfg.CandWidth)
				idx = idx[:cfg.CandWidth]
			}
			for _, c := range idx {
				survivors = append(survivors, survivor{state: si, c: pg.ClusterID(c), score: evals[c].score, hops: hops, mult: 1, fp: evals[c].fp})
			}
			continue
		}
		// Frontier dedup, interleaved with the width cut in the same
		// deterministic order (states ascending, scores ascending): a
		// candidate whose fingerprint was already admitted this
		// expansion merges its multiplicity into the first occurrence
		// instead of producing a survivor of its own — its twin has an
		// identical score, so nothing is lost. A duplicate still
		// consumes this state's candidate slot (the reference engine
		// would admit it), so the width cut falls exactly where the
		// reference's would. Only *admitted* fingerprints enter seen: a
		// candidate cut by the width limit must not absorb twins
		// elsewhere in the frontier.
		m := frontier[si].mult
		admitted := 0
		for _, c := range idx {
			if admitted == cfg.CandWidth {
				e.tel.prunedCand++
				continue
			}
			admitted++
			if j, dup := e.seen[evals[c].fp]; dup {
				survivors[j].mult += m
				e.tel.dupPruned++
				stats.DuplicatesPruned++
				continue
			}
			e.seen[evals[c].fp] = len(survivors)
			survivors = append(survivors, survivor{state: si, c: pg.ClusterID(c), score: evals[c].score, hops: hops, mult: m, fp: evals[c].fp})
		}
	}
	e.idx = idx

	// Node filter (Figure 5), applied before materialization: the
	// survivor descriptors carry their scores, so the frontier can be
	// pruned to BeamWidth while candidates are still virtual and only
	// the states that actually enter the next frontier pay a
	// materialization. The stable sort over the per-state concatenation
	// reproduces the reference engine's ordering exactly.
	e.sortSurvivors(survivors)
	if cfg.DisableDedup {
		if len(survivors) > cfg.BeamWidth {
			e.tel.prunedBeam += int64(len(survivors) - cfg.BeamWidth)
			survivors = survivors[:cfg.BeamWidth]
		}
	} else {
		// Multiplicity-weighted node filter: each survivor stands for
		// mult reference twins, so the BeamWidth budget is spent in the
		// same score order the reference engine would spend it —
		// possibly truncating the last class's multiplicity mid-run.
		// The frontier that results carries the reference beam's exact
		// class coverage in (usually far) fewer materialized states.
		w := 0
		cut := len(survivors)
		for i := range survivors {
			if w == cfg.BeamWidth {
				cut = i
				break
			}
			if rest := cfg.BeamWidth - w; survivors[i].mult > rest {
				e.tel.prunedBeam += int64(survivors[i].mult - rest)
				survivors[i].mult = rest
			}
			w += survivors[i].mult
		}
		for _, s := range survivors[cut:] {
			e.tel.prunedBeam += int64(s.mult)
		}
		survivors = survivors[:cut]
	}
	e.survivors = survivors
	e.tel.recycles += int64(len(survivors))

	// Materialize only the survivors: seed a pooled flow from the parent
	// state and re-apply the winning assignment, in parallel chunks
	// (deterministic — every worker owns its slots). The output buffer
	// ping-pongs with the retired frontier's backing array, so the
	// steady-state search allocates no per-node frontier slices at all.
	out := e.spare[:0]
	if cap(out) < len(survivors) {
		out = make([]scored, len(survivors))
	} else {
		out = out[:len(survivors)]
	}
	errs := e.errs[:0]
	for range survivors {
		errs = append(errs, nil)
	}
	e.errs = errs
	mErr := par.ForEachChunkedCtx(ctx, len(survivors), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := survivors[i]
			g := e.pool.Get()
			g.CopyFrom(states[s.state])
			g.SetMaxHops(s.hops)
			if err := g.Assign(n, s.c); err != nil {
				// Cannot happen: the scratch evaluation of this exact (state,
				// cluster) pair succeeded and Assign is deterministic.
				errs[i] = fmt.Errorf("see: materialize instruction %d on cluster %d: %w", n, s.c, err)
				e.pool.Put(g)
				continue
			}
			g.SetMaxHops(0)
			out[i] = scored{flow: g, score: s.score, mult: s.mult}
		}
	})
	if mErr != nil {
		return nil, mErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The old frontier is fully superseded; its flows become tomorrow's
	// scratch and materialization targets, and its backing array the
	// target of the next materialization.
	for _, st := range states {
		if hw := int64(st.JournalHighWater()); hw > e.tel.journalHW {
			e.tel.journalHW = hw
		}
		e.pool.Put(st)
	}
	e.spare = frontier
	return out, nil
}

// flushTelemetry writes the solve's counters onto its span and the
// recorder's monotonic counters. Called once per Solve, only when a
// recorder is installed.
func (e *engine) flushTelemetry(rec *trace.Recorder, sp *trace.Span, start *pg.Flow, frontier []scored, stats Stats) {
	for _, fr := range frontier {
		if hw := int64(fr.flow.JournalHighWater()); hw > e.tel.journalHW {
			e.tel.journalHW = hw
		}
	}
	sp.SetStr("topology", start.T.Name)
	sp.SetInt("nodes", int64(stats.NodesAssigned))
	sp.SetInt("beam_width", int64(e.cfg.BeamWidth))
	sp.SetInt("cand_width", int64(e.cfg.CandWidth))
	sp.SetInt("states_explored", int64(stats.StatesExplored))
	sp.SetInt("candidates_tried", int64(stats.CandidatesTried))
	sp.SetInt("router_invocations", int64(stats.RouterInvocations))
	sp.SetInt("rollbacks", e.tel.rollbacks)
	sp.SetInt("pool_recycles", e.tel.recycles)
	sp.SetInt("pruned_candidate_filter", e.tel.prunedCand)
	sp.SetInt("pruned_node_filter", e.tel.prunedBeam)
	sp.SetInt("duplicates_pruned", e.tel.dupPruned)
	sp.SetInt("journal_high_water", e.tel.journalHW)
	sp.SetInt("eval_chunks", e.tel.evalChunks)
	sp.SetInt("scratch_seeds", e.tel.scratchSeeds)
	rec.Add("see.solves", 1)
	rec.Add("see.beam_iterations", int64(stats.NodesAssigned))
	rec.Add("see.states_explored", int64(stats.StatesExplored))
	rec.Add("see.candidates_tried", int64(stats.CandidatesTried))
	rec.Add("see.router_invocations", int64(stats.RouterInvocations))
	rec.Add("see.rollbacks", e.tel.rollbacks)
	rec.Add("see.pool_recycles", e.tel.recycles)
	rec.Add("see.pruned_candidate_filter", e.tel.prunedCand)
	rec.Add("see.pruned_node_filter", e.tel.prunedBeam)
	rec.Add("see.duplicates_pruned", e.tel.dupPruned)
	rec.Add("see.eval_chunks", e.tel.evalChunks)
	rec.Add("see.scratch_seeds", e.tel.scratchSeeds)
}

// evalBuf resizes *buf to n cleared entries without reallocating once
// capacity is warm (evalRange only writes successful slots, so stale
// entries must be zeroed).
//
//hca:hotpath
func (e *engine) evalBuf(buf *[]candEval, n int) []candEval {
	b := *buf
	if cap(b) < n {
		b = make([]candEval, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = candEval{}
		}
	}
	*buf = b
	return b
}

// fpLess is the canonical fingerprint order used to break score ties in
// every filter of both engines. Keying ties on the (symmetry-canonical)
// fingerprint makes tie resolution permutation-invariant: twin states
// order their candidates class-by-class identically, which is what lets
// frontier dedup collapse twins into multiplicities without changing
// which equivalence classes survive a cut.
//
//hca:hotpath
func fpLess(a, b pg.Fingerprint) bool {
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.Lo < b.Lo
}

//hca:hotpath
func lessEval(a, b candEval) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return fpLess(a.fp, b.fp)
}

// sortIdxByScore stably sorts candidate cluster indices by their
// evaluation score (ascending, fingerprint tie-break). Insertion sort:
// the list is at most k entries, and reflect-based sort.SliceStable
// allocates on every call — in the innermost per-node loop.
//
//hca:hotpath
func sortIdxByScore(idx []int, evals []candEval) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && lessEval(evals[idx[j]], evals[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

//hca:hotpath
func lessSurvivor(a, b survivor) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return fpLess(a.fp, b.fp)
}

// sortSurvivors stably sorts survivors by score (ascending, fingerprint
// tie-break), same rationale as sortIdxByScore. Small inputs use
// insertion sort; the retry ladder's wide beams (up to BeamWidth ×
// CandWidth entries) switch to a bottom-up merge through the
// engine-owned scratch buffer — both stable, so the survivor order (and
// with it the reference equivalence) is identical either way, and both
// allocation-free once the scratch is warm.
//
//hca:hotpath
func (e *engine) sortSurvivors(s []survivor) {
	n := len(s)
	if n <= 24 {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && lessSurvivor(s[j], s[j-1]); j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	if cap(e.survTmp) < n {
		e.survTmp = make([]survivor, n)
	}
	src, dst := s, e.survTmp[:n]
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				if i < mid && (j >= hi || !lessSurvivor(src[j], src[i])) {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// score evaluates the objective function. Built-in (Kind-tagged) terms
// all read from one fused ObjectiveTerms sweep, computed lazily on the
// first such term; terms are accumulated in criteria order either way,
// so the float result is bit-identical to summing per-term closures.
//
//hca:hotpath
func score(f *pg.Flow, criteria []Criterion) float64 {
	s := 0.0
	fused := false
	var mii, copies, balance, ports int
	for i := range criteria {
		c := &criteria[i]
		if c.Kind == CritCustom {
			s += c.Weight * c.Eval(f)
			continue
		}
		if !fused {
			mii, copies, balance, ports = f.ObjectiveTerms()
			fused = true
		}
		switch c.Kind {
		case CritMII:
			s += c.Weight * float64(mii)
		case CritCopies:
			s += c.Weight * float64(copies)
		case CritBalance:
			s += c.Weight * float64(balance)
		case CritPorts:
			s += c.Weight * float64(ports)
		}
	}
	return s
}

// ScoreFlow evaluates the objective function on one flow — the exported
// form of the engine's fused scoring path, so sibling engines (the
// exact branch-and-bound solver) score states bit-identically to the
// beam search they are raced against. criteria nil is rejected by
// Validate upstream; callers pass a WithDefaults configuration.
func ScoreFlow(f *pg.Flow, criteria []Criterion) float64 {
	return score(f, criteria)
}

func sortScored(s []scored) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score < s[j].score
		}
		return fpLess(s[i].flow.Fingerprint(), s[j].flow.Fingerprint())
	})
}

// Critical caches the DDG-wide criticality analysis PriorityList
// consumes: per-node slack and longest-path depth. The arrays depend
// only on the DDG, not on the subproblem, so one analysis serves every
// level of the recursive descent.
type Critical struct {
	Slack []int
	Depth []int
}

// AnalyzeDDG computes the criticality arrays of d once. HCA calls it at
// the root and threads the result through every subproblem via
// Config.Crit instead of recomputing both graph traversals per solve.
func AnalyzeDDG(d *ddg.DDG) (*Critical, error) {
	slack, err := d.G.Slack()
	if err != nil {
		return nil, fmt.Errorf("see: %w", err)
	}
	depth, err := d.G.LongestPathFrom()
	if err != nil {
		return nil, fmt.Errorf("see: %w", err)
	}
	return &Critical{Slack: slack, Depth: depth}, nil
}

// PriorityList orders the working set for assignment: by dataflow depth so
// producers precede consumers (keeping the exploration frontier local),
// breaking ties by criticality (smallest slack over the intra-iteration
// subgraph first), then by node ID for determinism.
func PriorityList(f *pg.Flow, ws []graph.NodeID) ([]graph.NodeID, error) {
	return PriorityListCached(nil, f, ws)
}

// PriorityListCached is PriorityList with the criticality analysis
// supplied by the caller; crit == nil recomputes it from f.D.
func PriorityListCached(crit *Critical, f *pg.Flow, ws []graph.NodeID) ([]graph.NodeID, error) {
	if crit == nil {
		var err error
		crit, err = AnalyzeDDG(f.D)
		if err != nil {
			return nil, err
		}
	}
	slack, depth := crit.Slack, crit.Depth
	order := append([]graph.NodeID(nil), ws...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if depth[a] != depth[b] {
			return depth[a] < depth[b]
		}
		if slack[a] != slack[b] {
			return slack[a] < slack[b]
		}
		return a < b
	})
	return order, nil
}
