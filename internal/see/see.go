// Package see implements the Space Exploration Engine of §3: a
// local-scope beam search that assigns the instructions of a working set
// onto the clusters of one Pattern Graph level.
//
// The engine mirrors the software interfaces of Figure 4:
//
//   - the *priority list* orders the unassigned DDG nodes (most critical
//     first: smallest slack, then earliest depth);
//   - *isAssignable* is the feasibility check: a candidate cluster must be
//     regular and every placed operand must be routable to it within the
//     reconfiguration constraints — in the first attempt only *direct*
//     communication patterns are allowed;
//   - the *objective function* scores each candidate flow with a weighted
//     sum of cost criteria (projected MII, copy count, load balance, port
//     consumption);
//   - the *candidate filter* keeps the best CandWidth candidates per node;
//   - the *node filter* prunes the exploration frontier to BeamWidth
//     partial solutions (Figure 5);
//   - the *no-candidates action* invokes the route allocator: assignment
//     is retried with multi-hop routing through intermediate clusters
//     (Figure 6b).
package see

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pg"
)

// Criterion is one term of the objective function. Lower is better.
type Criterion struct {
	Name   string
	Weight float64
	// Eval scores the flow that results from a candidate assignment.
	Eval func(f *pg.Flow) float64
}

// DefaultCriteria returns the cost model used throughout the paper
// reproduction: the projected initiation interval dominates (§4.2 makes
// the loop II the main cost factor), with copy count, load imbalance and
// input-port consumption as tie-breakers.
func DefaultCriteria() []Criterion {
	return []Criterion{
		{Name: "mii", Weight: 1000, Eval: func(f *pg.Flow) float64 {
			return float64(f.EstimateMII())
		}},
		{Name: "copies", Weight: 10, Eval: func(f *pg.Flow) float64 {
			return float64(f.TotalCopies())
		}},
		{Name: "balance", Weight: 1, Eval: func(f *pg.Flow) float64 {
			max := 0
			for c := 0; c < f.T.NumRegular(); c++ {
				if l := f.Load(pg.ClusterID(c)); l > max {
					max = l
				}
			}
			return float64(max)
		}},
		{Name: "ports", Weight: 0.1, Eval: func(f *pg.Flow) float64 {
			used := 0
			for c := 0; c < f.T.NumRegular(); c++ {
				used += f.InNeighbors(pg.ClusterID(c))
			}
			return float64(used)
		}},
	}
}

// Config tunes the engine.
type Config struct {
	BeamWidth int // node filter width (default 8)
	CandWidth int // candidate filter width (default 4)
	// Criteria is the objective function; DefaultCriteria() if nil.
	Criteria []Criterion
	// DisableRouter turns off the no-candidates action: any node with no
	// direct-pattern candidate fails the whole search (ablation E5).
	DisableRouter bool
	// RouterOnly skips the direct-pattern first phase and always allows
	// multi-hop routing (ablation: measures the cost of not preferring
	// direct patterns).
	RouterOnly bool
}

func (c Config) withDefaults() Config {
	if c.BeamWidth <= 0 {
		c.BeamWidth = 8
	}
	if c.CandWidth <= 0 {
		c.CandWidth = 4
	}
	if c.Criteria == nil {
		c.Criteria = DefaultCriteria()
	}
	return c
}

// Stats reports the work the engine performed; experiment E4 compares
// these between hierarchical and flat assignment.
type Stats struct {
	StatesExplored    int // partial solutions materialized (TryAssign successes)
	CandidatesTried   int // TryAssign attempts
	RouterInvocations int // no-candidate impasses escaped by the route allocator
	NodesAssigned     int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.StatesExplored += other.StatesExplored
	s.CandidatesTried += other.CandidatesTried
	s.RouterInvocations += other.RouterInvocations
	s.NodesAssigned += other.NodesAssigned
}

// Result carries the best complete assignment found.
type Result struct {
	Flow  *pg.Flow
	Score float64
	Stats Stats
}

type scored struct {
	flow  *pg.Flow
	score float64
}

// Solve assigns every node of ws (in priority order) onto the clusters of
// start's topology and returns the best complete flow. start is not
// modified. It fails if some instruction has no feasible cluster even
// with the route allocator (or without it, when DisableRouter is set).
func Solve(start *pg.Flow, ws []graph.NodeID, cfg Config) (*Result, error) {
	return SolveContext(context.Background(), start, ws, cfg)
}

// SolveContext is Solve with cancellation: the beam search checks ctx
// between node assignments (the outermost loop of Figure 5), so a
// cancelled or expired context aborts the exploration within one
// frontier expansion and returns ctx.Err().
func SolveContext(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	order, err := PriorityList(start, ws)
	if err != nil {
		return nil, err
	}
	stats := Stats{}
	frontier := []scored{{flow: start.Clone(), score: 0}}
	for _, n := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next []scored
		for _, st := range frontier {
			cands := expand(st.flow, n, cfg, &stats)
			next = append(next, cands...)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("see: no candidates for instruction %d (%s %s) on %q",
				n, start.D.Node(n).Op, start.D.Node(n).Name, start.T.Name)
		}
		// Node filter: prune the frontier (Figure 5).
		sortScored(next)
		if len(next) > cfg.BeamWidth {
			next = next[:cfg.BeamWidth]
		}
		frontier = next
		stats.NodesAssigned++
	}
	best := frontier[0]
	return &Result{Flow: best.flow, Score: best.score, Stats: stats}, nil
}

// expand generates the filtered candidate assignments of node n from flow
// f: first with direct patterns only, then (no-candidates action) with the
// route allocator enabled.
func expand(f *pg.Flow, n graph.NodeID, cfg Config, stats *Stats) []scored {
	try := func(maxHops int) []scored {
		// Candidate evaluations are independent: clone, assign and score
		// in parallel, each worker writing only its own slot.
		k := f.T.NumRegular()
		slots := make([]*scored, k)
		par.ForEach(k, func(c int) {
			base := f.Clone()
			base.SetMaxHops(maxHops)
			if err := base.Assign(n, pg.ClusterID(c)); err != nil {
				return
			}
			base.SetMaxHops(0)
			slots[c] = &scored{flow: base, score: score(base, cfg.Criteria)}
		})
		stats.CandidatesTried += k
		var cands []scored
		for _, s := range slots {
			if s != nil {
				stats.StatesExplored++
				cands = append(cands, *s)
			}
		}
		// Candidate filter.
		sortScored(cands)
		if len(cands) > cfg.CandWidth {
			cands = cands[:cfg.CandWidth]
		}
		return cands
	}

	if !cfg.RouterOnly {
		if cands := try(1); len(cands) > 0 {
			return cands
		}
		if cfg.DisableRouter {
			return nil
		}
		stats.RouterInvocations++
	}
	return try(0)
}

func score(f *pg.Flow, criteria []Criterion) float64 {
	s := 0.0
	for _, c := range criteria {
		s += c.Weight * c.Eval(f)
	}
	return s
}

func sortScored(s []scored) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].score < s[j].score })
}

// PriorityList orders the working set for assignment: by dataflow depth so
// producers precede consumers (keeping the exploration frontier local),
// breaking ties by criticality (smallest slack over the intra-iteration
// subgraph first), then by node ID for determinism.
func PriorityList(f *pg.Flow, ws []graph.NodeID) ([]graph.NodeID, error) {
	slack, err := f.D.G.Slack()
	if err != nil {
		return nil, fmt.Errorf("see: %v", err)
	}
	depth, err := f.D.G.LongestPathFrom()
	if err != nil {
		return nil, fmt.Errorf("see: %v", err)
	}
	order := append([]graph.NodeID(nil), ws...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if depth[a] != depth[b] {
			return depth[a] < depth[b]
		}
		if slack[a] != slack[b] {
			return slack[a] < slack[b]
		}
		return a < b
	})
	return order, nil
}
