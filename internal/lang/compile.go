package lang

import (
	"fmt"
	"strconv"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// expression AST.
type expr interface{ line() int }

type numExpr struct {
	v  int64
	ln int
}
type identExpr struct {
	name string
	ln   int
}
type binExpr struct {
	op   string
	l, r expr
	ln   int
}
type callExpr struct {
	fn   string
	args []expr
	ln   int
}

func (e *numExpr) line() int   { return e.ln }
func (e *identExpr) line() int { return e.ln }
func (e *binExpr) line() int   { return e.ln }
func (e *callExpr) line() int  { return e.ln }

// statement AST.
type stmt struct {
	kind string // "iv", "walk", "const", "assign", "store"
	name string
	a, b int64  // iv base/step, walk step/limit, const value
	lhs  string // assign target
	rhs  expr   // assign value / store value
	addr expr   // store address
	ln   int
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.next()
	if t.kind != kind || (text != "" && t.text != text) {
		return t, fmt.Errorf("lang: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.pos++
	}
}

// parse builds the statement list from tokens.
func parse(toks []token) (string, []stmt, error) {
	p := &parser{toks: toks}
	p.skipNewlines()
	if _, err := p.expect(tokIdent, "kernel"); err != nil {
		return "", nil, err
	}
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return "", nil, fmt.Errorf("lang: line %d: kernel name expected", p.cur().line)
	}
	var stmts []stmt
	for {
		p.skipNewlines()
		if p.cur().kind == tokEOF {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return "", nil, err
		}
		stmts = append(stmts, s)
		if p.cur().kind != tokNewline && p.cur().kind != tokEOF {
			return "", nil, fmt.Errorf("lang: line %d: unexpected %q after statement", p.cur().line, p.cur().text)
		}
	}
	return nameTok.text, stmts, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.next()
	if t.kind != tokIdent {
		return stmt{}, fmt.Errorf("lang: line %d: statement must start with a word, found %q", t.line, t.text)
	}
	switch t.text {
	case "iv", "walk":
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return stmt{}, err
		}
		a, err := p.parseNum()
		if err != nil {
			return stmt{}, err
		}
		b, err := p.parseNum()
		if err != nil {
			return stmt{}, err
		}
		return stmt{kind: t.text, name: name.text, a: a, b: b, ln: t.line}, nil
	case "const":
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return stmt{}, err
		}
		a, err := p.parseNum()
		if err != nil {
			return stmt{}, err
		}
		return stmt{kind: "const", name: name.text, a: a, ln: t.line}, nil
	case "store":
		if _, err := p.expect(tokPunct, "("); err != nil {
			return stmt{}, err
		}
		addr, err := p.parseExpr(0)
		if err != nil {
			return stmt{}, err
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return stmt{}, err
		}
		val, err := p.parseExpr(0)
		if err != nil {
			return stmt{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return stmt{}, err
		}
		return stmt{kind: "store", addr: addr, rhs: val, ln: t.line}, nil
	default:
		// assignment: name = expr
		if _, err := p.expect(tokPunct, "="); err != nil {
			return stmt{}, fmt.Errorf("lang: line %d: expected '=' after %q", t.line, t.text)
		}
		rhs, err := p.parseExpr(0)
		if err != nil {
			return stmt{}, err
		}
		return stmt{kind: "assign", lhs: t.text, rhs: rhs, ln: t.line}, nil
	}
}

func (p *parser) parseNum() (int64, error) {
	t := p.next()
	if t.kind != tokNum {
		return 0, fmt.Errorf("lang: line %d: number expected, found %q", t.line, t.text)
	}
	return strconv.ParseInt(t.text, 10, 64)
}

// Operator precedence (loosest to tightest): | ^ & , comparisons, shifts,
// + -, *.
var precOf = map[string]int{
	"|": 1, "^": 2, "&": 3,
	"<": 4, ">": 4, "==": 4,
	"<<": 5, ">>": 5,
	"+": 6, "-": 6,
	"*": 7,
}

func (p *parser) parseExpr(minPrec int) (expr, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			break
		}
		prec, ok := precOf[t.text]
		if !ok || prec < minPrec {
			break
		}
		p.pos++
		rhs, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binExpr{op: t.text, l: lhs, r: rhs, ln: t.line}
	}
	return lhs, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNum:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lang: line %d: bad number %q", t.line, t.text)
		}
		return &numExpr{v: v, ln: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			p.pos++
			var args []expr
			for {
				if p.cur().kind == tokPunct && p.cur().text == ")" {
					p.pos++
					break
				}
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.cur().kind == tokPunct && p.cur().text == "," {
					p.pos++
				}
			}
			return &callExpr{fn: t.text, args: args, ln: t.line}, nil
		}
		return &identExpr{name: t.text, ln: t.line}, nil
	default:
		return nil, fmt.Errorf("lang: line %d: unexpected %q in expression", t.line, t.text)
	}
}

// fixup is a loop-carried reference resolved after all statements lower.
type fixup struct {
	consumer graph.NodeID
	port     int
	name     string
	dist     int
	ln       int
}

type compiler struct {
	d      *ddg.DDG
	names  map[string]graph.NodeID
	consts map[int64]graph.NodeID
	fixups []fixup
}

// Compile parses and lowers a kernel description into a validated DDG.
func Compile(src string) (*ddg.DDG, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	name, stmts, err := parse(toks)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		d:      ddg.New(name),
		names:  map[string]graph.NodeID{},
		consts: map[int64]graph.NodeID{},
	}
	for _, s := range stmts {
		if err := c.lowerStmt(s); err != nil {
			return nil, err
		}
	}
	for _, f := range c.fixups {
		prod, ok := c.names[f.name]
		if !ok {
			return nil, fmt.Errorf("lang: line %d: prev(%s, %d): name never defined", f.ln, f.name, f.dist)
		}
		c.d.AddDep(prod, f.consumer, f.port, f.dist)
	}
	if err := c.d.Validate(); err != nil {
		return nil, fmt.Errorf("lang: %v", err)
	}
	return c.d, nil
}

func (c *compiler) define(name string, n graph.NodeID, ln int) error {
	if _, dup := c.names[name]; dup {
		return fmt.Errorf("lang: line %d: %q already defined", ln, name)
	}
	c.names[name] = n
	return nil
}

func (c *compiler) lowerStmt(s stmt) error {
	switch s.kind {
	case "iv":
		return c.define(s.name, c.d.AddIV(s.a, s.b, s.name), s.ln)
	case "const":
		return c.define(s.name, c.d.AddConst(s.a, s.name), s.ln)
	case "walk":
		// sel = (sel@-1 + step < limit) ? sel@-1+step : 0, init -step so
		// the first iteration lands on 0.
		zero := c.constNode(0)
		nb := c.d.AddOpImm(ddg.OpAdd, s.name+"_nb", s.a)
		w := c.d.AddOpImm(ddg.OpCmpLT, s.name+"_w", s.b)
		sel := c.d.AddOp(ddg.OpSelect, s.name)
		c.d.AddDep(sel, nb, 0, 1)
		c.d.AddDep(nb, w, 0, 0)
		c.d.AddDep(w, sel, 0, 0)
		c.d.AddDep(nb, sel, 1, 0)
		c.d.AddDep(zero, sel, 2, 0)
		c.d.SetInit(sel, -s.a)
		return c.define(s.name, sel, s.ln)
	case "assign":
		n, err := c.lowerExpr(s.rhs)
		if err != nil {
			return err
		}
		// A bare literal or re-aliased name still needs its own node only
		// when it IS one; aliasing an existing node under a new name is
		// fine for everything downstream.
		return c.define(s.lhs, n, s.ln)
	case "store":
		addr, err := c.lowerExpr(s.addr)
		if err != nil {
			return err
		}
		val, err := c.lowerExpr(s.rhs)
		if err != nil {
			return err
		}
		st := c.d.AddOp(ddg.OpStore, "store")
		c.d.AddDep(addr, st, 0, 0)
		c.d.AddDep(val, st, 1, 0)
		return nil
	default:
		return fmt.Errorf("lang: line %d: unknown statement kind %q", s.ln, s.kind)
	}
}

func (c *compiler) constNode(v int64) graph.NodeID {
	if n, ok := c.consts[v]; ok {
		return n
	}
	n := c.d.AddConst(v, fmt.Sprintf("c%d", v))
	c.consts[v] = n
	return n
}

var binOps = map[string]ddg.Op{
	"+": ddg.OpAdd, "-": ddg.OpSub, "*": ddg.OpMul,
	"<<": ddg.OpShl, ">>": ddg.OpShr,
	"&": ddg.OpAnd, "|": ddg.OpOr, "^": ddg.OpXor,
	"<": ddg.OpCmpLT, ">": ddg.OpCmpGT, "==": ddg.OpCmpEQ,
}

var callOps = map[string]struct {
	op    ddg.Op
	arity int
}{
	"load":   {ddg.OpLoad, 1},
	"abs":    {ddg.OpAbs, 1},
	"min":    {ddg.OpMin, 2},
	"max":    {ddg.OpMax, 2},
	"select": {ddg.OpSelect, 3},
	"clip":   {ddg.OpClip, 3},
}

func (c *compiler) lowerExpr(e expr) (graph.NodeID, error) {
	switch ex := e.(type) {
	case *numExpr:
		return c.constNode(ex.v), nil
	case *identExpr:
		n, ok := c.names[ex.name]
		if !ok {
			return 0, fmt.Errorf("lang: line %d: undefined name %q", ex.ln, ex.name)
		}
		return n, nil
	case *binExpr:
		op, ok := binOps[ex.op]
		if !ok {
			return 0, fmt.Errorf("lang: line %d: unsupported operator %q", ex.ln, ex.op)
		}
		// Fold a literal right operand into an immediate form.
		if num, isNum := ex.r.(*numExpr); isNum {
			l, err := c.lowerExpr(ex.l)
			if err != nil {
				return 0, err
			}
			n := c.d.AddOpImm(op, "", num.v)
			c.d.AddDep(l, n, 0, 0)
			return n, nil
		}
		l, err := c.lowerExpr(ex.l)
		if err != nil {
			return 0, err
		}
		r, err := c.lowerExpr(ex.r)
		if err != nil {
			return 0, err
		}
		n := c.d.AddOp(op, "")
		c.d.AddDep(l, n, 0, 0)
		c.d.AddDep(r, n, 1, 0)
		return n, nil
	case *callExpr:
		if ex.fn == "prev" {
			return c.lowerPrev(ex)
		}
		spec, ok := callOps[ex.fn]
		if !ok {
			return 0, fmt.Errorf("lang: line %d: unknown function %q", ex.ln, ex.fn)
		}
		if len(ex.args) != spec.arity {
			return 0, fmt.Errorf("lang: line %d: %s takes %d arguments, got %d", ex.ln, ex.fn, spec.arity, len(ex.args))
		}
		// clip's last argument folds into an immediate when literal.
		if spec.op == ddg.OpClip {
			if hi, isNum := ex.args[2].(*numExpr); isNum {
				x, err := c.lowerExpr(ex.args[0])
				if err != nil {
					return 0, err
				}
				lo, err := c.lowerExpr(ex.args[1])
				if err != nil {
					return 0, err
				}
				n := c.d.AddOpImm(ddg.OpClip, "", hi.v)
				c.d.AddDep(x, n, 0, 0)
				c.d.AddDep(lo, n, 1, 0)
				return n, nil
			}
		}
		n := c.d.AddOp(spec.op, "")
		for i, a := range ex.args {
			an, err := c.lowerExpr(a)
			if err != nil {
				return 0, err
			}
			c.d.AddDep(an, n, i, 0)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("lang: internal: unknown expression %T", e)
	}
}

// lowerPrev handles prev(name, dist): a loop-carried read of a named
// value. It lowers to a mov fed by a deferred loop-carried edge, so the
// referenced name may be defined later (or be the enclosing assignment
// itself, as in accumulators).
func (c *compiler) lowerPrev(ex *callExpr) (graph.NodeID, error) {
	if len(ex.args) != 2 {
		return 0, fmt.Errorf("lang: line %d: prev takes (name, distance)", ex.ln)
	}
	id, ok := ex.args[0].(*identExpr)
	if !ok {
		return 0, fmt.Errorf("lang: line %d: prev's first argument must be a name", ex.ln)
	}
	num, ok := ex.args[1].(*numExpr)
	if !ok || num.v < 1 {
		return 0, fmt.Errorf("lang: line %d: prev's distance must be a positive literal", ex.ln)
	}
	mv := c.d.AddOp(ddg.OpMov, "prev_"+id.name)
	c.fixups = append(c.fixups, fixup{consumer: mv, port: 0, name: id.name, dist: int(num.v), ln: ex.ln})
	return mv, nil
}
