package lang

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/dma"
	"repro/internal/kernels"
	"repro/internal/machine"
)

const convSrc = `
kernel conv3
# three-tap smoothing over a wrapping line buffer
walk p 1 64
iv   out 4096 1
x0 = load(p)
x1 = load(p + 1)
x2 = load(p + 2)
s  = x0*1 + x1*2 + x2*1
y  = clip((s + 2) >> 2, 0, 255)
store(out, y)
`

func TestCompileConv(t *testing.T) {
	d, err := Compile(convSrc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "conv3" {
		t.Errorf("name = %q", d.Name)
	}
	st := d.Stats()
	if st.MemOps != 4 {
		t.Errorf("MemOps = %d, want 4", st.MemOps)
	}
	if d.MIIRec() != 3 { // the walker's wrap recurrence
		t.Errorf("MIIRec = %d, want 3", d.MIIRec())
	}
}

func TestCompiledKernelExecutes(t *testing.T) {
	d, err := Compile(convSrc)
	if err != nil {
		t.Fatal(err)
	}
	mem := ddg.MapMemory{}
	for i := int64(0); i < 70; i++ {
		mem[i] = i % 17
	}
	if _, err := d.Interpret(mem, 10); err != nil {
		t.Fatal(err)
	}
	// Iteration 0 reads p=0: y = clip((m0 + 2*m1 + m2 + 2) >> 2, 0, 255).
	want := (mem[0] + 2*mem[1] + mem[2] + 2) >> 2
	if got := mem[4096]; got != want {
		t.Errorf("out[0] = %d, want %d", got, want)
	}
}

func TestCompiledKernelMatchesHandBuilt(t *testing.T) {
	// The DSL's conv must compute the same as a builder-API equivalent.
	src := `
kernel eq
iv p 0 4
a = load(p)
b = load(p + 1)
d = abs(a - b)
store(p + 2, d)
`
	d, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := ddg.MapMemory{}
	for i := int64(0); i < 64; i++ {
		mem[i] = (i * 13) % 31
	}
	ref := ddg.MapMemory{}
	for k, v := range mem {
		ref[k] = v
	}
	if _, err := d.Interpret(mem, 8); err != nil {
		t.Fatal(err)
	}
	for it := int64(0); it < 8; it++ {
		p := 4 * it
		dv := ref[p] - ref[p+1]
		if dv < 0 {
			dv = -dv
		}
		ref[p+2] = dv
	}
	for k, v := range ref {
		if mem[k] != v {
			t.Fatalf("mem[%d] = %d, want %d", k, mem[k], v)
		}
	}
}

func TestAccumulatorPrev(t *testing.T) {
	src := `
kernel acc
iv x 1 1
acc = prev(acc, 1) + x
store(4096, acc)
`
	d, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := ddg.MapMemory{}
	if _, err := d.Interpret(mem, 5); err != nil {
		t.Fatal(err)
	}
	// x = 1..5; prev starts 0 through the mov's init → acc = 15.
	if got := mem[4096]; got != 15 {
		t.Errorf("acc = %d, want 15", got)
	}
	if d.MIIRec() < 2 {
		t.Errorf("MIIRec = %d, want >= 2 (accumulator through prev)", d.MIIRec())
	}
}

func TestSelectAndComparisons(t *testing.T) {
	src := `
kernel sel
iv x 0 1
big = x > 3
y = select(big, 100, x)
store(8192 + x, y)
`
	d, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := ddg.MapMemory{}
	if _, err := d.Interpret(mem, 6); err != nil {
		t.Fatal(err)
	}
	wants := []int64{0, 1, 2, 3, 100, 100}
	for i, w := range wants {
		if got := mem[int64(8192+i)]; got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestImmediateFolding(t *testing.T) {
	d, err := Compile("kernel f\niv x 0 1\ny = x + 7\nstore(100, y)\n")
	if err != nil {
		t.Fatal(err)
	}
	// x, y(addi), store addr const, store = 4 nodes; no separate const 7.
	for i := range d.Nodes {
		if d.Nodes[i].Op == ddg.OpConst && d.Nodes[i].Imm == 7 {
			t.Error("literal 7 became a const node instead of an immediate")
		}
	}
}

func TestConstSharing(t *testing.T) {
	d, err := Compile("kernel c\nconst k 5\niv x 0 1\ny = k * x\nz = k * y\nstore(10, z)\n")
	if err != nil {
		t.Fatal(err)
	}
	consts := 0
	for i := range d.Nodes {
		if d.Nodes[i].Op == ddg.OpConst && d.Nodes[i].Imm == 5 {
			consts++
		}
	}
	if consts != 1 {
		t.Errorf("const 5 appears %d times, want 1", consts)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no-kernel":       "iv x 0 1\n",
		"undefined":       "kernel k\ny = x + 1\nstore(0, y)\n",
		"redefined":       "kernel k\niv x 0 1\nx = 3\nstore(0, x)\n",
		"bad-call":        "kernel k\ny = frob(1)\nstore(0, y)\n",
		"bad-arity":       "kernel k\ny = min(1)\nstore(0, y)\n",
		"bad-prev":        "kernel k\ny = prev(z, 1)\nstore(0, y)\n",
		"bad-prev-dist":   "kernel k\niv x 0 1\ny = prev(x, 0)\nstore(0, y)\n",
		"bad-char":        "kernel k\ny = 1 % 2\n",
		"stray-token":     "kernel k\niv x 0 1 junk\n",
		"missing-equals":  "kernel k\nfoo bar\n",
		"unclosed-paren":  "kernel k\ny = (1 + 2\nstore(0, y)\n",
		"non-literal-num": "kernel k\niv x 0 q\n",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compile accepted invalid source", name)
		}
	}
}

func TestCompiledThroughFullPipeline(t *testing.T) {
	d, err := Compile(convSrc)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), d, mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legal {
		t.Fatal("not legal")
	}
	// The DSL's walker matches the DMA analyzer's modular idiom.
	p := dma.Analyze(d)
	if !p.Programmable {
		t.Error("DSL kernel not DMA-programmable")
	}
}

func TestNegativeLiterals(t *testing.T) {
	d, err := Compile("kernel n\niv x 0 1\ny = clip(x - 3, -2, 2)\nstore(50 + x, y)\n")
	if err != nil {
		t.Fatal(err)
	}
	mem := ddg.MapMemory{}
	if _, err := d.Interpret(mem, 4); err != nil {
		t.Fatal(err)
	}
	wants := []int64{-2, -2, -1, 0}
	for i, w := range wants {
		if got := mem[int64(50+i)]; got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "\n\n# leading comment\nkernel ws   # trailing\n\n  iv x 0 1\n\tstore(0, x)\n# end\n"
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMessagesCarryLines(t *testing.T) {
	_, err := Compile("kernel k\niv x 0 1\n\ny = zz + 1\nstore(0, y)\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("err = %v, want line 4 reference", err)
	}
}

// TestDSLMpeg2Equivalence writes the mpeg2inter algorithm in the DSL
// (window reuse through prev(), the adaptive rounding accumulator, the
// saturating average) and checks it computes the same memory image as the
// calibrated builder kernel. The instruction counts differ — the DSL
// spends movs on prev() — but the semantics must match exactly.
func TestDSLMpeg2Equivalence(t *testing.T) {
	src := `
kernel mpeg2dsl
iv pf 0 4
iv pb 8192 4
iv po 12288 4
lp1 = load(pf + 1)
lp2 = load(pf + 2)
lp3 = load(pf + 3)
lp4 = load(pf + 4)
lq1 = load(pf + 4097)
lq2 = load(pf + 4098)
lq3 = load(pf + 4099)
lq4 = load(pf + 4100)
b0 = load(pb)
b1 = load(pb + 1)
b2 = load(pb + 2)
b3 = load(pb + 3)
acc = clip((( prev(acc,1) + 3) * 5 + 16) >> 5, 0, 63)
radj = (acc & 1) + 2
h0 = (prev(lp4,1) + lp1 + prev(lq4,1) + lq1 + radj) >> 2
h1 = (lp1 + lp2 + lq1 + lq2 + 2) >> 2
h2 = (lp2 + lp3 + lq2 + lq3 + 2) >> 2
h3 = (lp3 + lp4 + lq3 + lq4 + 2) >> 2
store(po,     clip((h0 + b0 + 1) >> 1, 0, 255))
store(po + 1, clip((h1 + b1 + 1) >> 1, 0, 255))
store(po + 2, clip((h2 + b2 + 1) >> 1, 0, 255))
store(po + 3, clip((h3 + b3 + 1) >> 1, 0, 255))
`
	d, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Note: the DSL uses base addresses matching kernels.Mpeg* constants
	// (PF=0, stride 4096, PB=8192, PO=12288).
	if kernels.MpegStride != 4096 || kernels.MpegPB != 8192 || kernels.MpegPO != 12288 {
		t.Skip("memory layout constants changed; DSL source needs updating")
	}
	rng := rand.New(rand.NewSource(12))
	mem := ddg.MapMemory{}
	ref := ddg.MapMemory{}
	const iters = 20
	for i := int64(0); i < 4*iters+8; i++ {
		for _, base := range []int64{kernels.MpegPF, kernels.MpegPF + kernels.MpegStride, kernels.MpegPB} {
			v := int64(rng.Intn(256))
			mem[base+i] = v
			ref[base+i] = v
		}
	}
	if _, err := d.Interpret(mem, iters); err != nil {
		t.Fatal(err)
	}
	kernels.MPEG2InterRef(ref, iters)
	for a, v := range ref {
		if mem[a] != v {
			t.Fatalf("DSL diverges from builder kernel at mem[%d]: %d vs %d", a, mem[a], v)
		}
	}
}
