package driver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
)

func TestHCAWithFeedback(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			fb, err := HCAWithFeedback(k.Build(), mc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !fb.Legal {
				t.Fatal("not legal")
			}
			// The feedback loop can never do worse than the default
			// variant alone.
			res, err := core.HCA(k.Build(), mc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s, err := modsched.Run(res.Final, res.FinalCN, mc, modsched.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if fb.Schedule.II > s.II {
				t.Errorf("feedback II %d worse than default %d", fb.Schedule.II, s.II)
			}
			t.Logf("%s: feedback picked %q with II=%d (default %d)", k.Name, fb.Variant, fb.Schedule.II, s.II)
		})
	}
}
