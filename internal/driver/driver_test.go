package driver

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
)

func TestHCAWithFeedback(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			fb, err := HCAWithFeedback(context.Background(), k.Build(), mc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !fb.Legal {
				t.Fatal("not legal")
			}
			// The feedback loop can never do worse than the default
			// variant alone.
			res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if fb.Schedule.II > s.II {
				t.Errorf("feedback II %d worse than default %d", fb.Schedule.II, s.II)
			}
			t.Logf("%s: feedback picked %q with II=%d (default %d)", k.Name, fb.Variant, fb.Schedule.II, s.II)
		})
	}
}

// The feedback loop's whole point: for every paper kernel, the variant
// it selects achieves an II no worse than any variant it rejected.
func TestVariantSelectionOptimal(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			d := k.Build()
			vs := RunVariants(context.Background(), d, mc, core.Options{})
			if len(vs) != 3 {
				t.Fatalf("got %d variants, want 3", len(vs))
			}
			fb, err := HCAWithFeedback(context.Background(), d, mc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sawWinner := false
			for _, v := range vs {
				if v.Err != nil {
					t.Logf("%s: variant %q failed: %v", k.Name, v.Name, v.Err)
					continue
				}
				if v.Schedule.II < fb.Schedule.II {
					t.Errorf("%s: rejected variant %q has II %d < selected %q's %d",
						k.Name, v.Name, v.Schedule.II, fb.Variant, fb.Schedule.II)
				}
				if v.Name == fb.Variant {
					sawWinner = true
					if v.Schedule.II != fb.Schedule.II {
						t.Errorf("%s: winner II mismatch: %d vs %d", k.Name, v.Schedule.II, fb.Schedule.II)
					}
				}
				if !v.Result.Legal {
					t.Errorf("%s: variant %q result not legal", k.Name, v.Name)
				}
				if v.Schedule.II < v.Result.MII.Final {
					t.Errorf("%s: variant %q achieved II %d below its MII bound %d",
						k.Name, v.Name, v.Schedule.II, v.Result.MII.Final)
				}
			}
			if !sawWinner {
				t.Errorf("%s: selected variant %q not among the reported variants", k.Name, fb.Variant)
			}
		})
	}
}

// Cancellation propagates through the feedback loop.
func TestFeedbackContextCancelled(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := HCAWithFeedback(ctx, kernels.All()[0].Build(), mc, core.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	for _, v := range RunVariants(ctx, kernels.All()[0].Build(), mc, core.Options{}) {
		if !errors.Is(v.Err, context.Canceled) {
			t.Errorf("variant %q: err %v, want context.Canceled", v.Name, v.Err)
		}
	}
}

// The variant race shares one subproblem memo: the rungs a variant does
// not override are identical across workers, so the race must register
// cross-variant hits — and the memo must not change any variant's
// outcome relative to a memo-less race.
func TestRunVariantsSharedMemo(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	d := kernels.Fir2Dim()
	memo := core.NewMemo(0)
	shared := RunVariants(context.Background(), d, mc, core.Options{Memo: memo})
	if st := memo.Stats(); st.Hits == 0 {
		t.Fatalf("no cross-variant memo hits: %+v", st)
	}
	plain := RunVariants(context.Background(), d, mc, core.Options{DisableMemo: true})
	if len(shared) != len(plain) {
		t.Fatalf("variant count diverged: %d vs %d", len(shared), len(plain))
	}
	for i := range shared {
		a, b := shared[i], plain[i]
		if a.Name != b.Name || (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("variant %d diverged: %+v vs %+v", i, a, b)
		}
		if a.Err != nil {
			continue
		}
		if a.Schedule.II != b.Schedule.II || a.Result.Recvs != b.Result.Recvs {
			t.Errorf("variant %q: memo changed outcome: II %d/%d recvs %d/%d",
				a.Name, a.Schedule.II, b.Schedule.II, a.Result.Recvs, b.Result.Recvs)
		}
	}
}
