// Package driver closes the compilation loop above HCA: it couples the
// clusterizer with the modulo scheduler and selects among heuristic
// variants by the II the scheduler actually achieves — the feedback §5
// identifies as the missing ingredient.
package driver

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/par"
	"repro/internal/trace"
)

// ScheduledResult couples a clusterization with its achieved modulo
// schedule.
type ScheduledResult struct {
	*core.Result
	Schedule *modsched.Schedule
	// Variant names the heuristic mix that won.
	Variant string
}

// VariantResult records one heuristic variant's complete end-to-end
// outcome: its clusterization and achieved schedule, or the error that
// knocked it out. The feedback loop selects among these; tests and the
// service's verbose reports inspect the rejected ones too.
type VariantResult struct {
	Name     string
	Result   *core.Result
	Schedule *modsched.Schedule
	Err      error
}

// variants enumerates the heuristic mixes the feedback loop races.
func variants(base core.Options) []struct {
	name string
	opt  core.Options
} {
	schedAware := base
	schedAware.SchedulingAware = true
	portFrugal := base
	// Only the widths differ: the rest of the caller's SEE config (dedup
	// switch, criticality cache, custom criteria) carries through, so the
	// variant shares the base's retry-ladder rungs in the memo.
	portFrugal.SEE = base.SEE
	portFrugal.SEE.BeamWidth, portFrugal.SEE.CandWidth = 16, 4
	return []struct {
		name string
		opt  core.Options
	}{
		{"default", base},
		{"sched-aware", schedAware},
		{"port-frugal", portFrugal},
	}
}

// RunVariants runs every heuristic variant end to end (HCA + modulo
// scheduling) and returns all outcomes in variant order. The variants
// are independent races, so they fan out over par's chunked pool — each
// worker writes only its own slots, keeping the result order (and thus
// the Better tie-break applied by callers) deterministic. A cancelled
// ctx aborts variants that have not started (ForEachChunkedCtx skips
// them, and they are backfilled below); their entries carry ctx's
// error.
//
// Unless the caller supplied its own (or disabled it), the variants
// share one subproblem memo: every retry-ladder rung a variant does not
// override is identical across the race, so the workers answer each
// other's beam searches.
func RunVariants(ctx context.Context, d *ddg.DDG, mc *machine.Config, base core.Options) []VariantResult {
	if base.Memo == nil && !base.DisableMemo {
		base.Memo = core.NewMemo(0)
	}
	vs := variants(base)
	out := make([]VariantResult, len(vs))
	runOne := func(i int) {
		vr := &out[i]
		vr.Name = vs[i].name
		if err := ctx.Err(); err != nil {
			vr.Err = err
			return
		}
		// One span per raced variant; the HCA descent and the modulo
		// schedule nest inside it, and its attributes record how the
		// variant fared so the trace explains the feedback decision.
		vctx, sp := trace.Start(ctx, "variant "+vs[i].name)
		defer sp.End()
		sp.SetStr("phase", "variant")
		res, err := core.HCA(vctx, d, mc, vs[i].opt)
		if err != nil {
			vr.Err = err
			sp.SetStr("error", err.Error())
			return
		}
		s, err := modsched.Run(vctx, res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			vr.Err = err
			sp.SetStr("error", err.Error())
			return
		}
		vr.Result, vr.Schedule = res, s
		sp.SetInt("ii", int64(s.II))
		sp.SetInt("receives", int64(res.Recvs))
	}
	_ = par.ForEachChunkedCtx(ctx, len(vs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			runOne(i)
		}
	})
	for i := range out {
		if out[i].Name == "" { // skipped by the cancellation cut
			out[i].Name, out[i].Err = vs[i].name, ctx.Err()
		}
	}
	return out
}

// Better reports whether a beats b under the feedback loop's selection
// rule: smaller achieved II first, ties to fewer receive primitives.
func (a VariantResult) Better(b VariantResult) bool {
	if b.Err != nil {
		return a.Err == nil
	}
	if a.Err != nil {
		return false
	}
	if a.Schedule.II != b.Schedule.II {
		return a.Schedule.II < b.Schedule.II
	}
	return a.Result.Recvs < b.Result.Recvs
}

// HCAWithFeedback closes the loop the paper's §5 says is missing: the MII
// the clusterizer optimizes is only a bound, and the II the modulo
// scheduler *achieves* depends on cost factors the clusterizer cannot see
// ("we guess that it could increase dramatically unless we take into
// account scheduling aware cost factors"). This driver runs several
// heuristic variants end to end — default, scheduling-aware, and
// port-frugal — schedules each result, and returns the clusterization
// with the smallest achieved II (ties to fewer receives).
//
// HCAWithFeedback is the canonical context-first entry point: ctx aborts
// both the per-variant HCA descents and the remaining variants of the
// race; a trace.Recorder in ctx gets one span per variant plus a
// "feedback.select" span recording which variant won and why.
func HCAWithFeedback(ctx context.Context, d *ddg.DDG, mc *machine.Config, base core.Options) (*ScheduledResult, error) {
	var best *VariantResult
	var firstErr error
	ctx, fsp := trace.Start(ctx, "feedback")
	defer fsp.End()
	for _, vr := range RunVariants(ctx, d, mc, base) {
		vr := vr
		if vr.Err != nil {
			if firstErr == nil {
				firstErr = vr.Err
			}
			continue
		}
		if best == nil || vr.Better(*best) {
			best = &vr
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("hca: feedback: every variant failed: %w", firstErr)
	}
	_, sel := trace.Start(ctx, "feedback.select")
	sel.SetStr("winner", best.Name)
	sel.SetStr("why", fmt.Sprintf("achieved II %d with %d receives (smallest II, ties to fewer receives)",
		best.Schedule.II, best.Result.Recvs))
	sel.End()
	fsp.SetStr("winner", best.Name)
	return &ScheduledResult{Result: best.Result, Schedule: best.Schedule, Variant: best.Name}, nil
}
