// Package driver closes the compilation loop above HCA: it couples the
// clusterizer with the modulo scheduler and selects among heuristic
// variants by the II the scheduler actually achieves — the feedback §5
// identifies as the missing ingredient.
package driver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/see"
)

// ScheduledResult couples a clusterization with its achieved modulo
// schedule.
type ScheduledResult struct {
	*core.Result
	Schedule *modsched.Schedule
	// Variant names the heuristic mix that won.
	Variant string
}

// HCAWithFeedback closes the loop the paper's §5 says is missing: the MII
// the clusterizer optimizes is only a bound, and the II the modulo
// scheduler *achieves* depends on cost factors the clusterizer cannot see
// ("we guess that it could increase dramatically unless we take into
// account scheduling aware cost factors"). This driver runs several
// heuristic variants end to end — default, scheduling-aware, and
// port-frugal — schedules each result, and returns the clusterization
// with the smallest achieved II (ties to fewer receives).
func HCAWithFeedback(d *ddg.DDG, mc *machine.Config, base core.Options) (*ScheduledResult, error) {
	type variant struct {
		name string
		opt  core.Options
	}
	portFrugal := base
	portFrugal.SEE = see.Config{BeamWidth: 16, CandWidth: 4}
	variants := []variant{
		{"default", base},
		{"sched-aware", func() core.Options { o := base; o.SchedulingAware = true; return o }()},
		{"port-frugal", portFrugal},
	}
	var best *ScheduledResult
	var firstErr error
	for _, v := range variants {
		res, err := core.HCA(d, mc, v.opt)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s, err := modsched.Run(res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cand := &ScheduledResult{Result: res, Schedule: s, Variant: v.name}
		if best == nil || cand.Schedule.II < best.Schedule.II ||
			(cand.Schedule.II == best.Schedule.II && cand.Recvs < best.Recvs) {
			best = cand
		}
	}
	if best == nil {
		return nil, fmt.Errorf("hca: feedback: every variant failed: %v", firstErr)
	}
	return best, nil
}
