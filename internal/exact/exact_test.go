package exact

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/pg"
	"repro/internal/see"
)

func wsAll(d *ddg.DDG) []graph.NodeID {
	ws := make([]graph.NodeID, d.Len())
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	return ws
}

func topo(k, issue, maxIn int) *pg.Topology {
	t := pg.NewTopology("t", k, issue, maxIn, 0)
	t.AllToAll()
	return t
}

// tinyDDG builds a small random DAG of two-operand adds over two
// constants — small enough for the exhaustive oracle below.
func tinyDDG(t *testing.T, seed int64, n int) *ddg.DDG {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := ddg.New(fmt.Sprintf("tiny-%d", seed))
	ids := []graph.NodeID{d.AddConst(1, "c0"), d.AddConst(2, "c1")}
	for len(ids) < n {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		op := d.AddOp(ddg.OpAdd, fmt.Sprintf("v%d", len(ids)))
		d.AddDep(a, op, 0, 0)
		d.AddDep(b, op, 1, 0)
		ids = append(ids, op)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// bruteMin exhaustively enumerates the same assignment space the solver
// explores — every cluster under the direct-pattern bound, the route
// allocator only when no direct candidate exists — and returns the
// minimum objective score, or +Inf if no complete assignment exists.
func bruteMin(f *pg.Flow, order []graph.NodeID, idx int, criteria []see.Criterion) float64 {
	if idx == len(order) {
		return see.ScoreFlow(f, criteria)
	}
	n := order[idx]
	try := func(maxHops int) (float64, bool) {
		best, any := math.Inf(1), false
		for c := 0; c < f.T.NumRegular(); c++ {
			mark := f.Checkpoint()
			f.SetMaxHops(maxHops)
			err := f.Assign(n, pg.ClusterID(c))
			f.SetMaxHops(0)
			if err != nil {
				f.Rollback(mark)
				continue
			}
			any = true
			if sub := bruteMin(f, order, idx+1, criteria); sub < best {
				best = sub
			}
			f.Rollback(mark)
		}
		return best, any
	}
	if best, any := try(1); any {
		return best
	}
	best, _ := try(0)
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, k := range []int{2, 3} {
			d := tinyDDG(t, seed, 9)
			tp := topo(k, 2, 4)
			f := pg.NewFlow(tp, d)
			ws := wsAll(d)
			cfg := see.Config{}.WithDefaults()
			order, err := see.PriorityListCached(nil, f, ws)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteMin(f.Clone(), order, 0, cfg.Criteria)

			res, err := Solve(context.Background(), f, ws, Config{See: cfg})
			label := fmt.Sprintf("seed=%d k=%d", seed, k)
			if math.IsInf(want, 1) {
				if err == nil {
					t.Errorf("%s: solver found a flow where brute force found none", label)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !res.Proved {
				t.Errorf("%s: not proved on a %d-node instance", label, len(ws))
			}
			if res.Score != want {
				t.Errorf("%s: score %v, brute force %v", label, res.Score, want)
			}
			if res.Bound != res.Score {
				t.Errorf("%s: proved bound %v != score %v", label, res.Bound, res.Score)
			}
			if res.Volatile {
				t.Errorf("%s: standalone solve marked volatile", label)
			}
			if err := res.Flow.Verify(); err != nil {
				t.Errorf("%s: result fails Verify: %v", label, err)
			}
			res.Flow.Release()
		}
	}
}

func TestSolveNeverWorseThanBeam(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		d := tinyDDG(t, 100+seed, 11)
		f := pg.NewFlow(topo(3, 2, 4), d)
		ws := wsAll(d)
		beam, berr := see.Solve(context.Background(), f, ws, see.Config{})
		res, xerr := Solve(context.Background(), f, ws, Config{})
		if berr != nil || xerr != nil {
			// The beam can dead-end where the backtracking solver does
			// not; only a solver failure alongside a beam success is
			// suspicious.
			if berr == nil && xerr != nil {
				t.Fatalf("seed %d: beam ok but exact failed: %v", seed, xerr)
			}
			continue
		}
		if res.Score > beam.Score {
			t.Errorf("seed %d: exact score %v worse than beam %v", seed, res.Score, beam.Score)
		}
		beam.Flow.Release()
		res.Flow.Release()
	}
}

func TestSolveChainZeroCopies(t *testing.T) {
	d := ddg.New("chain")
	prev := d.AddConst(1, "c")
	for i := 0; i < 6; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	f := pg.NewFlow(topo(4, 16, 8), d)
	res, err := Solve(context.Background(), f, wsAll(d), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Error("chain not proved")
	}
	if res.Flow.TotalCopies() != 0 {
		t.Errorf("optimal chain assignment has %d copies, want 0", res.Flow.TotalCopies())
	}
	res.Flow.Release()
}

func TestSolveEmptyWorkingSet(t *testing.T) {
	d := tinyDDG(t, 1, 8)
	f := pg.NewFlow(topo(2, 2, 4), d)
	res, err := Solve(context.Background(), f, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved || res.Score != 0 || res.Flow == nil {
		t.Errorf("empty ws: got score %v proved %v flow %v", res.Score, res.Proved, res.Flow != nil)
	}
	res.Flow.Release()
}

func TestSolveCancelledContext(t *testing.T) {
	d := tinyDDG(t, 2, 12)
	f := pg.NewFlow(topo(3, 2, 4), d)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, f, wsAll(d), Config{}); err != context.Canceled {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	d := tinyDDG(t, 3, 12)
	f := pg.NewFlow(topo(4, 2, 4), d)
	res, err := Solve(context.Background(), f, wsAll(d), Config{NodeBudget: 20})
	if err != nil {
		// Legal: the budget died before the first complete dive.
		return
	}
	if res.Proved {
		t.Errorf("proved with a 20-expansion budget on a 12-node instance (used %d)", res.Expansions)
	}
	if res.Flow != nil {
		if err := res.Flow.Verify(); err != nil {
			t.Errorf("unproved incumbent fails Verify: %v", err)
		}
		res.Flow.Release()
	}
}

func TestControlGraceStop(t *testing.T) {
	d := tinyDDG(t, 4, 12)
	f := pg.NewFlow(topo(4, 2, 4), d)
	ctrl := NewControl()
	ctrl.StopAfter(5)
	res, err := Solve(context.Background(), f, wsAll(d), Config{Control: ctrl})
	if err != nil {
		return // stopped before any complete assignment: also a valid outcome
	}
	if res.Proved {
		t.Error("proved under a 5-expansion grace stop")
	}
	if !res.Volatile {
		t.Error("grace-stopped result not marked volatile")
	}
	if res.Flow != nil {
		res.Flow.Release()
	}
}

func TestControlIncumbentProvesCallerOptimal(t *testing.T) {
	d := tinyDDG(t, 5, 9)
	f := pg.NewFlow(topo(3, 2, 4), d)
	ws := wsAll(d)
	// First solve to learn the true optimum.
	ref, err := Solve(context.Background(), f, ws, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Score
	ref.Flow.Release()
	// Re-solve with the optimum pre-injected: nothing strictly better
	// exists, so the solver proves the caller's incumbent unbeatable.
	ctrl := NewControl()
	ctrl.PublishIncumbent(opt)
	res, err := Solve(context.Background(), f, ws, Config{Control: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved || res.Flow != nil || res.Bound != opt {
		t.Errorf("injected-optimum solve: proved %v flow %v bound %v (want proved, nil, %v)",
			res.Proved, res.Flow != nil, res.Bound, opt)
	}
	if !res.Volatile {
		t.Error("incumbent-dependent result not marked volatile")
	}
}

func TestPublishIncumbentMonotone(t *testing.T) {
	c := NewControl()
	if got := c.Incumbent(); !math.IsInf(got, 1) {
		t.Fatalf("fresh incumbent = %v", got)
	}
	c.PublishIncumbent(10)
	c.PublishIncumbent(20) // must not raise
	if got := c.Incumbent(); got != 10 {
		t.Errorf("incumbent = %v, want 10", got)
	}
	c.PublishIncumbent(5)
	if got := c.Incumbent(); got != 5 {
		t.Errorf("incumbent = %v, want 5", got)
	}
}
