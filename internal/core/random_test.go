package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/pg"
	"repro/internal/sim"
)

// TestHCARandomizedNeverIllegal is the whole-pipeline invariant: for any
// well-formed workload and machine, HCA either returns a coherency-checked
// legal result or an error — never a silent illegal clusterization.
func TestHCARandomizedNeverIllegal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	machines := []*machine.Config{
		machine.DSPFabric64(8, 8, 8),
		machine.DSPFabric64(4, 4, 4),
		machine.DSPFabric64(8, 4, 2),
		machine.RCP(8, 2, 2),
		machine.RCP(8, 3, 3),
		machine.RCPHetero(8, 2, 3, []int{0, 2, 4, 6}),
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 18; trial++ {
		cfg := kernels.SynthConfig{
			Ops:        24 + rng.Intn(160),
			Seed:       rng.Int63(),
			RecLatency: []int{0, 3, 5}[rng.Intn(3)],
			Layers:     3 + rng.Intn(6),
			MemFrac:    0.05 + rng.Float64()*0.2,
		}
		d := kernels.Synthetic(cfg)
		mc := machines[trial%len(machines)]
		res, err := HCA(context.Background(), d, mc, Options{})
		if err != nil {
			// Infeasibility on tight machines is a legitimate outcome.
			t.Logf("trial %d (%d ops on %s): %v", trial, cfg.Ops, mc.Name, err)
			continue
		}
		if !res.Legal {
			t.Fatalf("trial %d: illegal result returned without error", trial)
		}
		for n, cn := range res.CN {
			if cn < 0 || cn >= mc.TotalCNs() {
				t.Fatalf("trial %d: node %d on CN %d", trial, n, cn)
			}
			if d.Node(graph.NodeID(n)).Op.IsMem() && !mc.MemCapable(cn) {
				t.Fatalf("trial %d: memory op on incapable CN %d", trial, cn)
			}
		}
		if err := CoherencyCheck(res); err != nil {
			t.Fatalf("trial %d: coherency: %v", trial, err)
		}
	}
}

// TestPipelineRandomizedEndToEnd drives random synthetic kernels through
// HCA, modulo scheduling and the fabric simulator, comparing against the
// sequential reference each time.
func TestPipelineRandomizedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mc := machine.DSPFabric64(8, 8, 8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		cfg := kernels.SynthConfig{
			Ops:        32 + rng.Intn(96),
			Seed:       rng.Int63(),
			RecLatency: []int{0, 3}[trial%2],
		}
		d := kernels.Synthetic(cfg)
		res, err := HCA(context.Background(), d, mc, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mem := ddg.MapMemory{}
		for a := int64(0); a < 512; a++ {
			mem[a] = rng.Int63n(1 << 16)
		}
		if _, err := sim.Check(res.Final, s, mc, mem, 12, sim.Config{}); err != nil {
			t.Fatalf("trial %d (ops=%d seed=%d): %v", trial, cfg.Ops, cfg.Seed, err)
		}
	}
}

// TestHCAPartialAssignInvariants drives per-level invariants: after HCA,
// each level's instruction partition matches its parent and the leaf
// assignment is consistent with the CN table.
func TestHCAPartialAssignInvariants(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := HCA(context.Background(), kernels.H264Deblock(), mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf solutions: node CN must equal cnIndex(path, leaf assignment).
	for _, ls := range res.Levels {
		if ls.Level != mc.NumLevels()-1 {
			continue
		}
		for c := 0; c < ls.Flow.T.NumRegular(); c++ {
			for _, n := range ls.Flow.Instructions(pg.ClusterID(c)) {
				want := cnIndex(mc, ls.Path, c)
				if res.CN[n] != want {
					t.Fatalf("node %d: CN %d != leaf-derived %d", n, res.CN[n], want)
				}
			}
		}
	}
}
