// Package core implements Hierarchical Cluster Assignment (§4), the
// paper's primary contribution: the decomposition of Instruction Cluster
// Assignment over a hierarchical reconfigurable interconnect into a tree
// of per-level subproblems.
//
// The driver starts at level 0, mapping the whole DDG onto the pattern
// graph of the outermost clusters with the Space Exploration Engine, then
// the Mapper commits the resulting copies onto the level's physical wires
// and derives one Inter Level Interface per cluster. Each cluster's
// working set — the instructions assigned to it — becomes a child
// subproblem whose pattern graph is completed with special input/output
// nodes carrying the ILI's per-wire value lists, and the process recurses
// to single-CN leaves. A post-processing pass then rebuilds the final DDG
// with explicit receive primitives and a coherency checker validates the
// whole construction (§4.1).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/mapper"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/pg"
	"repro/internal/see"
	"repro/internal/trace"
)

// Options tunes the HCA run.
type Options struct {
	SEE see.Config
	// DisableRematerialization turns off the per-cluster duplication of
	// constants and induction values (ablation): every such value is then
	// physically communicated like any other operand.
	DisableRematerialization bool
	// DisableSeeding turns off the min-cut partition seeding pass
	// (ablation): subproblems are then solved by the beam search alone.
	DisableSeeding bool
	// SchedulingAware adds the scheduling-aware cost criterion the paper
	// lists as ongoing research (§7): copies of *critical* values (small
	// scheduling slack) are penalized proportionally to their
	// criticality, keeping critical dependence chains co-located so the
	// later modulo-scheduling phase pays fewer receive latencies on the
	// II-binding paths.
	SchedulingAware bool
	// Memo optionally supplies a cross-solve subproblem memo; when nil
	// (and DisableMemo is unset) HCA creates a per-run Memo shared by its
	// two internal passes. The driver's feedback loop injects one shared
	// across its variant race, and the compilation service hoists one
	// process-wide instance across requests. Custom SEE.Criteria cannot
	// be content-addressed (they are closures), so they bypass the memo.
	Memo SubproblemMemo
	// DisableMemo turns off subproblem memoization entirely (ablation;
	// results are bit-identical either way, only the work repeats).
	DisableMemo bool
	// Engine selects the per-subproblem solver: "see" (the default beam
	// search; "" means the same), "exact" (branch-and-bound, proving
	// optimality within its node budget), or "portfolio" (both raced per
	// subproblem, first valid finisher wins). See EngineNames.
	Engine string
	// ExactBudget caps the exact engine's node expansions per attempt;
	// <= 0 selects exact.DefaultNodeBudget. Ignored by the beam engine.
	ExactBudget int64

	useSeed bool // internal: this solve uses partition seeding
	// eng is the resolved Engine, cached once per HCA run.
	eng Engine
	// ddgFP caches the DDG's sha256 content fingerprint, computed once
	// per HCA run for the memo's attempt keys.
	ddgFP string
	// crit caches the DDG criticality analysis (slack/depth), computed
	// once per HCA run and shared by every subproblem's PriorityList and
	// the scheduling-aware criterion instead of being recomputed per
	// recursive-descent node.
	crit *see.Critical
}

// Validate rejects nonsense option values with typed errors before any
// work starts; it is the single validation point above see.Config's
// (which it delegates to). HCA calls it, and the compilation service
// calls it at submission time so the daemon can answer HTTP 400.
func (o Options) Validate() error {
	if err := o.SEE.Validate(); err != nil {
		return err
	}
	if _, err := EngineByName(o.Engine); err != nil {
		return err
	}
	return nil
}

// EngineName canonicalizes the engine selection ("" → "see").
func (o Options) EngineName() string {
	if o.Engine == "" {
		return "see"
	}
	return o.Engine
}

// engine returns the resolved engine, defaulting to the beam.
func (o Options) engine() Engine {
	if o.eng != nil {
		return o.eng
	}
	return beamEngine{}
}

// engineID maps the selection onto the memo key discriminator.
func (o Options) engineID() uint8 {
	switch o.Engine {
	case "exact":
		return engineExact
	case "portfolio":
		return enginePortfolio
	default:
		return engineSee
	}
}

// LevelSolution records one solved subproblem for reports and coherency
// checking.
type LevelSolution struct {
	Level   int
	Path    []int // group indices from the root; empty for the root problem
	Flow    *pg.Flow
	Mapping *mapper.Result
	Stats   see.Stats
}

// ID returns the paper's subproblem label, e.g. "0", "0,2", "0,2,1".
func (ls *LevelSolution) ID() string {
	parts := []string{"0"}
	for _, p := range ls.Path {
		parts = append(parts, fmt.Sprint(p))
	}
	return strings.Join(parts, ",")
}

// MII groups the initiation-interval figures Table 1 reports.
//
// Final follows the paper's §4.2 definition exactly: the maximum of the
// level-0 MII and the per-cluster MIIs of PG_0 including their copy
// pressure — a lower bound for the later modulo-scheduling phase, which
// is what Table 1's "Final MII" column lists. AllLevels is this
// reproduction's stricter extension: it folds in every deeper level's
// cluster and wire pressure plus the machine-wide DMA bound.
type MII struct {
	Rec       int // recurrence bound of the DDG (MIIRec)
	Res       int // resource bound on the unified equivalent machine (MIIRes)
	Final     int // paper's Table-1 figure: max(iniMII, maxClsMII) over PG_0
	AllLevels int // max over every level's cluster and wire pressure + DMA
}

// Result is a complete hierarchical clusterization.
type Result struct {
	Machine *machine.Config
	DDG     *ddg.DDG
	// CN maps every DDG node to its computation node (0..TotalCNs-1).
	CN []int
	// Final is the post-processed DDG with receive primitives inserted;
	// FinalCN maps its nodes (originals plus receives) to CNs.
	Final   *ddg.DDG
	FinalCN []int
	// Recvs counts inserted receive primitives.
	Recvs  int
	Levels []*LevelSolution
	Stats  see.Stats
	MII    MII
	// Legal is set after the coherency checker passes.
	Legal bool
	// Remat records whether constant/IV rematerialization was enabled.
	Remat bool
	// Engine is the configured engine selection ("see"/"exact"/
	// "portfolio"); EngineWins counts, per engine, how many subproblems
	// it won ("seed" counts the min-cut partition seed beating every
	// engine attempt).
	Engine     string
	EngineWins map[string]int
	// Optimality aggregates the exact engine's per-subproblem proofs.
	Optimality Optimality

	mu sync.Mutex // guards Levels, Stats and engine accounting during
	// parallel solves
}

// Optimality aggregates per-subproblem optimality certificates: when
// every subproblem's winning attempt carries a proved lower bound, the
// whole clusterization's objective is provably within Gap of optimal.
type Optimality struct {
	// Subproblems counts solved subproblems; Proved counts those whose
	// winning flow carries an exact-engine optimality certificate.
	Subproblems int `json:"subproblems"`
	Proved      int `json:"proved"`
	// ScoreSum/BoundSum accumulate the proved subproblems' achieved
	// objective scores and proved lower bounds.
	ScoreSum float64 `json:"score_sum"`
	BoundSum float64 `json:"bound_sum"`
}

// Gap returns the relative optimality gap (ScoreSum-BoundSum)/BoundSum.
// It is only defined when every subproblem carries a proof; ok reports
// that. A proved-optimal run returns (0, true).
func (o Optimality) Gap() (gap float64, ok bool) {
	if o.Subproblems == 0 || o.Proved != o.Subproblems || o.BoundSum <= 0 {
		return 0, false
	}
	return (o.ScoreSum - o.BoundSum) / o.BoundSum, true
}

func (r *Result) addLevel(ls *LevelSolution) {
	r.mu.Lock()
	r.Levels = append(r.Levels, ls)
	r.mu.Unlock()
}

func (r *Result) addStats(s see.Stats) {
	r.mu.Lock()
	r.Stats.Add(s)
	r.mu.Unlock()
}

// noteWin records which engine's attempt won one subproblem and, when
// the winner carries an exact-engine certificate, folds its score and
// proved bound into the run's optimality aggregate.
func (r *Result) noteWin(engine string, proved bool, score, bound float64) {
	r.mu.Lock()
	if r.EngineWins == nil {
		r.EngineWins = make(map[string]int)
	}
	r.EngineWins[engine]++
	r.Optimality.Subproblems++
	if proved {
		r.Optimality.Proved++
		r.Optimality.ScoreSum += score
		r.Optimality.BoundSum += bound
	}
	r.mu.Unlock()
}

// HCA clusterizes d onto mc hierarchically and returns the complete
// result. The input DDG must Validate.
//
// HCA is the canonical context-first entry point: ctx is threaded
// through the recursive descent into every subproblem's beam search, so
// a cancelled or expired context aborts the whole run promptly (within
// one beam-frontier expansion) and returns ctx.Err(). Long-running
// callers — the compilation service in particular — use it to stop
// abandoned requests from burning workers. A trace.Recorder installed
// in ctx receives one span per level-tree subproblem (named by its
// LevelSolution.ID() path) plus the mapper, seeding and scheduling
// phases.
//
// Two complete solves run internally — one seeding every subproblem with
// a min-cut partition (Chu-style, §6), one pure beam search — and the
// better whole-hierarchy result (smaller all-levels MII, then fewer
// receive primitives) is returned. DisableSeeding skips the first.
func HCA(ctx context.Context, d *ddg.DDG, mc *machine.Config, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("hca: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("hca: %w", err)
	}
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("hca: %w", err)
	}
	ctx, sp := trace.Start(ctx, "hca")
	defer sp.End()
	sp.SetStr("kernel", d.Name)
	sp.SetStr("machine", mc.Name)
	crit, err := see.AnalyzeDDG(d)
	if err != nil {
		return nil, fmt.Errorf("hca: %w", err)
	}
	opt.crit = crit
	eng, err := engineFor(opt.Engine, opt.ExactBudget)
	if err != nil {
		return nil, fmt.Errorf("hca: %w", err) // unreachable past Validate
	}
	opt.eng = eng
	sp.SetStr("engine", opt.EngineName())
	switch {
	case opt.DisableMemo || opt.SEE.Criteria != nil:
		// Custom criteria are closures — no content address, no sharing.
		opt.Memo = nil
	case opt.Memo == nil:
		opt.Memo = NewMemo(0) // per-run, shared by both passes below
	}
	if opt.Memo != nil {
		opt.ddgFP = d.Fingerprint()
	}
	pure, perr := hcaOnce(ctx, d, mc, opt, false)
	if !opt.DisableSeeding {
		seeded, serr := hcaOnce(ctx, d, mc, opt, true)
		switch {
		case serr == nil && perr != nil:
			sp.SetStr("winner", "seeded")
			return seeded, nil
		case serr == nil && perr == nil && betterResult(seeded, pure):
			sp.SetStr("winner", "seeded")
			return seeded, nil
		}
	}
	if perr == nil {
		sp.SetStr("winner", "pure")
	}
	return pure, perr
}

// betterResult compares two complete clusterizations globally.
func betterResult(a, b *Result) bool {
	if a.MII.AllLevels != b.MII.AllLevels {
		return a.MII.AllLevels < b.MII.AllLevels
	}
	if a.Recvs != b.Recvs {
		return a.Recvs < b.Recvs
	}
	return a.MII.Final < b.MII.Final
}

func hcaOnce(ctx context.Context, d *ddg.DDG, mc *machine.Config, opt Options, useSeed bool) (*Result, error) {
	opt.useSeed = useSeed
	name := "hca.pure"
	if useSeed {
		name = "hca.seeded"
	}
	ctx, sp := trace.Start(ctx, name)
	defer sp.End()
	res := &Result{
		Machine: mc,
		DDG:     d,
		CN:      make([]int, d.Len()),
		Remat:   !opt.DisableRematerialization,
		Engine:  opt.EngineName(),
	}
	for i := range res.CN {
		res.CN[i] = -1
	}
	res.MII.Rec = d.MIIRec()
	res.MII.Res = d.MIIRes(ddg.Resources{IssueSlots: mc.TotalCNs(), DMAPorts: mc.DMAPorts})

	ws := make([]graph.NodeID, d.Len())
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	if err := solveLevel(ctx, res, d, mc, opt, 0, nil, ws, nil); err != nil {
		return nil, err
	}

	// Every instruction must have reached a computation node.
	for n, cn := range res.CN {
		if cn < 0 || cn >= mc.TotalCNs() {
			return nil, fmt.Errorf("hca: instruction %d ended on invalid CN %d", n, cn)
		}
	}

	sort.Slice(res.Levels, func(i, j int) bool { return lessPath(res.Levels[i].Path, res.Levels[j].Path) })
	res.computeMII()
	_, psp := trace.Start(ctx, "postprocess")
	postProcess(res)
	psp.SetInt("receives", int64(res.Recvs))
	psp.End()
	_, csp := trace.Start(ctx, "coherency")
	cerr := CoherencyCheck(res)
	csp.End()
	if cerr != nil {
		return nil, fmt.Errorf("hca: coherency: %w", cerr)
	}
	res.Legal = true
	sp.SetInt("final_mii", int64(res.MII.Final))
	sp.SetInt("all_levels_mii", int64(res.MII.AllLevels))
	sp.SetInt("receives", int64(res.Recvs))
	return res, nil
}

// levelParams returns the pattern-graph in-neighbor bound and the mapper
// wire counts of one level (§4.1):
//
//   - the outermost level uses the switch capacity N;
//   - a middle level uses min of its own MUX capacity and the next
//     level's external input capacity (a subgroup's in-wires all funnel
//     into its child's crossbar);
//   - the leaf level uses the computation-node port budget.
func levelParams(mc *machine.Config, level int) (maxIn, outWires, inWires int) {
	last := mc.NumLevels() - 1
	if mc.NumLevels() == 1 {
		return mc.Levels[0].InWires, mc.Levels[0].OutWires, mc.Levels[0].InWires
	}
	if level == last {
		return mc.CNInPorts, mc.CNOutPorts, mc.CNInPorts
	}
	in := mc.Levels[level].InWires
	if level > 0 {
		if nxt := mc.Levels[level+1].InWires; nxt < in {
			in = nxt
		}
	}
	if level == last-1 {
		// The wires entering a group here become the external inputs of a
		// leaf crossbar over Groups CNs with CNInPorts input ports each.
		// Reserving one port per CN for internal forwarding keeps every
		// leaf subproblem topologically solvable (a forwarding ring plus
		// one external listener per CN).
		if cap := mc.Levels[last].Groups * (mc.CNInPorts - 1); cap < in {
			in = cap
		}
	}
	return in, mc.Levels[level].OutWires, in
}

// buildTopology constructs the pattern graph of one subproblem: the
// level's sibling groups (ring-restricted for RCP at level 0, otherwise
// fully connected through the MUXes) plus the ILI's special nodes.
func buildTopology(mc *machine.Config, level int, path []int, ili *mapper.ILI) *pg.Topology {
	maxIn, _, _ := levelParams(mc, level)
	groups := mc.Levels[level].Groups
	name := fmt.Sprintf("%s-l%d-%v", mc.Name, level, path)
	t := pg.NewTopology(name, groups, mc.CNsPerGroup(level), maxIn, 0)
	if mc.MemCNs != nil {
		// Heterogeneous machine (§2.1): each cluster's memory capacity is
		// the number of memory-capable CNs it embraces.
		base := 0
		for l, p := range path {
			base += p * mc.CNsPerGroup(l)
		}
		sz := mc.CNsPerGroup(level)
		for g := 0; g < groups; g++ {
			mem := 0
			for cn := base + g*sz; cn < base+(g+1)*sz; cn++ {
				if mc.MemCapable(cn) {
					mem++
				}
			}
			t.SetMemSlots(pg.ClusterID(g), mem)
		}
	}
	if (mc.Ring || mc.Linear) && level == 0 {
		for a := 0; a < groups; a++ {
			for b := 0; b < groups; b++ {
				if a != b && mc.Connected(b, a) {
					t.SetPotential(pg.ClusterID(a), pg.ClusterID(b), true)
				}
			}
		}
	} else {
		t.AllToAll()
	}
	if ili != nil {
		for _, vals := range ili.Inputs {
			t.AddInputNode(vals)
		}
		for _, vals := range ili.Outputs {
			t.AddOutputNode(vals)
		}
	}
	return t
}

// solveLevel solves one subproblem and recurses into its children.
func solveLevel(ctx context.Context, res *Result, d *ddg.DDG, mc *machine.Config, opt Options,
	level int, path []int, ws []graph.NodeID, ili *mapper.ILI) error {

	if err := ctx.Err(); err != nil {
		return err
	}

	// One span per level-tree subproblem, named by its LevelSolution.ID()
	// path; children nest inside it, so the exported trace reproduces the
	// recursive-descent tree. The "phase" attribute groups the summary
	// table per hierarchy level.
	ctx, sp := trace.Start(ctx, "subproblem "+pathString(path))
	defer sp.End()
	sp.SetStr("phase", fmt.Sprintf("subproblem L%d", level))
	sp.SetInt("level", int64(level))
	sp.SetInt("instructions", int64(len(ws)))
	if ili != nil {
		sp.SetInt("ili_in_wires", int64(len(ili.Inputs)))
		sp.SetInt("ili_out_wires", int64(len(ili.Outputs)))
	}
	trace.Count(ctx, "hca.subproblems", 1)

	// The leaf's external wire budget caps the inherited input nodes.
	if ili != nil && level == mc.NumLevels()-1 && len(ili.Inputs) > mc.Levels[level].InWires {
		return fmt.Errorf("hca: subproblem %v: %d input wires exceed crossbar capacity %d",
			path, len(ili.Inputs), mc.Levels[level].InWires)
	}

	t := buildTopology(mc, level, path, ili)
	flow := pg.NewFlow(t, d)
	flow.MIIRecStatic = res.MII.Rec
	if !opt.DisableRematerialization {
		for i := range d.Nodes {
			if op := d.Nodes[i].Op; op == ddg.OpConst || op == ddg.OpIV {
				flow.MarkUbiquitous(d.Nodes[i].ID)
			}
		}
	}

	// Retry ladder: if the configured search dead-ends (every beam state
	// exhausted its communication ports — the impasse of §3), rerun with
	// progressively more port-frugal cost functions and wider beams, and
	// finally with a pre-reserved forwarding ring among the clusters,
	// which keeps every value multi-hop routable no matter how the search
	// commits the remaining ports. The tight two-input-port computation
	// nodes make this essential at the leaf level.
	seeCfg := opt.SEE
	seeCfg.Crit = opt.crit
	if opt.SchedulingAware {
		seeCfg = withCriticalCopyCriterion(seeCfg, d, opt.crit)
	}
	ladder := retryLadder(seeCfg)
	var best attemptOutcome
	var bestEntry *MemoEntry
	var err error
	for i, cfg := range append(ladder, ladder[1:]...) {
		if best.flow != nil {
			break
		}
		start := flow
		rung, ring := i, false
		if i >= len(ladder) {
			rung, ring = i-len(ladder)+1, true
			start = flow.Clone()
			if rerr := reserveRing(start); rerr != nil {
				break
			}
		}
		// Each attempt runs behind the subproblem memo: a verified hit
		// returns the committed solution without re-running the beam
		// search (and, via the entry, without re-running the mapper).
		var key AttemptKey
		if opt.Memo != nil {
			key = attemptKeyFor(opt, start, ws, cfg, rung, ring)
		}
		out, entry := solveAttempt(ctx, opt, key, start, ws, cfg)
		if ring {
			// The ring-reserved start clone is consumed by the attempt
			// (results are materialized copies, and the memo retains
			// only the topology); retire it to the pg slabs.
			start.Release()
		}
		if out.err != nil {
			err = out.err
			continue
		}
		best, bestEntry = out, entry
	}
	// A min-cut partition seed (Chu-style multilevel, §6) competes with
	// the beam solution at every subproblem; the flow with the lower
	// estimated MII (then fewer copies) wins.
	if opt.useSeed {
		if seed := partitionSeed(ctx, flow, ws, opt.crit); seed != nil {
			if best.flow == nil || betterFlow(seed, best.flow) {
				// The seed carries no optimality certificate: winning on
				// the MII-first tiebreak does not bound the objective.
				best = attemptOutcome{flow: seed, engine: "seed"}
				bestEntry = nil
				sp.SetBool("seed_won", true)
			} else {
				seed.Release()
			}
		}
	}
	if best.flow == nil {
		// Cancellation surfaces unwrapped so callers can match it with
		// errors.Is(err, context.Canceled / DeadlineExceeded).
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("hca: subproblem %s: %w", pathString(path), err)
	}
	if best.flow != flow {
		// The pristine start flow never wins the ladder (attempt results
		// and partition seeds are materialized clones), so its arrays go
		// back to the pg slabs here instead of through the GC.
		flow.Release()
	}
	flow = best.flow
	res.addStats(best.stats)
	winner := best.engine
	if winner == "" {
		winner = "see" // legacy/fallback paths default to the beam
	}
	res.noteWin(winner, best.proved, best.score, best.bound)
	sp.SetStr("winner_engine", winner)
	if best.proved {
		sp.SetBool("proved", true)
	}
	if err := flow.Verify(); err != nil {
		return fmt.Errorf("hca: subproblem %s: %w", pathString(path), err)
	}

	_, outW, inW := levelParams(mc, level)
	var mapping *mapper.Result
	if bestEntry != nil {
		mapping = bestEntry.Mapping(outW, inW)
	}
	if mapping == nil {
		m, merr := mapper.Map(ctx, flow, outW, inW)
		if merr != nil {
			return fmt.Errorf("hca: subproblem %s: %w", pathString(path), merr)
		}
		mapping = m
		if bestEntry != nil {
			bestEntry.AttachMapping(outW, inW, mapping)
		}
	}
	if err := mapping.Verify(flow, outW, inW); err != nil {
		return fmt.Errorf("hca: subproblem %s: %w", pathString(path), err)
	}
	sp.SetInt("mii", int64(flow.EstimateMII()))
	sp.SetInt("copies", int64(flow.TotalCopies()))
	sp.SetInt("wires", int64(len(mapping.Wires)))
	sp.SetInt("wire_load", int64(mapping.MaxWireLoad))
	sp.SetInt("pollution", int64(mapping.Pollution))

	ls := &LevelSolution{Level: level, Path: append([]int(nil), path...), Flow: flow, Mapping: mapping, Stats: best.stats}
	res.addLevel(ls)

	if level == mc.NumLevels()-1 {
		// Leaf: groups are computation nodes.
		for _, n := range ws {
			g := int(flow.Assignment(n))
			res.CN[n] = cnIndex(mc, path, g)
		}
		return nil
	}

	// Child subproblems are independent (§4.1's decomposition): solve the
	// siblings in parallel. Each child writes disjoint res.CN entries and
	// appends levels/stats under the Result mutex; Levels are re-sorted
	// into hierarchy order at the end of HCA.
	ilis := mapping.ILIs(flow)
	type child struct {
		path []int
		ws   []graph.NodeID
		ili  *mapper.ILI
	}
	var children []child
	for g := 0; g < mc.Levels[level].Groups; g++ {
		childWS := flow.Instructions(pg.ClusterID(g))
		childILI := ilis[pg.ClusterID(g)]
		if len(childWS) == 0 && (childILI == nil || len(childILI.Outputs) == 0) {
			// Nothing assigned and nothing to forward: skip the subtree.
			continue
		}
		if childILI == nil {
			childILI = &mapper.ILI{Cluster: pg.ClusterID(g)}
		}
		children = append(children, child{
			path: append(append([]int{}, path...), g),
			ws:   childWS,
			ili:  childILI,
		})
	}
	errs := make([]error, len(children))
	par.ForEach(len(children), func(i int) {
		c := children[i]
		errs[i] = solveLevel(ctx, res, d, mc, opt, level+1, c.path, c.ws, c.ili)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// partitionSeed builds a complete flow by assigning the working set
// along a balanced min-cut partition (with the communication backbone
// pre-reserved so routing cannot dead-end), or nil if the partition is
// unroutable. It gives the driver a communication-minimal alternative to
// the greedy beam solution. Every speculative Assign runs under a
// journal checkpoint: a failed placement is rolled back before the
// repair pass tries other clusters, so half-committed routes of the
// failed attempt never leak into the seed.
func partitionSeed(ctx context.Context, base *pg.Flow, ws []graph.NodeID, crit *see.Critical) *pg.Flow {
	if len(ws) == 0 {
		return nil
	}
	_, sp := trace.Start(ctx, "partition.seed")
	defer sp.End()
	sp.SetInt("instructions", int64(len(ws)))
	trace.Count(ctx, "partition.seeds", 1)
	k := base.T.NumRegular()
	cap := (len(ws)+k-1)/k + 1 + len(ws)/(4*k)
	parts := partition.Assign(base.D, ws, k, cap)
	order, err := see.PriorityListCached(crit, base, ws)
	if err != nil {
		return nil
	}
	f := base.Clone()
	if err := reserveRing(f); err != nil {
		return nil
	}
	for _, n := range order {
		target := pg.ClusterID(parts[n])
		mark := f.Checkpoint()
		if err := f.Assign(n, target); err != nil {
			f.Rollback(mark)
			// Repair: try the remaining clusters by increasing load.
			placed := false
			for _, c := range clustersByLoad(f) {
				if c == target {
					continue
				}
				if err := f.Assign(n, c); err == nil {
					placed = true
					break
				}
				f.Rollback(mark)
			}
			if !placed {
				f.Release()
				return nil
			}
		}
	}
	f.DropJournal()
	for _, o := range f.T.OutputNodes() {
		for _, v := range f.T.Cluster(o).Carries {
			if !f.Available(v, o) {
				if err := f.Route(v, o); err != nil {
					f.Release()
					return nil
				}
			}
		}
	}
	if err := f.Verify(); err != nil {
		f.Release()
		return nil
	}
	return f
}

func clustersByLoad(f *pg.Flow) []pg.ClusterID {
	out := make([]pg.ClusterID, f.T.NumRegular())
	for i := range out {
		out[i] = pg.ClusterID(i)
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := f.Load(out[i]), f.Load(out[j])
		if li != lj {
			return li < lj
		}
		return out[i] < out[j]
	})
	return out
}

// betterFlow orders two complete flows by solution quality: smaller
// estimated MII first, then fewer copies.
func betterFlow(a, b *pg.Flow) bool {
	am, bm := a.EstimateMII(), b.EstimateMII()
	if am != bm {
		return am < bm
	}
	return a.TotalCopies() < b.TotalCopies()
}

// withCriticalCopyCriterion appends a cost term that charges each copied
// value by its criticality 1/(1+slack): moving a zero-slack value across
// clusters delays the critical path by the copy latency, which directly
// inflates the achievable II after scheduling. The slack array comes
// from the per-run criticality cache when available.
func withCriticalCopyCriterion(cfg see.Config, d *ddg.DDG, crit *see.Critical) see.Config {
	var slack []int
	if crit != nil {
		slack = crit.Slack
	} else {
		var err error
		slack, err = d.G.Slack()
		if err != nil {
			return cfg // invalid DDGs are rejected later by Validate
		}
	}
	criteria := cfg.Criteria
	if criteria == nil {
		criteria = see.DefaultCriteria()
	}
	criteria = append(append([]see.Criterion(nil), criteria...), see.Criterion{
		Name: "critical-copies", Weight: 120,
		Eval: func(f *pg.Flow) float64 {
			score := 0.0
			f.ForEachCopy(func(from, to pg.ClusterID, v pg.ValueID) {
				score += 1.0 / float64(1+slack[v])
			})
			return score
		},
	})
	cfg.Criteria = criteria
	return cfg
}

// retryLadder returns the SEE configurations to attempt in order: the
// caller's own, then port-frugal variants that treat input-port
// consumption as nearly as costly as the II itself, with wider beams.
func retryLadder(base see.Config) []see.Config {
	portHeavy := func(weight float64, beam, cand int) see.Config {
		cfg := base
		cfg.BeamWidth, cfg.CandWidth = beam, cand
		crit := append([]see.Criterion(nil), see.DefaultCriteria()...)
		crit = append(crit, see.Criterion{
			Name: "port-frugal", Weight: weight, Kind: see.CritPorts,
		})
		cfg.Criteria = crit
		return cfg
	}
	return []see.Config{
		base,
		portHeavy(200, 16, 4),
		portHeavy(600, 32, 8),
	}
}

// reserveRing pre-commits a communication backbone: the unidirectional
// forwarding ring 0→1→…→k-1→0 among the regular clusters, plus one
// listener per input node (round-robin). With the backbone in place every
// value — internal or arriving on an inter-level wire — stays multi-hop
// routable to every cluster no matter how the search commits the
// remaining ports.
func reserveRing(f *pg.Flow) error {
	k := f.T.NumRegular()
	for c := 0; c < k; c++ {
		if err := f.ReserveArc(pg.ClusterID(c), pg.ClusterID((c+1)%k)); err != nil {
			return err
		}
	}
	for i, in := range f.T.InputNodes() {
		if err := f.ReserveArc(in, pg.ClusterID(i%k)); err != nil {
			return err
		}
	}
	return nil
}

// RootTopology returns the machine's level-0 pattern-graph topology
// exactly as the HCA descent's root subproblem sees it (no ILI special
// nodes). The DSE sweep (internal/dse) fingerprints it to collapse
// fabrics whose neighborhood parameters differ but whose potential-
// connection structure does not — e.g. an RCP ring whose neighborhood
// already reaches every cluster is the same fabric as one with a wider
// ring, and solves identically.
func RootTopology(mc *machine.Config) *pg.Topology {
	return buildTopology(mc, 0, nil, nil)
}

// cnIndex converts a root-to-leaf group path plus the leaf group index
// into a global computation-node number.
func cnIndex(mc *machine.Config, path []int, leafGroup int) int {
	idx := 0
	for l, p := range path {
		idx += p * mc.CNsPerGroup(l)
	}
	return idx + leafGroup
}

// lessPath orders subproblems in depth-first hierarchy order.
func lessPath(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func pathString(path []int) string {
	parts := []string{"0"}
	for _, p := range path {
		parts = append(parts, fmt.Sprint(p))
	}
	return strings.Join(parts, ",")
}

// computeMII fills in the initiation-interval report (§4.2): Final is
// the level-0 figure the paper tabulates; AllLevels additionally folds in
// every deeper level's cluster pressure, every wire load, and the
// machine-wide DMA bound.
func (r *Result) computeMII() {
	r.MII.Final = r.MII.Rec
	r.MII.AllLevels = r.MII.Rec
	s := r.DDG.Stats()
	if r.Machine.DMAPorts > 0 {
		if m := (s.MemOps + r.Machine.DMAPorts - 1) / r.Machine.DMAPorts; m > r.MII.AllLevels {
			r.MII.AllLevels = m
		}
	}
	for _, ls := range r.Levels {
		m := ls.Flow.EstimateMII()
		if ls.Level == 0 && m > r.MII.Final {
			r.MII.Final = m
		}
		if m > r.MII.AllLevels {
			r.MII.AllLevels = m
		}
		if ls.Mapping.MaxWireLoad > r.MII.AllLevels {
			r.MII.AllLevels = ls.Mapping.MaxWireLoad
		}
	}
	if r.MII.Final > r.MII.AllLevels {
		r.MII.AllLevels = r.MII.Final
	}
}

// postProcess builds the final DDG (§4.1): a copy of the input DDG where
// every inter-CN dependence goes through an explicit receive primitive on
// the consumer's CN, with latency equal to the number of hierarchy levels
// the copy crosses.
func postProcess(r *Result) {
	final := r.DDG.Clone()
	finalCN := make([]int, final.Len())
	copy(finalCN, r.CN)

	// One receive per (producer, consumer CN).
	type key struct {
		v  graph.NodeID
		cn int
	}
	recvs := map[key]graph.NodeID{}
	type rewire struct {
		e    graph.EdgeID
		from graph.NodeID
	}
	var rewires []rewire
	r.DDG.G.Edges(func(e graph.Edge) {
		pcn, ccn := r.CN[e.From], r.CN[e.To]
		if pcn == ccn {
			return
		}
		if op := r.DDG.Node(e.From).Op; r.Remat && (op == ddg.OpConst || op == ddg.OpIV) {
			// Rematerialized at the consumer's cluster: no migration.
			return
		}
		k := key{e.From, ccn}
		rv, ok := recvs[k]
		if !ok {
			lat := copyLatency(r.Machine, pcn, ccn)
			rv = final.AddOpLatency(ddg.OpRecv, fmt.Sprintf("rcv_%s@%d", r.DDG.Node(e.From).Name, ccn), lat)
			final.AddDep(e.From, rv, 0, 0)
			finalCN = append(finalCN, ccn)
			recvs[k] = rv
			r.Recvs++
		}
		rewires = append(rewires, rewire{e.ID, rv})
	})
	// Re-point crossing edges at their receive node, preserving port and
	// distance. (Edge weights become the receive's latency.)
	for _, rw := range rewires {
		e := final.G.Edge(rw.e)
		port := final.Port(rw.e)
		final.G.RemoveEdge(rw.e)
		final.AddDep(rw.from, e.To, port, e.Distance)
	}
	r.Final = final
	r.FinalCN = finalCN
}

// copyLatency models operand migration cost: one cycle per hierarchy
// level the copy must climb to reach the consumer (CNs sharing a leaf
// crossbar exchange in 1 cycle; crossing the level-0 switch costs the
// full depth).
func copyLatency(mc *machine.Config, a, b int) int {
	if a == b {
		return 0
	}
	for l := 0; l < mc.NumLevels(); l++ {
		sz := mc.CNsPerGroup(l)
		if a/sz != b/sz {
			return mc.NumLevels() - l
		}
		a %= sz
		b %= sz
	}
	return 1
}

// CoherencyCheck is the paper's final validator: it re-verifies every
// level's flow and mapping, checks that child working sets exactly match
// the parent's assignment, that every inter-level value crossing appears
// in the parent's copy flow, and that the final DDG's receive placement
// is consistent with the CN assignment.
func CoherencyCheck(r *Result) error {
	byID := map[string]*LevelSolution{}
	for _, ls := range r.Levels {
		byID[ls.ID()] = ls
		if err := ls.Flow.Verify(); err != nil {
			return fmt.Errorf("level %s: %w", ls.ID(), err)
		}
	}
	// The CN table must agree with the leaf solutions (the table is
	// derived from them; any tampering or bookkeeping bug shows up here).
	for _, ls := range r.Levels {
		if ls.Level != r.Machine.NumLevels()-1 {
			continue
		}
		for c := 0; c < ls.Flow.T.NumRegular(); c++ {
			for _, n := range ls.Flow.Instructions(pg.ClusterID(c)) {
				if want := cnIndex(r.Machine, ls.Path, c); r.CN[n] != want {
					return fmt.Errorf("level %s: node %d on CN %d, leaf solution says %d", ls.ID(), n, r.CN[n], want)
				}
			}
		}
	}
	// Parent/child working-set consistency.
	for _, ls := range r.Levels {
		if ls.Level == 0 {
			continue
		}
		parentID := (&LevelSolution{Path: ls.Path[:len(ls.Path)-1]}).ID()
		parent := byID[parentID]
		if parent == nil {
			return fmt.Errorf("level %s: missing parent %s", ls.ID(), parentID)
		}
		g := pg.ClusterID(ls.Path[len(ls.Path)-1])
		want := parent.Flow.Instructions(g)
		got := assignedNodes(ls.Flow)
		if !sameNodeSet(want, got) {
			return fmt.Errorf("level %s: working set %v != parent assignment %v", ls.ID(), got, want)
		}
	}
	// Every cross-CN dependence must cross coherently at the level where
	// the two paths diverge: the parent flow there must deliver the value
	// to the consumer's group.
	var err error
	r.DDG.G.Edges(func(e graph.Edge) {
		if err != nil {
			return
		}
		pcn, ccn := r.CN[e.From], r.CN[e.To]
		if pcn == ccn {
			return
		}
		if op := r.DDG.Node(e.From).Op; r.Remat && (op == ddg.OpConst || op == ddg.OpIV) {
			return // rematerialized everywhere
		}
		path := []int{}
		a, b := pcn, ccn
		for l := 0; l < r.Machine.NumLevels(); l++ {
			sz := r.Machine.CNsPerGroup(l)
			ga, gb := a/sz, b/sz
			ls := byID[(&LevelSolution{Path: path}).ID()]
			if ls == nil {
				err = fmt.Errorf("missing level solution for path %v", path)
				return
			}
			if ga != gb {
				if !ls.Flow.Available(e.From, pg.ClusterID(gb)) {
					err = fmt.Errorf("value %d (for %d) never delivered to group %d at level %s",
						e.From, e.To, gb, ls.ID())
				}
				return
			}
			path = append(path, ga)
			a, b = a%sz, b%sz
		}
	})
	if err != nil {
		return err
	}
	// Final-DDG receive placement.
	if r.Final != nil {
		for n := r.DDG.Len(); n < r.Final.Len(); n++ {
			if r.Final.Node(graph.NodeID(n)).Op != ddg.OpRecv {
				return fmt.Errorf("post-processed node %d is not a receive", n)
			}
		}
		if err := r.Final.Validate(); err != nil {
			return fmt.Errorf("final DDG: %w", err)
		}
	}
	return nil
}

func assignedNodes(f *pg.Flow) []graph.NodeID {
	var out []graph.NodeID
	for c := 0; c < f.T.NumRegular(); c++ {
		out = append(out, f.Instructions(pg.ClusterID(c))...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameNodeSet(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]graph.NodeID(nil), a...)
	bs := append([]graph.NodeID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
