package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/machine"
)

// A context that is already cancelled must abort the run before any
// subproblem is solved.
func TestHCAContextPreCancelled(t *testing.T) {
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 64, Seed: 1, RecLatency: 3})
	mc := machine.DSPFabric64(8, 8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := HCA(ctx, d, mc, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// Cancelling mid-flight stops the descent early: a 2048-op synthetic DDG
// takes ~500ms end to end, so a cancel shortly after launch must surface
// context.Canceled (a nil error would mean the run completed anyway).
func TestHCAContextCancelAbortsEarly(t *testing.T) {
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 2048, Seed: 3, RecLatency: 3})
	mc := machine.DSPFabric64(8, 8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := HCA(ctx, d, mc, Options{})
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not abort after cancellation")
	}
	t.Logf("aborted after %v", time.Since(start))
}

// An expired deadline behaves like a cancel and reports DeadlineExceeded.
func TestHCAContextDeadline(t *testing.T) {
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 2048, Seed: 3, RecLatency: 3})
	mc := machine.DSPFabric64(8, 8, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := HCA(ctx, d, mc, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
