package core

import (
	"context"
	"math"
	"strings"
	"sync/atomic"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/pg"
	"repro/internal/see"
)

// The engine abstraction: the HCA descent solves every per-level ICA
// subproblem through a pluggable Engine instead of a hard-wired beam
// search. The registry holds three:
//
//	see        the SEE beam search (§3), the paper's heuristic
//	exact      branch-and-bound over the same assignment space
//	           (internal/exact), proving optimality when its node
//	           budget suffices
//	portfolio  both raced per subproblem: first valid finisher wins,
//	           the loser is cancelled (beam: at chunk granularity via
//	           the par machinery; exact: at a node-count grace), and
//	           the beam's score is injected into the exact solver's
//	           pruning bound the moment the beam leg finishes
//
// Engine.Solve has the beam engine's contract: assign every node of ws
// onto start's topology, return the best complete flow with its
// objective score. Pass-through routing of ILI values stays in the
// core attempt layer above (runAttempt), identically for every engine.

// Engine discriminator values for AttemptKey.Engine. The memo must
// never replay one engine's result into another engine's attempt —
// most acutely, a relaxed exact result into a strict-mode beam solve —
// so the key carries the engine identity.
const (
	engineSee uint8 = iota
	engineExact
	enginePortfolio

	numEngines // count of discriminator values, for per-engine counters
)

// engineTag maps a discriminator back onto its registry name, for
// observability surfaces (per-engine memo stats).
func engineTag(e uint8) string {
	switch e {
	case engineExact:
		return "exact"
	case enginePortfolio:
		return "portfolio"
	default:
		return "see"
	}
}

// EngineResult is one engine's solution for one subproblem.
type EngineResult struct {
	// Flow is the committed solution (caller-owned). The portfolio race
	// can leave it nil when the exact leg proved the beam's own result
	// unbeatable and the beam leg errored away — callers treat nil as
	// "no flow produced".
	Flow  *pg.Flow
	Score float64
	Stats see.Stats
	// Proved reports a completed exact search: Bound is a true lower
	// bound over the subproblem's assignment space, and Score == Bound
	// when Flow is the engine's own optimum.
	Proved bool
	Bound  float64
	// Volatile marks a result that depended on cross-engine racing and
	// must not enter content-addressed caches.
	Volatile bool
	// Winner names the engine that produced Flow; for the portfolio it
	// is the winning leg ("see" or "exact").
	Winner string
}

// Engine solves one per-level ICA subproblem. Implementations must be
// safe for concurrent use: the descent solves sibling subproblems in
// parallel through one Engine value.
type Engine interface {
	Name() string
	Solve(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg see.Config) (*EngineResult, error)
}

// EngineNames lists the registered engines in stable order.
func EngineNames() []string { return []string{"see", "exact", "portfolio"} }

// EngineByName resolves an engine name ("" selects the beam default)
// with default tuning; unknown names return a typed *see.OptionError,
// which the compilation daemon maps to HTTP 400.
func EngineByName(name string) (Engine, error) { return engineFor(name, 0) }

// engineFor resolves an engine name with an explicit exact-node budget
// (<= 0 selects exact.DefaultNodeBudget).
func engineFor(name string, exactBudget int64) (Engine, error) {
	switch name {
	case "", "see":
		return beamEngine{}, nil
	case "exact":
		return exactEngine{budget: exactBudget}, nil
	case "portfolio":
		return &portfolioEngine{budget: exactBudget}, nil
	}
	return nil, &see.OptionError{
		Field: "engine", Str: name,
		Reason: "unknown engine (have " + strings.Join(EngineNames(), ", ") + ")",
	}
}

// beamEngine wraps the SEE beam search.
type beamEngine struct{}

func (beamEngine) Name() string { return "see" }

func (beamEngine) Solve(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg see.Config) (*EngineResult, error) {
	sol, err := see.Solve(ctx, start, ws, cfg)
	if err != nil {
		return nil, err
	}
	return &EngineResult{Flow: sol.Flow, Score: sol.Score, Stats: sol.Stats, Winner: "see"}, nil
}

// exactEngine wraps the branch-and-bound solver. ctrl is non-nil only
// on a portfolio leg, where the race couples the two engines.
type exactEngine struct {
	budget int64
	ctrl   *exact.Control
}

func (exactEngine) Name() string { return "exact" }

func (e exactEngine) Solve(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg see.Config) (*EngineResult, error) {
	res, err := exact.Solve(ctx, start, ws, exact.Config{See: cfg, NodeBudget: e.budget, Control: e.ctrl})
	if err != nil {
		return nil, err
	}
	return &EngineResult{
		Flow: res.Flow, Score: res.Score, Stats: res.Stats,
		Proved: res.Proved, Bound: res.Bound, Volatile: res.Volatile,
		Winner: "exact",
	}, nil
}

// portfolioGrace is the node-count grace the exact leg receives once
// the beam leg finishes when the portfolio runs as a raw Engine on a
// single subproblem: enough to finish proving small trees (making
// small-instance portfolio runs deterministic regardless of goroutine
// scheduling). Inside an HCA run the grace is metered per race by the
// race-tax meter below instead, with this as the ceiling.
const portfolioGrace = 4096

// The race-tax meter. A grace-stopped exact leg is pure overhead — the
// beam result was already in hand — and one full-grace leg on a
// branching-factor-k subproblem costs grace·k child evaluations,
// comparable to an entire beam solve of the same subproblem. A few
// stubborn never-proving legs per run would therefore multiply the
// portfolio's end-to-end wall time over the pure beam engine. The meter
// bounds that structurally: across one HCA run the exact legs may spend
// at most beamEvals/portfolioTaxDen + portfolioTaxAllowance child
// evaluations (both sides measured in the same units — one speculative
// assign→score→rollback), so the portfolio's wall time is pinned to a
// small fixed tax over the beam engine's regardless of kernel and of
// how many subproblems refuse to prove. Each race's grace is the
// meter's remaining affordance divided by k, so a single race can never
// overshoot the budget by more than one expansion's worth of children.
const (
	// portfolioTaxDen caps cumulative exact-leg work at 1/16 of
	// cumulative beam-leg work (child evaluations, run-wide).
	portfolioTaxDen = 16
	// portfolioTaxAllowance seeds the meter so the first subproblems of
	// a run — when no beam work has accrued yet — still race.
	portfolioTaxAllowance = 2048
	// portfolioMinGrace is the smallest grace worth spawning the exact
	// leg for: below it the DFS cannot even complete one greedy dive on
	// the subproblem sizes the race admits, let alone improve on the
	// beam. Out of meter, the attempt degenerates to the beam leg alone.
	portfolioMinGrace = 128
)

// portfolioExactMaxBits bounds the subproblems the exact leg is raced
// on by their raw assignment-space size: the race is admitted only when
// n·log₂(k) — the space k^n measured in bits — is small enough that a
// pruned search plausibly proves an optimum within the grace. A plain
// node-count cutoff is wrong here because the branching factor matters
// as much as the depth (and each B&B expansion evaluates k children, so
// a stubborn leg's grace overhang also scales with k): measured on
// h264deblocking (k=8), racing 12–16-node subproblems that never prove
// multiplied the end-to-end portfolio wall time several-fold over the
// pure beam engine for nothing. Past the bound the portfolio
// degenerates to the beam leg alone; within it (where exact proofs
// actually land, and where the gap-to-optimal tests operate — 16 nodes
// on k=4 sits exactly at the bound) the race runs.
const portfolioExactMaxBits = 32

// raceAdmitted reports whether the exact leg stands a realistic chance
// on this subproblem (see portfolioExactMaxBits).
func raceAdmitted(start *pg.Flow, ws []graph.NodeID) bool {
	k := start.T.NumRegular()
	if k < 2 {
		return true
	}
	return float64(len(ws))*math.Log2(float64(k)) <= portfolioExactMaxBits
}

// portfolioEngine races the beam and exact engines per subproblem. One
// instance spans one HCA run (both descent passes and every ladder
// rung), carrying the run's race-tax meter; the zero meter is ready to
// use.
type portfolioEngine struct {
	budget int64

	// Race-tax meter (see the constants above): cumulative child
	// evaluations spent by fresh beam solves and by exact race legs.
	// Updated by concurrent sibling subproblems; the admission read is
	// deliberately racy — the worst case is one extra metered race.
	beamEvals  atomic.Int64
	exactEvals atomic.Int64
}

func (*portfolioEngine) Name() string { return "portfolio" }

// raceGrace returns the exact-leg grace (in node expansions) the meter
// currently affords on a branching-factor-k subproblem, 0 when the
// race should be skipped. The returned grace converts back to at most
// the meter's remaining child evaluations, so overhang cannot compound
// past the tax no matter how many legs never prove.
func (p *portfolioEngine) raceGrace(k int) int64 {
	if k < 1 {
		k = 1
	}
	rem := portfolioTaxAllowance + p.beamEvals.Load()/portfolioTaxDen - p.exactEvals.Load()
	g := rem / int64(k)
	if g > portfolioGrace {
		g = portfolioGrace
	}
	if g < portfolioMinGrace {
		return 0
	}
	return g
}

// Solve races the two engines without a memo (the raw Engine contract;
// the HCA descent goes through raceAttempt instead, which shares the
// subproblem memo with the single-engine paths).
func (p *portfolioEngine) Solve(ctx context.Context, start *pg.Flow, ws []graph.NodeID, cfg see.Config) (*EngineResult, error) {
	if !raceAdmitted(start, ws) {
		// Too big for the exact leg to matter: the beam leg runs alone,
		// and the result is as deterministic as the beam engine's own.
		out := engineOutcome(ctx, beamEngine{}, start, ws, cfg)
		if out.err != nil {
			return nil, out.err
		}
		return &EngineResult{Flow: out.flow, Score: out.score, Stats: out.stats, Winner: "see"}, nil
	}
	ctrl := exact.NewControl()
	win := raceLegs(ctx, ctrl, portfolioGrace,
		func(c context.Context) legResult {
			return legResult{out: engineOutcome(c, beamEngine{}, start, ws, cfg)}
		},
		func(c context.Context) legResult {
			return legResult{out: engineOutcome(c, exactEngine{budget: p.budget, ctrl: ctrl}, start, ws, cfg)}
		})
	if win.out.err != nil {
		return nil, win.out.err
	}
	return &EngineResult{
		Flow: win.out.flow, Score: win.out.score, Stats: win.out.stats,
		Proved: win.out.proved, Bound: win.out.bound,
		Volatile: true, Winner: win.out.engine,
	}, nil
}

// raceAttempt is the memo-aware portfolio race the HCA descent uses:
// each leg runs a full retry-ladder attempt (engine solve plus
// pass-through routing) behind the shared subproblem memo under its own
// engine-discriminated key, so a portfolio run reuses — and, for the
// deterministic legs, feeds — the same cache entries as pure see and
// pure exact runs of the same subproblem.
func (p *portfolioEngine) raceAttempt(ctx context.Context, memo SubproblemMemo, key AttemptKey, start *pg.Flow, ws []graph.NodeID, cfg see.Config) (attemptOutcome, *MemoEntry) {
	kSee, kExact := key, key
	kSee.Engine, kSee.Budget = engineSee, 0
	kExact.Engine, kExact.Budget = engineExact, exact.EffectiveBudget(p.budget)
	k := start.T.NumRegular()
	var grace int64
	if raceAdmitted(start, ws) {
		grace = p.raceGrace(k)
	}
	if grace == 0 {
		// Beyond the exact leg's reach (portfolioExactMaxBits) or out of
		// race-tax meter: the beam attempt runs alone under its own memo
		// key, non-volatile. Fresh beam work still feeds the meter so
		// later subproblems can afford to race again.
		out, e, fresh := soloAttempt(ctx, memo, kSee, beamEngine{}, start, ws, cfg)
		if fresh && out.err == nil {
			p.beamEvals.Add(int64(out.stats.CandidatesTried))
		}
		return out, e
	}
	ctrl := exact.NewControl()
	var seeEvals int64 // written by the inline beam leg, read after the race
	win := raceLegs(ctx, ctrl, grace,
		func(c context.Context) legResult {
			out, e, fresh := soloAttempt(c, memo, kSee, beamEngine{}, start, ws, cfg)
			if fresh && out.err == nil {
				seeEvals = int64(out.stats.CandidatesTried)
			}
			return legResult{out: out, entry: e}
		},
		func(c context.Context) legResult {
			out, e, _ := soloAttempt(c, memo, kExact, exactEngine{budget: p.budget, ctrl: ctrl}, start, ws, cfg)
			return legResult{out: out, entry: e}
		})
	// Charge the meter: the beam leg's fresh work grows the affordance,
	// the exact leg's expansions (k child evaluations each, whether it
	// proved, improved, or burned its grace) consume it. A memoized
	// exact proof replays with zero expansions and is rightly free.
	p.beamEvals.Add(seeEvals)
	p.exactEvals.Add(ctrl.Expansions() * int64(k))
	return win.out, win.entry
}

// legResult couples one leg's outcome with its memo entry (nil on the
// raw engine path and on memo misses).
type legResult struct {
	out   attemptOutcome
	entry *MemoEntry
}

// engineOutcome adapts one raw engine solve into an attemptOutcome.
func engineOutcome(ctx context.Context, eng Engine, start *pg.Flow, ws []graph.NodeID, cfg see.Config) attemptOutcome {
	res, err := eng.Solve(ctx, start, ws, cfg)
	if err != nil {
		return attemptOutcome{err: err, engine: eng.Name()}
	}
	return attemptOutcome{
		flow: res.Flow, stats: res.Stats, score: res.Score,
		proved: res.Proved, bound: res.Bound, volatile: res.Volatile,
		engine: res.Winner,
	}
}

// raceLegs runs the beam and exact legs concurrently and returns the
// winner under the portfolio's selection rule:
//
//   - the exact leg finishing first with a proved optimum wins outright;
//     the beam leg is cancelled (its chunked expansion stops at chunk
//     granularity) and drained;
//   - the beam leg finishing first publishes its score as the exact
//     leg's incumbent and grants it the given node-count grace
//     (StopAfter), so a nearly-done proof still lands; then the better
//     result wins,
//     ties to the beam (keeping portfolio output aligned with the
//     default engine when exact brings no improvement);
//   - a leg that errors loses to any leg that succeeds; both failing
//     surfaces the beam's error.
//
// Both legs are always drained before returning — no goroutine and no
// flow outlives the race — and the loser's flow is released to the pg
// slabs.
//
// The beam leg runs inline on the calling goroutine and only the exact
// leg is spawned: the beam is the cheap, near-always-first finisher,
// and on a single-P runtime spawning both would let the exact leg
// monopolize the processor for a full preemption quantum before the
// beam leg was ever scheduled — turning the race's overhead from "one
// grace budget" into "most of an exact solve" per attempt. The exact
// leg still wins outright when it proves its optimum first: it cancels
// the beam leg's context, which stops the chunked expansion at chunk
// granularity.
func raceLegs(ctx context.Context, ctrl *exact.Control, grace int64, runSee, runExact func(context.Context) legResult) legResult {
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	ectx, ecancel := context.WithCancel(ctx)
	defer ecancel()
	ch := make(chan legResult, 1)
	go func() {
		leg := runExact(ectx)
		if leg.out.err == nil && leg.out.proved && leg.out.flow != nil {
			// Exact proved its optimum before the beam finished: nothing
			// the beam returns can score lower. Stop it.
			scancel()
		}
		ch <- leg
	}()
	seeLeg := runSee(sctx)
	if seeLeg.out.err == nil {
		ctrl.PublishIncumbent(seeLeg.out.score)
	}
	ctrl.StopAfter(grace)
	exLeg := <-ch
	return pickLeg(seeLeg, exLeg)
}

// pickLeg merges the two finished legs into the portfolio's outcome.
func pickLeg(seeLeg, exLeg legResult) legResult {
	if seeLeg.out.err != nil && exLeg.out.err != nil {
		discardOutcome(&exLeg.out)
		return seeLeg // both failed: surface the canonical engine's error
	}
	if seeLeg.out.err != nil {
		if exLeg.out.flow == nil {
			// Exact only certified an incumbent the beam never delivered.
			discardOutcome(&exLeg.out)
			return seeLeg
		}
		discardOutcome(&seeLeg.out)
		exLeg.out.volatile = true
		return exLeg
	}
	if exLeg.out.err != nil {
		discardOutcome(&exLeg.out)
		seeLeg.out.volatile = true
		seeLeg.out.stats.Add(exLeg.out.stats)
		return seeLeg
	}
	// Both legs succeeded.
	if exLeg.out.flow == nil {
		// Exact proved the beam's incumbent unbeatable: the beam's flow
		// is optimal; carry the proof onto it.
		out := seeLeg.out
		out.proved, out.bound = exLeg.out.proved, exLeg.out.bound
		out.stats.Add(exLeg.out.stats)
		out.volatile = true
		return legResult{out: out, entry: seeLeg.entry}
	}
	if exLeg.out.score < seeLeg.out.score {
		discardOutcome(&seeLeg.out)
		exLeg.out.stats.Add(seeLeg.out.stats)
		exLeg.out.volatile = true
		return exLeg
	}
	out := seeLeg.out
	if exLeg.out.proved && exLeg.out.score == seeLeg.out.score {
		// Tie with a proved exact optimum: the beam's flow achieves it.
		out.proved, out.bound = true, exLeg.out.bound
	}
	out.stats.Add(exLeg.out.stats)
	out.volatile = true
	discardOutcome(&exLeg.out)
	return legResult{out: out, entry: seeLeg.entry}
}

// discardOutcome releases a losing leg's flow back to the pg slabs.
func discardOutcome(o *attemptOutcome) {
	if o.flow != nil {
		o.flow.Release()
		o.flow = nil
	}
}
