package core
