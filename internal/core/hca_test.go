package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func TestHCAAllKernelsDSPFabric(t *testing.T) {
	// Table 1's headline claim: every kernel clusterizes legally on the
	// 64-CN DSPFabric with N=M=K=8.
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			d := k.Build()
			res, err := HCA(context.Background(), d, mc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Legal {
				t.Fatal("result not legal")
			}
			if res.MII.Rec != k.WantMIIRec || res.MII.Res != k.WantMIIRes {
				t.Errorf("MIIRec/Res = %d/%d, want %d/%d", res.MII.Rec, res.MII.Res, k.WantMIIRec, k.WantMIIRes)
			}
			if res.MII.Final < res.MII.Rec {
				t.Errorf("Final MII %d below recurrence bound %d", res.MII.Final, res.MII.Rec)
			}
			if res.MII.AllLevels < res.MII.Final {
				t.Errorf("AllLevels %d below Final %d", res.MII.AllLevels, res.MII.Final)
			}
			// The paper-definition Final MII must land near Table 1's value
			// (shape reproduction: within a factor of two).
			if res.MII.Final > 2*k.PaperFinalMII {
				t.Errorf("Final MII %d more than 2x paper's %d", res.MII.Final, k.PaperFinalMII)
			}
			t.Logf("%s: MII rec=%d res=%d final=%d all=%d (paper final %d), %d recvs, %d levels, %d states",
				k.Name, res.MII.Rec, res.MII.Res, res.MII.Final, res.MII.AllLevels, k.PaperFinalMII,
				res.Recvs, len(res.Levels), res.Stats.StatesExplored)
		})
	}
}

func TestHCATinyChainPipelines(t *testing.T) {
	// A serial chain offers no intra-iteration parallelism, but modulo
	// scheduling overlaps iterations: spreading the chain across CNs
	// pipelines it, so the Final MII (a throughput bound) must beat the
	// single-CN serial load of 5 — each CN carries at most one mov plus
	// one receive.
	d := ddg.New("chain")
	prev := d.AddConst(1, "c")
	for i := 0; i < 4; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	res, err := HCA(context.Background(), d, machine.DSPFabric64(8, 8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MII.AllLevels > 2 {
		t.Errorf("AllLevels MII = %d, want <= 2 (pipelined chain)", res.MII.AllLevels)
	}
	if !res.Legal {
		t.Fatal("not legal")
	}
}

func TestHCASpreadsIndependentWork(t *testing.T) {
	// 64 independent constants on 64 CNs: perfect spread gives MII 1.
	d := ddg.New("par")
	for i := 0; i < 64; i++ {
		d.AddConst(int64(i), "c")
	}
	res, err := HCA(context.Background(), d, machine.DSPFabric64(8, 8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MII.AllLevels != 1 {
		t.Errorf("AllLevels MII = %d, want 1", res.MII.AllLevels)
	}
	seen := map[int]int{}
	for _, cn := range res.CN {
		seen[cn]++
	}
	for cn, n := range seen {
		if n != 1 {
			t.Errorf("CN %d hosts %d instructions", cn, n)
		}
	}
}

func TestHCAOnRCPRing(t *testing.T) {
	// The flat RCP machine (Figure 1) is the degenerate one-level case.
	d := kernels.Fir2Dim()
	mc := machine.RCP(8, 2, 2)
	res, err := HCA(context.Background(), d, mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legal {
		t.Fatal("not legal")
	}
	if len(res.Levels) != 1 {
		t.Errorf("levels = %d, want 1", len(res.Levels))
	}
	for _, cn := range res.CN {
		if cn < 0 || cn >= 8 {
			t.Errorf("bad CN %d", cn)
		}
	}
}

func TestHCAInvalidDDGRejected(t *testing.T) {
	d := ddg.New("bad")
	d.AddOp(ddg.OpAdd, "a") // missing operands
	if _, err := HCA(context.Background(), d, machine.DSPFabric64(8, 8, 8), Options{}); err == nil {
		t.Fatal("accepted invalid DDG")
	}
}

func TestHCAInvalidMachineRejected(t *testing.T) {
	d := kernels.Fir2Dim()
	mc := &machine.Config{Name: "broken"}
	if _, err := HCA(context.Background(), d, mc, Options{}); err == nil {
		t.Fatal("accepted invalid machine")
	}
}

func TestCNIndexRoundTrip(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	seen := map[int]bool{}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				idx := cnIndex(mc, []int{a, b}, c)
				if idx != a*16+b*4+c {
					t.Fatalf("cnIndex(%d,%d,%d) = %d", a, b, c, idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate CN index %d", idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestCopyLatency(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},  // same leaf crossbar
		{0, 4, 2},  // same set, different subgroup
		{0, 16, 3}, // across the level-0 switch
		{63, 0, 3},
		{17, 18, 1},
	}
	for _, c := range cases {
		if got := copyLatency(mc, c.a, c.b); got != c.want {
			t.Errorf("copyLatency(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevelParams(t *testing.T) {
	mc := machine.DSPFabric64(8, 4, 2)
	maxIn, outW, inW := levelParams(mc, 0)
	if maxIn != 8 || outW != 8 || inW != 8 {
		t.Errorf("level0 = %d/%d/%d", maxIn, outW, inW)
	}
	maxIn, outW, inW = levelParams(mc, 1)
	if maxIn != 2 || inW != 2 || outW != 4 { // min(M=4, K=2)
		t.Errorf("level1 = %d/%d/%d", maxIn, outW, inW)
	}
	maxIn, outW, inW = levelParams(mc, 2)
	if maxIn != 2 || outW != 1 || inW != 2 { // CN ports
		t.Errorf("level2 = %d/%d/%d", maxIn, outW, inW)
	}
	rcp := machine.RCP(8, 2, 3)
	maxIn, _, _ = levelParams(rcp, 0)
	if maxIn != 3 {
		t.Errorf("rcp maxIn = %d", maxIn)
	}
}

func TestHCADeterministic(t *testing.T) {
	d := kernels.IDCTHor()
	mc := machine.DSPFabric64(8, 8, 8)
	a, err := HCA(context.Background(), d, mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HCA(context.Background(), kernels.IDCTHor(), mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CN {
		if a.CN[i] != b.CN[i] {
			t.Fatalf("nondeterministic CN assignment at node %d", i)
		}
	}
	if a.MII.Final != b.MII.Final {
		t.Fatal("nondeterministic MII")
	}
}

func TestHCAFinalDDGExecutes(t *testing.T) {
	// The post-processed DDG (with receive primitives) must still compute
	// the kernel: interpret both and compare memory.
	d := kernels.Fir2Dim()
	res, err := HCA(context.Background(), d, machine.DSPFabric64(8, 8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recvs == 0 {
		t.Skip("no receives inserted; nothing to compare")
	}
	mem1 := ddg.MapMemory{}
	mem2 := ddg.MapMemory{}
	for i := int64(0); i < 3*kernels.FirStride; i++ {
		mem1[i] = i % 97
		mem2[i] = i % 97
	}
	if _, err := d.Interpret(mem1, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Final.Interpret(mem2, 20); err != nil {
		t.Fatal(err)
	}
	for a, v := range mem1 {
		if mem2[a] != v {
			t.Fatalf("final DDG diverges at mem[%d]: %d vs %d", a, mem2[a], v)
		}
	}
}

func TestHCASyntheticScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mc := machine.DSPFabric64(8, 8, 8)
	for _, ops := range []int{64, 128, 256} {
		d := kernels.Synthetic(kernels.SynthConfig{Ops: ops, Seed: 1, RecLatency: 3})
		res, err := HCA(context.Background(), d, mc, Options{})
		if err != nil {
			t.Fatalf("ops=%d: %v", ops, err)
		}
		if !res.Legal {
			t.Fatalf("ops=%d: illegal", ops)
		}
	}
}

func TestLevelSolutionID(t *testing.T) {
	cases := []struct {
		path []int
		want string
	}{
		{nil, "0"},
		{[]int{2}, "0,2"},
		{[]int{2, 1}, "0,2,1"},
	}
	for _, c := range cases {
		ls := &LevelSolution{Path: c.path}
		if got := ls.ID(); got != c.want {
			t.Errorf("ID(%v) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestHCABandwidthSweepDegrades(t *testing.T) {
	// §5: "lower bandwidths cause a rapid degradation of the clusterization
	// quality". Final MII with N=M=K=2 must be >= the MII with 8.
	if testing.Short() {
		t.Skip("short mode")
	}
	d := kernels.MPEG2Inter
	wide, err := HCA(context.Background(), d(), machine.DSPFabric64(8, 8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := HCA(context.Background(), d(), machine.DSPFabric64(2, 2, 2), Options{})
	if err != nil {
		// Very low bandwidth may be outright infeasible — that is the
		// degradation in its extreme form.
		t.Logf("N=M=K=2 infeasible: %v", err)
		return
	}
	if narrow.MII.Final < wide.MII.Final {
		t.Errorf("narrower fabric got better MII: %d < %d", narrow.MII.Final, wide.MII.Final)
	}
}

func ExampleHCA() {
	d := kernels.Fir2Dim()
	res, err := HCA(context.Background(), d, machine.DSPFabric64(8, 8, 8), Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("legal:", res.Legal)
	fmt.Println("instructions:", d.Len())
	// Output:
	// legal: true
	// instructions: 57
}

var _ = graph.NodeID(0)

func TestHCAScalesToDeeperHierarchies(t *testing.T) {
	// §7: the decomposition "easily scales with the architecture". A
	// 256-CN, 4-level fabric must clusterize a 256-op workload legally.
	if testing.Short() {
		t.Skip("short mode")
	}
	mc := machine.Hierarchical([]int{4, 4, 4, 4}, []int{8, 8, 8, 8})
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 256, Seed: 2, RecLatency: 3})
	res, err := HCA(context.Background(), d, mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legal {
		t.Fatal("not legal")
	}
	for _, cn := range res.CN {
		if cn < 0 || cn >= 256 {
			t.Fatalf("bad CN %d", cn)
		}
	}
	t.Logf("256-CN fabric: Final MII %d, AllLevels %d, %d subproblems", res.MII.Final, res.MII.AllLevels, len(res.Levels))
}

func TestHCAOnLinearArray(t *testing.T) {
	// RaPiD / PipeRench-style open linear array (§6): kernels must map as
	// pipelines along the array.
	mc := machine.LinearArray(8, 2, 3)
	for _, name := range []string{"fir2dim", "idcthor"} {
		k, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := HCA(context.Background(), k.Build(), mc, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Legal {
			t.Fatalf("%s: not legal", name)
		}
	}
}

func TestHCAOnLargerRing(t *testing.T) {
	mc := machine.RCP(16, 2, 3)
	res, err := HCA(context.Background(), kernels.MPEG2Inter(), mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legal {
		t.Fatal("not legal")
	}
	for _, cn := range res.CN {
		if cn < 0 || cn >= 16 {
			t.Fatalf("bad CN %d", cn)
		}
	}
}

func TestCoherencyCheckCatchesCorruption(t *testing.T) {
	// Failure injection: a tampered CN assignment must be rejected by the
	// coherency checker (the value never flowed to the new group).
	res, err := HCA(context.Background(), kernels.IDCTHor(), machine.DSPFabric64(8, 8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a non-rematerializable node with a consumer and move it to a
	// distant CN.
	moved := false
	for i := range res.DDG.Nodes {
		op := res.DDG.Nodes[i].Op
		if op == ddg.OpConst || op == ddg.OpIV || op == ddg.OpStore {
			continue
		}
		if res.DDG.G.OutDegree(res.DDG.Nodes[i].ID) == 0 {
			continue
		}
		res.CN[i] = (res.CN[i] + 32) % 64
		moved = true
		break
	}
	if !moved {
		t.Fatal("no movable node found")
	}
	if err := CoherencyCheck(res); err == nil {
		t.Fatal("coherency checker accepted a corrupted assignment")
	}
}

func TestCoherencyCheckCatchesMissingLevel(t *testing.T) {
	res, err := HCA(context.Background(), kernels.Fir2Dim(), machine.DSPFabric64(8, 8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Levels = res.Levels[1:] // drop the root solution
	if err := CoherencyCheck(res); err == nil {
		t.Fatal("coherency checker accepted a result missing its root level")
	}
}
