package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/pg"
)

// resultSignature serializes everything downstream consumers read from a
// Result, so memo-on and memo-off runs can be compared bit-for-bit.
func resultSignature(r *Result) string {
	s := fmt.Sprintf("cn=%v;recvs=%d;mii=%+v;stats=%+v;legal=%v;levels=", r.CN, r.Recvs, r.MII, r.Stats, r.Legal)
	for _, ls := range r.Levels {
		s += fmt.Sprintf("[%s:mii%d,cp%d,w%d]", ls.ID(), ls.Flow.EstimateMII(), ls.Flow.TotalCopies(), len(ls.Mapping.Wires))
	}
	return s
}

// TestMemoOnOffIdentical pins the memo's core contract: caching changes
// which work runs, never the answer. Every paper kernel must produce a
// bit-identical Result with the memo on (default) and off.
func TestMemoOnOffIdentical(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		d := k.Build()
		on, err := HCA(context.Background(), d, mc, Options{})
		if err != nil {
			t.Fatalf("%s memo on: %v", k.Name, err)
		}
		off, err := HCA(context.Background(), d, mc, Options{DisableMemo: true})
		if err != nil {
			t.Fatalf("%s memo off: %v", k.Name, err)
		}
		if a, b := resultSignature(on), resultSignature(off); a != b {
			t.Errorf("%s: memo changed the result:\n  on: %s\n off: %s", k.Name, a, b)
		}
	}
}

// TestMemoHitsAcrossPasses pins the intended sharing: the seeded and the
// pure internal pass descend through identical subproblems, so the
// second pass must hit the per-run memo.
func TestMemoHitsAcrossPasses(t *testing.T) {
	m := NewMemo(0)
	d := kernels.Fir2Dim()
	if _, err := HCA(context.Background(), d, machine.DSPFabric64(8, 8, 8), Options{Memo: m}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Hits == 0 {
		t.Fatalf("no memo hits across the two ladder passes: %+v", st)
	}
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("implausible memo stats: %+v", st)
	}
}

// TestMemoSharedAcrossRuns pins cross-solve sharing, the service's
// use-case: a second identical HCA run against the same memo is answered
// almost entirely from cache, and its result stays identical.
func TestMemoSharedAcrossRuns(t *testing.T) {
	m := NewMemo(0)
	mc := machine.DSPFabric64(8, 8, 8)
	d := kernels.FFT8()
	first, err := HCA(context.Background(), d, mc, Options{Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	h0 := m.Stats().Hits
	second, err := HCA(context.Background(), d, mc, Options{Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Hits <= h0 {
		t.Fatalf("second run gained no hits: %+v", m.Stats())
	}
	if a, b := resultSignature(first), resultSignature(second); a != b {
		t.Errorf("memoized rerun diverged:\n first: %s\nsecond: %s", a, b)
	}
}

// TestMemoBypassedForCustomCriteria: closures have no content address,
// so user-supplied criteria must disable memoization rather than risk a
// false share.
func TestMemoBypassedForCustomCriteria(t *testing.T) {
	m := NewMemo(0)
	d := kernels.Fir2Dim()
	opt := Options{Memo: m}
	opt.SEE.Criteria = withCriticalCopyCriterion(opt.SEE, d, nil).Criteria
	if _, err := HCA(context.Background(), d, machine.DSPFabric64(8, 8, 8), opt); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("custom criteria reached the memo: %+v", st)
	}
}

// TestMemoSingleFlight: concurrent Acquires of one key elect exactly one
// leader; followers block until Complete and then see the published
// entry.
func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo(0)
	key := AttemptKey{DDG: "x", Beam: 8, Cand: 4}
	const workers = 16
	var leaders int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, leader, err := m.Acquire(context.Background(), key)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			if leader {
				mu.Lock()
				leaders++
				mu.Unlock()
				<-release
				e.fill(attemptOutcome{err: errors.New("dead end")}, nil, nil)
				m.Complete(key, e)
				return
			}
			if !e.ok || !e.failed || e.errMsg != "dead end" {
				t.Errorf("follower saw unpublished entry: ok=%v failed=%v msg=%q", e.ok, e.failed, e.errMsg)
			}
		}()
	}
	close(release)
	wg.Wait()
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
}

// TestMemoFollowerCancellation: a follower whose context dies while the
// leader computes gets the context error instead of blocking forever.
func TestMemoFollowerCancellation(t *testing.T) {
	m := NewMemo(0)
	key := AttemptKey{DDG: "y"}
	e, leader, err := m.Acquire(context.Background(), key)
	if err != nil || !leader {
		t.Fatalf("leader acquire: leader=%v err=%v", leader, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := m.Acquire(ctx, key); !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	m.Abandon(key, e)
	// After Abandon the key is free again: the next Acquire leads.
	if _, leader, err := m.Acquire(context.Background(), key); err != nil || !leader {
		t.Fatalf("post-abandon acquire: leader=%v err=%v", leader, err)
	}
}

// TestMemoLRUBound: the completed-entry count never exceeds the cap, and
// evicted keys recompute (a fresh Acquire leads again).
func TestMemoLRUBound(t *testing.T) {
	m := NewMemo(2)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		k := AttemptKey{DDG: fmt.Sprint(i)}
		e, leader, err := m.Acquire(ctx, k)
		if err != nil || !leader {
			t.Fatalf("key %d: leader=%v err=%v", i, leader, err)
		}
		e.fill(attemptOutcome{err: errors.New("e")}, nil, nil)
		m.Complete(k, e)
	}
	st := m.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (cap)", st.Entries)
	}
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
	if _, leader, _ := m.Acquire(ctx, AttemptKey{DDG: "0"}); !leader {
		t.Fatal("evicted key did not re-lead")
	}
}

// TestMemoFailSafeCompare: a key collision (same AttemptKey, different
// actual subproblem) must be caught by the full compare and answered
// with a local solve, never with the cached flow.
func TestMemoFailSafeCompare(t *testing.T) {
	ta := pg.NewTopology("a", 4, 16, 8, 0)
	ta.AllToAll()
	tb := pg.NewTopology("b", 4, 8, 8, 0) // different issue slots
	tb.AllToAll()
	e := &MemoEntry{ready: make(chan struct{})}
	e.fill(attemptOutcome{err: errors.New("e")}, ta, []graph.NodeID{1, 2, 3})
	if !e.matches(ta, []graph.NodeID{1, 2, 3}) {
		t.Fatal("identical subproblem did not match")
	}
	if e.matches(tb, []graph.NodeID{1, 2, 3}) {
		t.Fatal("different topology matched")
	}
	if e.matches(ta, []graph.NodeID{1, 2}) || e.matches(ta, []graph.NodeID{1, 2, 4}) {
		t.Fatal("different working set matched")
	}
}

// TestWSFingerprintOrderSensitive: the working-set hash must distinguish
// both content and order (the list order seeds the priority sort).
func TestWSFingerprintOrderSensitive(t *testing.T) {
	a := wsFingerprint([]graph.NodeID{1, 2, 3})
	b := wsFingerprint([]graph.NodeID{3, 2, 1})
	c := wsFingerprint([]graph.NodeID{1, 2})
	if a == b || a == c || b == c {
		t.Fatalf("ws hashes collide: %x %x %x", a, b, c)
	}
	if a != wsFingerprint([]graph.NodeID{1, 2, 3}) {
		t.Fatal("ws hash not deterministic")
	}
}
