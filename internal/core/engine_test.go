package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/pg"
	"repro/internal/see"
)

func TestEngineByName(t *testing.T) {
	for _, name := range append(EngineNames(), "") {
		eng, err := EngineByName(name)
		if err != nil || eng == nil {
			t.Errorf("EngineByName(%q) = %v, %v", name, eng, err)
		}
	}
	if eng, err := EngineByName(""); err != nil || eng.Name() != "see" {
		t.Errorf("empty selection resolved to %v, %v; want the beam default", eng, err)
	}
	_, err := EngineByName("annealing")
	var oe *see.OptionError
	if !errors.As(err, &oe) || oe.Field != "engine" {
		t.Errorf("unknown engine error %v is not a typed engine OptionError", err)
	}
}

func TestAttemptKeyEngineDiscriminator(t *testing.T) {
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 16, Seed: 9, RecLatency: 2})
	f := pg.NewFlow(engineTopo(4, 4, 8), d)
	f.MIIRecStatic = d.MIIRec()
	ws := engineWS(d.Len())
	cfg := see.Config{}
	base := Options{ddgFP: d.Fingerprint()}
	exactOpt := base
	exactOpt.Engine = "exact"
	kSee := attemptKeyFor(base, f, ws, cfg, 0, false)
	kExact := attemptKeyFor(exactOpt, f, ws, cfg, 0, false)
	if kSee == kExact {
		t.Fatal("beam and exact attempts share a memo key: cross-engine replay possible")
	}
	kSee.Engine, kSee.Budget = kExact.Engine, kExact.Budget
	if kSee != kExact {
		t.Error("keys differ beyond the engine discriminator: content address drifted")
	}
}

func engineTopo(k, issue, maxIn int) *pg.Topology {
	t := pg.NewTopology("engine-test", k, issue, maxIn, 0)
	t.AllToAll()
	return t
}

func engineWS(n int) []graph.NodeID {
	ws := make([]graph.NodeID, n)
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	return ws
}

// solveWith runs one engine on one subproblem instance.
func solveWith(t *testing.T, name string, f *pg.Flow, ws []graph.NodeID) (*EngineResult, error) {
	t.Helper()
	eng, err := EngineByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Solve(context.Background(), f, ws, see.Config{})
}

// The exact engine must prove optimal cost on working-set prefixes of
// all four Table-1 kernels (small widths: the dependency-closed first
// 12 instructions on a 4-cluster pattern graph), and the beam engine
// must land within the recorded gap of that proved optimum.
func TestExactProvesKernelPrefixes(t *testing.T) {
	const prefix = 12
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			d := k.Build()
			f := pg.NewFlow(engineTopo(4, 4, 8), d)
			f.MIIRecStatic = d.MIIRec()
			ws := engineWS(prefix) // construction order is topological: a prefix is dependency-closed
			ex, err := solveWith(t, "exact", f, ws)
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			if !ex.Proved {
				t.Fatalf("exact did not prove a %d-instruction prefix", prefix)
			}
			if ex.Bound != ex.Score {
				t.Errorf("proved bound %v != score %v", ex.Bound, ex.Score)
			}
			beam, err := solveWith(t, "see", f, ws)
			if err != nil {
				t.Fatalf("beam: %v", err)
			}
			if beam.Score < ex.Score {
				t.Fatalf("beam score %v beats a proved optimum %v", beam.Score, ex.Score)
			}
			// The recorded per-kernel gap. idcthor's prefix is a real
			// beam miss (MII 2 against a proved MII-1 optimum), which is
			// exactly the kind of instance the exact engine exists to
			// expose; the ≤5% acceptance bound is asserted on the
			// synthetic corpus aggregate below and documented for the
			// full kernels in BENCH_8.json by cmd/perfbench.
			gap := (beam.Score - ex.Score) / ex.Score
			t.Logf("%s: exact %.2f, beam %.2f, gap %.2f%%", k.Name, ex.Score, beam.Score, gap*100)
			ex.Flow.Release()
			beam.Flow.Release()
		})
	}
}

// Gap-to-optimal over a synthetic corpus: the exact engine proves every
// instance, the beam never beats a proof, and the corpus-aggregate beam
// gap stays within the recorded bound.
func TestExactSyntheticCorpusGap(t *testing.T) {
	const instances = 20
	var scoreSum, boundSum float64
	for seed := int64(0); seed < instances; seed++ {
		d := kernels.Synthetic(kernels.SynthConfig{Ops: 16, Seed: seed, RecLatency: 2})
		f := pg.NewFlow(engineTopo(4, 4, 8), d)
		f.MIIRecStatic = d.MIIRec()
		ws := engineWS(d.Len())
		ex, err := solveWith(t, "exact", f, ws)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		if !ex.Proved {
			t.Fatalf("seed %d: not proved", seed)
		}
		beam, err := solveWith(t, "see", f, ws)
		if err != nil {
			t.Fatalf("seed %d: beam: %v", seed, err)
		}
		if beam.Score < ex.Score {
			t.Fatalf("seed %d: beam %v beats proved optimum %v", seed, beam.Score, ex.Score)
		}
		scoreSum += beam.Score
		boundSum += ex.Bound
		ex.Flow.Release()
		beam.Flow.Release()
	}
	gap := (scoreSum - boundSum) / boundSum
	t.Logf("corpus of %d: aggregate beam gap %.2f%%", instances, gap*100)
	if gap > 0.05 {
		t.Errorf("aggregate beam gap %.2f%% exceeds the 5%% acceptance bound", gap*100)
	}
}

// The portfolio must never return a worse score than either engine run
// alone on the same subproblem.
func TestPortfolioNeverWorseEngineLevel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := kernels.Synthetic(kernels.SynthConfig{Ops: 16, Seed: 200 + seed, RecLatency: 2})
		f := pg.NewFlow(engineTopo(4, 4, 8), d)
		f.MIIRecStatic = d.MIIRec()
		ws := engineWS(d.Len())
		beam, berr := solveWith(t, "see", f, ws)
		ex, xerr := solveWith(t, "exact", f, ws)
		port, perr := solveWith(t, "portfolio", f, ws)
		if perr != nil {
			if berr == nil || xerr == nil {
				t.Fatalf("seed %d: portfolio failed (%v) though a single engine succeeded", seed, perr)
			}
			continue
		}
		if port.Flow == nil {
			t.Fatalf("seed %d: portfolio returned no flow", seed)
		}
		if berr == nil && port.Score > beam.Score {
			t.Errorf("seed %d: portfolio %v worse than beam alone %v", seed, port.Score, beam.Score)
		}
		if xerr == nil && port.Score > ex.Score {
			t.Errorf("seed %d: portfolio %v worse than exact alone %v", seed, port.Score, ex.Score)
		}
		if !port.Volatile {
			t.Errorf("seed %d: race result not marked volatile", seed)
		}
		if berr == nil {
			beam.Flow.Release()
		}
		if xerr == nil {
			ex.Flow.Release()
		}
		port.Flow.Release()
	}
}

// Full-stack engine selection: HCA under each engine yields a legal
// clusterization, stamps the engine on the result, and accounts every
// subproblem's winning engine.
func TestHCAEngineSelection(t *testing.T) {
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 24, Seed: 7, RecLatency: 3})
	mc := machine.DSPFabric64(8, 8, 8)
	for _, engine := range EngineNames() {
		t.Run(engine, func(t *testing.T) {
			res, err := HCA(context.Background(), d, mc, Options{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Legal {
				t.Error("result not legal")
			}
			if res.Engine != engine {
				t.Errorf("result engine %q, want %q", res.Engine, engine)
			}
			wins := 0
			for _, n := range res.EngineWins {
				wins += n
			}
			if wins != res.Optimality.Subproblems || wins == 0 {
				t.Errorf("engine wins %d != subproblems %d", wins, res.Optimality.Subproblems)
			}
			if engine == "see" && res.Optimality.Proved != 0 {
				t.Errorf("beam-only run reports %d proved subproblems", res.Optimality.Proved)
			}
			if gap, ok := res.Optimality.Gap(); ok && gap < 0 {
				t.Errorf("negative optimality gap %v", gap)
			}
		})
	}
}

// The exact engine through the full HCA stack must never yield a worse
// clusterization than the beam on an instance it can prove end to end,
// and the proved gap must be reported.
func TestHCAExactReportsGap(t *testing.T) {
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 16, Seed: 11, RecLatency: 2})
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := HCA(context.Background(), d, mc, Options{Engine: "exact", DisableSeeding: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimality.Proved != res.Optimality.Subproblems {
		t.Fatalf("exact engine proved %d of %d subproblems", res.Optimality.Proved, res.Optimality.Subproblems)
	}
	gap, ok := res.Optimality.Gap()
	if !ok {
		t.Fatal("fully proved run reports no gap")
	}
	if gap != 0 {
		t.Errorf("exact engine's own gap = %v, want 0", gap)
	}
}

// A relaxed-mode exact result must never replay into a strict-mode beam
// solve through a shared memo: with the engine discriminator in the
// attempt key, a strict beam run against a memo pre-populated by an
// exact run is byte-identical to a fresh strict beam run.
func TestMemoNoCrossEngineReplay(t *testing.T) {
	d := kernels.Synthetic(kernels.SynthConfig{Ops: 24, Seed: 3, RecLatency: 2})
	mc := machine.DSPFabric64(8, 8, 8)
	strict := func(memo SubproblemMemo) *Result {
		t.Helper()
		res, err := HCA(context.Background(), d, mc, Options{
			SEE:  see.Config{DisableDedup: true}, // strict reproduction mode
			Memo: memo,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fresh := strict(nil)

	shared := NewMemo(0)
	if _, err := HCA(context.Background(), d, mc, Options{Engine: "exact", Memo: shared}); err != nil {
		t.Fatal(err)
	}
	if shared.Stats().Entries == 0 {
		t.Fatal("exact run populated no memo entries; the test exercises nothing")
	}
	poisoned := strict(shared)

	if fmt.Sprint(fresh.CN) != fmt.Sprint(poisoned.CN) {
		t.Errorf("strict-mode CN assignment changed behind a memo shared with an exact run:\n fresh: %v\nshared: %v", fresh.CN, poisoned.CN)
	}
	if fresh.MII != poisoned.MII || fresh.Recvs != poisoned.Recvs {
		t.Errorf("strict-mode result drifted: MII %+v vs %+v, recvs %d vs %d",
			fresh.MII, poisoned.MII, fresh.Recvs, poisoned.Recvs)
	}
}

// Cancellation leak check: racing legs must be fully drained on every
// path — early exact win, beam win, and caller cancellation — leaving
// no goroutine behind. Run under -race in make race.
func TestPortfolioStress(t *testing.T) {
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := kernels.Synthetic(kernels.SynthConfig{Ops: 16, Seed: int64(300 + i), RecLatency: 2})
			f := pg.NewFlow(engineTopo(4, 4, 8), d)
			f.MIIRecStatic = d.MIIRec()
			ctx, cancel := context.WithCancel(context.Background())
			if i%3 == 0 {
				// A third of the runs are cancelled mid-race.
				go func() {
					time.Sleep(time.Duration(i) * 100 * time.Microsecond)
					cancel()
				}()
			}
			defer cancel()
			eng, err := EngineByName("portfolio")
			if err != nil {
				t.Error(err)
				return
			}
			res, err := eng.Solve(ctx, f, engineWS(d.Len()), see.Config{})
			if err == nil && res.Flow != nil {
				res.Flow.Release()
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across portfolio races: %d before, %d after", before, after)
	}
}
