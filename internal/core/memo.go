package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/mapper"
	"repro/internal/pg"
	"repro/internal/see"
	"repro/internal/trace"
)

// Subproblem memoization.
//
// The recursive descent solves the same subproblem over and over: the
// seeded and the pure hcaOnce pass descend through identical level
// trees, the driver's feedback variants share every retry-ladder rung
// whose configuration they do not override, and a long-running service
// sees the same (kernel, fabric) pairs across requests. One retry-ladder
// attempt — a full beam search plus the pass-through routing — is the
// expensive unit of that duplicated work, so it is the memoized unit.
//
// A key identifies an attempt content-addressably: the DDG (sha256
// content hash), the subproblem's pattern-graph topology — whose special
// nodes carry the ILI value lists, so the ILI is part of the structural
// fingerprint — the start flow state, the working set, and every search
// knob of the rung. The start state is deterministically constructed
// from (DDG, topology, working set, rematerialization flag, ring rung),
// all of which the key covers, so a verified hit cannot be a false
// share: a 128-bit fingerprint collision degrades into a fail-safe full
// compare of topology and working set, and on mismatch into a local
// recompute — never into a wrong answer.

// AttemptKey content-addresses one retry-ladder attempt. It is a
// comparable value type usable as a map key.
type AttemptKey struct {
	// DDG is the sha256 content fingerprint of the kernel's DDG.
	DDG string
	// Topo is the structural topology fingerprint (ILI value lists
	// included via the special nodes' Carries; Name excluded, so
	// structurally identical subproblems match across hierarchy paths,
	// passes, variants and requests).
	Topo pg.Fingerprint
	// Start is the incremental state fingerprint of the attempt's start
	// flow (captures rematerialized values and ring reservations).
	Start pg.Fingerprint
	// WS is the order-sensitive hash of the working-set node list.
	WS pg.Fingerprint
	// MIIRec pins the static recurrence bound the cost model reads.
	MIIRec int
	// Beam and Cand are the rung's effective search widths.
	Beam, Cand int
	// Rung identifies the rung's criteria: 0 = caller criteria,
	// 1/2 = the port-heavy retry criteria.
	Rung uint8
	// Flags packs the kf* option bits.
	Flags uint8
	// Engine discriminates which engine computed the attempt (engineSee,
	// engineExact; the portfolio never keys entries under its own ID —
	// its legs use theirs). Different engines explore the same subproblem
	// differently, so one engine's cached result must never replay into
	// another engine's attempt: most acutely, an exact result computed
	// under relaxed options must not corrupt a strict-mode beam solve's
	// byte-for-byte equivalence with the reference engine.
	Engine uint8
	// Budget is the exact engine's effective node budget (0 for the beam
	// engine): a proof under a small budget and one under a large budget
	// are different computations with possibly different incumbents.
	Budget int64
}

// Flag bits of AttemptKey.Flags.
const (
	kfSchedAware uint8 = 1 << iota // scheduling-aware criterion (rung 0 only)
	kfRouterOnly
	kfDisableRouter
	kfDisableDedup
	kfRemat
	kfRing // ring-reserved retry of the rung
)

// MemoEntry is one memoized attempt. The leader that computed it fills
// it exactly once before publishing; after that every field except the
// lazily attached mapping is immutable, so waiters read without locks.
type MemoEntry struct {
	ready chan struct{} // closed on publish (Complete) or Abandon

	// ok distinguishes a published result from an abandoned computation
	// (context cancellation): abandoned entries must be recomputed.
	ok bool
	// failed carries negative results: the attempt dead-ended and every
	// future identical attempt will dead-end identically.
	failed bool
	errMsg string
	flow   *pg.Flow
	stats  see.Stats
	// Engine provenance and optimality certificate of the cached attempt
	// (see attemptOutcome); replayed verbatim into every hit.
	engine string
	score  float64
	proved bool
	bound  float64

	// Fail-safe identity behind the fingerprint key: a hit is honored
	// only after these compare equal, so a key collision costs a local
	// recompute instead of a wrong answer.
	topo *pg.Topology
	ws   []graph.NodeID

	// mapping lazily attaches the mapper result derived from flow, so a
	// hit skips the mapper too when the wire budgets agree.
	mapping atomic.Pointer[memoMapping]
}

type memoMapping struct {
	outW, inW int
	m         *mapper.Result
}

func (e *MemoEntry) fill(out attemptOutcome, t *pg.Topology, ws []graph.NodeID) {
	e.topo = t
	e.ws = append([]graph.NodeID(nil), ws...)
	if out.err != nil {
		e.failed = true
		e.errMsg = out.err.Error()
		return
	}
	e.flow = out.flow
	e.stats = out.stats
	e.engine = out.engine
	e.score = out.score
	e.proved = out.proved
	e.bound = out.bound
}

// matches is the fail-safe full compare behind a fingerprint hit.
func (e *MemoEntry) matches(t *pg.Topology, ws []graph.NodeID) bool {
	if !e.topo.Equal(t) || len(e.ws) != len(ws) {
		return false
	}
	for i := range ws {
		if e.ws[i] != ws[i] {
			return false
		}
	}
	return true
}

// outcome converts the entry back into an attempt result. The flow is
// cloned: committed level solutions must never alias across concurrent
// consumers of the memo.
func (e *MemoEntry) outcome() attemptOutcome {
	if e.failed {
		return attemptOutcome{err: errors.New(e.errMsg)}
	}
	return attemptOutcome{
		flow: e.flow.Clone(), stats: e.stats,
		engine: e.engine, score: e.score, proved: e.proved, bound: e.bound,
	}
}

// Mapping returns the attached mapper result if one was computed under
// the same wire budgets, else nil.
func (e *MemoEntry) Mapping(outW, inW int) *mapper.Result {
	if mm := e.mapping.Load(); mm != nil && mm.outW == outW && mm.inW == inW {
		return mm.m
	}
	return nil
}

// AttachMapping records the mapper result derived from the entry's flow
// so later hits with the same wire budgets skip the mapper.
func (e *MemoEntry) AttachMapping(outW, inW int, m *mapper.Result) {
	e.mapping.CompareAndSwap(nil, &memoMapping{outW: outW, inW: inW, m: m})
}

// EngineMemoStats is one engine's slice of the memo's hit/miss traffic.
type EngineMemoStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// MemoStats is the memo's observability snapshot.
type MemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Entries   int   `json:"entries"`
	Evictions int64 `json:"evictions"`
	// ByEngine breaks the hit/miss totals down by the engine that keyed
	// the attempt ("see"/"exact"; the portfolio's legs observe under
	// their own engines, so "portfolio" never appears). Engines with no
	// traffic are omitted.
	ByEngine map[string]EngineMemoStats `json:"by_engine,omitempty"`
}

// SubproblemMemo is the cross-solve attempt cache the HCA descent
// consults. *Memo is the canonical implementation; the interface exists
// so the compilation service can hoist one process-wide instance above
// every request (and tests can substitute instrumented fakes).
//
// Protocol: Acquire returns (entry, leader). The leader computes the
// attempt, fills the entry and publishes it with Complete — or Abandon
// when the computation was cancelled and the result untrustworthy.
// Followers block in Acquire until the entry resolves (or their ctx
// does). Observe records the caller's verified hit/miss outcome under
// the attempt key's engine discriminator (AttemptKey.Engine), so the
// hit/miss accounting can be broken down per engine.
type SubproblemMemo interface {
	Acquire(ctx context.Context, k AttemptKey) (e *MemoEntry, leader bool, err error)
	Complete(k AttemptKey, e *MemoEntry)
	Abandon(k AttemptKey, e *MemoEntry)
	Observe(hit bool, engine uint8)
	Stats() MemoStats
}

// Memo is a concurrency-safe, single-flight, LRU-bounded attempt cache.
type Memo struct {
	hits   atomic.Int64
	misses atomic.Int64
	// Per-engine slices of the totals, indexed by the engine
	// discriminator (engineSee..enginePortfolio).
	engHits   [numEngines]atomic.Int64
	engMisses [numEngines]atomic.Int64

	mu        sync.Mutex
	cap       int // 0 = unbounded (per-run memos)
	items     map[AttemptKey]*memoBox
	lru       *list.List // of AttemptKey; completed entries only
	evictions int64
}

type memoBox struct {
	entry *MemoEntry
	elem  *list.Element // nil while in flight
}

// NewMemo returns a memo bounded to cap completed entries, evicting the
// least recently used beyond it; cap <= 0 means unbounded, the right
// size for the per-run memo HCA creates itself.
func NewMemo(cap int) *Memo {
	return &Memo{cap: cap, items: make(map[AttemptKey]*memoBox), lru: list.New()}
}

// Acquire resolves k to its entry. The second result is true when the
// caller became the leader and must Complete or Abandon the returned
// in-flight entry; false means the entry is resolved (published or
// abandoned — check entry.ok via the solve path). A follower whose ctx
// dies while waiting gets ctx's error.
func (m *Memo) Acquire(ctx context.Context, k AttemptKey) (*MemoEntry, bool, error) {
	m.mu.Lock()
	if b, ok := m.items[k]; ok {
		if b.elem != nil {
			m.lru.MoveToFront(b.elem)
		}
		e := b.entry
		m.mu.Unlock()
		select {
		case <-e.ready:
			return e, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &MemoEntry{ready: make(chan struct{})}
	m.items[k] = &memoBox{entry: e}
	m.mu.Unlock()
	return e, true, nil
}

// Complete publishes a filled entry under k and applies the LRU bound.
func (m *Memo) Complete(k AttemptKey, e *MemoEntry) {
	e.ok = true
	close(e.ready)
	m.mu.Lock()
	if b, ok := m.items[k]; ok && b.entry == e {
		b.elem = m.lru.PushFront(k)
		for m.cap > 0 && m.lru.Len() > m.cap {
			back := m.lru.Back()
			delete(m.items, back.Value.(AttemptKey))
			m.lru.Remove(back)
			m.evictions++
		}
	}
	m.mu.Unlock()
}

// Abandon withdraws an in-flight entry (cancelled computation): current
// waiters fall back to a local solve, and the next Acquire of k starts a
// fresh leader.
func (m *Memo) Abandon(k AttemptKey, e *MemoEntry) {
	close(e.ready) // e.ok stays false
	m.mu.Lock()
	if b, ok := m.items[k]; ok && b.entry == e {
		delete(m.items, k)
		if b.elem != nil {
			m.lru.Remove(b.elem)
		}
	}
	m.mu.Unlock()
}

// Observe records one verified attempt outcome against the hit/miss
// counters (a hit is only counted after the fail-safe compare passed),
// attributed to the engine whose key the attempt ran under.
func (m *Memo) Observe(hit bool, engine uint8) {
	if engine >= numEngines {
		engine = engineSee // defensive: unknown discriminators fold into the default
	}
	if hit {
		m.hits.Add(1)
		m.engHits[engine].Add(1)
	} else {
		m.misses.Add(1)
		m.engMisses[engine].Add(1)
	}
}

// Stats snapshots the memo's counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	entries, ev := m.lru.Len(), m.evictions
	m.mu.Unlock()
	s := MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load(), Entries: entries, Evictions: ev}
	for e := uint8(0); e < numEngines; e++ {
		h, ms := m.engHits[e].Load(), m.engMisses[e].Load()
		if h == 0 && ms == 0 {
			continue
		}
		if s.ByEngine == nil {
			s.ByEngine = make(map[string]EngineMemoStats, numEngines)
		}
		s.ByEngine[engineTag(e)] = EngineMemoStats{Hits: h, Misses: ms}
	}
	return s
}

// attemptOutcome is one retry-ladder attempt's result: the committed
// solution flow with its search stats, or the error that dead-ended it.
type attemptOutcome struct {
	flow  *pg.Flow
	stats see.Stats
	err   error
	// engine names the engine that produced flow ("see"/"exact"); score
	// is its objective value (the engines score bit-identically through
	// see.ScoreFlow, so scores compare across engines).
	engine string
	score  float64
	// proved/bound is the exact engine's optimality certificate: bound
	// is a true lower bound over the subproblem's assignment space.
	proved bool
	bound  float64
	// volatile marks a result that depended on cross-engine racing
	// (injected incumbent, grace stop): reproducible only by rerunning
	// the race, so it must never enter content-addressed caches.
	volatile bool
}

// attemptKeyFor derives the content address of one ladder attempt. The
// effective widths are normalized through WithDefaults so "beam 0" and
// "beam 8" share an entry, exactly like the service's result cache.
func attemptKeyFor(opt Options, start *pg.Flow, ws []graph.NodeID, cfg see.Config, rung int, ring bool) AttemptKey {
	wcfg := cfg.WithDefaults()
	k := AttemptKey{
		DDG:    opt.ddgFP,
		Topo:   start.T.Fingerprint(),
		Start:  start.Fingerprint(),
		WS:     wsFingerprint(ws),
		MIIRec: start.MIIRecStatic,
		Beam:   wcfg.BeamWidth,
		Cand:   wcfg.CandWidth,
		Rung:   uint8(rung),
	}
	if rung == 0 && opt.SchedulingAware {
		k.Flags |= kfSchedAware
	}
	if cfg.RouterOnly {
		k.Flags |= kfRouterOnly
	}
	if cfg.DisableRouter {
		k.Flags |= kfDisableRouter
	}
	if cfg.DisableDedup {
		k.Flags |= kfDisableDedup
	}
	if !opt.DisableRematerialization {
		k.Flags |= kfRemat
	}
	if ring {
		k.Flags |= kfRing
	}
	k.Engine = opt.engineID()
	if k.Engine == engineExact {
		k.Budget = exact.EffectiveBudget(opt.ExactBudget)
	}
	return k
}

// wsFingerprint hashes the working-set node list (order-sensitive: the
// list order seeds the priority list's stable sort).
func wsFingerprint(ws []graph.NodeID) pg.Fingerprint {
	h := pg.Fingerprint{}.Absorb(0x7773) // domain separator "ws"
	h = h.Absorb(uint64(len(ws)))
	for _, n := range ws {
		h = h.Absorb(uint64(n))
	}
	return h
}

// runAttempt executes one retry-ladder attempt: the engine's solve plus
// the pass-through routing of values that arrive on an input wire and
// leave on an output wire without a producer in this working set (the
// engines only route around assigned instructions). Routing lives here,
// above the engine, so every engine's attempt covers the identical
// contract.
func runAttempt(ctx context.Context, eng Engine, start *pg.Flow, ws []graph.NodeID, cfg see.Config) attemptOutcome {
	res, err := eng.Solve(ctx, start, ws, cfg)
	if err != nil {
		return attemptOutcome{err: err, engine: eng.Name()}
	}
	out := attemptOutcome{
		flow: res.Flow, stats: res.Stats, score: res.Score,
		proved: res.Proved, bound: res.Bound, volatile: res.Volatile,
		engine: res.Winner,
	}
	if out.flow == nil {
		// An exact leg that only certified an externally injected
		// incumbent has no flow of its own to route.
		return out
	}
	for _, o := range start.T.OutputNodes() {
		for _, v := range start.T.Cluster(o).Carries {
			if !out.flow.Available(v, o) {
				if rerr := out.flow.Route(v, o); rerr != nil {
					out.flow.Release()
					return attemptOutcome{err: fmt.Errorf("pass-through value %d: %w", v, rerr), engine: out.engine}
				}
			}
		}
	}
	return out
}

// solveAttempt runs one retry-ladder attempt through the configured
// engine, dispatching portfolio mode to its memo-aware race (each leg
// memoized under its own engine-discriminated key).
func solveAttempt(ctx context.Context, opt Options, key AttemptKey, start *pg.Flow, ws []graph.NodeID, cfg see.Config) (attemptOutcome, *MemoEntry) {
	eng := opt.engine()
	if p, ok := eng.(*portfolioEngine); ok {
		return p.raceAttempt(ctx, opt.Memo, key, start, ws, cfg)
	}
	out, e, _ := soloAttempt(ctx, opt.Memo, key, eng, start, ws, cfg)
	return out, e
}

// soloAttempt is runAttempt behind the memo: a verified hit returns the
// cached solution (cloned) without re-running the engine; a miss
// computes, publishes and returns. Cancelled computations and volatile
// results (race-dependent, non-reproducible) are abandoned, never
// cached. The returned entry (nil without a memo or on the fail-safe
// path) lets the caller reuse or attach the mapper result. fresh
// reports that the engine actually ran here — false only on a verified
// memo hit — so the portfolio's race-tax meter can count real work and
// ignore replays.
func soloAttempt(ctx context.Context, memo SubproblemMemo, key AttemptKey, eng Engine, start *pg.Flow, ws []graph.NodeID, cfg see.Config) (out attemptOutcome, entry *MemoEntry, fresh bool) {
	if memo == nil {
		return runAttempt(ctx, eng, start, ws, cfg), nil, true
	}
	e, leader, err := memo.Acquire(ctx, key)
	if err != nil {
		return attemptOutcome{err: err}, nil, false
	}
	if leader {
		memo.Observe(false, key.Engine)
		traceMemo(ctx, "memo.miss", "memo.misses", key)
		out := runAttempt(ctx, eng, start, ws, cfg)
		if (out.err != nil && ctx.Err() != nil) || out.volatile || (out.err == nil && out.flow == nil) {
			// Cancelled, race-dependent, or flow-less (incumbent-only
			// certificates): not reproducible content — never cached.
			memo.Abandon(key, e)
			return out, nil, true
		}
		e.fill(out, start.T, ws)
		memo.Complete(key, e)
		return out, e, true
	}
	if e.ok && e.matches(start.T, ws) {
		memo.Observe(true, key.Engine)
		traceMemo(ctx, "memo.hit", "memo.hits", key)
		return e.outcome(), e, false
	}
	// Abandoned leader, or a 128-bit key collision the full compare
	// caught: fail safe with a local solve and leave the cache alone.
	memo.Observe(false, key.Engine)
	traceMemo(ctx, "memo.miss", "memo.misses", key)
	return runAttempt(ctx, eng, start, ws, cfg), nil, true
}

func traceMemo(ctx context.Context, what, counter string, k AttemptKey) {
	_, sp := trace.Start(ctx, what)
	sp.SetInt("rung", int64(k.Rung))
	sp.End()
	trace.Count(ctx, counter, 1)
}
