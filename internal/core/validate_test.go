package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/see"
)

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	err := (Options{SEE: see.Config{BeamWidth: -8}}).Validate()
	var oe *see.OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not a typed *see.OptionError", err)
	}
	if oe.Field != "BeamWidth" {
		t.Errorf("Field = %q, want BeamWidth", oe.Field)
	}
}

func TestHCARejectsInvalidOptions(t *testing.T) {
	_, err := HCA(context.Background(), kernels.Fir2Dim(), machine.DSPFabric64(8, 8, 8),
		Options{SEE: see.Config{CandWidth: -1}})
	var oe *see.OptionError
	if !errors.As(err, &oe) {
		t.Errorf("HCA error %v is not a typed *see.OptionError", err)
	}
}

// HCAContext survives as a deprecated thin wrapper over HCA.
func TestDeprecatedHCAContextAlias(t *testing.T) {
	mc := machine.DSPFabric64(8, 8, 8)
	a, err := HCAContext(context.Background(), kernels.Fir2Dim(), mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HCA(context.Background(), kernels.Fir2Dim(), mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MII != b.MII || a.Recvs != b.Recvs || a.Legal != b.Legal {
		t.Errorf("alias diverged: %+v vs %+v", a.MII, b.MII)
	}
}
