package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/see"
)

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	err := (Options{SEE: see.Config{BeamWidth: -8}}).Validate()
	var oe *see.OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not a typed *see.OptionError", err)
	}
	if oe.Field != "BeamWidth" {
		t.Errorf("Field = %q, want BeamWidth", oe.Field)
	}
}

func TestHCARejectsInvalidOptions(t *testing.T) {
	_, err := HCA(context.Background(), kernels.Fir2Dim(), machine.DSPFabric64(8, 8, 8),
		Options{SEE: see.Config{CandWidth: -1}})
	var oe *see.OptionError
	if !errors.As(err, &oe) {
		t.Errorf("HCA error %v is not a typed *see.OptionError", err)
	}
}

// Unknown engine names are rejected with a typed option error before
// any work starts (the daemon maps these onto HTTP 400).
func TestHCARejectsUnknownEngine(t *testing.T) {
	_, err := HCA(context.Background(), kernels.Fir2Dim(), machine.DSPFabric64(8, 8, 8),
		Options{Engine: "simulated-annealing"})
	var oe *see.OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("HCA error %v is not a typed *see.OptionError", err)
	}
	if oe.Field != "engine" {
		t.Errorf("OptionError field %q, want \"engine\"", oe.Field)
	}
}
