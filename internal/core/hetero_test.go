package core

import (
	"context"
	"testing"

	"repro/internal/kernels"
	"repro/internal/machine"
)

func TestHCAHeterogeneousRCP(t *testing.T) {
	// §2.1: only some RCP PEs can issue memory instructions. Clusterize
	// fir2dim (10 memory ops) on a ring where only clusters 0, 2, 4, 6
	// are memory-capable and check that every load/store landed there.
	mc := machine.RCPHetero(8, 2, 3, []int{0, 2, 4, 6})
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	d := kernels.Fir2Dim()
	res, err := HCA(context.Background(), d, mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Nodes {
		if d.Nodes[i].Op.IsMem() && !mc.MemCapable(res.CN[i]) {
			t.Errorf("memory op %d on non-memory CN %d", i, res.CN[i])
		}
	}
	if !res.Legal {
		t.Fatal("not legal")
	}
}

func TestHCAHeterogeneousDSPFabric(t *testing.T) {
	// Hierarchical machine where only the first two CNs of every leaf
	// group have an address generator.
	var memCNs []int
	for cn := 0; cn < 64; cn++ {
		if cn%4 < 2 {
			memCNs = append(memCNs, cn)
		}
	}
	mc := machine.DSPFabric64(8, 8, 8)
	mc.MemCNs = memCNs
	d := kernels.IDCTHor()
	res, err := HCA(context.Background(), d, mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Nodes {
		if d.Nodes[i].Op.IsMem() && !mc.MemCapable(res.CN[i]) {
			t.Errorf("memory op %d on non-memory CN %d", i, res.CN[i])
		}
	}
}

func TestSchedulingAwareOption(t *testing.T) {
	// The §7 extension must still produce legal clusterizations; its
	// effect on the achieved II is measured by experiment E12.
	mc := machine.DSPFabric64(8, 8, 8)
	for _, k := range kernels.All() {
		res, err := HCA(context.Background(), k.Build(), mc, Options{SchedulingAware: true})
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if !res.Legal {
			t.Errorf("%s: not legal", k.Name)
		}
	}
}

func TestMemCapableHelpers(t *testing.T) {
	mc := machine.RCPHetero(8, 2, 2, []int{1, 3})
	if mc.NumMemCNs() != 2 {
		t.Errorf("NumMemCNs = %d", mc.NumMemCNs())
	}
	if mc.MemCapable(0) || !mc.MemCapable(1) {
		t.Error("MemCapable wrong")
	}
	homo := machine.RCP(8, 2, 2)
	if homo.NumMemCNs() != 8 || !homo.MemCapable(5) {
		t.Error("homogeneous machine should be fully capable")
	}
	bad := machine.RCPHetero(8, 2, 2, []int{9})
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range mem CN accepted")
	}
	empty := machine.RCPHetero(8, 2, 2, []int{})
	if err := empty.Validate(); err == nil {
		t.Error("empty mem CN list accepted")
	}
}
