package pg

import "math/bits"

// Incremental state fingerprinting (the Zobrist scheme).
//
// A Flow's observable search state is a grow-only set of facts:
//
//	assign(c, n)   instruction n placed on cluster c
//	copy(x, y, v)  value v carried by the real arc x→y
//	insrc(x, y)    inSrc[y] bit x set (by a copy or a reserved arc)
//	outdst(x, y)   outDst[x] bit y set (by a copy or a reserved arc)
//	avail(c, v)    value v available at cluster c
//	ubiq(v)        value v rematerialized at every regular cluster
//	send(x, k)     sendLoad[x] reached k (value-transition encoding:
//	               each increment XORs the old and the new level, since
//	               the re-send decision depends on assignment order and
//	               is not derivable from the set facts alone)
//
// Every fact is hashed to a 128-bit key by a splitmix64-style mixer (no
// tables, no allocation) and XORed into the running fingerprint, so
// mutation and undo are the same O(1) operation. All remaining Flow
// state (nInstr, memInstr, recvLoad, distinctOut, assigned, the BFS
// scratch) is derived from these facts and deliberately excluded.
//
// Cluster labels are *canonicalized* when the topology is symmetric
// (homogeneous all-to-all regular clusters, the DSPFabric shape): a
// regular cluster receives its canonical label the first time any fact
// touches it, in touch order. Two states that differ only by a
// permutation of interchangeable clusters then produce the identical
// fingerprint — which is exactly when the beam search is wasting slots
// on redundant twins. On asymmetric topologies (rings, heterogeneous
// memory slots) labels stay raw and the fingerprint is an exact state
// hash. Special input/output nodes are always distinguishable and keep
// their raw IDs.

// Fingerprint is the 128-bit incremental hash of a Flow's search state.
// It is a comparable value type: equal states (up to cluster symmetry,
// see above) produce equal fingerprints, and distinct states collide
// with probability ~2^-128 per pair. Consumers that cannot tolerate
// even that (the subproblem memo) back a hit with a full compare.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether fp is the zero fingerprint (no facts folded).
func (fp Fingerprint) IsZero() bool { return fp.Hi == 0 && fp.Lo == 0 }

// Fact kinds. Values matter only for distinctness within the packed
// fact word.
const (
	fkAssign uint64 = iota + 1
	fkCopy
	fkInSrc
	fkOutDst
	fkAvail
	fkUbiq
	fkSend
)

// fpMix64 is the splitmix64 finalizer: a cheap, high-quality bijective
// mixer, so distinct packed fact words map to well-spread keys without
// any lookup tables.
//
//hca:hotpath
func fpMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpFact hashes one fact to its 128-bit Zobrist key. The two halves mix
// the same packed word against independent seeds, giving 128 bits of
// collision resistance at the cost of two multiplies per half.
//
//hca:hotpath
func fpFact(kind uint64, a, b ClusterID, v int64) Fingerprint {
	w := kind<<56 | uint64(uint8(a+1))<<48 | uint64(uint8(b+1))<<40 | uint64(v)&(1<<40-1)
	return Fingerprint{
		Hi: fpMix64(w ^ 0xa0761d6478bd642f),
		Lo: fpMix64(w ^ 0xe7037ed1a0b428db),
	}
}

// fpXor folds (or unfolds — XOR is its own inverse) one fact key.
//
//hca:hotpath
func (f *Flow) fpXor(k Fingerprint) {
	f.fp.Hi ^= k.Hi
	f.fp.Lo ^= k.Lo
}

// canonLabel returns the cluster label used in fact keys, assigning the
// next canonical label on a symmetric topology when c (a regular
// cluster) is touched for the first time. The assignment is journaled
// so Rollback restores the canonical map along with the facts.
//
//hca:hotpath
func (f *Flow) canonLabel(c ClusterID) ClusterID {
	if !f.canonSym || int(c) >= f.T.regular {
		return c
	}
	if f.canon[c] == None {
		f.canon[c] = ClusterID(f.canonN)
		f.canonN++
		if f.journaling {
			f.journal = append(f.journal, undoEntry{op: undoTouch, x: c})
		}
	}
	return f.canon[c]
}

// canonOf is the read-only half of canonLabel, for the undo path: the
// label is guaranteed to exist because the forward mutation created it.
//
//hca:hotpath
func (f *Flow) canonOf(c ClusterID) ClusterID {
	if !f.canonSym || int(c) >= f.T.regular {
		return c
	}
	return f.canon[c]
}

// fpUbiq folds the avail facts MarkUbiquitous adds for value v. When
// the whole regular set is added at once on a symmetric topology the
// aggregate is itself permutation-invariant, so it folds as a single
// ubiq(v) fact and touches no cluster (preserving symmetry); a partial
// mask falls back to per-cluster avail facts. XOR symmetry makes the
// same call serve both the forward mutation and its undo.
//
//hca:hotpath
func (f *Flow) fpUbiq(v ValueID, mask uint64) {
	if f.canonSym && mask == f.allRegMask {
		f.fpXor(fpFact(fkUbiq, 0, 0, int64(v)))
		return
	}
	for m := mask; m != 0; m &= m - 1 {
		c := ClusterID(bits.TrailingZeros64(m))
		f.fpXor(fpFact(fkAvail, f.canonLabel(c), 0, int64(v)))
	}
}

// Fingerprint returns the incremental 128-bit hash of the flow's
// current search state. O(1): the value is maintained by every mutator
// and restored exactly by Rollback and CopyFrom.
//
//hca:hotpath
func (f *Flow) Fingerprint() Fingerprint { return f.fp }

// topoSymmetric reports whether the regular clusters of t are fully
// interchangeable: identical issue and memory slots, and an all-to-all
// potential matrix among them. Special nodes are symmetric by
// construction (input nodes broadcast to every regular cluster, output
// nodes listen to every regular cluster), so they need no check.
func topoSymmetric(t *Topology) bool {
	if t.regular < 2 {
		return false
	}
	c0 := &t.clusters[0]
	for i := 1; i < t.regular; i++ {
		if t.clusters[i].IssueSlots != c0.IssueSlots || t.clusters[i].MemSlots != c0.MemSlots {
			return false
		}
	}
	for i := 0; i < t.regular; i++ {
		for j := 0; j < t.regular; j++ {
			if t.potential[i][j] != (i != j) {
				return false
			}
		}
	}
	return true
}

// fpAbsorb extends a sequential (order-sensitive) 128-bit hash by one
// word; the helper behind Topology.Fingerprint and the memo's
// working-set hash.
func fpAbsorb(h Fingerprint, w uint64) Fingerprint {
	return Fingerprint{
		Hi: fpMix64(h.Hi ^ w),
		Lo: fpMix64(h.Lo ^ (w*0x9e3779b97f4a7c15 + 1)),
	}
}

// Absorb returns the hash extended by one word — the exported form of
// the sequential mixer, for consumers (the subproblem memo) that fold
// auxiliary data such as working-set node lists into a comparable
// 128-bit key. Order-sensitive: Absorb(a).Absorb(b) != Absorb(b).Absorb(a).
func (fp Fingerprint) Absorb(w uint64) Fingerprint { return fpAbsorb(fp, w) }

// Fingerprint returns a canonical structural hash of the topology:
// cluster shapes (kind, issue/memory slots, carried values), the port
// budgets and the full potential matrix. The Name is deliberately
// excluded — subproblem topologies embed their hierarchy path in the
// name, and the memo must identify structurally identical subproblems
// across passes, variants and requests.
func (t *Topology) Fingerprint() Fingerprint {
	h := fpAbsorb(Fingerprint{}, 0x746f706f) // domain separator "topo"
	h = fpAbsorb(h, uint64(t.MaxIn))
	h = fpAbsorb(h, uint64(t.MaxOut))
	h = fpAbsorb(h, uint64(t.regular))
	h = fpAbsorb(h, uint64(len(t.clusters)))
	for i := range t.clusters {
		c := &t.clusters[i]
		h = fpAbsorb(h, uint64(c.Kind)<<32|uint64(uint32(c.IssueSlots)))
		h = fpAbsorb(h, uint64(uint32(c.MemSlots))<<32|uint64(uint32(len(c.Carries))))
		for _, v := range c.Carries {
			h = fpAbsorb(h, uint64(v))
		}
	}
	for i := range t.clusters {
		var row uint64
		if i < len(t.potential) {
			for j, ok := range t.potential[i] {
				if ok {
					row |= 1 << uint(j)
				}
			}
		}
		h = fpAbsorb(h, row)
	}
	return h
}

// Equal reports whether t and o are structurally identical (everything
// Fingerprint covers; Name excluded). The subproblem memo uses it as
// the fail-safe full compare behind a fingerprint hit, so a 128-bit
// collision degrades to a cache miss instead of a wrong answer.
func (t *Topology) Equal(o *Topology) bool {
	if t == o {
		return true
	}
	if o == nil || t.MaxIn != o.MaxIn || t.MaxOut != o.MaxOut ||
		t.regular != o.regular || len(t.clusters) != len(o.clusters) {
		return false
	}
	for i := range t.clusters {
		a, b := &t.clusters[i], &o.clusters[i]
		if a.Kind != b.Kind || a.IssueSlots != b.IssueSlots || a.MemSlots != b.MemSlots ||
			len(a.Carries) != len(b.Carries) {
			return false
		}
		for j := range a.Carries {
			if a.Carries[j] != b.Carries[j] {
				return false
			}
		}
	}
	n := len(t.clusters)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if t.Potential(ClusterID(i), ClusterID(j)) != o.Potential(ClusterID(i), ClusterID(j)) {
				return false
			}
		}
	}
	return true
}
