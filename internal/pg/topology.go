// Package pg implements the Pattern Graph of §3: the abstraction of one
// level of the machine's interconnection hierarchy that the Space
// Exploration Engine assigns DDG instructions onto.
//
// A Topology holds the clusters of the level (each embracing a set of
// computation nodes summarized by an issue-slot count), the *potential*
// communication arcs between them, and the reconfiguration constraints —
// the maximum number of input/output neighbors per cluster (the MUX
// capacities) and the unary fan-in of output wires (outNode_MaxIn, §4.1).
//
// Special *input nodes* and *output nodes* (one per inter-level wire, as
// prescribed by the Inter Level Interface) carry the value lists flowing
// between a subproblem and its father.
//
// A Flow is the mutable assignment-and-copy state layered over a Topology:
// which DDG node lives on which cluster, which arcs have become *real*
// patterns and which values they carry. Flows clone cheaply, which is what
// the SEE beam search needs.
package pg

import (
	"fmt"

	"repro/internal/graph"
)

// ValueID names a value flowing between clusters: the DDG node that
// produces it.
type ValueID = graph.NodeID

// ClusterID indexes a cluster within one Topology.
type ClusterID int

// None marks an unassigned instruction or an absent cluster.
const None ClusterID = -1

// Kind distinguishes regular clusters from the ILI's special nodes.
type Kind int

const (
	// Regular clusters embrace computation nodes and can host instructions.
	Regular Kind = iota
	// InNode represents one wire entering the level from the father; it
	// carries a fixed value list and can broadcast to every cluster.
	InNode
	// OutNode represents one wire leaving the level toward the father; it
	// must receive its carried values through exactly one real arc
	// (outNode_MaxIn = 1).
	OutNode
)

func (k Kind) String() string {
	switch k {
	case Regular:
		return "cluster"
	case InNode:
		return "in"
	case OutNode:
		return "out"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Cluster is one node of the Pattern Graph.
type Cluster struct {
	ID         ClusterID
	Kind       Kind
	IssueSlots int // computation nodes embraced (resource table)
	// MemSlots is the number of embraced CNs able to issue memory
	// instructions; 0 makes the cluster ineligible for loads/stores
	// (§2.1's heterogeneous RCP). NewTopology defaults it to IssueSlots.
	MemSlots int
	// Carries lists the values on this wire: arriving values for an
	// InNode, departing values for an OutNode. Empty for Regular.
	Carries []ValueID
}

// arcShift packs an ordered cluster pair into one arc key:
// key = from<<arcShift | to. Valid because maxClusters = 1<<arcShift.
const arcShift = 6

// Topology is the immutable part of a Pattern Graph: clusters, potential
// arcs and constraints. The mutators below incrementally maintain a set
// of derived caches — flat bitmasks and index tables — that the Flow hot
// path (Assign/Route/EstimateMII) reads instead of walking the cluster
// records, so a topology is cheap to *use* no matter how it was built.
type Topology struct {
	Name string
	// MaxIn bounds the number of distinct in-neighbors of a regular
	// cluster (the MUX capacity at this level). MaxOut bounds distinct
	// out-neighbors; 0 means unlimited (broadcast, §2.2).
	MaxIn, MaxOut int

	clusters  []Cluster
	potential [][]bool // potential[from][to]
	regular   int      // number of regular clusters (prefix of clusters)

	// Derived caches (hot-path views of the state above).
	potMask []uint64 // potMask[from]: bitmask of potential out-neighbors
	regMask uint64   // bitmask of regular clusters
	inMask  uint64   // bitmask of input nodes
	outMask uint64   // bitmask of output nodes
	issue   []int32  // per cluster: IssueSlots (0 for special nodes)
	mem     []int32  // per cluster: MemSlots (0 for special nodes)
	inList  []ClusterID
	outList []ClusterID
	// arcIdx maps a packed (from<<arcShift|to) pair to a dense arc index
	// in [0, numArcs), or -1 while the pair has never been a potential
	// arc. Indices are handed out once and never revoked (a removed
	// potential arc keeps its slot; it just can never carry a copy), so
	// Flow bitset rows stay valid across SetPotential churn.
	arcIdx  []int32
	numArcs int
	// carrier maps a value to the output nodes that must carry it, in
	// ascending node order — the table Assign walks instead of scanning
	// every output node's Carries list per placed instruction.
	// carrierBits is its membership bitset (word v>>6, bit v&63): most
	// values are carried by no output node, so Assign probes one bit
	// before paying for the map lookup.
	carrier     map[ValueID][]ClusterID
	carrierBits []uint64
}

// NewTopology creates a pattern graph with n regular clusters of the given
// issue width and no potential arcs; add them with SetPotential or
// AllToAll.
func NewTopology(name string, n, issueSlots, maxIn, maxOut int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("pg: NewTopology: need >= 1 cluster, have %d", n))
	}
	if n > maxClusters {
		panic(fmt.Sprintf("pg: NewTopology: %d clusters exceeds the %d-cluster limit", n, maxClusters))
	}
	if issueSlots < 1 {
		panic("pg: NewTopology: issueSlots must be positive")
	}
	if maxIn < 1 {
		panic("pg: NewTopology: maxIn must be positive")
	}
	t := &Topology{
		Name: name, MaxIn: maxIn, MaxOut: maxOut, regular: n,
		potMask: make([]uint64, maxClusters),
		carrier: make(map[ValueID][]ClusterID),
	}
	for i := 0; i < n; i++ {
		t.clusters = append(t.clusters, Cluster{ID: ClusterID(i), Kind: Regular, IssueSlots: issueSlots, MemSlots: issueSlots})
		t.issue = append(t.issue, int32(issueSlots))
		t.mem = append(t.mem, int32(issueSlots))
		t.regMask |= 1 << uint(i)
	}
	t.potential = make([][]bool, n)
	for i := range t.potential {
		t.potential[i] = make([]bool, n)
	}
	return t
}

// addArc records the potential arc from→to in the derived caches,
// assigning a dense arc index on first sight.
func (t *Topology) addArc(from, to ClusterID) {
	t.potMask[from] |= 1 << uint(to)
	key := int32(from)<<arcShift | int32(to)
	// arcIdx tracks the highest source cluster seen rather than being
	// sized for maxClusters up front: a topology of n clusters needs
	// n<<arcShift entries, a fraction of the 64<<arcShift worst case.
	for int(key) >= len(t.arcIdx) {
		t.arcIdx = append(t.arcIdx, -1)
	}
	if t.arcIdx[key] < 0 {
		t.arcIdx[key] = int32(t.numArcs)
		t.numArcs++
	}
}

// AllToAll adds potential arcs between every ordered pair of distinct
// regular clusters (the DSPFabric view: MUXes make each cluster reachable
// from all the others, Figure 7).
func (t *Topology) AllToAll() {
	for i := 0; i < t.regular; i++ {
		for j := 0; j < t.regular; j++ {
			if i != j {
				t.potential[i][j] = true
				t.addArc(ClusterID(i), ClusterID(j))
			}
		}
	}
}

// SetPotential declares or removes the potential arc from→to.
func (t *Topology) SetPotential(from, to ClusterID, ok bool) {
	if from == to {
		panic("pg: SetPotential: self arc")
	}
	t.mustRegular(from)
	t.mustRegular(to)
	t.potential[from][to] = ok
	if ok {
		t.addArc(from, to)
	} else {
		t.potMask[from] &^= 1 << uint(to)
	}
}

// AddInputNode appends a special input node carrying the given values and
// returns its ID. Input nodes have potential arcs to every regular
// cluster (ingoing values can be broadcast anywhere, §4.1).
func (t *Topology) AddInputNode(carries []ValueID) ClusterID {
	id := t.addSpecial(InNode, carries)
	t.inMask |= 1 << uint(id)
	t.inList = append(t.inList, id)
	for i := 0; i < t.regular; i++ {
		t.potential[id][i] = true
		t.addArc(id, ClusterID(i))
	}
	return id
}

// AddOutputNode appends a special output node that must receive the given
// values, and returns its ID. Every regular cluster has a potential arc to
// it, but only one may become real (outNode_MaxIn).
func (t *Topology) AddOutputNode(carries []ValueID) ClusterID {
	id := t.addSpecial(OutNode, carries)
	t.outMask |= 1 << uint(id)
	t.outList = append(t.outList, id)
	for i := 0; i < t.regular; i++ {
		t.potential[i][id] = true
		t.addArc(ClusterID(i), id)
	}
	for _, v := range carries {
		t.carrier[v] = append(t.carrier[v], id)
		if w := int(v) >> 6; w >= len(t.carrierBits) {
			t.carrierBits = append(t.carrierBits, make([]uint64, w+1-len(t.carrierBits))...)
		}
		t.carrierBits[v>>6] |= 1 << (uint(v) & 63)
	}
	return id
}

func (t *Topology) addSpecial(k Kind, carries []ValueID) ClusterID {
	if len(t.clusters) >= maxClusters {
		panic(fmt.Sprintf("pg: topology %q exceeds the %d-cluster limit", t.Name, maxClusters))
	}
	id := ClusterID(len(t.clusters))
	t.clusters = append(t.clusters, Cluster{
		ID: id, Kind: k, Carries: append([]ValueID(nil), carries...),
	})
	t.issue = append(t.issue, 0)
	t.mem = append(t.mem, 0)
	t.growPotential()
	return id
}

func (t *Topology) growPotential() {
	n := len(t.clusters)
	for i := range t.potential {
		for len(t.potential[i]) < n {
			t.potential[i] = append(t.potential[i], false)
		}
	}
	for len(t.potential) < n {
		t.potential = append(t.potential, make([]bool, n))
	}
}

// SetMemSlots sets the number of memory-capable CNs inside a regular
// cluster (0 disallows loads/stores entirely).
func (t *Topology) SetMemSlots(id ClusterID, n int) {
	t.mustRegular(id)
	if n < 0 || n > t.clusters[id].IssueSlots {
		panic(fmt.Sprintf("pg: SetMemSlots: %d out of range [0,%d]", n, t.clusters[id].IssueSlots))
	}
	t.clusters[id].MemSlots = n
	t.mem[id] = int32(n)
}

// NumClusters returns the total cluster count including special nodes.
func (t *Topology) NumClusters() int { return len(t.clusters) }

// NumRegular returns the number of regular clusters.
func (t *Topology) NumRegular() int { return t.regular }

// Cluster returns the cluster record.
func (t *Topology) Cluster(id ClusterID) *Cluster {
	t.mustHave(id)
	return &t.clusters[id]
}

// Potential reports whether a potential arc from→to exists.
func (t *Topology) Potential(from, to ClusterID) bool {
	t.mustHave(from)
	t.mustHave(to)
	return t.potential[from][to]
}

// InputNodes returns the IDs of all input nodes, ascending. The slice is
// a maintained cache; callers must not mutate it.
func (t *Topology) InputNodes() []ClusterID { return t.inList }

// OutputNodes returns the IDs of all output nodes, ascending. The slice
// is a maintained cache; callers must not mutate it.
func (t *Topology) OutputNodes() []ClusterID { return t.outList }

// isRegular is the bitmask form of Cluster(id).Kind == Regular.
//
//hca:hotpath
func (t *Topology) isRegular(id ClusterID) bool { return t.regMask&(1<<uint(id)) != 0 }

func (t *Topology) mustHave(id ClusterID) {
	if int(id) < 0 || int(id) >= len(t.clusters) {
		panic(fmt.Sprintf("pg: bad cluster id %d", id))
	}
}

func (t *Topology) mustRegular(id ClusterID) {
	t.mustHave(id)
	if t.clusters[id].Kind != Regular {
		panic(fmt.Sprintf("pg: cluster %d is not regular", id))
	}
}
