package pg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// diffFlows returns a description of the first state difference between
// two flows, or "" when they are bit-identical (including the
// incremental objective caches). The journal and scratch buffers are
// deliberately excluded: they are engine state, not assignment state.
func diffFlows(a, b *Flow) string {
	if a.T != b.T || a.D != b.D {
		return "different Topology/DDG"
	}
	if a.assigned != b.assigned {
		return fmt.Sprintf("assigned %d != %d", a.assigned, b.assigned)
	}
	if a.fp != b.fp {
		return fmt.Sprintf("fingerprint %x != %x", a.fp, b.fp)
	}
	if a.canonN != b.canonN {
		return fmt.Sprintf("canonN %d != %d", a.canonN, b.canonN)
	}
	for c := range a.canon {
		if a.canon[c] != b.canon[c] {
			return fmt.Sprintf("canon[%d] %d != %d", c, a.canon[c], b.canon[c])
		}
	}
	for n := range a.assign {
		if a.assign[n] != b.assign[n] {
			return fmt.Sprintf("assign[%d] %d != %d", n, a.assign[n], b.assign[n])
		}
	}
	for v := range a.avail {
		if a.avail[v] != b.avail[v] {
			return fmt.Sprintf("avail[%d] %x != %x", v, a.avail[v], b.avail[v])
		}
	}
	for c := 0; c < a.T.NumClusters(); c++ {
		for s := 0; s < cntStride; s++ {
			if a.cnt[c*cntStride+s] != b.cnt[c*cntStride+s] {
				return fmt.Sprintf("cnt[%d].%d %d != %d", c, s, a.cnt[c*cntStride+s], b.cnt[c*cntStride+s])
			}
		}
		if a.inSrc[c] != b.inSrc[c] {
			return fmt.Sprintf("inSrc[%d] %x != %x", c, a.inSrc[c], b.inSrc[c])
		}
		if a.outDst[c] != b.outDst[c] {
			return fmt.Sprintf("outDst[%d] %x != %x", c, a.outDst[c], b.outDst[c])
		}
	}
	if len(a.copyLog) != len(b.copyLog) {
		return fmt.Sprintf("copyLog: %d entries != %d", len(a.copyLog), len(b.copyLog))
	}
	for i := range a.copyLog {
		if a.copyLog[i] != b.copyLog[i] {
			return fmt.Sprintf("copyLog[%d] %d→%d v%d != %d→%d v%d", i,
				a.copyLog[i].arc>>arcShift, a.copyLog[i].arc&(maxClusters-1), a.copyLog[i].v,
				b.copyLog[i].arc>>arcShift, b.copyLog[i].arc&(maxClusters-1), b.copyLog[i].v)
		}
	}
	for w := range a.arcHas {
		if a.arcHas[w] != b.arcHas[w] {
			return fmt.Sprintf("arcHas[%d] %x != %x", w, a.arcHas[w], b.arcHas[w])
		}
	}
	return ""
}

// fanDDG builds a DDG with some parallelism and cross-links so routed
// assignments exercise multi-value arcs.
func fanDDG(n int) *ddg.DDG {
	d := ddg.New("fan")
	roots := []graph.NodeID{d.AddConst(1, "r0"), d.AddConst(2, "r1")}
	for i := 2; i < n; i++ {
		op := d.AddOp(ddg.OpAdd, fmt.Sprintf("n%d", i))
		d.AddDep(roots[i%len(roots)], op, 0, 0)
		if i > 2 {
			d.AddDep(graph.NodeID(i-1), op, 1, 0)
		}
		roots = append(roots, op)
	}
	return d
}

func TestRollbackRestoresAfterAssigns(t *testing.T) {
	d := fanDDG(12)
	tp := NewTopology("t", 4, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	snap := f.Clone()
	mark := f.Checkpoint()
	for n := graph.NodeID(2); n < 8; n++ {
		if err := f.Assign(n, ClusterID(int(n)%4)); err != nil {
			t.Fatalf("assign %d: %v", n, err)
		}
	}
	if diff := diffFlows(f, snap); diff == "" {
		t.Fatal("assigns had no observable effect")
	}
	f.Rollback(mark)
	if diff := diffFlows(f, snap); diff != "" {
		t.Fatalf("rollback did not restore: %s", diff)
	}
	// The rolled-back flow must still be fully usable.
	for n := graph.NodeID(2); n < 8; n++ {
		if err := f.Assign(n, ClusterID(int(n+1)%4)); err != nil {
			t.Fatalf("post-rollback assign %d: %v", n, err)
		}
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackRestoresAfterFailedAssign(t *testing.T) {
	// Two isolated clusters: assigning a consumer on the far cluster
	// fails mid-Assign after the instruction slot mutations happened.
	d := ddg.New("x")
	a := d.AddConst(1, "a")
	u := d.AddOp(ddg.OpAbs, "u")
	d.AddDep(a, u, 0, 0)
	tp := NewTopology("iso", 2, 4, 2, 0) // no potential arcs
	f := NewFlow(tp, d)
	if err := f.Assign(a, 0); err != nil {
		t.Fatal(err)
	}
	snap := f.Clone()
	mark := f.Checkpoint()
	if err := f.Assign(u, 1); err == nil {
		t.Fatal("expected unroutable assign to fail")
	}
	f.Rollback(mark)
	if diff := diffFlows(f, snap); diff != "" {
		t.Fatalf("rollback after failed assign: %s", diff)
	}
}

func TestRollbackUbiquitousAndReserve(t *testing.T) {
	d := chainDDG(4)
	tp := NewTopology("t", 4, 4, 2, 1)
	tp.AllToAll()
	f := NewFlow(tp, d)
	snap := f.Clone()
	mark := f.Checkpoint()
	f.MarkUbiquitous(0)
	if err := f.ReserveArc(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.ReserveArc(1, 2); err != nil {
		t.Fatal(err)
	}
	f.Rollback(mark)
	if diff := diffFlows(f, snap); diff != "" {
		t.Fatalf("rollback: %s", diff)
	}
}

func TestNestedCheckpoints(t *testing.T) {
	d := fanDDG(10)
	tp := NewTopology("t", 4, 4, 4, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	m0 := f.Checkpoint()
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	snap1 := f.Clone()
	m1 := f.Checkpoint()
	if err := f.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(2, 2); err != nil {
		t.Fatal(err)
	}
	f.Rollback(m1)
	if diff := diffFlows(f, snap1); diff != "" {
		t.Fatalf("inner rollback: %s", diff)
	}
	f.Rollback(m0)
	fresh := NewFlow(tp, d)
	if diff := diffFlows(f, fresh); diff != "" {
		t.Fatalf("outer rollback: %s", diff)
	}
}

func TestDropJournalStopsRecording(t *testing.T) {
	d := chainDDG(6)
	tp := NewTopology("t", 2, 8, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	f.Checkpoint()
	if !f.Journaling() {
		t.Fatal("Checkpoint did not enable journaling")
	}
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	f.DropJournal()
	if f.Journaling() {
		t.Fatal("DropJournal left journaling on")
	}
	if err := f.Assign(1, 0); err != nil {
		t.Fatal(err)
	}
	if len(f.journal) != 0 {
		t.Fatalf("journal grew after DropJournal: %d entries", len(f.journal))
	}
}

func TestCopyFromMatchesCloneAndDoesNotAlias(t *testing.T) {
	d := fanDDG(14)
	tp := NewTopology("t", 4, 4, 2, 0)
	tp.AllToAll()
	src := NewFlow(tp, d)
	for n := graph.NodeID(0); n < 10; n++ {
		if err := src.Assign(n, ClusterID(int(n)%4)); err != nil {
			t.Fatalf("assign %d: %v", n, err)
		}
	}
	scratch := NewFlow(tp, d)
	// Pre-dirty the scratch so CopyFrom must also erase stale state.
	if err := scratch.Assign(0, 3); err != nil {
		t.Fatal(err)
	}
	scratch.Checkpoint()
	scratch.CopyFrom(src)
	if scratch.Journaling() {
		t.Fatal("CopyFrom left journaling on")
	}
	if diff := diffFlows(scratch, src); diff != "" {
		t.Fatalf("CopyFrom: %s", diff)
	}
	// Mutating the scratch must not leak into src.
	snap := src.Clone()
	mark := scratch.Checkpoint()
	if err := scratch.Assign(10, 0); err != nil {
		t.Fatal(err)
	}
	scratch.Rollback(mark)
	if diff := diffFlows(src, snap); diff != "" {
		t.Fatalf("scratch mutation leaked into src: %s", diff)
	}
	if diff := diffFlows(scratch, src); diff != "" {
		t.Fatalf("scratch rollback after CopyFrom: %s", diff)
	}
}

func TestCopyFromRejectsForeignFlow(t *testing.T) {
	d := chainDDG(4)
	tpA := NewTopology("a", 2, 4, 2, 0)
	tpA.AllToAll()
	tpB := NewTopology("b", 2, 4, 2, 0)
	tpB.AllToAll()
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across topologies did not panic")
		}
	}()
	NewFlow(tpA, d).CopyFrom(NewFlow(tpB, d))
}

// TestRandomizedAssignRollback is the journal's property test: random
// DDGs, random (possibly failing) assignment bursts under a checkpoint,
// rollback, and a bit-exact comparison against the pre-checkpoint clone
// — repeated with nested bursts and interleaved committed work.
func TestRandomizedAssignRollback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nOps := 8 + rng.Intn(24)
		d := randomDDG(rng, nOps)
		k := 2 + rng.Intn(3)
		maxIn := 1 + rng.Intn(3)
		tp := NewTopology(fmt.Sprintf("rt%d", trial), k, 2+rng.Intn(3), maxIn, 0)
		tp.AllToAll()
		if rng.Intn(2) == 0 {
			tp.AddInputNode([]ValueID{0})
		}
		f := NewFlow(tp, d)
		order := rng.Perm(nOps)
		pos := 0
		for pos < len(order) {
			snap := f.Clone()
			mark := f.Checkpoint()
			burst := 1 + rng.Intn(4)
			assignedHere := 0
			for b := 0; b < burst && pos < len(order); b++ {
				n := graph.NodeID(order[pos])
				c := ClusterID(rng.Intn(k))
				if rng.Intn(4) == 0 {
					f.MarkUbiquitous(ValueID(rng.Intn(nOps)))
				}
				if err := f.Assign(n, c); err == nil {
					assignedHere++
				}
				pos++
			}
			_ = assignedHere
			if rng.Intn(2) == 0 {
				// Abandon the burst: the flow must equal the snapshot.
				f.Rollback(mark)
				if diff := diffFlows(f, snap); diff != "" {
					t.Fatalf("trial %d: rollback: %s", trial, diff)
				}
			} else {
				// Commit the burst; caches must survive a recount.
				f.DropJournal()
				if err := verifyCaches(f); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		}
	}
}

// verifyCaches recounts the incremental objective caches from the copy
// log (the part of Verify that guards the delta engine, usable on flows
// that are mid-assignment and would fail full Verify).
func verifyCaches(f *Flow) error {
	total := 0
	distinct := make(map[ClusterID]map[ValueID]bool)
	f.ForEachCopy(func(from, to ClusterID, v ValueID) {
		total++
		if distinct[from] == nil {
			distinct[from] = make(map[ValueID]bool)
		}
		distinct[from][v] = true
	})
	if total != f.TotalCopies() {
		return fmt.Errorf("TotalCopies %d != recount %d", f.TotalCopies(), total)
	}
	for c := 0; c < f.T.NumClusters(); c++ {
		if got, want := int(f.cnt[c*cntStride+cntDistinct]), len(distinct[ClusterID(c)]); got != want {
			return fmt.Errorf("cntDistinct[%d] cache %d != recount %d", c, got, want)
		}
	}
	return nil
}

// randomDDG builds a random acyclic DDG of n ops whose every non-root
// consumes 1-2 earlier values.
func randomDDG(rng *rand.Rand, n int) *ddg.DDG {
	d := ddg.New("rand")
	d.AddConst(1, "c0")
	for i := 1; i < n; i++ {
		op := ddg.OpAdd
		if rng.Intn(4) == 0 {
			op = ddg.OpMov
		}
		id := d.AddOp(op, fmt.Sprintf("n%d", i))
		d.AddDep(graph.NodeID(rng.Intn(i)), id, 0, 0)
		if op == ddg.OpAdd && rng.Intn(2) == 0 {
			d.AddDep(graph.NodeID(rng.Intn(i)), id, 1, 0)
		}
	}
	return d
}
