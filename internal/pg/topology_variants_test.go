package pg

import (
	"fmt"
	"testing"
)

// ringTopo builds a k-cluster topology whose potential matrix connects
// clusters within wrap-around distance nb — the pattern-graph image of
// a machine.Config ring fabric.
func ringTopo(k, nb int) *Topology {
	tp := NewTopology(fmt.Sprintf("ring%d-nb%d", k, nb), k, 8, 4, 4)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			d := a - b
			if d < 0 {
				d = -d
			}
			if k-d < d {
				d = k - d
			}
			if d <= nb {
				tp.SetPotential(ClusterID(a), ClusterID(b), true)
			}
		}
	}
	return tp
}

// lineTopo is ringTopo without the wrap-around — a linear array.
func lineTopo(k, nb int) *Topology {
	tp := NewTopology(fmt.Sprintf("line%d-nb%d", k, nb), k, 8, 4, 4)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			d := a - b
			if d < 0 {
				d = -d
			}
			if a != b && d <= nb {
				tp.SetPotential(ClusterID(a), ClusterID(b), true)
			}
		}
	}
	return tp
}

// memTopo is an all-to-all topology with the given per-cluster memory
// slots applied in the listed order.
func memTopo(k int, slots map[int]int) *Topology {
	tp := NewTopology("mem", k, 8, 4, 4)
	tp.AllToAll()
	for c, n := range slots {
		tp.SetMemSlots(ClusterID(c), n)
	}
	return tp
}

// TestTopologyFingerprintMemMixes pins the heterogeneous-memory
// discrimination the DSE dedup layer leans on: distinct memory-CN mixes
// must produce distinct fingerprints (and Equal must agree), while the
// same mix — however it was applied — must collapse.
func TestTopologyFingerprintMemMixes(t *testing.T) {
	mixes := []map[int]int{
		nil,          // homogeneous, no memory
		{0: 1},       // one memory cluster
		{0: 1, 4: 1}, // two, opposite corners
		{1: 1, 5: 1}, // same count, shifted placement
		{0: 1, 1: 1}, // same count, adjacent placement
		{0: 2},       // same cluster, more slots
		{0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1, 7: 1}, // all memory-capable
	}
	tops := make([]*Topology, len(mixes))
	for i, mix := range mixes {
		tops[i] = memTopo(8, mix)
	}
	for i := range tops {
		for j := i + 1; j < len(tops); j++ {
			if tops[i].Fingerprint() == tops[j].Fingerprint() {
				t.Errorf("mixes %v and %v collided", mixes[i], mixes[j])
			}
			if tops[i].Equal(tops[j]) {
				t.Errorf("mixes %v and %v Equal", mixes[i], mixes[j])
			}
		}
	}
	// The same mix applied again — different construction run, different
	// name — must be identical in both senses.
	again := memTopo(8, map[int]int{1: 1, 5: 1})
	again.Name = "other-name"
	if again.Fingerprint() != tops[3].Fingerprint() || !again.Equal(tops[3]) {
		t.Error("identical mem mix did not collapse")
	}
}

// TestTopologyFingerprintRingNeighbors pins the ring-variant behavior:
// widening the neighborhood changes the fingerprint until it saturates
// the ring, after which all wider neighborhoods — and the explicit
// all-to-all — are structurally one fabric. This is exactly the
// collapse dse.fabricFingerprint performs when a grid sweeps
// RingNeighbors past clusters/2.
func TestTopologyFingerprintRingNeighbors(t *testing.T) {
	const k = 8
	unsat := []*Topology{ringTopo(k, 1), ringTopo(k, 2), ringTopo(k, 3)}
	for i := range unsat {
		for j := i + 1; j < len(unsat); j++ {
			if unsat[i].Fingerprint() == unsat[j].Fingerprint() {
				t.Errorf("nb=%d and nb=%d collided below saturation", i+1, j+1)
			}
			if unsat[i].Equal(unsat[j]) {
				t.Errorf("nb=%d and nb=%d Equal below saturation", i+1, j+1)
			}
		}
	}
	// nb >= k/2 saturates: every cluster reaches every other.
	sat := ringTopo(k, 4)
	for nb := 5; nb <= 7; nb++ {
		wider := ringTopo(k, nb)
		if wider.Fingerprint() != sat.Fingerprint() || !wider.Equal(sat) {
			t.Errorf("nb=%d not identical to the saturated ring", nb)
		}
	}
	allToAll := NewTopology("a2a", k, 8, 4, 4)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a != b {
				allToAll.SetPotential(ClusterID(a), ClusterID(b), true)
			}
		}
	}
	if allToAll.Fingerprint() != sat.Fingerprint() || !allToAll.Equal(sat) {
		t.Error("saturated ring differs from all-to-all")
	}
}

// TestTopologyFingerprintLinearVsRing: the wrap-around edges are real
// structure — a linear array must never collapse onto the ring of the
// same neighborhood, until both saturate into the same complete graph.
func TestTopologyFingerprintLinearVsRing(t *testing.T) {
	const k = 8
	for nb := 1; nb <= 3; nb++ {
		if ringTopo(k, nb).Fingerprint() == lineTopo(k, nb).Fingerprint() {
			t.Errorf("nb=%d: ring and line collided", nb)
		}
		if ringTopo(k, nb).Equal(lineTopo(k, nb)) {
			t.Errorf("nb=%d: ring and line Equal", nb)
		}
	}
	// A line of neighborhood k-1 is complete, like the saturated ring.
	if ringTopo(k, 4).Fingerprint() != lineTopo(k, 7).Fingerprint() {
		t.Error("complete line differs from saturated ring")
	}
}

// TestTopologyFingerprintMemOnRing: the memory mix and the neighborhood
// discriminate independently — changing either alone changes the hash.
func TestTopologyFingerprintMemOnRing(t *testing.T) {
	base := ringTopo(8, 2)
	mem := ringTopo(8, 2)
	mem.SetMemSlots(0, 1)
	mem.SetMemSlots(4, 1)
	if base.Fingerprint() == mem.Fingerprint() || base.Equal(mem) {
		t.Fatal("mem mix invisible on a ring topology")
	}
	widened := ringTopo(8, 3)
	widened.SetMemSlots(0, 1)
	widened.SetMemSlots(4, 1)
	if mem.Fingerprint() == widened.Fingerprint() || mem.Equal(widened) {
		t.Fatal("neighborhood invisible under a mem mix")
	}
}
