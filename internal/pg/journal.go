package pg

// The mutation journal makes a Flow reversible: every state change of
// Assign, Route/addCopy, ReserveArc and MarkUbiquitous appends a typed
// undo entry while journaling is enabled, and Rollback replays the
// entries in reverse. The SEE's delta engine evaluates every candidate
// cluster of a beam state against one scratch flow via
// Checkpoint → Assign → score → Rollback, cloning only the few survivors
// that enter the frontier — this file is what replaced the
// clone-per-candidate hot path.
//
// Journal invariants:
//
//   - entries are strictly LIFO: Rollback(m) undoes journal[m:] in
//     reverse order, so interleaved rollbacks to arbitrary older marks
//     are legal as long as marks are used stack-like;
//   - each entry records only the deltas that actually happened (flag
//     bits): a bit that was already set, or a load counter that was not
//     incremented, is not touched on undo;
//   - copy entries rely on the global LIFO discipline: the copy being
//     undone is always the *tail of the whole copy log* (every addCopy
//     appends one log record and one journal entry in lockstep, and
//     undo proceeds in exact reverse), so undoing a copy is popping the
//     log and clearing one bit in the arc's value bitset;
//   - the incremental caches (the copy-log length, the per-cluster
//     counter block) are updated by both the forward mutations and
//     their undos, so EstimateMII and TotalCopies stay O(clusters) and
//     allocation-free at every point.

// Mark identifies a journal position to roll back to.
type Mark int

type undoOp uint8

const (
	undoAssign undoOp = iota
	undoCopy
	undoReserve
	undoUbiquitous
	// undoTouch retracts a canonical cluster label handed out by
	// canonLabel (fingerprint.go). Touch entries precede the mutation
	// entry whose facts used the label, so LIFO undo recomputes every
	// fact key under a still-valid canonical map and only then retracts
	// the label.
	undoTouch
)

// Flag bits recording which side effects a mutation actually performed.
const (
	fNewInSrc    uint8 = 1 << iota // inSrc[y] bit x was newly set
	fNewOutDst                     // outDst[x] bit y was newly set
	fNewAvail                      // avail[v] bit was newly set
	fRecvInc                       // recvLoad[y] was incremented
	fSendInc                       // sendLoad[x] was incremented
	fDistinctInc                   // distinctOut[x] was incremented
	fMemInstr                      // memInstr[c] was incremented
)

type undoEntry struct {
	op    undoOp
	x, y  ClusterID
	v     ValueID
	flags uint8
	mask  uint64 // undoUbiquitous: avail bits newly set
}

// Checkpoint enables journaling (if it was off) and returns a mark that
// Rollback accepts. Marks must be rolled back stack-like: rolling back
// to an older mark invalidates every younger one.
//
//hca:hotpath
func (f *Flow) Checkpoint() Mark {
	if f.journal == nil {
		// First checkpoint on this flow: adopt a recycled journal array
		// (slab.go) instead of growing one from nil append by append.
		f.journal = undoSlab.get(64)[:0]
	}
	f.journaling = true
	return Mark(len(f.journal))
}

// Journaling reports whether mutations are currently being recorded.
func (f *Flow) Journaling() bool { return f.journaling }

// DropJournal stops journaling and discards every recorded entry.
// Earlier marks become invalid. Use it after a speculative phase has
// committed, so later mutations stop paying the recording cost.
//
//hca:hotpath
func (f *Flow) DropJournal() {
	f.journaling = false
	f.journal = f.journal[:0]
}

// JournalHighWater returns the deepest journal (in undo entries) this
// flow has rolled back since it was created or last reset by CopyFrom —
// a telemetry figure for the SEE's assign→score→rollback engine. It
// survives DropJournal, but CopyFrom clears it along with the journal:
// recycled scratch flows must not leak a previous solve's history, or
// the figure would vary with pool-reuse order.
func (f *Flow) JournalHighWater() int { return f.journalHW }

// Rollback undoes every mutation recorded since mark, restoring the flow
// bit-identically to its state at the matching Checkpoint. Journaling
// stays enabled.
//
//hca:hotpath
func (f *Flow) Rollback(mark Mark) {
	if len(f.journal) > f.journalHW {
		f.journalHW = len(f.journal)
	}
	for i := len(f.journal) - 1; i >= int(mark); i-- {
		e := &f.journal[i]
		switch e.op {
		case undoAssign:
			ca := f.canonOf(e.x)
			f.fpXor(fpFact(fkAssign, ca, 0, int64(e.v)))
			if e.flags&fNewAvail != 0 {
				f.fpXor(fpFact(fkAvail, ca, 0, int64(e.v)))
			}
			f.assign[e.v] = -1
			f.cnt[int(e.x)*cntStride+cntInstr]--
			if e.flags&fMemInstr != 0 {
				f.cnt[int(e.x)*cntStride+cntMem]--
			}
			f.assigned--
			if e.flags&fNewAvail != 0 {
				f.avail[e.v] &^= 1 << uint(e.x)
			}
		case undoCopy:
			cx, cy := f.canonOf(e.x), f.canonOf(e.y)
			f.fpXor(fpFact(fkCopy, cx, cy, int64(e.v)))
			if e.flags&fNewInSrc != 0 {
				f.fpXor(fpFact(fkInSrc, cx, cy, 0))
			}
			if e.flags&fNewOutDst != 0 {
				f.fpXor(fpFact(fkOutDst, cx, cy, 0))
			}
			if e.flags&fNewAvail != 0 {
				f.fpXor(fpFact(fkAvail, cy, 0, int64(e.v)))
			}
			if e.flags&fSendInc != 0 {
				// Unfold the same old→new transition pair addCopy folded.
				s := f.cnt[int(e.x)*cntStride+cntSend]
				f.fpXor(fpFact(fkSend, cx, 0, int64(s)))
				f.fpXor(fpFact(fkSend, cx, 0, int64(s-1)))
			}
			// Global LIFO: this copy is the tail of the log.
			key := int32(e.x)<<arcShift | int32(e.y)
			f.arcHas[int(f.T.arcIdx[key])*f.vwords+int(e.v)>>6] &^= 1 << (uint(e.v) & 63)
			f.copyLog = f.copyLog[:len(f.copyLog)-1]
			if e.flags&fNewInSrc != 0 {
				f.inSrc[e.y] &^= 1 << uint(e.x)
			}
			if e.flags&fNewOutDst != 0 {
				f.outDst[e.x] &^= 1 << uint(e.y)
			}
			if e.flags&fNewAvail != 0 {
				f.avail[e.v] &^= 1 << uint(e.y)
			}
			if e.flags&fRecvInc != 0 {
				f.cnt[int(e.y)*cntStride+cntRecv]--
			}
			if e.flags&fSendInc != 0 {
				f.cnt[int(e.x)*cntStride+cntSend]--
			}
			if e.flags&fDistinctInc != 0 {
				f.cnt[int(e.x)*cntStride+cntDistinct]--
			}
		case undoReserve:
			cx, cy := f.canonOf(e.x), f.canonOf(e.y)
			if e.flags&fNewInSrc != 0 {
				f.fpXor(fpFact(fkInSrc, cx, cy, 0))
				f.inSrc[e.y] &^= 1 << uint(e.x)
			}
			if e.flags&fNewOutDst != 0 {
				f.fpXor(fpFact(fkOutDst, cx, cy, 0))
				f.outDst[e.x] &^= 1 << uint(e.y)
			}
		case undoUbiquitous:
			f.fpUbiq(e.v, e.mask)
			f.avail[e.v] &^= e.mask
		case undoTouch:
			f.canon[e.x] = None
			f.canonN--
		}
	}
	f.journal = f.journal[:int(mark)]
}

// CopyFrom overwrites f with src's state, reusing f's storage. Both
// flows must share the same Topology and DDG: this is the reset path of
// the delta engine's scratch-flow pool, where it replaces a full Clone
// without allocating. Since the packed rewrite every component is a
// flat slice of scalars, so the whole overwrite is a handful of
// memmoves. The journal is cleared and journaling disabled.
//
//hca:hotpath
func (f *Flow) CopyFrom(src *Flow) {
	if f.T != src.T || f.D != src.D {
		panic("pg: CopyFrom: flows have different Topology or DDG")
	}
	f.MIIRecStatic = src.MIIRecStatic
	copy(f.assign, src.assign)
	copy(f.cnt, src.cnt)
	// One memmove covers all four bitset groups: both flows share the
	// same (Topology, DDG), so their word arenas have identical layout.
	copy(f.words, src.words)
	f.copyLog = append(f.copyLog[:0], src.copyLog...)
	copy(f.canon, src.canon)
	f.canonN = src.canonN
	f.fp = src.fp
	f.assigned = src.assigned
	f.maxHops = src.maxHops
	f.journal = f.journal[:0]
	f.journaling = false
	f.journalHW = 0
}
