package pg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// chainDDG builds c0 -> m1 -> m2 -> ... -> m(n-1) of movs.
func chainDDG(n int) *ddg.DDG {
	d := ddg.New("chain")
	prev := d.AddConst(1, "c0")
	for i := 1; i < n; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	return d
}

func TestTopologyBasics(t *testing.T) {
	tp := NewTopology("t", 4, 16, 8, 0)
	tp.AllToAll()
	if tp.NumClusters() != 4 || tp.NumRegular() != 4 {
		t.Fatalf("clusters = %d/%d", tp.NumClusters(), tp.NumRegular())
	}
	if !tp.Potential(0, 1) || tp.Potential(0, 0) {
		t.Error("AllToAll potential wrong")
	}
	tp.SetPotential(0, 1, false)
	if tp.Potential(0, 1) {
		t.Error("SetPotential(false) ignored")
	}
}

func TestSpecialNodes(t *testing.T) {
	tp := NewTopology("t", 4, 4, 4, 0)
	tp.AllToAll()
	in := tp.AddInputNode([]ValueID{10, 11})
	out := tp.AddOutputNode([]ValueID{12})
	if tp.Cluster(in).Kind != InNode || tp.Cluster(out).Kind != OutNode {
		t.Fatal("kinds wrong")
	}
	for c := ClusterID(0); c < 4; c++ {
		if !tp.Potential(in, c) {
			t.Errorf("input node cannot reach cluster %d", c)
		}
		if !tp.Potential(c, out) {
			t.Errorf("cluster %d cannot reach output node", c)
		}
	}
	if tp.Potential(out, 0) || tp.Potential(0, in) {
		t.Error("special nodes have forbidden arcs")
	}
	if got := tp.InputNodes(); len(got) != 1 || got[0] != in {
		t.Errorf("InputNodes = %v", got)
	}
	if got := tp.OutputNodes(); len(got) != 1 || got[0] != out {
		t.Errorf("OutputNodes = %v", got)
	}
}

func TestKindString(t *testing.T) {
	if Regular.String() != "cluster" || InNode.String() != "in" || OutNode.String() != "out" {
		t.Error("Kind.String wrong")
	}
}

func TestAssignSameCluster(t *testing.T) {
	d := chainDDG(3)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	for i := 0; i < 3; i++ {
		if err := f.Assign(graph.NodeID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.TotalCopies() != 0 {
		t.Errorf("same-cluster chain produced %d copies", f.TotalCopies())
	}
	if f.Load(0) != 3 || f.Load(1) != 0 {
		t.Errorf("loads = %d,%d", f.Load(0), f.Load(1))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignCrossClusterCreatesCopy(t *testing.T) {
	d := chainDDG(2)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := f.Copies(0, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Copies(0,1) = %v", got)
	}
	// Receiver pays a rcv slot: load = 1 instr + 1 recv.
	if f.Load(1) != 2 {
		t.Errorf("Load(1) = %d, want 2", f.Load(1))
	}
	if f.InNeighbors(1) != 1 {
		t.Errorf("InNeighbors(1) = %d", f.InNeighbors(1))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteProducerAssignedAfterConsumer(t *testing.T) {
	// Loop-carried: consumer assigned before producer; the copy must be
	// created when the producer lands.
	d := ddg.New("lc")
	a := d.AddOp(ddg.OpMov, "a")
	b := d.AddOp(ddg.OpMov, "b")
	d.AddDep(a, b, 0, 0)
	d.AddDep(b, a, 0, 1)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	if err := f.Assign(b, 1); err != nil { // b first (reads a, not placed yet)
		t.Fatal(err)
	}
	if err := f.Assign(a, 0); err != nil { // a reads b (placed): copy 1->0; a feeds b: copy 0->1
		t.Fatal(err)
	}
	if len(f.Copies(1, 0)) != 1 || len(f.Copies(0, 1)) != 1 {
		t.Errorf("copies: 1->0 %v, 0->1 %v", f.Copies(1, 0), f.Copies(0, 1))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInputNodeBroadcast(t *testing.T) {
	d := ddg.New("in")
	ext := d.AddConst(7, "ext") // produced outside: arrives via input node
	u1 := d.AddOp(ddg.OpAbs, "u1")
	u2 := d.AddOp(ddg.OpAbs, "u2")
	d.AddDep(ext, u1, 0, 0)
	d.AddDep(ext, u2, 0, 0)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	in := tp.AddInputNode([]ValueID{ext})
	f := NewFlow(tp, d)
	if !f.Available(ext, in) {
		t.Fatal("carried value not available at input node")
	}
	if err := f.Assign(u1, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(u2, 1); err != nil {
		t.Fatal(err)
	}
	if len(f.Copies(in, 0)) != 1 || len(f.Copies(in, 1)) != 1 {
		t.Errorf("input node copies: %v / %v", f.Copies(in, 0), f.Copies(in, 1))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOutputNodeSingleSource(t *testing.T) {
	// Figure 10: two values leaving on one wire must come from the same
	// cluster. Assign the first carrier on cluster 0; the second on
	// cluster 1 must route 1→0→out (through the existing arc), not 1→out.
	d := ddg.New("out")
	k := d.AddConst(1, "k")
	h := d.AddConst(2, "h")
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	out := tp.AddOutputNode([]ValueID{k, h})
	f := NewFlow(tp, d)
	if err := f.Assign(k, 0); err != nil {
		t.Fatal(err)
	}
	if len(f.Copies(0, out)) != 1 {
		t.Fatalf("k not sent to output node: %v", f.Copies(0, out))
	}
	if err := f.Assign(h, 1); err != nil {
		t.Fatal(err)
	}
	if got := f.InNeighbors(out); got != 1 {
		t.Fatalf("output node has %d in-arcs, want 1", got)
	}
	// h must have traveled 1→0 then 0→out.
	if len(f.Copies(1, 0)) != 1 || len(f.Copies(0, out)) != 2 {
		t.Errorf("h route: 1->0 %v, 0->out %v", f.Copies(1, 0), f.Copies(0, out))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxInForcesRouting(t *testing.T) {
	// Figure 6: cluster 3 already listens to 2 sources (MaxIn=2); a value
	// from a third cluster must route through an existing neighbor.
	d := ddg.New("route")
	v0 := d.AddConst(0, "v0")
	v1 := d.AddConst(1, "v1")
	v2 := d.AddConst(2, "v2")
	sink := d.AddOp(ddg.OpClip, "sink") // 3 operands
	d.AddDep(v0, sink, 0, 0)
	d.AddDep(v1, sink, 1, 0)
	d.AddDep(v2, sink, 2, 0)
	tp := NewTopology("t", 4, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	if err := f.Assign(v0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(v1, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(v2, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(sink, 3); err != nil {
		t.Fatal(err)
	}
	if got := f.InNeighbors(3); got > 2 {
		t.Fatalf("cluster 3 has %d in-neighbors > MaxIn 2", got)
	}
	// One of the three values was forwarded: some cluster pays a re-send.
	fwd := f.cnt[0*cntStride+cntSend] + f.cnt[1*cntStride+cntSend] + f.cnt[2*cntStride+cntSend]
	if fwd != 1 {
		t.Errorf("forwarding sends = %d, want 1", fwd)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteImpossible(t *testing.T) {
	// No potential arcs at all: cross-cluster dependence must fail.
	d := chainDDG(2)
	tp := NewTopology("t", 2, 4, 2, 0) // no AllToAll
	f := NewFlow(tp, d)
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	g, err := f.TryAssign(1, 1)
	if err == nil || g != nil {
		t.Fatal("expected routing failure")
	}
	if !strings.Contains(err.Error(), "no feasible path") {
		t.Errorf("err = %v", err)
	}
	// f untouched by TryAssign.
	if f.Assignment(1) != None {
		t.Error("TryAssign mutated original")
	}
}

func TestAssignToSpecialNodeFails(t *testing.T) {
	d := chainDDG(1)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	in := tp.AddInputNode(nil)
	f := NewFlow(tp, d)
	if err := f.Assign(0, in); err == nil {
		t.Fatal("assigned instruction to input node")
	}
}

func TestDoubleAssignFails(t *testing.T) {
	d := chainDDG(1)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(0, 1); err == nil {
		t.Fatal("double assignment accepted")
	}
}

func TestEstimateMII(t *testing.T) {
	// 6 instructions on one single-issue cluster → compute MII 6.
	d := chainDDG(6)
	tp := NewTopology("t", 2, 1, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	for i := 0; i < 6; i++ {
		if err := f.Assign(graph.NodeID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.EstimateMII(); got != 6 {
		t.Errorf("EstimateMII = %d, want 6", got)
	}
	// Static recurrence bound dominates when larger.
	f.MIIRecStatic = 9
	if got := f.EstimateMII(); got != 9 {
		t.Errorf("EstimateMII = %d, want 9", got)
	}
}

func TestEstimateMIIWirePressure(t *testing.T) {
	// 5 values into one cluster over MaxIn=2 wires → wire bound ceil(5/2)=3.
	d := ddg.New("wp")
	var vals []graph.NodeID
	for i := 0; i < 5; i++ {
		vals = append(vals, d.AddConst(int64(i), "v"))
	}
	sinks := make([]graph.NodeID, 5)
	for i, v := range vals {
		s := d.AddOp(ddg.OpAbs, "s")
		d.AddDep(v, s, 0, 0)
		sinks[i] = s
	}
	tp := NewTopology("t", 3, 16, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	// Producers split over clusters 0 and 1; all sinks on cluster 2.
	for i, v := range vals {
		if err := f.Assign(v, ClusterID(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sinks {
		if err := f.Assign(s, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.EstimateMII(); got != 3 {
		t.Errorf("EstimateMII = %d, want 3 (wire pressure)", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := chainDDG(4)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	g := f.Clone()
	if err := g.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	if f.Assignment(1) != None || f.TotalCopies() != 0 {
		t.Error("Clone shares state with original")
	}
	if g.Assignment(1) != 1 || g.TotalCopies() != 1 {
		t.Error("clone lost its own mutation")
	}
}

func TestRealArcsDeterministic(t *testing.T) {
	d := chainDDG(3)
	tp := NewTopology("t", 3, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	f.Assign(0, 2)
	f.Assign(1, 0)
	f.Assign(2, 1)
	var order []ClusterID
	f.RealArcs(func(from, to ClusterID, vals []ValueID) {
		order = append(order, from, to)
		if len(vals) == 0 {
			t.Error("empty arc reported")
		}
	})
	if len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 0 {
		t.Errorf("arc order = %v", order)
	}
}

func TestInstructions(t *testing.T) {
	d := chainDDG(3)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	f.Assign(0, 1)
	f.Assign(1, 1)
	f.Assign(2, 0)
	got := f.Instructions(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Instructions(1) = %v", got)
	}
	if f.NumAssigned() != 3 {
		t.Errorf("NumAssigned = %d", f.NumAssigned())
	}
}

func TestBroadcastSharesOutWireEstimate(t *testing.T) {
	// One value consumed on two clusters counts once in distinctValuesOut.
	d := ddg.New("bc")
	v := d.AddConst(1, "v")
	u1 := d.AddOp(ddg.OpAbs, "u1")
	u2 := d.AddOp(ddg.OpAbs, "u2")
	d.AddDep(v, u1, 0, 0)
	d.AddDep(v, u2, 0, 0)
	tp := NewTopology("t", 3, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	f.Assign(v, 0)
	f.Assign(u1, 1)
	f.Assign(u2, 2)
	if got := f.distinctValuesOut(0); got != 1 {
		t.Errorf("distinctValuesOut = %d, want 1 (broadcast)", got)
	}
}

func TestVerifyCatchesViolation(t *testing.T) {
	d := chainDDG(2)
	tp := NewTopology("t", 2, 4, 1, 0)
	tp.AllToAll()
	f := NewFlow(tp, d)
	f.Assign(0, 0)
	f.Assign(1, 1)
	// Corrupt: force a second in-neighbor bit beyond MaxIn.
	f.inSrc[1] |= 1 << 1
	if err := f.Verify(); err == nil {
		t.Fatal("Verify accepted corrupted state")
	}
}

func TestNewFlowPanicsOnHugeTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tp := NewTopology("big", 65, 1, 2, 0)
	NewFlow(tp, chainDDG(1))
}

func TestMaxHopsDirectOnly(t *testing.T) {
	// Ring 0->1->2 (no 0->2 arc): with MaxHops 1 routing 0→2 must fail,
	// with unlimited hops it must succeed through cluster 1.
	d := chainDDG(2)
	tp := NewTopology("t", 3, 4, 2, 0)
	tp.SetPotential(0, 1, true)
	tp.SetPotential(1, 2, true)
	f := NewFlow(tp, d)
	f.SetMaxHops(1)
	if f.MaxHops() != 1 {
		t.Fatal("MaxHops not stored")
	}
	if err := f.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.TryAssign(1, 2); err == nil {
		t.Fatal("direct-only routing should fail 0→2")
	}
	f.SetMaxHops(0)
	g, err := f.TryAssign(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Copies(0, 1)) != 1 || len(g.Copies(1, 2)) != 1 {
		t.Errorf("route-through copies missing: %v %v", g.Copies(0, 1), g.Copies(1, 2))
	}
}

func TestClonePreservesMaxHops(t *testing.T) {
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	f := NewFlow(tp, chainDDG(1))
	f.SetMaxHops(2)
	if g := f.Clone(); g.MaxHops() != 2 {
		t.Error("Clone dropped maxHops")
	}
}

func TestRandomAssignSequencesKeepInvariants(t *testing.T) {
	// Property: any sequence of successful Assign calls leaves the flow in
	// a state Verify accepts; failed TryAssigns never corrupt it.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		d := ddg.New("rand")
		n := 6 + rng.Intn(20)
		for i := 0; i < n; i++ {
			if i == 0 || rng.Intn(3) == 0 {
				d.AddConst(int64(i), "c")
				continue
			}
			op := []ddg.Op{ddg.OpAdd, ddg.OpSub, ddg.OpMin}[rng.Intn(3)]
			nd := d.AddOp(op, "o")
			a := graph.NodeID(rng.Intn(i))
			b := graph.NodeID(rng.Intn(i))
			d.AddDep(a, nd, 0, 0)
			d.AddDep(b, nd, 1, 0)
		}
		clusters := 2 + rng.Intn(4)
		tp := NewTopology("t", clusters, 4, 1+rng.Intn(3), 0)
		tp.AllToAll()
		f := NewFlow(tp, d)
		for i := 0; i < n; i++ {
			c := ClusterID(rng.Intn(clusters))
			if next, err := f.TryAssign(graph.NodeID(i), c); err == nil {
				f = next
			} else {
				// Fall back to any feasible cluster.
				for cc := 0; cc < clusters; cc++ {
					if next, err := f.TryAssign(graph.NodeID(i), ClusterID(cc)); err == nil {
						f = next
						break
					}
				}
			}
			if err := f.Verify(); err != nil {
				t.Fatalf("trial %d after node %d: %v", trial, i, err)
			}
		}
	}
}

func TestMemSlotsRejectMemOps(t *testing.T) {
	d := ddg.New("mem")
	iv := d.AddIV(0, 1, "iv")
	ld := d.AddOp(ddg.OpLoad, "ld")
	d.AddDep(iv, ld, 0, 0)
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	tp.SetMemSlots(0, 0)
	f := NewFlow(tp, d)
	if err := f.Assign(iv, 0); err != nil { // non-mem op fine anywhere
		t.Fatal(err)
	}
	if _, err := f.TryAssign(ld, 0); err == nil {
		t.Fatal("load accepted on memory-less cluster")
	}
	if _, err := f.TryAssign(ld, 1); err != nil {
		t.Fatalf("load rejected on capable cluster: %v", err)
	}
}

func TestMemSlotsBoundEstimateMII(t *testing.T) {
	// 4 loads on a cluster with 1 memory-capable CN out of 4: the memory
	// pipe binds the MII at 4 even though issue slots would allow 2.
	d := ddg.New("mb")
	iv := d.AddIV(0, 4, "iv")
	var lds []graph.NodeID
	for i := 0; i < 4; i++ {
		a := d.AddOpImm(ddg.OpAdd, "a", int64(i))
		d.AddDep(iv, a, 0, 0)
		ld := d.AddOp(ddg.OpLoad, "ld")
		d.AddDep(a, ld, 0, 0)
		lds = append(lds, ld)
	}
	tp := NewTopology("t", 2, 4, 2, 0)
	tp.AllToAll()
	tp.SetMemSlots(0, 1)
	f := NewFlow(tp, d)
	f.MarkUbiquitous(iv)
	if err := f.Assign(iv, 1); err != nil {
		t.Fatal(err)
	}
	for i, ld := range lds {
		a := graph.NodeID(int(ld) - 1)
		if err := f.Assign(a, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Assign(ld, 0); err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
	if got := f.EstimateMII(); got != 4 {
		t.Errorf("EstimateMII = %d, want 4 (memory pipe bound)", got)
	}
}

func TestSetMemSlotsPanics(t *testing.T) {
	tp := NewTopology("t", 2, 4, 2, 0)
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetMemSlots(%d) did not panic", bad)
				}
			}()
			tp.SetMemSlots(0, bad)
		}()
	}
}

func TestFlowWriteDOT(t *testing.T) {
	d := chainDDG(3)
	tp := NewTopology("dot test", 2, 4, 2, 0)
	tp.AllToAll()
	tp.AddInputNode([]ValueID{2})
	tp.AddOutputNode([]ValueID{0})
	f := NewFlow(tp, d)
	f.Assign(0, 0)
	f.Assign(1, 1)
	f.Assign(2, 1)
	var buf bytes.Buffer
	if err := f.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph", "shape=box", "shape=house", "shape=invhouse", "style=dotted"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestMaxOutConstraint(t *testing.T) {
	// MaxOut = 1: a producer may feed only one distinct neighbor; a second
	// destination must route through the first.
	d := ddg.New("mo")
	v := d.AddConst(1, "v")
	u1 := d.AddOp(ddg.OpAbs, "u1")
	u2 := d.AddOp(ddg.OpAbs, "u2")
	d.AddDep(v, u1, 0, 0)
	d.AddDep(v, u2, 0, 0)
	tp := NewTopology("t", 3, 4, 3, 1)
	tp.AllToAll()
	f := NewFlow(tp, d)
	if err := f.Assign(v, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(u1, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(u2, 2); err != nil {
		t.Fatal(err)
	}
	// v reached cluster 2 via cluster 1 (cluster 0 may only feed one
	// neighbor).
	if f.InNeighbors(2) != 1 || len(f.Copies(1, 2)) != 1 {
		t.Errorf("expected route through cluster 1: copies(1,2)=%v", f.Copies(1, 2))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMaxOutViolation(t *testing.T) {
	d := chainDDG(2)
	tp := NewTopology("t", 3, 4, 3, 1)
	tp.AllToAll()
	f := NewFlow(tp, d)
	f.Assign(0, 0)
	f.Assign(1, 1)
	f.outDst[0] |= 1 << 2 // corrupt: pretend a second out-neighbor
	if err := f.Verify(); err == nil {
		t.Fatal("MaxOut violation accepted")
	}
}
