package pg

import (
	"testing"

	"repro/internal/graph"
)

// symTopo returns a homogeneous all-to-all topology of k regular
// clusters — the shape on which cluster labels canonicalize.
func symTopo(k int) *Topology {
	tp := NewTopology("sym", k, 8, 4, 4)
	tp.AllToAll()
	return tp
}

func TestTopoSymmetric(t *testing.T) {
	if !topoSymmetric(symTopo(4)) {
		t.Fatal("homogeneous all-to-all not detected as symmetric")
	}
	one := NewTopology("one", 1, 8, 4, 4)
	one.AllToAll()
	if topoSymmetric(one) {
		t.Fatal("single cluster has no symmetry to exploit")
	}
	het := symTopo(4)
	het.SetMemSlots(1, 7)
	if topoSymmetric(het) {
		t.Fatal("heterogeneous memory slots detected as symmetric")
	}
	ring := NewTopology("ring", 4, 8, 4, 4)
	for i := 0; i < 4; i++ {
		ring.SetPotential(ClusterID(i), ClusterID((i+1)%4), true)
	}
	if topoSymmetric(ring) {
		t.Fatal("ring detected as symmetric")
	}
	// Special input/output nodes are symmetric by construction and must
	// not disable canonicalization.
	io := symTopo(4)
	io.AddInputNode([]ValueID{0})
	io.AddOutputNode([]ValueID{1})
	if !topoSymmetric(io) {
		t.Fatal("input/output nodes disabled symmetry")
	}
}

// TestFingerprintSymmetricTwins pins the canonical-label property: on a
// symmetric topology, states that differ only by a permutation of the
// interchangeable clusters hash identically, while genuinely different
// assignment shapes do not.
func TestFingerprintSymmetricTwins(t *testing.T) {
	d := fanDDG(10)
	pattern := []int{0, 1, 0, 2, 1, 0, 3, 2}
	perms := [][]ClusterID{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 0, 3, 2},
		{2, 3, 0, 1},
	}
	var fps []Fingerprint
	for pi, p := range perms {
		f := NewFlow(symTopo(4), d)
		for i, c := range pattern {
			if err := f.Assign(graph.NodeID(i), p[c]); err != nil {
				t.Fatalf("perm %d: assign %d: %v", pi, i, err)
			}
		}
		fps = append(fps, f.Fingerprint())
	}
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatalf("perm %d fingerprint %x != base %x", i, fps[i], fps[0])
		}
	}
	// A different shape (node 2 joins node 1's cluster instead of node
	// 0's) must hash differently.
	other := NewFlow(symTopo(4), d)
	shape := []int{0, 1, 1, 2, 1, 0, 3, 2}
	for i, c := range shape {
		if err := other.Assign(graph.NodeID(i), ClusterID(c)); err != nil {
			t.Fatalf("shape assign %d: %v", i, err)
		}
	}
	if other.Fingerprint() == fps[0] {
		t.Fatal("distinct assignment shapes collided")
	}
}

// TestFingerprintAsymmetricIsExact pins the fallback: on an asymmetric
// topology labels stay raw, so permuted assignments are distinct states
// with distinct fingerprints.
func TestFingerprintAsymmetricIsExact(t *testing.T) {
	d := fanDDG(8)
	mk := func() *Topology {
		tp := symTopo(4)
		tp.SetMemSlots(0, 2)
		return tp
	}
	assign := func(f *Flow, perm []ClusterID) {
		t.Helper()
		for i, c := range []int{0, 1, 0, 2, 1, 0} {
			if err := f.Assign(graph.NodeID(i), perm[c]); err != nil {
				t.Fatalf("assign %d: %v", i, err)
			}
		}
	}
	f1 := NewFlow(mk(), d)
	assign(f1, []ClusterID{0, 1, 2, 3})
	f2 := NewFlow(mk(), d)
	assign(f2, []ClusterID{1, 0, 2, 3})
	if f1.Fingerprint() == f2.Fingerprint() {
		t.Fatal("asymmetric topology canonicalized a permutation")
	}
}

// TestFingerprintUbiquitousKeepsSymmetry: the full-mask rematerialization
// fact must not touch (and thus pin labels onto) any cluster.
func TestFingerprintUbiquitousKeepsSymmetry(t *testing.T) {
	d := fanDDG(6)
	f := NewFlow(symTopo(4), d)
	snap := f.Fingerprint()
	mark := f.Checkpoint()
	f.MarkUbiquitous(0)
	if f.canonN != 0 {
		t.Fatalf("MarkUbiquitous pinned %d canonical labels", f.canonN)
	}
	if f.Fingerprint() == snap {
		t.Fatal("MarkUbiquitous left fingerprint unchanged")
	}
	f.Rollback(mark)
	if f.Fingerprint() != snap {
		t.Fatal("rollback did not restore fingerprint")
	}
}

func TestFingerprintCloneAndCopyFrom(t *testing.T) {
	d := fanDDG(14)
	tp := symTopo(4)
	src := NewFlow(tp, d)
	for n := graph.NodeID(0); n < 10; n++ {
		if err := src.Assign(n, ClusterID(int(n)%4)); err != nil {
			t.Fatalf("assign %d: %v", n, err)
		}
	}
	cl := src.Clone()
	if cl.Fingerprint() != src.Fingerprint() {
		t.Fatal("Clone changed fingerprint")
	}
	if err := cl.Assign(10, 0); err != nil {
		t.Fatal(err)
	}
	if cl.Fingerprint() == src.Fingerprint() {
		t.Fatal("clone mutation did not change its fingerprint")
	}
	scratch := NewFlow(tp, d)
	if err := scratch.Assign(0, 3); err != nil { // pre-dirty
		t.Fatal(err)
	}
	scratch.CopyFrom(src)
	if scratch.Fingerprint() != src.Fingerprint() {
		t.Fatal("CopyFrom did not restore fingerprint")
	}
}

// TestFingerprintDistinctStates: every prefix of an assignment
// trajectory is a distinct state and must produce a distinct
// fingerprint (grow-only fact sets never repeat within a solve).
func TestFingerprintDistinctStates(t *testing.T) {
	d := fanDDG(10)
	f := NewFlow(symTopo(4), d)
	seen := map[Fingerprint]int{}
	seen[f.Fingerprint()] = -1
	for i, c := range []int{0, 1, 0, 2, 1, 3, 0, 2, 1, 3} {
		if err := f.Assign(graph.NodeID(i), ClusterID(c)); err != nil {
			t.Fatalf("assign %d: %v", i, err)
		}
		if prev, dup := seen[f.Fingerprint()]; dup {
			t.Fatalf("prefix %d collided with prefix %d", i, prev)
		}
		seen[f.Fingerprint()] = i
	}
}

func TestTopologyFingerprintAndEqual(t *testing.T) {
	a := symTopo(4)
	b := NewTopology("another-name", 4, 8, 4, 4)
	b.AllToAll()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("structurally identical topologies hash differently (name leaked)")
	}
	if !a.Equal(b) {
		t.Fatal("structurally identical topologies not Equal")
	}
	variants := map[string]*Topology{}
	mem := symTopo(4)
	mem.SetMemSlots(2, 1)
	variants["mem-slots"] = mem
	ring := NewTopology("ring", 4, 8, 4, 4)
	for i := 0; i < 4; i++ {
		ring.SetPotential(ClusterID(i), ClusterID((i+1)%4), true)
	}
	variants["potential"] = ring
	in := symTopo(4)
	in.AddInputNode([]ValueID{3})
	variants["input-node"] = in
	wide := NewTopology("wide", 4, 16, 4, 4)
	wide.AllToAll()
	variants["issue-slots"] = wide
	for name, v := range variants {
		if a.Fingerprint() == v.Fingerprint() {
			t.Errorf("%s variant collided with base", name)
		}
		if a.Equal(v) {
			t.Errorf("%s variant Equal to base", name)
		}
	}
}

// TestFingerprintMaintenanceZeroAlloc guards the tentpole's cost
// contract directly (BenchmarkAssignRollback asserts the same path
// under -bench).
func TestFingerprintMaintenanceZeroAlloc(t *testing.T) {
	f, n, c := halfAssigned(t)
	mark := f.Checkpoint() // warm journal + scratch capacity
	if err := f.Assign(n, c); err != nil {
		t.Fatal(err)
	}
	f.Rollback(mark)
	allocs := testing.AllocsPerRun(200, func() {
		m := f.Checkpoint()
		if err := f.Assign(n, c); err != nil {
			t.Fatal(err)
		}
		sinkFP = f.Fingerprint()
		f.Rollback(m)
	})
	if allocs != 0 {
		t.Fatalf("assign/fingerprint/rollback cycle allocates: %.1f allocs/op", allocs)
	}
}

var sinkFP Fingerprint

// TestFingerprintRollbackAcrossRoutedCopies drives the full fact
// vocabulary (assign, copy, insrc/outdst, avail, send transitions)
// through checkpoint/rollback and requires exact restoration.
func TestFingerprintRollbackAcrossRoutedCopies(t *testing.T) {
	d := fanDDG(12)
	f := NewFlow(symTopo(4), d)
	for n := graph.NodeID(0); n < 4; n++ {
		if err := f.Assign(n, ClusterID(int(n)%2)); err != nil {
			t.Fatalf("assign %d: %v", n, err)
		}
	}
	snap := f.Clone()
	mark := f.Checkpoint()
	for n := graph.NodeID(4); n < 10; n++ {
		if err := f.Assign(n, ClusterID(int(n)%4)); err != nil {
			t.Fatalf("assign %d: %v", n, err)
		}
	}
	if f.Fingerprint() == snap.Fingerprint() {
		t.Fatal("routed assignments left fingerprint unchanged")
	}
	f.Rollback(mark)
	if diff := diffFlows(f, snap); diff != "" {
		t.Fatalf("rollback: %s", diff)
	}
}
