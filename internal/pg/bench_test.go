package pg

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
)

// halfAssigned builds a mid-search fir2dim flow (half the nodes placed,
// greedy first-fit) plus one node known to assign successfully — the
// state the SEE hot path operates on.
func halfAssigned(tb testing.TB) (f *Flow, next graph.NodeID, c ClusterID) {
	tb.Helper()
	d := kernels.Fir2Dim()
	tp := NewTopology("bench", 4, 16, 8, 0)
	tp.AllToAll()
	f = NewFlow(tp, d)
	place := func(n graph.NodeID) (ClusterID, bool) {
		for c := ClusterID(0); c < 4; c++ {
			if f.Assign(n, c) == nil {
				return c, true
			}
		}
		return 0, false
	}
	for n := graph.NodeID(0); n < graph.NodeID(d.Len()/2); n++ {
		if _, ok := place(n); !ok {
			tb.Fatalf("setup: node %d unplaceable", n)
		}
	}
	next = graph.NodeID(d.Len() / 2)
	mark := f.Checkpoint()
	cc, ok := place(next)
	if !ok {
		tb.Fatalf("setup: probe node %d unplaceable", next)
	}
	f.Rollback(mark)
	f.DropJournal()
	return f, next, cc
}

// BenchmarkAssignRollback is the delta engine's innermost cycle: journal
// a candidate assignment (including any routed copies), score-relevant
// state updates, and undo it. allocs/op must stay at zero — any
// allocation here multiplies by (frontier × clusters × nodes).
func BenchmarkAssignRollback(b *testing.B) {
	f, n, c := halfAssigned(b)
	// Warm the journal and BFS scratch capacity outside the timer.
	mark := f.Checkpoint()
	if err := f.Assign(n, c); err != nil {
		b.Fatal(err)
	}
	f.Rollback(mark)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := f.Checkpoint()
		if err := f.Assign(n, c); err != nil {
			b.Fatal(err)
		}
		f.Rollback(mark)
	}
}

// BenchmarkEstimateMII exercises the incremental objective read: with
// the packed per-cluster counter blocks maintained by Assign/Rollback it
// is a pure O(clusters) scan, no map walks, no allocation.
func BenchmarkEstimateMII(b *testing.B) {
	f, _, _ := halfAssigned(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = f.EstimateMII()
	}
}

// BenchmarkObjectiveTerms is the fused scoring read the SEE performs
// once per speculative candidate: all four standard cost-model terms
// from one sweep over the packed counter blocks.
func BenchmarkObjectiveTerms(b *testing.B) {
	f, _, _ := halfAssigned(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mii, copies, balance, ports := f.ObjectiveTerms()
		sinkInt = mii + copies + balance + ports
	}
}

// BenchmarkCopyFrom measures the pooled-scratch refill used by the
// chunked evaluation path, against Clone as the allocating alternative.
// Since the packed rewrite it is a handful of memmoves.
func BenchmarkCopyFrom(b *testing.B) {
	f, _, _ := halfAssigned(b)
	scratch := NewFlow(f.T, f.D)
	scratch.CopyFrom(f) // warm the copy-log capacity once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(f)
	}
}

func BenchmarkClone(b *testing.B) {
	f, _, _ := halfAssigned(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFlow = f.Clone()
	}
}

var (
	sinkInt  int
	sinkFlow *Flow
)
