package pg

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// maxClusters bounds the cluster count of one Topology so that cluster
// sets fit in a single machine word. Every level of the paper's machines
// is far below this (4 regular clusters + up to 2·8 special nodes).
const maxClusters = 64

// Per-cluster counter fields, packed as one contiguous int32 block per
// cluster inside Flow.cnt (struct-of-arrays): the load accounting the
// cost function reads lives in cntStride*4 = 20 bytes per cluster, so
// EstimateMII walks a flat, branch-light array and state copy is one
// memmove instead of five slice copies.
const (
	cntInstr    = iota // instructions hosted
	cntMem             // memory instructions hosted
	cntRecv            // values received (rcv primitives)
	cntSend            // forwarded-value re-sends
	cntDistinct        // distinct values on outgoing real arcs
	cntStride
)

// copyRec is one (arc, value) copy in the global append-only copy log.
// The packed arc key is from<<arcShift|to.
type copyRec struct {
	arc int32
	v   int32
}

// Flow is the mutable state of a cluster-assignment search over one
// Topology: the partial instruction assignment, the arcs that have become
// real communication patterns and the values they carry, and the derived
// load accounting the cost function reads. Flows are cloned and pool-
// recycled by the SEE beam search, so all state is cache-flat: packed
// bitset words, one byte per node for the assignment, one int32 counter
// block per cluster, and an append-only copy log — no maps, no
// per-element pointers, so Clone and CopyFrom are memmove-style bulk
// copies and scoring never chases a pointer.
type Flow struct {
	T *Topology
	D *ddg.DDG

	// MIIRecStatic is the recurrence-constrained lower bound of the
	// working set, folded into EstimateMII.
	MIIRecStatic int

	assign []int8  // per DDG node: hosting cluster, -1 if unassigned
	cnt    []int32 // per cluster: cntStride counters (see cnt* above)

	// words is the flow's packed word arena, drawn from the package word
	// slab (slab.go) and recycled through Release. The four bitset
	// groups below are fixed subslices of it, in this order, so Clone
	// and CopyFrom move the whole group state with one memmove and
	// retiring a flow hands one array back instead of four.
	words  []uint64
	inSrc  []uint64 // per cluster: bitmask of real in-neighbor clusters
	outDst []uint64 // per cluster: bitmask of real out-neighbor clusters
	avail  []uint64 // per value: bitmask of clusters where it is available

	// The copy state, struct-of-arrays form of the former per-arc value
	// lists: copyLog records every (arc, value) copy in creation order
	// (the journal's global LIFO discipline means undo always pops the
	// tail), and arcHas holds one value-bitset row per dense arc index
	// (vwords words each) for O(1) duplicate checks and carriesOut scans.
	copyLog []copyRec
	arcHas  []uint64
	vwords  int // words per arcHas row: ceil(D.Len()/64)

	assigned int // number of assigned instructions
	maxHops  int // route-length bound for findPath (0 = unlimited)

	// Incremental Zobrist state hash (fingerprint.go), maintained by the
	// same mutation/undo pairs as the objective caches. On symmetric
	// topologies fact keys use canonical first-touch cluster labels so
	// permutation-twin states hash identically.
	fp         Fingerprint
	canon      []ClusterID // per regular cluster: canonical label, or None
	canonN     int         // next canonical label to hand out
	canonSym   bool        // topology qualifies for canonical labels
	allRegMask uint64      // avail-mask covering every regular cluster

	// Mutation journal (journal.go). Enabled by Checkpoint; never cloned.
	journal    []undoEntry
	journaling bool
	journalHW  int // deepest journal ever rolled back (telemetry)

	// Reusable findPath scratch (not cloned): a Flow is owned by one
	// goroutine at a time, so BFS state can live on it across Route calls.
	bfsPrev  []int8
	bfsDepth []int32
	bfsQueue []int8
	bfsPath  []ClusterID

	// errScratch is the reusable failure container stateErr fills: the
	// speculative evaluation path rejects thousands of candidates per
	// solve, and each rejection would otherwise heap-allocate an error
	// that the engine discards after a nil check. Not cloned.
	errScratch flowError

	// Flat operand/consumer adjacency over the DDG (CSR form), built once
	// in NewFlow and shared by Clone — immutable, so sharing is safe.
	// Assign's routing loops read these instead of walking the graph's
	// edge lists through a closure call per edge.
	opOff  []int32
	opSrc  []int32 // in-edge source per operand slot, concatenated by node
	useOff []int32
	useDst []int32 // out-edge destination per use slot, concatenated by node
}

// NewFlow creates an empty assignment over t for d. Values carried by
// input nodes start available at their input node.
func NewFlow(t *Topology, d *ddg.DDG) *Flow {
	if t.NumClusters() > maxClusters {
		panic(fmt.Sprintf("pg: topology %q has %d clusters; Flow supports at most %d", t.Name, t.NumClusters(), maxClusters))
	}
	vw := (d.Len() + 63) / 64
	f := newShell()
	*f = Flow{
		T:      t,
		D:      d,
		vwords: vw,

		canonSym:   topoSymmetric(t),
		allRegMask: t.regMask,
	}
	f.assign = byteSlab.get(d.Len())
	f.cnt = i32Slab.get(t.NumClusters() * cntStride)
	clear(f.cnt)
	f.canon = cidSlab.get(t.regular)
	w := wordSlab.get(f.wordLen())
	clear(w)
	f.bindWords(w)
	f.bindScratch()
	for i := range f.assign {
		f.assign[i] = -1
	}
	for i := range f.canon {
		f.canon[i] = None
	}
	for _, in := range t.InputNodes() {
		for _, v := range t.Cluster(in).Carries {
			if f.avail[v]&(1<<uint(in)) == 0 {
				f.fpXor(fpFact(fkAvail, in, 0, int64(v)))
			}
			f.avail[v] |= 1 << uint(in)
		}
	}
	f.opOff = make([]int32, d.Len()+1)
	f.useOff = make([]int32, d.Len()+1)
	ne := d.G.NumEdges()
	f.opSrc = make([]int32, 0, ne)
	f.useDst = make([]int32, 0, ne)
	// Seed the copy log's capacity: clones inherit it (Clone preserves
	// capacity), so pooled flows never regrow the log copy by copy.
	f.copyLog = recSlab.get(2 * d.Len())[:0]
	for n := 0; n < d.Len(); n++ {
		f.opOff[n] = int32(len(f.opSrc))
		d.G.In(graph.NodeID(n), func(e graph.Edge) { f.opSrc = append(f.opSrc, int32(e.From)) })
		f.useOff[n] = int32(len(f.useDst))
		d.G.Out(graph.NodeID(n), func(e graph.Edge) { f.useDst = append(f.useDst, int32(e.To)) })
	}
	f.opOff[d.Len()] = int32(len(f.opSrc))
	f.useOff[d.Len()] = int32(len(f.useDst))
	return f
}

// wordLen returns the size of the flow's packed word arena:
// [inSrc | outDst | avail | arcHas] in that fixed order.
func (f *Flow) wordLen() int {
	return 2*f.T.NumClusters() + f.D.Len() + f.T.numArcs*f.vwords
}

// bindWords points the flow's four bitset groups into the arena w,
// which must hold wordLen() words. The subslices carry full-slice caps
// so an accidental append cannot bleed into the neighboring group.
func (f *Flow) bindWords(w []uint64) {
	nc := f.T.NumClusters()
	a := 2*nc + f.D.Len()
	f.words = w
	f.inSrc = w[0:nc:nc]
	f.outDst = w[nc : 2*nc : 2*nc]
	f.avail = w[2*nc : a : a]
	f.arcHas = w[a:len(w):len(w)]
}

// bindScratch draws the flow's findPath scratch from the slabs up
// front, so routing on a freshly cloned flow never allocates (contents
// are per-call, so dirt is fine).
func (f *Flow) bindScratch() {
	n := f.T.NumClusters()
	f.bfsPrev = byteSlab.get(n)
	f.bfsDepth = i32Slab.get(n)
	f.bfsQueue = byteSlab.get(n)[:0]
	f.bfsPath = cidSlab.get(n + 1)[:0]
}

// Clone returns an independent copy of the flow. The bulk state comes
// from the package slabs (one arena memmove for all four bitset
// groups), so cloning inside a warmed-up solve does not grow the heap.
func (f *Flow) Clone() *Flow {
	g := newShell()
	*g = Flow{
		T:            f.T,
		D:            f.D,
		MIIRecStatic: f.MIIRecStatic,
		vwords:       f.vwords,
		assigned:     f.assigned,
		maxHops:      f.maxHops,
		fp:           f.fp,
		canonN:       f.canonN,
		canonSym:     f.canonSym,
		allRegMask:   f.allRegMask,
		opOff:        f.opOff,
		opSrc:        f.opSrc,
		useOff:       f.useOff,
		useDst:       f.useDst,
	}
	g.assign = byteSlab.get(len(f.assign))
	copy(g.assign, f.assign)
	g.cnt = i32Slab.get(len(f.cnt))
	copy(g.cnt, f.cnt)
	g.canon = cidSlab.get(len(f.canon))
	copy(g.canon, f.canon)
	w := wordSlab.get(len(f.words))
	copy(w, f.words)
	g.bindWords(w)
	g.bindScratch()
	lc := cap(f.copyLog)
	if lc < len(f.copyLog) {
		lc = len(f.copyLog)
	}
	g.copyLog = append(recSlab.get(lc)[:0], f.copyLog...)
	return g
}

// Assignment returns the cluster hosting node n, or None.
func (f *Flow) Assignment(n graph.NodeID) ClusterID { return ClusterID(f.assign[n]) }

// NumAssigned returns how many instructions have been assigned. The
// exact engine reads it per bound evaluation, once per speculative
// child, so it is on the branch-and-bound hot path.
//
//hca:hotpath
func (f *Flow) NumAssigned() int { return f.assigned }

// Instructions returns the DDG nodes assigned to cluster c, ascending.
func (f *Flow) Instructions(c ClusterID) []graph.NodeID {
	var out []graph.NodeID
	for n, cl := range f.assign {
		if ClusterID(cl) == c {
			out = append(out, graph.NodeID(n))
		}
	}
	return out
}

// Copies returns the values carried by the real arc from→to in creation
// order (nil if the arc carries none).
func (f *Flow) Copies(from, to ClusterID) []ValueID {
	key := int32(from)<<arcShift | int32(to)
	var out []ValueID
	for _, r := range f.copyLog {
		if r.arc == key {
			out = append(out, ValueID(r.v))
		}
	}
	return out
}

// RealArcs calls fn for every real arc that carries at least one value,
// in deterministic (from, to) order; each arc's values keep their
// creation order.
func (f *Flow) RealArcs(fn func(from, to ClusterID, vals []ValueID)) {
	byArc := make(map[int32][]ValueID, 16)
	keys := make([]int32, 0, 16)
	for _, r := range f.copyLog {
		vs, ok := byArc[r.arc]
		if !ok {
			keys = append(keys, r.arc)
		}
		byArc[r.arc] = append(vs, ValueID(r.v))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fn(ClusterID(k>>arcShift), ClusterID(k&(maxClusters-1)), byArc[k])
	}
}

// ForEachCopy calls fn for every (arc, value) copy pair in creation
// order: a single allocation-free scan of the copy log, for criteria
// that aggregate over copies once per candidate evaluation.
//
//hca:hotpath
func (f *Flow) ForEachCopy(fn func(from, to ClusterID, v ValueID)) {
	for i := range f.copyLog {
		r := f.copyLog[i]
		fn(ClusterID(r.arc>>arcShift), ClusterID(r.arc&(maxClusters-1)), ValueID(r.v))
	}
}

// InNeighbors returns the number of distinct real in-neighbors of c.
func (f *Flow) InNeighbors(c ClusterID) int { return bits.OnesCount64(f.inSrc[c]) }

// Load returns the compute load of cluster c: hosted instructions plus
// receive primitives plus forwarding re-sends (§4.2's copy-pressure term).
//
//hca:hotpath
func (f *Flow) Load(c ClusterID) int {
	base := int(c) * cntStride
	return int(f.cnt[base+cntInstr] + f.cnt[base+cntRecv] + f.cnt[base+cntSend])
}

// Available reports whether value v is available at cluster c.
func (f *Flow) Available(v ValueID, c ClusterID) bool { return f.avail[v]&(1<<uint(c)) != 0 }

// Assign places instruction n on regular cluster c, routing every operand
// of n to c and n's value to every already-assigned consumer and to any
// output node that must carry it. It returns an error (leaving f
// unchanged only in the error==immediately-detectable cases; use
// TryAssign on a clone for speculative work) when c is not regular or a
// required route does not exist.
//
//hca:hotpath
func (f *Flow) Assign(n graph.NodeID, c ClusterID) error {
	f.T.mustHave(c)
	if !f.T.isRegular(c) {
		return f.stateErr(errAssignSpecial, graph.NodeID(n), c)
	}
	if f.assign[n] >= 0 {
		return f.stateErr(errAssignDup, graph.NodeID(n), ClusterID(f.assign[n]))
	}
	isMem := f.D.Node(n).Op.IsMem()
	if isMem && f.T.mem[c] == 0 {
		return f.stateErr(errAssignNoMem, graph.NodeID(n), c)
	}
	f.assign[n] = int8(c)
	f.cnt[int(c)*cntStride+cntInstr]++
	if isMem {
		f.cnt[int(c)*cntStride+cntMem]++
	}
	f.assigned++
	// Ubiquitous (rematerialized) values may already be available at c.
	newAvail := f.avail[n]&(1<<uint(c)) == 0
	ca := f.canonLabel(c)
	f.fpXor(fpFact(fkAssign, ca, 0, int64(n)))
	if newAvail {
		f.fpXor(fpFact(fkAvail, ca, 0, int64(n)))
	}
	if f.journaling {
		flags := uint8(0)
		if isMem {
			flags |= fMemInstr
		}
		if newAvail {
			flags |= fNewAvail
		}
		f.journal = append(f.journal, undoEntry{op: undoAssign, x: c, v: ValueID(n), flags: flags})
	}
	f.avail[n] |= 1 << uint(c)

	// Operands must reach c. Skip producers that are not placed yet (the
	// route is created when they are assigned).
	for _, v := range f.opSrc[f.opOff[n]:f.opOff[n+1]] {
		if f.avail[v] == 0 && f.assign[v] < 0 {
			continue
		}
		if err := f.Route(ValueID(v), c); err != nil {
			return err
		}
	}
	// n's value must reach already-assigned consumers.
	for _, u := range f.useDst[f.useOff[n]:f.useOff[n+1]] {
		if dst := f.assign[u]; dst >= 0 && ClusterID(dst) != c {
			if err := f.Route(ValueID(n), ClusterID(dst)); err != nil {
				return err
			}
		}
	}
	// ... and any output node that carries it (the carrier table replaces
	// a scan over every output node's value list; the bitset probe skips
	// the map for the vast majority of values no output node carries).
	if w := int(n) >> 6; w < len(f.T.carrierBits) && f.T.carrierBits[w]&(1<<(uint(n)&63)) != 0 {
		for _, o := range f.T.carrier[n] {
			if err := f.Route(n, o); err != nil {
				return err
			}
		}
	}
	return nil
}

// TryAssign clones f, assigns n to c on the clone, and returns the clone
// (or nil and the error). f is never modified.
func (f *Flow) TryAssign(n graph.NodeID, c ClusterID) (*Flow, error) {
	g := f.Clone()
	if err := g.Assign(n, c); err != nil {
		return nil, err
	}
	return g, nil
}

// Route makes value v available at cluster dst, materializing real arcs
// along a shortest feasible path from wherever v is already available. It
// is the built-in route allocator (§3, Figure 6b): paths may pass through
// intermediate regular clusters, which then pay a receive plus a re-send.
//
//hca:hotpath
func (f *Flow) Route(v ValueID, dst ClusterID) error {
	if f.avail[v] == 0 {
		return f.stateErr(errRouteUnavail, graph.NodeID(v), 0)
	}
	if f.Available(v, dst) {
		return nil
	}
	path := f.findPath(v, dst)
	if path == nil {
		return f.stateErr(errRouteNoPath, graph.NodeID(v), dst)
	}
	for i := 0; i+1 < len(path); i++ {
		f.addCopy(path[i], path[i+1], v)
	}
	return nil
}

// findPath BFSes from every cluster where v is available toward dst over
// usable arcs: already-real arcs are free; a new arc must respect the
// in-neighbor budget (MaxIn for regular clusters, 1 for output nodes) and
// the optional out-neighbor budget. Intermediate hops must be regular
// clusters. Returns nil if no path exists.
//
// The search runs on packed words: the visited set is one uint64, the
// frontier of each node is potMask[x] masked by not-yet-seen and
// regular-or-destination, and seeds come from avail[v] split into native
// and replica masks — so the only per-node state touched is the prev and
// depth entry of actually-enqueued clusters (no O(n) reset per call).
//
//hca:hotpath
func (f *Flow) findPath(v ValueID, dst ClusterID) []ClusterID {
	t := f.T
	// Seed with every cluster holding v, in ascending order within two
	// passes. Native sources (the producer's home cluster, or an input
	// node carrying v) come first so that equal-length routes prefer them
	// over replicas, which would pay a re-send. Output nodes never
	// forward and are never seeds.
	var nativeBit uint64
	if a := f.assign[v]; a >= 0 {
		nativeBit = 1 << uint(a)
	}
	pass0 := f.avail[v] & (t.inMask | (t.regMask & nativeBit))
	pass1 := f.avail[v] & t.regMask &^ nativeBit
	if f.maxHops == 1 {
		// Direct-pattern fast path (the first SEE phase, the bulk of all
		// Route calls): a depth-1 route is exactly "the first seed — in
		// the same two-pass ascending order the BFS would visit — with a
		// usable potential arc to dst", so the queue machinery below
		// never needs to run. dst is never a seed (Route returns before
		// findPath when v is already available there).
		db := uint64(1) << uint(dst)
		for m := pass0; m != 0; m &= m - 1 {
			c := ClusterID(bits.TrailingZeros64(m))
			if t.potMask[c]&db != 0 && f.arcUsable(c, dst) {
				f.bfsPath = append(f.bfsPath[:0], c, dst)
				return f.bfsPath
			}
		}
		for m := pass1; m != 0; m &= m - 1 {
			c := ClusterID(bits.TrailingZeros64(m))
			if t.potMask[c]&db != 0 && f.arcUsable(c, dst) {
				f.bfsPath = append(f.bfsPath[:0], c, dst)
				return f.bfsPath
			}
		}
		return nil
	}
	n := t.NumClusters()
	if cap(f.bfsPrev) < n {
		f.bfsPrev = make([]int8, n)
		f.bfsDepth = make([]int32, n)
		f.bfsQueue = make([]int8, 0, n)
	}
	prev, depth := f.bfsPrev[:n], f.bfsDepth[:n]
	seen := pass0 | pass1
	queue := f.bfsQueue[:0]
	for m := pass0; m != 0; m &= m - 1 {
		c := int8(bits.TrailingZeros64(m))
		prev[c], depth[c] = -1, 0
		queue = append(queue, c)
	}
	for m := pass1; m != 0; m &= m - 1 {
		c := int8(bits.TrailingZeros64(m))
		prev[c], depth[c] = -1, 0
		queue = append(queue, c)
	}
	dstBit := uint64(1) << uint(dst)
	allowed := t.regMask | dstBit
	path := f.bfsPath[:0]
	for head := 0; head < len(queue); head++ {
		x := ClusterID(queue[head])
		if x == dst {
			for c := x; ; c = ClusterID(prev[c]) {
				path = append(path, c)
				if prev[c] < 0 {
					break
				}
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			break
		}
		// Only regular clusters (and the starting nodes) forward.
		if prev[x] >= 0 && !t.isRegular(x) {
			continue
		}
		if f.maxHops > 0 && int(depth[x]) >= f.maxHops {
			continue
		}
		for m := t.potMask[x] &^ seen & allowed; m != 0; m &= m - 1 {
			y := ClusterID(bits.TrailingZeros64(m))
			if !f.arcUsable(x, y) {
				continue
			}
			seen |= 1 << uint(y)
			prev[y] = int8(x)
			depth[y] = depth[x] + 1
			queue = append(queue, int8(y))
		}
	}
	f.bfsQueue = queue[:0]
	f.bfsPath = path
	if len(path) == 0 {
		return nil
	}
	// The returned slice aliases f.bfsPath: valid until the next findPath
	// call on this flow, which is all Route needs.
	return path
}

// arcUsable reports whether the arc x→y is already real or can become
// real within the reconfiguration constraints.
//
//hca:hotpath
func (f *Flow) arcUsable(x, y ClusterID) bool {
	if f.inSrc[y]&(1<<uint(x)) != 0 {
		return true // already real
	}
	t := f.T
	yb := uint64(1) << uint(y)
	switch {
	case t.regMask&yb != 0:
		if bits.OnesCount64(f.inSrc[y]) >= t.MaxIn {
			return false
		}
	case t.outMask&yb != 0:
		if f.inSrc[y] != 0 {
			return false // outNode_MaxIn = 1
		}
	default:
		return false // input nodes receive nothing
	}
	if t.MaxOut > 0 && t.regMask&(1<<uint(x)) != 0 {
		if f.outDst[x]&yb == 0 && bits.OnesCount64(f.outDst[x]) >= t.MaxOut {
			return false
		}
	}
	return true
}

// addCopy records value v on the (possibly new) real arc x→y and updates
// the load accounting and the incremental objective caches. The
// duplicate check is one bit probe in the arc's value bitset, and the
// copy itself is one appended log record plus that bit.
//
//hca:hotpath
func (f *Flow) addCopy(x, y ClusterID, v ValueID) {
	key := int32(x)<<arcShift | int32(y)
	w := int(f.T.arcIdx[key])*f.vwords + int(v)>>6
	bit := uint64(1) << (uint(v) & 63)
	if f.arcHas[w]&bit != 0 {
		return
	}
	var flags uint8
	if f.inSrc[y]&(1<<uint(x)) == 0 {
		flags |= fNewInSrc
	}
	if f.outDst[x]&(1<<uint(y)) == 0 {
		flags |= fNewOutDst
	}
	if f.avail[v]&(1<<uint(y)) == 0 {
		flags |= fNewAvail
	}
	if !f.carriesOut(x, v) {
		flags |= fDistinctInc
		f.cnt[int(x)*cntStride+cntDistinct]++
	}
	cx, cy := f.canonLabel(x), f.canonLabel(y)
	f.fpXor(fpFact(fkCopy, cx, cy, int64(v)))
	if flags&fNewInSrc != 0 {
		f.fpXor(fpFact(fkInSrc, cx, cy, 0))
	}
	if flags&fNewOutDst != 0 {
		f.fpXor(fpFact(fkOutDst, cx, cy, 0))
	}
	if flags&fNewAvail != 0 {
		f.fpXor(fpFact(fkAvail, cy, 0, int64(v)))
	}
	f.arcHas[w] |= bit
	f.copyLog = append(f.copyLog, copyRec{arc: key, v: int32(v)})
	f.inSrc[y] |= 1 << uint(x)
	f.outDst[x] |= 1 << uint(y)
	f.avail[v] |= 1 << uint(y)
	if f.T.isRegular(y) {
		f.cnt[int(y)*cntStride+cntRecv]++
		flags |= fRecvInc
	}
	// A regular cluster re-sending a value it does not produce pays an
	// extra move to expose it on an output wire.
	if f.T.isRegular(x) && ClusterID(f.assign[v]) != x {
		// Transition encoding: the re-send decision depends on the
		// assignment state at copy time, so the fingerprint folds the
		// counter's old→new level change rather than a set fact.
		s := f.cnt[int(x)*cntStride+cntSend]
		f.fpXor(fpFact(fkSend, cx, 0, int64(s)))
		f.cnt[int(x)*cntStride+cntSend] = s + 1
		f.fpXor(fpFact(fkSend, cx, 0, int64(s+1)))
		flags |= fSendInc
	}
	if f.journaling {
		f.journal = append(f.journal, undoEntry{op: undoCopy, x: x, y: y, v: v, flags: flags})
	}
}

// carriesOut reports whether some real arc leaving x already carries v:
// one bit probe per real out-neighbor.
//
//hca:hotpath
func (f *Flow) carriesOut(x ClusterID, v ValueID) bool {
	off, bit := int(v)>>6, uint64(1)<<(uint(v)&63)
	base := int32(x) << arcShift
	for m := f.outDst[x]; m != 0; m &= m - 1 {
		ai := f.T.arcIdx[base|int32(bits.TrailingZeros64(m))]
		if ai >= 0 && f.arcHas[int(ai)*f.vwords+off]&bit != 0 {
			return true
		}
	}
	return false
}

// MarkUbiquitous declares value v available at every regular cluster
// without communication. The HCA driver uses this for rematerializable
// values — constants and induction values, which every cluster can
// produce locally (constants are preloaded into register files during the
// reconfiguration phase; induction variables are duplicated per cluster,
// the standard clustered-VLIW transformation) — so they never consume
// wires or receive slots.
func (f *Flow) MarkUbiquitous(v ValueID) {
	if added := f.allRegMask &^ f.avail[v]; added != 0 {
		f.fpUbiq(v, added)
		if f.journaling {
			f.journal = append(f.journal, undoEntry{op: undoUbiquitous, v: v, mask: added})
		}
	}
	f.avail[v] |= f.allRegMask
}

// ReserveArc pre-commits the potential arc x→y as a real communication
// pattern before any value is routed over it, consuming the endpoint port
// budgets immediately. The HCA driver uses this to seed a forwarding ring
// on port-starved levels: with every cluster already listening to one
// neighbor, any value can travel multi-hop regardless of how the search
// commits the remaining ports. A reserved arc that never carries a value
// simply stays unconfigured (it produces no wire in the mapping).
func (f *Flow) ReserveArc(x, y ClusterID) error {
	f.T.mustHave(x)
	f.T.mustHave(y)
	if !f.T.Potential(x, y) {
		return fmt.Errorf("pg: ReserveArc: no potential arc %d→%d", x, y)
	}
	if !f.arcUsable(x, y) {
		return fmt.Errorf("pg: ReserveArc: arc %d→%d would violate port budgets", x, y)
	}
	var flags uint8
	if f.inSrc[y]&(1<<uint(x)) == 0 {
		flags |= fNewInSrc
	}
	if f.outDst[x]&(1<<uint(y)) == 0 {
		flags |= fNewOutDst
	}
	cx, cy := f.canonLabel(x), f.canonLabel(y)
	if flags&fNewInSrc != 0 {
		f.fpXor(fpFact(fkInSrc, cx, cy, 0))
	}
	if flags&fNewOutDst != 0 {
		f.fpXor(fpFact(fkOutDst, cx, cy, 0))
	}
	if f.journaling {
		f.journal = append(f.journal, undoEntry{op: undoReserve, x: x, y: y, flags: flags})
	}
	f.inSrc[y] |= 1 << uint(x)
	f.outDst[x] |= 1 << uint(y)
	return nil
}

// TotalCopies returns the number of (arc, value) copy pairs: the length
// of the copy log.
//
//hca:hotpath
func (f *Flow) TotalCopies() int { return len(f.copyLog) }

// EstimateMII returns the §4.2 cost: the maximum of the static recurrence
// bound, each cluster's compute bound ceil(load/issueSlots), and each
// cluster's wire-pressure bounds (values in per input wire, distinct
// values out per output wire).
//
//hca:hotpath
func (f *Flow) EstimateMII() int {
	mii, _, _, _ := f.ObjectiveTerms()
	return mii
}

// ObjectiveTerms computes the standard cost-model terms in one pass over
// the packed per-cluster counter blocks: the §4.2 MII estimate, the
// total copy count, the maximum regular-cluster load (the balance term)
// and the summed real in-neighbor ports. The SEE's fused scoring path
// reads all four from this single sweep instead of running one closure
// per criterion.
//
//hca:hotpath
func (f *Flow) ObjectiveTerms() (mii, copies, balance, ports int) {
	t := f.T
	mii = f.MIIRecStatic
	if mii < 1 {
		mii = 1
	}
	inWires := t.MaxIn
	outWires := t.MaxOut
	if outWires <= 0 {
		outWires = inWires // symmetric wire counts on DSPFabric
	}
	for c := 0; c < t.regular; c++ {
		base := c * cntStride
		load := int(f.cnt[base+cntInstr] + f.cnt[base+cntRecv] + f.cnt[base+cntSend])
		if load > balance {
			balance = load
		}
		ports += bits.OnesCount64(f.inSrc[c])
		if m := ceilDiv(load, int(t.issue[c])); m > mii {
			mii = m
		}
		if ms := int(t.mem[c]); ms > 0 {
			if m := ceilDiv(int(f.cnt[base+cntMem]), ms); m > mii {
				mii = m
			}
		}
		if m := ceilDiv(int(f.cnt[base+cntRecv]), inWires); m > mii {
			mii = m
		}
		if m := ceilDiv(int(f.cnt[base+cntDistinct]), outWires); m > mii {
			mii = m
		}
	}
	return mii, len(f.copyLog), balance, ports
}

// distinctValuesOut reads the incrementally maintained count of distinct
// values leaving c over real arcs.
func (f *Flow) distinctValuesOut(c ClusterID) int { return int(f.cnt[int(c)*cntStride+cntDistinct]) }

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Verify re-checks every invariant of a finished or partial flow: the
// copy log and the per-arc bitsets agree, every copy travels a potential
// arc, in/out-neighbor budgets hold, output nodes have at most one
// in-arc, the counter caches match a recount, and every assigned
// instruction's placed operands are available at its cluster. It is the
// per-level half of the paper's coherency checker.
func (f *Flow) Verify() error {
	distinct := make(map[ClusterID]map[ValueID]bool)
	seen := make(map[int64]bool, len(f.copyLog))
	for _, r := range f.copyLog {
		x, y := ClusterID(r.arc>>arcShift), ClusterID(r.arc&(maxClusters-1))
		if !f.T.Potential(x, y) {
			return fmt.Errorf("pg: real arc %d→%d has no potential arc", x, y)
		}
		pv := int64(r.arc)<<32 | int64(r.v)
		if seen[pv] {
			return fmt.Errorf("pg: duplicate copy of value %d on arc %d→%d", r.v, x, y)
		}
		seen[pv] = true
		ai := f.T.arcIdx[r.arc]
		if ai < 0 || f.arcHas[int(ai)*f.vwords+int(r.v)>>6]&(1<<(uint(r.v)&63)) == 0 {
			return fmt.Errorf("pg: copy of value %d on arc %d→%d missing from the arc bitset", r.v, x, y)
		}
		if distinct[x] == nil {
			distinct[x] = make(map[ValueID]bool)
		}
		distinct[x][ValueID(r.v)] = true
	}
	// The arc bitsets must contain exactly the logged copies.
	pop := 0
	for _, w := range f.arcHas {
		pop += bits.OnesCount64(w)
	}
	if pop != len(f.copyLog) {
		return fmt.Errorf("pg: arc bitsets hold %d copies, copy log %d", pop, len(f.copyLog))
	}
	for c := 0; c < f.T.NumClusters(); c++ {
		if got, want := f.distinctValuesOut(ClusterID(c)), len(distinct[ClusterID(c)]); got != want {
			return fmt.Errorf("pg: distinctOut[%d] cache %d != recount %d", c, got, want)
		}
	}
	// Canonical-label bookkeeping behind the incremental fingerprint:
	// assigned labels must form a bijection onto [0, canonN).
	if f.canonSym {
		seen := make([]bool, f.canonN)
		n := 0
		for _, l := range f.canon {
			if l == None {
				continue
			}
			if int(l) >= f.canonN || seen[l] {
				return fmt.Errorf("pg: canonical label %d out of range or duplicated (canonN %d)", l, f.canonN)
			}
			seen[l] = true
			n++
		}
		if n != f.canonN {
			return fmt.Errorf("pg: canonN %d != %d assigned canonical labels", f.canonN, n)
		}
	}
	for c := 0; c < f.T.NumClusters(); c++ {
		id := ClusterID(c)
		switch f.T.Cluster(id).Kind {
		case Regular:
			if got := bits.OnesCount64(f.inSrc[c]); got > f.T.MaxIn {
				return fmt.Errorf("pg: cluster %d has %d in-neighbors > MaxIn %d", c, got, f.T.MaxIn)
			}
			if f.T.MaxOut > 0 {
				if got := bits.OnesCount64(f.outDst[c]); got > f.T.MaxOut {
					return fmt.Errorf("pg: cluster %d has %d out-neighbors > MaxOut %d", c, got, f.T.MaxOut)
				}
			}
		case OutNode:
			if got := bits.OnesCount64(f.inSrc[c]); got > 1 {
				return fmt.Errorf("pg: output node %d has %d in-arcs (outNode_MaxIn)", c, got)
			}
		case InNode:
			if f.inSrc[c] != 0 {
				return fmt.Errorf("pg: input node %d has in-arcs", c)
			}
		}
	}
	var err error
	for n := 0; n < f.D.Len() && err == nil; n++ {
		c := ClusterID(f.assign[n])
		if c == None {
			continue
		}
		f.D.G.In(graph.NodeID(n), func(e graph.Edge) {
			if err != nil {
				return
			}
			if f.assign[e.From] < 0 && f.avail[e.From] == 0 {
				return
			}
			if !f.Available(e.From, c) {
				err = fmt.Errorf("pg: operand %d of instruction %d not available at cluster %d", e.From, n, c)
			}
		})
	}
	if err != nil {
		return err
	}
	// Output nodes must have received all their carried values once any
	// carrier is assigned.
	for _, o := range f.T.OutputNodes() {
		for _, v := range f.T.Cluster(o).Carries {
			if f.assign[v] >= 0 && !f.Available(v, o) {
				return fmt.Errorf("pg: output node %d missing carried value %d", o, v)
			}
		}
	}
	return nil
}
