package pg

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// maxClusters bounds the cluster count of one Topology so that cluster
// sets fit in a single machine word. Every level of the paper's machines
// is far below this (4 regular clusters + up to 2·8 special nodes).
const maxClusters = 64

// Flow is the mutable state of a cluster-assignment search over one
// Topology: the partial instruction assignment, the arcs that have become
// real communication patterns and the values they carry, and the derived
// load accounting the cost function reads. Flows are cloned by the SEE
// beam search, so all state is in flat slices and one small map.
type Flow struct {
	T *Topology
	D *ddg.DDG

	// MIIRecStatic is the recurrence-constrained lower bound of the
	// working set, folded into EstimateMII.
	MIIRecStatic int

	assign   []ClusterID // per DDG node; None if unassigned
	nInstr   []int       // instructions hosted per cluster
	memInstr []int       // memory instructions hosted per cluster
	recvLoad []int       // values received per cluster (rcv primitives)
	sendLoad []int       // forwarded-value re-sends per cluster
	inSrc    []uint64    // per cluster: bitmask of real in-neighbor clusters
	outDst   []uint64    // per cluster: bitmask of real out-neighbor clusters
	avail    []uint64    // per value: bitmask of clusters where it is available
	copies   map[int32][]ValueID
	assigned int // number of assigned instructions
	maxHops  int // route-length bound for findPath (0 = unlimited)

	// Incremental objective caches, maintained by Assign/addCopy and the
	// journal's undo path so EstimateMII and TotalCopies never rescan the
	// copies map.
	totalCopies int
	distinctOut []int // per cluster: distinct values on its outgoing real arcs

	// Incremental Zobrist state hash (fingerprint.go), maintained by the
	// same mutation/undo pairs as the objective caches. On symmetric
	// topologies fact keys use canonical first-touch cluster labels so
	// permutation-twin states hash identically.
	fp         Fingerprint
	canon      []ClusterID // per regular cluster: canonical label, or None
	canonN     int         // next canonical label to hand out
	canonSym   bool        // topology qualifies for canonical labels
	allRegMask uint64      // avail-mask covering every regular cluster

	// Mutation journal (journal.go). Enabled by Checkpoint; never cloned.
	journal    []undoEntry
	journaling bool
	journalHW  int // deepest journal ever rolled back (telemetry)

	// Reusable findPath scratch (not cloned): a Flow is owned by one
	// goroutine at a time, so BFS state can live on it across Route calls.
	bfsPrev  []ClusterID
	bfsSeen  []bool
	bfsDepth []int
	bfsQueue []ClusterID
	bfsPath  []ClusterID
}

func arcKey(from, to ClusterID) int32 { return int32(from)<<8 | int32(to) }

// NewFlow creates an empty assignment over t for d. Values carried by
// input nodes start available at their input node.
func NewFlow(t *Topology, d *ddg.DDG) *Flow {
	if t.NumClusters() > maxClusters {
		panic(fmt.Sprintf("pg: topology %q has %d clusters; Flow supports at most %d", t.Name, t.NumClusters(), maxClusters))
	}
	f := &Flow{
		T:        t,
		D:        d,
		assign:   make([]ClusterID, d.Len()),
		nInstr:   make([]int, t.NumClusters()),
		memInstr: make([]int, t.NumClusters()),
		recvLoad: make([]int, t.NumClusters()),
		sendLoad: make([]int, t.NumClusters()),
		inSrc:    make([]uint64, t.NumClusters()),
		outDst:   make([]uint64, t.NumClusters()),
		avail:    make([]uint64, d.Len()),
		copies:   make(map[int32][]ValueID),

		distinctOut: make([]int, t.NumClusters()),

		canon:    make([]ClusterID, t.regular),
		canonSym: topoSymmetric(t),
	}
	for i := range f.assign {
		f.assign[i] = None
	}
	for i := range f.canon {
		f.canon[i] = None
	}
	for c := 0; c < t.regular; c++ {
		f.allRegMask |= 1 << uint(c)
	}
	for _, in := range t.InputNodes() {
		for _, v := range t.Cluster(in).Carries {
			if f.avail[v]&(1<<uint(in)) == 0 {
				f.fpXor(fpFact(fkAvail, in, 0, int64(v)))
			}
			f.avail[v] |= 1 << uint(in)
		}
	}
	return f
}

// Clone returns an independent copy of the flow.
func (f *Flow) Clone() *Flow {
	c := &Flow{
		T:            f.T,
		D:            f.D,
		MIIRecStatic: f.MIIRecStatic,
		assign:       append([]ClusterID(nil), f.assign...),
		nInstr:       append([]int(nil), f.nInstr...),
		memInstr:     append([]int(nil), f.memInstr...),
		recvLoad:     append([]int(nil), f.recvLoad...),
		sendLoad:     append([]int(nil), f.sendLoad...),
		inSrc:        append([]uint64(nil), f.inSrc...),
		outDst:       append([]uint64(nil), f.outDst...),
		avail:        append([]uint64(nil), f.avail...),
		copies:       make(map[int32][]ValueID, len(f.copies)),
		assigned:     f.assigned,
		maxHops:      f.maxHops,
		totalCopies:  f.totalCopies,
		distinctOut:  append([]int(nil), f.distinctOut...),
		fp:           f.fp,
		canon:        append([]ClusterID(nil), f.canon...),
		canonN:       f.canonN,
		canonSym:     f.canonSym,
		allRegMask:   f.allRegMask,
	}
	for k, v := range f.copies {
		c.copies[k] = append([]ValueID(nil), v...)
	}
	return c
}

// Assignment returns the cluster hosting node n, or None.
func (f *Flow) Assignment(n graph.NodeID) ClusterID { return f.assign[n] }

// NumAssigned returns how many instructions have been assigned.
func (f *Flow) NumAssigned() int { return f.assigned }

// Instructions returns the DDG nodes assigned to cluster c, ascending.
func (f *Flow) Instructions(c ClusterID) []graph.NodeID {
	var out []graph.NodeID
	for n, cl := range f.assign {
		if cl == c {
			out = append(out, graph.NodeID(n))
		}
	}
	return out
}

// Copies returns the values carried by the real arc from→to (nil if the
// arc is not real).
func (f *Flow) Copies(from, to ClusterID) []ValueID {
	return f.copies[arcKey(from, to)]
}

// RealArcs calls fn for every real arc with its carried values, in
// deterministic (from, to) order.
func (f *Flow) RealArcs(fn func(from, to ClusterID, vals []ValueID)) {
	keys := make([]int32, 0, len(f.copies))
	for k := range f.copies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fn(ClusterID(k>>8), ClusterID(k&0xff), f.copies[k])
	}
}

// InNeighbors returns the number of distinct real in-neighbors of c.
func (f *Flow) InNeighbors(c ClusterID) int { return bits.OnesCount64(f.inSrc[c]) }

// Load returns the compute load of cluster c: hosted instructions plus
// receive primitives plus forwarding re-sends (§4.2's copy-pressure term).
//
//hca:hotpath
func (f *Flow) Load(c ClusterID) int { return f.nInstr[c] + f.recvLoad[c] + f.sendLoad[c] }

// Available reports whether value v is available at cluster c.
func (f *Flow) Available(v ValueID, c ClusterID) bool { return f.avail[v]&(1<<uint(c)) != 0 }

// Assign places instruction n on regular cluster c, routing every operand
// of n to c and n's value to every already-assigned consumer and to any
// output node that must carry it. It returns an error (leaving f
// unchanged only in the error==immediately-detectable cases; use
// TryAssign on a clone for speculative work) when c is not regular or a
// required route does not exist.
//
//hca:hotpath
func (f *Flow) Assign(n graph.NodeID, c ClusterID) error {
	f.T.mustHave(c)
	if f.T.Cluster(c).Kind != Regular {
		return fmt.Errorf("pg: cannot assign instruction %d to special node %d", n, c)
	}
	if f.assign[n] != None {
		return fmt.Errorf("pg: instruction %d already assigned to %d", n, f.assign[n])
	}
	isMem := f.D.Node(n).Op.IsMem()
	if isMem && f.T.Cluster(c).MemSlots == 0 {
		return fmt.Errorf("pg: memory instruction %d cannot run on cluster %d (no memory-capable CN)", n, c)
	}
	f.assign[n] = c
	f.nInstr[c]++
	if isMem {
		f.memInstr[c]++
	}
	f.assigned++
	// Ubiquitous (rematerialized) values may already be available at c.
	newAvail := f.avail[n]&(1<<uint(c)) == 0
	ca := f.canonLabel(c)
	f.fpXor(fpFact(fkAssign, ca, 0, int64(n)))
	if newAvail {
		f.fpXor(fpFact(fkAvail, ca, 0, int64(n)))
	}
	if f.journaling {
		flags := uint8(0)
		if isMem {
			flags |= fMemInstr
		}
		if newAvail {
			flags |= fNewAvail
		}
		f.journal = append(f.journal, undoEntry{op: undoAssign, x: c, v: ValueID(n), flags: flags})
	}
	f.avail[n] |= 1 << uint(c)

	var err error
	// Operands must reach c. Skip producers that are not placed yet (the
	// route is created when they are assigned).
	f.D.G.In(n, func(e graph.Edge) {
		if err != nil {
			return
		}
		if f.avail[e.From] == 0 && f.assign[e.From] == None {
			return
		}
		err = f.Route(e.From, c)
	})
	if err != nil {
		return err
	}
	// n's value must reach already-assigned consumers.
	f.D.G.Out(n, func(e graph.Edge) {
		if err != nil {
			return
		}
		if dst := f.assign[e.To]; dst != None && dst != c {
			err = f.Route(n, dst)
		}
	})
	if err != nil {
		return err
	}
	// ... and any output node that carries it.
	for _, o := range f.T.OutputNodes() {
		for _, v := range f.T.Cluster(o).Carries {
			if v == n {
				if err := f.Route(n, o); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// TryAssign clones f, assigns n to c on the clone, and returns the clone
// (or nil and the error). f is never modified.
func (f *Flow) TryAssign(n graph.NodeID, c ClusterID) (*Flow, error) {
	g := f.Clone()
	if err := g.Assign(n, c); err != nil {
		return nil, err
	}
	return g, nil
}

// Route makes value v available at cluster dst, materializing real arcs
// along a shortest feasible path from wherever v is already available. It
// is the built-in route allocator (§3, Figure 6b): paths may pass through
// intermediate regular clusters, which then pay a receive plus a re-send.
//
//hca:hotpath
func (f *Flow) Route(v ValueID, dst ClusterID) error {
	if f.avail[v] == 0 {
		return fmt.Errorf("pg: value %d is nowhere available", v)
	}
	if f.Available(v, dst) {
		return nil
	}
	path := f.findPath(v, dst)
	if path == nil {
		return fmt.Errorf("pg: no feasible path for value %d to cluster %d", v, dst)
	}
	for i := 0; i+1 < len(path); i++ {
		f.addCopy(path[i], path[i+1], v)
	}
	return nil
}

// findPath BFSes from every cluster where v is available toward dst over
// usable arcs: already-real arcs are free; a new arc must respect the
// in-neighbor budget (MaxIn for regular clusters, 1 for output nodes) and
// the optional out-neighbor budget. Intermediate hops must be regular
// clusters. Returns nil if no path exists.
//
//hca:hotpath
func (f *Flow) findPath(v ValueID, dst ClusterID) []ClusterID {
	n := f.T.NumClusters()
	// BFS state lives on the flow so the hot path never allocates; a Flow
	// is owned by one goroutine at a time.
	if cap(f.bfsPrev) < n {
		f.bfsPrev = make([]ClusterID, n)
		f.bfsSeen = make([]bool, n)
		f.bfsDepth = make([]int, n)
		f.bfsQueue = make([]ClusterID, 0, n)
	}
	prev, seen, depth := f.bfsPrev[:n], f.bfsSeen[:n], f.bfsDepth[:n]
	for i := 0; i < n; i++ {
		prev[i] = None
		seen[i] = false
		depth[i] = 0
	}
	// Seed with every cluster holding v. Native sources (the producer's
	// home cluster, or an input node carrying v) come first so that equal-
	// length routes prefer them over replicas, which would pay a re-send.
	queue := f.bfsQueue[:0]
	for pass := 0; pass < 2; pass++ {
		for c := 0; c < n; c++ {
			if f.avail[v]&(1<<uint(c)) == 0 {
				continue
			}
			id := ClusterID(c)
			switch f.T.Cluster(id).Kind {
			case OutNode: // output nodes never forward
			case InNode:
				if pass == 0 {
					seen[c] = true
					queue = append(queue, id)
				}
			default:
				if native := f.assign[v] == id; native == (pass == 0) {
					seen[c] = true
					queue = append(queue, id)
				}
			}
		}
	}
	path := f.bfsPath[:0]
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		if x == dst {
			for c := x; c != None; c = prev[c] {
				path = append(path, c)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			break
		}
		// Only regular clusters (and the starting nodes) forward.
		if x != dst && prev[x] != None && f.T.Cluster(x).Kind != Regular {
			continue
		}
		if f.maxHops > 0 && depth[x] >= f.maxHops {
			continue
		}
		for y := ClusterID(0); int(y) < n; y++ {
			if seen[y] || !f.T.Potential(x, y) {
				continue
			}
			if y != dst && f.T.Cluster(y).Kind != Regular {
				continue // special nodes are only ever endpoints
			}
			if !f.arcUsable(x, y) {
				continue
			}
			seen[y] = true
			prev[y] = x
			depth[y] = depth[x] + 1
			queue = append(queue, y)
		}
	}
	f.bfsQueue = queue[:0]
	f.bfsPath = path
	if len(path) == 0 {
		return nil
	}
	// The returned slice aliases f.bfsPath: valid until the next findPath
	// call on this flow, which is all Route needs.
	return path
}

// arcUsable reports whether the arc x→y is already real or can become
// real within the reconfiguration constraints.
//
//hca:hotpath
func (f *Flow) arcUsable(x, y ClusterID) bool {
	if f.inSrc[y]&(1<<uint(x)) != 0 {
		return true // already real
	}
	switch f.T.Cluster(y).Kind {
	case Regular:
		if bits.OnesCount64(f.inSrc[y]) >= f.T.MaxIn {
			return false
		}
	case OutNode:
		if f.inSrc[y] != 0 {
			return false // outNode_MaxIn = 1
		}
	case InNode:
		return false
	}
	if f.T.MaxOut > 0 && f.T.Cluster(x).Kind == Regular {
		if f.outDst[x]&(1<<uint(y)) == 0 && bits.OnesCount64(f.outDst[x]) >= f.T.MaxOut {
			return false
		}
	}
	return true
}

// addCopy records value v on the (possibly new) real arc x→y and updates
// the load accounting and the incremental objective caches.
//
//hca:hotpath
func (f *Flow) addCopy(x, y ClusterID, v ValueID) {
	k := arcKey(x, y)
	for _, have := range f.copies[k] {
		if have == v {
			return
		}
	}
	var flags uint8
	if f.inSrc[y]&(1<<uint(x)) == 0 {
		flags |= fNewInSrc
	}
	if f.outDst[x]&(1<<uint(y)) == 0 {
		flags |= fNewOutDst
	}
	if f.avail[v]&(1<<uint(y)) == 0 {
		flags |= fNewAvail
	}
	if !f.carriesOut(x, v) {
		flags |= fDistinctInc
		f.distinctOut[x]++
	}
	cx, cy := f.canonLabel(x), f.canonLabel(y)
	f.fpXor(fpFact(fkCopy, cx, cy, int64(v)))
	if flags&fNewInSrc != 0 {
		f.fpXor(fpFact(fkInSrc, cx, cy, 0))
	}
	if flags&fNewOutDst != 0 {
		f.fpXor(fpFact(fkOutDst, cx, cy, 0))
	}
	if flags&fNewAvail != 0 {
		f.fpXor(fpFact(fkAvail, cy, 0, int64(v)))
	}
	f.copies[k] = append(f.copies[k], v)
	f.totalCopies++
	f.inSrc[y] |= 1 << uint(x)
	f.outDst[x] |= 1 << uint(y)
	f.avail[v] |= 1 << uint(y)
	if f.T.Cluster(y).Kind == Regular {
		f.recvLoad[y]++
		flags |= fRecvInc
	}
	// A regular cluster re-sending a value it does not produce pays an
	// extra move to expose it on an output wire.
	if f.T.Cluster(x).Kind == Regular && f.assign[v] != x {
		// Transition encoding: the re-send decision depends on the
		// assignment state at copy time, so the fingerprint folds the
		// counter's old→new level change rather than a set fact.
		f.fpXor(fpFact(fkSend, cx, 0, int64(f.sendLoad[x])))
		f.sendLoad[x]++
		f.fpXor(fpFact(fkSend, cx, 0, int64(f.sendLoad[x])))
		flags |= fSendInc
	}
	if f.journaling {
		f.journal = append(f.journal, undoEntry{op: undoCopy, x: x, y: y, v: v, flags: flags})
	}
}

// carriesOut reports whether some real arc leaving x already carries v.
//
//hca:hotpath
func (f *Flow) carriesOut(x ClusterID, v ValueID) bool {
	for m := f.outDst[x]; m != 0; m &= m - 1 {
		y := ClusterID(bits.TrailingZeros64(m))
		for _, have := range f.copies[arcKey(x, y)] {
			if have == v {
				return true
			}
		}
	}
	return false
}

// MarkUbiquitous declares value v available at every regular cluster
// without communication. The HCA driver uses this for rematerializable
// values — constants and induction values, which every cluster can
// produce locally (constants are preloaded into register files during the
// reconfiguration phase; induction variables are duplicated per cluster,
// the standard clustered-VLIW transformation) — so they never consume
// wires or receive slots.
func (f *Flow) MarkUbiquitous(v ValueID) {
	if added := f.allRegMask &^ f.avail[v]; added != 0 {
		f.fpUbiq(v, added)
		if f.journaling {
			f.journal = append(f.journal, undoEntry{op: undoUbiquitous, v: v, mask: added})
		}
	}
	f.avail[v] |= f.allRegMask
}

// ReserveArc pre-commits the potential arc x→y as a real communication
// pattern before any value is routed over it, consuming the endpoint port
// budgets immediately. The HCA driver uses this to seed a forwarding ring
// on port-starved levels: with every cluster already listening to one
// neighbor, any value can travel multi-hop regardless of how the search
// commits the remaining ports. A reserved arc that never carries a value
// simply stays unconfigured (it produces no wire in the mapping).
func (f *Flow) ReserveArc(x, y ClusterID) error {
	f.T.mustHave(x)
	f.T.mustHave(y)
	if !f.T.Potential(x, y) {
		return fmt.Errorf("pg: ReserveArc: no potential arc %d→%d", x, y)
	}
	if !f.arcUsable(x, y) {
		return fmt.Errorf("pg: ReserveArc: arc %d→%d would violate port budgets", x, y)
	}
	var flags uint8
	if f.inSrc[y]&(1<<uint(x)) == 0 {
		flags |= fNewInSrc
	}
	if f.outDst[x]&(1<<uint(y)) == 0 {
		flags |= fNewOutDst
	}
	cx, cy := f.canonLabel(x), f.canonLabel(y)
	if flags&fNewInSrc != 0 {
		f.fpXor(fpFact(fkInSrc, cx, cy, 0))
	}
	if flags&fNewOutDst != 0 {
		f.fpXor(fpFact(fkOutDst, cx, cy, 0))
	}
	if f.journaling {
		f.journal = append(f.journal, undoEntry{op: undoReserve, x: x, y: y, flags: flags})
	}
	f.inSrc[y] |= 1 << uint(x)
	f.outDst[x] |= 1 << uint(y)
	return nil
}

// TotalCopies returns the number of (arc, value) copy pairs. It is a
// cache read: the count is maintained incrementally by addCopy and the
// journal's undo path.
//
//hca:hotpath
func (f *Flow) TotalCopies() int { return f.totalCopies }

// EstimateMII returns the §4.2 cost: the maximum of the static recurrence
// bound, each cluster's compute bound ceil(load/issueSlots), and each
// cluster's wire-pressure bounds (values in per input wire, distinct
// values out per output wire).
//
//hca:hotpath
func (f *Flow) EstimateMII() int {
	mii := f.MIIRecStatic
	if mii < 1 {
		mii = 1
	}
	inWires := f.T.MaxIn
	outWires := f.T.MaxOut
	if outWires <= 0 {
		outWires = inWires // symmetric wire counts on DSPFabric
	}
	for c := 0; c < f.T.NumClusters(); c++ {
		cl := f.T.Cluster(ClusterID(c))
		if cl.Kind != Regular {
			continue
		}
		if m := ceilDiv(f.Load(ClusterID(c)), cl.IssueSlots); m > mii {
			mii = m
		}
		if cl.MemSlots > 0 {
			if m := ceilDiv(f.memInstr[c], cl.MemSlots); m > mii {
				mii = m
			}
		}
		if m := ceilDiv(f.recvLoad[c], inWires); m > mii {
			mii = m
		}
		if m := ceilDiv(f.distinctValuesOut(ClusterID(c)), outWires); m > mii {
			mii = m
		}
	}
	return mii
}

// distinctValuesOut reads the incrementally maintained count of distinct
// values leaving c over real arcs.
func (f *Flow) distinctValuesOut(c ClusterID) int { return f.distinctOut[c] }

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Verify re-checks every invariant of a finished or partial flow: arc
// reality matches copy lists, in/out-neighbor budgets hold, output nodes
// have at most one in-arc, every copy travels a potential arc, and every
// assigned instruction's placed operands are available at its cluster. It
// is the per-level half of the paper's coherency checker.
func (f *Flow) Verify() error {
	total := 0
	distinct := make(map[ClusterID]map[ValueID]bool)
	for k, vs := range f.copies {
		x, y := ClusterID(k>>8), ClusterID(k&0xff)
		if len(vs) == 0 {
			return fmt.Errorf("pg: empty real arc %d→%d", x, y)
		}
		if !f.T.Potential(x, y) {
			return fmt.Errorf("pg: real arc %d→%d has no potential arc", x, y)
		}
		total += len(vs)
		if distinct[x] == nil {
			distinct[x] = make(map[ValueID]bool)
		}
		for _, v := range vs {
			distinct[x][v] = true
		}
	}
	// The incremental objective caches must agree with a recount.
	if total != f.totalCopies {
		return fmt.Errorf("pg: totalCopies cache %d != recount %d", f.totalCopies, total)
	}
	for c := 0; c < f.T.NumClusters(); c++ {
		if got, want := f.distinctOut[c], len(distinct[ClusterID(c)]); got != want {
			return fmt.Errorf("pg: distinctOut[%d] cache %d != recount %d", c, got, want)
		}
	}
	// Canonical-label bookkeeping behind the incremental fingerprint:
	// assigned labels must form a bijection onto [0, canonN).
	if f.canonSym {
		seen := make([]bool, f.canonN)
		n := 0
		for _, l := range f.canon {
			if l == None {
				continue
			}
			if int(l) >= f.canonN || seen[l] {
				return fmt.Errorf("pg: canonical label %d out of range or duplicated (canonN %d)", l, f.canonN)
			}
			seen[l] = true
			n++
		}
		if n != f.canonN {
			return fmt.Errorf("pg: canonN %d != %d assigned canonical labels", f.canonN, n)
		}
	}
	for c := 0; c < f.T.NumClusters(); c++ {
		id := ClusterID(c)
		switch f.T.Cluster(id).Kind {
		case Regular:
			if got := bits.OnesCount64(f.inSrc[c]); got > f.T.MaxIn {
				return fmt.Errorf("pg: cluster %d has %d in-neighbors > MaxIn %d", c, got, f.T.MaxIn)
			}
			if f.T.MaxOut > 0 {
				if got := bits.OnesCount64(f.outDst[c]); got > f.T.MaxOut {
					return fmt.Errorf("pg: cluster %d has %d out-neighbors > MaxOut %d", c, got, f.T.MaxOut)
				}
			}
		case OutNode:
			if got := bits.OnesCount64(f.inSrc[c]); got > 1 {
				return fmt.Errorf("pg: output node %d has %d in-arcs (outNode_MaxIn)", c, got)
			}
		case InNode:
			if f.inSrc[c] != 0 {
				return fmt.Errorf("pg: input node %d has in-arcs", c)
			}
		}
	}
	var err error
	for n := 0; n < f.D.Len() && err == nil; n++ {
		c := f.assign[n]
		if c == None {
			continue
		}
		f.D.G.In(graph.NodeID(n), func(e graph.Edge) {
			if err != nil {
				return
			}
			if f.assign[e.From] == None && f.avail[e.From] == 0 {
				return
			}
			if !f.Available(e.From, c) {
				err = fmt.Errorf("pg: operand %d of instruction %d not available at cluster %d", e.From, n, c)
			}
		})
	}
	if err != nil {
		return err
	}
	// Output nodes must have received all their carried values once any
	// carrier is assigned.
	for _, o := range f.T.OutputNodes() {
		for _, v := range f.T.Cluster(o).Carries {
			if f.assign[v] != None && !f.Available(v, o) {
				return fmt.Errorf("pg: output node %d missing carried value %d", o, v)
			}
		}
	}
	return nil
}
