package pg

import (
	"fmt"

	"repro/internal/graph"
)

// flowError is the typed, lazily-formatted failure of the speculative
// mutation path (Assign and Route). The SEE evaluates thousands of
// infeasible candidates per solve and inspects only whether the error is
// nil, so construction must be free: the mutation path fills the flow's
// own scratch flowError (Flow.stateErr) instead of heap-allocating one
// per rejected candidate, and no formatting happens up front. The
// message — byte-identical to the fmt.Errorf text it replaced — is
// rendered only when some caller actually reads Error().
type flowError struct {
	code errCode
	n    graph.NodeID // the instruction or value involved
	c    ClusterID    // the cluster operand (meaning depends on code)
}

// stateErr fills the flow's scratch error and returns it. The result is
// valid until the next failing mutation on f: a Flow is owned by one
// goroutine at a time and the engines either abort on a propagated
// failure or discard it before the next speculative call, so the one
// scratch slot cannot be observed mid-overwrite. Callers that need to
// retain a failure across further mutations of the same flow must wrap
// it (fmt.Errorf renders the message eagerly) or copy the string.
func (f *Flow) stateErr(code errCode, n graph.NodeID, c ClusterID) error {
	f.errScratch = flowError{code: code, n: n, c: c}
	return &f.errScratch
}

type errCode uint8

const (
	errAssignSpecial errCode = iota // c: the special node targeted
	errAssignDup                    // c: the cluster n already lives on
	errAssignNoMem                  // c: the memory-less cluster
	errRouteUnavail                 // c: unused
	errRouteNoPath                  // c: the unreachable destination
)

func (e *flowError) Error() string {
	switch e.code {
	case errAssignSpecial:
		return fmt.Sprintf("pg: cannot assign instruction %d to special node %d", e.n, e.c)
	case errAssignDup:
		return fmt.Sprintf("pg: instruction %d already assigned to %d", e.n, e.c)
	case errAssignNoMem:
		return fmt.Sprintf("pg: memory instruction %d cannot run on cluster %d (no memory-capable CN)", e.n, e.c)
	case errRouteUnavail:
		return fmt.Sprintf("pg: value %d is nowhere available", e.n)
	case errRouteNoPath:
		return fmt.Sprintf("pg: no feasible path for value %d to cluster %d", e.n, e.c)
	default:
		return fmt.Sprintf("pg: flow error %d", e.code)
	}
}
