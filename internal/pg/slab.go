package pg

import (
	"math/bits"
	"sync"
)

// Slab recycling for retired Flows. The SEE solves hundreds of
// subproblems per compilation, and every solve warms up a private pool
// of a dozen-plus flows whose backing arrays — the packed word block
// (avail + arc bitsets), the copy log and the mutation journal —
// account for most of the bytes the whole flow allocates. Without
// recycling those arrays die with their solve and the GC has to turn
// them over continuously, which is pure overhead on the wall clock
// (and, at GOMAXPROCS above the core count, contends with the mutator
// for cores). Engines hand flows back through Flow.Release when a
// solve retires its pool; NewFlow and Clone draw from the slabs first.
//
// A slab is a set of explicit free lists bucketed by power-of-two
// capacity class: class c holds arrays with cap in [2^c, 2^(c+1)), so
// a get for n items pops from class ceil(log2 n) and is guaranteed a
// fit — the hierarchy interleaves solves of very different sizes, and
// a single-pool design would keep dropping arrays as too small for one
// caller that are exactly right for the next. sync.Pool is deliberately
// not used: the GC empties it on every cycle, so under exactly the
// allocation pressure the slabs exist to relieve, a sync.Pool-backed
// slab would keep losing its contents and re-feeding the GC. The free
// lists are capped per class instead, which bounds retention to the
// working set of the largest solve. Contents are NOT zeroed; callers
// either overwrite every element (Clone's bulk copies) or clear
// explicitly (NewFlow).
type slab[T any] struct {
	mu   sync.Mutex
	free [maxSlabClass + 1][][]T
}

// maxSlabClass bounds the bucketed capacity classes; larger arrays
// bypass the slab entirely (no subproblem remotely approaches 2^28
// elements of anything). slabKeep caps each class's free list.
const (
	maxSlabClass = 28
	slabKeep     = 64
)

// get returns a length-n array with arbitrary contents.
func (s *slab[T]) get(n int) []T {
	if n == 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n): every class-c array fits n
	if c > maxSlabClass {
		return make([]T, n)
	}
	s.mu.Lock()
	if l := s.free[c]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		s.free[c] = l[:len(l)-1]
		s.mu.Unlock()
		return b[:n]
	}
	s.mu.Unlock()
	return make([]T, n, 1<<c)
}

// put recycles b's backing array. b must not be used afterwards.
func (s *slab[T]) put(b []T) {
	c := bits.Len(uint(cap(b))) - 1 // floor(log2 cap): cap(b) >= 2^c
	if c < 0 || c > maxSlabClass {
		return
	}
	b = b[:0]
	s.mu.Lock()
	if len(s.free[c]) < slabKeep {
		s.free[c] = append(s.free[c], b)
	}
	s.mu.Unlock()
}

var (
	wordSlab slab[uint64]    // Flow.words: inSrc|outDst|avail|arcHas arena
	recSlab  slab[copyRec]   // Flow.copyLog
	undoSlab slab[undoEntry] // Flow.journal
	byteSlab slab[int8]      // Flow.assign, BFS prev/queue scratch
	i32Slab  slab[int32]     // Flow.cnt, BFS depth scratch
	cidSlab  slab[ClusterID] // Flow.canon, BFS path scratch
)

// shellSlab recycles the Flow structs themselves, so a warmed-up solve
// clones survivors without touching the heap at all.
var shellSlab struct {
	mu   sync.Mutex
	free []*Flow
}

// newShell returns a Flow struct with arbitrary old contents; every
// caller fully overwrites it with a composite literal.
func newShell() *Flow {
	shellSlab.mu.Lock()
	if l := shellSlab.free; len(l) > 0 {
		f := l[len(l)-1]
		l[len(l)-1] = nil
		shellSlab.free = l[:len(l)-1]
		shellSlab.mu.Unlock()
		return f
	}
	shellSlab.mu.Unlock()
	return new(Flow)
}

// Release returns the flow's backing arrays — and the struct itself —
// to the package slabs. The flow must not be used afterwards: the next
// NewFlow or Clone anywhere in the process may recycle it. Only the
// SEE engine calls it, on the flows of a retiring solve pool; result
// flows that escape to callers are never released.
func (f *Flow) Release() {
	if f.words != nil {
		wordSlab.put(f.words)
	}
	if f.copyLog != nil {
		recSlab.put(f.copyLog)
	}
	if f.journal != nil {
		undoSlab.put(f.journal)
	}
	if f.assign != nil {
		byteSlab.put(f.assign)
		byteSlab.put(f.bfsPrev)
		byteSlab.put(f.bfsQueue)
	}
	if f.cnt != nil {
		i32Slab.put(f.cnt)
		i32Slab.put(f.bfsDepth)
	}
	if f.canon != nil {
		cidSlab.put(f.canon)
		cidSlab.put(f.bfsPath)
	}
	*f = Flow{}
	shellSlab.mu.Lock()
	if len(shellSlab.free) < slabKeep {
		shellSlab.free = append(shellSlab.free, f)
	}
	shellSlab.mu.Unlock()
}
