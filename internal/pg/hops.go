package pg

// MaxHops bounds the length of routes findPath may materialize: 1 permits
// only direct arcs (the strict isAssignable of §3), larger values allow
// route-through copies via intermediate clusters, 0 means unlimited. The
// SEE uses this to implement the paper's two-phase behaviour: try direct
// assignment first, invoke the route allocator only on a no-candidate
// impasse. The exact engine toggles it around every speculative Assign,
// so it sits inside the branch-and-bound inner loop.
//
//hca:hotpath
func (f *Flow) SetMaxHops(h int) { f.maxHops = h }

// MaxHops returns the current route-length bound (0 = unlimited).
func (f *Flow) MaxHops() int { return f.maxHops }
