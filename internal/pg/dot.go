package pg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT dumps the flow's pattern graph in Graphviz DOT format: regular
// clusters as boxes labeled with their instruction and load counts,
// special input/output nodes as house shapes with their value lists, and
// real arcs labeled with the values they carry. Potential-only arcs are
// drawn dotted.
func (f *Flow) WriteDOT(w io.Writer) error {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, f.T.Name)
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=LR;\n", name); err != nil {
		return err
	}
	for c := 0; c < f.T.NumClusters(); c++ {
		cl := f.T.Cluster(ClusterID(c))
		switch cl.Kind {
		case Regular:
			fmt.Fprintf(w, "  c%d [shape=box, label=\"cluster %d\\n%d instr, load %d\"];\n",
				c, c, f.cnt[c*cntStride+cntInstr], f.Load(ClusterID(c)))
		case InNode:
			fmt.Fprintf(w, "  c%d [shape=house, label=\"in %d\\n%s\"];\n", c, c, valList(cl.Carries))
		case OutNode:
			fmt.Fprintf(w, "  c%d [shape=invhouse, label=\"out %d\\n%s\"];\n", c, c, valList(cl.Carries))
		}
	}
	drawn := map[int32]bool{}
	f.RealArcs(func(from, to ClusterID, vals []ValueID) {
		drawn[int32(from)<<arcShift|int32(to)] = true
		fmt.Fprintf(w, "  c%d -> c%d [label=%q];\n", from, to, valList(vals))
	})
	for a := 0; a < f.T.NumClusters(); a++ {
		for b := 0; b < f.T.NumClusters(); b++ {
			if a != b && f.T.Potential(ClusterID(a), ClusterID(b)) && !drawn[int32(a)<<arcShift|int32(b)] {
				fmt.Fprintf(w, "  c%d -> c%d [style=dotted, color=gray];\n", a, b)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func valList(vals []ValueID) string {
	if len(vals) == 0 {
		return ""
	}
	parts := make([]string, 0, len(vals))
	for _, v := range vals {
		parts = append(parts, fmt.Sprint(int(v)))
		if len(parts) == 8 && len(vals) > 8 {
			parts = append(parts, fmt.Sprintf("+%d", len(vals)-8))
			break
		}
	}
	return "v" + strings.Join(parts, ",")
}
