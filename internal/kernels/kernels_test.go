package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
)

// TestTable1Calibration asserts that every kernel reproduces the inputs of
// the paper's Table 1 exactly: instruction count, MIIRec and MIIRes on the
// 64-CN / 8-DMA-port DSPFabric.
func TestTable1Calibration(t *testing.T) {
	for _, k := range All() {
		d := k.Build()
		if err := d.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", k.Name, err)
			continue
		}
		if got := d.Len(); got != k.WantInstr {
			t.Errorf("%s: N_Instr = %d, want %d", k.Name, got, k.WantInstr)
		}
		if got := d.MIIRec(); got != k.WantMIIRec {
			t.Errorf("%s: MIIRec = %d, want %d", k.Name, got, k.WantMIIRec)
		}
		if got := d.MIIRes(PaperResources); got != k.WantMIIRes {
			t.Errorf("%s: MIIRes = %d, want %d", k.Name, got, k.WantMIIRes)
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("idcthor")
	if err != nil || k.Name != "idcthor" {
		t.Fatalf("ByName(idcthor) = %v, %v", k.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestFir2DimMatchesReference(t *testing.T) {
	d := Fir2Dim()
	rng := rand.New(rand.NewSource(1))
	mem := ddg.MapMemory{}
	want := ddg.MapMemory{}
	for r := 0; r < 3; r++ {
		for c := 0; c < FirCols+4; c++ {
			v := int64(rng.Intn(512) - 256)
			mem[int64(r)*FirStride+int64(c)] = v
			want[int64(r)*FirStride+int64(c)] = v
		}
	}
	const iters = 100 // crosses the column wrap at 64
	if _, err := d.Interpret(mem, iters); err != nil {
		t.Fatal(err)
	}
	Fir2DimRef(want, iters)
	compareMem(t, mem, want)
}

func TestFir2DimSaturates(t *testing.T) {
	d := Fir2Dim()
	mem := ddg.MapMemory{}
	for a := int64(0); a < 3*FirStride; a++ {
		mem[a] = 1 << 40 // force positive saturation
	}
	if _, err := d.Interpret(mem, 1); err != nil {
		t.Fatal(err)
	}
	if got := mem[FirOutBase]; got != 32767 {
		t.Errorf("saturated output = %d, want 32767", got)
	}
}

func TestIDCTRowRefDC(t *testing.T) {
	// A pure-DC row must decode to eight equal samples ~ dc/8 (with the
	// <<11 / >>8 / >>8 scaling of this fixed-point variant).
	row := []int64{64, 0, 0, 0, 0, 0, 0, 0}
	IDCTRowRef(row)
	for i := 1; i < 8; i++ {
		if row[i] != row[0] {
			t.Fatalf("DC row not flat: %v", row)
		}
	}
	if row[0] != (64<<11+128)>>8 {
		t.Errorf("DC value = %d, want %d", row[0], (64<<11+128)>>8)
	}
}

func TestIDCTHorMatchesReference(t *testing.T) {
	d := IDCTHor()
	rng := rand.New(rand.NewSource(2))
	mem := ddg.MapMemory{}
	want := ddg.MapMemory{}
	const rows = 8
	for i := int64(0); i < rows*8; i++ {
		v := int64(rng.Intn(2048) - 1024)
		mem[i] = v
		want[i] = v
	}
	if _, err := d.Interpret(mem, rows); err != nil {
		t.Fatal(err)
	}
	IDCTHorRef(want, rows)
	compareMem(t, mem, want)
}

func TestMPEG2InterMatchesReference(t *testing.T) {
	d := MPEG2Inter()
	rng := rand.New(rand.NewSource(3))
	mem := ddg.MapMemory{}
	want := ddg.MapMemory{}
	const iters = 32
	for i := int64(0); i < 4*iters+8; i++ {
		for _, base := range []int64{MpegPF, MpegPF + MpegStride, MpegPB} {
			v := int64(rng.Intn(256))
			mem[base+i] = v
			want[base+i] = v
		}
	}
	if _, err := d.Interpret(mem, iters); err != nil {
		t.Fatal(err)
	}
	MPEG2InterRef(want, iters)
	compareMem(t, mem, want)
}

func TestMPEG2InterOutputRange(t *testing.T) {
	d := MPEG2Inter()
	mem := ddg.MapMemory{}
	for i := int64(0); i < 64; i++ {
		mem[MpegPF+i] = 255
		mem[MpegPF+MpegStride+i] = 255
		mem[MpegPB+i] = 255
	}
	if _, err := d.Interpret(mem, 8); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 32; i++ {
		if v := mem[MpegPO+i]; v < 0 || v > 255 {
			t.Errorf("out[%d] = %d outside 0..255", i, v)
		}
	}
}

func TestH264DeblockMatchesReference(t *testing.T) {
	d := H264Deblock()
	rng := rand.New(rand.NewSource(4))
	mem := ddg.MapMemory{}
	want := ddg.MapMemory{}
	for line := int64(0); line < 3; line++ {
		for c := int64(0); c < H264Limit+8; c++ {
			v := int64(rng.Intn(256))
			mem[line*H264Stride+c] = v
			want[line*H264Stride+c] = v
		}
	}
	const iters = 80 // crosses the wrap at 512/8 = 64 iterations
	if _, err := d.Interpret(mem, iters); err != nil {
		t.Fatal(err)
	}
	H264DeblockRef(want, iters)
	compareMem(t, mem, want)
}

func TestH264DeblockFiltersSmoothEdge(t *testing.T) {
	// A small step across the edge must be filtered (conditions hold);
	// a huge step must be left untouched (|p0-q0| >= alpha).
	d := H264Deblock()
	mem := ddg.MapMemory{}
	smooth := [6]int64{100, 100, 100, 110, 110, 110}
	rough := [6]int64{0, 0, 0, 250, 250, 250}
	for i := int64(0); i < 6; i++ {
		mem[i] = smooth[i]             // line 0, first edge (columns 0..5)
		mem[H264Stride+i] = rough[i]   // line 1
		mem[2*H264Stride+i] = rough[i] // line 2
	}
	if _, err := d.Interpret(mem, 1); err != nil {
		t.Fatal(err)
	}
	if mem[2] == 100 && mem[3] == 110 {
		t.Error("smooth edge was not filtered")
	}
	for i := int64(0); i < 6; i++ {
		if mem[H264Stride+i] != rough[i] {
			t.Errorf("rough edge modified at %d: %d", i, mem[H264Stride+i])
		}
	}
}

func TestAllKernelsRecurrencesDocumented(t *testing.T) {
	// Each kernel's loop-carried structure is intentional; assert the
	// recurrence edge counts so accidental edits are caught.
	wantRec := map[string]int{
		"fir2dim":        2, // column walker + output pointer
		"idcthor":        0,
		"mpeg2inter":     3, // acc + two window-reuse edges
		"h264deblocking": 2, // edge walker + statistics counter
	}
	for _, k := range All() {
		s := k.Build().Stats()
		if s.Recurr != wantRec[k.Name] {
			t.Errorf("%s: %d loop-carried edges, want %d", k.Name, s.Recurr, wantRec[k.Name])
		}
	}
}

func TestSyntheticValidAndSized(t *testing.T) {
	for _, ops := range []int{16, 64, 128, 256, 512} {
		for seed := int64(0); seed < 3; seed++ {
			d := Synthetic(SynthConfig{Ops: ops, Seed: seed, RecLatency: 4})
			if err := d.Validate(); err != nil {
				t.Fatalf("ops=%d seed=%d: %v", ops, seed, err)
			}
			if d.Len() != ops {
				t.Errorf("ops=%d seed=%d: Len = %d", ops, seed, d.Len())
			}
			if got := d.MIIRec(); got != 4 {
				t.Errorf("ops=%d seed=%d: MIIRec = %d, want 4", ops, seed, got)
			}
		}
	}
}

func TestSyntheticNoRecurrence(t *testing.T) {
	d := Synthetic(SynthConfig{Ops: 100, Seed: 9})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 {
		t.Errorf("Len = %d", d.Len())
	}
	if got := d.MIIRec(); got != 1 {
		t.Errorf("MIIRec = %d, want 1", got)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SynthConfig{Ops: 200, Seed: 5, RecLatency: 3})
	b := Synthetic(SynthConfig{Ops: 200, Seed: 5, RecLatency: 3})
	if a.Len() != b.Len() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Op != b.Nodes[i].Op {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestSyntheticPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Ops < 16")
		}
	}()
	Synthetic(SynthConfig{Ops: 4})
}

func TestSyntheticExecutes(t *testing.T) {
	d := Synthetic(SynthConfig{Ops: 128, Seed: 11, RecLatency: 3})
	mem := ddg.MapMemory{}
	for i := int64(0); i < 256; i++ {
		mem[i] = i * 3
	}
	if _, err := d.Interpret(mem, 10); err != nil {
		t.Fatal(err)
	}
}

func compareMem(t *testing.T, got, want ddg.MapMemory) {
	t.Helper()
	for a, w := range want {
		if g := got[a]; g != w {
			t.Fatalf("mem[%d] = %d, want %d", a, g, w)
		}
	}
	for a, g := range got {
		if _, ok := want[a]; !ok && g != 0 {
			t.Fatalf("unexpected write at %d = %d", a, g)
		}
	}
}

func TestFFT8MatchesReference(t *testing.T) {
	d := FFT8()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	mem := ddg.MapMemory{}
	want := ddg.MapMemory{}
	const blocks = 6
	for i := int64(0); i < blocks*16; i++ {
		v := int64(rng.Intn(512) - 256)
		mem[i] = v
		want[i] = v
	}
	if _, err := d.Interpret(mem, blocks); err != nil {
		t.Fatal(err)
	}
	FFT8HorRef(want, blocks)
	compareMem(t, mem, want)
}

func TestFFT8DCInput(t *testing.T) {
	// A constant (DC) input has X[0..3] doubled-ish and X[4..7] zeroed for
	// the k=0 butterfly: x[k]+x[k+4], x[k]-x[k+4] with W0=1.
	blk := make([]int64, 16)
	for k := 0; k < 8; k++ {
		blk[2*k] = 100 // re
	}
	FFT8Ref(blk)
	if blk[0] != 200 || blk[8] != 0 {
		t.Errorf("butterfly k=0: got %d/%d, want 200/0", blk[0], blk[8])
	}
}

func TestSAD16MatchesReference(t *testing.T) {
	d := SAD16()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	mem := ddg.MapMemory{}
	want := ddg.MapMemory{}
	const iters = 10
	for i := int64(0); i < 16*iters; i++ {
		a, b := int64(rng.Intn(256)), int64(rng.Intn(256))
		mem[SadCur+i], want[SadCur+i] = a, a
		mem[SadRef+i], want[SadRef+i] = b, b
	}
	if _, err := d.Interpret(mem, iters); err != nil {
		t.Fatal(err)
	}
	SAD16Ref(want, iters)
	compareMem(t, mem, want)
}

func TestSAD16IdenticalBlocksZero(t *testing.T) {
	d := SAD16()
	mem := ddg.MapMemory{}
	for i := int64(0); i < 16; i++ {
		mem[SadCur+i] = 42
		mem[SadRef+i] = 42
	}
	if _, err := d.Interpret(mem, 1); err != nil {
		t.Fatal(err)
	}
	if got := mem[SadOut]; got != 0 {
		t.Errorf("SAD of identical rows = %d, want 0", got)
	}
}

func TestExtrasThroughFullHCA(t *testing.T) {
	// The extra kernels have no Table-1 targets but must still be valid
	// executable DDGs; the HCA integration runs in the core tests.
	for _, k := range Extras() {
		d := k.Build()
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		if d.MIIRec() != 1 {
			t.Errorf("%s: MIIRec = %d, want 1 (independent iterations)", k.Name, d.MIIRec())
		}
	}
}
