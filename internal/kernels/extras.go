package kernels

import (
	"repro/internal/ddg"
	"repro/internal/graph"
)

// Extras returns additional media kernels beyond the paper's four,
// used by the robustness and scaling experiments. They carry no Table-1
// calibration targets (the paper never measured them) but follow the
// same executable-DDG discipline: each has a scalar reference checked by
// tests.
func Extras() []Kernel {
	return []Kernel{
		{Name: "fft8", Build: FFT8},
		{Name: "sad16", Build: SAD16},
	}
}

// FFT8 builds one radix-2 decimation-in-time stage over 8 complex
// fixed-point samples (interleaved re/im), a classic butterfly network:
// X[k], X[k+4] = x[k] + W·x[k+4], x[k] − W·x[k+4]. Twiddle factors are
// Q8 fixed-point register constants. One iteration transforms one block
// in place; rows are independent (MIIRec 1).
func FFT8() *ddg.DDG {
	d := ddg.New("fft8")
	base := d.AddIV(0, 16, "blk") // 8 complex = 16 words per block

	addr := make([]graph.NodeID, 16)
	addr[0] = base
	for i := 1; i < 16; i++ {
		a := d.AddOpImm(ddg.OpAdd, "a", int64(i))
		d.AddDep(base, a, 0, 0)
		addr[i] = a
	}
	ld := make([]graph.NodeID, 16)
	for i := range ld {
		ld[i] = d.AddOp(ddg.OpLoad, "x")
		d.AddDep(addr[i], ld[i], 0, 0)
	}
	re := func(k int) graph.NodeID { return ld[2*k] }
	im := func(k int) graph.NodeID { return ld[2*k+1] }

	bin := func(op ddg.Op, a, b graph.NodeID) graph.NodeID {
		n := d.AddOp(op, "t")
		d.AddDep(a, n, 0, 0)
		d.AddDep(b, n, 1, 0)
		return n
	}
	imm := func(op ddg.Op, a graph.NodeID, v int64) graph.NodeID {
		n := d.AddOpImm(op, "ti", v)
		d.AddDep(a, n, 0, 0)
		return n
	}

	// Twiddles W_8^k = (cos, -sin) in Q8: k=0..3.
	wr := [4]int64{256, 181, 0, -181}
	wi := [4]int64{0, -181, -256, -181}
	outs := make([]graph.NodeID, 16)
	for k := 0; k < 4; k++ {
		// t = W * x[k+4]  (complex multiply, Q8)
		ar, ai := re(k+4), im(k+4)
		trA := imm(ddg.OpMul, ar, wr[k])
		trB := imm(ddg.OpMul, ai, wi[k])
		tr := imm(ddg.OpShr, bin(ddg.OpSub, trA, trB), 8)
		tiA := imm(ddg.OpMul, ar, wi[k])
		tiB := imm(ddg.OpMul, ai, wr[k])
		ti := imm(ddg.OpShr, bin(ddg.OpAdd, tiA, tiB), 8)
		// X[k] = x[k] + t ; X[k+4] = x[k] - t
		outs[2*k] = bin(ddg.OpAdd, re(k), tr)
		outs[2*k+1] = bin(ddg.OpAdd, im(k), ti)
		outs[2*(k+4)] = bin(ddg.OpSub, re(k), tr)
		outs[2*(k+4)+1] = bin(ddg.OpSub, im(k), ti)
	}
	for i := 0; i < 16; i++ {
		st := d.AddOp(ddg.OpStore, "st")
		d.AddDep(addr[i], st, 0, 0)
		d.AddDep(outs[i], st, 1, 0)
	}
	return d
}

// FFT8Ref applies the same fixed-point butterfly stage to one block.
func FFT8Ref(blk []int64) {
	wr := [4]int64{256, 181, 0, -181}
	wi := [4]int64{0, -181, -256, -181}
	var out [16]int64
	for k := 0; k < 4; k++ {
		ar, ai := blk[2*(k+4)], blk[2*(k+4)+1]
		tr := (ar*wr[k] - ai*wi[k]) >> 8
		ti := (ar*wi[k] + ai*wr[k]) >> 8
		out[2*k] = blk[2*k] + tr
		out[2*k+1] = blk[2*k+1] + ti
		out[2*(k+4)] = blk[2*k] - tr
		out[2*(k+4)+1] = blk[2*k+1] - ti
	}
	copy(blk, out[:])
}

// FFT8HorRef runs iters blocks against mem (block i at 16i..16i+15).
func FFT8HorRef(mem ddg.MapMemory, iters int) {
	for it := 0; it < iters; it++ {
		base := int64(16 * it)
		blk := make([]int64, 16)
		for i := range blk {
			blk[i] = mem.Load(base + int64(i))
		}
		FFT8Ref(blk)
		for i := range blk {
			mem.Store(base+int64(i), blk[i])
		}
	}
}

// SAD16 base addresses: current block at SadCur, reference at SadRef,
// output SAD values at SadOut.
const (
	SadCur = 0
	SadRef = 1 << 12
	SadOut = 1 << 16
)

// SAD16 builds the sum-of-absolute-differences kernel of motion
// estimation: each iteration compares one 16-pixel row of the current
// block with a candidate reference row and accumulates |c−r| into a
// per-iteration SAD written out for the cost comparison. This is the
// classic inner loop of every video encoder's block matcher.
func SAD16() *ddg.DDG {
	d := ddg.New("sad16")
	cur := d.AddIV(SadCur, 16, "cur")
	ref := d.AddIV(SadRef, 16, "ref")
	out := d.AddIV(SadOut, 1, "out")

	var terms []graph.NodeID
	for i := 0; i < 16; i++ {
		ca, ra := cur, ref
		if i > 0 {
			c := d.AddOpImm(ddg.OpAdd, "ca", int64(i))
			d.AddDep(cur, c, 0, 0)
			ca = c
			r := d.AddOpImm(ddg.OpAdd, "ra", int64(i))
			d.AddDep(ref, r, 0, 0)
			ra = r
		}
		lc := d.AddOp(ddg.OpLoad, "c")
		d.AddDep(ca, lc, 0, 0)
		lr := d.AddOp(ddg.OpLoad, "r")
		d.AddDep(ra, lr, 0, 0)
		df := d.AddOp(ddg.OpSub, "d")
		d.AddDep(lc, df, 0, 0)
		d.AddDep(lr, df, 1, 0)
		ab := d.AddOp(ddg.OpAbs, "ad")
		d.AddDep(df, ab, 0, 0)
		terms = append(terms, ab)
	}
	sad := reduceAdd(d, terms)
	st := d.AddOp(ddg.OpStore, "st")
	d.AddDep(out, st, 0, 0)
	d.AddDep(sad, st, 1, 0)
	return d
}

// SAD16Ref mirrors SAD16 for iters rows.
func SAD16Ref(mem ddg.MapMemory, iters int) {
	for it := 0; it < iters; it++ {
		sad := int64(0)
		for i := 0; i < 16; i++ {
			c := mem.Load(int64(SadCur + 16*it + i))
			r := mem.Load(int64(SadRef + 16*it + i))
			df := c - r
			if df < 0 {
				df = -df
			}
			sad += df
		}
		mem.Store(int64(SadOut+it), sad)
	}
}
