// Package kernels builds the Data Dependency Graphs of the four multimedia
// loop kernels the paper evaluates (§5, Table 1):
//
//	fir2dim         2-D FIR filter          (DSPstone)        57 instr
//	idcthor         8-pt IDCT row pass      (OpenDivx/mpeg2)  82 instr
//	mpeg2inter      MPEG-2 half-pel interp.                   79 instr
//	h264deblocking  H.264 row deblocking                     214 instr
//
// The paper obtained its DDGs from an STMicroelectronics internal compiler
// front-end that is not available; these builders reconstruct the loop
// bodies from the public reference algorithms and are calibrated so that
// the quantities Table 1 reports as *inputs* — instruction count, MIIRec
// and MIIRes — match the paper exactly (asserted by tests). Loop-carried
// recurrences (pointer wrap-around walkers, saturating statistics
// accumulators) realize the paper's MIIRec values and are documented at
// each builder.
//
// Every kernel is executable: ddg.Interpret runs the loop body against a
// ddg.Memory, and each builder has a scalar Go reference implementation
// the tests compare against, so the DDGs are known to compute the real
// algorithm, not just to have the right shape.
//
// The package also provides a parameterized synthetic DDG generator used
// by the scaling experiments (DESIGN.md E4).
package kernels

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
)

// Kernel couples a DDG builder with its Table 1 calibration targets.
type Kernel struct {
	Name string
	// Build constructs a fresh DDG of the kernel's loop body.
	Build func() *ddg.DDG
	// Table 1 calibration targets (inputs to HCA).
	WantInstr  int
	WantMIIRec int
	WantMIIRes int // on 64 issue slots, 8 DMA ports
	// PaperFinalMII is the Final MII column of Table 1, for reports.
	PaperFinalMII int
}

// All returns the four paper kernels in Table 1 order.
func All() []Kernel {
	return []Kernel{
		{Name: "fir2dim", Build: Fir2Dim, WantInstr: 57, WantMIIRec: 3, WantMIIRes: 2, PaperFinalMII: 3},
		{Name: "idcthor", Build: IDCTHor, WantInstr: 82, WantMIIRec: 1, WantMIIRes: 2, PaperFinalMII: 3},
		{Name: "mpeg2inter", Build: MPEG2Inter, WantInstr: 79, WantMIIRec: 6, WantMIIRes: 2, PaperFinalMII: 8},
		{Name: "h264deblocking", Build: H264Deblock, WantInstr: 214, WantMIIRec: 3, WantMIIRes: 4, PaperFinalMII: 6},
	}
}

// ByName returns the kernel with the given name, searching the paper's
// four kernels and the extras.
func ByName(name string) (Kernel, error) {
	all := append(All(), Extras()...)
	for _, k := range all {
		if k.Name == name {
			return k, nil
		}
	}
	var names []string
	for _, k := range all {
		names = append(names, k.Name)
	}
	sort.Strings(names)
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q (have %v)", name, names)
}

// PaperResources is the resource view of the full 64-CN DSPFabric with its
// 8-port DMA, the machine Table 1's MIIRes column refers to.
var PaperResources = ddg.Resources{IssueSlots: 64, DMAPorts: 8}
