package kernels

import (
	"repro/internal/ddg"
	"repro/internal/graph"
)

// Memory layout of the mpeg2inter kernel: forward reference rows at
// MpegPF/MpegPF+MpegStride, backward reference at MpegPB, output at MpegPO.
const (
	MpegPF     = 0
	MpegStride = 1 << 12
	MpegPB     = 2 << 12
	MpegPO     = 3 << 12
)

// MPEG2Inter builds the 79-instruction loop body of the MPEG-2
// bidirectional half-pel interpolation filter: each iteration produces
// four output pixels. The forward prediction is interpolated at half-pel
// offset in both dimensions, out(x) = (p[x]+p[x+1]+q[x]+q[x+1]+r)>>2 with
// q the next image row, then averaged with the backward prediction and
// saturated to 8 bits.
//
// The window pixels shared between consecutive iterations (p[x+4], q[x+4])
// are not reloaded: they flow through distance-1 loop-carried dependences
// from the previous iteration's rightmost loads, keeping the memory-op
// population at 16 (12 loads + 4 stores → MIIRes = 2).
//
// Calibration recurrence (MIIRec = 6): the rounding term r alternates via
// a saturating adaptive accumulator acc' = clip((5*(acc+3)+16)>>5, 0, 63),
// a distance-1 cycle of latency 1+2+1+1+1 = 6 through the two-cycle
// multiplier — this stands in for the serial adaptive-rounding state the
// paper's front-end kept in the loop (the paper reports MIIRec 6 but not
// the DDG itself; see DESIGN.md, calibration notes).
func MPEG2Inter() *ddg.DDG {
	d := ddg.New("mpeg2inter")

	// Pointers (5): pf walks the forward row, qf = pf+stride the next row,
	// pb the backward prediction, po the output.
	pf := d.AddIV(MpegPF, 4, "pf")
	strideC := d.AddConst(MpegStride, "stride")
	qf := d.AddOp(ddg.OpAdd, "qf")
	d.AddDep(pf, qf, 0, 0)
	d.AddDep(strideC, qf, 1, 0)
	pb := d.AddIV(MpegPB, 4, "pb")
	po := d.AddIV(MpegPO, 4, "po")

	chain := func(base graph.NodeID, name string, n int) []graph.NodeID {
		out := make([]graph.NodeID, n)
		for i := range out {
			a := d.AddOpImm(ddg.OpAdd, name, int64(i+1))
			d.AddDep(base, a, 0, 0)
			out[i] = a
		}
		return out
	}

	// Address chains (14) and loads (12).
	pfa := chain(pf, "pfa", 4)
	qfa := chain(qf, "qfa", 4)
	pba := chain(pb, "pba", 3)
	poa := chain(po, "poa", 3)

	loadAt := func(addr graph.NodeID, name string) graph.NodeID {
		l := d.AddOp(ddg.OpLoad, name)
		d.AddDep(addr, l, 0, 0)
		return l
	}
	lp := make([]graph.NodeID, 4) // p[x+1..x+4]
	lq := make([]graph.NodeID, 4) // q[x+1..x+4]
	lb := make([]graph.NodeID, 4) // b[x..x+3]
	for i := 0; i < 4; i++ {
		lp[i] = loadAt(pfa[i], "p")
		lq[i] = loadAt(qfa[i], "q")
	}
	lb[0] = loadAt(pb, "b")
	for i := 1; i < 4; i++ {
		lb[i] = loadAt(pba[i-1], "b")
	}

	// Adaptive rounding accumulator (5 ops + shared zero const).
	zero := d.AddConst(0, "zero")
	aa := d.AddOpImm(ddg.OpAdd, "acc_a", 3)
	mm := d.AddOpImm(ddg.OpMul, "acc_m", 5)
	ab := d.AddOpImm(ddg.OpAdd, "acc_b", 16)
	sh := d.AddOpImm(ddg.OpShr, "acc_s", 5)
	acc := d.AddOpImm(ddg.OpClip, "acc", 63)
	d.AddDep(acc, aa, 0, 1) // distance-1: previous iteration's acc
	d.AddDep(aa, mm, 0, 0)
	d.AddDep(mm, ab, 0, 0)
	d.AddDep(ab, sh, 0, 0)
	d.AddDep(sh, acc, 0, 0)
	d.AddDep(zero, acc, 1, 0)

	// Rounding value for pixel 0: radj = (acc & 1) + 2 ∈ {2,3} (2 ops).
	rsel := d.AddOpImm(ddg.OpAnd, "rsel", 1)
	d.AddDep(acc, rsel, 0, 0)
	radj := d.AddOpImm(ddg.OpAdd, "radj", 2)
	d.AddDep(rsel, radj, 0, 0)

	// Four interpolated pixels (20). Pixel i averages p[x+i], p[x+i+1],
	// q[x+i], q[x+i+1]; the i=0 window edge comes from the previous
	// iteration's rightmost loads via distance-1 dependences.
	bin := func(op ddg.Op, name string, a, b graph.NodeID, distA int) graph.NodeID {
		n := d.AddOp(op, name)
		d.AddDep(a, n, 0, distA)
		d.AddDep(b, n, 1, 0)
		return n
	}
	interp := make([]graph.NodeID, 4)
	for i := 0; i < 4; i++ {
		var s1, s2 graph.NodeID
		if i == 0 {
			s1 = bin(ddg.OpAdd, "s1", lp[3], lp[0], 1) // p[x] = prev p[x+4]
			s2 = bin(ddg.OpAdd, "s2", lq[3], lq[0], 1)
		} else {
			s1 = bin(ddg.OpAdd, "s1", lp[i-1], lp[i], 0)
			s2 = bin(ddg.OpAdd, "s2", lq[i-1], lq[i], 0)
		}
		s3 := bin(ddg.OpAdd, "s3", s1, s2, 0)
		var s4 graph.NodeID
		if i == 0 {
			s4 = bin(ddg.OpAdd, "s4", s3, radj, 0)
		} else {
			s4 = d.AddOpImm(ddg.OpAdd, "s4", 2)
			d.AddDep(s3, s4, 0, 0)
		}
		h := d.AddOpImm(ddg.OpShr, "h", 2)
		d.AddDep(s4, h, 0, 0)
		interp[i] = h
	}

	// Bidirectional averaging and saturation (16), then the stores (4).
	outAddr := []graph.NodeID{po, poa[0], poa[1], poa[2]}
	for i := 0; i < 4; i++ {
		b := bin(ddg.OpAdd, "bi", interp[i], lb[i], 0)
		br := d.AddOpImm(ddg.OpAdd, "br", 1)
		d.AddDep(b, br, 0, 0)
		bs := d.AddOpImm(ddg.OpShr, "bs", 1)
		d.AddDep(br, bs, 0, 0)
		bc := d.AddOpImm(ddg.OpClip, "bc", 255)
		d.AddDep(bs, bc, 0, 0)
		d.AddDep(zero, bc, 1, 0)
		st := d.AddOp(ddg.OpStore, "st")
		d.AddDep(outAddr[i], st, 0, 0)
		d.AddDep(bc, st, 1, 0)
	}

	return d
}

// MPEG2InterRef mirrors the DDG semantics: iters iterations of the
// four-pixel bidirectional interpolation, including the distance-1 window
// reuse (iteration 0 sees zeros for p[x], q[x]) and the adaptive rounding
// accumulator (initial value 0).
func MPEG2InterRef(mem ddg.MapMemory, iters int) {
	acc := int64(0)
	prevP4, prevQ4 := int64(0), int64(0)
	for it := 0; it < iters; it++ {
		pf := int64(MpegPF + 4*it)
		qf := pf + MpegStride
		pb := int64(MpegPB + 4*it)
		po := int64(MpegPO + 4*it)

		// acc update uses the previous iteration's value.
		na := (5*(acc+3) + 16) >> 5
		if na < 0 {
			na = 0
		}
		if na > 63 {
			na = 63
		}
		acc = na
		radj := (acc & 1) + 2

		var p [5]int64
		var q [5]int64
		p[0], q[0] = prevP4, prevQ4
		for i := 1; i <= 4; i++ {
			p[i] = mem.Load(pf + int64(i))
			q[i] = mem.Load(qf + int64(i))
		}
		prevP4, prevQ4 = p[4], q[4]

		for i := 0; i < 4; i++ {
			r := int64(2)
			if i == 0 {
				r = radj
			}
			h := (p[i] + p[i+1] + q[i] + q[i+1] + r) >> 2
			b := mem.Load(pb + int64(i))
			v := (h + b + 1) >> 1
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			mem.Store(po+int64(i), v)
		}
	}
}
