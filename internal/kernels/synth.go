package kernels

import (
	"fmt"
	"math/rand"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// SynthConfig parameterizes the synthetic workload generator used by the
// scaling experiments (DESIGN.md E4): a layered dataflow DAG shaped like a
// media kernel (loads at the top, a body of ALU/MUL ops, stores at the
// bottom), with an optional wrap-around-walker recurrence that pins MIIRec.
type SynthConfig struct {
	Ops        int     // total instruction budget (>= 16)
	Layers     int     // dataflow depth of the body (default 6)
	MemFrac    float64 // fraction of ops that are loads/stores (default 0.15)
	MulFrac    float64 // fraction of body ops that are multiplies (default 0.2)
	RecLatency int     // latency of the recurrence cycle (0 → no recurrence)
	Seed       int64
}

// Synthetic generates a random but well-formed loop-body DDG matching cfg.
// The result always passes Validate; Ops is hit exactly.
func Synthetic(cfg SynthConfig) *ddg.DDG {
	if cfg.Ops < 16 {
		panic(fmt.Sprintf("kernels: Synthetic: Ops = %d too small (need >= 16)", cfg.Ops))
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 6
	}
	if cfg.MemFrac <= 0 {
		cfg.MemFrac = 0.15
	}
	if cfg.MulFrac <= 0 {
		cfg.MulFrac = 0.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := ddg.New(fmt.Sprintf("synth-%d-%d", cfg.Ops, cfg.Seed))

	budget := cfg.Ops

	// Recurrence walker (4 ops): same shape as fir2dim's column walker,
	// with a latency-padded select to hit RecLatency.
	var walker graph.NodeID
	if cfg.RecLatency > 0 {
		if cfg.RecLatency < 3 {
			cfg.RecLatency = 3
		}
		zero := d.AddConst(0, "zero")
		nb := d.AddOpImm(ddg.OpAdd, "nb", 1)
		w := d.AddOpLatency(ddg.OpCmpLT, "w", cfg.RecLatency-2)
		sel := d.AddOp(ddg.OpSelect, "walker")
		limC := d.AddConst(1<<16, "lim")
		d.AddDep(sel, nb, 0, 1)
		d.AddDep(nb, w, 0, 0)
		d.AddDep(limC, w, 1, 0)
		d.AddDep(w, sel, 0, 0)
		d.AddDep(nb, sel, 1, 0)
		d.AddDep(zero, sel, 2, 0)
		walker = sel
		budget -= 5
	} else {
		walker = d.AddIV(0, 1, "iv")
		budget -= 1
	}

	memOps := int(float64(cfg.Ops) * cfg.MemFrac)
	if memOps < 2 {
		memOps = 2
	}
	stores := memOps / 3
	if stores < 1 {
		stores = 1
	}
	loads := memOps - stores

	// Load front: each load at walker + k (one addi per load except the first).
	lds := make([]graph.NodeID, 0, loads)
	for i := 0; i < loads && budget > 1; i++ {
		addr := walker
		if i > 0 {
			a := d.AddOpImm(ddg.OpAdd, "a", int64(i))
			d.AddDep(walker, a, 0, 0)
			addr = a
			budget--
		}
		l := d.AddOp(ddg.OpLoad, "ld")
		d.AddDep(addr, l, 0, 0)
		lds = append(lds, l)
		budget--
	}

	// Body: layered random binary ops; each layer draws operands from the
	// previous two layers. Reserve budget for the store tail: each store
	// needs an address node and the store itself, plus a distinct-value op
	// for every store after the first.
	tail := 3*stores - 1
	prev := append([]graph.NodeID(nil), lds...)
	all := append([]graph.NodeID(nil), lds...)
	binOps := []ddg.Op{ddg.OpAdd, ddg.OpSub, ddg.OpMin, ddg.OpMax, ddg.OpAnd, ddg.OpOr, ddg.OpXor}
	for layer := 0; budget > tail; layer++ {
		width := (budget - tail) / cfg.Layers
		if width < 1 {
			width = 1
		}
		var cur []graph.NodeID
		for i := 0; i < width && budget > tail; i++ {
			op := binOps[rng.Intn(len(binOps))]
			if rng.Float64() < cfg.MulFrac {
				op = ddg.OpMul
			}
			n := d.AddOp(op, "op")
			a := all[rng.Intn(len(all))]
			b := all[rng.Intn(len(all))]
			d.AddDep(a, n, 0, 0)
			d.AddDep(b, n, 1, 0)
			cur = append(cur, n)
			all = append(all, n)
			budget--
		}
		if len(cur) > 0 {
			prev = cur
		}
	}

	// Store tail: reduce the last layer into each store's value.
	res := prev[rng.Intn(len(prev))]
	for i := 0; i < stores; i++ {
		a := d.AddOpImm(ddg.OpAdd, "sa", int64(1<<20+i))
		d.AddDep(walker, a, 0, 0)
		v := res
		if i > 0 {
			m := d.AddOpImm(ddg.OpXor, "sv", int64(i))
			d.AddDep(res, m, 0, 0)
			v = m
		}
		st := d.AddOp(ddg.OpStore, "st")
		d.AddDep(a, st, 0, 0)
		d.AddDep(v, st, 1, 0)
		budget -= 2
		if i > 0 {
			budget--
		}
	}

	// Spend any leftover budget on chained identity-ish ops off the result
	// (rounding/saturation padding, as fixed-point codes accumulate).
	for budget > 0 {
		n := d.AddOpImm(ddg.OpAdd, "pad", 0)
		d.AddDep(res, n, 0, 0)
		res = n
		budget--
	}
	return d
}
