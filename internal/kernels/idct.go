package kernels

import (
	"repro/internal/ddg"
	"repro/internal/graph"
)

// Fixed-point DCT coefficients (2048*sqrt(2)*cos(k*pi/16)), the constants
// of the classic Wang/LLM row IDCT used by mpeg2decode and OpenDivx.
const (
	idctW1 = 2841
	idctW2 = 2676
	idctW3 = 2408
	idctW5 = 1609
	idctW6 = 1108
	idctW7 = 565
)

// IDCTHor builds the 82-instruction loop body of the horizontal (row)
// pass of the 8x8 inverse DCT, one 8-coefficient row per iteration,
// transformed in place. The dataflow is the classic four-stage LLM
// butterfly network; the three coefficients that multiply *sums* of inputs
// (W7, W3, W6) are register-held constants while the remaining multiplies
// use immediate forms, matching how a VLIW front-end would allocate them.
//
// Calibration: 82 instructions, 16 memory ops (8 loads + 8 in-place
// stores → MIIRes = max(ceil(82/64), ceil(16/8)) = 2), and no loop-carried
// dependence (rows are independent → MIIRec = 1).
func IDCTHor() *ddg.DDG {
	d := ddg.New("idcthor")

	// Row base pointer and the seven remaining element addresses (1+7).
	base := d.AddIV(0, 8, "row")
	addr := make([]graph.NodeID, 8)
	addr[0] = base
	for i := 1; i < 8; i++ {
		a := d.AddOpImm(ddg.OpAdd, "addr", int64(i))
		d.AddDep(base, a, 0, 0)
		addr[i] = a
	}

	// Eight coefficient loads (8).
	ld := make([]graph.NodeID, 8)
	for i := 0; i < 8; i++ {
		ld[i] = d.AddOp(ddg.OpLoad, "blk")
		d.AddDep(addr[i], ld[i], 0, 0)
	}

	// Register-held coefficients (3).
	w7c := d.AddConst(idctW7, "W7")
	w3c := d.AddConst(idctW3, "W3")
	w6c := d.AddConst(idctW6, "W6")

	bin := func(op ddg.Op, name string, a, b graph.NodeID) graph.NodeID {
		n := d.AddOp(op, name)
		d.AddDep(a, n, 0, 0)
		d.AddDep(b, n, 1, 0)
		return n
	}
	imm := func(op ddg.Op, name string, a graph.NodeID, v int64) graph.NodeID {
		n := d.AddOpImm(op, name, v)
		d.AddDep(a, n, 0, 0)
		return n
	}

	// Input staging (3): x0 = (blk0<<11)+128, x1 = blk4<<11.
	x0a := imm(ddg.OpShl, "x0a", ld[0], 11)
	x0 := imm(ddg.OpAdd, "x0", x0a, 128)
	x1 := imm(ddg.OpShl, "x1", ld[4], 11)
	x2, x3, x4, x5, x6, x7 := ld[6], ld[2], ld[1], ld[7], ld[5], ld[3]

	// First stage (12): odd-part rotations.
	t0 := bin(ddg.OpAdd, "t0", x4, x5)
	x8 := bin(ddg.OpMul, "x8", w7c, t0)
	u1 := imm(ddg.OpMul, "u1", x4, idctW1-idctW7)
	x4 = bin(ddg.OpAdd, "x4b", x8, u1)
	u2 := imm(ddg.OpMul, "u2", x5, idctW1+idctW7)
	x5 = bin(ddg.OpSub, "x5b", x8, u2)
	t1 := bin(ddg.OpAdd, "t1", x6, x7)
	x8b := bin(ddg.OpMul, "x8b", w3c, t1)
	v1 := imm(ddg.OpMul, "v1", x6, idctW3-idctW5)
	x6 = bin(ddg.OpSub, "x6b", x8b, v1)
	v2 := imm(ddg.OpMul, "v2", x7, idctW3+idctW5)
	x7 = bin(ddg.OpSub, "x7b", x8b, v2)

	// Second stage (12).
	x8c := bin(ddg.OpAdd, "x8c", x0, x1)
	x0 = bin(ddg.OpSub, "x0b", x0, x1)
	t2 := bin(ddg.OpAdd, "t2", x3, x2)
	x1 = bin(ddg.OpMul, "x1b", w6c, t2)
	w1n := imm(ddg.OpMul, "w1n", x2, idctW2+idctW6)
	x2 = bin(ddg.OpSub, "x2b", x1, w1n)
	w2n := imm(ddg.OpMul, "w2n", x3, idctW2-idctW6)
	x3 = bin(ddg.OpAdd, "x3b", x1, w2n)
	x1 = bin(ddg.OpAdd, "x1c", x4, x6)
	x4 = bin(ddg.OpSub, "x4c", x4, x6)
	x6 = bin(ddg.OpAdd, "x6c", x5, x7)
	x5 = bin(ddg.OpSub, "x5c", x5, x7)

	// Third stage (12).
	x7 = bin(ddg.OpAdd, "x7c", x8c, x3)
	x8d := bin(ddg.OpSub, "x8d", x8c, x3)
	x3 = bin(ddg.OpAdd, "x3c", x0, x2)
	x0 = bin(ddg.OpSub, "x0c", x0, x2)
	t4 := bin(ddg.OpAdd, "t4", x4, x5)
	t5 := imm(ddg.OpMul, "t5", t4, 181)
	t6 := imm(ddg.OpAdd, "t6", t5, 128)
	x2 = imm(ddg.OpShr, "x2c", t6, 8)
	t7 := bin(ddg.OpSub, "t7", x4, x5)
	t8 := imm(ddg.OpMul, "t8", t7, 181)
	t9 := imm(ddg.OpAdd, "t9", t8, 128)
	x4 = imm(ddg.OpShr, "x4d", t9, 8)

	// Fourth stage (16): eight outputs, each add/sub then >>8.
	outs := [8]graph.NodeID{
		bin(ddg.OpAdd, "o0", x7, x1),
		bin(ddg.OpAdd, "o1", x3, x2),
		bin(ddg.OpAdd, "o2", x0, x4),
		bin(ddg.OpAdd, "o3", x8d, x6),
		bin(ddg.OpSub, "o4", x8d, x6),
		bin(ddg.OpSub, "o5", x0, x4),
		bin(ddg.OpSub, "o6", x3, x2),
		bin(ddg.OpSub, "o7", x7, x1),
	}
	for i := range outs {
		outs[i] = imm(ddg.OpShr, "res", outs[i], 8)
	}

	// Eight in-place stores (8). Every output depends on all eight loads
	// (the butterfly is dense), so in-place writes cannot race the reads
	// under any topological order.
	for i := 0; i < 8; i++ {
		st := d.AddOp(ddg.OpStore, "st")
		d.AddDep(addr[i], st, 0, 0)
		d.AddDep(outs[i], st, 1, 0)
	}

	return d
}

// IDCTRowRef applies the same fixed-point row IDCT to an 8-element slice,
// the scalar reference the DDG is checked against.
func IDCTRowRef(blk []int64) {
	x0 := (blk[0] << 11) + 128
	x1 := blk[4] << 11
	x2, x3, x4, x5, x6, x7 := blk[6], blk[2], blk[1], blk[7], blk[5], blk[3]

	x8 := idctW7 * (x4 + x5)
	x4, x5 = x8+(idctW1-idctW7)*x4, x8-(idctW1+idctW7)*x5
	x8 = idctW3 * (x6 + x7)
	x6, x7 = x8-(idctW3-idctW5)*x6, x8-(idctW3+idctW5)*x7

	x8 = x0 + x1
	x0 = x0 - x1
	x1 = idctW6 * (x3 + x2)
	x2, x3 = x1-(idctW2+idctW6)*x2, x1+(idctW2-idctW6)*x3
	x1 = x4 + x6
	x4 = x4 - x6
	x6 = x5 + x7
	x5 = x5 - x7

	x7 = x8 + x3
	x8 = x8 - x3
	x3 = x0 + x2
	x0 = x0 - x2
	x2 = (181*(x4+x5) + 128) >> 8
	x4 = (181*(x4-x5) + 128) >> 8

	blk[0] = (x7 + x1) >> 8
	blk[1] = (x3 + x2) >> 8
	blk[2] = (x0 + x4) >> 8
	blk[3] = (x8 + x6) >> 8
	blk[4] = (x8 - x6) >> 8
	blk[5] = (x0 - x4) >> 8
	blk[6] = (x3 - x2) >> 8
	blk[7] = (x7 - x1) >> 8
}

// IDCTHorRef runs iters row transforms against mem, mirroring the DDG's
// addressing (row i at addresses 8i..8i+7, in place).
func IDCTHorRef(mem ddg.MapMemory, iters int) {
	for it := 0; it < iters; it++ {
		base := int64(it * 8)
		row := make([]int64, 8)
		for i := range row {
			row[i] = mem.Load(base + int64(i))
		}
		IDCTRowRef(row)
		for i := range row {
			mem.Store(base+int64(i), row[i])
		}
	}
}
