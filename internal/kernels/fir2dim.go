package kernels

import (
	"repro/internal/ddg"
	"repro/internal/graph"
)

// Parameters of the fir2dim kernel: a 3x3 FIR over an image with
// FirCols-pixel rows, fixed-point coefficients scaled by 1<<FirShift.
const (
	FirCols    = 64      // column wrap-around limit of the input walker
	FirStride  = 256     // distance between image rows (words)
	FirRound   = 1 << 5  // rounding term added before the shift
	FirShift   = 6       // fixed-point downscale
	FirOutBase = 1 << 20 // output region base address
)

// FirCoeff is the 3x3 fixed-point coefficient mask (a smoothing kernel).
var FirCoeff = [9]int64{1, 2, 1, 2, 4, 2, 1, 2, 1}

// Fir2Dim builds the 57-instruction loop body of the DSPstone 2-D FIR
// filter: each iteration loads a 3x3 pixel window, convolves it with a
// register-held coefficient mask, rounds, downshifts, saturates to int16
// and stores one output pixel.
//
// Recurrence structure (calibration: MIIRec = 3): the input column pointer
// is a wrap-around walker base' = (base+1 < FirCols) ? base+1 : 0, a
// 3-op cycle (add, cmplt, select) at distance 1. The output pointer is a
// plain 1-op self-increment.
func Fir2Dim() *ddg.DDG {
	d := ddg.New("fir2dim")

	// Shared constants (3).
	zero := d.AddConst(0, "zero")
	cols := d.AddConst(FirCols, "cols")
	stride := d.AddConst(FirStride, "stride")

	// Column walker recurrence (3 ops): sel = (sel@-1 + 1 < cols) ? sel@-1+1 : 0.
	nb := d.AddOpImm(ddg.OpAdd, "nb", 1)
	w := d.AddOp(ddg.OpCmpLT, "w")
	sel := d.AddOp(ddg.OpSelect, "base")
	d.AddDep(sel, nb, 0, 1) // loop-carried: previous iteration's base
	d.AddDep(nb, w, 0, 0)
	d.AddDep(cols, w, 1, 0)
	d.AddDep(w, sel, 0, 0)
	d.AddDep(nb, sel, 1, 0)
	d.AddDep(zero, sel, 2, 0)
	d.SetInit(sel, 0)

	// Row base pointers (2): r1 = base+stride, r2 = r1+stride.
	r1 := d.AddOp(ddg.OpAdd, "r1")
	d.AddDep(sel, r1, 0, 0)
	d.AddDep(stride, r1, 1, 0)
	r2 := d.AddOp(ddg.OpAdd, "r2")
	d.AddDep(r1, r2, 0, 0)
	d.AddDep(stride, r2, 1, 0)

	// Column addresses within each row (6) and the nine loads (9).
	rows := [3]graph.NodeID{sel, r1, r2}
	var loads [9]graph.NodeID
	for r := 0; r < 3; r++ {
		addr := rows[r]
		for c := 0; c < 3; c++ {
			if c > 0 {
				a := d.AddOpImm(ddg.OpAdd, "addr", int64(c))
				d.AddDep(rows[r], a, 0, 0)
				addr = a
			}
			ld := d.AddOp(ddg.OpLoad, "px")
			d.AddDep(addr, ld, 0, 0)
			loads[3*r+c] = ld
		}
	}

	// Register-held coefficients (9) and the products (9).
	var prods [9]graph.NodeID
	for k := 0; k < 9; k++ {
		c := d.AddConst(FirCoeff[k], "coef")
		m := d.AddOp(ddg.OpMul, "prod")
		d.AddDep(loads[k], m, 0, 0)
		d.AddDep(c, m, 1, 0)
		prods[k] = m
	}

	// Reduction tree (8 adds).
	sum := reduceAdd(d, prods[:])

	// Rounding, downshift, saturation (2 + 2 + 2 incl. their constants).
	roundC := d.AddConst(FirRound, "round")
	radd := d.AddOp(ddg.OpAdd, "radd")
	d.AddDep(sum, radd, 0, 0)
	d.AddDep(roundC, radd, 1, 0)
	shiftC := d.AddConst(FirShift, "shamt")
	shr := d.AddOp(ddg.OpShr, "shr")
	d.AddDep(radd, shr, 0, 0)
	d.AddDep(shiftC, shr, 1, 0)
	lo := d.AddConst(-32768, "lo")
	clip := d.AddOpImm(ddg.OpClip, "sat", 32767)
	d.AddDep(shr, clip, 0, 0)
	d.AddDep(lo, clip, 1, 0)

	// Output pointer self-increment (1) and the store (1).
	outp := d.AddOpImm(ddg.OpAdd, "outp", 1)
	d.AddDep(outp, outp, 0, 1)
	d.SetInit(outp, FirOutBase-1)
	st := d.AddOp(ddg.OpStore, "st")
	d.AddDep(outp, st, 0, 0)
	d.AddDep(clip, st, 1, 0)

	return d
}

// reduceAdd sums vals with a balanced tree of OpAdd nodes, returning the
// root. len(vals) >= 1; it emits len(vals)-1 adds.
func reduceAdd(d *ddg.DDG, vals []graph.NodeID) graph.NodeID {
	for len(vals) > 1 {
		var next []graph.NodeID
		for i := 0; i+1 < len(vals); i += 2 {
			a := d.AddOp(ddg.OpAdd, "sum")
			d.AddDep(vals[i], a, 0, 0)
			d.AddDep(vals[i+1], a, 1, 0)
			next = append(next, a)
		}
		if len(vals)%2 == 1 {
			next = append(next, vals[len(vals)-1])
		}
		vals = next
	}
	return vals[0]
}

// Fir2DimRef computes the expected memory contents after iters iterations
// of the fir2dim loop against a copy of the initial memory image. It
// mirrors the DDG semantics exactly, including the column-walker wrap and
// the output-pointer initialization.
func Fir2DimRef(mem ddg.MapMemory, iters int) {
	base := int64(0) // walker value from the previous iteration
	outp := int64(FirOutBase - 1)
	for it := 0; it < iters; it++ {
		nb := base + 1
		if nb < FirCols {
			base = nb
		} else {
			base = 0
		}
		sum := int64(FirRound)
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				px := mem.Load(base + int64(r)*FirStride + int64(c))
				sum += px * FirCoeff[3*r+c]
			}
		}
		v := sum >> FirShift
		if v < -32768 {
			v = -32768
		}
		if v > 32767 {
			v = 32767
		}
		outp++
		mem.Store(outp, v)
	}
}
