package kernels

import (
	"repro/internal/ddg"
	"repro/internal/graph"
)

// Parameters of the h264deblocking kernel: three 6-pixel edge lines are
// filtered per iteration; lines are H264Stride words apart; the edge
// walker advances 8 columns and wraps at H264Limit.
const (
	H264Alpha  = 40
	H264Beta   = 30
	H264Tc0    = 4
	H264Stride = 1 << 12
	H264Limit  = 512
)

// H264Deblock builds the 214-instruction loop body of the H.264 luma row
// deblocking filter (normal filter, bS < 4): each iteration filters the
// p2..q2 neighborhood of three edge lines in place, following the
// standard's clause 8.7.2.3 arithmetic — boundary-strength conditions on
// |p0-q0|, |p1-p0|, |q1-q0|, the ap/aq interior-activity tests that both
// gate the p1/q1 taps and extend tc, the Δ clamp, and the p1/q1
// second-tap updates (which per the standard are not re-saturated).
//
// Calibration (Table 1: 214 instr, MIIRec 3, MIIRes 4): 30 memory ops
// (18 loads + 12 stores → DMA bound ceil(30/8) = 4, equal to the issue
// bound ceil(214/64) = 4); the edge-column walker is the same 3-op
// wrap-around recurrence as fir2dim's (MIIRec 3), and a saturating
// filtered-edge counter adds a shorter latency-2 cycle.
func H264Deblock() *ddg.DDG {
	d := ddg.New("h264deblocking")

	// Shared constants (5).
	zero := d.AddConst(0, "zero")
	alphaC := d.AddConst(H264Alpha, "alpha")
	betaC := d.AddConst(H264Beta, "beta")
	tcC := d.AddConst(H264Tc0, "tc0")
	negtc := d.AddOp(ddg.OpNeg, "ntc0")
	d.AddDep(tcC, negtc, 0, 0)

	// Edge walker recurrence (3 ops + limit const): sel = (sel@-1+8 < lim) ? sel@-1+8 : 0.
	limC := d.AddConst(H264Limit, "lim")
	nb := d.AddOpImm(ddg.OpAdd, "nb", 8)
	w := d.AddOp(ddg.OpCmpLT, "w")
	sel := d.AddOp(ddg.OpSelect, "edge")
	d.AddDep(sel, nb, 0, 1)
	d.AddDep(nb, w, 0, 0)
	d.AddDep(limC, w, 1, 0)
	d.AddDep(w, sel, 0, 0)
	d.AddDep(nb, sel, 1, 0)
	d.AddDep(zero, sel, 2, 0)
	d.SetInit(sel, -8) // first iteration filters column 0

	// Line base pointers (3): the three edge lines, stride apart.
	strideC := d.AddConst(H264Stride, "stride")
	l1 := d.AddOp(ddg.OpAdd, "l1")
	d.AddDep(sel, l1, 0, 0)
	d.AddDep(strideC, l1, 1, 0)
	l2 := d.AddOp(ddg.OpAdd, "l2")
	d.AddDep(l1, l2, 0, 0)
	d.AddDep(strideC, l2, 1, 0)

	bin := func(op ddg.Op, name string, a, b graph.NodeID) graph.NodeID {
		n := d.AddOp(op, name)
		d.AddDep(a, n, 0, 0)
		d.AddDep(b, n, 1, 0)
		return n
	}
	un := func(op ddg.Op, name string, a graph.NodeID) graph.NodeID {
		n := d.AddOp(op, name)
		d.AddDep(a, n, 0, 0)
		return n
	}
	imm := func(op ddg.Op, name string, a graph.NodeID, v int64) graph.NodeID {
		n := d.AddOpImm(op, name, v)
		d.AddDep(a, n, 0, 0)
		return n
	}
	clip3 := func(name string, x, lo, hi graph.NodeID) graph.NodeID {
		n := d.AddOp(ddg.OpClip, name)
		d.AddDep(x, n, 0, 0)
		d.AddDep(lo, n, 1, 0)
		d.AddDep(hi, n, 2, 0)
		return n
	}
	clip255 := func(name string, x graph.NodeID) graph.NodeID {
		n := d.AddOpImm(ddg.OpClip, name, 255)
		d.AddDep(x, n, 0, 0)
		d.AddDep(zero, n, 1, 0)
		return n
	}

	// filterLine emits the 66 per-line nodes and returns the line's
	// filterSamplesFlag for the statistics counter.
	filterLine := func(base graph.NodeID) graph.NodeID {
		// Addresses (5) and loads (6): p2 p1 p0 | q0 q1 q2.
		addr := [6]graph.NodeID{base}
		for i := 1; i < 6; i++ {
			addr[i] = imm(ddg.OpAdd, "a", base, int64(i))
		}
		var px [6]graph.NodeID
		for i := range px {
			px[i] = un(ddg.OpLoad, [6]string{"p2", "p1", "p0", "q0", "q1", "q2"}[i], addr[i])
		}
		p2, p1, p0, q0, q1, q2 := px[0], px[1], px[2], px[3], px[4], px[5]

		// Filter-sample conditions (11).
		d0 := bin(ddg.OpSub, "d0", q0, p0)
		f0 := bin(ddg.OpCmpLT, "f0", un(ddg.OpAbs, "ad0", d0), alphaC)
		d1 := bin(ddg.OpSub, "d1", p1, p0)
		f1 := bin(ddg.OpCmpLT, "f1", un(ddg.OpAbs, "ad1", d1), betaC)
		d2 := bin(ddg.OpSub, "d2", q1, q0)
		f2 := bin(ddg.OpCmpLT, "f2", un(ddg.OpAbs, "ad2", d2), betaC)
		filt := bin(ddg.OpAnd, "filt", bin(ddg.OpAnd, "f01", f0, f1), f2)

		// Interior-activity tests (3+3).
		ap := bin(ddg.OpCmpLT, "ap", un(ddg.OpAbs, "adp", bin(ddg.OpSub, "dp2", p2, p0)), betaC)
		aq := bin(ddg.OpCmpLT, "aq", un(ddg.OpAbs, "adq", bin(ddg.OpSub, "dq2", q2, q0)), betaC)

		// tc = tc0 + ap + aq and its negation (3).
		tcl := bin(ddg.OpAdd, "tcl", bin(ddg.OpAdd, "tca", tcC, ap), aq)
		ntc := un(ddg.OpNeg, "ntc", tcl)

		// Δ = clip3(-tc, tc, ((d0<<2) + (p1-q1) + 4) >> 3)  (6).
		sh0 := imm(ddg.OpShl, "sh0", d0, 2)
		d3 := bin(ddg.OpSub, "d3", p1, q1)
		sr := imm(ddg.OpAdd, "sr", bin(ddg.OpAdd, "s", sh0, d3), 4)
		dclip := clip3("delta", imm(ddg.OpShr, "sh1", sr, 3), ntc, tcl)

		// p0', q0' (2+2).
		p0c := clip255("p0c", bin(ddg.OpAdd, "pa", p0, dclip))
		q0c := clip255("q0c", bin(ddg.OpSub, "qa", q0, dclip))

		// avg = (p0+q0+1)>>1 (3).
		avgs := imm(ddg.OpShr, "avgs", imm(ddg.OpAdd, "avg1", bin(ddg.OpAdd, "avg", p0, q0), 1), 1)

		// p1 tap (8): p1' = p1 + clip3(-tc0, tc0, (p2 + avg - 2*p1) >> 1),
		// applied when filt && ap.
		px2 := imm(ddg.OpShl, "px2", p1, 1)
		pw := clip3("pw", imm(ddg.OpShr, "pv", bin(ddg.OpSub, "pu", bin(ddg.OpAdd, "pt", p2, avgs), px2), 1), negtc, tcC)
		p1n := bin(ddg.OpAdd, "p1n", p1, pw)
		p1cond := bin(ddg.OpAnd, "p1cond", filt, ap)
		p1sel := d.AddOp(ddg.OpSelect, "p1sel")
		d.AddDep(p1cond, p1sel, 0, 0)
		d.AddDep(p1n, p1sel, 1, 0)
		d.AddDep(p1, p1sel, 2, 0)

		// q1 tap (8).
		qx2 := imm(ddg.OpShl, "qx2", q1, 1)
		qw := clip3("qw", imm(ddg.OpShr, "qv", bin(ddg.OpSub, "qu", bin(ddg.OpAdd, "qt", q2, avgs), qx2), 1), negtc, tcC)
		q1n := bin(ddg.OpAdd, "q1n", q1, qw)
		q1cond := bin(ddg.OpAnd, "q1cond", filt, aq)
		q1sel := d.AddOp(ddg.OpSelect, "q1sel")
		d.AddDep(q1cond, q1sel, 0, 0)
		d.AddDep(q1n, q1sel, 1, 0)
		d.AddDep(q1, q1sel, 2, 0)

		// Final p0/q0 selection (2).
		p0sel := d.AddOp(ddg.OpSelect, "p0sel")
		d.AddDep(filt, p0sel, 0, 0)
		d.AddDep(p0c, p0sel, 1, 0)
		d.AddDep(p0, p0sel, 2, 0)
		q0sel := d.AddOp(ddg.OpSelect, "q0sel")
		d.AddDep(filt, q0sel, 0, 0)
		d.AddDep(q0c, q0sel, 1, 0)
		d.AddDep(q0, q0sel, 2, 0)

		// In-place stores (4). Every aliased load is a transitive
		// predecessor of its store, so any topological order is race-free.
		for i, v := range []graph.NodeID{p1sel, p0sel, q0sel, q1sel} {
			st := d.AddOp(ddg.OpStore, "st")
			d.AddDep(addr[i+1], st, 0, 0)
			d.AddDep(v, st, 1, 0)
		}
		return filt
	}

	f0 := filterLine(sel)
	f1 := filterLine(l1)
	f2 := filterLine(l2)

	// Saturating filtered-line counter (4): acc' = clip(acc + f0+f1+f2, 0, 1<<20).
	s1 := bin(ddg.OpAdd, "fs1", f0, f1)
	s2 := bin(ddg.OpAdd, "fs2", s1, f2)
	accn := d.AddOp(ddg.OpAdd, "accn")
	acc := d.AddOpImm(ddg.OpClip, "acc", 1<<20)
	d.AddDep(acc, accn, 0, 1)
	d.AddDep(s2, accn, 1, 0)
	d.AddDep(accn, acc, 0, 0)
	d.AddDep(zero, acc, 1, 0)

	return d
}

// h264FilterLineRef filters one p2..q2 line in place, mirroring the DDG.
func h264FilterLineRef(px *[6]int64) (filtered int64) {
	p2, p1, p0, q0, q1, q2 := px[0], px[1], px[2], px[3], px[4], px[5]
	abs := func(x int64) int64 {
		if x < 0 {
			return -x
		}
		return x
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	clip3 := func(x, lo, hi int64) int64 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}
	d0 := q0 - p0
	filt := b2i(abs(d0) < H264Alpha) & b2i(abs(p1-p0) < H264Beta) & b2i(abs(q1-q0) < H264Beta)
	ap := b2i(abs(p2-p0) < H264Beta)
	aq := b2i(abs(q2-q0) < H264Beta)
	tc := int64(H264Tc0) + ap + aq
	delta := clip3(((d0<<2)+(p1-q1)+4)>>3, -tc, tc)
	p0c := clip3(p0+delta, 0, 255)
	q0c := clip3(q0-delta, 0, 255)
	avgs := (p0 + q0 + 1) >> 1
	p1n := p1 + clip3((p2+avgs-(p1<<1))>>1, -H264Tc0, H264Tc0)
	q1n := q1 + clip3((q2+avgs-(q1<<1))>>1, -H264Tc0, H264Tc0)
	if filt&ap != 0 {
		px[1] = p1n
	}
	if filt != 0 {
		px[2] = p0c
		px[3] = q0c
	}
	if filt&aq != 0 {
		px[4] = q1n
	}
	return filt
}

// H264DeblockRef mirrors the DDG for iters iterations: the wrap-around
// edge walker, three stride-separated lines per iteration, in-place
// filtering. It returns the final value of the filtered-line counter.
func H264DeblockRef(mem ddg.MapMemory, iters int) int64 {
	sel := int64(-8)
	acc := int64(0)
	for it := 0; it < iters; it++ {
		nb := sel + 8
		if nb < H264Limit {
			sel = nb
		} else {
			sel = 0
		}
		var nf int64
		for line := 0; line < 3; line++ {
			base := sel + int64(line)*H264Stride
			var px [6]int64
			for i := range px {
				px[i] = mem.Load(base + int64(i))
			}
			nf += h264FilterLineRef(&px)
			for i := range px {
				mem.Store(base+int64(i), px[i])
			}
		}
		acc += nf
		if acc > 1<<20 {
			acc = 1 << 20
		}
	}
	return acc
}
