package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/dma"
	"repro/internal/driver"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/regalloc"
	"repro/internal/sim"
)

// SchedAwareRow compares scheduling-unaware and scheduling-aware
// clustering (E12): the paper's §7 ongoing-research direction, measured
// by the achieved modulo-schedule II.
type SchedAwareRow struct {
	Loop       string
	BaseII     int
	AwareII    int
	BaseRecvs  int
	AwareRecvs int
	BaseRegs   int // max rotating registers per CN
	AwareRegs  int
	BaseMII    int
	AwareMII   int
	Err        string
}

// SchedulingAware runs both variants on every kernel.
func SchedulingAware(ctx context.Context) []SchedAwareRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []SchedAwareRow
	for _, k := range kernels.All() {
		row := SchedAwareRow{Loop: k.Name}
		runOne := func(aware bool) (ii, recvs, regs, mii int, err error) {
			res, err := core.HCA(ctx, k.Build(), mc, core.Options{SchedulingAware: aware})
			if err != nil {
				return 0, 0, 0, 0, err
			}
			s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
			if err != nil {
				return 0, 0, 0, 0, err
			}
			return s.II, res.Recvs, modsched.MaxRegPressure(res.Final, s, mc.TotalCNs()), res.MII.Final, nil
		}
		var err error
		if row.BaseII, row.BaseRecvs, row.BaseRegs, row.BaseMII, err = runOne(false); err != nil {
			row.Err = shortErr(err)
		}
		if row.AwareII, row.AwareRecvs, row.AwareRegs, row.AwareMII, err = runOne(true); err != nil {
			row.Err = shortErr(err)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatSchedAware prints the E12 comparison.
func FormatSchedAware(rows []SchedAwareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E12: scheduling-aware clustering (§7 ongoing research) vs baseline\n")
	fmt.Fprintf(&b, "%-16s %8s %8s %9s %9s %9s %9s\n",
		"Loop", "base II", "aware II", "base rcv", "aware rcv", "base reg", "aware reg")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s ERROR: %s\n", r.Loop, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %8d %8d %9d %9d %9d %9d\n",
			r.Loop, r.BaseII, r.AwareII, r.BaseRecvs, r.AwareRecvs, r.BaseRegs, r.AwareRegs)
	}
	return b.String()
}

// RegPressureRow reports the rotating-register demand of the scheduled
// kernels (E11): the §4.2/§5 cost factor the paper defers.
type RegPressureRow struct {
	Loop    string
	II      int
	MaxRegs int
	AvgRegs float64
	Err     string
}

// RegisterPressure measures per-CN rotating-register demand.
func RegisterPressure(ctx context.Context) []RegPressureRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []RegPressureRow
	for _, k := range kernels.All() {
		row := RegPressureRow{Loop: k.Name}
		res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		press := modsched.RegPressure(res.Final, s, mc.TotalCNs())
		total, used := 0, 0
		for _, p := range press {
			if p > row.MaxRegs {
				row.MaxRegs = p
			}
			if p > 0 {
				total += p
				used++
			}
		}
		if used > 0 {
			row.AvgRegs = float64(total) / float64(used)
		}
		row.II = s.II
		rows = append(rows, row)
	}
	return rows
}

// FormatRegPressure prints the E11 table.
func FormatRegPressure(rows []RegPressureRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E11: rotating-register pressure of the scheduled kernels\n")
	fmt.Fprintf(&b, "%-16s %4s %9s %9s\n", "Loop", "II", "max regs", "avg regs")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s ERROR: %s\n", r.Loop, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %4d %9d %9.1f\n", r.Loop, r.II, r.MaxRegs, r.AvgRegs)
	}
	return b.String()
}

// HeteroRow measures the §2.1 heterogeneous-RCP scenario (E13): memory
// ops restricted to a subset of clusters.
type HeteroRow struct {
	Loop     string
	MemCNs   int
	Legal    bool
	FinalMII int
	Err      string
}

// Heterogeneous sweeps the number of memory-capable clusters on an
// 8-cluster RCP ring.
func Heterogeneous(ctx context.Context, memCounts []int) []HeteroRow {
	var rows []HeteroRow
	for _, k := range kernels.All() {
		for _, n := range memCounts {
			memCNs := make([]int, n)
			for i := range memCNs {
				memCNs[i] = i * (8 / n) // spread around the ring
			}
			mc := machine.RCPHetero(8, 2, 3, memCNs)
			row := HeteroRow{Loop: k.Name, MemCNs: n}
			res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
			if err != nil {
				row.Err = shortErr(err)
			} else {
				row.Legal = res.Legal
				row.FinalMII = res.MII.Final
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatHetero prints the E13 table.
func FormatHetero(rows []HeteroRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13: heterogeneous RCP (§2.1) — memory ops restricted to a cluster subset\n")
	fmt.Fprintf(&b, "%-16s %7s %6s %9s\n", "Loop", "mem CNs", "Legal", "Final MII")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s %7d %6s  %s\n", r.Loop, r.MemCNs, "no", r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %7d %6s %9d\n", r.Loop, r.MemCNs, "yes", r.FinalMII)
	}
	return b.String()
}

// DMARow reports the DMA programmability analysis (E14).
type DMARow struct {
	Loop         string
	Streams      int
	Linear       int
	Modular      int
	Programmable bool
}

// DMAProgramming analyzes every kernel's memory streams.
func DMAProgramming(ctx context.Context) []DMARow {
	var rows []DMARow
	for _, k := range kernels.All() {
		p := dma.Analyze(k.Build())
		row := DMARow{Loop: k.Name, Streams: len(p.Descriptors), Programmable: p.Programmable}
		for _, d := range p.Descriptors {
			switch d.Kind {
			case dma.Linear:
				row.Linear++
			case dma.Modular:
				row.Modular++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatDMA prints the E14 table.
func FormatDMA(rows []DMARow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14: DMA stream programmability (§5 future work, implemented)\n")
	fmt.Fprintf(&b, "%-16s %8s %7s %8s %13s\n", "Loop", "streams", "linear", "modular", "programmable")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %7d %8d %13v\n", r.Loop, r.Streams, r.Linear, r.Modular, r.Programmable)
	}
	return b.String()
}

// ScaleRow measures architecture scaling (E15): HCA on deeper hierarchies.
type ScaleRow struct {
	CNs      int
	Levels   int
	Ops      int
	Legal    bool
	FinalMII int
	States   int
	Millis   float64
	Err      string
}

// ArchitectureScale runs synthetic workloads over growing fabrics.
func ArchitectureScale(ctx context.Context) []ScaleRow {
	configs := []*machine.Config{
		machine.DSPFabric64(8, 8, 8),
		machine.Hierarchical([]int{4, 4, 4, 4}, []int{8, 8, 8, 8}),
	}
	var rows []ScaleRow
	for _, mc := range configs {
		for _, ops := range []int{128, 256} {
			d := kernels.Synthetic(kernels.SynthConfig{Ops: ops, Seed: 3, RecLatency: 3})
			row := ScaleRow{CNs: mc.TotalCNs(), Levels: mc.NumLevels(), Ops: ops}
			t0 := time.Now()
			res, err := core.HCA(ctx, d, mc, core.Options{})
			row.Millis = float64(time.Since(t0).Microseconds()) / 1000
			if err != nil {
				row.Err = shortErr(err)
			} else {
				row.Legal = res.Legal
				row.FinalMII = res.MII.Final
				row.States = res.Stats.StatesExplored
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatScale prints the E15 table.
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15: architecture scaling — HCA over deeper hierarchies (§7)\n")
	fmt.Fprintf(&b, "%5s %7s %5s %6s %9s %8s %9s\n", "CNs", "levels", "ops", "Legal", "Final MII", "states", "ms")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%5d %7d %5d %6s  %s\n", r.CNs, r.Levels, r.Ops, "no", r.Err)
			continue
		}
		fmt.Fprintf(&b, "%5d %7d %5d %6s %9d %8d %9.1f\n", r.CNs, r.Levels, r.Ops, "yes", r.FinalMII, r.States, r.Millis)
	}
	return b.String()
}

// RegAllocRow is the register-allocation experiment (E16): the last of
// §5's deferred phases.
type RegAllocRow struct {
	Loop     string
	II       int
	MaxRegs  int
	Capacity int
	Fits     bool
	Err      string
}

// RegAlloc allocates rotating registers for every scheduled kernel.
func RegAlloc(ctx context.Context, regFileSize int) []RegAllocRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []RegAllocRow
	for _, k := range kernels.All() {
		row := RegAllocRow{Loop: k.Name}
		res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		alloc, err := regalloc.Run(res.Final, s, mc, regFileSize)
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		row.II = s.II
		row.MaxRegs = alloc.MaxRegs
		row.Capacity = alloc.Capacity
		row.Fits = alloc.Fits()
		rows = append(rows, row)
	}
	return rows
}

// FormatRegAlloc prints the E16 table.
func FormatRegAlloc(rows []RegAllocRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E16: rotating-register allocation (§5 future work, implemented)\n")
	fmt.Fprintf(&b, "%-16s %4s %9s %9s %6s\n", "Loop", "II", "max regs", "capacity", "fits")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s ERROR: %s\n", r.Loop, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %4d %9d %9d %6v\n", r.Loop, r.II, r.MaxRegs, r.Capacity, r.Fits)
	}
	return b.String()
}

// ExploreRow is one point of the (N, M, K) architecture exploration the
// paper alludes to (§5: "the complete gamma of architecture exploration
// ... experiments we have performed", reported only as N=M=K=8 being
// best).
type ExploreRow struct {
	Loop      string
	N, M, K   int
	Legal     bool
	FinalMII  int
	AllLevels int
}

// ExploreNMK sweeps the three MUX capacities independently over the
// given values and returns every (kernel, config) result, plus the best
// configuration per kernel (minimal AllLevels MII, ties to the cheaper
// fabric N+M+K).
func ExploreNMK(ctx context.Context, values []int) (rows []ExploreRow, best map[string]ExploreRow) {
	best = map[string]ExploreRow{}
	for _, k := range kernels.All() {
		for _, n := range values {
			for _, m := range values {
				for _, kk := range values {
					mc := machine.DSPFabric64(n, m, kk)
					row := ExploreRow{Loop: k.Name, N: n, M: m, K: kk}
					if res, err := core.HCA(ctx, k.Build(), mc, core.Options{}); err == nil {
						row.Legal = res.Legal
						row.FinalMII = res.MII.Final
						row.AllLevels = res.MII.AllLevels
					}
					rows = append(rows, row)
					if !row.Legal {
						continue
					}
					b, ok := best[k.Name]
					better := !ok || row.AllLevels < b.AllLevels ||
						(row.AllLevels == b.AllLevels && row.N+row.M+row.K < b.N+b.M+b.K)
					if better {
						best[k.Name] = row
					}
				}
			}
		}
	}
	return rows, best
}

// FormatExplore prints the per-kernel best configurations and the legal
// fraction of the swept space.
func FormatExplore(rows []ExploreRow, best map[string]ExploreRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E17: (N,M,K) architecture exploration (§5's design-space study)\n")
	legal := 0
	for _, r := range rows {
		if r.Legal {
			legal++
		}
	}
	fmt.Fprintf(&b, "swept %d configurations, %d legal\n", len(rows), legal)
	fmt.Fprintf(&b, "%-16s %5s %9s %9s\n", "Loop", "best", "Final MII", "AllLevels")
	for _, k := range kernels.All() {
		r, ok := best[k.Name]
		if !ok {
			fmt.Fprintf(&b, "%-16s  none legal\n", k.Name)
			continue
		}
		fmt.Fprintf(&b, "%-16s %d/%d/%d %9d %9d\n", r.Loop, r.N, r.M, r.K, r.FinalMII, r.AllLevels)
	}
	return b.String()
}

// GeneralizeRow runs the beyond-paper kernels through the full flow
// (E18): evidence the system is a general compiler, not a four-kernel
// special case.
type GeneralizeRow struct {
	Loop     string
	NInstr   int
	MIIRec   int
	Legal    bool
	FinalMII int
	SchedII  int
	Correct  bool
	Err      string
}

// Generalization compiles, schedules and simulates the extra kernels.
func Generalization(ctx context.Context) []GeneralizeRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []GeneralizeRow
	for _, k := range kernels.Extras() {
		d := k.Build()
		row := GeneralizeRow{Loop: k.Name, NInstr: d.Len(), MIIRec: d.MIIRec()}
		res, err := core.HCA(ctx, d, mc, core.Options{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		row.Legal = res.Legal
		row.FinalMII = res.MII.Final
		s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		row.SchedII = s.II
		mem := extraMemory(k.Name, 16)
		if _, err := sim.Check(res.Final, s, mc, mem, 16, sim.Config{}); err != nil {
			row.Err = shortErr(err)
		} else {
			row.Correct = true
		}
		rows = append(rows, row)
	}
	return rows
}

func extraMemory(name string, iters int) ddg.MapMemory {
	rng := rand.New(rand.NewSource(77))
	mem := ddg.MapMemory{}
	switch name {
	case "fft8":
		for i := int64(0); i < int64(16*iters); i++ {
			mem[i] = int64(rng.Intn(512) - 256)
		}
	case "sad16":
		for i := int64(0); i < int64(16*iters); i++ {
			mem[kernels.SadCur+i] = int64(rng.Intn(256))
			mem[kernels.SadRef+i] = int64(rng.Intn(256))
		}
	}
	return mem
}

// FormatGeneralize prints the E18 table.
func FormatGeneralize(rows []GeneralizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E18: beyond-paper kernels through the full flow\n")
	fmt.Fprintf(&b, "%-10s %7s %6s %6s %9s %8s %8s\n", "Loop", "N_Instr", "MIIRec", "Legal", "Final MII", "SchedII", "correct")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-10s %7d %6d  ERROR: %s\n", r.Loop, r.NInstr, r.MIIRec, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %7d %6d %6v %9d %8d %8v\n", r.Loop, r.NInstr, r.MIIRec, r.Legal, r.FinalMII, r.SchedII, r.Correct)
	}
	return b.String()
}

// PipelineRow compares non-pipelined list scheduling with the kernel-only
// modulo schedule (E19): the throughput case for software pipelining on
// the fabric.
type PipelineRow struct {
	Loop     string
	ListCPI  int // cycles/iteration without overlap
	ModuloII int
	Speedup  float64
	Err      string
}

// PipeliningGain measures both schedules for every kernel.
func PipeliningGain(ctx context.Context) []PipelineRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []PipelineRow
	for _, k := range kernels.All() {
		row := PipelineRow{Loop: k.Name}
		res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		ls, err := modsched.RunList(res.Final, res.FinalCN, mc)
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		row.ListCPI = ls.Makespan
		row.ModuloII = s.II
		row.Speedup = float64(ls.Makespan) / float64(s.II)
		rows = append(rows, row)
	}
	return rows
}

// FormatPipelining prints the E19 table.
func FormatPipelining(rows []PipelineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E19: modulo scheduling vs non-pipelined list scheduling\n")
	fmt.Fprintf(&b, "%-16s %9s %9s %8s\n", "Loop", "list CPI", "modulo II", "speedup")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s ERROR: %s\n", r.Loop, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %9d %9d %7.1fx\n", r.Loop, r.ListCPI, r.ModuloII, r.Speedup)
	}
	return b.String()
}

// FeedbackRow is the closed-loop selection experiment (E20).
type FeedbackRow struct {
	Loop      string
	DefaultII int
	BestII    int
	Variant   string
	Err       string
}

// Feedback runs the closed-loop driver on every kernel.
func Feedback(ctx context.Context) []FeedbackRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []FeedbackRow
	for _, k := range kernels.All() {
		row := FeedbackRow{Loop: k.Name}
		res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
		if err == nil {
			if s, serr := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{}); serr == nil {
				row.DefaultII = s.II
			}
		}
		fb, err := driver.HCAWithFeedback(ctx, k.Build(), mc, core.Options{})
		if err != nil {
			row.Err = shortErr(err)
		} else {
			row.BestII = fb.Schedule.II
			row.Variant = fb.Variant
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFeedback prints the E20 table.
func FormatFeedback(rows []FeedbackRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E20: closed-loop variant selection by achieved II\n")
	fmt.Fprintf(&b, "%-16s %10s %8s %12s\n", "Loop", "default II", "best II", "variant")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s ERROR: %s\n", r.Loop, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %10d %8d %12s\n", r.Loop, r.DefaultII, r.BestII, r.Variant)
	}
	return b.String()
}
