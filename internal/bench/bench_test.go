package bench

import (
	"context"
	"strings"
	"testing"
)

func TestTable1AllLegal(t *testing.T) {
	rows := Table1(context.Background())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if !r.Legal {
			t.Errorf("%s: not legal", r.Loop)
		}
		if r.SchedII < r.FinalMII {
			t.Errorf("%s: scheduled II %d below MII %d", r.Loop, r.SchedII, r.FinalMII)
		}
	}
	s := FormatTable1(rows)
	for _, want := range []string{"fir2dim", "h264deblocking", "Final MII"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestSweepBandwidthMonotoneish(t *testing.T) {
	rows := SweepBandwidth(context.Background(), []int{8, 4})
	byLoop := map[string]map[int]SweepRow{}
	for _, r := range rows {
		if byLoop[r.Loop] == nil {
			byLoop[r.Loop] = map[int]SweepRow{}
		}
		byLoop[r.Loop][r.N] = r
	}
	for loop, m := range byLoop {
		wide, narrow := m[8], m[4]
		if wide.Err != "" {
			t.Errorf("%s at bw=8 failed: %s", loop, wide.Err)
			continue
		}
		// Beam search is a heuristic: tolerate one unit of noise, but a
		// markedly better result on the narrower fabric would mean the
		// degradation claim fails to reproduce.
		if narrow.Err == "" && narrow.AllLevels+1 < wide.AllLevels {
			t.Errorf("%s: narrower fabric markedly better (%d vs %d)", loop, narrow.AllLevels, wide.AllLevels)
		}
	}
	_ = FormatSweep(rows)
}

func TestUnifiedBound(t *testing.T) {
	rows := UnifiedBound(context.Background())
	for _, r := range rows {
		if r.HCAMII == 0 {
			t.Errorf("%s: HCA failed", r.Loop)
			continue
		}
		if r.Ratio < 1.0 {
			t.Errorf("%s: HCA beats the unified bound (%v)", r.Loop, r.Ratio)
		}
		// §5: "quite close to the theoretical optimum".
		if r.Ratio > 3.0 {
			t.Errorf("%s: ratio %v too far from unified bound", r.Loop, r.Ratio)
		}
	}
	_ = FormatUnified(rows)
}

func TestStateSpaceHCASmaller(t *testing.T) {
	rows := StateSpace(context.Background(), []int{96})
	for _, r := range rows {
		if r.FlatErr != "" {
			continue // flat failing IS a result (reported, not asserted)
		}
		if r.HCACands >= r.FlatCands {
			t.Errorf("%s: HCA candidates %d >= flat %d", r.Workload, r.HCACands, r.FlatCands)
		}
	}
	_ = FormatStateSpace(rows)
}

func TestRouting(t *testing.T) {
	rows := Routing(context.Background(), []int{4, 2})
	legal := 0
	for _, r := range rows {
		if r.Legal {
			legal++
		}
	}
	if legal == 0 {
		t.Error("no RCP configuration clusterized legally")
	}
	_ = FormatRouting(rows)
}

func TestMapperBalance(t *testing.T) {
	row, err := MapperBalance(context.Background(), 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.MaxLoad >= row.SerialLoad {
		t.Errorf("balancing did not reduce wire load: %d vs %d", row.MaxLoad, row.SerialLoad)
	}
	if row.BroadcastWires != 1 {
		t.Errorf("broadcast wires = %d, want 1", row.BroadcastWires)
	}
	_ = FormatMapper([]MapperRow{row})
}

func TestBeamWidthRows(t *testing.T) {
	rows := BeamWidth(context.Background(), []int{1, 8})
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FinalMII == 0 {
			t.Errorf("%s beam=%d failed", r.Loop, r.Beam)
		}
	}
	_ = FormatBeam(rows)
}

func TestScheduleAll(t *testing.T) {
	rows, err := ScheduleAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SchedII < r.MII {
			t.Errorf("%s: II %d < MII %d", r.Loop, r.SchedII, r.MII)
		}
	}
	_ = FormatSched(rows)
}

func TestSimulateAllCorrect(t *testing.T) {
	rows := Simulate(context.Background(), 24)
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if !r.Correct {
			t.Errorf("%s: incorrect execution", r.Loop)
		}
		if r.PeakDMA > 8 {
			t.Errorf("%s: peak DMA %d", r.Loop, r.PeakDMA)
		}
	}
	_ = FormatSim(rows)
}

func TestRematAblation(t *testing.T) {
	rows := RematAblation(context.Background())
	for _, r := range rows {
		if r.WithoutErr != "" {
			continue // infeasibility without remat is itself the result
		}
		if r.WithMII == 0 || r.WithoutMII == 0 {
			t.Errorf("%s: ablation row incomplete: %+v", r.Loop, r)
		}
	}
	_ = FormatRemat(rows)
}

func TestRegisterPressureRows(t *testing.T) {
	rows := RegisterPressure(context.Background())
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if r.MaxRegs < 1 || r.AvgRegs <= 0 {
			t.Errorf("%s: regs %d/%.1f", r.Loop, r.MaxRegs, r.AvgRegs)
		}
	}
	if !strings.Contains(FormatRegPressure(rows), "max regs") {
		t.Error("format missing header")
	}
}

func TestSchedulingAwareRows(t *testing.T) {
	rows := SchedulingAware(context.Background())
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if r.BaseII < 1 || r.AwareII < 1 {
			t.Errorf("%s: IIs %d/%d", r.Loop, r.BaseII, r.AwareII)
		}
	}
	_ = FormatSchedAware(rows)
}

func TestHeterogeneousRows(t *testing.T) {
	rows := Heterogeneous(context.Background(), []int{8, 2})
	legal := 0
	for _, r := range rows {
		if r.Legal {
			legal++
		}
	}
	if legal < len(rows)/2 {
		t.Errorf("only %d/%d heterogeneous configs legal", legal, len(rows))
	}
	_ = FormatHetero(rows)
}

func TestDMAProgrammingRows(t *testing.T) {
	rows := DMAProgramming(context.Background())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Programmable {
			t.Errorf("%s: not programmable", r.Loop)
		}
		if r.Linear+r.Modular != r.Streams {
			t.Errorf("%s: %d+%d != %d", r.Loop, r.Linear, r.Modular, r.Streams)
		}
	}
	if !strings.Contains(FormatDMA(rows), "programmable") {
		t.Error("format broken")
	}
}

func TestArchitectureScaleRows(t *testing.T) {
	rows := ArchitectureScale(context.Background())
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%d CNs ops=%d: %s", r.CNs, r.Ops, r.Err)
			continue
		}
		if !r.Legal {
			t.Errorf("%d CNs ops=%d: illegal", r.CNs, r.Ops)
		}
	}
	if !strings.Contains(FormatScale(rows), "levels") {
		t.Error("format broken")
	}
}

func TestRegAllocRows(t *testing.T) {
	rows := RegAlloc(context.Background(), 64)
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if !r.Fits {
			t.Errorf("%s: does not fit %d-capacity file", r.Loop, r.Capacity)
		}
	}
	if !strings.Contains(FormatRegAlloc(rows), "capacity") {
		t.Error("format broken")
	}
}

func TestExploreNMKSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, best := ExploreNMK(context.Background(), []int{4, 8})
	if len(rows) != 4*8 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	for _, k := range []string{"fir2dim", "idcthor", "mpeg2inter", "h264deblocking"} {
		if _, ok := best[k]; !ok {
			t.Errorf("%s: no legal configuration found", k)
		}
	}
	if !strings.Contains(FormatExplore(rows, best), "best") {
		t.Error("format broken")
	}
}

func TestGeneralizationRows(t *testing.T) {
	rows := Generalization(context.Background())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if !r.Legal || !r.Correct {
			t.Errorf("%s: legal=%v correct=%v", r.Loop, r.Legal, r.Correct)
		}
	}
	_ = FormatGeneralize(rows)
}

func TestPipeliningGainRows(t *testing.T) {
	rows := PipeliningGain(context.Background())
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if r.Speedup < 1.0 {
			t.Errorf("%s: modulo scheduling slower than list (%.2fx)", r.Loop, r.Speedup)
		}
	}
	_ = FormatPipelining(rows)
}

func TestFeedbackRows(t *testing.T) {
	rows := Feedback(context.Background())
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Loop, r.Err)
			continue
		}
		if r.BestII > r.DefaultII {
			t.Errorf("%s: feedback II %d worse than default %d", r.Loop, r.BestII, r.DefaultII)
		}
	}
	_ = FormatFeedback(rows)
}
