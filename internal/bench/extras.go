package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mapper"
	"repro/internal/modsched"
	"repro/internal/pg"
	"repro/internal/see"
	"repro/internal/sim"
)

// RoutingRow measures the route allocator (E5, §3/Figure 6): assignment
// of the paper kernels onto RCP rings of decreasing input-port budget.
type RoutingRow struct {
	Loop      string
	InPorts   int
	Legal     bool
	RouterInv int
	FinalMII  int
	Err       string
}

// Routing sweeps the RCP ring's input-port budget.
func Routing(ctx context.Context, ports []int) []RoutingRow {
	var rows []RoutingRow
	for _, k := range kernels.All() {
		for _, p := range ports {
			mc := machine.RCP(8, 2, p)
			row := RoutingRow{Loop: k.Name, InPorts: p}
			res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
			if err != nil {
				row.Err = shortErr(err)
			} else {
				row.Legal = res.Legal
				row.RouterInv = res.Stats.RouterInvocations
				row.FinalMII = res.MII.Final
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatRouting prints the routing experiment.
func FormatRouting(rows []RoutingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E5: route allocator on the RCP ring (8 clusters, 2 neighbors)\n")
	fmt.Fprintf(&b, "%-16s %7s %6s %10s %9s\n", "Loop", "inPorts", "Legal", "routerInv", "Final MII")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s %7d %6s  %s\n", r.Loop, r.InPorts, "no", r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %7d %6s %10d %9d\n", r.Loop, r.InPorts, "yes", r.RouterInv, r.FinalMII)
	}
	return b.String()
}

// MapperRow measures broadcast merging and copy balancing (E6, Figure 9):
// a copy-heavy flow mapped with and without spare parallel wires.
type MapperRow struct {
	Values         int
	Wires          int
	MaxLoad        int // with balancing over the available wires
	SerialLoad     int // all copies forced through one wire (no balancing)
	BroadcastWires int // wires used for the broadcast set
}

// MapperBalance builds a producer cluster broadcasting one value to two
// clusters plus nVals point-to-point values, then maps with wires wires.
func MapperBalance(ctx context.Context, nVals int, wires int) (MapperRow, error) {
	d := ddg.New("mapbench")
	bc := d.AddOp(ddg.OpMov, "bc")
	seed := d.AddIV(0, 1, "seed")
	d.AddDep(seed, bc, 0, 0)
	var vals []graph.NodeID
	for i := 0; i < nVals; i++ {
		v := d.AddOpImm(ddg.OpAdd, "v", int64(i))
		d.AddDep(seed, v, 0, 0)
		vals = append(vals, v)
	}
	// Consumers: bc on clusters 1 and 2 (broadcast); vals all on cluster 3.
	cons := func(v graph.NodeID) graph.NodeID {
		u := d.AddOp(ddg.OpAbs, "u")
		d.AddDep(v, u, 0, 0)
		return u
	}
	u1, u2 := cons(bc), cons(bc)
	var sinks []graph.NodeID
	for _, v := range vals {
		sinks = append(sinks, cons(v))
	}

	tp := pg.NewTopology("mapbench", 4, 16, wires, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	f.MarkUbiquitous(seed)
	must := func(err error) error { return err }
	if err := must(f.Assign(bc, 0)); err != nil {
		return MapperRow{}, err
	}
	for _, v := range vals {
		if err := f.Assign(v, 0); err != nil {
			return MapperRow{}, err
		}
	}
	if err := f.Assign(u1, 1); err != nil {
		return MapperRow{}, err
	}
	if err := f.Assign(u2, 2); err != nil {
		return MapperRow{}, err
	}
	for _, s := range sinks {
		if err := f.Assign(s, 3); err != nil {
			return MapperRow{}, err
		}
	}
	row := MapperRow{Values: nVals, Wires: wires}
	res, err := mapper.Map(ctx, f, wires, wires)
	if err != nil {
		return row, err
	}
	row.MaxLoad = res.MaxWireLoad
	for _, w := range res.Wires {
		if len(w.Dests) == 2 {
			row.BroadcastWires++
		}
	}
	// Serial comparison: one wire only.
	if res1, err := mapper.Map(ctx, f, 1, wires); err == nil {
		row.SerialLoad = res1.MaxWireLoad
	} else {
		row.SerialLoad = nVals + 1
	}
	return row, nil
}

// FormatMapper prints the mapper experiment.
func FormatMapper(rows []MapperRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6: mapper copy balancing and broadcast merging (Figure 9)\n")
	fmt.Fprintf(&b, "%6s %6s %13s %12s %10s\n", "values", "wires", "balanced max", "serial max", "bcastWires")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %6d %13d %12d %10d\n", r.Values, r.Wires, r.MaxLoad, r.SerialLoad, r.BroadcastWires)
	}
	return b.String()
}

// BeamRow is one point of the beam-width ablation (E7).
type BeamRow struct {
	Loop     string
	Beam     int
	FinalMII int
	States   int
}

// BeamWidth sweeps the SEE node-filter width.
func BeamWidth(ctx context.Context, widths []int) []BeamRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []BeamRow
	for _, k := range kernels.All() {
		for _, w := range widths {
			res, err := core.HCA(ctx, k.Build(), mc, core.Options{SEE: see.Config{BeamWidth: w, CandWidth: 4}})
			row := BeamRow{Loop: k.Name, Beam: w}
			if err == nil {
				row.FinalMII = res.MII.Final
				row.States = res.Stats.StatesExplored
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatBeam prints the beam ablation.
func FormatBeam(rows []BeamRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E7: beam width ablation (node filter, Figure 5)\n")
	fmt.Fprintf(&b, "%-16s %5s %9s %8s\n", "Loop", "beam", "Final MII", "states")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %5d %9d %8d\n", r.Loop, r.Beam, r.FinalMII, r.States)
	}
	return b.String()
}

// SchedRow compares the MII lower bound with the achieved modulo-schedule
// II (E8, the paper's §5 prediction that the MII "could increase
// dramatically" without scheduling-aware clustering).
type SchedRow struct {
	Loop    string
	MII     int
	SchedII int
	Stages  int
	Tries   int
}

// ScheduleAll schedules every kernel's HCA result.
func ScheduleAll(ctx context.Context) ([]SchedRow, error) {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []SchedRow
	for _, k := range kernels.All() {
		res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
		if err != nil {
			return nil, err
		}
		s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SchedRow{Loop: k.Name, MII: res.MII.Final, SchedII: s.II, Stages: s.Stages, Tries: s.Tries})
	}
	return rows, nil
}

// FormatSched prints the scheduling experiment.
func FormatSched(rows []SchedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8: achieved modulo-schedule II vs the MII lower bound\n")
	fmt.Fprintf(&b, "%-16s %5s %8s %7s %6s\n", "Loop", "MII", "sched II", "stages", "tries")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %5d %8d %7d %6d\n", r.Loop, r.MII, r.SchedII, r.Stages, r.Tries)
	}
	return b.String()
}

// SimRow is the end-to-end execution check (E9).
type SimRow struct {
	Loop     string
	Iters    int
	II       int
	Cycles   int64
	Receives int64
	MaxBuf   int
	PeakDMA  int
	WirePeak int // largest per-cycle crossing count at any level
	Overcmt  int // cycles with wire supply exceeded
	Correct  bool
	Err      string
}

// Simulate runs each kernel end to end (HCA → modulo schedule → fabric
// simulation) on a random memory image and checks against the sequential
// reference.
func Simulate(ctx context.Context, iters int) []SimRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []SimRow
	for _, k := range kernels.All() {
		row := SimRow{Loop: k.Name, Iters: iters}
		res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		row.II = s.II
		mem := kernelMemory(k.Name, iters)
		stats, err := sim.Check(res.Final, s, mc, mem, iters, sim.Config{})
		if err != nil {
			row.Err = shortErr(err)
			rows = append(rows, row)
			continue
		}
		row.Cycles = stats.Cycles
		row.Receives = stats.Receives
		row.MaxBuf = stats.MaxBufferOcc
		row.PeakDMA = stats.PeakDMA
		for _, p := range stats.WirePeak {
			if p > row.WirePeak {
				row.WirePeak = p
			}
		}
		row.Overcmt = stats.WireOvercommitCycles
		row.Correct = true
		rows = append(rows, row)
	}
	return rows
}

// kernelMemory builds a suitable random input image per kernel.
func kernelMemory(name string, iters int) ddg.MapMemory {
	rng := rand.New(rand.NewSource(99))
	mem := ddg.MapMemory{}
	switch name {
	case "fir2dim":
		for r := 0; r < 3; r++ {
			for c := 0; c < kernels.FirCols+4; c++ {
				mem[int64(r)*kernels.FirStride+int64(c)] = int64(rng.Intn(512) - 256)
			}
		}
	case "idcthor":
		for i := int64(0); i < int64(iters*8); i++ {
			mem[i] = int64(rng.Intn(2048) - 1024)
		}
	case "mpeg2inter":
		for i := int64(0); i < int64(4*iters+8); i++ {
			for _, base := range []int64{kernels.MpegPF, kernels.MpegPF + kernels.MpegStride, kernels.MpegPB} {
				mem[base+i] = int64(rng.Intn(256))
			}
		}
	case "h264deblocking":
		for line := int64(0); line < 3; line++ {
			for c := int64(0); c < kernels.H264Limit+8; c++ {
				mem[line*kernels.H264Stride+c] = int64(rng.Intn(256))
			}
		}
	}
	return mem
}

// FormatSim prints the simulation experiment.
func FormatSim(rows []SimRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E9: end-to-end execution on the fabric simulator vs scalar reference\n")
	fmt.Fprintf(&b, "%-16s %6s %4s %8s %9s %7s %8s %8s %8s %8s\n", "Loop", "iters", "II", "cycles", "receives", "maxbuf", "peakDMA", "wirePeak", "overcmt", "correct")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s %6d  ERROR: %s\n", r.Loop, r.Iters, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %6d %4d %8d %9d %7d %8d %8d %8d %8v\n",
			r.Loop, r.Iters, r.II, r.Cycles, r.Receives, r.MaxBuf, r.PeakDMA, r.WirePeak, r.Overcmt, r.Correct)
	}
	return b.String()
}

// RematRow is the constant/IV rematerialization ablation.
type RematRow struct {
	Loop         string
	WithMII      int
	WithoutMII   int
	WithRecvs    int
	WithoutRecvs int
	WithoutLegal bool
	WithoutErr   string
}

// RematAblation measures the effect of per-cluster constant and
// induction-value duplication on the clusterization quality.
func RematAblation(ctx context.Context) []RematRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []RematRow
	for _, k := range kernels.All() {
		row := RematRow{Loop: k.Name}
		if res, err := core.HCA(ctx, k.Build(), mc, core.Options{}); err == nil {
			row.WithMII = res.MII.AllLevels
			row.WithRecvs = res.Recvs
		}
		res, err := core.HCA(ctx, k.Build(), mc, core.Options{DisableRematerialization: true})
		if err != nil {
			row.WithoutErr = shortErr(err)
		} else {
			row.WithoutMII = res.MII.AllLevels
			row.WithoutRecvs = res.Recvs
			row.WithoutLegal = res.Legal
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatRemat prints the rematerialization ablation.
func FormatRemat(rows []RematRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E10 (ablation): constant/IV rematerialization\n")
	fmt.Fprintf(&b, "%-16s %9s %9s %10s %10s\n", "Loop", "with MII", "w/o MII", "with recv", "w/o recv")
	for _, r := range rows {
		if r.WithoutErr != "" {
			fmt.Fprintf(&b, "%-16s %9d %9s %10d  w/o: %s\n", r.Loop, r.WithMII, "-", r.WithRecvs, r.WithoutErr)
			continue
		}
		fmt.Fprintf(&b, "%-16s %9d %9d %10d %10d\n", r.Loop, r.WithMII, r.WithoutMII, r.WithRecvs, r.WithoutRecvs)
	}
	return b.String()
}
