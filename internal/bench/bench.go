// Package bench is the experiment harness: one runner per table, figure
// or quantitative claim of the paper's evaluation (§5), as indexed in
// DESIGN.md. Each runner returns structured rows plus a formatter that
// prints them the way the paper reports them; cmd/hcabench drives them
// all and EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/see"
	"repro/internal/sim"
)

// Table1Row reproduces one row of the paper's Table 1, extended with this
// reproduction's additional figures.
type Table1Row struct {
	Loop      string
	NInstr    int
	MIIRec    int
	MIIRes    int
	Legal     bool
	FinalMII  int // paper's §4.2 definition (level-0 bound)
	PaperMII  int // the value Table 1 prints
	AllLevels int // extension: every level's pressure folded in
	SchedII   int // extension: achieved II after modulo scheduling
	Err       string
}

// Table1 runs HCA on the four paper kernels over the N=M=K=8 DSPFabric
// (the paper's best configuration) and modulo-schedules each result.
func Table1(ctx context.Context) []Table1Row {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []Table1Row
	for _, k := range kernels.All() {
		d := k.Build()
		row := Table1Row{Loop: k.Name, NInstr: d.Len(), MIIRec: d.MIIRec(),
			MIIRes: d.MIIRes(kernels.PaperResources), PaperMII: k.PaperFinalMII}
		res, err := core.HCA(ctx, d, mc, core.Options{})
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.Legal = res.Legal
		row.FinalMII = res.MII.Final
		row.AllLevels = res.MII.AllLevels
		if s, err := modsched.Run(ctx, res.Final, res.FinalCN, mc, modsched.Config{}); err == nil {
			row.SchedII = s.II
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 prints rows in the paper's column layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: HCA test on four multimedia application loops (N=M=K=8)\n")
	fmt.Fprintf(&b, "%-16s %7s %6s %6s %6s %9s %8s %9s %8s\n",
		"Loop", "N_Instr", "MIIRec", "MIIRes", "Legal", "Final MII", "(paper)", "AllLevels", "SchedII")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s %7d %6d %6d  ERROR: %s\n", r.Loop, r.NInstr, r.MIIRec, r.MIIRes, r.Err)
			continue
		}
		legal := "no"
		if r.Legal {
			legal = "yes"
		}
		fmt.Fprintf(&b, "%-16s %7d %6d %6d %6s %9d %8d %9d %8d\n",
			r.Loop, r.NInstr, r.MIIRec, r.MIIRes, legal, r.FinalMII, r.PaperMII, r.AllLevels, r.SchedII)
	}
	return b.String()
}

// SweepRow is one point of the bandwidth exploration (E2): the paper's
// claim that "lower bandwidths cause a rapid degradation of the
// clusterization quality".
type SweepRow struct {
	Loop      string
	N, M, K   int
	Legal     bool
	FinalMII  int
	AllLevels int
	Err       string
}

// SweepBandwidth clusterizes every kernel over DSPFabric instances with
// N=M=K in bws (the paper explored several and reports only the best,
// N=M=K=8).
func SweepBandwidth(ctx context.Context, bws []int) []SweepRow {
	var rows []SweepRow
	for _, k := range kernels.All() {
		for _, bw := range bws {
			mc := machine.DSPFabric64(bw, bw, bw)
			row := SweepRow{Loop: k.Name, N: bw, M: bw, K: bw}
			res, err := core.HCA(ctx, k.Build(), mc, core.Options{})
			if err != nil {
				row.Err = shortErr(err)
			} else {
				row.Legal = res.Legal
				row.FinalMII = res.MII.Final
				row.AllLevels = res.MII.AllLevels
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatSweep prints the bandwidth sweep.
func FormatSweep(rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2: bandwidth sweep (N=M=K); infeasible = degradation in the extreme\n")
	fmt.Fprintf(&b, "%-16s %4s %6s %9s %9s\n", "Loop", "N/M/K", "Legal", "Final MII", "AllLevels")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s %4d %6s  %s\n", r.Loop, r.N, "no", r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %4d %6s %9d %9d\n", r.Loop, r.N, "yes", r.FinalMII, r.AllLevels)
	}
	return b.String()
}

// UnifiedRow compares HCA's result against the theoretical optimum on an
// equivalent-issue-width unified machine (E3, §5).
type UnifiedRow struct {
	Loop       string
	UnifiedMII int // max(MIIRec, MIIRes) on the unified 64-issue machine
	HCAMII     int
	Ratio      float64
}

// UnifiedBound measures how close HCA's MII sits to the unified bound.
func UnifiedBound(ctx context.Context) []UnifiedRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []UnifiedRow
	for _, k := range kernels.All() {
		d := k.Build()
		uni := d.MII(kernels.PaperResources)
		row := UnifiedRow{Loop: k.Name, UnifiedMII: uni}
		if res, err := core.HCA(ctx, d, mc, core.Options{}); err == nil {
			row.HCAMII = res.MII.Final
			row.Ratio = float64(row.HCAMII) / float64(uni)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatUnified prints the unified-bound comparison.
func FormatUnified(rows []UnifiedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3: HCA MII vs theoretical optimum on unified 64-issue machine\n")
	fmt.Fprintf(&b, "%-16s %11s %8s %7s\n", "Loop", "Unified MII", "HCA MII", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %11d %8d %7.2f\n", r.Loop, r.UnifiedMII, r.HCAMII, r.Ratio)
	}
	return b.String()
}

// StateSpaceRow compares HCA against flat single-level ICA (E4, §7:
// "considerably cuts the state-space exploration").
type StateSpaceRow struct {
	Workload   string
	Ops        int
	HCACands   int
	FlatCands  int
	HCAStates  int
	FlatStates int
	HCAms      float64
	Flatms     float64
	FlatViol   int // wire violations of the flat result (hierarchy-blind)
	FlatErr    string
}

// StateSpace runs HCA and flat ICA over the paper kernels plus synthetic
// DDGs of growing size.
func StateSpace(ctx context.Context, synthetic []int) []StateSpaceRow {
	mc := machine.DSPFabric64(8, 8, 8)
	var rows []StateSpaceRow
	run := func(name string, build func() *ddg.DDG) {
		d := build()
		row := StateSpaceRow{Workload: name, Ops: d.Len()}
		t0 := time.Now()
		if res, err := core.HCA(ctx, build(), mc, core.Options{}); err == nil {
			row.HCAms = float64(time.Since(t0).Microseconds()) / 1000
			row.HCACands = res.Stats.CandidatesTried
			row.HCAStates = res.Stats.StatesExplored
		}
		t0 = time.Now()
		flat, err := baseline.FlatICA(ctx, d, mc, see.Config{})
		if err != nil {
			row.FlatErr = shortErr(err)
		} else {
			row.Flatms = float64(time.Since(t0).Microseconds()) / 1000
			row.FlatCands = flat.Stats.CandidatesTried
			row.FlatStates = flat.Stats.StatesExplored
			row.FlatViol = baseline.Evaluate(d, flat.CN, mc).WireViolations
		}
		rows = append(rows, row)
	}
	for _, k := range kernels.All() {
		run(k.Name, k.Build)
	}
	for _, ops := range synthetic {
		ops := ops
		run(fmt.Sprintf("synth-%d", ops), func() *ddg.DDG {
			return kernels.Synthetic(kernels.SynthConfig{Ops: ops, Seed: 1, RecLatency: 3})
		})
	}
	return rows
}

// FormatStateSpace prints the exploration comparison.
func FormatStateSpace(rows []StateSpaceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4: state-space exploration, HCA vs flat K64 ICA\n")
	fmt.Fprintf(&b, "%-16s %5s %10s %10s %9s %9s %9s %9s %9s\n",
		"Workload", "ops", "HCA cands", "flat cands", "HCA st", "flat st", "HCA ms", "flat ms", "flatViol")
	for _, r := range rows {
		if r.FlatErr != "" {
			fmt.Fprintf(&b, "%-16s %5d %10d %10s %9d %9s %9.1f %9s  flat: %s\n",
				r.Workload, r.Ops, r.HCACands, "-", r.HCAStates, "-", r.HCAms, "-", r.FlatErr)
			continue
		}
		fmt.Fprintf(&b, "%-16s %5d %10d %10d %9d %9d %9.1f %9.1f %9d\n",
			r.Workload, r.Ops, r.HCACands, r.FlatCands, r.HCAStates, r.FlatStates, r.HCAms, r.Flatms, r.FlatViol)
	}
	return b.String()
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 72 {
		s = s[:72] + "..."
	}
	return s
}

var _ = sim.Stats{} // sim used by extras.go
