package mapper

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/pg"
	"repro/internal/see"
)

// flowWithCopies builds a 4-cluster flow and pushes explicit copies by
// assigning producer/consumer pairs across clusters.
func consumers(d *ddg.DDG, v graph.NodeID, n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		u := d.AddOp(ddg.OpAbs, "u")
		d.AddDep(v, u, 0, 0)
		out[i] = u
	}
	return out
}

func TestBroadcastMerging(t *testing.T) {
	// Figure 9: x broadcast from cluster 0 to clusters 1 and 2 uses one
	// output wire with two listeners.
	d := ddg.New("bc")
	x := d.AddConst(1, "x")
	us := consumers(d, x, 2)
	tp := pg.NewTopology("t", 4, 4, 8, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	if err := f.Assign(x, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(us[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(us[1], 2); err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wires) != 1 {
		t.Fatalf("wires = %d, want 1 (broadcast)", len(res.Wires))
	}
	w := res.Wires[0]
	if w.From != 0 || len(w.Dests) != 2 || len(w.Values) != 1 {
		t.Errorf("wire = %+v", w)
	}
	if res.MaxWireLoad != 1 || res.Pollution != 0 {
		t.Errorf("load=%d pollution=%d", res.MaxWireLoad, res.Pollution)
	}
	if err := res.Verify(f, 4, 4); err != nil {
		t.Fatal(err)
	}
}

func TestCopyBalancingSplitsWires(t *testing.T) {
	// Three values 0→1 with 4 wires available: balancing must spread them
	// (Figure 9b: "distributing a, b and c over three wires").
	d := ddg.New("bal")
	vs := []graph.NodeID{d.AddConst(1, "a"), d.AddConst(2, "b"), d.AddConst(3, "c")}
	var sinks []graph.NodeID
	for _, v := range vs {
		sinks = append(sinks, consumers(d, v, 1)...)
	}
	tp := pg.NewTopology("t", 2, 4, 4, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	for _, v := range vs {
		if err := f.Assign(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sinks {
		if err := f.Assign(s, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Map(context.Background(), f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wires) != 3 {
		t.Fatalf("wires = %d, want 3 (balanced)", len(res.Wires))
	}
	if res.MaxWireLoad != 1 {
		t.Errorf("MaxWireLoad = %d, want 1", res.MaxWireLoad)
	}
	if err := res.Verify(f, 4, 4); err != nil {
		t.Fatal(err)
	}
}

func TestBalancingRespectsReceiverBudget(t *testing.T) {
	// Receiver has only 1 input wire: the three values must share it.
	d := ddg.New("tight")
	vs := []graph.NodeID{d.AddConst(1, "a"), d.AddConst(2, "b"), d.AddConst(3, "c")}
	var sinks []graph.NodeID
	for _, v := range vs {
		sinks = append(sinks, consumers(d, v, 1)...)
	}
	tp := pg.NewTopology("t", 2, 4, 1, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	for _, v := range vs {
		if err := f.Assign(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sinks {
		if err := f.Assign(s, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Map(context.Background(), f, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wires) != 1 || res.MaxWireLoad != 3 {
		t.Errorf("wires=%d load=%d, want 1/3", len(res.Wires), res.MaxWireLoad)
	}
	if err := res.Verify(f, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestOutputNodeGlueWire(t *testing.T) {
	d := ddg.New("glue")
	k := d.AddConst(1, "k")
	h := d.AddConst(2, "h")
	tp := pg.NewTopology("t", 2, 4, 4, 0)
	tp.AllToAll()
	out := tp.AddOutputNode([]pg.ValueID{k, h})
	f := pg.NewFlow(tp, d)
	if err := f.Assign(k, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(h, 0); err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// One glue wire 0→out carrying both values.
	if len(res.Wires) != 1 || !res.Wires[0].Glue || len(res.Wires[0].Values) != 2 {
		t.Fatalf("wires = %+v", res.Wires)
	}
	if res.Wires[0].Dests[0] != out {
		t.Errorf("glue dest = %v, want %v", res.Wires[0].Dests, out)
	}
	if err := res.Verify(f, 4, 4); err != nil {
		t.Fatal(err)
	}
}

func TestInputNodeSingleParentWire(t *testing.T) {
	// A value arriving on an input wire broadcast to two clusters: one
	// glue wire, never split.
	d := ddg.New("inw")
	ext := d.AddConst(7, "ext")
	us := consumers(d, ext, 2)
	tp := pg.NewTopology("t", 4, 4, 4, 0)
	tp.AllToAll()
	in := tp.AddInputNode([]pg.ValueID{ext})
	f := pg.NewFlow(tp, d)
	if err := f.Assign(us[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(us[1], 1); err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wires) != 1 || !res.Wires[0].Glue || res.Wires[0].From != in {
		t.Fatalf("wires = %+v", res.Wires)
	}
	if err := res.Verify(f, 4, 4); err != nil {
		t.Fatal(err)
	}
}

func TestMergingUnderWireShortage(t *testing.T) {
	// Cluster 0 sends distinct values to 3 distinct singleton dest sets
	// but has only 2 output wires: two groups merge, polluting.
	d := ddg.New("short")
	vs := []graph.NodeID{d.AddConst(1, "a"), d.AddConst(2, "b"), d.AddConst(3, "c")}
	tp := pg.NewTopology("t", 4, 4, 4, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	for _, v := range vs {
		if err := f.Assign(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	sinkOf := func(v graph.NodeID, c pg.ClusterID) {
		t.Helper()
		// consumers were not pre-built: route the value directly instead.
		if err := f.Route(v, c); err != nil {
			t.Fatal(err)
		}
	}
	sinkOf(vs[0], 1)
	sinkOf(vs[1], 2)
	sinkOf(vs[2], 3)
	res, err := Map(context.Background(), f, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wires) != 2 {
		t.Fatalf("wires = %d, want 2", len(res.Wires))
	}
	if res.Pollution == 0 {
		t.Error("expected pollution from merging")
	}
	if err := res.Verify(f, 2, 4); err != nil {
		t.Fatal(err)
	}
}

func TestReceiverInWireShortageMerges(t *testing.T) {
	// Cluster 2 receives value a (alone) and value b (broadcast with
	// cluster 1) from cluster 0 — two wires — but has only 1 input wire:
	// groups must merge, polluting cluster 1 with a.
	d := ddg.New("rshort")
	a := d.AddConst(1, "a")
	b := d.AddConst(2, "b")
	tp := pg.NewTopology("t", 3, 4, 1, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	if err := f.Assign(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(b, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Route(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Route(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Route(b, 2); err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), f, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(f, 4, 1); err != nil {
		t.Fatal(err)
	}
	if res.Pollution == 0 {
		t.Error("expected pollution: cluster 1 receives a it never asked for")
	}
}

func TestMapInfeasible(t *testing.T) {
	// Two sources each sending their own value to cluster 2, which has 1
	// input wire: different sources cannot merge → error.
	d := ddg.New("inf")
	a := d.AddConst(1, "a")
	b := d.AddConst(2, "b")
	tp := pg.NewTopology("t", 3, 4, 2, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	if err := f.Assign(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Route(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Route(b, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(context.Background(), f, 4, 1); err == nil {
		t.Fatal("expected infeasibility (the PG constraint allowed 2 sources, wires allow 1)")
	}
}

func TestILIs(t *testing.T) {
	d := ddg.New("ili")
	x := d.AddConst(1, "x")
	u := consumers(d, x, 1)[0]
	tp := pg.NewTopology("t", 2, 4, 4, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	if err := f.Assign(x, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Assign(u, 1); err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ilis := res.ILIs(f)
	if got := ilis[0]; got == nil || len(got.Outputs) != 1 || len(got.Outputs[0]) != 1 || got.Outputs[0][0] != x {
		t.Errorf("ILI[0] = %+v", got)
	}
	if got := ilis[1]; got == nil || len(got.Inputs) != 1 || got.Inputs[0][0] != x {
		t.Errorf("ILI[1] = %+v", got)
	}
}

func TestMapAllKernelsAfterSEE(t *testing.T) {
	// End-to-end at level 0: SEE then Map with N = 8 wires must succeed
	// and verify for every paper kernel.
	for _, k := range kernels.All() {
		d := k.Build()
		tp := pg.NewTopology("lvl0", 4, 16, 8, 0)
		tp.AllToAll()
		f := pg.NewFlow(tp, d)
		f.MIIRecStatic = d.MIIRec()
		ws := make([]graph.NodeID, d.Len())
		for i := range ws {
			ws[i] = graph.NodeID(i)
		}
		res, err := see.Solve(context.Background(), f, ws, see.Config{})
		if err != nil {
			t.Fatalf("%s: SEE: %v", k.Name, err)
		}
		m, err := Map(context.Background(), res.Flow, 8, 8)
		if err != nil {
			t.Fatalf("%s: Map: %v", k.Name, err)
		}
		if err := m.Verify(res.Flow, 8, 8); err != nil {
			t.Errorf("%s: Verify: %v", k.Name, err)
		}
	}
}

func TestMapBadWireCounts(t *testing.T) {
	d := ddg.New("x")
	tp := pg.NewTopology("t", 2, 4, 2, 0)
	f := pg.NewFlow(tp, d)
	if _, err := Map(context.Background(), f, 0, 4); err == nil {
		t.Error("accepted zero out wires")
	}
	if _, err := Map(context.Background(), f, 4, 0); err == nil {
		t.Error("accepted zero in wires")
	}
}

func TestMapEmptyFlow(t *testing.T) {
	d := ddg.New("e")
	tp := pg.NewTopology("t", 2, 4, 2, 0)
	f := pg.NewFlow(tp, d)
	res, err := Map(context.Background(), f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wires) != 0 || res.MaxWireLoad != 0 {
		t.Errorf("empty flow mapped to %+v", res)
	}
}
