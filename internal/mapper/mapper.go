// Package mapper implements the Mapper module of §3 and §4.1: it takes a
// completely assigned Pattern Graph flow (real arcs annotated with the
// values they carry) and distributes those copies onto the physical
// communication wires of the machine model level.
//
// The Mapper's behaviour follows Figure 9:
//
//   - *broadcast merging*: a value sent from one cluster to several
//     destinations travels on a single output wire that all destinations
//     listen to;
//   - *copy balancing*: values with the same destination set are spread
//     over parallel wires (when output wires at the source and input wires
//     at every destination remain) so no single wire becomes the II
//     bottleneck;
//   - *preallocation* (Figure 11): wires that glue the level to its father
//     — arcs from input nodes and into output nodes — are committed first
//     and are never merged with internal traffic;
//   - when a cluster needs more wires than exist, destination groups are
//     merged, which *pollutes* the extra destinations with values they did
//     not ask for (counted, since every spurious delivery costs an input
//     buffer slot).
//
// The mapped result yields one Inter Level Interface per cluster: the
// wires entering and leaving it, each with its value list, which become
// the special input/output nodes of the cluster's child subproblem (§4.1,
// Figure 9c).
package mapper

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/pg"
	"repro/internal/trace"
)

// Wire is one physical output wire of a cluster: the set of destination
// clusters listening to it and the values it carries each iteration.
type Wire struct {
	From   pg.ClusterID
	Dests  []pg.ClusterID
	Values []pg.ValueID
	// Glue marks an inter-level wire (source or destination is a special
	// node); glue wires are preallocated and never merged or split.
	Glue bool
}

// Load returns the number of values the wire carries per iteration.
func (w *Wire) Load() int { return len(w.Values) }

// Result is a complete wire assignment for one level.
type Result struct {
	// Wires lists every allocated output wire, grouped by source cluster
	// in deterministic order.
	Wires []Wire
	// MaxWireLoad is the paper's wire-pressure term: values per iteration
	// on the busiest wire (a lower-bound contribution to the II).
	MaxWireLoad int
	// Pollution counts spurious (value, destination) deliveries caused by
	// destination-group merging under wire shortage.
	Pollution int
	// OutUsed / InUsed report per-cluster wire consumption.
	OutUsed, InUsed map[pg.ClusterID]int
}

// ILI is the Inter Level Interface of one cluster: the value lists on each
// wire entering and leaving it (Figure 9c). Wire order is deterministic.
type ILI struct {
	Cluster pg.ClusterID
	Inputs  [][]pg.ValueID // one list per wire entering the cluster
	Outputs [][]pg.ValueID // one list per wire leaving the cluster
}

// group is a set of values sharing one (or, after balancing, several
// parallel) output wires of a source cluster: all values of a group have
// the same destination set.
type group struct {
	from    pg.ClusterID
	dests   uint64 // destination cluster bitmask
	values  []pg.ValueID
	asked   map[pg.ValueID]uint64 // original destination mask per value (pollution accounting)
	glue    bool
	wires   int // parallel wires assigned (>= 1)
	deleted bool
}

// Map distributes the copies of the solved flow f onto physical wires:
// outWires output wires and inWires input wires per regular cluster (the
// level's MUX capacity). It fails when even after merging the traffic
// cannot fit the wire budget. A trace.Recorder installed in ctx gets a
// span with the commit statistics (wires, busiest-wire load, pollution).
func Map(ctx context.Context, f *pg.Flow, outWires, inWires int) (*Result, error) {
	if outWires < 1 || inWires < 1 {
		return nil, fmt.Errorf("mapper: wire counts must be positive (out=%d in=%d)", outWires, inWires)
	}
	_, sp := trace.Start(ctx, "mapper.map")
	defer sp.End()
	sp.SetStr("topology", f.T.Name)
	sp.SetInt("out_wires", int64(outWires))
	sp.SetInt("in_wires", int64(inWires))

	// Pass 1: per source, the destination set of every value it sends.
	destsOf := map[pg.ClusterID]map[pg.ValueID]uint64{}
	f.RealArcs(func(from, to pg.ClusterID, vals []pg.ValueID) {
		if destsOf[from] == nil {
			destsOf[from] = map[pg.ValueID]uint64{}
		}
		for _, v := range vals {
			destsOf[from][v] |= 1 << uint(to)
		}
	})
	srcs := make([]pg.ClusterID, 0, len(destsOf))
	for s := range destsOf {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })

	// Build groups: values with identical regular-destination sets merge
	// (broadcast); every output-node destination is its own glue wire;
	// arcs sourced at input nodes are glue (they ARE a parent wire).
	var all []*group
	for _, from := range srcs {
		vd := destsOf[from]
		vals := make([]pg.ValueID, 0, len(vd))
		for v := range vd {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

		byMask := map[uint64]*group{}
		addVal := func(mask uint64, v pg.ValueID, glue bool) {
			g, ok := byMask[mask]
			if !ok {
				g = &group{from: from, dests: mask, glue: glue, wires: 1, asked: map[pg.ValueID]uint64{}}
				byMask[mask] = g
			}
			g.values = append(g.values, v)
			g.asked[v] |= mask
		}
		srcIsInputNode := f.T.Cluster(from).Kind == pg.InNode
		for _, v := range vals {
			var regMask uint64
			for m := vd[v]; m != 0; {
				d := pg.ClusterID(bits.TrailingZeros64(m))
				m &^= 1 << uint(d)
				if f.T.Cluster(d).Kind == pg.OutNode {
					addVal(1<<uint(d), v, true)
				} else {
					regMask |= 1 << uint(d)
				}
			}
			if regMask != 0 {
				addVal(regMask, v, srcIsInputNode)
			}
		}
		masks := make([]uint64, 0, len(byMask))
		for m := range byMask {
			masks = append(masks, m)
		}
		sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
		var groups []*group
		for _, m := range masks {
			groups = append(groups, byMask[m])
		}
		// An input node is physically a single parent wire: everything it
		// carries shares it, whatever the destination sets (the MUXes
		// broadcast the wire; listeners receive all of it).
		if srcIsInputNode && len(groups) > 1 {
			for _, g := range groups[1:] {
				mergeInto(groups[0], g)
			}
			groups = groups[:1]
		}
		// Preallocation order: glue first, then heavier groups.
		sort.SliceStable(groups, func(i, j int) bool {
			if groups[i].glue != groups[j].glue {
				return groups[i].glue
			}
			return len(groups[i].values) > len(groups[j].values)
		})

		// Merge internal groups while the source's wire demand overflows.
		if f.T.Cluster(from).Kind == pg.Regular {
			for len(groups) > outWires {
				if !mergeSmallestPair(groups) {
					return nil, fmt.Errorf("mapper: cluster %d needs %d output wires, has %d", from, live(groups), outWires)
				}
				groups = compact(groups)
			}
		}
		all = append(all, groups...)
	}

	// Pass 2: input-wire budgets. Merge a source's internal groups when a
	// destination runs out of input wires.
	inBudget := func(c pg.ClusterID) int {
		switch f.T.Cluster(c).Kind {
		case pg.Regular:
			return inWires
		case pg.OutNode:
			return 1
		default:
			return 0
		}
	}
	inUsed := map[pg.ClusterID]int{}
	recount := func() pg.ClusterID {
		for c := 0; c < f.T.NumClusters(); c++ {
			inUsed[pg.ClusterID(c)] = 0
		}
		over := pg.None
		for _, g := range all {
			if g.deleted {
				continue
			}
			for m := g.dests; m != 0; {
				d := pg.ClusterID(bits.TrailingZeros64(m))
				m &^= 1 << uint(d)
				inUsed[d] += g.wires
				if inUsed[d] > inBudget(d) && over == pg.None {
					over = d
				}
			}
		}
		return over
	}
	for {
		over := recount()
		if over == pg.None {
			break
		}
		if !mergeForDest(all, over) {
			return nil, fmt.Errorf("mapper: cluster %d needs %d input wires, has %d", over, inUsed[over], inBudget(over))
		}
		all = compact(all)
	}

	// Pass 3: copy balancing — split the heaviest internal groups over
	// parallel wires while spare wires remain on both sides (Figure 9b).
	for _, from := range srcs {
		if f.T.Cluster(from).Kind != pg.Regular {
			continue
		}
		used := 0
		for _, g := range all {
			if !g.deleted && g.from == from {
				used += g.wires
			}
		}
		for used < outWires {
			var best *group
			bestLoad := 1
			for _, g := range all {
				if g.deleted || g.from != from || g.glue {
					continue
				}
				load := ceilDiv(len(g.values), g.wires)
				if load > bestLoad && destsHaveSpare(g, inUsed, inBudget) {
					best, bestLoad = g, load
				}
			}
			if best == nil {
				break
			}
			best.wires++
			used++
			for m := best.dests; m != 0; {
				d := pg.ClusterID(bits.TrailingZeros64(m))
				m &^= 1 << uint(d)
				inUsed[d]++
			}
		}
	}

	// Materialize wires, round-robin within each group, and account.
	res := &Result{
		OutUsed: map[pg.ClusterID]int{},
		InUsed:  map[pg.ClusterID]int{},
	}
	for _, g := range all {
		if g.deleted {
			continue
		}
		dests := maskToClusters(g.dests)
		wires := make([]Wire, g.wires)
		for i := range wires {
			wires[i] = Wire{From: g.from, Dests: dests, Glue: g.glue}
		}
		for i, v := range g.values {
			w := &wires[i%g.wires]
			w.Values = append(w.Values, v)
		}
		for i := range wires {
			if len(wires[i].Values) == 0 {
				continue
			}
			if l := len(wires[i].Values); l > res.MaxWireLoad {
				res.MaxWireLoad = l
			}
			res.Wires = append(res.Wires, wires[i])
			res.OutUsed[g.from]++
			for _, d := range dests {
				res.InUsed[d]++
			}
		}
		// Pollution: deliveries to destinations a value never asked for.
		for _, v := range g.values {
			extra := g.dests &^ g.asked[v]
			res.Pollution += bits.OnesCount64(extra)
		}
	}
	sp.SetInt("wires_committed", int64(len(res.Wires)))
	sp.SetInt("max_wire_load", int64(res.MaxWireLoad))
	sp.SetInt("pollution", int64(res.Pollution))
	trace.Count(ctx, "mapper.wires_committed", int64(len(res.Wires)))
	trace.Count(ctx, "mapper.pollution", int64(res.Pollution))
	return res, nil
}

// mergeSmallestPair merges the two smallest groups of the slice (all from
// the same regular source); returns false if fewer than two exist.
// Internal (non-glue) pairs merge first; when the out-wire budget is
// tighter than the glue demand — a leaf CN has a single output wire that
// the crossbar fans out to siblings and to the parent wire alike — glue
// groups join the merge as a last resort.
func mergeSmallestPair(groups []*group) bool {
	pick := func(allowGlue bool) (x, y *group) {
		for _, g := range groups {
			if g.deleted || (g.glue && !allowGlue) {
				continue
			}
			switch {
			case x == nil || len(g.values) < len(x.values):
				x, y = g, x
			case y == nil || len(g.values) < len(y.values):
				y = g
			}
		}
		return x, y
	}
	a, b := pick(false)
	if a == nil || b == nil {
		a, b = pick(true)
	}
	if a == nil || b == nil {
		return false
	}
	// Keep a glue group as the merge target so the wire stays marked as
	// an inter-level wire.
	if b.glue && !a.glue {
		a, b = b, a
	}
	mergeInto(a, b)
	return true
}

// mergeForDest merges two groups of the same source that both reach
// destination d, reducing d's input-wire usage by at least one. Non-glue
// pairs merge first; glue groups join as a last resort (a single physical
// output wire can feed internal listeners and parent wires alike through
// the crossbar). Different sources can never merge — they are distinct
// physical wires.
func mergeForDest(all []*group, d pg.ClusterID) bool {
	bit := uint64(1) << uint(d)
	try := func(allowGlue bool) bool {
		bySrc := map[pg.ClusterID][]*group{}
		for _, g := range all {
			if g.deleted || g.dests&bit == 0 {
				continue
			}
			if g.glue && !allowGlue {
				continue
			}
			bySrc[g.from] = append(bySrc[g.from], g)
		}
		srcs := make([]pg.ClusterID, 0, len(bySrc))
		for s := range bySrc {
			if len(bySrc[s]) >= 2 {
				srcs = append(srcs, s)
			}
		}
		if len(srcs) == 0 {
			return false
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		gs := bySrc[srcs[0]]
		sort.SliceStable(gs, func(i, j int) bool { return len(gs[i].values) < len(gs[j].values) })
		a, b := gs[1], gs[0]
		if b.glue && !a.glue {
			a, b = b, a
		}
		mergeInto(a, b)
		return true
	}
	return try(false) || try(true)
}

func mergeInto(dst, src *group) {
	dst.dests |= src.dests
	dst.values = append(dst.values, src.values...)
	for v, m := range src.asked {
		dst.asked[v] |= m
	}
	sort.Slice(dst.values, func(i, j int) bool { return dst.values[i] < dst.values[j] })
	if src.wires > dst.wires {
		dst.wires = src.wires
	}
	src.deleted = true
}

func compact(groups []*group) []*group {
	out := groups[:0]
	for _, g := range groups {
		if !g.deleted {
			out = append(out, g)
		}
	}
	return out
}

func live(groups []*group) int {
	n := 0
	for _, g := range groups {
		if !g.deleted {
			n++
		}
	}
	return n
}

func destsHaveSpare(g *group, inUsed map[pg.ClusterID]int, budget func(pg.ClusterID) int) bool {
	for m := g.dests; m != 0; {
		d := pg.ClusterID(bits.TrailingZeros64(m))
		m &^= 1 << uint(d)
		if inUsed[d] >= budget(d) {
			return false
		}
	}
	return true
}

func maskToClusters(mask uint64) []pg.ClusterID {
	var out []pg.ClusterID
	for m := mask; m != 0; {
		d := pg.ClusterID(bits.TrailingZeros64(m))
		m &^= 1 << uint(d)
		out = append(out, d)
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ILIs derives the Inter Level Interface of every regular cluster from a
// mapped result: the wires it listens to (inputs) and the wires it drives
// (outputs), with their value lists (§4.1, Figure 9c).
func (r *Result) ILIs(f *pg.Flow) map[pg.ClusterID]*ILI {
	out := map[pg.ClusterID]*ILI{}
	get := func(c pg.ClusterID) *ILI {
		if out[c] == nil {
			out[c] = &ILI{Cluster: c}
		}
		return out[c]
	}
	for _, w := range r.Wires {
		if f.T.Cluster(w.From).Kind == pg.Regular {
			get(w.From).Outputs = append(get(w.From).Outputs, w.Values)
		}
		for _, d := range w.Dests {
			if f.T.Cluster(d).Kind == pg.Regular {
				get(d).Inputs = append(get(d).Inputs, w.Values)
			}
		}
	}
	return out
}

// Verify checks a mapped result against the flow it came from: every copy
// pair (value, destination) of the flow is delivered by some wire, and no
// cluster exceeds its wire budgets. It is the mapping half of the
// coherency checker.
func (r *Result) Verify(f *pg.Flow, outWires, inWires int) error {
	delivered := map[[2]int64]bool{}
	for _, w := range r.Wires {
		for _, d := range w.Dests {
			for _, v := range w.Values {
				delivered[[2]int64{int64(v), int64(d)}] = true
			}
		}
	}
	var err error
	f.RealArcs(func(from, to pg.ClusterID, vals []pg.ValueID) {
		for _, v := range vals {
			if !delivered[[2]int64{int64(v), int64(to)}] {
				err = fmt.Errorf("mapper: value %d never delivered to cluster %d", v, to)
			}
		}
	})
	if err != nil {
		return err
	}
	for c, used := range r.OutUsed {
		if f.T.Cluster(c).Kind == pg.Regular && used > outWires {
			return fmt.Errorf("mapper: cluster %d uses %d output wires > %d", c, used, outWires)
		}
	}
	for c, used := range r.InUsed {
		switch f.T.Cluster(c).Kind {
		case pg.Regular:
			if used > inWires {
				return fmt.Errorf("mapper: cluster %d uses %d input wires > %d", c, used, inWires)
			}
		case pg.OutNode:
			if used > 1 {
				return fmt.Errorf("mapper: output node %d fed by %d wires", c, used)
			}
		}
	}
	return nil
}
