package mapper

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/pg"
	"repro/internal/see"
)

// TestMapRandomizedFlows: solve random synthetic DDGs on random small
// topologies with the SEE, then Map and Verify. Every mapped result must
// deliver every copy within the wire budgets (or Map must error).
func TestMapRandomizedFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		d := kernels.Synthetic(kernels.SynthConfig{
			Ops:  20 + rng.Intn(80),
			Seed: rng.Int63(),
		})
		clusters := 2 + rng.Intn(5)
		wires := 1 + rng.Intn(6)
		tp := pg.NewTopology("rand", clusters, 4, wires, 0)
		tp.AllToAll()
		f := pg.NewFlow(tp, d)
		ws := make([]graph.NodeID, d.Len())
		for i := range ws {
			ws[i] = graph.NodeID(i)
		}
		res, err := see.Solve(context.Background(), f, ws, see.Config{BeamWidth: 2, CandWidth: 2})
		if err != nil {
			continue // tight topologies may be infeasible; not Map's concern
		}
		m, err := Map(context.Background(), res.Flow, wires, wires)
		if err != nil {
			t.Logf("trial %d: map infeasible (%d clusters, %d wires): %v", trial, clusters, wires, err)
			continue
		}
		if err := m.Verify(res.Flow, wires, wires); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if m.Pollution < 0 || m.MaxWireLoad < 0 {
			t.Fatalf("trial %d: negative accounting: %+v", trial, m)
		}
	}
}

// TestILIsConsistentWithWires: every ILI input list must be exactly some
// wire's value list whose destination includes the cluster, and outputs
// likewise.
func TestILIsConsistentWithWires(t *testing.T) {
	d := kernels.IDCTHor()
	tp := pg.NewTopology("lvl0", 4, 16, 8, 0)
	tp.AllToAll()
	f := pg.NewFlow(tp, d)
	ws := make([]graph.NodeID, d.Len())
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	res, err := see.Solve(context.Background(), f, ws, see.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(context.Background(), res.Flow, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ilis := m.ILIs(res.Flow)
	// Count (cluster, wire) pairs from both sides.
	inPairs, outPairs := 0, 0
	for _, w := range m.Wires {
		if res.Flow.T.Cluster(w.From).Kind == pg.Regular {
			outPairs++
		}
		for _, dcl := range w.Dests {
			if res.Flow.T.Cluster(dcl).Kind == pg.Regular {
				inPairs++
			}
		}
	}
	gotIn, gotOut := 0, 0
	for _, ili := range ilis {
		gotIn += len(ili.Inputs)
		gotOut += len(ili.Outputs)
	}
	if gotIn != inPairs || gotOut != outPairs {
		t.Errorf("ILI pairs %d/%d, wires say %d/%d", gotIn, gotOut, inPairs, outPairs)
	}
}

// TestMapDeterministic: identical flows map identically.
func TestMapDeterministic(t *testing.T) {
	build := func() *Result {
		d := kernels.MPEG2Inter()
		tp := pg.NewTopology("lvl0", 4, 16, 8, 0)
		tp.AllToAll()
		f := pg.NewFlow(tp, d)
		ws := make([]graph.NodeID, d.Len())
		for i := range ws {
			ws[i] = graph.NodeID(i)
		}
		res, err := see.Solve(context.Background(), f, ws, see.Config{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Map(context.Background(), res.Flow, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	if len(a.Wires) != len(b.Wires) {
		t.Fatalf("wire counts differ: %d vs %d", len(a.Wires), len(b.Wires))
	}
	for i := range a.Wires {
		if a.Wires[i].From != b.Wires[i].From || len(a.Wires[i].Values) != len(b.Wires[i].Values) {
			t.Fatalf("wire %d differs", i)
		}
	}
}
