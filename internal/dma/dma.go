// Package dma implements the DMA-programming analysis the paper lists as
// future work (§5): deriving, for every memory operation of a kernel, the
// stream descriptor the programmable DMA engine needs so that input
// values are buffered ahead of the loop and "the loop execution [stays]
// synchronous with the memory accesses" (§2.2).
//
// The analysis symbolically evaluates the address dataflow of each
// load/store. Media kernels address memory through two idioms, both of
// which the analysis recognizes exactly:
//
//   - linear streams: induction values plus constant offsets
//     (addr(t) = base + step·t + k);
//   - modular streams: the wrap-around walker recurrence
//     sel' = (sel+s < lim) ? sel+s : 0, again plus offsets
//     (addr(t) = ((init+s·(t+1)) wrapped into [0,lim)) + k).
//
// A kernel whose memory operations are all recognized can be served
// entirely by descriptor-programmed DMA: no address needs to cross the
// fabric-to-DMA interface at run time beyond the initial programming.
package dma

import (
	"fmt"
	"strings"

	"repro/internal/ddg"
	"repro/internal/graph"
)

// Kind classifies an address stream.
type Kind int

const (
	// Unknown means the address dataflow does not match a programmable
	// stream idiom; the DMA must be driven by per-iteration requests.
	Unknown Kind = iota
	// Linear is base + step·t.
	Linear
	// Modular is a wrap-around walker plus offset: the address sweeps
	// [Offset, Offset+Wrap) with stride Step, restarting at Offset.
	Modular
)

func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Modular:
		return "modular"
	default:
		return "unknown"
	}
}

// Descriptor is one programmable stream.
type Descriptor struct {
	Node   graph.NodeID // the load/store
	Store  bool
	Kind   Kind
	Base   int64 // first address (iteration 0)
	Step   int64 // per-iteration stride
	Wrap   int64 // modular period (Modular only)
	Offset int64 // constant displacement from the walker (Modular only)
}

// String renders the descriptor as the DMA programming line.
func (d Descriptor) String() string {
	op := "load"
	if d.Store {
		op = "store"
	}
	switch d.Kind {
	case Linear:
		return fmt.Sprintf("%s v%d: linear base=%d step=%d", op, d.Node, d.Base, d.Step)
	case Modular:
		return fmt.Sprintf("%s v%d: modular base=%d step=%d wrap=%d offset=%d", op, d.Node, d.Base, d.Step, d.Wrap, d.Offset)
	default:
		return fmt.Sprintf("%s v%d: UNPROGRAMMABLE", op, d.Node)
	}
}

// Program is the DMA programming of one kernel.
type Program struct {
	Kernel      string
	Descriptors []Descriptor
	// Programmable reports whether every memory op was recognized.
	Programmable bool
}

// Coverage returns the fraction of memory ops with known descriptors.
func (p *Program) Coverage() float64 {
	if len(p.Descriptors) == 0 {
		return 1
	}
	known := 0
	for _, d := range p.Descriptors {
		if d.Kind != Unknown {
			known++
		}
	}
	return float64(known) / float64(len(p.Descriptors))
}

// WriteText prints the programming.
func (p *Program) WriteText(b *strings.Builder) {
	fmt.Fprintf(b, ".dma ; kernel %s (%d streams, coverage %.0f%%)\n", p.Kernel, len(p.Descriptors), 100*p.Coverage())
	for _, d := range p.Descriptors {
		fmt.Fprintf(b, "  %s\n", d)
	}
}

// expr is the symbolic value of an address-producing node.
type expr struct {
	kind   Kind
	base   int64 // Linear: value at t=0. Modular: walker init+step (value at t=0)
	step   int64
	wrap   int64
	offset int64 // constant displacement applied after the wrap
	ok     bool
}

// Analyze derives the DMA programming of d.
func Analyze(d *ddg.DDG) *Program {
	memo := make(map[graph.NodeID]expr)
	p := &Program{Kernel: d.Name, Programmable: true}
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if !n.Op.IsMem() {
			continue
		}
		var addr graph.NodeID = -1
		d.G.In(n.ID, func(e graph.Edge) {
			if d.Port(e.ID) == 0 && e.Distance == 0 {
				addr = e.From
			}
		})
		desc := Descriptor{Node: n.ID, Store: n.Op == ddg.OpStore}
		if addr >= 0 {
			if ex := analyzeNode(d, addr, memo); ex.ok {
				desc.Kind = ex.kind
				desc.Step = ex.step
				desc.Wrap = ex.wrap
				desc.Offset = ex.offset
				desc.Base = ex.base + ex.offset
			}
		}
		if desc.Kind == Unknown {
			p.Programmable = false
		}
		p.Descriptors = append(p.Descriptors, desc)
	}
	return p
}

func analyzeNode(d *ddg.DDG, n graph.NodeID, memo map[graph.NodeID]expr) expr {
	if ex, ok := memo[n]; ok {
		return ex
	}
	// Mark in-progress to cut cycles (walkers are matched structurally,
	// not by recursion through their back edge).
	memo[n] = expr{}
	ex := analyzeNodeUncached(d, n, memo)
	memo[n] = ex
	return ex
}

func analyzeNodeUncached(d *ddg.DDG, n graph.NodeID, memo map[graph.NodeID]expr) expr {
	node := d.Node(n)
	switch node.Op {
	case ddg.OpConst:
		return expr{kind: Linear, base: node.Imm, ok: true}
	case ddg.OpIV:
		return expr{kind: Linear, base: node.Imm, step: node.Step, ok: true}
	case ddg.OpAdd:
		return analyzeAdd(d, n, memo)
	case ddg.OpSelect:
		if w, ok := matchWalker(d, n); ok {
			return w
		}
	}
	// A self-incrementing pointer: addi(self@-1, k).
	if node.Op == ddg.OpAdd && node.HasImm2 {
		selfLoop := false
		d.G.In(n, func(e graph.Edge) {
			if e.From == n && e.Distance == 1 {
				selfLoop = true
			}
		})
		if selfLoop {
			return expr{kind: Linear, base: node.Init + node.Imm2, step: node.Imm2, ok: true}
		}
	}
	return expr{}
}

func analyzeAdd(d *ddg.DDG, n graph.NodeID, memo map[graph.NodeID]expr) expr {
	node := d.Node(n)
	// Self-incrementing pointer first (addi over a distance-1 self edge).
	if node.HasImm2 {
		selfLoop := false
		d.G.In(n, func(e graph.Edge) {
			if e.From == n && e.Distance == 1 {
				selfLoop = true
			}
		})
		if selfLoop {
			return expr{kind: Linear, base: node.Init + node.Imm2, step: node.Imm2, ok: true}
		}
	}
	var operands []expr
	bad := false
	d.G.In(n, func(e graph.Edge) {
		if e.Distance != 0 {
			bad = true
			return
		}
		operands = append(operands, analyzeNode(d, e.From, memo))
	})
	if bad {
		return expr{}
	}
	if node.HasImm2 {
		operands = append(operands, expr{kind: Linear, base: node.Imm2, ok: true})
	}
	if len(operands) != 2 || !operands[0].ok || !operands[1].ok {
		return expr{}
	}
	a, b := operands[0], operands[1]
	// Keep the modular part (at most one) as the primary term.
	if b.kind == Modular {
		a, b = b, a
	}
	if b.kind == Modular {
		return expr{} // modular+modular not programmable
	}
	switch a.kind {
	case Linear:
		return expr{kind: Linear, base: a.base + b.base, step: a.step + b.step, ok: true}
	case Modular:
		if b.step != 0 {
			return expr{} // modular plus a moving term
		}
		a.offset += b.base
		return a
	}
	return expr{}
}

// matchWalker recognizes sel = select(cmplt(addi(sel@-1, s), lim), addi, zero).
func matchWalker(d *ddg.DDG, sel graph.NodeID) (expr, bool) {
	var cond, a, b graph.NodeID = -1, -1, -1
	ok := true
	d.G.In(sel, func(e graph.Edge) {
		if e.Distance != 0 {
			ok = false
			return
		}
		switch d.Port(e.ID) {
		case 0:
			cond = e.From
		case 1:
			a = e.From
		case 2:
			b = e.From
		}
	})
	if !ok || cond < 0 || a < 0 || b < 0 {
		return expr{}, false
	}
	// b must be the constant reset value, and the modular model assumes a
	// reset to the start of the window.
	nb := d.Node(b)
	if nb.Op != ddg.OpConst || nb.Imm != 0 {
		return expr{}, false
	}
	// a must be addi(sel@-1, s).
	na := d.Node(a)
	if na.Op != ddg.OpAdd || !na.HasImm2 {
		return expr{}, false
	}
	feedsBack := false
	d.G.In(a, func(e graph.Edge) {
		if e.From == sel && e.Distance == 1 {
			feedsBack = true
		}
	})
	if !feedsBack {
		return expr{}, false
	}
	// cond must be cmplt(a, limConst) (limit as const node or immediate).
	nc := d.Node(cond)
	if nc.Op != ddg.OpCmpLT {
		return expr{}, false
	}
	lim := int64(-1)
	if nc.HasImm2 {
		lim = nc.Imm2
	}
	condOK := true
	d.G.In(cond, func(e graph.Edge) {
		switch d.Port(e.ID) {
		case 0:
			if e.From != a {
				condOK = false
			}
		case 1:
			if l := d.Node(e.From); l.Op == ddg.OpConst {
				lim = l.Imm
			} else {
				condOK = false
			}
		}
	})
	if !condOK || lim <= 0 {
		return expr{}, false
	}
	step := na.Imm2
	init := d.Node(sel).Init
	return expr{kind: Modular, base: init + step, step: step, wrap: lim, ok: true}, true
}
