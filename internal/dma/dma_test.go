package dma

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/kernels"
)

func TestAllKernelsFullyProgrammable(t *testing.T) {
	// The paper's media kernels address memory exclusively through linear
	// and wrap-around streams; the DMA analysis must recognize all of
	// them (§2.2: "the input/output streams are characterized by a highly
	// regular structure").
	for _, k := range kernels.All() {
		d := k.Build()
		p := Analyze(d)
		if !p.Programmable {
			for _, desc := range p.Descriptors {
				if desc.Kind == Unknown {
					t.Errorf("%s: memory op v%d not programmable", k.Name, desc.Node)
				}
			}
		}
		if got := len(p.Descriptors); got != d.Stats().MemOps {
			t.Errorf("%s: %d descriptors for %d memory ops", k.Name, got, d.Stats().MemOps)
		}
		if p.Coverage() != 1.0 {
			t.Errorf("%s: coverage %.2f", k.Name, p.Coverage())
		}
	}
}

func TestLinearStream(t *testing.T) {
	d := ddg.New("lin")
	iv := d.AddIV(100, 4, "iv")
	a := d.AddOpImm(ddg.OpAdd, "a", 3)
	d.AddDep(iv, a, 0, 0)
	ld := d.AddOp(ddg.OpLoad, "ld")
	d.AddDep(a, ld, 0, 0)
	p := Analyze(d)
	if len(p.Descriptors) != 1 {
		t.Fatalf("descriptors = %d", len(p.Descriptors))
	}
	desc := p.Descriptors[0]
	if desc.Kind != Linear || desc.Base != 103 || desc.Step != 4 {
		t.Errorf("desc = %+v", desc)
	}
}

func TestModularStream(t *testing.T) {
	// fir2dim's walker: verify the descriptor predicts the actual
	// addresses of the first iterations.
	d := kernels.Fir2Dim()
	p := Analyze(d)
	var walkers int
	for _, desc := range p.Descriptors {
		if desc.Kind == Modular {
			walkers++
			if desc.Wrap != kernels.FirCols {
				t.Errorf("wrap = %d, want %d", desc.Wrap, kernels.FirCols)
			}
			if desc.Step != 1 {
				t.Errorf("step = %d", desc.Step)
			}
		}
	}
	if walkers != 9 { // the nine pixel loads
		t.Errorf("modular descriptors = %d, want 9", walkers)
	}
}

func TestModularDescriptorPredictsAddresses(t *testing.T) {
	// Check descriptor semantics against the interpreter: record the
	// addresses the first load actually touches over several iterations
	// (crossing the wrap) and compare with the descriptor's prediction.
	d := kernels.Fir2Dim()
	p := Analyze(d)
	// First descriptor is the first load in node order (offset 0 from the walker).
	var d0 Descriptor
	found := false
	for _, desc := range p.Descriptors {
		if desc.Kind == Modular && desc.Offset == 0 && !desc.Store {
			d0, found = desc, true
			break
		}
	}
	if !found {
		t.Fatal("no offset-0 modular load")
	}
	predict := func(t int64) int64 {
		v := d0.Base - d0.Offset + d0.Step*t
		for v >= d0.Wrap {
			v -= d0.Wrap
		}
		return v + d0.Offset
	}
	// Reference walker (as in Fir2DimRef).
	base := int64(0)
	for it := int64(0); it < 100; it++ {
		nb := base + 1
		if nb < kernels.FirCols {
			base = nb
		} else {
			base = 0
		}
		if got := predict(it); got != base {
			t.Fatalf("iter %d: descriptor predicts %d, walker at %d", it, got, base)
		}
	}
}

func TestUnknownStream(t *testing.T) {
	// Data-dependent address (pointer chasing): unprogrammable.
	d := ddg.New("chase")
	iv := d.AddIV(0, 1, "iv")
	l1 := d.AddOp(ddg.OpLoad, "l1")
	d.AddDep(iv, l1, 0, 0)
	l2 := d.AddOp(ddg.OpLoad, "l2")
	d.AddDep(l1, l2, 0, 0) // address = loaded value
	p := Analyze(d)
	if p.Programmable {
		t.Fatal("pointer chasing reported programmable")
	}
	if p.Coverage() != 0.5 {
		t.Errorf("coverage = %v, want 0.5", p.Coverage())
	}
}

func TestSelfIncrementingPointer(t *testing.T) {
	d := ddg.New("sp")
	outp := d.AddOpImm(ddg.OpAdd, "outp", 2)
	d.AddDep(outp, outp, 0, 1)
	d.SetInit(outp, 98)
	val := d.AddConst(7, "v")
	st := d.AddOp(ddg.OpStore, "st")
	d.AddDep(outp, st, 0, 0)
	d.AddDep(val, st, 1, 0)
	p := Analyze(d)
	desc := p.Descriptors[0]
	if desc.Kind != Linear || desc.Base != 100 || desc.Step != 2 || !desc.Store {
		t.Errorf("desc = %+v", desc)
	}
}

func TestWriteTextAndString(t *testing.T) {
	p := Analyze(kernels.MPEG2Inter())
	var b strings.Builder
	p.WriteText(&b)
	out := b.String()
	for _, want := range []string{".dma", "coverage 100%", "linear", "store"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if Unknown.String() != "unknown" || Linear.String() != "linear" || Modular.String() != "modular" {
		t.Error("Kind strings wrong")
	}
}

func TestDescriptorStringForms(t *testing.T) {
	cases := []struct {
		d    Descriptor
		want string
	}{
		{Descriptor{Node: 3, Kind: Linear, Base: 10, Step: 2}, "load v3: linear base=10 step=2"},
		{Descriptor{Node: 4, Store: true, Kind: Modular, Base: 5, Step: 1, Wrap: 64, Offset: 5}, "store v4: modular base=5 step=1 wrap=64 offset=5"},
		{Descriptor{Node: 5, Kind: Unknown}, "load v5: UNPROGRAMMABLE"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestWalkerVariantsRejected(t *testing.T) {
	// select whose reset is non-zero or whose condition is not a cmplt of
	// the incremented pointer: not a recognizable stream.
	build := func(mutate func(d *ddg.DDG, parts map[string]int64) map[string]int64) *ddg.DDG {
		d := ddg.New("w")
		parts := mutate(d, map[string]int64{"reset": 0, "lim": 64, "step": 1})
		zero := d.AddConst(parts["reset"], "z")
		lim := d.AddConst(parts["lim"], "lim")
		nb := d.AddOpImm(ddg.OpAdd, "nb", parts["step"])
		w := d.AddOp(ddg.OpCmpLT, "w")
		sel := d.AddOp(ddg.OpSelect, "sel")
		d.AddDep(sel, nb, 0, 1)
		d.AddDep(nb, w, 0, 0)
		d.AddDep(lim, w, 1, 0)
		d.AddDep(w, sel, 0, 0)
		d.AddDep(nb, sel, 1, 0)
		d.AddDep(zero, sel, 2, 0)
		ld := d.AddOp(ddg.OpLoad, "ld")
		d.AddDep(sel, ld, 0, 0)
		return d
	}
	good := build(func(d *ddg.DDG, p map[string]int64) map[string]int64 { return p })
	if !Analyze(good).Programmable {
		t.Fatal("canonical walker rejected")
	}
	badReset := build(func(d *ddg.DDG, p map[string]int64) map[string]int64 {
		p["reset"] = 7
		return p
	})
	if Analyze(badReset).Programmable {
		t.Error("non-zero reset accepted")
	}
}

func TestMulAddressUnknown(t *testing.T) {
	// addr = iv * iv: quadratic streams are not programmable.
	d := ddg.New("q")
	iv := d.AddIV(1, 1, "iv")
	m := d.AddOp(ddg.OpMul, "m")
	d.AddDep(iv, m, 0, 0)
	d.AddDep(iv, m, 1, 0)
	ld := d.AddOp(ddg.OpLoad, "ld")
	d.AddDep(m, ld, 0, 0)
	if Analyze(d).Programmable {
		t.Error("quadratic address accepted")
	}
}

func TestLoopCarriedAddUnknown(t *testing.T) {
	// add with a loop-carried operand that is not the self-increment idiom.
	d := ddg.New("lc")
	x := d.AddIV(0, 1, "x")
	y := d.AddOp(ddg.OpAdd, "y")
	d.AddDep(x, y, 0, 0)
	d.AddDep(y, y, 1, 1) // y += y@-1 — geometric, unprogrammable
	ld := d.AddOp(ddg.OpLoad, "ld")
	d.AddDep(y, ld, 0, 0)
	if Analyze(d).Programmable {
		t.Error("geometric address accepted")
	}
}

func TestModularPlusMovingTermUnknown(t *testing.T) {
	// walker + iv (both moving): not a single programmable stream.
	d := kernels.Fir2Dim() // borrow nothing; build fresh below
	_ = d
	w := ddg.New("wm")
	zero := w.AddConst(0, "z")
	lim := w.AddConst(16, "lim")
	nb := w.AddOpImm(ddg.OpAdd, "nb", 1)
	cc := w.AddOp(ddg.OpCmpLT, "w")
	sel := w.AddOp(ddg.OpSelect, "sel")
	w.AddDep(sel, nb, 0, 1)
	w.AddDep(nb, cc, 0, 0)
	w.AddDep(lim, cc, 1, 0)
	w.AddDep(cc, sel, 0, 0)
	w.AddDep(nb, sel, 1, 0)
	w.AddDep(zero, sel, 2, 0)
	iv := w.AddIV(0, 4, "iv")
	sum := w.AddOp(ddg.OpAdd, "sum")
	w.AddDep(sel, sum, 0, 0)
	w.AddDep(iv, sum, 1, 0)
	ld := w.AddOp(ddg.OpLoad, "ld")
	w.AddDep(sum, ld, 0, 0)
	if Analyze(w).Programmable {
		t.Error("modular + moving linear accepted")
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenProgramming locks the DMA programming format for all kernels.
func TestGoldenProgramming(t *testing.T) {
	var b strings.Builder
	for _, k := range append(kernels.All(), kernels.Extras()...) {
		Analyze(k.Build()).WriteText(&b)
	}
	golden := filepath.Join("testdata", "programs.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if b.String() != string(want) {
		t.Error("DMA programming drifted from golden file (rerun with -update if intended)")
	}
}
