// Package sim is a cycle-driven functional simulator of the DSPFabric
// coprocessor executing a kernel-only modulo schedule (§2.2): overlapped
// loop iterations issue one operation per computation node per cycle,
// operands migrate between CNs into the receivers' input-buffer regions,
// and memory traffic flows through the programmable DMA's limited request
// ports.
//
// The simulator is the end-to-end check of the whole compilation flow:
// after HCA clusterizes a kernel and modsched schedules it, Execute runs
// the schedule against a memory image and the result is compared with the
// sequential reference semantics of ddg.Interpret. It also reports the
// microarchitectural pressure the paper's hardware bounds imply: peak
// input-buffer occupancy per CN and peak simultaneous DMA requests.
package sim

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/modsched"
)

// Stats summarizes one execution.
type Stats struct {
	Cycles        int64 // total cycles simulated (ramp-up + kernel + drain)
	Executed      int64 // dynamic operations executed
	Receives      int64 // dynamic operand migrations between CNs
	MaxBufferOcc  int   // peak pending values in any CN's input buffers
	BufferCap     int   // configured buffer capacity (0 = unchecked)
	PeakDMA       int   // peak DMA requests issued in one cycle
	IterationsRun int
	// WirePeak[l] is the largest number of values crossing hierarchy
	// level l in a single cycle; WireOvercommitCycles counts cycles where
	// a level's aggregate wire supply was exceeded (the transfers then
	// smear across neighboring cycles through the input buffers).
	WirePeak             []int
	WireOvercommitCycles int
}

// Config tunes the simulation.
type Config struct {
	// BufferCap, when positive, makes Execute fail if any CN's pending
	// input values exceed it (models finite input-buffer regions).
	BufferCap int
}

// Execute runs iterations iterations of the scheduled loop d (node i on
// CN sched.CN[i], start cycle sched.Time[i] within its iteration) against
// mem. The DDG's own semantics (ddg.Eval) are used for every operation,
// so the simulator cannot diverge from the reference interpreter on
// operation behaviour — what it adds is the machine's timing and resource
// model, which it asserts cycle by cycle.
func Execute(d *ddg.DDG, sched *modsched.Schedule, mc *machine.Config, mem ddg.Memory, iterations int, cfg Config) (*Stats, error) {
	if err := modsched.Verify(d, sched, mc); err != nil {
		return nil, fmt.Errorf("sim: %v", err)
	}
	n := d.Len()
	maxDist := 0
	d.G.Edges(func(e graph.Edge) {
		if e.Distance > maxDist {
			maxDist = e.Distance
		}
	})
	depth := maxDist + sched.Stages + 2
	history := make([]int64, depth*n)
	written := make([]bool, depth*n)

	// Group nodes by kernel slot for fast per-cycle issue.
	bySlot := make([][]graph.NodeID, sched.II)
	for i := 0; i < n; i++ {
		s := sched.Time[i] % sched.II
		bySlot[s] = append(bySlot[s], graph.NodeID(i))
	}

	// remoteReaders[p] lists consumers of p on other CNs (for buffer
	// accounting): the value sits in the consumer CN's input buffer from
	// its arrival until the consumer issues.
	type reader struct {
		node graph.NodeID
		dist int
	}
	remoteReaders := make([][]reader, n)
	d.G.Edges(func(e graph.Edge) {
		if sched.CN[e.From] != sched.CN[e.To] {
			remoteReaders[e.From] = append(remoteReaders[e.From], reader{e.To, e.Distance})
		}
	})

	// Wire-traffic accounting: a value produced on one CN and consumed on
	// another crosses the hierarchy at the level where their group paths
	// diverge; count the crossings entering each level per cycle and track
	// the peak against the level's aggregate wire supply.
	divergeLevel := func(a, b int) int {
		for l := 0; l < mc.NumLevels(); l++ {
			sz := mc.CNsPerGroup(l)
			if a/sz != b/sz {
				return l
			}
			a, b = a%sz, b%sz
		}
		return mc.NumLevels() - 1
	}
	stats := &Stats{BufferCap: cfg.BufferCap, IterationsRun: iterations}
	stats.WirePeak = make([]int, mc.NumLevels())
	wireThisCycle := make([]int, mc.NumLevels())
	lastCycle := int64(iterations-1)*int64(sched.II) + int64(maxTime(sched))
	pending := make([]int, mc.TotalCNs()) // values in input buffers per CN
	dmaThisCycle := 0

	for cycle := int64(0); cycle <= lastCycle; cycle++ {
		slot := int(cycle % int64(sched.II))
		dmaThisCycle = 0
		for l := range wireThisCycle {
			wireThisCycle[l] = 0
		}
		for _, nd := range bySlot[slot] {
			iter := (cycle - int64(sched.Time[nd])) / int64(sched.II)
			if iter < 0 || iter >= int64(iterations) {
				continue // predicated off (ramp-up / drain)
			}
			if (cycle-int64(sched.Time[nd]))%int64(sched.II) != 0 {
				continue
			}
			node := &d.Nodes[nd]
			ar := node.Op.Arity()
			var in [3]int64
			if node.HasImm2 {
				in[ar-1] = node.Imm2
			}
			var operr error
			d.G.In(nd, func(e graph.Edge) {
				if operr != nil {
					return
				}
				p := d.Port(e.ID)
				src := iter - int64(e.Distance)
				if src < 0 {
					in[p] = d.Nodes[e.From].Init
					return
				}
				idx := int(src%int64(depth))*n + int(e.From)
				if !written[idx] {
					operr = fmt.Errorf("sim: node %d iter %d reads unwritten value %d@%d (schedule hazard)", nd, iter, e.From, src)
					return
				}
				in[p] = history[idx]
				// The operand leaves the consumer CN's buffer at issue.
				if sched.CN[e.From] != sched.CN[nd] {
					pending[sched.CN[nd]]--
					stats.Receives++
				}
			})
			if operr != nil {
				return nil, operr
			}
			v := ddg.Eval(node, in[:ar], mem, iter)
			idx := int(iter%int64(depth))*n + int(nd)
			history[idx] = v
			written[idx] = true
			stats.Executed++
			if node.Op.IsMem() {
				dmaThisCycle++
			}
			// The produced value enters every remote consumer CN's buffer
			// after the operation's latency (one buffer slot per remote
			// consumer, conservatively charged at production time), and
			// crosses the hierarchy once per distinct consumer group.
			seenGroup := map[int]bool{}
			for _, r := range remoteReaders[nd] {
				pending[sched.CN[r.node]]++
				l := divergeLevel(sched.CN[nd], sched.CN[r.node])
				key := l<<16 | sched.CN[r.node]/maxInt(mc.CNsPerGroup(l), 1)
				if !seenGroup[key] {
					seenGroup[key] = true
					wireThisCycle[l]++
				}
			}
		}
		if dmaThisCycle > stats.PeakDMA {
			stats.PeakDMA = dmaThisCycle
		}
		for l, n := range wireThisCycle {
			if n > stats.WirePeak[l] {
				stats.WirePeak[l] = n
			}
			supply := mc.Levels[l].Groups * mc.Levels[l].OutWires
			if l == mc.NumLevels()-1 && mc.NumLevels() > 1 {
				supply = mc.Levels[l].Groups * mc.CNOutPorts * 4 // crossbar internal lines
			}
			if n > supply {
				stats.WireOvercommitCycles++
			}
		}
		if mc.DMAPorts > 0 && dmaThisCycle > mc.DMAPorts {
			return nil, fmt.Errorf("sim: %d DMA requests in cycle %d > %d ports", dmaThisCycle, cycle, mc.DMAPorts)
		}
		for c, occ := range pending {
			if occ > stats.MaxBufferOcc {
				stats.MaxBufferOcc = occ
			}
			if cfg.BufferCap > 0 && occ > cfg.BufferCap {
				return nil, fmt.Errorf("sim: CN %d input buffer holds %d values > cap %d at cycle %d", c, occ, cfg.BufferCap, cycle)
			}
		}
	}
	stats.Cycles = lastCycle + 1
	return stats, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxTime(s *modsched.Schedule) int {
	m := 0
	for _, t := range s.Time {
		if t > m {
			m = t
		}
	}
	return m
}

// Check runs the schedule against a copy of mem and compares every
// address with the sequential reference execution (ddg.Interpret) of the
// same DDG on another copy. It returns the simulation stats on success.
func Check(d *ddg.DDG, sched *modsched.Schedule, mc *machine.Config, mem ddg.MapMemory, iterations int, cfg Config) (*Stats, error) {
	simMem := ddg.MapMemory{}
	refMem := ddg.MapMemory{}
	for a, v := range mem {
		simMem[a] = v
		refMem[a] = v
	}
	stats, err := Execute(d, sched, mc, simMem, iterations, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := d.Interpret(refMem, iterations); err != nil {
		return nil, err
	}
	for a, v := range refMem {
		if simMem[a] != v {
			return stats, fmt.Errorf("sim: divergence at mem[%d]: simulated %d, reference %d", a, simMem[a], v)
		}
	}
	for a, v := range simMem {
		if _, ok := refMem[a]; !ok && v != 0 {
			return stats, fmt.Errorf("sim: spurious write at mem[%d] = %d", a, v)
		}
	}
	return stats, nil
}
