package sim

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/modsched"
)

func pipeline(t *testing.T, d *ddg.DDG) (*core.Result, *modsched.Schedule, *machine.Config) {
	t.Helper()
	mc := machine.DSPFabric64(8, 8, 8)
	res, err := core.HCA(context.Background(), d, mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := modsched.Run(context.Background(), res.Final, res.FinalCN, mc, modsched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res, s, mc
}

func TestSimulateFir2DimMatchesReference(t *testing.T) {
	res, s, mc := pipeline(t, kernels.Fir2Dim())
	rng := rand.New(rand.NewSource(1))
	mem := ddg.MapMemory{}
	for r := 0; r < 3; r++ {
		for c := 0; c < kernels.FirCols+4; c++ {
			mem[int64(r)*kernels.FirStride+int64(c)] = int64(rng.Intn(512) - 256)
		}
	}
	stats, err := Check(res.Final, s, mc, mem, 50, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed == 0 || stats.Cycles == 0 {
		t.Errorf("stats = %+v", stats)
	}
	t.Logf("fir2dim: II=%d cycles=%d executed=%d receives=%d maxbuf=%d peakDMA=%d",
		s.II, stats.Cycles, stats.Executed, stats.Receives, stats.MaxBufferOcc, stats.PeakDMA)
}

func TestSimulateIDCTMatchesReference(t *testing.T) {
	res, s, mc := pipeline(t, kernels.IDCTHor())
	rng := rand.New(rand.NewSource(2))
	mem := ddg.MapMemory{}
	for i := int64(0); i < 16*8; i++ {
		mem[i] = int64(rng.Intn(2048) - 1024)
	}
	if _, err := Check(res.Final, s, mc, mem, 16, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMPEG2MatchesReference(t *testing.T) {
	res, s, mc := pipeline(t, kernels.MPEG2Inter())
	rng := rand.New(rand.NewSource(3))
	mem := ddg.MapMemory{}
	for i := int64(0); i < 4*24+8; i++ {
		for _, base := range []int64{kernels.MpegPF, kernels.MpegPF + kernels.MpegStride, kernels.MpegPB} {
			mem[base+i] = int64(rng.Intn(256))
		}
	}
	if _, err := Check(res.Final, s, mc, mem, 24, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateH264MatchesReference(t *testing.T) {
	res, s, mc := pipeline(t, kernels.H264Deblock())
	rng := rand.New(rand.NewSource(4))
	mem := ddg.MapMemory{}
	for line := int64(0); line < 3; line++ {
		for c := int64(0); c < kernels.H264Limit+8; c++ {
			mem[line*kernels.H264Stride+c] = int64(rng.Intn(256))
		}
	}
	// Stay below the wrap (64 iterations): cross-wrap aliasing is outside
	// the overlap window only when iterations < wrap distance.
	if _, err := Check(res.Final, s, mc, mem, 40, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateDetectsScheduleHazard(t *testing.T) {
	// A hand-corrupted schedule (dependence violated) must be rejected by
	// the embedded verification.
	d := ddg.New("h")
	a := d.AddConst(1, "a")
	b := d.AddOp(ddg.OpMov, "b")
	d.AddDep(a, b, 0, 0)
	mc := machine.DSPFabric64(8, 8, 8)
	bad := &modsched.Schedule{II: 1, Stages: 1, Time: []int{0, 0}, CN: []int{0, 1}}
	if _, err := Execute(d, bad, mc, ddg.MapMemory{}, 2, Config{}); err == nil {
		t.Fatal("accepted hazardous schedule")
	}
}

func TestSimulateBufferCap(t *testing.T) {
	// A producer feeding a consumer on another CN with a huge schedule
	// distance accumulates buffered values; a tiny cap must trip.
	d := ddg.New("buf")
	p := d.AddIV(0, 1, "p")
	c := d.AddOp(ddg.OpMov, "c")
	d.AddDep(p, c, 0, 0)
	mc := machine.DSPFabric64(8, 8, 8)
	s := &modsched.Schedule{II: 1, Stages: 40, Time: []int{0, 39}, CN: []int{0, 1}}
	if err := modsched.Verify(d, s, mc); err != nil {
		t.Fatal(err)
	}
	_, err := Execute(d, s, mc, ddg.MapMemory{}, 60, Config{BufferCap: 8})
	if err == nil || !strings.Contains(err.Error(), "input buffer") {
		t.Fatalf("err = %v, want buffer overflow", err)
	}
	// Without the cap it must succeed and report the pressure.
	stats, err := Execute(d, s, mc, ddg.MapMemory{}, 60, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxBufferOcc < 30 {
		t.Errorf("MaxBufferOcc = %d, want >= 30", stats.MaxBufferOcc)
	}
}

func TestSimulateRespectsDMAPeak(t *testing.T) {
	res, s, mc := pipeline(t, kernels.IDCTHor())
	mem := ddg.MapMemory{}
	stats, err := Execute(res.Final, s, mc, mem, 8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakDMA > mc.DMAPorts {
		t.Errorf("PeakDMA %d > %d ports", stats.PeakDMA, mc.DMAPorts)
	}
}

func TestCheckDetectsDivergence(t *testing.T) {
	// Corrupt the DDG after scheduling so simulated output differs from
	// reference — impossible by construction here, so instead verify that
	// Check passes cleanly and returns stats (the divergence path is
	// covered by construction of Check itself: compare a store kernel
	// against a reference with a different iteration count).
	d := ddg.New("st")
	addr := d.AddIV(0, 1, "a")
	val := d.AddIV(10, 1, "v")
	st := d.AddOp(ddg.OpStore, "st")
	d.AddDep(addr, st, 0, 0)
	d.AddDep(val, st, 1, 0)
	mc := machine.DSPFabric64(8, 8, 8)
	s, err := modsched.Run(context.Background(), d, []int{0, 1, 2}, mc, modsched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(d, s, mc, ddg.MapMemory{}, 5, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateExtraKernels(t *testing.T) {
	// The beyond-paper kernels run the full pipeline too.
	rng := rand.New(rand.NewSource(31))
	for _, k := range kernels.Extras() {
		res, s, mc := pipeline(t, k.Build())
		mem := ddg.MapMemory{}
		const iters = 12
		switch k.Name {
		case "fft8":
			for i := int64(0); i < 16*iters; i++ {
				mem[i] = int64(rng.Intn(512) - 256)
			}
		case "sad16":
			for i := int64(0); i < 16*iters; i++ {
				mem[kernels.SadCur+i] = int64(rng.Intn(256))
				mem[kernels.SadRef+i] = int64(rng.Intn(256))
			}
		}
		if _, err := Check(res.Final, s, mc, mem, iters, Config{}); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestWireTrafficStats(t *testing.T) {
	res, s, mc := pipeline(t, kernels.IDCTHor())
	stats, err := Execute(res.Final, s, mc, ddg.MapMemory{}, 16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.WirePeak) != mc.NumLevels() {
		t.Fatalf("WirePeak levels = %d", len(stats.WirePeak))
	}
	total := 0
	for l, p := range stats.WirePeak {
		if p < 0 {
			t.Errorf("level %d peak %d", l, p)
		}
		total += p
	}
	if total == 0 {
		t.Error("no wire traffic recorded despite receives")
	}
	t.Logf("idcthor wire peaks per level: %v, overcommit cycles %d", stats.WirePeak, stats.WireOvercommitCycles)
}

func TestWireTrafficSingleCNZero(t *testing.T) {
	// Everything on one CN: no crossings at any level.
	d := ddg.New("one")
	prev := d.AddConst(1, "c")
	for i := 0; i < 3; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	mc := machine.DSPFabric64(8, 8, 8)
	s, err := modsched.Run(context.Background(), d, []int{0, 0, 0, 0}, mc, modsched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Execute(d, s, mc, ddg.MapMemory{}, 8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for l, p := range stats.WirePeak {
		if p != 0 {
			t.Errorf("level %d peak %d, want 0", l, p)
		}
	}
	if stats.WireOvercommitCycles != 0 {
		t.Error("overcommit on single-CN schedule")
	}
}

func TestAsymptoticThroughputEqualsII(t *testing.T) {
	// For large iteration counts, cycles/iteration converges to the II:
	// the pipeline fill/drain amortizes away.
	res, s, mc := pipeline(t, kernels.MPEG2Inter())
	mem := ddg.MapMemory{}
	const iters = 400
	stats, err := Execute(res.Final, s, mc, mem, iters, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cpi := float64(stats.Cycles) / float64(iters)
	if cpi < float64(s.II) || cpi > float64(s.II)+1.0 {
		t.Errorf("cycles/iter = %.2f, want within [%d, %d+1]", cpi, s.II, s.II)
	}
}
