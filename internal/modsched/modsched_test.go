package modsched

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func mcStd() *machine.Config { return machine.DSPFabric64(8, 8, 8) }

func TestScheduleTinyChainOneCN(t *testing.T) {
	d := ddg.New("chain")
	prev := d.AddConst(1, "c")
	for i := 0; i < 3; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	cn := []int{0, 0, 0, 0}
	s, err := Run(context.Background(), d, cn, mcStd(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 ops on one single-issue CN: II = 4.
	if s.II != 4 {
		t.Errorf("II = %d, want 4", s.II)
	}
	if err := Verify(d, s, mcStd()); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleChainAcrossCNsPipelines(t *testing.T) {
	d := ddg.New("chain")
	prev := d.AddConst(1, "c")
	for i := 0; i < 3; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	cn := []int{0, 1, 2, 3}
	s, err := Run(context.Background(), d, cn, mcStd(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 1 {
		t.Errorf("II = %d, want 1 (pipelined)", s.II)
	}
	if s.Stages < 4 {
		t.Errorf("Stages = %d, want >= 4", s.Stages)
	}
}

func TestScheduleRespectsRecurrence(t *testing.T) {
	// Cycle of latency 5 over distance 1 pins II at 5 even with free CNs.
	d := ddg.New("rec")
	a := d.AddOpLatency(ddg.OpMul, "a", 3)
	b := d.AddOpLatency(ddg.OpAdd, "b", 2)
	d.AddDep(a, b, 0, 0)
	d.AddDep(b, a, 0, 1)
	c := d.AddConst(0, "c")
	d.AddDep(c, a, 1, 0)
	d.AddDep(c, b, 1, 0)
	s, err := Run(context.Background(), d, []int{0, 1, 2}, mcStd(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 5 {
		t.Errorf("II = %d, want 5", s.II)
	}
}

func TestScheduleDMALimit(t *testing.T) {
	// 16 loads on 16 different CNs: issue would allow II=1, but 8 DMA
	// ports force II=2.
	d := ddg.New("mem")
	iv := d.AddIV(0, 16, "iv")
	cn := []int{63}
	for i := 0; i < 16; i++ {
		ld := d.AddOp(ddg.OpLoad, "ld")
		d.AddDep(iv, ld, 0, 0)
		cn = append(cn, i)
	}
	s, err := Run(context.Background(), d, cn, mcStd(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 2 {
		t.Errorf("II = %d, want 2 (DMA bound)", s.II)
	}
	if err := Verify(d, s, mcStd()); err != nil {
		t.Fatal(err)
	}
}

func TestMinII(t *testing.T) {
	d := ddg.New("x")
	a := d.AddOp(ddg.OpMov, "a")
	b := d.AddOp(ddg.OpMov, "b")
	c := d.AddConst(0, "c")
	d.AddDep(c, a, 0, 0)
	d.AddDep(c, b, 0, 0)
	// Same CN: issue bound 3 (incl. const).
	if got := MinII(d, []int{0, 0, 0}, mcStd()); got != 3 {
		t.Errorf("MinII = %d, want 3", got)
	}
	// Spread: bound 1.
	if got := MinII(d, []int{0, 1, 2}, mcStd()); got != 1 {
		t.Errorf("MinII = %d, want 1", got)
	}
}

func TestScheduleAllKernelsAfterHCA(t *testing.T) {
	// End-to-end: HCA then modulo scheduling of the final DDG (with
	// receives). The achieved II must be >= the HCA AllLevels bound's
	// per-CN component and within a sane multiple of the paper MII.
	mc := mcStd()
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s, err := Run(context.Background(), res.Final, res.FinalCN, mc, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(res.Final, s, mc); err != nil {
				t.Fatal(err)
			}
			if s.II < res.MII.Rec {
				t.Errorf("II %d below MIIRec %d", s.II, res.MII.Rec)
			}
			t.Logf("%s: scheduled II=%d (MII lower bound %d, paper MII %d), %d stages, %d tries",
				k.Name, s.II, res.MII.Final, k.PaperFinalMII, s.Stages, s.Tries)
		})
	}
}

func TestVerifyCatchesBadSchedule(t *testing.T) {
	d := ddg.New("v")
	a := d.AddConst(1, "a")
	b := d.AddOp(ddg.OpMov, "b")
	d.AddDep(a, b, 0, 0)
	s := &Schedule{II: 2, Time: []int{1, 0}, CN: []int{0, 1}} // b before a+lat
	if err := Verify(d, s, mcStd()); err == nil {
		t.Fatal("accepted dependence violation")
	}
	s2 := &Schedule{II: 2, Time: []int{0, 2}, CN: []int{0, 0}} // same CN slot 0
	if err := Verify(d, s2, mcStd()); err == nil {
		t.Fatal("accepted CN slot conflict")
	}
	s3 := &Schedule{II: 2, Time: []int{0, 1}, CN: []int{0, 1}}
	if err := Verify(d, s3, mcStd()); err != nil {
		t.Fatalf("rejected legal schedule: %v", err)
	}
}

func TestScheduleMismatchedAssignment(t *testing.T) {
	d := ddg.New("x")
	d.AddConst(1, "a")
	if _, err := Run(context.Background(), d, nil, mcStd(), Config{}); err == nil {
		t.Fatal("accepted missing assignment")
	}
}

func TestSlot(t *testing.T) {
	s := &Schedule{II: 3, Time: []int{0, 4, 7}}
	wants := []int{0, 1, 1}
	for i, w := range wants {
		if got := s.Slot(graph.NodeID(i)); got != w {
			t.Errorf("Slot(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	mc := mcStd()
	res, err := core.HCA(context.Background(), kernels.Fir2Dim(), mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), res.Final, res.FinalCN, mc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), res.Final, res.FinalCN, mc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.II != b.II {
		t.Fatal("nondeterministic II")
	}
	for i := range a.Time {
		if a.Time[i] != b.Time[i] {
			t.Fatalf("nondeterministic time at node %d", i)
		}
	}
}

func TestRegPressureSimple(t *testing.T) {
	// v produced at t=0, last use at t=5 with II=2 → ceil-ish (5/2)+1 = 3
	// registers; consumer holds its own value 1 register.
	d := ddg.New("rp")
	v := d.AddConst(1, "v")
	u := d.AddOp(ddg.OpMov, "u")
	d.AddDep(v, u, 0, 0)
	s := &Schedule{II: 2, Stages: 3, Time: []int{0, 5}, CN: []int{0, 1}}
	p := RegPressure(d, s, 2)
	if p[0] != 3 { // lifetime 5 → 5/2+1 = 3
		t.Errorf("press[0] = %d, want 3", p[0])
	}
	if p[1] != 1 {
		t.Errorf("press[1] = %d, want 1", p[1])
	}
	if MaxRegPressure(d, s, 2) != 3 {
		t.Error("MaxRegPressure wrong")
	}
}

func TestRegPressureLoopCarried(t *testing.T) {
	// Distance-2 consumer: lifetime includes 2*II.
	d := ddg.New("rp2")
	v := d.AddConst(1, "v")
	u := d.AddOp(ddg.OpMov, "u")
	d.AddDep(v, u, 0, 2)
	s := &Schedule{II: 3, Stages: 1, Time: []int{0, 1}, CN: []int{0, 0}}
	p := RegPressure(d, s, 1)
	// v: last use 1+3*2=7 → 7/3+1 = 3 regs; u: 1 reg.
	if p[0] != 4 {
		t.Errorf("press[0] = %d, want 4", p[0])
	}
}

func TestRegPressureAllKernels(t *testing.T) {
	mc := mcStd()
	for _, k := range kernels.All() {
		res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Run(context.Background(), res.Final, res.FinalCN, mc, Config{})
		if err != nil {
			t.Fatal(err)
		}
		max := MaxRegPressure(res.Final, s, mc.TotalCNs())
		if max < 1 {
			t.Errorf("%s: MaxRegPressure = %d", k.Name, max)
		}
		t.Logf("%s: II=%d max rotating registers per CN = %d", k.Name, s.II, max)
	}
}

func TestMRTPlaceRemoveConflict(t *testing.T) {
	m := newMRT(2, 4, 1)
	if !m.fits(0, 2, true) {
		t.Fatal("empty MRT rejects")
	}
	m.place(7, 0, 2, true)
	if m.conflictAt(0, 2) != 7 {
		t.Errorf("conflictAt = %d", m.conflictAt(0, 2))
	}
	if m.fits(0, 2, false) {
		t.Error("occupied slot accepted")
	}
	// DMA port full in slot 0: another mem op on a different CN rejected.
	if m.fits(0, 3, true) {
		t.Error("DMA-full slot accepted mem op")
	}
	if !m.fits(0, 3, false) {
		t.Error("non-mem op rejected by DMA")
	}
	m.remove(7, 0, 2, true)
	if m.conflictAt(0, 2) != -1 {
		t.Error("remove did not clear")
	}
	if !m.fits(0, 3, true) {
		t.Error("DMA not released")
	}
	// Removing a non-occupant is a no-op.
	m.place(9, 1, 1, false)
	m.remove(7, 1, 1, false)
	if m.conflictAt(1, 1) != 9 {
		t.Error("remove evicted wrong occupant")
	}
}

func TestEvictDMAPicksLatest(t *testing.T) {
	d := ddg.New("ev")
	iv := d.AddIV(0, 1, "iv")
	l1 := d.AddOp(ddg.OpLoad, "l1")
	d.AddDep(iv, l1, 0, 0)
	l2 := d.AddOp(ddg.OpLoad, "l2")
	d.AddDep(iv, l2, 0, 0)
	cn := []int{0, 1, 2}
	m := newMRT(2, 4, 2)
	time := []int{0, 1, 3} // l2 scheduled later
	placed := []bool{true, true, true}
	m.place(1, 1, 1, true)
	m.place(2, 1, 2, true)
	pending := 0
	evictDMA(d, cn, m, 1, placed, &pending, time)
	if placed[2] {
		t.Error("latest mem op not evicted")
	}
	if placed[1] == false {
		t.Error("earlier mem op evicted")
	}
	if pending != 1 {
		t.Errorf("pending = %d", pending)
	}
}

func TestRunInvalidDDG(t *testing.T) {
	d := ddg.New("bad")
	d.AddOp(ddg.OpAdd, "a") // unconnected operands
	if _, err := Run(context.Background(), d, []int{0}, mcStd(), Config{}); err == nil {
		t.Fatal("invalid DDG accepted")
	}
}

func TestRunMaxIICap(t *testing.T) {
	// An impossible cap forces the search to give up.
	d := ddg.New("cap")
	prev := d.AddConst(1, "c")
	for i := 0; i < 5; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	cn := []int{0, 0, 0, 0, 0, 0}
	if _, err := Run(context.Background(), d, cn, mcStd(), Config{MaxII: 2}); err == nil {
		t.Fatal("expected MaxII failure (issue bound is 6)")
	}
}

func TestVerifyUnscheduledNode(t *testing.T) {
	d := ddg.New("u")
	d.AddConst(1, "c")
	s := &Schedule{II: 1, Time: []int{-1}, CN: []int{0}}
	if err := Verify(d, s, mcStd()); err == nil {
		t.Fatal("unscheduled node accepted")
	}
	s2 := &Schedule{II: 0, Time: []int{0}, CN: []int{0}}
	if err := Verify(d, s2, mcStd()); err == nil {
		t.Fatal("II=0 accepted")
	}
}

func TestListScheduleChain(t *testing.T) {
	// Serial chain of 4 unit-latency ops: makespan 4 regardless of CNs.
	d := ddg.New("lc")
	prev := d.AddConst(1, "c")
	for i := 0; i < 3; i++ {
		m := d.AddOp(ddg.OpMov, "m")
		d.AddDep(prev, m, 0, 0)
		prev = m
	}
	ls, err := RunList(d, []int{0, 1, 2, 3}, mcStd())
	if err != nil {
		t.Fatal(err)
	}
	if ls.Makespan != 4 {
		t.Errorf("Makespan = %d, want 4", ls.Makespan)
	}
}

func TestListScheduleRespectsResources(t *testing.T) {
	// 6 independent consts on one CN: one per cycle.
	d := ddg.New("res")
	for i := 0; i < 6; i++ {
		d.AddConst(int64(i), "c")
	}
	ls, err := RunList(d, []int{0, 0, 0, 0, 0, 0}, mcStd())
	if err != nil {
		t.Fatal(err)
	}
	if ls.Makespan != 6 {
		t.Errorf("Makespan = %d, want 6", ls.Makespan)
	}
	seen := map[int]bool{}
	for _, tm := range ls.Time {
		if seen[tm] {
			t.Fatalf("two ops at cycle %d on one CN", tm)
		}
		seen[tm] = true
	}
}

func TestListScheduleValidOrdering(t *testing.T) {
	mc := mcStd()
	for _, k := range kernels.All() {
		res, err := core.HCA(context.Background(), k.Build(), mc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := RunList(res.Final, res.FinalCN, mc)
		if err != nil {
			t.Fatal(err)
		}
		var verr error
		res.Final.G.Edges(func(e graph.Edge) {
			if e.Distance != 0 || verr != nil {
				return
			}
			if ls.Time[e.To] < ls.Time[e.From]+e.Weight {
				verr = fmt.Errorf("%s: edge %d→%d violated", k.Name, e.From, e.To)
			}
		})
		if verr != nil {
			t.Error(verr)
		}
		// Modulo scheduling must beat (or tie) the non-pipelined loop.
		s, err := Run(context.Background(), res.Final, res.FinalCN, mc, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if s.II > ls.Makespan {
			t.Errorf("%s: modulo II %d worse than list makespan %d", k.Name, s.II, ls.Makespan)
		}
		t.Logf("%s: list %d cycles/iter vs modulo II %d (%.1fx)", k.Name, ls.Makespan, s.II, float64(ls.Makespan)/float64(s.II))
	}
}
