package modsched

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// TestScheduleRandomized: for random synthetic DDGs under random CN
// assignments, the iterative scheduler always finds a verifiable schedule
// at II >= MinII.
func TestScheduleRandomized(t *testing.T) {
	mc := mcStd()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		d := kernels.Synthetic(kernels.SynthConfig{
			Ops:        20 + rng.Intn(120),
			Seed:       rng.Int63(),
			RecLatency: []int{0, 3, 6}[rng.Intn(3)],
		})
		cn := make([]int, d.Len())
		for i := range cn {
			cn[i] = rng.Intn(mc.TotalCNs())
		}
		s, err := Run(context.Background(), d, cn, mc, Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(d, s, mc); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.II < MinII(d, cn, mc) {
			t.Fatalf("trial %d: II %d < MinII %d", trial, s.II, MinII(d, cn, mc))
		}
	}
}

// TestScheduleConcentratedAssignments stresses eviction: everything piled
// onto very few CNs forces II escalation and heavy slot conflicts.
func TestScheduleConcentratedAssignments(t *testing.T) {
	mc := mcStd()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		d := kernels.Synthetic(kernels.SynthConfig{Ops: 40 + rng.Intn(40), Seed: rng.Int63()})
		cn := make([]int, d.Len())
		for i := range cn {
			cn[i] = rng.Intn(2) // two CNs only
		}
		s, err := Run(context.Background(), d, cn, mc, Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Issue bound: at least half the ops on one CN.
		if s.II < d.Len()/2 {
			t.Fatalf("trial %d: II %d below issue bound %d", trial, s.II, d.Len()/2)
		}
		if err := Verify(d, s, mc); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestRegPressurePositiveProperty: register pressure is at least the
// number of nodes per CN (every value holds >= 1 register).
func TestRegPressurePositiveProperty(t *testing.T) {
	mc := mcStd()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		d := kernels.Synthetic(kernels.SynthConfig{Ops: 30 + rng.Intn(60), Seed: rng.Int63()})
		cn := make([]int, d.Len())
		perCN := map[int]int{}
		for i := range cn {
			cn[i] = rng.Intn(16)
			perCN[cn[i]]++
		}
		s, err := Run(context.Background(), d, cn, mc, Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		press := RegPressure(d, s, mc.TotalCNs())
		for c, k := range perCN {
			if press[c] < k {
				t.Fatalf("trial %d: CN %d pressure %d < node count %d", trial, c, press[c], k)
			}
		}
	}
}

// TestScheduleSelfLoopLatency: a self-dependence with latency > distance*II
// must push the II up to the latency.
func TestScheduleSelfLoopLatency(t *testing.T) {
	d := ddg.New("self")
	a := d.AddOpLatency(ddg.OpMul, "a", 7)
	d.AddDep(a, a, 0, 1)
	c := d.AddConst(2, "c")
	d.AddDep(c, a, 1, 0)
	s, err := Run(context.Background(), d, []int{0, 1}, mcStd(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 7 {
		t.Errorf("II = %d, want 7", s.II)
	}
}

// TestScheduleZeroLatencyEdges: weight-0 edges (receives of latency 0
// would be malformed, but explicit 0-latency ops are legal) still order
// correctly.
func TestScheduleZeroLatencyEdges(t *testing.T) {
	d := ddg.New("z")
	a := d.AddOpLatency(ddg.OpMov, "a", 0)
	c := d.AddConst(1, "c")
	d.AddDep(c, a, 0, 0)
	b := d.AddOp(ddg.OpAbs, "b")
	d.AddDep(a, b, 0, 0)
	s, err := Run(context.Background(), d, []int{0, 1, 2}, mcStd(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Time[b] < s.Time[a] {
		t.Errorf("b at %d before a at %d", s.Time[b], s.Time[a])
	}
	_ = graph.NodeID(0)
}
