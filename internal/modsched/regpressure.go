package modsched

import (
	"repro/internal/ddg"
	"repro/internal/graph"
)

// RegPressure computes the rotating-register demand of a schedule: for
// every value, its lifetime spans from production to its last use
// (consumers at iteration distance k read it k·II cycles later), and a
// value alive across s stages needs ceil(lifetime/II) rotating registers
// on its CN (§2.2: DSPFabric CNs provide rotating registers for exactly
// this). The result is indexed by CN; values with no consumer still hold
// one register.
//
// This is the "register pressure" cost factor the paper defers to future
// work (§5, §7); experiment E11 reports it per kernel.
func RegPressure(d *ddg.DDG, s *Schedule, numCN int) []int {
	press := make([]int, numCN)
	lastUse := make([]int, d.Len())
	for i := range lastUse {
		lastUse[i] = s.Time[i] // value exists at least at production
	}
	d.G.Edges(func(e graph.Edge) {
		use := s.Time[e.To] + s.II*e.Distance
		if use > lastUse[e.From] {
			lastUse[e.From] = use
		}
	})
	for i := range d.Nodes {
		life := lastUse[i] - s.Time[i]
		regs := life/s.II + 1
		press[s.CN[i]] += regs
	}
	return press
}

// MaxRegPressure returns the largest per-CN rotating-register demand.
func MaxRegPressure(d *ddg.DDG, s *Schedule, numCN int) int {
	max := 0
	for _, p := range RegPressure(d, s, numCN) {
		if p > max {
			max = p
		}
	}
	return max
}
