package modsched

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
)

// ListSchedule is the non-pipelined baseline: classic resource-constrained
// list scheduling of one iteration at a time (no overlap between
// iterations). Its cycles-per-iteration figure is what a loop pays without
// modulo scheduling; experiment E19 compares it against the kernel-only
// modulo schedule's II to quantify the paper's premise that software
// pipelining is where the fabric's throughput comes from.
type ListSchedule struct {
	// Makespan is the schedule length of one iteration; with no overlap
	// the loop costs Makespan cycles per iteration.
	Makespan int
	// Time[n] is each node's issue cycle within the iteration.
	Time []int
}

// RunList schedules d (with assignment cn) without iteration overlap:
// one op per CN per cycle, the DMA port limit per cycle, and all
// intra-iteration dependences respected. Loop-carried dependences are
// satisfied by construction (the next iteration starts only after the
// makespan), except when a carried latency exceeds the makespan, which
// stretches it.
func RunList(d *ddg.DDG, cn []int, mc *machine.Config) (*ListSchedule, error) {
	if len(cn) != d.Len() {
		return nil, fmt.Errorf("modsched: list: assignment covers %d of %d nodes", len(cn), d.Len())
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("modsched: list: %v", err)
	}
	height, err := d.G.LongestPathTo()
	if err != nil {
		return nil, err
	}
	n := d.Len()
	time := make([]int, n)
	for i := range time {
		time[i] = -1
	}
	predsLeft := make([]int, n)
	ready := make([]int, n) // earliest cycle the node may issue
	d.G.Edges(func(e graph.Edge) {
		if e.Distance == 0 {
			predsLeft[e.To]++
		}
	})
	var readyList []graph.NodeID
	for i := 0; i < n; i++ {
		if predsLeft[i] == 0 {
			readyList = append(readyList, graph.NodeID(i))
		}
	}
	scheduled := 0
	cycle := 0
	for scheduled < n {
		// Issue this cycle: sort ready ops by height (critical first).
		sort.SliceStable(readyList, func(i, j int) bool {
			a, b := readyList[i], readyList[j]
			if height[a] != height[b] {
				return height[a] > height[b]
			}
			return a < b
		})
		usedCN := map[int]bool{}
		dma := 0
		var rest []graph.NodeID
		for _, nd := range readyList {
			if ready[nd] > cycle {
				rest = append(rest, nd)
				continue
			}
			mem := d.Nodes[nd].Op.IsMem()
			if usedCN[cn[nd]] || (mem && mc.DMAPorts > 0 && dma >= mc.DMAPorts) {
				rest = append(rest, nd)
				continue
			}
			usedCN[cn[nd]] = true
			if mem {
				dma++
			}
			time[nd] = cycle
			scheduled++
			d.G.Out(nd, func(e graph.Edge) {
				if e.Distance != 0 {
					return
				}
				if t := cycle + e.Weight; t > ready[e.To] {
					ready[e.To] = t
				}
				predsLeft[e.To]--
				if predsLeft[e.To] == 0 {
					rest = append(rest, e.To)
				}
			})
		}
		readyList = rest
		cycle++
		if cycle > 64*n+64 {
			return nil, fmt.Errorf("modsched: list: no progress (scheduled %d of %d)", scheduled, n)
		}
	}
	// Makespan: last issue + its latency; stretch for carried latencies.
	makespan := 0
	for i := range time {
		if t := time[i] + d.Nodes[i].Latency; t > makespan {
			makespan = t
		}
	}
	d.G.Edges(func(e graph.Edge) {
		if e.Distance == 0 {
			return
		}
		// Consumer of iteration i+dist issues at dist*makespan + t_c; it
		// needs t_p + w ≤ that.
		need := time[e.From] + e.Weight - time[e.To]
		if e.Distance > 0 {
			if m := (need + e.Distance - 1) / e.Distance; m > makespan {
				makespan = m
			}
		}
	})
	return &ListSchedule{Makespan: makespan, Time: time}, nil
}
