// Package modsched implements iterative modulo scheduling (Rau, MICRO'94)
// for the clusterized loop bodies HCA produces — the compilation phase the
// paper defers to future work (§5). Scheduling the post-processed DDG
// (with its receive primitives) on the machine's per-CN issue slots and
// shared DMA ports turns the MII lower bound Table 1 reports into an
// *achieved* initiation interval.
//
// The algorithm is the classic one: start at the MII, order operations by
// height-based priority, place each at the earliest start compatible with
// its placed predecessors, scanning II slots for a resource-legal cycle;
// on conflict, evict the blocking operations and continue with a bounded
// budget; when the budget runs out, increase the II and restart. The
// result is a kernel-only schedule (§2.2): every operation has one slot
// in the II-cycle kernel, executing predicated across overlapped
// iterations.
package modsched

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Schedule is a complete modulo schedule of one loop body.
type Schedule struct {
	II     int
	Stages int // schedule length in stages: ceil((maxTime+1)/II)
	// Time[n] is the start cycle of node n relative to its iteration.
	Time []int
	// CN[n] is the computation node executing n (copied from the input).
	CN []int
	// Tries counts scheduling attempts (II escalations + 1).
	Tries int
}

// Slot returns the kernel slot (cycle mod II) of node n.
func (s *Schedule) Slot(n graph.NodeID) int { return s.Time[n] % s.II }

// Config tunes the scheduler.
type Config struct {
	// BudgetRatio bounds the total placements per attempt at
	// BudgetRatio*len(ops); default 8.
	BudgetRatio int
	// MaxII caps the search; default 4*critical-path length + 16.
	MaxII int
}

// MinII returns the modulo-scheduling lower bound for d placed on cn over
// mc: the recurrence bound, the per-CN issue bound (a single-issue CN
// hosting k operations forces II >= k) and the DMA request bound.
func MinII(d *ddg.DDG, cn []int, mc *machine.Config) int {
	mii := d.MIIRec()
	perCN := map[int]int{}
	mem := 0
	for i := range d.Nodes {
		perCN[cn[i]]++
		if d.Nodes[i].Op.IsMem() {
			mem++
		}
	}
	for _, k := range perCN {
		if k > mii {
			mii = k
		}
	}
	if mc.DMAPorts > 0 {
		if m := (mem + mc.DMAPorts - 1) / mc.DMAPorts; m > mii {
			mii = m
		}
	}
	if mii < 1 {
		mii = 1
	}
	return mii
}

// Run modulo-schedules d (typically an HCA Result's Final DDG) given the
// per-node CN assignment cn on machine mc. It returns the first legal
// schedule found, at the smallest II the iterative search reaches. A
// trace.Recorder installed in ctx gets one span with the II ladder
// statistics (min II bound, achieved II, tries, stages).
func Run(ctx context.Context, d *ddg.DDG, cn []int, mc *machine.Config, cfg Config) (*Schedule, error) {
	_, sp := trace.Start(ctx, "modsched")
	defer sp.End()
	sp.SetStr("kernel", d.Name)
	if len(cn) != d.Len() {
		return nil, fmt.Errorf("modsched: assignment covers %d of %d nodes", len(cn), d.Len())
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("modsched: %v", err)
	}
	if cfg.BudgetRatio <= 0 {
		cfg.BudgetRatio = 8
	}
	height, err := heights(d)
	if err != nil {
		return nil, err
	}
	if cfg.MaxII <= 0 {
		cp, _ := d.G.CriticalPathLength()
		cfg.MaxII = 4*cp + 16
	}

	order := make([]graph.NodeID, d.Len())
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	// Height-based priority: deepest remaining path first, ties by ID.
	sort.SliceStable(order, func(i, j int) bool {
		if height[order[i]] != height[order[j]] {
			return height[order[i]] > height[order[j]]
		}
		return order[i] < order[j]
	})

	tries := 0
	minII := MinII(d, cn, mc)
	sp.SetInt("min_ii", int64(minII))
	for ii := minII; ii <= cfg.MaxII; ii++ {
		tries++
		if s := attempt(d, cn, mc, ii, order, cfg.BudgetRatio*d.Len()); s != nil {
			s.Tries = tries
			sp.SetInt("ii", int64(s.II))
			sp.SetInt("stages", int64(s.Stages))
			sp.SetInt("tries", int64(tries))
			trace.Count(ctx, "modsched.tries", int64(tries))
			return s, nil
		}
	}
	return nil, fmt.Errorf("modsched: no schedule found up to II=%d", cfg.MaxII)
}

func heights(d *ddg.DDG) ([]int, error) {
	h, err := d.G.LongestPathTo()
	if err != nil {
		return nil, fmt.Errorf("modsched: %v", err)
	}
	return h, nil
}

// mrt is the modulo reservation table: per kernel slot, the CN issue
// slots and DMA ports in use.
type mrt struct {
	ii   int
	cnAt []graph.NodeID // [slot*numCN + cn] -> node occupying it (or -1)
	dma  []int          // [slot] -> DMA requests issued
	nCN  int
	dmaP int
}

func newMRT(ii, ncn, dmaPorts int) *mrt {
	m := &mrt{ii: ii, nCN: ncn, dmaP: dmaPorts,
		cnAt: make([]graph.NodeID, ii*ncn), dma: make([]int, ii)}
	for i := range m.cnAt {
		m.cnAt[i] = -1
	}
	return m
}

func (m *mrt) fits(slot, cn int, mem bool) bool {
	if m.cnAt[slot*m.nCN+cn] != -1 {
		return false
	}
	if mem && m.dmaP > 0 && m.dma[slot] >= m.dmaP {
		return false
	}
	return true
}

// conflictAt returns the node occupying (slot, cn), or -1.
func (m *mrt) conflictAt(slot, cn int) graph.NodeID { return m.cnAt[slot*m.nCN+cn] }

func (m *mrt) place(n graph.NodeID, slot, cn int, mem bool) {
	m.cnAt[slot*m.nCN+cn] = n
	if mem {
		m.dma[slot]++
	}
}

func (m *mrt) remove(n graph.NodeID, slot, cn int, mem bool) {
	if m.cnAt[slot*m.nCN+cn] == n {
		m.cnAt[slot*m.nCN+cn] = -1
		if mem {
			m.dma[slot]--
		}
	}
}

// attempt runs one iterative scheduling pass at a fixed II.
func attempt(d *ddg.DDG, cn []int, mc *machine.Config, ii int, priority []graph.NodeID, budget int) *Schedule {
	n := d.Len()
	time := make([]int, n)
	placed := make([]bool, n)
	lastTime := make([]int, n)
	everPlaced := make([]bool, n)
	m := newMRT(ii, mc.TotalCNs(), mc.DMAPorts)

	// Worklist seeded in priority order; evicted nodes requeue.
	queue := append([]graph.NodeID(nil), priority...)
	pos := 0
	pending := n

	for pending > 0 {
		if budget <= 0 {
			return nil
		}
		budget--
		// Pick the highest-priority unplaced node.
		for pos < len(queue) && placed[queue[pos]] {
			pos++
		}
		if pos == len(queue) {
			// Rebuild the queue from remaining unplaced nodes.
			queue = queue[:0]
			for _, nd := range priority {
				if !placed[nd] {
					queue = append(queue, nd)
				}
			}
			pos = 0
			if len(queue) == 0 {
				break
			}
		}
		nd := queue[pos]
		pos++

		// Earliest start from placed predecessors:
		// t(nd) >= t(p) + lat(p) - II*dist.
		estart := 0
		d.G.In(nd, func(e graph.Edge) {
			if !placed[e.From] {
				return
			}
			if t := time[e.From] + e.Weight - ii*e.Distance; t > estart {
				estart = t
			}
		})
		// Never reschedule at the same spot forever.
		if everPlaced[nd] && estart <= lastTime[nd] {
			estart = lastTime[nd] + 1
		}

		mem := d.Nodes[nd].Op.IsMem()
		c := cn[nd]
		slotTime := -1
		for t := estart; t < estart+ii; t++ {
			if t < 0 {
				continue
			}
			if m.fits(t%ii, c, mem) {
				slotTime = t
				break
			}
		}
		force := false
		if slotTime < 0 {
			if estart < 0 {
				estart = 0
			}
			slotTime = estart
			force = true
		}

		if force {
			// Evict whatever occupies the slot (and, for memory ops, make
			// room on the DMA by evicting the lowest-priority memory op in
			// the slot).
			slot := slotTime % ii
			if other := m.conflictAt(slot, c); other != -1 {
				m.remove(other, slot, c, d.Nodes[other].Op.IsMem())
				placed[other] = false
				pending++
			}
			if mem && m.dmaP > 0 && m.dma[slot] >= m.dmaP {
				evictDMA(d, cn, m, slot, placed, &pending, time)
			}
		}
		m.place(nd, slotTime%ii, c, mem)
		time[nd] = slotTime
		placed[nd] = true
		lastTime[nd] = slotTime
		everPlaced[nd] = true
		pending--

		// Evict placed successors whose dependence is now violated.
		d.G.Out(nd, func(e graph.Edge) {
			if !placed[e.To] || e.To == nd {
				return
			}
			if time[e.To] < slotTime+e.Weight-ii*e.Distance {
				m.remove(e.To, time[e.To]%ii, cn[e.To], d.Nodes[e.To].Op.IsMem())
				placed[e.To] = false
				pending++
			}
		})
	}

	// Final legality check (also catches self-dependences).
	maxT := 0
	for i := range time {
		if time[i] > maxT {
			maxT = time[i]
		}
	}
	s := &Schedule{II: ii, Stages: maxT/ii + 1, Time: time, CN: append([]int(nil), cn...)}
	if err := Verify(d, s, mc); err != nil {
		return nil
	}
	return s
}

// evictDMA removes the latest-scheduled memory operation occupying the
// given DMA slot.
func evictDMA(d *ddg.DDG, cn []int, m *mrt, slot int, placed []bool, pending *int, time []int) {
	victim := graph.NodeID(-1)
	for c := 0; c < m.nCN; c++ {
		if nd := m.cnAt[slot*m.nCN+c]; nd != -1 && d.Nodes[nd].Op.IsMem() {
			if victim == -1 || time[nd] > time[victim] {
				victim = nd
			}
		}
	}
	if victim != -1 {
		m.remove(victim, slot, cn[victim], true)
		placed[victim] = false
		*pending++
	}
}

// Verify checks a schedule end to end: every dependence satisfied under
// the modulo timing model, one operation per CN per kernel slot, and the
// DMA port limit respected in every slot.
func Verify(d *ddg.DDG, s *Schedule, mc *machine.Config) error {
	if s.II < 1 {
		return fmt.Errorf("modsched: II %d < 1", s.II)
	}
	var err error
	d.G.Edges(func(e graph.Edge) {
		if err != nil {
			return
		}
		if s.Time[e.To] < s.Time[e.From]+e.Weight-s.II*e.Distance {
			err = fmt.Errorf("modsched: dependence %d→%d violated: t=%d < %d+%d-%d*%d",
				e.From, e.To, s.Time[e.To], s.Time[e.From], e.Weight, s.II, e.Distance)
		}
	})
	if err != nil {
		return err
	}
	seen := map[[2]int]graph.NodeID{}
	dma := make([]int, s.II)
	for i := range d.Nodes {
		if s.Time[i] < 0 {
			return fmt.Errorf("modsched: node %d unscheduled", i)
		}
		key := [2]int{s.Time[i] % s.II, s.CN[i]}
		if prev, ok := seen[key]; ok {
			return fmt.Errorf("modsched: nodes %d and %d share CN %d slot %d", prev, i, key[1], key[0])
		}
		seen[key] = graph.NodeID(i)
		if d.Nodes[i].Op.IsMem() {
			dma[s.Time[i]%s.II]++
		}
	}
	if mc.DMAPorts > 0 {
		for slot, k := range dma {
			if k > mc.DMAPorts {
				return fmt.Errorf("modsched: %d DMA requests in slot %d > %d ports", k, slot, mc.DMAPorts)
			}
		}
	}
	return nil
}
