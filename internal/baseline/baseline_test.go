package baseline

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/see"
)

func TestRoundRobinCovers(t *testing.T) {
	d := kernels.Fir2Dim()
	mc := machine.DSPFabric64(8, 8, 8)
	a := RoundRobin(d, mc)
	if len(a.CN) != d.Len() {
		t.Fatal("wrong length")
	}
	for i, c := range a.CN {
		if c != i%64 {
			t.Errorf("CN[%d] = %d", i, c)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	d := kernels.Fir2Dim()
	mc := machine.DSPFabric64(8, 8, 8)
	a := Random(d, mc, 7)
	b := Random(d, mc, 7)
	for i := range a.CN {
		if a.CN[i] != b.CN[i] {
			t.Fatal("same seed differs")
		}
	}
	c := Random(d, mc, 8)
	same := true
	for i := range a.CN {
		if a.CN[i] != c.CN[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestMultilevelBalanced(t *testing.T) {
	d := kernels.H264Deblock()
	mc := machine.DSPFabric64(8, 8, 8)
	a := Multilevel(d, mc, 1)
	counts := map[int]int{}
	for _, c := range a.CN {
		if c < 0 || c >= 64 {
			t.Fatalf("bad CN %d", c)
		}
		counts[c]++
	}
	maxLoad := (d.Len()+63)/64 + 1
	for c, k := range counts {
		if k > maxLoad {
			t.Errorf("CN %d hosts %d > %d", c, k, maxLoad)
		}
	}
}

func TestMultilevelReducesCutVsRandom(t *testing.T) {
	d := kernels.IDCTHor()
	mc := machine.DSPFabric64(8, 8, 8)
	ml := Evaluate(d, Multilevel(d, mc, 1).CN, mc)
	rnd := Evaluate(d, Random(d, mc, 1).CN, mc)
	if ml.Migrations >= rnd.Migrations {
		t.Errorf("multilevel migrations %d >= random %d", ml.Migrations, rnd.Migrations)
	}
}

func TestFlatICARuns(t *testing.T) {
	d := kernels.Fir2Dim()
	mc := machine.DSPFabric64(8, 8, 8)
	a, err := FlatICA(context.Background(), d, mc, see.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CN) != d.Len() {
		t.Fatal("wrong length")
	}
	for _, c := range a.CN {
		if c < 0 || c >= 64 {
			t.Fatalf("bad CN %d", c)
		}
	}
	if a.Stats.CandidatesTried == 0 {
		t.Error("no stats recorded")
	}
}

func TestFlatExploresMoreStatesThanHCA(t *testing.T) {
	// E4: the flat K64 search tries candidates over 64 clusters per node;
	// HCA's per-level problems have 4. The flat candidate count must be
	// substantially larger.
	d := kernels.IDCTHor()
	mc := machine.DSPFabric64(8, 8, 8)
	flat, err := FlatICA(context.Background(), d, mc, see.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.HCA(context.Background(), kernels.IDCTHor(), mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Stats.CandidatesTried <= h.Stats.CandidatesTried {
		t.Errorf("flat tried %d candidates <= HCA %d", flat.Stats.CandidatesTried, h.Stats.CandidatesTried)
	}
	t.Logf("flat: %d candidates; HCA: %d candidates", flat.Stats.CandidatesTried, h.Stats.CandidatesTried)
}

func TestEvaluateBasics(t *testing.T) {
	d := ddg.New("e")
	a := d.AddOp(ddg.OpMov, "a")
	b := d.AddOp(ddg.OpMov, "b")
	c := d.AddConst(0, "c")
	d.AddDep(c, a, 0, 0)
	d.AddDep(a, b, 0, 0)
	mc := machine.DSPFabric64(8, 8, 8)
	// a on CN0, b on CN16 (across level 0), c on CN0.
	m := Evaluate(d, []int{0, 16, 0}, mc)
	if m.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1 (const excluded)", m.Migrations)
	}
	if m.MaxPerCN != 2 {
		t.Errorf("MaxPerCN = %d, want 2", m.MaxPerCN)
	}
	if m.WireViolations != 0 {
		t.Errorf("WireViolations = %d", m.WireViolations)
	}
	if m.EstII < 2 {
		t.Errorf("EstII = %d", m.EstII)
	}
}

func TestEvaluateDetectsWireViolations(t *testing.T) {
	// One CN receiving from 3 distinct sibling CNs in its leaf group:
	// budget is CNInPorts = 2 → violation.
	d := ddg.New("v")
	sinkOps := []ddg.Op{ddg.OpClip} // 3 operands
	_ = sinkOps
	v0 := d.AddOp(ddg.OpMov, "v0")
	v1 := d.AddOp(ddg.OpMov, "v1")
	v2 := d.AddOp(ddg.OpMov, "v2")
	c := d.AddConst(0, "c")
	d.AddDep(c, v0, 0, 0)
	d.AddDep(c, v1, 0, 0)
	d.AddDep(c, v2, 0, 0)
	sink := d.AddOp(ddg.OpClip, "s")
	d.AddDep(v0, sink, 0, 0)
	d.AddDep(v1, sink, 1, 0)
	d.AddDep(v2, sink, 2, 0)
	mc := machine.DSPFabric64(8, 8, 8)
	// v0,v1,v2 on CNs 0,1,2; sink on CN 3 — same leaf group, 3 sources > 2 ports.
	m := Evaluate(d, []int{0, 1, 2, 0, 3}, mc)
	if m.WireViolations != 1 {
		t.Errorf("WireViolations = %d, want 1", m.WireViolations)
	}
	if m.WorstOversubscription < 1.5 {
		t.Errorf("WorstOversubscription = %v", m.WorstOversubscription)
	}
}

func TestHCALegalWhereBaselinesViolate(t *testing.T) {
	// The headline qualitative claim: HCA produces zero wire violations by
	// construction; random assignment of a dense kernel does not.
	d := kernels.H264Deblock()
	mc := machine.DSPFabric64(8, 8, 8)
	h, err := core.HCA(context.Background(), kernels.H264Deblock(), mc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hm := Evaluate(d, h.CN, mc)
	rm := Evaluate(d, Random(d, mc, 3).CN, mc)
	if rm.WireViolations == 0 {
		t.Error("random assignment of h264 unexpectedly legal")
	}
	t.Logf("HCA: %d violations, est II %d; random: %d violations, est II %d",
		hm.WireViolations, hm.EstII, rm.WireViolations, rm.EstII)
}

func TestFlatICARingFallback(t *testing.T) {
	// A dense kernel on the flat K64 view with 2-port CNs dead-ends the
	// direct search; the ring fallback must still produce an assignment.
	d := kernels.H264Deblock()
	mc := machine.DSPFabric64(8, 8, 8)
	a, err := FlatICA(context.Background(), d, mc, see.Config{BeamWidth: 1, CandWidth: 1})
	if err != nil {
		t.Fatalf("flat ICA with ring fallback failed: %v", err)
	}
	if len(a.CN) != d.Len() {
		t.Fatal("incomplete assignment")
	}
}

func TestMultilevelSingleNodeGroups(t *testing.T) {
	// A graph with no edges cannot coarsen: every node is its own group.
	d := ddg.New("iso")
	for i := 0; i < 100; i++ {
		d.AddConst(int64(i), "c")
	}
	mc := machine.DSPFabric64(8, 8, 8)
	a := Multilevel(d, mc, 1)
	counts := map[int]int{}
	for _, c := range a.CN {
		counts[c]++
	}
	maxLoad := (d.Len()+63)/64 + 1
	for cn, k := range counts {
		if k > maxLoad {
			t.Errorf("CN %d hosts %d", cn, k)
		}
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	d := kernels.H264Deblock()
	mc := machine.DSPFabric64(8, 8, 8)
	a := Multilevel(d, mc, 5)
	b := Multilevel(kernels.H264Deblock(), mc, 5)
	for i := range a.CN {
		if a.CN[i] != b.CN[i] {
			t.Fatalf("nondeterministic at node %d", i)
		}
	}
}
