// Package baseline implements the comparison points the paper's
// evaluation implies but does not detail:
//
//   - FlatICA — single-level cluster assignment over the K64 view of the
//     fabric (every CN a cluster, all-to-all potential connections). This
//     is exactly the abstraction §4 argues is intractable: it must either
//     track the MUX hierarchy internally or ignore it; ours ignores it,
//     so its results can violate the per-level wire budgets — which
//     Evaluate quantifies.
//   - Multilevel — a Chu-et-al-style hierarchical operation partitioning
//     (coarsen by heaviest-edge matching, partition, refine by greedy
//     moves), hierarchy-unaware and constraint-unaware, as the related
//     work §6 characterizes it.
//   - RoundRobin / Random — distribution-only strawmen.
//
// Every baseline returns a plain CN assignment, so the shared Evaluate
// (wire-budget violations per level, per-CN pressure, migration count)
// and the modulo scheduler (achieved II) compare all approaches and HCA
// on identical terms.
package baseline

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pg"
	"repro/internal/see"
)

// Assignment is a flat result: one CN per DDG node.
type Assignment struct {
	Name  string
	CN    []int
	Stats see.Stats
}

// FlatICA runs the Space Exploration Engine once over the flat view of
// the machine: one cluster per computation node, all-to-all potential
// arcs (the K64 abstraction of §4), in-neighbor budget equal to the CN
// port count, and no awareness of the MUX hierarchy or wire budgets.
func FlatICA(ctx context.Context, d *ddg.DDG, mc *machine.Config, cfg see.Config) (*Assignment, error) {
	ncn := mc.TotalCNs()
	t := pg.NewTopology("flat-"+mc.Name, ncn, 1, mc.CNInPorts, 0)
	t.AllToAll()
	flow := pg.NewFlow(t, d)
	flow.MIIRecStatic = d.MIIRec()
	for i := range d.Nodes {
		if op := d.Nodes[i].Op; op == ddg.OpConst || op == ddg.OpIV {
			flow.MarkUbiquitous(d.Nodes[i].ID)
		}
	}
	ws := make([]graph.NodeID, d.Len())
	for i := range ws {
		ws[i] = graph.NodeID(i)
	}
	res, err := see.Solve(ctx, flow, ws, cfg)
	if err != nil {
		// Flat search on the port-starved K64 view dead-ends easily; a
		// pre-reserved forwarding ring is the same escape HCA uses.
		ringed := flow.Clone()
		for c := 0; c < ncn; c++ {
			if rerr := ringed.ReserveArc(pg.ClusterID(c), pg.ClusterID((c+1)%ncn)); rerr != nil {
				return nil, fmt.Errorf("baseline: flat: %v", err)
			}
		}
		res, err = see.Solve(ctx, ringed, ws, cfg)
		if err != nil {
			return nil, fmt.Errorf("baseline: flat: %v", err)
		}
	}
	out := &Assignment{Name: "flat-ica", CN: make([]int, d.Len()), Stats: res.Stats}
	for i := range out.CN {
		out.CN[i] = int(res.Flow.Assignment(graph.NodeID(i)))
	}
	return out, nil
}

// Multilevel is a hierarchy-unaware multilevel partitioner in the style
// of Chu, Fan and Mahlke (PLDI'03): coarsen the DDG by heaviest-edge
// matching until few nodes remain, split the coarse graph over the CNs by
// balanced greedy placement, then uncoarsen with a greedy
// cut-reduction refinement at each step.
func Multilevel(d *ddg.DDG, mc *machine.Config, seed int64) *Assignment {
	ncn := mc.TotalCNs()
	n := d.Len()
	// Edge weights between node groups: count of dependences.
	type pair struct{ a, b int }
	adj := map[pair]int{}
	d.G.Edges(func(e graph.Edge) {
		a, b := int(e.From), int(e.To)
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		adj[pair{a, b}]++
	})

	// Coarsening: union-find by repeated heaviest-edge matching.
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	groups := n
	target := 4 * ncn
	maxGroup := (n + ncn - 1) / ncn // keep clusters mergeable onto one CN
	if maxGroup < 2 {
		maxGroup = 2
	}
	for groups > target {
		// Deterministic heaviest-edge pass.
		type cand struct {
			w    int
			a, b int
		}
		var cands []cand
		for p, w := range adj {
			a, b := find(p.a), find(p.b)
			if a != b && size[a]+size[b] <= maxGroup {
				cands = append(cands, cand{w, a, b})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			if cands[i].a != cands[j].a {
				return cands[i].a < cands[j].a
			}
			return cands[i].b < cands[j].b
		})
		merged := false
		for _, c := range cands {
			a, b := find(c.a), find(c.b)
			if a == b || size[a]+size[b] > maxGroup {
				continue
			}
			parent[b] = a
			size[a] += size[b]
			groups--
			merged = true
			if groups <= target {
				break
			}
		}
		if !merged {
			break
		}
	}

	// Initial placement: groups onto CNs, largest first, least-loaded CN.
	groupIDs := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groupIDs[r] = append(groupIDs[r], i)
	}
	roots := make([]int, 0, len(groupIDs))
	for r := range groupIDs {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if len(groupIDs[roots[i]]) != len(groupIDs[roots[j]]) {
			return len(groupIDs[roots[i]]) > len(groupIDs[roots[j]])
		}
		return roots[i] < roots[j]
	})
	cn := make([]int, n)
	load := make([]int, ncn)
	for _, r := range roots {
		best := 0
		for c := 1; c < ncn; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		for _, nd := range groupIDs[r] {
			cn[nd] = best
		}
		load[best] += len(groupIDs[r])
	}

	// Refinement: greedy single-node moves that reduce cut without
	// unbalancing (classic FM-flavored pass, a few sweeps).
	rng := rand.New(rand.NewSource(seed))
	_ = rng
	maxLoad := (n+ncn-1)/ncn + 1
	for sweep := 0; sweep < 4; sweep++ {
		improved := false
		for i := 0; i < n; i++ {
			cur := cn[i]
			// Gain of moving i to the CN hosting most of its neighbors.
			count := map[int]int{}
			d.G.Out(graph.NodeID(i), func(e graph.Edge) { count[cn[e.To]]++ })
			d.G.In(graph.NodeID(i), func(e graph.Edge) { count[cn[e.From]]++ })
			best, bestGain := cur, 0
			// Deterministic iteration over candidate CNs.
			cands := make([]int, 0, len(count))
			for c := range count {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			for _, c := range cands {
				if c == cur || load[c]+1 > maxLoad {
					continue
				}
				gain := count[c] - count[cur]
				if gain > bestGain {
					best, bestGain = c, gain
				}
			}
			if best != cur {
				load[cur]--
				load[best]++
				cn[i] = best
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return &Assignment{Name: "multilevel", CN: cn}
}

// RoundRobin deals instructions to CNs in ID order.
func RoundRobin(d *ddg.DDG, mc *machine.Config) *Assignment {
	cn := make([]int, d.Len())
	for i := range cn {
		cn[i] = i % mc.TotalCNs()
	}
	return &Assignment{Name: "round-robin", CN: cn}
}

// Random assigns instructions uniformly at random (seeded).
func Random(d *ddg.DDG, mc *machine.Config, seed int64) *Assignment {
	rng := rand.New(rand.NewSource(seed))
	cn := make([]int, d.Len())
	for i := range cn {
		cn[i] = rng.Intn(mc.TotalCNs())
	}
	return &Assignment{Name: "random", CN: cn}
}
