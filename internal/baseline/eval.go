package baseline

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/graph"
	"repro/internal/machine"
)

// Metrics evaluates a flat CN assignment against the machine's real
// hierarchical constraints — the judgment HCA passes by construction and
// hierarchy-unaware approaches may fail.
type Metrics struct {
	// MaxPerCN is the largest instruction count on one computation node
	// (the single-issue II floor of the assignment).
	MaxPerCN int
	// Migrations counts dependences whose endpoints sit on different CNs
	// (each needs a receive primitive), excluding rematerializable
	// producers (constants and induction values).
	Migrations int
	// WireViolations counts, over every level of the hierarchy, the
	// groups or computation nodes whose distinct in-wire demand exceeds
	// the level's budget — configurations the reconfigurable interconnect
	// cannot realize without route-through copies the assignment never
	// planned.
	WireViolations int
	// WorstOversubscription is the largest ratio of required to available
	// in-wires at any group (1.0 = exactly fits).
	WorstOversubscription float64
	// EstII is a simple initiation-interval estimate:
	// max(MIIRec, per-CN instructions plus receive load).
	EstII int
}

// Evaluate computes the metrics of assignment cn for d on mc.
//
// Wire accounting follows the hardware: a value traveling from CN a to CN
// b enters b's level-l group on one in-wire at the level where their
// paths diverge, then consumes one in-wire (or crossbar line, or CN input
// port at the leaf) of every nested group it descends through. Values
// originating from the same source group at the divergence level are
// optimistically assumed to share wires (the best any mapper could do),
// so a violation here is a genuine infeasibility, not an artifact.
func Evaluate(d *ddg.DDG, cn []int, mc *machine.Config) Metrics {
	var m Metrics
	perCN := map[int]int{}
	recvPerCN := map[int]int{}
	for i := range d.Nodes {
		perCN[cn[i]]++
	}

	remat := func(n graph.NodeID) bool {
		op := d.Node(n).Op
		return op == ddg.OpConst || op == ddg.OpIV
	}

	type valDst struct {
		v  graph.NodeID
		cn int
	}
	seenMig := map[valDst]bool{}
	// inWires[(level, destGroupPath)] = set of source wire identifiers.
	inWires := map[string]map[string]bool{}
	charge := func(level int, destPath, src string) {
		key := fmt.Sprintf("%d/%s", level, destPath)
		if inWires[key] == nil {
			inWires[key] = map[string]bool{}
		}
		inWires[key][src] = true
	}
	budgets := map[string]int{} // same keys → in-wire budget
	budgetOf := func(level int) int {
		if level == mc.NumLevels()-1 && mc.NumLevels() > 1 {
			return mc.CNInPorts
		}
		return mc.Levels[level].InWires
	}

	d.G.Edges(func(e graph.Edge) {
		a, b := cn[e.From], cn[e.To]
		if a == b || remat(e.From) {
			return
		}
		if !seenMig[valDst{e.From, b}] {
			seenMig[valDst{e.From, b}] = true
			m.Migrations++
			recvPerCN[b]++
		}
		// Walk down the hierarchy. Before the divergence level the value
		// is local; at the divergence level the source is a's sibling
		// group; below it, the source is the level-l wire it arrived on.
		x, y := a, b
		destPath := ""
		srcWire := ""
		diverged := false
		for l := 0; l < mc.NumLevels(); l++ {
			sz := mc.CNsPerGroup(l)
			gx, gy := x/sz, y/sz
			if !diverged && gx != gy {
				diverged = true
				srcWire = fmt.Sprintf("w%d/%s/%d", l, destPath, gx)
			}
			destPath = fmt.Sprintf("%s.%d", destPath, gy)
			if diverged {
				charge(l, destPath, srcWire)
				budgets[fmt.Sprintf("%d/%s", l, destPath)] = budgetOf(l)
			}
			x, y = x%sz, y%sz
		}
	})

	for key, srcs := range inWires {
		budget := budgets[key]
		if budget <= 0 {
			continue
		}
		if len(srcs) > budget {
			m.WireViolations++
		}
		if r := float64(len(srcs)) / float64(budget); r > m.WorstOversubscription {
			m.WorstOversubscription = r
		}
	}

	for c, k := range perCN {
		if k > m.MaxPerCN {
			m.MaxPerCN = k
		}
		if t := k + recvPerCN[c]; t > m.EstII {
			m.EstII = t
		}
	}
	for c, r := range recvPerCN {
		if t := perCN[c] + r; t > m.EstII {
			m.EstII = t
		}
	}
	if rec := d.MIIRec(); rec > m.EstII {
		m.EstII = rec
	}
	if m.EstII < 1 {
		m.EstII = 1
	}
	return m
}
