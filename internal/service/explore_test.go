package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dse"
)

func postExplore(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestExploreEndpoint: the acceptance scenario for POST /v1/explore —
// a sweep returns every point plus the Pareto front, repeats are
// byte-identical cache hits, and /metrics accounts for the sweep.
func TestExploreEndpoint(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body := `{"kernel":"fir2dim","grid":{"k":[8,6,4,2]}}`
	resp, b := postExplore(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("X-Hca-Cache") != "miss" {
		t.Fatalf("first sweep X-Hca-Cache = %q", resp.Header.Get("X-Hca-Cache"))
	}
	var res dse.Result
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("bad sweep body: %v", err)
	}
	if res.Kernel != "fir2dim" || len(res.Points) != 4 || len(res.Front) == 0 {
		t.Fatalf("sweep = kernel %q, %d points, %d front", res.Kernel, len(res.Points), len(res.Front))
	}
	for i, p := range res.Points {
		if p.Index != i || p.Error != "" || !p.Legal {
			t.Fatalf("point %d: %+v", i, p)
		}
	}

	// Identical repeat: served from the result cache, byte-identical.
	resp2, b2 := postExplore(t, ts.URL, body)
	if resp2.Header.Get("X-Hca-Cache") != "hit" {
		t.Fatalf("repeat X-Hca-Cache = %q, want hit", resp2.Header.Get("X-Hca-Cache"))
	}
	if string(b) != string(b2) {
		t.Fatal("cached sweep differs from computed sweep")
	}

	m := svc.Metrics()
	if m.Sweeps != 1 || m.SweepPoints != 4 || m.SweepDeduped != 0 {
		t.Fatalf("sweep metrics = %d/%d/%d, want 1/4/0", m.Sweeps, m.SweepPoints, m.SweepDeduped)
	}
	if m.MemoByEngine["see"].Misses == 0 {
		t.Fatalf("memo_by_engine missing see traffic: %+v", m.MemoByEngine)
	}
	if m.Requests != 2 || m.CacheHits != 1 {
		t.Fatalf("requests=%d hits=%d, want 2/1", m.Requests, m.CacheHits)
	}
}

// TestExploreAsync: async sweeps return 202 with a pollable job whose
// terminal result is the sweep body.
func TestExploreAsync(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, b := postExplore(t, ts.URL, `{"kernel":"fir2dim","grid":{"k":[8,4]},"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	job, ok := svc.Job(st.ID)
	if !ok {
		t.Fatalf("job %s not tracked", st.ID)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := job.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	jr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := io.ReadAll(jr.Body)
	jr.Body.Close()
	var out struct {
		Status
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(jb, &out); err != nil {
		t.Fatal(err)
	}
	if out.State != StateDone || len(out.Result) == 0 {
		t.Fatalf("job = %s, result %d bytes", out.State, len(out.Result))
	}
	var res dse.Result
	if err := json.Unmarshal(out.Result, &res); err != nil {
		t.Fatalf("job result is not a sweep: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("async sweep has %d points", len(res.Points))
	}
}

// TestExploreTypedErrors: bad grids and over-bound point counts surface
// as typed 400s with the *see.OptionError field preserved; unknown
// body fields are rejected.
func TestExploreTypedErrors(t *testing.T) {
	svc := New(Config{Workers: 1, MaxExplorePoints: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, field string
	}{
		{"bad grid type", `{"kernel":"fir2dim","grid":{"type":"torus"}}`, "grid.type"},
		{"bad engine", `{"kernel":"fir2dim","grid":{"engines":["quantum"]}}`, "engine"},
		{"mixed axes", `{"kernel":"fir2dim","grid":{"type":"rcp","n":[8]}}`, "grid.n"},
		{"over point bound", `{"kernel":"fir2dim","grid":{"k":[8,7,6,5,4]}}`, "grid"},
		{"no kernel", `{"grid":{}}`, "kernel"},
		{"negative budget", `{"kernel":"fir2dim","grid":{},"exact_budget":-1}`, "exact_budget"},
	}
	for _, tc := range cases {
		resp, b := postExplore(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", tc.name, resp.StatusCode, b)
			continue
		}
		var eb ErrorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Field != tc.field {
			t.Errorf("%s: error body %s, want field %q", tc.name, b, tc.field)
		}
	}

	resp, _ := postExplore(t, ts.URL, `{"kernel":"fir2dim","grid":{},"bogus":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}
	// At the bound exactly: accepted.
	resp, b := postExplore(t, ts.URL, `{"kernel":"fir2dim","grid":{"k":[8,6,4,2]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("at-bound sweep: status %d: %s", resp.StatusCode, b)
	}
}

// TestExploreDedupMetrics: a sweep with collapsible points reports them
// on /metrics.
func TestExploreDedupMetrics(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, b := postExplore(t, ts.URL, `{"kernel":"fir2dim","grid":{"type":"rcp","neighbors":[4,5,6,7]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var res dse.Result
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unique != 1 || res.Stats.Deduped != 3 {
		t.Fatalf("stats = %+v, want 1 unique / 3 deduped", res.Stats)
	}
	if m := svc.Metrics(); m.SweepPoints != 4 || m.SweepDeduped != 3 {
		t.Fatalf("metrics = points %d deduped %d, want 4/3", m.SweepPoints, m.SweepDeduped)
	}
}
