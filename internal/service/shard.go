package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fleet mode. N hcad nodes share one logical result cache by
// consistent-hashing the request fingerprint keyspace over a static
// peer list: each compile has exactly one owner node, so the fleet
// computes each distinct configuration once instead of once per node a
// DSE driver happens to hit. There is no membership protocol — the
// peer list is fixed at boot (-peers) and a dead owner degrades to
// local computation, never to an error the client sees.
//
// Dead peers are handled with an active health probe rather than a
// dial-per-request: the first failed forward marks the owner down for a
// cooldown window during which every request it owns is served locally
// without touching the network. When the window expires, the next
// request sends one GET /healthz probe — success restores forwarding,
// failure re-arms the cooldown. A dead owner therefore costs one failed
// dial per cooldown period instead of one per request.

const (
	// ringPoints is the number of virtual points each node contributes
	// to the hash ring. 64 keeps the keyspace split within a few percent
	// of even for small static fleets without making ring construction
	// or lookup noticeable.
	ringPoints = 64

	// ForwardedByHeader marks a request already routed by a peer. A node
	// receiving it serves locally no matter what the ring says, so a
	// stale or disagreeing peer list degrades to extra local work, never
	// a forwarding loop.
	ForwardedByHeader = "X-Hca-Forwarded-By"

	// ShardHeader reports which node actually served the request,
	// "local" routing decisions included — the observability hook for
	// checking a fleet's routing from the client side.
	ShardHeader = "X-Hca-Shard"
)

// NodeTag derives a node's short stable identity from its advertised
// address: the first 8 hex digits of its SHA-256. Tags prefix job IDs
// ("1a2b3c4d-job-000017") so any node can route a job lookup back to
// the node that owns the job's state.
func NodeTag(addr string) string {
	sum := sha256.Sum256([]byte(addr))
	return hex.EncodeToString(sum[:4])
}

// Ring is a consistent-hash ring over a static node list. Lookups cost
// a binary search; construction sorts nodes×ringPoints points once.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring from the given node addresses. Duplicates are
// collapsed; order does not matter — every node builds the same ring
// from the same set.
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < ringPoints; i++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", n, i)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	sort.Strings(r.nodes)
	return r
}

// Owner returns the node owning key: the first ring point at or after
// the key's hash, wrapping around. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	sum := sha256.Sum256([]byte(key))
	h := binary.BigEndian.Uint64(sum[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the distinct node addresses on the ring, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// DefaultProbeCooldown is how long a failed forward keeps a peer marked
// down before the next request spends a health probe on it.
const DefaultProbeCooldown = 5 * time.Second

// ShardOptions configures a sharded handler.
type ShardOptions struct {
	// Self is this node's advertised address as it appears in every
	// node's peer list (e.g. "10.0.0.1:8080").
	Self string
	// Peers is the full fleet, self included or not (it is added).
	Peers []string
	// Client performs the forwarded requests; nil uses a client with a
	// 30s timeout.
	Client *http.Client
	// ProbeCooldown is how long a peer stays marked down after a failed
	// forward or probe before the next request probes it again
	// (default DefaultProbeCooldown).
	ProbeCooldown time.Duration
}

// ShardedHandler routes compile submissions to the fingerprint's owner
// node and job lookups to the node whose tag prefixes the job ID,
// forwarding over plain HTTP. Everything else — and everything this
// node owns — falls through to next (the local service handler,
// already carrying a node-tagged job namespace via Config.NodeName).
type ShardedHandler struct {
	self    string
	tag     string
	ring    *Ring
	tagAddr map[string]string // node tag → address
	client  *http.Client
	next    http.Handler
	svc     *Service

	// Dead-peer tracking: down maps a peer address to the instant its
	// cooldown expires and a health probe becomes worth spending. clock
	// is time.Now, injectable by same-package tests.
	cooldown time.Duration
	clock    func() time.Time
	healthMu sync.Mutex
	down     map[string]time.Time
}

// NewShardedHandler wraps next (svc's handler) with fleet routing. With
// no peers beyond self the wrapper still stamps ShardHeader but never
// forwards, so single-node and fleet deployments share one code path.
func NewShardedHandler(svc *Service, next http.Handler, opt ShardOptions) *ShardedHandler {
	all := append([]string{opt.Self}, opt.Peers...)
	ring := NewRing(all)
	tagAddr := make(map[string]string, len(ring.Nodes()))
	for _, n := range ring.Nodes() {
		tagAddr[NodeTag(n)] = n
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	cooldown := opt.ProbeCooldown
	if cooldown <= 0 {
		cooldown = DefaultProbeCooldown
	}
	return &ShardedHandler{
		self:     opt.Self,
		tag:      NodeTag(opt.Self),
		ring:     ring,
		tagAddr:  tagAddr,
		client:   client,
		next:     next,
		svc:      svc,
		cooldown: cooldown,
		clock:    time.Now,
		down:     make(map[string]time.Time),
	}
}

// markDown records a failed dial to owner, suppressing forwards to it
// until the cooldown expires.
func (sh *ShardedHandler) markDown(owner string) {
	sh.healthMu.Lock()
	sh.down[owner] = sh.clock().Add(sh.cooldown)
	sh.healthMu.Unlock()
}

// peerUp reports whether owner is worth forwarding to. Healthy peers
// (never marked down) answer true with no network traffic. A peer
// inside its cooldown window answers false, also without traffic. Once
// the window expires the next caller pays for one active GET /healthz
// probe: success clears the mark and restores forwarding, failure
// re-arms the cooldown so followers stay off the network.
func (sh *ShardedHandler) peerUp(ctx context.Context, owner string) bool {
	sh.healthMu.Lock()
	until, marked := sh.down[owner]
	if !marked {
		sh.healthMu.Unlock()
		return true
	}
	if sh.clock().Before(until) {
		sh.healthMu.Unlock()
		return false
	}
	// Cooldown expired: re-arm it before releasing the lock so only this
	// caller probes; concurrent requests keep falling back locally.
	sh.down[owner] = sh.clock().Add(sh.cooldown)
	sh.healthMu.Unlock()

	up := sh.probe(ctx, owner)
	sh.svc.metrics.peerProbe(up)
	if up {
		sh.healthMu.Lock()
		delete(sh.down, owner)
		sh.healthMu.Unlock()
	}
	return up
}

// probe performs one GET /healthz against owner.
func (sh *ShardedHandler) probe(ctx context.Context, owner string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+owner+"/healthz", nil)
	if err != nil {
		return false
	}
	req.Header.Set(ForwardedByHeader, sh.self)
	resp, err := sh.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Ring exposes the routing table, mostly for tests and /metrics-style
// introspection.
func (sh *ShardedHandler) Ring() *Ring { return sh.ring }

func (sh *ShardedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// A peer already routed this request here; do not bounce it again.
	if r.Header.Get(ForwardedByHeader) != "" {
		w.Header().Set(ShardHeader, sh.tag)
		sh.next.ServeHTTP(w, r)
		return
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/compile":
		sh.routeCompile(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/explore":
		sh.routeExplore(w, r)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		sh.routeJob(w, r)
	default:
		w.Header().Set(ShardHeader, sh.tag)
		sh.next.ServeHTTP(w, r)
	}
}

// routeCompile fingerprints the submission and forwards it to the
// owner node, serving locally when this node owns it or the owner is
// unreachable. The body must be read to fingerprint it, so the local
// fall-through re-wraps the bytes.
func (sh *ShardedHandler) routeCompile(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, sh.svc.cfg.MaxBodyBytes))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	serveLocal := func() {
		w.Header().Set(ShardHeader, sh.tag)
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		sh.next.ServeHTTP(w, r2)
	}

	var req CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		// Malformed request: let the local handler produce its usual
		// 400 envelope rather than duplicating the error surface here.
		serveLocal()
		return
	}
	key, err := RequestKey(req)
	if err != nil {
		serveLocal()
		return
	}
	sh.forwardOrLocal(w, r, key, body, serveLocal)
}

// routeExplore fingerprints a sweep submission and forwards it to the
// owner node, exactly like routeCompile — the whole point of sharding
// is that a fleet-wide DSE run computes each sweep once.
func (sh *ShardedHandler) routeExplore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, sh.svc.cfg.MaxBodyBytes))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	serveLocal := func() {
		w.Header().Set(ShardHeader, sh.tag)
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		sh.next.ServeHTTP(w, r2)
	}

	var req ExploreRequest
	if err := json.Unmarshal(body, &req); err != nil {
		serveLocal()
		return
	}
	_, key, err := req.build(sh.svc.cfg.MaxExplorePoints)
	if err != nil {
		serveLocal()
		return
	}
	sh.forwardOrLocal(w, r, key, body, serveLocal)
}

// forwardOrLocal sends the keyed request to its ring owner when that is
// a peer believed healthy, falling back to local computation otherwise.
// The result may then be computed twice fleet-wide; it is never lost.
func (sh *ShardedHandler) forwardOrLocal(w http.ResponseWriter, r *http.Request, key string, body []byte, serveLocal func()) {
	owner := sh.ring.Owner(key)
	if owner == "" || owner == sh.self {
		serveLocal()
		return
	}
	if sh.peerUp(r.Context(), owner) && sh.forward(w, r, owner, body) {
		return
	}
	sh.svc.metrics.forwardFall()
	serveLocal()
}

// routeJob forwards GET /v1/jobs/{tag}-job-N to the node whose tag
// prefixes the ID. Unknown tags and local tags fall through, producing
// the local handler's 404 when the job truly does not exist.
func (sh *ShardedHandler) routeJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	tag, _, ok := strings.Cut(id, "-")
	if !ok || tag == sh.tag {
		w.Header().Set(ShardHeader, sh.tag)
		sh.next.ServeHTTP(w, r)
		return
	}
	owner, known := sh.tagAddr[tag]
	if !known || owner == sh.self {
		w.Header().Set(ShardHeader, sh.tag)
		sh.next.ServeHTTP(w, r)
		return
	}
	if sh.peerUp(r.Context(), owner) && sh.forward(w, r, owner, nil) {
		return
	}
	sh.svc.metrics.forwardFall()
	w.Header().Set(ShardHeader, sh.tag)
	sh.next.ServeHTTP(w, r)
}

// forward proxies the request to owner, marking it so the owner serves
// it locally. Returns false when the owner could not be reached (the
// caller falls back); true once any response — success or error — has
// been relayed to the client.
func (sh *ShardedHandler) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	url := "http://" + owner + r.URL.RequestURI()
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rdr)
	if err != nil {
		return false
	}
	for k, vs := range r.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set(ForwardedByHeader, sh.self)
	resp, err := sh.client.Do(req)
	if err != nil {
		// The owner did not answer: start its cooldown so subsequent
		// requests fall back locally without paying for a dial each.
		sh.markDown(owner)
		return false
	}
	defer resp.Body.Close()
	sh.svc.metrics.forward()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(ShardHeader, NodeTag(owner))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
