package middleware

import (
	"sync"
	"time"
)

// maxClients bounds the limiter's per-client state; beyond it, buckets
// idle for longer than the quota window are pruned. An attacker rotating
// API keys can therefore exhaust rate budget but not daemon memory.
const maxClients = 4096

// Limiter is a per-client token bucket plus an optional fixed-window
// request quota. The bucket shapes short-term burstiness (rate tokens
// per second, up to burst outstanding); the quota caps total requests
// per window regardless of pacing — a client politely staying under the
// rate still cannot grind the daemon all day past its quota.
type Limiter struct {
	rate   float64 // tokens per second; <= 0 means no rate shaping
	burst  float64
	quota  int // requests per window; 0 means no quota
	window time.Duration

	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	clients  map[string]*clientState
	rejected int64
}

type clientState struct {
	tokens      float64
	last        time.Time // last refill
	windowStart time.Time
	used        int
}

// NewLimiter builds a limiter allowing ratePerSec sustained requests per
// client with bursts up to burst, and at most quota requests per window
// (quota 0 = unlimited). ratePerSec <= 0 disables rate shaping; then
// only the quota applies.
func NewLimiter(ratePerSec float64, burst, quota int, window time.Duration) *Limiter {
	if burst < 1 {
		burst = 1
	}
	if window <= 0 {
		window = time.Hour
	}
	return &Limiter{
		rate:    ratePerSec,
		burst:   float64(burst),
		quota:   quota,
		window:  window,
		now:     time.Now,
		clients: make(map[string]*clientState),
	}
}

// Allow reports whether client may proceed, consuming one token and one
// quota slot if so.
func (l *Limiter) Allow(client string) bool {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.clients[client]
	if !ok {
		l.pruneLocked(now)
		st = &clientState{tokens: l.burst, last: now, windowStart: now}
		l.clients[client] = st
	}
	if l.quota > 0 {
		if now.Sub(st.windowStart) >= l.window {
			st.windowStart = now
			st.used = 0
		}
		if st.used >= l.quota {
			l.rejected++
			return false
		}
	}
	if l.rate > 0 {
		st.tokens += now.Sub(st.last).Seconds() * l.rate
		if st.tokens > l.burst {
			st.tokens = l.burst
		}
		st.last = now
		if st.tokens < 1 {
			l.rejected++
			return false
		}
		st.tokens--
	}
	st.used++
	return true
}

// pruneLocked drops idle client state once the map is full. Called with
// l.mu held, before inserting a new client.
func (l *Limiter) pruneLocked(now time.Time) {
	if len(l.clients) < maxClients {
		return
	}
	for c, st := range l.clients {
		if now.Sub(st.last) > l.window && now.Sub(st.windowStart) > l.window {
			delete(l.clients, c)
		}
	}
	// Degenerate case: every bucket is active. Drop arbitrary entries
	// rather than growing without bound; affected clients restart with a
	// full burst, which errs on the side of admitting traffic.
	for c := range l.clients {
		if len(l.clients) < maxClients {
			break
		}
		delete(l.clients, c)
	}
}

// Rejected counts requests the limiter has turned away since creation.
func (l *Limiter) Rejected() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejected
}

// Clients counts the tracked per-client states.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}
