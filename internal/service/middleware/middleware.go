// Package middleware is the HTTP hardening layer cmd/hcad wraps around
// the compile service's API: panic recovery, structured request logging,
// per-client token-bucket rate limiting with fixed-window quotas (keyed
// by the X-Api-Key header), and per-request timeouts. The package knows
// nothing about the service it protects — every middleware is a plain
// func(http.Handler) http.Handler and observations flow out through
// caller-supplied hooks — so it composes around the bare handler, the
// sharded handler, or anything else.
package middleware

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Middleware wraps an http.Handler with one concern.
type Middleware func(http.Handler) http.Handler

// Chain wraps h with mw, first middleware outermost: Chain(h, a, b)
// serves a(b(h)). The canonical daemon order is Recover (catch
// everything, including the other middlewares), Logging (log everything,
// including rejections), RateLimit, Timeout.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		if mw[i] != nil {
			h = mw[i](h)
		}
	}
	return h
}

// ClientID identifies the caller for rate limiting and logging: the
// X-Api-Key header when present, else the remote host. Anonymous
// clients therefore share a per-IP budget while keyed clients get their
// own.
func ClientID(r *http.Request) string {
	if key := r.Header.Get("X-Api-Key"); key != "" {
		return key
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Recover turns a handler panic into a 500 response instead of a dead
// connection and a crashed daemon. onPanic (optional) observes the
// recovered value for logging/metrics. If the handler had already
// started writing the body, the 500 cannot be sent — the connection is
// simply not torn down by the panic.
func Recover(onPanic func(v any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if onPanic != nil {
						onPanic(v)
					}
					writeJSONError(w, http.StatusInternalServerError, "internal error")
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// statusWriter captures the response status and size for the log line.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// Logging emits one structured line per request through logf (log.Printf
// compatible): method, path, status, body size, duration and client.
func Logging(logf func(format string, v ...any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			logf("http: %s %s status=%d bytes=%d dur=%s client=%s",
				r.Method, r.URL.Path, status, sw.bytes,
				time.Since(start).Round(time.Microsecond), ClientID(r))
		})
	}
}

// Timeout bounds every request's context by d (0 disables). The compile
// pipeline is context-first end to end, so an expired deadline cancels
// the in-flight solve rather than orphaning it.
func Timeout(d time.Duration) Middleware {
	if d <= 0 {
		return nil
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// RateLimit rejects requests whose client exceeds l's token bucket or
// quota with 429. /healthz is exempt: liveness probes must not be
// throttled into flapping. onReject (optional) observes each rejection
// — cmd/hcad feeds it into the service metrics registry.
func RateLimit(l *Limiter, onReject func(client string)) Middleware {
	if l == nil {
		return nil
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				next.ServeHTTP(w, r)
				return
			}
			client := ClientID(r)
			if !l.Allow(client) {
				if onReject != nil {
					onReject(client)
				}
				w.Header().Set("Retry-After", "1")
				writeJSONError(w, http.StatusTooManyRequests, "rate limit exceeded")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
