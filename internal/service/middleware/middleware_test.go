package middleware

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestChainOrderOutermostFirst(t *testing.T) {
	var order []string
	tag := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), tag("a"), nil, tag("b"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := strings.Join(order, ","); got != "a,b,handler" {
		t.Fatalf("order %s, want a,b,handler (nil middleware skipped)", got)
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var caught any
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Recover(func(v any) { caught = v }))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/compile", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if caught != "boom" {
		t.Fatalf("onPanic saw %v", caught)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestLoggingCapturesStatusAndClient(t *testing.T) {
	var line string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}), Logging(func(format string, v ...any) { line = fmt.Sprintf(format, v...) }))
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("X-Api-Key", "team-dse")
	h.ServeHTTP(httptest.NewRecorder(), req)
	for _, want := range []string{"GET", "/metrics", "status=418", "bytes=15", "client=team-dse"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
}

func TestTimeoutBoundsRequestContext(t *testing.T) {
	var deadline bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, deadline = r.Context().Deadline()
	}), Timeout(time.Second))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/compile", nil))
	if !deadline {
		t.Fatal("handler context has no deadline")
	}
	if Timeout(0) != nil {
		t.Fatal("Timeout(0) should disable (nil middleware)")
	}
}

func TestLimiterTokenBucket(t *testing.T) {
	l := NewLimiter(1, 3, 0, time.Hour)
	clock := time.Unix(1000, 0)
	l.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if !l.Allow("a") {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if l.Allow("a") {
		t.Fatal("4th immediate request allowed past burst")
	}
	// A different client has its own bucket.
	if !l.Allow("b") {
		t.Fatal("client b rejected on first request")
	}
	// One second refills one token at rate 1/s.
	clock = clock.Add(time.Second)
	if !l.Allow("a") {
		t.Fatal("refilled token rejected")
	}
	if l.Allow("a") {
		t.Fatal("second request after 1s refill allowed")
	}
	if l.Rejected() != 2 {
		t.Fatalf("rejected %d, want 2", l.Rejected())
	}
}

func TestLimiterQuotaWindow(t *testing.T) {
	// Generous rate, tight quota: 2 requests per window.
	l := NewLimiter(1000, 1000, 2, time.Minute)
	clock := time.Unix(2000, 0)
	l.now = func() time.Time { return clock }

	if !l.Allow("c") || !l.Allow("c") {
		t.Fatal("in-quota requests rejected")
	}
	clock = clock.Add(10 * time.Second)
	if l.Allow("c") {
		t.Fatal("over-quota request allowed despite available tokens")
	}
	clock = clock.Add(time.Minute)
	if !l.Allow("c") {
		t.Fatal("request rejected after quota window rolled")
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	l := NewLimiter(0.0001, 1, 0, time.Hour) // one request, effectively no refill
	var rejectedClient string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), RateLimit(l, func(c string) { rejectedClient = c }))

	req := func(path, key string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("POST", path, nil)
		r.RemoteAddr = "10.0.0.9:1234"
		if key != "" {
			r.Header.Set("X-Api-Key", key)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}

	if rec := req("/v1/compile", "k1"); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d", rec.Code)
	}
	rec := req("/v1/compile", "k1")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if rejectedClient != "k1" {
		t.Errorf("onReject saw %q", rejectedClient)
	}
	// Health probes are never throttled.
	for i := 0; i < 5; i++ {
		if rec := req("/healthz", "k1"); rec.Code != http.StatusOK {
			t.Fatalf("healthz throttled: %d", rec.Code)
		}
	}
	// Anonymous clients fall back to a per-IP budget.
	if rec := req("/v1/compile", ""); rec.Code != http.StatusOK {
		t.Fatalf("anonymous first request: %d", rec.Code)
	}
	if rec := req("/v1/compile", ""); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("anonymous second request: %d, want 429", rec.Code)
	}
}

func TestLimiterPruneBoundsMemory(t *testing.T) {
	l := NewLimiter(1, 1, 0, time.Minute)
	clock := time.Unix(3000, 0)
	l.now = func() time.Time { return clock }
	for i := 0; i < maxClients+100; i++ {
		l.Allow(fmt.Sprintf("client-%d", i))
		clock = clock.Add(time.Millisecond)
	}
	if n := l.Clients(); n > maxClients {
		t.Fatalf("limiter tracks %d clients, bound is %d", n, maxClients)
	}
}
