// Package service turns the batch HCA library into a long-running
// compilation service: a bounded worker pool drains a job queue of
// compile requests, each cancellable and deadline-bounded through
// context.Context, with a content-addressed LRU result cache (keyed by a
// canonical hash of DDG fingerprint + machine + options) and an
// in-process metrics registry. cmd/hcad exposes it over HTTP; tests and
// embedders can drive the Service directly.
//
// The economics mirror what the CGRA-mapping literature reports: a
// mapping run (beam search + mapper + modulo scheduling) is expensive
// and — being deterministic — worth computing exactly once per (kernel,
// fabric, options) configuration. A hit returns the stored bytes, so
// repeated requests are byte-identical by construction.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/trace"
)

// Errors the submission path reports; the HTTP layer maps both to 503.
var (
	ErrClosed    = errors.New("service: draining, no new jobs accepted")
	ErrQueueFull = errors.New("service: job queue full")
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent compile workers (default 4).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (default 256).
	CacheSize int
	// MemoSize is the process-wide subproblem-memo capacity in entries
	// (default 2048). Unlike the result cache, which stores finished
	// report bytes per request, the memo stores solved beam-search
	// attempts and is shared across *different* requests that contain
	// structurally identical subproblems.
	MemoSize int
	// DefaultTimeout bounds each compile when the request does not set
	// its own (default 2 minutes).
	DefaultTimeout time.Duration
	// MaxJobs bounds the terminal-job history kept for GET /v1/jobs
	// (default 1024); the oldest finished jobs are pruned beyond it.
	MaxJobs int
	// JobTTL additionally evicts terminal jobs this long after they
	// finish (0 = no TTL reaping, MaxJobs pruning only). In-flight jobs
	// are never reaped.
	JobTTL time.Duration
	// JobGCInterval is how often the TTL reaper runs; defaults to
	// JobTTL/4 clamped to [10ms, 30s]. Only meaningful with JobTTL set.
	JobGCInterval time.Duration
	// MaxBodyBytes bounds HTTP request bodies (default 1 MiB); larger
	// requests are rejected with 413.
	MaxBodyBytes int64
	// MaxExplorePoints bounds how many grid points one POST /v1/explore
	// sweep may expand to (default DefaultMaxExplorePoints); larger grids
	// are rejected with a typed 400 before any work is scheduled.
	MaxExplorePoints int
	// NodeName, when set, prefixes job IDs ("<node>-job-000001") so a
	// sharded fleet can route job lookups to the node that owns them.
	NodeName string
	// DefaultEngine is the subproblem engine applied to requests that
	// leave options.engine unset ("" = "see"). Requests that name an
	// engine explicitly always win. Unknown names surface per request as
	// typed errors → HTTP 400, same as a bad request-side value.
	DefaultEngine string
	// Store is the durable content-addressed result layer under the LRU:
	// misses fall through to it before computing, completed results are
	// written through to it, and New warms the LRU from it. Nil means
	// memory-only (results die with the process).
	Store *store.ResultStore
	// Journal persists job state transitions so async job state survives
	// a restart: New replays it, re-exposing terminal jobs with their
	// final status and marking jobs that were in flight at the crash as
	// failed. Nil means job state dies with the process.
	Journal *store.JobStore
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MemoSize <= 0 {
		c.MemoSize = 2048
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.JobTTL > 0 && c.JobGCInterval <= 0 {
		c.JobGCInterval = c.JobTTL / 4
		if c.JobGCInterval < 10*time.Millisecond {
			c.JobGCInterval = 10 * time.Millisecond
		}
		if c.JobGCInterval > 30*time.Second {
			c.JobGCInterval = 30 * time.Second
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxExplorePoints <= 0 {
		c.MaxExplorePoints = DefaultMaxExplorePoints
	}
	return c
}

// Service is the compilation service. Create with New, stop with Close.
type Service struct {
	cfg     Config
	queue   chan *Job
	workers sync.WaitGroup
	jobsWG  sync.WaitGroup // submitted-but-not-terminal jobs
	cache   *lruCache
	memo    core.SubproblemMemo
	metrics *Metrics
	store   *store.ResultStore
	journal *store.JobStore
	gcStop  chan struct{}
	gcDone  chan struct{}

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	order    []string // job IDs in creation order, for pruning
	inflight map[string]*Job
	nextID   int64
}

// New starts a service with cfg.Workers compile workers. With a durable
// store configured it warms the LRU from disk (most recent results
// first), and with a journal configured it replays the persisted job
// history before accepting traffic.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		cache:    newLRUCache(cfg.CacheSize),
		memo:     core.NewMemo(cfg.MemoSize),
		metrics:  &Metrics{},
		store:    cfg.Store,
		journal:  cfg.Journal,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	s.recoverJobs()
	s.warmCache()
	if cfg.JobTTL > 0 {
		s.gcStop = make(chan struct{})
		s.gcDone = make(chan struct{})
		go s.gcLoop(cfg.JobTTL, cfg.JobGCInterval)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s
}

// warmCache pre-populates the LRU with the most recent durable results,
// oldest of the window first so the newest end up most-recently-used.
func (s *Service) warmCache() {
	if s.store == nil {
		return
	}
	keys := s.store.Keys()
	if len(keys) > s.cfg.CacheSize {
		keys = keys[:s.cfg.CacheSize]
	}
	warmed := 0
	for i := len(keys) - 1; i >= 0; i-- {
		if body, ok := s.store.Get(keys[i]); ok {
			s.cache.Put(keys[i], body)
			warmed++
		}
	}
	s.metrics.warmed(int64(warmed))
}

// recoverJobs replays the journal: terminal jobs come back queryable
// with their final status (results re-attached lazily from the durable
// store), and jobs that were in flight when the previous process died
// are marked failed — the daemon cannot know how far they got.
func (s *Service) recoverJobs() {
	if s.journal == nil {
		return
	}
	recs := s.journal.Recovered()
	if len(recs) > s.cfg.MaxJobs {
		recs = recs[len(recs)-s.cfg.MaxJobs:]
	}
	for _, rec := range recs {
		st := State(rec.State)
		errMsg := rec.Error
		if !st.Terminal() {
			st = StateFailed
			errMsg = "interrupted by daemon restart"
			s.journal.Append(store.JobRecord{
				ID: rec.ID, Key: rec.Key, State: string(st),
				Error: errMsg, Time: time.Now().UTC().Format(time.RFC3339Nano),
			})
		}
		job := &Job{
			ID:        rec.ID,
			Key:       rec.Key,
			done:      make(chan struct{}),
			state:     st,
			cacheHit:  rec.CacheHit,
			errMsg:    errMsg,
			recovered: true,
		}
		if t, err := time.Parse(time.RFC3339Nano, rec.Time); err == nil {
			job.created, job.finished = t, t
		} else {
			job.created, job.finished = time.Now(), time.Now()
		}
		if st == StateDone && s.store != nil {
			key := rec.Key
			job.loadResult = func() ([]byte, bool) { return s.store.Get(key) }
		}
		close(job.done)
		if n := idSeq(rec.ID); n > s.nextID {
			s.nextID = n
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
	}
	s.metrics.recovered(int64(len(recs)))
}

// idSeq extracts the numeric suffix of a job ID ("job-000017" or
// "<node>-job-000017" → 17), 0 if unparseable.
func idSeq(id string) int64 {
	i := strings.LastIndex(id, "job-")
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(id[i+len("job-"):], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// gcLoop reaps terminal jobs older than ttl until Close.
func (s *Service) gcLoop(ttl, every time.Duration) {
	defer close(s.gcDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case <-t.C:
			s.reapJobs(time.Now().Add(-ttl))
		}
	}
}

// reapJobs drops terminal jobs that finished before cutoff. Queued and
// running jobs are untouchable regardless of age.
func (s *Service) reapJobs(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	reaped := 0
	kept := s.order[:0]
	for _, id := range s.order {
		job, ok := s.jobs[id]
		if ok {
			job.mu.Lock()
			expire := job.state.Terminal() && !job.finished.IsZero() && job.finished.Before(cutoff)
			job.mu.Unlock()
			if !expire {
				kept = append(kept, id)
				continue
			}
			delete(s.jobs, id)
		}
		reaped++
	}
	s.order = kept
	return reaped
}

// Close drains the service: new submissions are rejected, every
// submitted job runs (or cancels) to completion, then the workers stop.
// No accepted job ever loses its response to a shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workers.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.jobsWG.Wait()
	close(s.queue)
	s.workers.Wait()
	if s.gcStop != nil {
		close(s.gcStop)
		<-s.gcDone
	}
	if s.journal != nil {
		s.journal.Sync()
	}
}

// Submit validates req, serves it from the result cache (the in-memory
// LRU, then the durable store) when possible, and otherwise enqueues a
// compile job whose context descends from ctx bounded by the request
// timeout. The returned job is terminal immediately on a cache hit; use
// Job.Wait for synchronous callers. Identical async submissions
// single-flight: while one is in the queue or running, later ones attach
// to the same job instead of scheduling a duplicate compile.
func (s *Service) Submit(ctx context.Context, req CompileRequest) (*Job, error) {
	if req.Options.Engine == "" {
		req.Options.Engine = s.cfg.DefaultEngine
	}
	d, mc, opt, key, err := req.build()
	if err != nil {
		return nil, err
	}
	s.metrics.request()

	// Traced requests bypass the cache in both directions: a cached body
	// carries no telemetry, and runJob symmetrically never stores a
	// traced body.
	if !req.Trace {
		if body, ok := s.cache.Get(key); ok {
			s.metrics.hit()
			return s.finishedJob(ctx, req, key, body)
		}
		if s.store != nil {
			if body, ok := s.store.Get(key); ok {
				// Durable hit: promote to the LRU so the next repeat is
				// a memory hit, count both layers.
				s.cache.Put(key, body)
				s.metrics.hit()
				s.metrics.storeHit()
				return s.finishedJob(ctx, req, key, body)
			}
			s.metrics.storeMiss()
		}
		// Async single-flight: async jobs are detached from their
		// submitters (context.WithoutCancel in the HTTP layer), so any
		// number of callers can safely share one in-flight job. Sync
		// jobs stay per-caller — their lifetime is bound to one client's
		// connection.
		if req.Async {
			s.mu.Lock()
			flight := s.inflight[key]
			s.mu.Unlock()
			if flight != nil {
				s.metrics.hit()
				s.metrics.singleflight()
				return flight, nil
			}
		}
	}

	s.metrics.miss()
	jctx, cancel := context.WithTimeout(ctx, req.timeout(s.cfg.DefaultTimeout))
	job, err := s.register(req, key, d, mc, opt, jctx, cancel, true)
	if err != nil {
		cancel()
		return nil, err
	}
	select {
	case s.queue <- job:
		s.journalJob(job, StateQueued)
		return job, nil
	default:
		s.jobsWG.Done()
		s.unregister(job.ID)
		cancel()
		s.metrics.failure()
		return nil, ErrQueueFull
	}
}

// finishedJob registers a job that is terminal before anyone can observe
// it — a cache or durable-store hit. Detached from the caller so a
// racing cancel cannot mark it failed.
func (s *Service) finishedJob(ctx context.Context, req CompileRequest, key string, body []byte) (*Job, error) {
	job, err := s.register(req, key, nil, nil, core.Options{}, context.WithoutCancel(ctx), func() {}, false)
	if err != nil {
		return nil, err
	}
	job.finish(StateDone, body, true, "")
	s.journalJob(job, StateDone)
	return job, nil
}

// journalJob appends one state transition to the persistent journal, if
// configured. Journaling is best-effort: an append error must not fail
// the compile it describes.
func (s *Service) journalJob(job *Job, st State) {
	if s.journal == nil {
		return
	}
	job.mu.Lock()
	rec := store.JobRecord{
		ID: job.ID, Key: job.Key, State: string(st), CacheHit: job.cacheHit,
		Error: job.errMsg, Time: time.Now().UTC().Format(time.RFC3339Nano),
	}
	job.mu.Unlock()
	s.journal.Append(rec)
}

// register creates and indexes a job, pruning the oldest terminal jobs
// beyond the configured history bound. It fails once the service is
// draining. With track set it also joins the job to the drain
// wait-group — under the same lock as the closed check, so no job can
// slip in after Close started waiting.
func (s *Service) register(req CompileRequest, key string, d *ddg.DDG, mc *machine.Config, opt core.Options, jctx context.Context, cancel context.CancelFunc, track bool) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if track {
		s.jobsWG.Add(1)
	}
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	if s.cfg.NodeName != "" {
		id = s.cfg.NodeName + "-" + id
	}
	job := &Job{
		ID:     id,
		Key:    key,
		ctx:    jctx,
		cancel: cancel,
		req:    req,
		d:      d,
		mc:     mc,
		opt:    opt,
		done:   make(chan struct{}),
		state:  StateQueued,
	}
	job.created = time.Now()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if track && !req.Trace {
		s.inflight[key] = job
	}
	for len(s.order) > s.cfg.MaxJobs {
		oldest, ok := s.jobs[s.order[0]]
		if ok && !oldest.State().Terminal() {
			break // never drop a live job; prune resumes once it finishes
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
	return job, nil
}

func (s *Service) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job, ok := s.jobs[id]; ok && s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	delete(s.jobs, id)
	for i, jid := range s.order {
		if jid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// clearFlight drops the single-flight entry once job is terminal.
func (s *Service) clearFlight(job *Job) {
	s.mu.Lock()
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	s.mu.Unlock()
}

// Job returns the job with the given ID, if it is still tracked.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// NoteRateLimited feeds a rate-limit rejection from the middleware layer
// (which lives outside this package) into the /metrics registry.
func (s *Service) NoteRateLimited() { s.metrics.rateLimit() }

// Metrics returns a consistent snapshot of the service counters.
func (s *Service) Metrics() Snapshot {
	snap := s.metrics.Snapshot()
	snap.CacheSize = s.cache.Len()
	snap.QueueDepth = len(s.queue)
	if s.store != nil {
		snap.StoreEntries = s.store.Len()
	}
	ms := s.memo.Stats()
	snap.MemoHits = ms.Hits
	snap.MemoMisses = ms.Misses
	snap.MemoEntries = ms.Entries
	snap.MemoEvictions = ms.Evictions
	snap.MemoByEngine = ms.ByEngine
	if total := ms.Hits + ms.Misses; total > 0 {
		snap.MemoHitRatio = float64(ms.Hits) / float64(total)
	}
	return snap
}

// runJob executes one dequeued job on a worker.
func (s *Service) runJob(job *Job) {
	defer s.jobsWG.Done()
	defer job.cancel()
	defer s.clearFlight(job)
	if err := job.ctx.Err(); err != nil {
		s.metrics.cancel()
		job.finish(StateCancelled, nil, false, err.Error())
		s.journalJob(job, StateCancelled)
		return
	}
	job.setRunning()
	s.journalJob(job, StateRunning)
	s.metrics.jobStart()
	s.metrics.observeQueueWait(time.Since(job.created))
	defer s.metrics.jobEnd()
	start := time.Now()
	body, err := s.execute(job.ctx, job)
	if err != nil {
		if cerr := job.ctx.Err(); cerr != nil {
			s.metrics.cancel()
			job.finish(StateCancelled, nil, false, cerr.Error())
			s.journalJob(job, StateCancelled)
		} else {
			s.metrics.failure()
			job.finish(StateFailed, nil, false, err.Error())
			s.journalJob(job, StateFailed)
		}
		return
	}
	if !job.req.Trace {
		s.cache.Put(job.Key, body)
		// Write-through to the durable layer: the result outlives the
		// process and warms the cache after the next restart.
		if s.store != nil {
			s.store.Put(job.Key, body)
		}
	}
	s.metrics.observe(time.Since(start))
	job.finish(StateDone, body, false, "")
	s.journalJob(job, StateDone)
}

// execute runs a dequeued job's work and renders the response body:
// a design-space sweep for explore jobs, the compile pipeline otherwise.
func (s *Service) execute(ctx context.Context, job *Job) ([]byte, error) {
	if job.exp != nil {
		return s.explore(ctx, job)
	}
	rep, err := s.compile(ctx, job)
	if err != nil {
		return nil, err
	}
	return rep.JSON()
}

// compile runs the requested pipeline: plain HCA, HCA + modulo
// scheduling, or the full §5 feedback loop. With req.Trace set the run is
// recorded and the telemetry summary is folded into the report.
//
// Untraced requests (unless they opt out) run against the process-wide
// subproblem memo, so structurally identical subproblems solve once per
// daemon lifetime rather than once per request. Traced requests use a
// per-run memo instead: their telemetry must be reproducible from the
// request alone, not a function of what the process solved earlier.
func (s *Service) compile(ctx context.Context, job *Job) (*report.Report, error) {
	var rec *trace.Recorder
	if job.req.Trace {
		rec = trace.New()
		ctx = trace.With(ctx, rec)
	} else if job.opt.Memo == nil && !job.opt.DisableMemo {
		job.opt.Memo = s.memo
	}
	if job.req.Options.Feedback {
		fb, err := driver.HCAWithFeedback(ctx, job.d, job.mc, job.opt)
		if err != nil {
			return nil, err
		}
		return report.Build(fb.Result, fb.Schedule, fb.Variant, rec), nil
	}
	res, err := core.HCA(ctx, job.d, job.mc, job.opt)
	if err != nil {
		return nil, err
	}
	var sch *modsched.Schedule
	if job.req.Options.Schedule {
		sch, err = modsched.Run(ctx, res.Final, res.FinalCN, job.mc, modsched.Config{})
		if err != nil {
			return nil, err
		}
	}
	return report.Build(res, sch, "", rec), nil
}
