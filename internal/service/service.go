// Package service turns the batch HCA library into a long-running
// compilation service: a bounded worker pool drains a job queue of
// compile requests, each cancellable and deadline-bounded through
// context.Context, with a content-addressed LRU result cache (keyed by a
// canonical hash of DDG fingerprint + machine + options) and an
// in-process metrics registry. cmd/hcad exposes it over HTTP; tests and
// embedders can drive the Service directly.
//
// The economics mirror what the CGRA-mapping literature reports: a
// mapping run (beam search + mapper + modulo scheduling) is expensive
// and — being deterministic — worth computing exactly once per (kernel,
// fabric, options) configuration. A hit returns the stored bytes, so
// repeated requests are byte-identical by construction.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/modsched"
	"repro/internal/report"
	"repro/internal/trace"
)

// Errors the submission path reports; the HTTP layer maps both to 503.
var (
	ErrClosed    = errors.New("service: draining, no new jobs accepted")
	ErrQueueFull = errors.New("service: job queue full")
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent compile workers (default 4).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (default 256).
	CacheSize int
	// MemoSize is the process-wide subproblem-memo capacity in entries
	// (default 2048). Unlike the result cache, which stores finished
	// report bytes per request, the memo stores solved beam-search
	// attempts and is shared across *different* requests that contain
	// structurally identical subproblems.
	MemoSize int
	// DefaultTimeout bounds each compile when the request does not set
	// its own (default 2 minutes).
	DefaultTimeout time.Duration
	// MaxJobs bounds the terminal-job history kept for GET /v1/jobs
	// (default 1024); the oldest finished jobs are pruned beyond it.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MemoSize <= 0 {
		c.MemoSize = 2048
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// Service is the compilation service. Create with New, stop with Close.
type Service struct {
	cfg     Config
	queue   chan *Job
	workers sync.WaitGroup
	jobsWG  sync.WaitGroup // submitted-but-not-terminal jobs
	cache   *lruCache
	memo    core.SubproblemMemo
	metrics *Metrics

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string // job IDs in creation order, for pruning
	nextID int64
}

// New starts a service with cfg.Workers compile workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		cache:   newLRUCache(cfg.CacheSize),
		memo:    core.NewMemo(cfg.MemoSize),
		metrics: &Metrics{},
		jobs:    make(map[string]*Job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s
}

// Close drains the service: new submissions are rejected, every
// submitted job runs (or cancels) to completion, then the workers stop.
// No accepted job ever loses its response to a shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workers.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.jobsWG.Wait()
	close(s.queue)
	s.workers.Wait()
}

// Submit validates req, serves it from the result cache when possible,
// and otherwise enqueues a compile job whose context descends from ctx
// bounded by the request timeout. The returned job is terminal
// immediately on a cache hit; use Job.Wait for synchronous callers.
func (s *Service) Submit(ctx context.Context, req CompileRequest) (*Job, error) {
	req.normalize()
	d, err := req.buildDDG()
	if err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	mc, err := req.buildMachine()
	if err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	opt, err := req.buildOptions()
	if err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	key := cacheKey(d, mc, req.Options)
	s.metrics.request()

	// Traced requests bypass the cache in both directions: a cached body
	// carries no telemetry, and runJob symmetrically never stores a
	// traced body.
	if !req.Trace {
		if body, ok := s.cache.Get(key); ok {
			s.metrics.hit()
			// The job is terminal before anyone can observe it; detach
			// from the caller so a racing cancel cannot mark it failed.
			job, err := s.register(req, key, nil, nil, core.Options{}, context.WithoutCancel(ctx), func() {}, false)
			if err != nil {
				return nil, err
			}
			job.finish(StateDone, body, true, "")
			return job, nil
		}
	}

	s.metrics.miss()
	jctx, cancel := context.WithTimeout(ctx, req.timeout(s.cfg.DefaultTimeout))
	job, err := s.register(req, key, d, mc, opt, jctx, cancel, true)
	if err != nil {
		cancel()
		return nil, err
	}
	select {
	case s.queue <- job:
		return job, nil
	default:
		s.jobsWG.Done()
		s.unregister(job.ID)
		cancel()
		s.metrics.failure()
		return nil, ErrQueueFull
	}
}

// register creates and indexes a job, pruning the oldest terminal jobs
// beyond the configured history bound. It fails once the service is
// draining. With track set it also joins the job to the drain
// wait-group — under the same lock as the closed check, so no job can
// slip in after Close started waiting.
func (s *Service) register(req CompileRequest, key string, d *ddg.DDG, mc *machine.Config, opt core.Options, jctx context.Context, cancel context.CancelFunc, track bool) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if track {
		s.jobsWG.Add(1)
	}
	s.nextID++
	job := &Job{
		ID:     fmt.Sprintf("job-%06d", s.nextID),
		Key:    key,
		ctx:    jctx,
		cancel: cancel,
		req:    req,
		d:      d,
		mc:     mc,
		opt:    opt,
		done:   make(chan struct{}),
		state:  StateQueued,
	}
	job.created = time.Now()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	for len(s.order) > s.cfg.MaxJobs {
		oldest, ok := s.jobs[s.order[0]]
		if ok && !oldest.State().Terminal() {
			break // never drop a live job; prune resumes once it finishes
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
	return job, nil
}

func (s *Service) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, jid := range s.order {
		if jid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Job returns the job with the given ID, if it is still tracked.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Metrics returns a consistent snapshot of the service counters.
func (s *Service) Metrics() Snapshot {
	snap := s.metrics.Snapshot()
	snap.CacheSize = s.cache.Len()
	snap.QueueDepth = len(s.queue)
	ms := s.memo.Stats()
	snap.MemoHits = ms.Hits
	snap.MemoMisses = ms.Misses
	snap.MemoEntries = ms.Entries
	snap.MemoEvictions = ms.Evictions
	if total := ms.Hits + ms.Misses; total > 0 {
		snap.MemoHitRatio = float64(ms.Hits) / float64(total)
	}
	return snap
}

// runJob executes one dequeued job on a worker.
func (s *Service) runJob(job *Job) {
	defer s.jobsWG.Done()
	defer job.cancel()
	if err := job.ctx.Err(); err != nil {
		s.metrics.cancel()
		job.finish(StateCancelled, nil, false, err.Error())
		return
	}
	job.setRunning()
	s.metrics.jobStart()
	s.metrics.observeQueueWait(time.Since(job.created))
	defer s.metrics.jobEnd()
	start := time.Now()
	rep, err := s.compile(job.ctx, job)
	if err != nil {
		if cerr := job.ctx.Err(); cerr != nil {
			s.metrics.cancel()
			job.finish(StateCancelled, nil, false, cerr.Error())
		} else {
			s.metrics.failure()
			job.finish(StateFailed, nil, false, err.Error())
		}
		return
	}
	body, err := rep.JSON()
	if err != nil {
		s.metrics.failure()
		job.finish(StateFailed, nil, false, err.Error())
		return
	}
	if !job.req.Trace {
		s.cache.Put(job.Key, body)
	}
	s.metrics.observe(time.Since(start))
	job.finish(StateDone, body, false, "")
}

// compile runs the requested pipeline: plain HCA, HCA + modulo
// scheduling, or the full §5 feedback loop. With req.Trace set the run is
// recorded and the telemetry summary is folded into the report.
//
// Untraced requests (unless they opt out) run against the process-wide
// subproblem memo, so structurally identical subproblems solve once per
// daemon lifetime rather than once per request. Traced requests use a
// per-run memo instead: their telemetry must be reproducible from the
// request alone, not a function of what the process solved earlier.
func (s *Service) compile(ctx context.Context, job *Job) (*report.Report, error) {
	var rec *trace.Recorder
	if job.req.Trace {
		rec = trace.New()
		ctx = trace.With(ctx, rec)
	} else if job.opt.Memo == nil && !job.opt.DisableMemo {
		job.opt.Memo = s.memo
	}
	if job.req.Options.Feedback {
		fb, err := driver.HCAWithFeedback(ctx, job.d, job.mc, job.opt)
		if err != nil {
			return nil, err
		}
		return report.Build(fb.Result, fb.Schedule, fb.Variant, rec), nil
	}
	res, err := core.HCA(ctx, job.d, job.mc, job.opt)
	if err != nil {
		return nil, err
	}
	var sch *modsched.Schedule
	if job.req.Options.Schedule {
		sch, err = modsched.Run(ctx, res.Final, res.FinalCN, job.mc, modsched.Config{})
		if err != nil {
			return nil, err
		}
	}
	return report.Build(res, sch, "", rec), nil
}
