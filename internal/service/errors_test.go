package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The full HTTP error surface: every failure mode maps to a specific
// status code with the typed ErrorBody envelope, and typed validation
// errors keep their *see.OptionError field name across the wire.
func TestHTTPErrorSurface(t *testing.T) {
	svc := New(Config{Workers: 1, MaxBodyBytes: 2048})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	oversized := fmt.Sprintf(`{"kernel":"fir2dim","source":%q}`, strings.Repeat("x", 4096))

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantField  string // ErrorBody.Field, when a typed error must survive
		wantErr    string // substring of ErrorBody.Error
	}{
		{
			name:   "malformed JSON",
			method: "POST", path: "/v1/compile", body: `{"kernel"`,
			wantStatus: http.StatusBadRequest, wantErr: "bad request body",
		},
		{
			name:   "unknown field rejected",
			method: "POST", path: "/v1/compile", body: `{"kernel":"fir2dim","bogus":1}`,
			wantStatus: http.StatusBadRequest, wantErr: "bogus",
		},
		{
			name:   "no DDG source is a typed option error",
			method: "POST", path: "/v1/compile", body: `{}`,
			wantStatus: http.StatusBadRequest, wantField: "kernel",
			wantErr: "exactly one of kernel, synth or source",
		},
		{
			name:   "out-of-range synth ops keeps its field",
			method: "POST", path: "/v1/compile", body: `{"synth":{"ops":4,"seed":1}}`,
			wantStatus: http.StatusBadRequest, wantField: "synth.ops",
			wantErr: "out of range",
		},
		{
			name:   "bad machine type keeps its field",
			method: "POST", path: "/v1/compile", body: `{"kernel":"fir2dim","machine":{"type":"quantum"}}`,
			wantStatus: http.StatusBadRequest, wantField: "machine.type",
			wantErr: "dspfabric, rcp or linear",
		},
		{
			name:   "unknown engine keeps its field",
			method: "POST", path: "/v1/compile", body: `{"kernel":"fir2dim","options":{"engine":"annealing"}}`,
			wantStatus: http.StatusBadRequest, wantField: "engine",
			wantErr: "unknown engine",
		},
		{
			name:   "oversized body",
			method: "POST", path: "/v1/compile", body: oversized,
			wantStatus: http.StatusRequestEntityTooLarge, wantErr: "too large",
		},
		{
			name:   "unknown job ID",
			method: "GET", path: "/v1/jobs/job-424242",
			wantStatus: http.StatusNotFound, wantErr: "unknown job",
		},
		{
			name:   "batch: empty entries is a typed option error",
			method: "POST", path: "/v1/compile/batch", body: `{"entries":[]}`,
			wantStatus: http.StatusBadRequest, wantField: "entries",
			wantErr: "at least one entry",
		},
		{
			name:   "batch: oversized body",
			method: "POST", path: "/v1/compile/batch", body: `{"entries":[` + oversized + `]}`,
			wantStatus: http.StatusRequestEntityTooLarge, wantErr: "too large",
		},
		{
			name:   "batch: malformed JSON",
			method: "POST", path: "/v1/compile/batch", body: `[{"kernel":`,
			wantStatus: http.StatusBadRequest, wantErr: "bad request body",
		},
		{
			name:   "wrong method on compile",
			method: "GET", path: "/v1/compile",
			wantStatus: http.StatusMethodNotAllowed, wantErr: "POST only",
		},
		{
			name:   "wrong method on batch",
			method: "DELETE", path: "/v1/compile/batch",
			wantStatus: http.StatusMethodNotAllowed, wantErr: "POST only",
		},
		{
			name:   "wrong method on jobs",
			method: "POST", path: "/v1/jobs/job-000001",
			wantStatus: http.StatusMethodNotAllowed, wantErr: "GET only",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rdr *strings.Reader = strings.NewReader(tc.body)
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rdr)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var eb ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("non-JSON error body: %v", err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.wantStatus, eb.Error)
			}
			if tc.wantField != "" && eb.Field != tc.wantField {
				t.Errorf("field %q, want %q (%s)", eb.Field, tc.wantField, eb.Error)
			}
			if !strings.Contains(eb.Error, tc.wantErr) {
				t.Errorf("error %q missing %q", eb.Error, tc.wantErr)
			}
		})
	}
}

// Backpressure surfaces as 503 on the single-compile endpoint too.
func TestCompileQueueFull(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for seed := 0; seed < 2; seed++ {
		resp, b := mustPost(t, ts.Client(), ts.URL,
			fmt.Sprintf(`{"synth":{"ops":2500,"seed":%d,"rec_latency":3},"async":true}`, 700+seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("filler %d: status %d: %s", seed, resp.StatusCode, b)
		}
	}
	resp, b := mustPost(t, ts.Client(), ts.URL, `{"synth":{"ops":2500,"seed":777,"rec_latency":3},"async":true}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d: %s", resp.StatusCode, b)
	}
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || !strings.Contains(eb.Error, "queue full") {
		t.Fatalf("503 body (%v): %s", err, b)
	}
	svc.Close()
}
