package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// openStores opens (or reopens) the durable layers in dir, exactly as
// cmd/hcad -data-dir does.
func openStores(t *testing.T, dir string) (*store.ResultStore, *store.JobStore) {
	t.Helper()
	rs, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	js, err := store.OpenJobs(filepath.Join(dir, "jobs.jsonl"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	return rs, js
}

// The tentpole acceptance scenario: compile against a data dir, restart
// the service on the same dir, and identical requests are served from
// the durable store without recompiling — and async job state survives
// with its final status queryable.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()

	// ---- first life: compile one sync and one async request ----
	rs, js := openStores(t, dir)
	svc := New(Config{Workers: 2, Store: rs, Journal: js})
	ts := httptest.NewServer(svc.Handler())

	syncBody := `{"kernel":"fir2dim"}`
	resp, firstBytes := mustPost(t, ts.Client(), ts.URL, syncBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first compile: status %d: %s", resp.StatusCode, firstBytes)
	}

	asyncJob, err := svc.Submit(context.Background(), CompileRequest{
		Synth: &SynthSpec{Ops: 48, Seed: 11, RecLatency: 3},
		Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := asyncJob.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	asyncID := asyncJob.ID

	m1 := svc.Metrics()
	if m1.StoreHits != 0 || m1.CacheMisses != 2 {
		t.Fatalf("first life metrics: %+v", m1)
	}
	ts.Close()
	svc.Close() // syncs the journal

	// ---- second life: same data dir, fresh process state ----
	rs2, js2 := openStores(t, dir)
	svc2 := New(Config{Workers: 2, Store: rs2, Journal: js2})
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()

	m2 := svc2.Metrics()
	if m2.StoreEntries != 2 {
		t.Fatalf("store entries after restart: %d, want 2", m2.StoreEntries)
	}
	if m2.StoreWarmed != 2 {
		t.Fatalf("warmed %d entries, want 2", m2.StoreWarmed)
	}
	if m2.RecoveredJobs == 0 {
		t.Fatal("no jobs recovered from journal")
	}

	// The identical sync request must be a hit served without
	// recompiling — warmed straight into the LRU, byte-identical.
	resp2, b2 := mustPost(t, ts2.Client(), ts2.URL, syncBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay compile: status %d: %s", resp2.StatusCode, b2)
	}
	if got := resp2.Header.Get("X-Hca-Cache"); got != "hit" {
		t.Fatalf("replay X-Hca-Cache %q, want hit", got)
	}
	if string(b2) != string(firstBytes) {
		t.Fatal("replay bytes differ from first life")
	}
	m3 := svc2.Metrics()
	if m3.CacheHits != 1 || m3.CacheMisses != 0 {
		t.Fatalf("replay metrics: %+v", m3)
	}

	// The async job from the first life is still queryable by ID with
	// its final status and result.
	jr, err := ts2.Client().Get(ts2.URL + "/v1/jobs/" + asyncID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("recovered job lookup: status %d", jr.StatusCode)
	}
	job, ok := svc2.Job(asyncID)
	if !ok {
		t.Fatalf("job %s not recovered", asyncID)
	}
	st := job.Status()
	if st.State != StateDone || !st.Recovered {
		t.Fatalf("recovered job status %+v", st)
	}
	if body, _ := job.Result(); len(body) == 0 {
		t.Fatal("recovered job has no result bytes")
	}
}

// A durable store hit that missed the warmed LRU still avoids
// recompilation: evict the LRU entry, keep the store, and the request
// must come back as a hit with the store-hit counter moving.
func TestStoreHitBelowLRU(t *testing.T) {
	dir := t.TempDir()
	rs, js := openStores(t, dir)
	// CacheSize 1: compiling a second kernel evicts the first from the
	// LRU while the store keeps both.
	svc := New(Config{Workers: 1, CacheSize: 1, Store: rs, Journal: js})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	mustPost(t, ts.Client(), ts.URL, `{"kernel":"fir2dim"}`)
	mustPost(t, ts.Client(), ts.URL, `{"kernel":"idcthor"}`) // evicts fir2dim from LRU

	resp, b := mustPost(t, ts.Client(), ts.URL, `{"kernel":"fir2dim"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Hca-Cache"); got != "hit" {
		t.Fatalf("X-Hca-Cache %q, want hit (from durable store)", got)
	}
	m := svc.Metrics()
	if m.StoreHits != 1 {
		t.Fatalf("store hits %d, want 1: %+v", m.StoreHits, m)
	}
	if m.Requests != 3 || m.CacheHits+m.CacheMisses != m.Requests {
		t.Fatalf("cache invariant broken: %+v", m)
	}
}

// A job that was mid-flight when the daemon died must surface as failed
// ("interrupted"), not vanish and not hang a poller forever.
func TestRestartMarksInflightJobsFailed(t *testing.T) {
	dir := t.TempDir()
	_, js := openStores(t, dir)
	// Journal a queued and a running job as a crash would leave them.
	for _, rec := range []store.JobRecord{
		{ID: "job-000007", Key: strings.Repeat("a", 64), State: "queued", Time: time.Now().UTC().Format(time.RFC3339Nano)},
		{ID: "job-000008", Key: strings.Repeat("b", 64), State: "running", Time: time.Now().UTC().Format(time.RFC3339Nano)},
	} {
		if err := js.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	js.Close()

	rs2, js2 := openStores(t, dir)
	svc := New(Config{Workers: 1, Store: rs2, Journal: js2})
	defer svc.Close()

	for _, id := range []string{"job-000007", "job-000008"} {
		job, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		st := job.Status()
		if st.State != StateFailed || !strings.Contains(st.Error, "interrupted") {
			t.Fatalf("job %s recovered as %+v, want failed/interrupted", id, st)
		}
	}
	// New IDs must not collide with replayed ones.
	j, err := svc.Submit(context.Background(), CompileRequest{Kernel: "fir2dim"})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-000009" {
		t.Fatalf("next ID %s, want job-000009", j.ID)
	}
}

// The TTL reaper evicts old terminal jobs and leaves in-flight ones
// alone.
func TestJobTTLGC(t *testing.T) {
	svc := New(Config{
		Workers:       1,
		JobTTL:        50 * time.Millisecond,
		JobGCInterval: 10 * time.Millisecond,
	})
	defer svc.Close()

	done, err := svc.Submit(context.Background(), CompileRequest{Kernel: "fir2dim", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := done.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// An in-flight job: submitted with a context we hold open and a
	// long-running synthetic kernel so it stays running past the TTL.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	running, err := svc.Submit(ctx, CompileRequest{
		Synth: &SynthSpec{Ops: 2500, Seed: 3, RecLatency: 3},
		Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Job(done.ID); !ok {
			break // reaped
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job never reaped by TTL GC")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := svc.Job(running.ID); !ok {
		st := running.Status()
		if !st.State.Terminal() {
			t.Fatalf("in-flight job (state %s) was reaped", st.State)
		}
		// It finished before the check — that's fine, but then it was
		// reaped legitimately as a terminal job.
	}
}
