package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/dse"
	"repro/internal/see"
)

// DefaultMaxExplorePoints is the default bound on how many grid points a
// single POST /v1/explore request may expand to.
const DefaultMaxExplorePoints = 64

// ExploreRequest is the body of POST /v1/explore: one kernel (the same
// exactly-one-of kernel/synth/source rule as /v1/compile) swept against
// a parameter grid of candidate fabrics. The sweep runs as one job —
// cacheable, journable and pollable exactly like a compile — whose
// result body is the dse.Result JSON: every point, the Pareto front
// over (final MII, fabric cost), and the sweep stats.
type ExploreRequest struct {
	Kernel string     `json:"kernel,omitempty"`
	Synth  *SynthSpec `json:"synth,omitempty"`
	Source string     `json:"source,omitempty"`
	// Grid is the parameter sweep (see dse.Grid); the zero grid is the
	// single paper-default point.
	Grid dse.Grid `json:"grid"`
	// Beam / Cand are the SEE search widths applied to every point
	// (defaults 8/4, canonicalized like the compile endpoint's).
	Beam int `json:"beam,omitempty"`
	Cand int `json:"cand,omitempty"`
	// ExactBudget caps the exact engine's node expansions per attempt
	// for points whose engine axis selects "exact" or "portfolio".
	ExactBudget int64 `json:"exact_budget,omitempty"`
	// TimeoutMs bounds the whole sweep; the service default applies when
	// zero. Not part of the cache key.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Async returns a job ID immediately; poll GET /v1/jobs/{id}. Not
	// part of the cache key.
	Async bool `json:"async,omitempty"`
}

// exploreSpec is the worker-side payload of an exploration job.
type exploreSpec struct {
	d    *ddg.DDG
	grid dse.Grid
	opt  dse.Options
}

// normalize canonicalizes the search widths so equivalent requests
// cache identically, mirroring CompileRequest.normalize.
func (r *ExploreRequest) normalize() {
	if r.Beam >= 0 && r.Cand >= 0 {
		canon := see.Config{BeamWidth: r.Beam, CandWidth: r.Cand}.WithDefaults()
		r.Beam = canon.BeamWidth
		r.Cand = canon.CandWidth
	}
}

// build validates the request and constructs the DDG, the sweep spec
// and the content-addressed cache key. maxPoints is the service's
// point-count bound; grids beyond it come back as typed
// *see.OptionError values → HTTP 400.
func (r *ExploreRequest) build(maxPoints int) (*exploreSpec, string, error) {
	r.normalize()
	src := CompileRequest{Kernel: r.Kernel, Synth: r.Synth, Source: r.Source}
	d, err := src.buildDDG()
	if err != nil {
		return nil, "", fmt.Errorf("bad request: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, "", fmt.Errorf("bad request: %w", err)
	}
	n, err := r.Grid.NumPoints()
	if err != nil {
		return nil, "", fmt.Errorf("bad request: %w", err)
	}
	if n > maxPoints {
		return nil, "", fmt.Errorf("bad request: %w", &see.OptionError{
			Field: "grid", Value: n,
			Reason: fmt.Sprintf("grid expands to %d points, limit %d", n, maxPoints)})
	}
	if r.ExactBudget < 0 {
		return nil, "", fmt.Errorf("bad request: %w", &see.OptionError{
			Field: "exact_budget", Value: int(r.ExactBudget), Reason: "must be >= 0"})
	}
	spec := &exploreSpec{
		d:    d,
		grid: r.Grid,
		opt: dse.Options{
			Beam: r.Beam, Cand: r.Cand,
			ExactBudget: r.ExactBudget,
			MaxPoints:   maxPoints,
		},
	}
	return spec, exploreKey(d, r), nil
}

// timeout returns the effective sweep deadline.
func (r *ExploreRequest) timeout(def time.Duration) time.Duration {
	if r.TimeoutMs > 0 {
		return time.Duration(r.TimeoutMs) * time.Millisecond
	}
	return def
}

// exploreKey derives the sweep's content-addressed cache key: a SHA-256
// over a domain tag, the DDG's canonical fingerprint, the grid's
// canonical JSON and every option that changes the result. Delivery
// options (timeout, async) are excluded, exactly like cacheKey.
func exploreKey(d *ddg.DDG, r *ExploreRequest) string {
	grid, _ := json.Marshal(r.Grid)
	h := sha256.New()
	fmt.Fprintf(h, "explore\nddg:%s\ngrid:%s\nopts:b%d|c%d|xb%d\n",
		d.Fingerprint(), grid, r.Beam, r.Cand, r.ExactBudget)
	return hex.EncodeToString(h.Sum(nil))
}

// SubmitExplore validates req, serves it from the result cache when
// possible, and otherwise enqueues a sweep job on the same worker pool,
// queue-backpressure and journal path as compiles. Identical async
// sweeps single-flight onto one in-flight job.
func (s *Service) SubmitExplore(ctx context.Context, req ExploreRequest) (*Job, error) {
	spec, key, err := req.build(s.cfg.MaxExplorePoints)
	if err != nil {
		return nil, err
	}
	s.metrics.request()

	if body, ok := s.cache.Get(key); ok {
		s.metrics.hit()
		return s.finishedJob(ctx, CompileRequest{}, key, body)
	}
	if s.store != nil {
		if body, ok := s.store.Get(key); ok {
			s.cache.Put(key, body)
			s.metrics.hit()
			s.metrics.storeHit()
			return s.finishedJob(ctx, CompileRequest{}, key, body)
		}
		s.metrics.storeMiss()
	}
	if req.Async {
		s.mu.Lock()
		flight := s.inflight[key]
		s.mu.Unlock()
		if flight != nil {
			s.metrics.hit()
			s.metrics.singleflight()
			return flight, nil
		}
	}

	s.metrics.miss()
	jctx, cancel := context.WithTimeout(ctx, req.timeout(s.cfg.DefaultTimeout))
	job, err := s.register(CompileRequest{}, key, nil, nil, core.Options{}, jctx, cancel, true)
	if err != nil {
		cancel()
		return nil, err
	}
	job.exp = spec
	select {
	case s.queue <- job:
		s.journalJob(job, StateQueued)
		return job, nil
	default:
		s.jobsWG.Done()
		s.unregister(job.ID)
		cancel()
		s.metrics.failure()
		return nil, ErrQueueFull
	}
}

// explore runs one sweep job against the process-wide subproblem memo,
// so a sweep both profits from and warms the memo shared with ordinary
// compile traffic.
func (s *Service) explore(ctx context.Context, job *Job) ([]byte, error) {
	opt := job.exp.opt
	if opt.Memo == nil {
		opt.Memo = s.memo
	}
	res, err := dse.Sweep(ctx, job.exp.d, job.exp.grid, opt)
	if err != nil {
		return nil, err
	}
	s.metrics.sweep(int64(res.Stats.Points), int64(res.Stats.Deduped))
	return json.MarshalIndent(res, "", "  ")
}

// handleExplore is POST /v1/explore.
func (s *Service) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req ExploreRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	parent := r.Context()
	if req.Async {
		parent = context.WithoutCancel(r.Context())
	}
	job, err := s.SubmitExplore(parent, req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	if err := job.Wait(r.Context()); err != nil {
		writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	s.writeJobResult(w, job)
}
