package service

import (
	"context"
	"testing"
	"time"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b (a was just refreshed)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Error("c lost")
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
	c.Put("a", []byte("A2")) // update in place
	if v, _ := c.Get("a"); string(v) != "A2" {
		t.Error("update lost")
	}
}

func TestMetricsPercentiles(t *testing.T) {
	m := &Metrics{}
	for i := 1; i <= 100; i++ {
		m.observe(time.Duration(i) * time.Millisecond)
	}
	s := m.Snapshot()
	if s.LatencySamples != 100 {
		t.Fatalf("samples %d", s.LatencySamples)
	}
	if s.LatencyP50Ms < 45 || s.LatencyP50Ms > 55 {
		t.Errorf("p50 %v", s.LatencyP50Ms)
	}
	if s.LatencyP99Ms < 95 || s.LatencyP99Ms > 100 {
		t.Errorf("p99 %v", s.LatencyP99Ms)
	}
}

// Equivalent requests must canonicalize to the same cache key; requests
// differing in any result-affecting dimension must not.
func TestCacheKeyCanonicalization(t *testing.T) {
	key := func(req CompileRequest) string {
		req.normalize()
		d, err := req.buildDDG()
		if err != nil {
			t.Fatal(err)
		}
		mc, err := req.buildMachine()
		if err != nil {
			t.Fatal(err)
		}
		return cacheKey(d, mc, req.Options)
	}

	implicit := CompileRequest{Kernel: "fir2dim"}
	explicit := CompileRequest{
		Kernel:  "fir2dim",
		Machine: MachineSpec{Type: "dspfabric", N: 8, M: 8, K: 8},
		Options: OptionsSpec{Beam: 8, Cand: 4},
		// Delivery options never affect the key.
		TimeoutMs: 12345,
		Async:     true,
	}
	if key(implicit) != key(explicit) {
		t.Error("defaulted and explicit requests disagree on the key")
	}
	for i := 0; i < 100; i++ {
		if key(implicit) != key(explicit) {
			t.Fatalf("key unstable at iteration %d", i)
		}
	}

	distinct := []CompileRequest{
		{Kernel: "idcthor"},
		{Kernel: "fir2dim", Machine: MachineSpec{N: 4}},
		{Kernel: "fir2dim", Machine: MachineSpec{Type: "rcp"}},
		{Kernel: "fir2dim", Options: OptionsSpec{Beam: 16}},
		{Kernel: "fir2dim", Options: OptionsSpec{Schedule: true}},
		{Kernel: "fir2dim", Options: OptionsSpec{Feedback: true}},
		{Kernel: "fir2dim", Options: OptionsSpec{DisableSeeding: true}},
		{Synth: &SynthSpec{Ops: 64, Seed: 1}},
		{Synth: &SynthSpec{Ops: 64, Seed: 2}},
	}
	seen := map[string]int{key(implicit): -1}
	for i, req := range distinct {
		k := key(req)
		if prev, ok := seen[k]; ok {
			t.Errorf("request %d collides with %d", i, prev)
		}
		seen[k] = i
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for _, req := range []CompileRequest{
		{}, // no DDG source
		{Kernel: "fir2dim", Synth: &SynthSpec{Ops: 64}}, // two sources
		{Kernel: "nosuchkernel"},
		{Synth: &SynthSpec{Ops: 4}}, // too small
		{Source: "kernel bad {"},    // lang syntax error
		{Kernel: "fir2dim", Machine: MachineSpec{Type: "warpdrive"}},
	} {
		if _, err := s.Submit(context.Background(), req); err == nil {
			t.Errorf("request %+v accepted", req)
		}
	}
}

// A request-level timeout must cancel the compile mid-flight and
// surface a cancelled job, not a hung worker.
func TestSubmitTimeoutCancelsCompile(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	job, err := s.Submit(context.Background(), CompileRequest{
		Synth:     &SynthSpec{Ops: 2048, Seed: 3, RecLatency: 3},
		TimeoutMs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := job.State(); st != StateCancelled {
		t.Fatalf("state %s, want cancelled", st)
	}
	m := s.Metrics()
	if m.Cancelled != 1 || m.CacheMisses != 1 || m.Requests != 1 {
		t.Errorf("metrics %+v", m)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	submit := func(seed int64) (*Job, error) {
		return s.Submit(context.Background(), CompileRequest{
			Synth: &SynthSpec{Ops: 256, Seed: seed, RecLatency: 3},
		})
	}
	var jobs []*Job
	sawFull := false
	// One worker, queue depth one: the third-or-later distinct submit
	// while the first still runs must hit backpressure.
	for seed := int64(1); seed <= 8; seed++ {
		j, err := submit(seed)
		if err == ErrQueueFull {
			sawFull = true
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if !sawFull {
		t.Error("never saw ErrQueueFull with a single busy worker")
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if j.State() != StateDone {
			t.Errorf("job %s: %s (%s)", j.ID, j.State(), j.Err())
		}
	}
}

// Close must drain: every accepted job completes and keeps its result;
// submissions after Close are rejected.
func TestCloseDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	var jobs []*Job
	for seed := int64(1); seed <= 4; seed++ {
		j, err := s.Submit(context.Background(), CompileRequest{
			Synth: &SynthSpec{Ops: 128, Seed: seed, RecLatency: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Close()
	for _, j := range jobs {
		if j.State() != StateDone {
			t.Errorf("job %s not drained: %s (%s)", j.ID, j.State(), j.Err())
		}
		if body, _ := j.Result(); len(body) == 0 {
			t.Errorf("job %s lost its result", j.ID)
		}
	}
	if _, err := s.Submit(context.Background(), CompileRequest{Kernel: "fir2dim"}); err != ErrClosed {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

// Sanity-check the job history bound: old terminal jobs are pruned, live
// ones never are.
func TestJobHistoryPruning(t *testing.T) {
	s := New(Config{Workers: 2, MaxJobs: 3})
	defer s.Close()
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := s.Submit(context.Background(), CompileRequest{Kernel: "fir2dim"})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Error("oldest job survived pruning")
	}
	if _, ok := s.Job(ids[len(ids)-1]); !ok {
		t.Error("newest job was pruned")
	}
	m := s.Metrics()
	if m.Requests != 6 || m.CacheHits != 5 || m.CacheMisses != 1 {
		t.Errorf("metrics %+v, want 6 requests = 5 hits + 1 miss", m)
	}
}

// The process-wide subproblem memo spans requests: two *different*
// requests over the same kernel (different pipeline options, so the
// result cache cannot serve the second) share beam-search attempts, and
// the /metrics snapshot reports the hits.
func TestMemoSpansRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	run := func(req CompileRequest) {
		t.Helper()
		job, err := s.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if st := job.State(); st != StateDone {
			t.Fatalf("state %s: %s", st, job.Err())
		}
	}
	run(CompileRequest{Kernel: "fir2dim"})
	after1 := s.Metrics()
	if after1.MemoMisses == 0 {
		t.Fatalf("first compile recorded no memo traffic: %+v", after1)
	}
	// Different options → different result-cache key, same subproblems.
	run(CompileRequest{Kernel: "fir2dim", Options: OptionsSpec{Schedule: true}})
	after2 := s.Metrics()
	if after2.CacheHits != 0 {
		t.Fatalf("second request unexpectedly served from the result cache: %+v", after2)
	}
	if after2.MemoHits <= after1.MemoHits {
		t.Fatalf("second request gained no memo hits: %+v -> %+v", after1, after2)
	}
	if after2.MemoEntries == 0 || after2.MemoHitRatio <= 0 {
		t.Fatalf("memo snapshot incomplete: %+v", after2)
	}
	// Opting out must not touch the process memo.
	before := s.Metrics()
	run(CompileRequest{Kernel: "idcthor", Options: OptionsSpec{DisableMemo: true}})
	if got := s.Metrics(); got.MemoHits != before.MemoHits || got.MemoMisses != before.MemoMisses {
		t.Fatalf("disable_memo request touched the memo: %+v -> %+v", before, got)
	}
}
