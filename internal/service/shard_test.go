package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:2", "n3:3"})
	b := NewRing([]string{"n3:3", "n1:1", "n2:2", "n2:2"}) // order/dups irrelevant
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, ob := a.Owner(key), b.Owner(key)
		if oa != ob {
			t.Fatalf("rings disagree on %s: %s vs %s", key, oa, ob)
		}
		counts[oa]++
	}
	for node, n := range counts {
		if n < 500 {
			t.Errorf("node %s owns only %d/3000 keys — ring badly unbalanced", node, n)
		}
	}
	if got := NewRing(nil).Owner("x"); got != "" {
		t.Errorf("empty ring owner %q", got)
	}
}

// shardNode is one in-process fleet member: a real TCP listener (so
// peers can dial it), a service namespaced by its node tag, and the
// sharded handler wrapping the service's API.
type shardNode struct {
	addr string
	tag  string
	svc  *Service
	srv  *http.Server
	ln   net.Listener
}

func startFleet(t *testing.T, n int) []*shardNode {
	t.Helper()
	// Listeners first: the ring needs every address before any handler
	// can be built.
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*shardNode, n)
	for i := range nodes {
		svc := New(Config{Workers: 2, NodeName: NodeTag(addrs[i])})
		sh := NewShardedHandler(svc, svc.Handler(), ShardOptions{
			Self:   addrs[i],
			Peers:  addrs,
			Client: &http.Client{Timeout: 5 * time.Second},
		})
		srv := &http.Server{Handler: sh}
		nodes[i] = &shardNode{addr: addrs[i], tag: NodeTag(addrs[i]), svc: svc, srv: srv, ln: lns[i]}
		go srv.Serve(lns[i])
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.srv.Close()
			nd.svc.Close()
		}
	})
	return nodes
}

// requestOwnedBy finds a synth request whose fingerprint the ring
// assigns to want's address.
func requestOwnedBy(t *testing.T, ring *Ring, want string) (CompileRequest, string) {
	t.Helper()
	for seed := 1; seed < 500; seed++ {
		req := CompileRequest{Synth: &SynthSpec{Ops: 48, Seed: int64(seed), RecLatency: 3}}
		key, err := RequestKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == want {
			return req, key
		}
	}
	t.Fatal("no seed in 1..500 owned by target node — ring broken?")
	return CompileRequest{}, ""
}

func TestTwoNodeShardRouting(t *testing.T) {
	nodes := startFleet(t, 2)
	a, b := nodes[0], nodes[1]
	client := &http.Client{Timeout: 30 * time.Second}
	ring := NewRing([]string{a.addr, b.addr})

	req, _ := requestOwnedBy(t, ring, b.addr)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	post := func(node *shardNode) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Post("http://"+node.addr+"/v1/compile", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, rb
	}

	// Submit to node A a request the ring assigns to node B: A must
	// forward, and the response must be stamped with B's shard tag.
	resp, rb := post(a)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded compile: status %d: %s", resp.StatusCode, rb)
	}
	if got := resp.Header.Get(ShardHeader); got != b.tag {
		t.Fatalf("%s = %q, want owner tag %q", ShardHeader, got, b.tag)
	}
	if !strings.HasPrefix(resp.Header.Get("X-Hca-Job"), b.tag+"-") {
		t.Fatalf("job %q not namespaced by owner tag %q", resp.Header.Get("X-Hca-Job"), b.tag)
	}
	if m := a.svc.Metrics(); m.Forwarded != 1 || m.Requests != 0 {
		t.Fatalf("node A after forward: forwarded=%d requests=%d", m.Forwarded, m.Requests)
	}
	if m := b.svc.Metrics(); m.Requests != 1 || m.CacheMisses != 1 {
		t.Fatalf("node B after forward: %+v", m)
	}

	// Same request via node B directly: served from B's own cache — the
	// whole point of routing by fingerprint is that the fleet computes
	// each configuration exactly once.
	resp2, rb2 := post(b)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("owner compile: status %d: %s", resp2.StatusCode, rb2)
	}
	if got := resp2.Header.Get("X-Hca-Cache"); got != "hit" {
		t.Fatalf("owner repeat: X-Hca-Cache %q, want hit", got)
	}
	if string(rb) != string(rb2) {
		t.Fatal("forwarded and owner responses differ")
	}

	// Job lookups route by the tag prefix: ask node A for B's job.
	jobID := resp.Header.Get("X-Hca-Job")
	jr, err := client.Get("http://" + a.addr + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := io.ReadAll(jr.Body)
	jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("cross-node job lookup: status %d: %s", jr.StatusCode, jb)
	}
	if got := jr.Header.Get(ShardHeader); got != b.tag {
		t.Fatalf("job lookup %s = %q, want %q", ShardHeader, got, b.tag)
	}

	// Kill the owner: node A must degrade to computing locally rather
	// than failing the client.
	b.srv.Close()
	b.ln.Close()
	resp3, rb3 := post(a)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("fallback compile: status %d: %s", resp3.StatusCode, rb3)
	}
	if got := resp3.Header.Get(ShardHeader); got != a.tag {
		t.Fatalf("fallback %s = %q, want local tag %q", ShardHeader, got, a.tag)
	}
	if string(rb3) != string(rb) {
		t.Fatal("fallback result differs — compile is not deterministic?")
	}
	if m := a.svc.Metrics(); m.ForwardFallbacks != 1 || m.Requests != 1 {
		t.Fatalf("node A after fallback: fallbacks=%d requests=%d", m.ForwardFallbacks, m.Requests)
	}
}

// A request a peer already forwarded is served locally even when the
// ring disagrees — the loop-prevention invariant.
func TestShardForwardLoopPrevention(t *testing.T) {
	nodes := startFleet(t, 2)
	a, b := nodes[0], nodes[1]
	ring := NewRing([]string{a.addr, b.addr})
	req, _ := requestOwnedBy(t, ring, b.addr)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	hr, err := http.NewRequest(http.MethodPost, "http://"+a.addr+"/v1/compile", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(ForwardedByHeader, b.addr) // pretend B routed it here
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, rb)
	}
	if got := resp.Header.Get(ShardHeader); got != a.tag {
		t.Fatalf("forwarded request bounced: %s = %q, want %q", ShardHeader, got, a.tag)
	}
	if m := a.svc.Metrics(); m.Forwarded != 0 || m.Requests != 1 {
		t.Fatalf("node A: forwarded=%d requests=%d, want 0/1", m.Forwarded, m.Requests)
	}
	if m := b.svc.Metrics(); m.Requests != 0 {
		t.Fatalf("node B saw %d requests, want 0", m.Requests)
	}
}
