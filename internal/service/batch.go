package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/see"
)

// MaxBatchEntries bounds one POST /v1/compile/batch body; portfolio/DSE
// drivers wanting more issue several batches.
const MaxBatchEntries = 256

// BatchRequest is the body of POST /v1/compile/batch: many compile
// requests submitted at once. Entries are content-fingerprinted and
// identical ones (same DDG, machine and result-affecting options) are
// deduped onto a single scheduled job before any compile starts, so a
// DSE sweep that repeats configurations pays for each distinct one once.
// Batch entries are never traced: tracing bypasses the caches the
// dedup relies on.
type BatchRequest struct {
	Entries []CompileRequest `json:"entries"`
	// Async returns per-entry job IDs immediately instead of waiting for
	// the results; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// BatchEntryStatus reports one entry's outcome. Deduped entries carry
// the same job ID (and, synchronously, the same result bytes) as the
// first identical entry.
type BatchEntryStatus struct {
	Index    int             `json:"index"`
	JobID    string          `json:"job_id,omitempty"`
	State    State           `json:"state,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Deduped  bool            `json:"deduped,omitempty"`
	Error    string          `json:"error,omitempty"`
	Field    string          `json:"field,omitempty"` // typed validation errors
	Result   json.RawMessage `json:"result,omitempty"`
}

// BatchResponse is the batch endpoint's reply: one status per entry, in
// input order, plus the dedup accounting.
type BatchResponse struct {
	Entries []BatchEntryStatus `json:"entries"`
	Unique  int                `json:"unique"`
	Deduped int                `json:"deduped"`
}

// handleBatch serves POST /v1/compile/batch. Entries fail individually —
// one malformed entry does not reject its siblings — except when every
// entry was turned away by backpressure, which surfaces as 503 so
// clients back off the whole batch.
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var batch BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(batch.Entries) == 0 {
		writeSubmitError(w, &see.OptionError{Field: "entries", Value: 0, Reason: "batch must contain at least one entry"})
		return
	}
	if len(batch.Entries) > MaxBatchEntries {
		writeSubmitError(w, &see.OptionError{Field: "entries", Value: len(batch.Entries), Reason: "too many batch entries"})
		return
	}

	// Async batches must outlive this HTTP exchange; sync ones share its
	// lifetime (a disconnect cancels every compile the batch scheduled).
	parent := r.Context()
	if batch.Async {
		parent = context.WithoutCancel(r.Context())
	}

	resp := BatchResponse{Entries: make([]BatchEntryStatus, len(batch.Entries))}
	byKey := make(map[string]int)              // fingerprint → first entry index
	jobs := make([]*Job, len(batch.Entries))   // scheduled job per unique entry
	firstOf := make([]int, len(batch.Entries)) // entry → its first identical sibling
	rejected := 0                              // unique entries turned away by backpressure
	for i, entry := range batch.Entries {
		st := &resp.Entries[i]
		st.Index = i
		firstOf[i] = i
		entry.Async = batch.Async
		entry.Trace = false
		key, err := RequestKey(entry)
		if err != nil {
			st.Error = err.Error()
			var oe *see.OptionError
			if errors.As(err, &oe) {
				st.Field = oe.Field
			}
			continue
		}
		if first, ok := byKey[key]; ok {
			st.Deduped = true
			firstOf[i] = first
			resp.Deduped++
			// Mirror a failed sibling's error so the entry is not
			// silently empty.
			st.Error = resp.Entries[first].Error
			st.Field = resp.Entries[first].Field
			continue
		}
		byKey[key] = i
		job, err := s.Submit(parent, entry)
		if err != nil {
			st.Error = err.Error()
			if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
				rejected++
			}
			continue
		}
		jobs[i] = job
		st.JobID = job.ID
	}
	resp.Unique = len(byKey)
	s.metrics.batch(int64(len(batch.Entries)), int64(resp.Deduped))

	if rejected > 0 && rejected == resp.Unique {
		// Every schedulable entry hit backpressure: tell the client to
		// back off rather than hand back a batch of individual failures.
		writeError(w, http.StatusServiceUnavailable, ErrQueueFull.Error())
		return
	}

	if !batch.Async {
		for _, job := range jobs {
			if job == nil {
				continue
			}
			if err := job.Wait(r.Context()); err != nil {
				writeError(w, http.StatusGatewayTimeout, err.Error())
				return
			}
		}
	}

	// Fill terminal details; deduped entries mirror their first sibling.
	for i := range resp.Entries {
		st := &resp.Entries[i]
		job := jobs[firstOf[i]]
		if job == nil {
			continue
		}
		jst := job.Status()
		st.JobID = jst.ID
		st.State = jst.State
		st.CacheHit = jst.CacheHit
		if jst.Error != "" {
			st.Error = jst.Error
		}
		if !batch.Async && jst.State == StateDone {
			body, _ := job.Result()
			st.Result = body
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
