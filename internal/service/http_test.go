package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postCompile is goroutine-safe: it reports transport problems as an
// error instead of failing the test directly.
func postCompile(client *http.Client, url string, body string) (*http.Response, []byte, error) {
	resp, err := client.Post(url+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, b, nil
}

// mustPost is the single-goroutine convenience wrapper.
func mustPost(t *testing.T, client *http.Client, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, b, err := postCompile(client, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// The acceptance scenario: >= 16 concurrent compiles over a mix of the
// four paper kernels all complete; repeating an identical request is a
// cache hit with a byte-identical payload; /metrics adds up.
func TestConcurrentCompileAndCache(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	kernels := []string{"fir2dim", "idcthor", "mpeg2inter", "h264deblocking"}
	reqBody := func(k string) string {
		return fmt.Sprintf(`{"kernel":%q}`, k)
	}

	const concurrent = 16
	bodies := make([][]byte, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b, err := postCompile(ts.Client(), ts.URL, reqBody(kernels[i%len(kernels)]))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("concurrent round failed")
	}

	// Identical concurrent requests must have produced identical bytes
	// (HCA is deterministic; hits serve the stored bytes verbatim).
	for i := 0; i < concurrent; i++ {
		if j := i % len(kernels); !bytes.Equal(bodies[i], bodies[j]) {
			t.Fatalf("requests %d and %d for %s differ", i, j, kernels[j])
		}
	}

	before := svc.Metrics()
	if before.Requests != concurrent {
		t.Fatalf("requests %d, want %d", before.Requests, concurrent)
	}
	if before.CacheHits+before.CacheMisses != before.Requests {
		t.Fatalf("hits %d + misses %d != requests %d", before.CacheHits, before.CacheMisses, before.Requests)
	}

	// Sequential repeats: all four must now be hits, byte-identical to
	// the first round's responses.
	for i, k := range kernels {
		resp, b := mustPost(t, ts.Client(), ts.URL, reqBody(k))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %s: status %d: %s", k, resp.StatusCode, b)
		}
		if got := resp.Header.Get("X-Hca-Cache"); got != "hit" {
			t.Errorf("repeat %s: X-Hca-Cache %q, want hit", k, got)
		}
		if !bytes.Equal(b, bodies[i]) {
			t.Errorf("repeat %s: payload differs from original response", k)
		}
		var rep struct {
			Kernel string `json:"kernel"`
			Legal  bool   `json:"legal"`
		}
		if err := json.Unmarshal(b, &rep); err != nil || rep.Kernel != k || !rep.Legal {
			t.Errorf("repeat %s: bad report (%v): %s", k, err, b)
		}
	}

	after := svc.Metrics()
	if after.CacheHits != before.CacheHits+int64(len(kernels)) {
		t.Errorf("hit counter went %d -> %d, want +%d", before.CacheHits, after.CacheHits, len(kernels))
	}
	if after.CacheMisses != before.CacheMisses {
		t.Errorf("miss counter moved on cached repeats: %d -> %d", before.CacheMisses, after.CacheMisses)
	}
	if after.CacheHits+after.CacheMisses != after.Requests {
		t.Errorf("hits %d + misses %d != requests %d", after.CacheHits, after.CacheMisses, after.Requests)
	}
	if after.CacheSize == 0 || after.LatencySamples == 0 {
		t.Errorf("metrics missing cache/latency data: %+v", after)
	}
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	mustPost(t, ts.Client(), ts.URL, `{"kernel":"fir2dim"}`)
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 1 || snap.CacheMisses != 1 {
		t.Errorf("metrics %+v", snap)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, b := mustPost(t, ts.Client(), ts.URL, `{"synth":{"ops":64,"seed":7,"rec_latency":3},"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("bad initial status %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		jresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		jb, _ := io.ReadAll(jresp.Body)
		jresp.Body.Close()
		var poll struct {
			Status
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(jb, &poll); err != nil {
			t.Fatalf("bad poll body: %v: %s", err, jb)
		}
		if poll.State == StateDone {
			var rep struct {
				Legal bool `json:"legal"`
			}
			if err := json.Unmarshal(poll.Result, &rep); err != nil || !rep.Legal {
				t.Fatalf("bad result (%v): %s", err, poll.Result)
			}
			break
		}
		if poll.State.Terminal() {
			t.Fatalf("job ended %s: %s", poll.State, poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if resp, _ := ts.Client().Get(ts.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, body := range []string{
		`not json`,
		`{}`,
		`{"kernel":"nope"}`,
		`{"kernel":"fir2dim","bogus_field":1}`,
	} {
		resp, b := mustPost(t, ts.Client(), ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d: %s", body, resp.StatusCode, b)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET compile: status %d", resp.StatusCode)
	}
}

// SIGTERM-style shutdown: in-flight requests keep their responses, new
// ones are turned away with 503.
func TestGracefulDrain(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	const inflight = 3
	results := make(chan result, inflight)
	for seed := 0; seed < inflight; seed++ {
		seed := seed
		go func() {
			resp, b, err := postCompile(ts.Client(), ts.URL,
				fmt.Sprintf(`{"synth":{"ops":192,"seed":%d,"rec_latency":3}}`, 100+seed))
			if err != nil {
				t.Errorf("in-flight request %d: %v", seed, err)
				results <- result{0, nil}
				return
			}
			results <- result{resp.StatusCode, b}
		}()
	}
	// Let the submissions land, then drain — exactly what cmd/hcad does
	// on SIGTERM after the listener stops accepting.
	for svc.Metrics().Requests < inflight {
		time.Sleep(5 * time.Millisecond)
	}
	svc.Close()

	for i := 0; i < inflight; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Errorf("in-flight request dropped during drain: status %d: %s", r.status, r.body)
		}
		var rep struct {
			Legal bool `json:"legal"`
		}
		if err := json.Unmarshal(r.body, &rep); err != nil || !rep.Legal {
			t.Errorf("drained response corrupt (%v): %s", err, r.body)
		}
	}

	resp, b := mustPost(t, ts.Client(), ts.URL, `{"kernel":"fir2dim"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d: %s", resp.StatusCode, b)
	}
}
