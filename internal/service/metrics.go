package service

import (
	"sort"
	"sync"
	"time"
)

// latencySamples bounds the sliding window the percentile estimates are
// computed over.
const latencySamples = 1024

// Metrics is the in-process registry the daemon exposes at /metrics.
// Counters satisfy the invariant
//
//	Requests == CacheHits + CacheMisses
//
// where a miss is any request that had to compute (successful, failed or
// cancelled — Failures and Cancelled are subsets of the misses).
type Metrics struct {
	mu        sync.Mutex
	requests  int64
	hits      int64
	misses    int64
	failures  int64
	cancelled int64
	inFlight  int64

	lat  [latencySamples]time.Duration // ring of completed-compile latencies
	next int
	n    int
}

// Snapshot is the JSON shape of /metrics.
type Snapshot struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Failures    int64 `json:"failures"`
	Cancelled   int64 `json:"cancelled"`
	InFlight    int64 `json:"in_flight"`

	LatencySamples int     `json:"latency_samples"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP90Ms   float64 `json:"latency_p90_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`

	CacheSize int `json:"cache_size"`
}

func (m *Metrics) request()  { m.mu.Lock(); m.requests++; m.mu.Unlock() }
func (m *Metrics) hit()      { m.mu.Lock(); m.hits++; m.mu.Unlock() }
func (m *Metrics) miss()     { m.mu.Lock(); m.misses++; m.mu.Unlock() }
func (m *Metrics) failure()  { m.mu.Lock(); m.failures++; m.mu.Unlock() }
func (m *Metrics) cancel()   { m.mu.Lock(); m.cancelled++; m.mu.Unlock() }
func (m *Metrics) jobStart() { m.mu.Lock(); m.inFlight++; m.mu.Unlock() }
func (m *Metrics) jobEnd()   { m.mu.Lock(); m.inFlight--; m.mu.Unlock() }

// observe records one completed compile's wall-clock latency.
func (m *Metrics) observe(d time.Duration) {
	m.mu.Lock()
	m.lat[m.next] = d
	m.next = (m.next + 1) % latencySamples
	if m.n < latencySamples {
		m.n++
	}
	m.mu.Unlock()
}

// Snapshot returns a consistent copy of every counter plus latency
// percentiles over the recent-sample window.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Requests:    m.requests,
		CacheHits:   m.hits,
		CacheMisses: m.misses,
		Failures:    m.failures,
		Cancelled:   m.cancelled,
		InFlight:    m.inFlight,
	}
	samples := make([]time.Duration, m.n)
	copy(samples, m.lat[:m.n])
	m.mu.Unlock()

	s.LatencySamples = len(samples)
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		pick := func(p float64) float64 {
			idx := int(p * float64(len(samples)-1))
			return float64(samples[idx]) / float64(time.Millisecond)
		}
		s.LatencyP50Ms = pick(0.50)
		s.LatencyP90Ms = pick(0.90)
		s.LatencyP99Ms = pick(0.99)
	}
	return s
}
