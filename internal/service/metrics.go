package service

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// latencySamples bounds the sliding window the percentile estimates are
// computed over.
const latencySamples = 1024

// latencyBucketsMs are the upper bounds (milliseconds, inclusive) of the
// cumulative compile-latency histogram; an implicit +Inf bucket catches
// the rest. Chosen to straddle the observed spread from cache-warm small
// kernels (sub-millisecond) to feedback runs on synthetic DDGs (seconds).
var latencyBucketsMs = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Metrics is the in-process registry the daemon exposes at /metrics.
// Counters satisfy the invariant
//
//	Requests == CacheHits + CacheMisses
//
// where a miss is any request that had to compute (successful, failed or
// cancelled — Failures and Cancelled are subsets of the misses).
type Metrics struct {
	mu        sync.Mutex
	requests  int64
	hits      int64
	misses    int64
	failures  int64
	cancelled int64
	inFlight  int64

	storeHits     int64
	storeMisses   int64
	warmedEntries int64
	recoveredJobs int64
	sfHits        int64
	rateLimited   int64
	forwarded     int64
	forwardFalls  int64
	peerProbes    int64
	peerProbeFail int64
	batchEntries  int64
	batchDeduped  int64
	sweeps        int64
	sweepPoints   int64
	sweepDeduped  int64

	lat  [latencySamples]time.Duration // ring of completed-compile latencies
	next int
	n    int

	// Cumulative histogram of every completed compile's latency (not a
	// sliding window): histogram[i] counts compiles at most
	// latencyBucketsMs[i]; histInf counts the rest.
	histogram [len(latencyBucketsMs)]int64
	histInf   int64

	wait  [latencySamples]time.Duration // ring of queue-wait times
	wNext int
	wN    int
}

// HistogramBucket is one cumulative-count bucket of the latency
// histogram, Prometheus-style: Count compiles took at most LEMs
// milliseconds (the last bucket's LEMs is +Inf, encoded as 0 with
// Inf set).
type HistogramBucket struct {
	LEMs  float64 `json:"le_ms"`
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"`
}

// Snapshot is the JSON shape of /metrics.
type Snapshot struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Failures    int64 `json:"failures"`
	Cancelled   int64 `json:"cancelled"`
	InFlight    int64 `json:"in_flight"`

	// CacheHitRatio is CacheHits / Requests (0 before any request).
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	LatencySamples int     `json:"latency_samples"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP90Ms   float64 `json:"latency_p90_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`

	// LatencyHistogram is the cumulative compile-latency histogram over
	// every completed compile since start (unlike the percentile window,
	// which slides).
	LatencyHistogram []HistogramBucket `json:"latency_histogram,omitempty"`

	// Queue health: jobs waiting for a worker right now, and how long
	// recently-started jobs sat in the queue.
	QueueDepth     int     `json:"queue_depth"`
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`

	CacheSize int `json:"cache_size"`

	// Durable-store health: hits are compile requests served from disk
	// (a subset of CacheHits), misses are lookups that fell through to
	// compute, entries is the on-disk record count, and warmed counts
	// the LRU entries preloaded from disk at boot.
	StoreHits    int64 `json:"store_hits"`
	StoreMisses  int64 `json:"store_misses"`
	StoreEntries int   `json:"store_entries"`
	StoreWarmed  int64 `json:"store_warmed"`

	// RecoveredJobs counts jobs replayed from the journal at boot.
	RecoveredJobs int64 `json:"recovered_jobs"`
	// SingleFlightHits counts async submissions that attached to an
	// identical in-flight job instead of scheduling a duplicate compile.
	SingleFlightHits int64 `json:"singleflight_hits"`
	// RateLimited counts requests rejected by the rate-limit middleware
	// (fed back by cmd/hcad via NoteRateLimited).
	RateLimited int64 `json:"rate_limited"`
	// Forwarded / ForwardFallbacks count sharded requests proxied to the
	// owning peer, and owner-unreachable requests served locally instead.
	Forwarded        int64 `json:"forwarded"`
	ForwardFallbacks int64 `json:"forward_fallbacks"`
	// PeerProbes / PeerProbeFailures count active health probes sent to
	// peers previously marked down (sharded mode), and the probes that
	// found the peer still unreachable.
	PeerProbes        int64 `json:"peer_probes"`
	PeerProbeFailures int64 `json:"peer_probe_failures"`
	// BatchEntries / BatchDeduped count batch-endpoint entries seen and
	// the subset collapsed onto an identical sibling before scheduling.
	BatchEntries int64 `json:"batch_entries"`
	BatchDeduped int64 `json:"batch_deduped"`
	// Sweeps counts completed design-space explorations; SweepPoints is
	// the total grid points they expanded to, and SweepDeduped the subset
	// collapsed onto a fingerprint-identical sibling before solving.
	Sweeps       int64 `json:"sweeps"`
	SweepPoints  int64 `json:"sweep_points"`
	SweepDeduped int64 `json:"sweep_deduped"`

	// Subproblem-memo health: the process-wide beam-search attempt cache
	// shared across requests (unlike the result cache above, which only
	// serves byte-identical repeats). MemoHitRatio is
	// MemoHits / (MemoHits + MemoMisses), 0 before any attempt.
	MemoHits      int64   `json:"memo_hits"`
	MemoMisses    int64   `json:"memo_misses"`
	MemoEntries   int     `json:"memo_entries"`
	MemoEvictions int64   `json:"memo_evictions"`
	MemoHitRatio  float64 `json:"memo_hit_ratio"`
	// MemoByEngine splits the memo traffic by the engine discriminator of
	// the attempt key; engines with no traffic are omitted.
	MemoByEngine map[string]core.EngineMemoStats `json:"memo_by_engine,omitempty"`
}

func (m *Metrics) request()      { m.mu.Lock(); m.requests++; m.mu.Unlock() }
func (m *Metrics) hit()          { m.mu.Lock(); m.hits++; m.mu.Unlock() }
func (m *Metrics) miss()         { m.mu.Lock(); m.misses++; m.mu.Unlock() }
func (m *Metrics) failure()      { m.mu.Lock(); m.failures++; m.mu.Unlock() }
func (m *Metrics) cancel()       { m.mu.Lock(); m.cancelled++; m.mu.Unlock() }
func (m *Metrics) jobStart()     { m.mu.Lock(); m.inFlight++; m.mu.Unlock() }
func (m *Metrics) jobEnd()       { m.mu.Lock(); m.inFlight--; m.mu.Unlock() }
func (m *Metrics) storeHit()     { m.mu.Lock(); m.storeHits++; m.mu.Unlock() }
func (m *Metrics) storeMiss()    { m.mu.Lock(); m.storeMisses++; m.mu.Unlock() }
func (m *Metrics) singleflight() { m.mu.Lock(); m.sfHits++; m.mu.Unlock() }
func (m *Metrics) rateLimit()    { m.mu.Lock(); m.rateLimited++; m.mu.Unlock() }
func (m *Metrics) forward()      { m.mu.Lock(); m.forwarded++; m.mu.Unlock() }
func (m *Metrics) forwardFall()  { m.mu.Lock(); m.forwardFalls++; m.mu.Unlock() }

// peerProbe records one active health probe of a down-marked peer and
// whether it found the peer back up.
func (m *Metrics) peerProbe(up bool) {
	m.mu.Lock()
	m.peerProbes++
	if !up {
		m.peerProbeFail++
	}
	m.mu.Unlock()
}

func (m *Metrics) warmed(n int64)    { m.mu.Lock(); m.warmedEntries += n; m.mu.Unlock() }
func (m *Metrics) recovered(n int64) { m.mu.Lock(); m.recoveredJobs += n; m.mu.Unlock() }
func (m *Metrics) batch(entries, deduped int64) {
	m.mu.Lock()
	m.batchEntries += entries
	m.batchDeduped += deduped
	m.mu.Unlock()
}

// sweep records one completed design-space exploration.
func (m *Metrics) sweep(points, deduped int64) {
	m.mu.Lock()
	m.sweeps++
	m.sweepPoints += points
	m.sweepDeduped += deduped
	m.mu.Unlock()
}

// observe records one completed compile's wall-clock latency.
func (m *Metrics) observe(d time.Duration) {
	m.mu.Lock()
	m.lat[m.next] = d
	m.next = (m.next + 1) % latencySamples
	if m.n < latencySamples {
		m.n++
	}
	ms := float64(d) / float64(time.Millisecond)
	placed := false
	for i, le := range latencyBucketsMs {
		if ms <= le {
			m.histogram[i]++
			placed = true
			break
		}
	}
	if !placed {
		m.histInf++
	}
	m.mu.Unlock()
}

// observeQueueWait records how long a job sat queued before a worker
// picked it up.
func (m *Metrics) observeQueueWait(d time.Duration) {
	m.mu.Lock()
	m.wait[m.wNext] = d
	m.wNext = (m.wNext + 1) % latencySamples
	if m.wN < latencySamples {
		m.wN++
	}
	m.mu.Unlock()
}

// Snapshot returns a consistent copy of every counter plus latency
// percentiles over the recent-sample window.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Requests:    m.requests,
		CacheHits:   m.hits,
		CacheMisses: m.misses,
		Failures:    m.failures,
		Cancelled:   m.cancelled,
		InFlight:    m.inFlight,

		StoreHits:         m.storeHits,
		StoreMisses:       m.storeMisses,
		StoreWarmed:       m.warmedEntries,
		RecoveredJobs:     m.recoveredJobs,
		SingleFlightHits:  m.sfHits,
		RateLimited:       m.rateLimited,
		Forwarded:         m.forwarded,
		ForwardFallbacks:  m.forwardFalls,
		PeerProbes:        m.peerProbes,
		PeerProbeFailures: m.peerProbeFail,
		BatchEntries:      m.batchEntries,
		BatchDeduped:      m.batchDeduped,
		Sweeps:            m.sweeps,
		SweepPoints:       m.sweepPoints,
		SweepDeduped:      m.sweepDeduped,
	}
	samples := make([]time.Duration, m.n)
	copy(samples, m.lat[:m.n])
	waits := make([]time.Duration, m.wN)
	copy(waits, m.wait[:m.wN])
	total := int64(0)
	for i, c := range m.histogram {
		total += c
		s.LatencyHistogram = append(s.LatencyHistogram,
			HistogramBucket{LEMs: latencyBucketsMs[i], Count: total})
	}
	total += m.histInf
	if total > 0 {
		s.LatencyHistogram = append(s.LatencyHistogram, HistogramBucket{Inf: true, Count: total})
	} else {
		s.LatencyHistogram = nil
	}
	m.mu.Unlock()

	if s.Requests > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(s.Requests)
	}
	pctl := func(sorted []time.Duration, p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(time.Millisecond)
	}
	s.LatencySamples = len(samples)
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s.LatencyP50Ms = pctl(samples, 0.50)
		s.LatencyP90Ms = pctl(samples, 0.90)
		s.LatencyP99Ms = pctl(samples, 0.99)
	}
	if len(waits) > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		s.QueueWaitP50Ms = pctl(waits, 0.50)
		s.QueueWaitP99Ms = pctl(waits, 0.99)
	}
	return s
}
