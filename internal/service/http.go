package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/see"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/compile        submit a compile (sync by default; "async":
//	                        true returns 202 with a job to poll; ?trace=1
//	                        records the run and embeds the telemetry
//	                        summary)
//	POST /v1/compile/batch  submit many compiles at once; identical
//	                        entries are fingerprint-deduped and scheduled
//	                        once (see handleBatch)
//	POST /v1/explore        sweep one kernel against a fabric parameter
//	                        grid (bounded point count) and return the
//	                        per-point results plus the MII-vs-cost Pareto
//	                        front; same sync/async semantics as compile
//	GET  /v1/jobs/{id}      poll a job's state and, once done, its result
//	GET  /metrics           counters, cache occupancy, latency percentiles
//	GET  /healthz           liveness probe
//
// Synchronous responses carry the report JSON as the entire body — the
// exact cached bytes, so identical requests get byte-identical payloads —
// with the job ID and cache disposition in X-Hca-Job and X-Hca-Cache
// headers. cmd/hcad wraps this handler in the middleware chain
// (internal/service/middleware) and, in fleet mode, in ShardedHandler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.handleCompile)
	mux.HandleFunc("/v1/compile/batch", s.handleBatch)
	mux.HandleFunc("/v1/explore", s.handleExplore)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
// For validation failures the typed *see.OptionError structure survives
// the wire: Field and Reason are set alongside the flat message.
type ErrorBody struct {
	Error  string `json:"error"`
	Field  string `json:"field,omitempty"`
	Reason string `json:"reason,omitempty"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorBody{Error: msg})
}

// writeSubmitError maps a submission error onto the HTTP surface:
// backpressure → 503, oversized body → 413, typed validation errors →
// 400 with the *see.OptionError fields preserved, anything else → 400.
func writeSubmitError(w http.ResponseWriter, err error) {
	var oe *see.OptionError
	var mbe *http.MaxBytesError
	switch {
	case errors.Is(err, ErrClosed), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &mbe):
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
	case errors.As(err, &oe):
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Field: oe.Field, Reason: oe.Reason})
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Service) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CompileRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// ?trace=1 records the compile and folds the telemetry summary into
	// the report, equivalent to "trace": true in the body.
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		req.Trace = true
	}

	// An async job must outlive this HTTP exchange; a sync one dies with
	// the client (disconnects cancel the compile instead of burning a
	// worker on an unwanted result). WithoutCancel detaches the job from
	// the exchange while keeping request-scoped values (trace recorder)
	// flowing.
	parent := r.Context()
	if req.Async {
		parent = context.WithoutCancel(r.Context())
	}
	job, err := s.Submit(parent, req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	if err := job.Wait(r.Context()); err != nil {
		// The client went away; the job context (derived from it) is
		// already cancelled and the worker will abandon the run.
		writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	s.writeJobResult(w, job)
}

// writeJobResult renders a terminal job: the raw report bytes on
// success, an error envelope otherwise.
func (s *Service) writeJobResult(w http.ResponseWriter, job *Job) {
	body, hit := job.Result()
	w.Header().Set("X-Hca-Job", job.ID)
	switch job.State() {
	case StateDone:
		if hit {
			w.Header().Set("X-Hca-Cache", "hit")
		} else {
			w.Header().Set("X-Hca-Cache", "miss")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		// Trailing newline, so the body is byte-for-byte what
		// `cmd/hca -json` prints. Written outside the cached bytes:
		// hits and misses both pass through here.
		w.Write([]byte("\n"))
	case StateCancelled:
		writeError(w, http.StatusGatewayTimeout, "compile cancelled: "+job.Err())
	default:
		writeError(w, http.StatusUnprocessableEntity, "compile failed: "+job.Err())
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	st := job.Status()
	if st.State == StateDone {
		body, _ := job.Result()
		writeJSON(w, http.StatusOK, struct {
			Status
			Result json.RawMessage `json:"result"`
		}{st, body})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
