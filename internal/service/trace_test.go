package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/see"
)

// postRaw posts to an exact URL (postCompile appends the /v1/compile
// path itself, which would mangle query strings).
func postRaw(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// A traced compile must return the v2 report with the telemetry summary
// embedded, and must bypass the result cache in both directions.
func TestCompileTraceQueryParam(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	type traceRep struct {
		SchemaVersion int `json:"schema_version"`
		Trace         *struct {
			Spans    int              `json:"spans"`
			Phases   []map[string]any `json:"phases"`
			Counters map[string]int64 `json:"counters"`
		} `json:"trace"`
	}

	resp, body := postRaw(t, ts.Client(), ts.URL+"/v1/compile?trace=1", `{"kernel":"fir2dim"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced compile: %d: %s", resp.StatusCode, body)
	}
	var rep traceRep
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != 3 {
		t.Errorf("schema_version = %d, want 3", rep.SchemaVersion)
	}
	if rep.Trace == nil || rep.Trace.Spans == 0 || len(rep.Trace.Phases) == 0 {
		t.Fatalf("traced response has no usable trace summary: %s", body)
	}
	if rep.Trace.Counters["hca.subproblems"] == 0 {
		t.Errorf("trace counters missing hca.subproblems: %v", rep.Trace.Counters)
	}

	// Re-submitting the identical traced request must compute again.
	resp2, _ := postRaw(t, ts.Client(), ts.URL+"/v1/compile?trace=1", `{"kernel":"fir2dim"}`)
	if got := resp2.Header.Get("X-Hca-Cache"); got != "miss" {
		t.Errorf("second traced compile was a cache %q, want miss", got)
	}

	// The traced bodies must not have poisoned the cache: the first
	// untraced request computes, the second hits and carries no trace.
	resp3, _ := postRaw(t, ts.Client(), ts.URL+"/v1/compile", `{"kernel":"fir2dim"}`)
	if got := resp3.Header.Get("X-Hca-Cache"); got != "miss" {
		t.Errorf("first untraced compile after traced ones was a cache %q, want miss", got)
	}
	resp4, body4 := postRaw(t, ts.Client(), ts.URL+"/v1/compile", `{"kernel":"fir2dim"}`)
	if got := resp4.Header.Get("X-Hca-Cache"); got != "hit" {
		t.Errorf("repeat untraced compile was a cache %q, want hit", got)
	}
	var rep4 traceRep
	if err := json.Unmarshal(body4, &rep4); err != nil {
		t.Fatal(err)
	}
	if rep4.Trace != nil {
		t.Error("untraced response carries a trace summary")
	}
	if rep4.SchemaVersion != 3 {
		t.Errorf("untraced schema_version = %d, want 3", rep4.SchemaVersion)
	}
}

// The "trace": true body field is equivalent to ?trace=1.
func TestCompileTraceBodyField(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	_, body := postRaw(t, ts.Client(), ts.URL+"/v1/compile", `{"kernel":"fir2dim","trace":true}`)
	if !strings.Contains(string(body), `"trace"`) {
		t.Errorf("body-field trace request returned no trace summary: %s", body)
	}
}

// Invalid search widths surface as typed see.OptionError values, which
// the HTTP layer reports as 400 with the field name in the message.
func TestInvalidOptionsReturn400(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"kernel":"fir2dim","options":{"beam":-1}}`,
		`{"kernel":"fir2dim","options":{"cand":-3}}`,
	} {
		resp, b := postRaw(t, ts.Client(), ts.URL+"/v1/compile", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", body, resp.StatusCode, b)
		}
		if !strings.Contains(string(b), "invalid") {
			t.Errorf("%s: error message %q does not name the invalid option", body, b)
		}
	}

	// Direct submission returns the typed error wrapped.
	_, err := svc.Submit(context.Background(), CompileRequest{Kernel: "fir2dim", Options: OptionsSpec{Beam: -1}})
	var oe *see.OptionError
	if !errors.As(err, &oe) {
		t.Errorf("Submit error %v does not unwrap to see.OptionError", err)
	} else if oe.Field != "BeamWidth" {
		t.Errorf("OptionError.Field = %q, want BeamWidth", oe.Field)
	}
}

// /metrics must expose the compile-latency histogram, queue health and
// the cache hit ratio.
func TestMetricsHistogramAndQueueHealth(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	postRaw(t, ts.Client(), ts.URL+"/v1/compile", `{"kernel":"fir2dim"}`)
	postRaw(t, ts.Client(), ts.URL+"/v1/compile", `{"kernel":"fir2dim"}`) // hit

	snap := svc.Metrics()
	if snap.Requests != 2 || snap.CacheHits != 1 {
		t.Fatalf("requests/hits = %d/%d, want 2/1", snap.Requests, snap.CacheHits)
	}
	if snap.CacheHitRatio != 0.5 {
		t.Errorf("cache_hit_ratio = %v, want 0.5", snap.CacheHitRatio)
	}
	if len(snap.LatencyHistogram) == 0 {
		t.Fatal("latency_histogram empty after a completed compile")
	}
	last := snap.LatencyHistogram[len(snap.LatencyHistogram)-1]
	if !last.Inf || last.Count != 1 {
		t.Errorf("histogram +Inf bucket = %+v, want cumulative count 1", last)
	}
	for i := 1; i < len(snap.LatencyHistogram); i++ {
		if snap.LatencyHistogram[i].Count < snap.LatencyHistogram[i-1].Count {
			t.Errorf("histogram not cumulative at bucket %d: %+v", i, snap.LatencyHistogram)
		}
	}
	if snap.QueueDepth != 0 {
		t.Errorf("queue_depth = %d with no queued jobs", snap.QueueDepth)
	}
	if snap.QueueWaitP99Ms < snap.QueueWaitP50Ms {
		t.Errorf("queue wait p99 %v < p50 %v", snap.QueueWaitP99Ms, snap.QueueWaitP50Ms)
	}

	// And the JSON endpoint serves the same fields.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"latency_histogram", "queue_depth", "cache_hit_ratio", "queue_wait_p50_ms"} {
		if _, ok := m[field]; !ok {
			t.Errorf("/metrics missing %q: %v", field, m)
		}
	}
}
